// Figure 9 reproduction: "Communication Patterns" — both timers at 30 min,
// sweeping the number of messages from cluster 1 to cluster 0 (x = 10..110,
// paper §5.3).
//
// Expected shape: "The number of forced CLCs increases fast with the number
// of messages from cluster 1 to cluster 0" — cluster 0's forced count (and
// with it both totals) climbs steeply, the protocol's worst case.

#include "bench_common.hpp"

using namespace hc3i;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const int seeds = static_cast<int>(flags.get_int("seeds", 3));

  bench::print_header(
      "Figure 9", "Increasing Communication from Cluster 1 to Cluster 0",
      "forced CLCs in cluster 0 grow fast with the 1->0 message count "
      "(totals ~20 at x=10 rising toward ~60-70 at x=110)");

  stats::Series total0{"Cluster 0 Total", {}, {}};
  stats::Series forced0{"Cluster 0 Forced", {}, {}};
  stats::Series total1{"Cluster 1 Total", {}, {}};
  stats::Series forced1{"Cluster 1 Forced", {}, {}};
  for (const int messages : {10, 30, 50, 70, 90, 110}) {
    const auto avg = bench::average_clcs(minutes(30), minutes(30),
                                         static_cast<double>(messages), seeds);
    total0.add(messages, avg.forced0 + avg.unforced0);
    forced0.add(messages, avg.forced0);
    total1.add(messages, avg.forced1 + avg.unforced1);
    forced1.add(messages, avg.forced1);
  }
  std::printf("%s\n",
              stats::render_series("Number of Messages from Cluster 1 to Cluster 0",
                                   {total0, forced0, total1, forced1})
                  .c_str());
  return 0;
}
