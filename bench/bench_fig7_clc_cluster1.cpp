// Figure 7 reproduction: number of CLCs really committed in *cluster 1*
// against the delay between unforced CLCs in *cluster 0*, with cluster 1's
// own timer infinite (paper §5.2).
//
// Expected shape: cluster 1 stores no unforced CLCs at all; its forced
// count is proportional to the number of CLCs cluster 0 stores (numerous
// messages travel 0 -> 1, each fresh cluster-0 SN forcing once), falling
// from ~90 to ~10 across the sweep.

#include "bench_common.hpp"

using namespace hc3i;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const int seeds = static_cast<int>(flags.get_int("seeds", 3));

  bench::print_header(
      "Figure 7", "Interval Between CLCs Influence in Cluster 1",
      "zero unforced; forced proportional to cluster 0's CLC count "
      "(~90 at 10 min falling to ~10 at 120 min)");

  stats::Series forced{"Forced CLCs", {}, {}};
  stats::Series unforced{"Unforced CLCs", {}, {}};
  for (const int delay_min : {5, 10, 20, 30, 45, 60, 90, 120}) {
    const auto avg = bench::average_clcs(minutes(delay_min),
                                         SimTime::infinity(), 11.0, seeds);
    forced.add(delay_min, avg.forced1);
    unforced.add(delay_min, avg.unforced1);
  }
  std::printf("%s\n",
              stats::render_series("Delay Between CLCs (timer) in Cluster 0 [min]",
                                   {forced, unforced})
                  .c_str());
  return 0;
}
