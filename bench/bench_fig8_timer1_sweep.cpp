// Figure 8 reproduction: "Increasing the Number of CLCs in Cluster 1" —
// cluster 0's timer fixed at 30 min, cluster 1's timer swept 15..60 min
// (paper §5.2).
//
// Expected shape: cluster 0's total stays flat (~20-25) even when cluster 1
// checkpoints every 15 minutes, because only ~11 messages flow 1 -> 0
// ("This is thanks to the low number of messages from cluster 1 to
// cluster 0"); cluster 1's forced count stays roughly constant while its
// total falls as its own timer slows.

#include "bench_common.hpp"

using namespace hc3i;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const int seeds = static_cast<int>(flags.get_int("seeds", 3));

  bench::print_header(
      "Figure 8", "Impact of the Number of CLCs in Cluster 1",
      "cluster 0 total flat ~20-25; cluster 1 forced ~25-30 flat; cluster 1 "
      "total falls with its timer (x = 15..60 min, timer0 = 30 min)");

  stats::Series total0{"Cluster 0 Total", {}, {}};
  stats::Series total1{"Cluster 1 Total", {}, {}};
  stats::Series forced1{"Cluster 1 Forced", {}, {}};
  for (const int delay_min : {15, 20, 25, 30, 40, 50, 60}) {
    const auto avg =
        bench::average_clcs(minutes(30), minutes(delay_min), 11.0, seeds);
    total0.add(delay_min, avg.forced0 + avg.unforced0);
    total1.add(delay_min, avg.forced1 + avg.unforced1);
    forced1.add(delay_min, avg.forced1);
  }
  std::printf("%s\n",
              stats::render_series("Delay Between CLCs (timer) in Cluster 1 [min]",
                                   {total0, total1, forced1})
                  .c_str());
  return 0;
}
