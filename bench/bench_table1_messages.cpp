// Table 1 reproduction: application message census of the reference
// workload (paper §5.2).
//
//   paper:  C0->C0 2920   C1->C1 2497   C0->C1 145   C1->C0 11

#include "bench_common.hpp"

using namespace hc3i;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const int seeds = static_cast<int>(flags.get_int("seeds", 3));

  bench::print_header("Table 1", "Application messages",
                      "2920 / 2497 intra, 145 / 11 inter over 10 h");

  stats::Summary intra0, intra1, c0c1, c1c0;
  for (int s = 1; s <= seeds; ++s) {
    const auto r = bench::run_reference(minutes(30), minutes(30), 11.0,
                                        SimTime::infinity(),
                                        static_cast<std::uint64_t>(s));
    intra0.add(static_cast<double>(r.app_messages(ClusterId{0}, ClusterId{0})));
    intra1.add(static_cast<double>(r.app_messages(ClusterId{1}, ClusterId{1})));
    c0c1.add(static_cast<double>(r.app_messages(ClusterId{0}, ClusterId{1})));
    c1c0.add(static_cast<double>(r.app_messages(ClusterId{1}, ClusterId{0})));
  }

  stats::Table t({"Sender's Cluster", "Receiver's Cluster", "Paper",
                  "Measured (mean of " + std::to_string(seeds) + " seeds)"});
  t.row().cell("Cluster 0").cell("Cluster 0").cell(std::int64_t{2920})
      .cell(intra0.mean(), 1);
  t.row().cell("Cluster 1").cell("Cluster 1").cell(std::int64_t{2497})
      .cell(intra1.mean(), 1);
  t.row().cell("Cluster 0").cell("Cluster 1").cell(std::int64_t{145})
      .cell(c0c1.mean(), 1);
  t.row().cell("Cluster 1").cell("Cluster 0").cell(std::int64_t{11})
      .cell(c1c0.mean(), 1);
  std::printf("%s\n", t.to_ascii().c_str());
  return 0;
}
