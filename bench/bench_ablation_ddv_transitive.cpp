// Ablation A1 (paper §7): transitive DDV piggybacking — "The dependency
// tracking mechanism can be improved by adding some transitivity (by
// sending the whole DDV instead of the SN) in order to take less forced
// checkpoints."
//
// Workload: a three-cluster relay pipeline (C0 -> C1 -> C2 plus direct
// C0 -> C2 traffic), where C2 can learn C0's SN through C1's piggybacked
// DDV and skip forced CLCs on the direct path.

#include "bench_common.hpp"

using namespace hc3i;

namespace {

double forced_total(bool transitive, int seeds) {
  double total = 0;
  for (int s = 1; s <= seeds; ++s) {
    driver::RunOptions opts;
    opts.spec = config::small_test_spec(3, 10);
    opts.spec.application.total_time = hours(6);
    // Pipeline traffic (paper Fig. 1): heavy intra, modest downstream
    // relay, a thin direct edge C0 -> C2.
    opts.spec.application.clusters[0].traffic = {0.90, 0.07, 0.03};
    opts.spec.application.clusters[1].traffic = {0.00, 0.93, 0.07};
    opts.spec.application.clusters[2].traffic = {0.00, 0.00, 1.00};
    for (auto& t : opts.spec.timers.clusters) t.clc_period = minutes(20);
    opts.hc3i.transitive_ddv = transitive;
    opts.seed = static_cast<std::uint64_t>(s);
    const auto r = driver::run_simulation(opts);
    for (std::uint32_t c = 0; c < 3; ++c) {
      total += static_cast<double>(r.clc_forced(ClusterId{c}));
    }
  }
  return total / seeds;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const int seeds = static_cast<int>(flags.get_int("seeds", 5));

  bench::print_header(
      "Ablation A1", "Transitive DDV piggybacking (paper §7)",
      "fewer forced checkpoints when the whole DDV rides on inter-cluster "
      "messages (no number given — future work in the paper)");

  const double plain = forced_total(false, seeds);
  const double transitive = forced_total(true, seeds);
  stats::Table t({"Dependency tracking", "Forced CLCs (fed-wide mean)",
                  "Relative"});
  t.row().cell("SN only (paper default)").cell(plain, 1).cell(1.0, 2);
  t.row().cell("full DDV (transitive)").cell(transitive, 1)
      .cell(plain > 0 ? transitive / plain : 0.0, 2);
  std::printf("%s\n", t.to_ascii().c_str());
  std::printf("Piggyback cost: %d extra bytes per inter-cluster message "
              "(one SeqNum per cluster).\n",
              static_cast<int>(3 * sizeof(SeqNum)));
  return 0;
}
