// Ablation A5 (paper §7): stable-storage replication degree — "The user
// should be able to choose the degree of replication ... (in order to
// tolerate more than one fault in a cluster)."
//
// Storage per node scales as (1 + degree) local states per retained CLC;
// the replica traffic per CLC scales the same way.

#include "bench_common.hpp"

#include "util/quantity.hpp"

using namespace hc3i;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  bench::print_header(
      "Ablation A5", "Stable-storage replication degree (paper §7)",
      "degree 1 in the paper (one simultaneous in-cluster fault tolerated); "
      "storage and replica traffic scale with 1 + degree");

  stats::Table t({"Degree", "Tolerated in-cluster faults",
                  "Local states/node/CLC", "Storage (c0)",
                  "Intra ctl GB", "Consistent"});
  for (const std::uint32_t degree : {0u, 1u, 2u, 3u}) {
    driver::RunOptions opts;
    opts.spec = config::small_test_spec(2, 10);
    opts.spec.application.total_time = hours(2);
    opts.spec.application.state_bytes = 8ull * 1024 * 1024;
    for (auto& tm : opts.spec.timers.clusters) tm.clc_period = minutes(20);
    opts.hc3i.replication = degree;
    opts.seed = seed;
    opts.scripted_failures.push_back({minutes(70), NodeId{3}});
    const auto r = driver::run_simulation(opts);
    t.row()
        .cell(static_cast<std::uint64_t>(degree))
        .cell(static_cast<std::uint64_t>(degree))
        .cell(static_cast<std::uint64_t>(1 + degree))
        .cell(format_bytes(r.counter("store.max_bytes.c0")))
        .cell(static_cast<double>(r.counter("net.ctl.intra.bytes")) / (1024.0 * 1024 * 1024), 2)
        .cell(r.violations.empty() ? "yes" : "NO");
  }
  std::printf("%s\n", t.to_ascii().c_str());
  std::printf("Note: degree 0 still recovers here because the simulator can\n"
              "read the failed node's part; a real deployment would lose it —\n"
              "degree >= 1 is the minimum for genuine fault tolerance.\n");
  return 0;
}
