// Micro-benchmarks for the simulator substrate hot paths.
//
// Three kernels, each timed with the wall clock and reported as a rate:
//
//   events    — event-queue timer churn: a working set of live timers being
//               cancelled/rescheduled while the queue drains, the pattern CLC
//               period timers generate over a 10-simulated-hour run.
//   msgs      — network send/deliver: every message crosses Network::send
//               (stats census, flight registry, arrival scheduling), the
//               per-message path of Table 1's census.
//   msgs_ddv  — the same kernel with a 3-entry transitive DDV piggyback on
//               every application message (paper §7): the piggyback-dominated
//               message path whose cost Table 1 argues about.
//   whole_sim — an end-to-end run of the paper's §5 reference scenario via
//               driver::run_simulation, the macro number the ROADMAP perf
//               trajectory tracks.
//   scale_fed — the scale-out regime: 10 clusters x 100 nodes of ring
//               traffic with CLC timers and GC enabled
//               (config::scale_federation_spec), run at 5 and at 10
//               clusters so the heap-bytes growth between the two is a
//               first-class number.  The census, GC payloads, and control
//               plane are required to keep that growth sub-quadratic in
//               the cluster count (docs/scaling.md): doubling the clusters
//               must report a heap-growth factor well under 4.
//   scale_fed_faulty — the same scale-out regime under the fixed reference
//               fault campaign (fault::reference_scale_campaign: scripted
//               kill, correlated burst, per-cluster MTBF stream, repeat
//               offender, commit-targeted trigger), also at 5 and 10
//               clusters.  Reports events/s and allocs/event under fault
//               load plus the recovery-cost numbers the CIC literature
//               compares protocols by: rollback-alert fanout, cluster/node
//               rollbacks, replayed messages/bytes and mean recovery
//               latency per cluster count.
//
// Each kernel also reports an allocations-per-op proxy: the bench overrides
// global operator new/delete with counting shims, so the steady-state heap
// traffic of the hot path is a first-class regression number next to the
// rate (the zero-allocation message path is an invariant, not a vibe).
//
// Emits machine-readable results to BENCH_micro.json (override with --out=)
// so CI can archive the perf trajectory; --dump-counters prints the registry
// dump of a fixed-seed run for bit-reproducibility diffs.

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

// --- allocation counting ----------------------------------------------------
// Counting shims for every replaceable allocation function.  Single-threaded
// by construction (the bench is), so a plain counter is exact.

namespace {
std::uint64_t g_allocs = 0;
std::uint64_t g_alloc_bytes = 0;  ///< cumulative requested bytes — the
                                  ///< peak-RSS growth proxy for the
                                  ///< scale_fed sweep (deterministic, unlike
                                  ///< getrusage across kernels)

void* counted_alloc(std::size_t n) {
  ++g_allocs;
  g_alloc_bytes += n;
  void* p = std::malloc(n != 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* counted_alloc(std::size_t n, std::align_val_t align) {
  ++g_allocs;
  g_alloc_bytes += n;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), n != 0 ? n : 1) != 0) {
    throw std::bad_alloc{};
  }
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocs;
  g_alloc_bytes += n;
  return std::malloc(n != 0 ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocs;
  g_alloc_bytes += n;
  return std::malloc(n != 0 ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t a) { return counted_alloc(n, a); }
void* operator new[](std::size_t n, std::align_val_t a) { return counted_alloc(n, a); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

#include "config/presets.hpp"
#include "driver/run.hpp"
#include "fault/campaign.hpp"
#include "net/network.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"
#include "stats/registry.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/walltime.hpp"

namespace {

using namespace hc3i;
using util::now_sec;

/// Peak resident set size in kilobytes (proxy for allocation discipline).
long peak_rss_kb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

struct KernelResult {
  std::uint64_t ops{0};
  double elapsed_sec{0.0};
  std::uint64_t allocs{0};  ///< operator-new calls during the timed region
  std::uint64_t alloc_bytes{0};  ///< bytes requested during the timed region
  double rate() const { return elapsed_sec > 0 ? ops / elapsed_sec : 0.0; }
  double allocs_per_op() const {
    return ops > 0 ? static_cast<double>(allocs) / static_cast<double>(ops)
                   : 0.0;
  }
};

/// Timer-churn kernel: W live timers, each op cancels one and schedules a
/// replacement; every fourth op pops the earliest event.  This is the
/// schedule/cancel/reschedule pattern the CLC timers drive, sustained long
/// enough that per-event bookkeeping (not the heap) dominates.
KernelResult bench_events(std::uint64_t ops, std::uint64_t seed) {
  constexpr std::size_t kWindow = 8192;
  sim::EventQueue q;
  RngStream rng(seed, 7);
  std::uint64_t fired = 0;
  std::vector<sim::EventId> live(kWindow);

  const double t0 = now_sec();
  const std::uint64_t allocs0 = g_allocs;
  for (std::size_t i = 0; i < kWindow; ++i) {
    live[i] = q.schedule(SimTime{static_cast<std::int64_t>(i + 1)},
                         [&fired] { ++fired; });
  }
  SimTime frontier = SimTime::zero();
  for (std::uint64_t op = 0; op < ops; ++op) {
    const std::size_t idx = op % kWindow;
    q.cancel(live[idx]);  // often stale (already fired) — must be a no-op
    const auto jitter = static_cast<std::int64_t>(rng.next_below(1000) + 1);
    live[idx] = q.schedule(frontier + SimTime{jitter}, [&fired] { ++fired; });
    if (op % 4 == 0 && !q.empty()) {
      auto [t, cb] = q.pop();
      frontier = t;
      cb();
    }
  }
  while (!q.empty()) q.pop().second();
  const double elapsed = now_sec() - t0;
  if (fired == 0) std::fprintf(stderr, "events kernel: nothing fired?\n");
  return KernelResult{ops + kWindow, elapsed, g_allocs - allocs0};
}

/// Network send/deliver kernel over a 2-cluster federation: alternating
/// intra/inter application traffic plus a control-plane share, draining the
/// simulation in batches so the flight table stays populated.  When
/// `with_ddv` is set, every application message carries a 3-entry transitive
/// DDV piggyback (paper §7) — the path where the envelope used to heap-
/// allocate per message.  A warm-up batch runs before the timed region so
/// allocs-per-op reports the steady state, not slab/registry growth.
KernelResult bench_msgs(std::uint64_t msgs, std::uint64_t seed, bool with_ddv) {
  sim::Simulation sim(seed);
  stats::Registry reg;
  const net::Topology topo(config::small_test_spec(2, 32).topology);
  net::Network net(sim, topo, reg);
  std::uint64_t delivered = 0;
  for (std::uint32_t i = 0; i < topo.node_count(); ++i) {
    net.attach(NodeId{i}, [&delivered](const net::Envelope&) { ++delivered; });
  }
  RngStream rng(seed, 11);
  const std::uint32_t n = topo.node_count();

  constexpr std::uint64_t kBatch = 256;
  constexpr std::uint64_t kWarmup = 4 * kBatch;
  double t0 = 0.0;
  std::uint64_t allocs0 = 0;
  const std::uint64_t total = msgs + kWarmup;
  for (std::uint64_t m = 0; m < total; ++m) {
    if (m == kWarmup) {  // steady state reached: slabs and census are warm
      sim.run_all();
      t0 = now_sec();
      allocs0 = g_allocs;
    }
    net::Envelope env;
    env.src = NodeId{static_cast<std::uint32_t>(rng.next_below(n))};
    do {
      env.dst = NodeId{static_cast<std::uint32_t>(rng.next_below(n))};
    } while (env.dst == env.src);
    if (m % 8 == 7) {
      env.cls = net::MsgClass::kControl;
      env.payload_bytes = 64;
    } else {
      env.cls = net::MsgClass::kApp;
      env.payload_bytes = 1024;
      env.app_seq = m + 1;
      env.piggy.sn = static_cast<SeqNum>(m % 50);
      if (with_ddv) {
        env.piggy.ddv = {static_cast<SeqNum>(m % 50),
                         static_cast<SeqNum>(m % 31),
                         static_cast<SeqNum>(m % 17)};
      }
    }
    net.send(std::move(env));
    if (m % kBatch == kBatch - 1) sim.run_all();
  }
  sim.run_all();
  const double elapsed = now_sec() - t0;
  if (delivered != total) std::fprintf(stderr, "msgs kernel: lost messages?\n");
  return KernelResult{msgs, elapsed, g_allocs - allocs0};
}

/// End-to-end run of the paper's §5 reference scenario (2 clusters x 100
/// nodes, Table-1 message census) — the "reference kernel" the perf
/// trajectory is judged on.  One simulated hour keeps a bench iteration in
/// seconds while preserving the reference event density.
KernelResult bench_whole_sim(std::uint64_t seed) {
  driver::RunOptions opts;
  opts.spec.topology = config::paper_reference_topology();
  opts.spec.application = config::paper_reference_application();
  opts.spec.timers =
      config::paper_reference_timers(minutes(30), minutes(30), minutes(30));
  opts.spec.application.total_time = hours(1);
  opts.seed = seed;
  const double t0 = now_sec();
  const std::uint64_t allocs0 = g_allocs;
  const std::uint64_t bytes0 = g_alloc_bytes;
  const auto result = driver::run_simulation(opts);
  const double elapsed = now_sec() - t0;
  return KernelResult{result.events_executed, elapsed, g_allocs - allocs0,
                      g_alloc_bytes - bytes0};
}

/// The scale-out kernel: `clusters` clusters x 100 nodes of ring traffic
/// with CLC timers and GC enabled, 10 simulated minutes.  Run at two
/// cluster counts so the heap growth between them (the peak-RSS proxy) is
/// measured, not assumed.
KernelResult bench_scale_fed(std::uint64_t seed, std::size_t clusters) {
  driver::RunOptions opts;
  opts.spec = config::scale_federation_spec(clusters, 100, minutes(10));
  opts.seed = seed;
  const double t0 = now_sec();
  const std::uint64_t allocs0 = g_allocs;
  const std::uint64_t bytes0 = g_alloc_bytes;
  const auto result = driver::run_simulation(opts);
  const double elapsed = now_sec() - t0;
  return KernelResult{result.events_executed, elapsed, g_allocs - allocs0,
                      g_alloc_bytes - bytes0};
}

/// Recovery-cost aggregates of a faulty run (summed across seeds).
struct FaultStats {
  std::uint64_t injected{0};
  std::uint64_t rollbacks{0};
  std::uint64_t nodes_rolled_back{0};
  std::uint64_t alert_fanout{0};
  std::uint64_t replayed_msgs{0};
  std::uint64_t replayed_bytes{0};
  double latency_sum_s{0.0};
  std::uint64_t latency_count{0};
  double mean_latency_s() const {
    return latency_count > 0 ? latency_sum_s / static_cast<double>(latency_count)
                             : 0.0;
  }
};

/// The scale-out kernel under a fixed fault campaign: same topology/traffic
/// as scale_fed, plus scripted kill + burst + MTBF stream + repeat offender
/// + commit-targeted trigger.  The reference campaign runs in legacy
/// serialized mode (comparable with earlier bench history); `overlap` runs
/// the overlapping-burst campaign with concurrent per-cluster recoveries.
/// `out` accumulates the recovery-cost counters next to the rate.
KernelResult bench_scale_fed_faulty(std::uint64_t seed, std::size_t clusters,
                                    bool overlap, FaultStats* out) {
  driver::RunOptions opts;
  opts.spec = config::scale_federation_spec(clusters, 100, minutes(10));
  if (overlap) {
    opts.campaign =
        fault::reference_overlap_campaign(clusters, 100, minutes(10));
  } else {
    opts.campaign =
        fault::reference_scale_campaign(clusters, 100, minutes(10));
    opts.campaign.serialize_faults = true;
  }
  opts.seed = seed;
  const double t0 = now_sec();
  const std::uint64_t allocs0 = g_allocs;
  const std::uint64_t bytes0 = g_alloc_bytes;
  const auto result = driver::run_simulation(opts);
  const double elapsed = now_sec() - t0;
  out->injected += result.counter("fault.injected");
  out->rollbacks += result.counter("rollback.count");
  out->nodes_rolled_back += result.counter("rollback.nodes");
  out->alert_fanout += result.counter("rollback.alerts");
  out->replayed_msgs += result.counter("log.resent_msgs");
  out->replayed_bytes += result.counter("log.resent_bytes");
  const auto& latency = result.registry.summary("fault.recovery_latency_s");
  out->latency_sum_s += latency.sum();
  out->latency_count += latency.count();
  return KernelResult{result.events_executed, elapsed, g_allocs - allocs0,
                      g_alloc_bytes - bytes0};
}

/// Tracing-off kernel: the trace level sits at kStats (the default) while
/// the emission sites fire at kProtocol, and the structured-trace recorder
/// pointer is null — the exact state of every production golden run.  The
/// tiers' whole contract is that this costs nothing, so the kernel asserts
/// zero allocations outright (an invariant, not a trend number) and the
/// process exits non-zero on violation.
KernelResult bench_trace_off(std::uint64_t ops) {
  if (Trace::level() != TraceLevel::kStats) {
    std::fprintf(stderr, "trace_off kernel: expected default kStats level\n");
    std::exit(1);
  }
  obs::Recorder* rec = nullptr;  // tracing off: AgentContext carries null
  std::uint64_t sunk = 0;
  const double t0 = now_sec();
  const std::uint64_t allocs0 = g_allocs;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const SimTime now{static_cast<std::int64_t>(i)};
    HC3I_TRACE(kProtocol, now, "never formatted " << i);
    HC3I_OBS(rec, obs::RecordKind::kClcCommit, now, 0, 0, i);
    sunk += i;
  }
  const double elapsed = now_sec() - t0;
  const std::uint64_t allocs = g_allocs - allocs0;
  if (allocs != 0) {
    std::fprintf(stderr,
                 "trace_off kernel: %llu allocations with tracing off "
                 "(must be 0)\n",
                 static_cast<unsigned long long>(allocs));
    std::exit(1);
  }
  if (sunk == 0 && ops > 1) std::fprintf(stderr, "trace_off: loop elided?\n");
  return KernelResult{ops, elapsed, allocs};
}

/// Steady-state text-trace emission: level kAction, a counting sink, one
/// representative line.  After a short warm-up (the reused line buffer
/// grows once), emitting must not allocate at all — the regression this
/// guards is Trace::emit rebuilding a std::string per line.
KernelResult bench_trace_emit(std::uint64_t ops) {
  const TraceLevel saved = Trace::level();
  Trace::set_level(TraceLevel::kAction);
  std::uint64_t lines = 0;
  Trace::set_sink([&lines](const std::string&) { ++lines; });
  const std::string line = "node 42 sent 1024B to node 17 (app_seq 12345)";
  for (int i = 0; i < 64; ++i) {
    Trace::emit(TraceLevel::kAction, seconds(i), line);
  }
  const double t0 = now_sec();
  const std::uint64_t allocs0 = g_allocs;
  for (std::uint64_t i = 0; i < ops; ++i) {
    Trace::emit(TraceLevel::kAction, SimTime{static_cast<std::int64_t>(i)},
                line);
  }
  const double elapsed = now_sec() - t0;
  const std::uint64_t allocs = g_allocs - allocs0;
  Trace::set_sink({});
  Trace::set_level(saved);
  if (allocs != 0) {
    std::fprintf(stderr,
                 "trace_emit kernel: %llu steady-state allocations "
                 "(must be 0)\n",
                 static_cast<unsigned long long>(allocs));
    std::exit(1);
  }
  if (lines != ops + 64) std::fprintf(stderr, "trace_emit: lost lines?\n");
  return KernelResult{ops, elapsed, allocs};
}

void dump_counters() {
  driver::RunOptions opts;
  opts.spec = config::small_test_spec(2, 8);
  opts.spec.application.total_time = hours(1);
  opts.seed = 1;
  const auto result = driver::run_simulation(opts);
  std::fputs(result.registry.dump().c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  for (const std::string& name : flags.names()) {
    if (name != "seeds" && name != "scale" && name != "out" &&
        name != "dump-counters") {
      std::fprintf(stderr, "unknown flag --%s (known: --seeds --scale --out "
                           "--dump-counters)\n", name.c_str());
      return 2;
    }
  }
  if (flags.get_bool("dump-counters", false)) {
    dump_counters();
    return 0;
  }
  const auto seeds = static_cast<std::uint64_t>(flags.get_int("seeds", 1));
  if (seeds < 1) {
    std::fprintf(stderr, "--seeds must be >= 1\n");
    return 2;
  }
  const auto scale = flags.get_double("scale", 1.0);
  const std::string out = flags.get("out", "BENCH_micro.json");
  const auto event_ops = static_cast<std::uint64_t>(4'000'000 * scale);
  const auto msg_ops = static_cast<std::uint64_t>(400'000 * scale);

  KernelResult events, msgs, msgs_ddv, whole, scale_half, scale_full;
  KernelResult faulty_half, faulty_full, overlap_full;
  FaultStats faults_half, faults_full, faults_overlap;
  // Alloc-audit kernels first (they assert, not just report): tracing off
  // must cost nothing, steady-state emission must reuse its buffer.
  const KernelResult trace_off = bench_trace_off(
      static_cast<std::uint64_t>(1'000'000 * scale));
  const KernelResult trace_emit = bench_trace_emit(
      static_cast<std::uint64_t>(200'000 * scale));
  const auto fold = [](KernelResult& acc, const KernelResult& r) {
    acc.ops += r.ops;
    acc.elapsed_sec += r.elapsed_sec;
    acc.allocs += r.allocs;
    acc.alloc_bytes += r.alloc_bytes;
  };
  for (std::uint64_t s = 1; s <= seeds; ++s) {
    fold(events, bench_events(event_ops, s));
    fold(msgs, bench_msgs(msg_ops, s, /*with_ddv=*/false));
    fold(msgs_ddv, bench_msgs(msg_ops, s, /*with_ddv=*/true));
    fold(whole, bench_whole_sim(s));
    fold(scale_half, bench_scale_fed(s, 5));
    fold(scale_full, bench_scale_fed(s, 10));
    fold(faulty_half,
         bench_scale_fed_faulty(s, 5, /*overlap=*/false, &faults_half));
    fold(faulty_full,
         bench_scale_fed_faulty(s, 10, /*overlap=*/false, &faults_full));
    fold(overlap_full,
         bench_scale_fed_faulty(s, 10, /*overlap=*/true, &faults_overlap));
  }
  // 5 -> 10 clusters doubles the federation; linear cost doubles the heap
  // traffic, a clusters² term quadruples it.  This ratio is the scale
  // acceptance number (must stay well under 4).
  const double heap_growth =
      scale_half.alloc_bytes > 0
          ? static_cast<double>(scale_full.alloc_bytes) /
                static_cast<double>(scale_half.alloc_bytes)
          : 0.0;

  std::printf("events    : %12.0f events/sec  (%.4f allocs/op)\n",
              events.rate(), events.allocs_per_op());
  std::printf("msgs      : %12.0f msgs/sec    (%.4f allocs/msg)\n",
              msgs.rate(), msgs.allocs_per_op());
  std::printf("msgs_ddv  : %12.0f msgs/sec    (%.4f allocs/msg)\n",
              msgs_ddv.rate(), msgs_ddv.allocs_per_op());
  std::printf("whole_sim : %12.0f events/sec  (%.4f allocs/event)\n",
              whole.rate(), whole.allocs_per_op());
  std::printf("scale_fed : %12.0f events/sec  (%.4f allocs/event, "
              "10x100 nodes)\n",
              scale_full.rate(), scale_full.allocs_per_op());
  std::printf("scale heap: %12.2fx bytes going 5 -> 10 clusters "
              "(sub-quadratic < 4)\n", heap_growth);
  std::printf("faulty    : %12.0f events/sec  (%.4f allocs/event, 10x100 "
              "under the reference campaign)\n",
              faulty_full.rate(), faulty_full.allocs_per_op());
  std::printf("  5c: %llu faults, %llu rollbacks (%llu nodes), fanout %llu, "
              "replay %llu msgs, latency %.3f s\n",
              static_cast<unsigned long long>(faults_half.injected),
              static_cast<unsigned long long>(faults_half.rollbacks),
              static_cast<unsigned long long>(faults_half.nodes_rolled_back),
              static_cast<unsigned long long>(faults_half.alert_fanout),
              static_cast<unsigned long long>(faults_half.replayed_msgs),
              faults_half.mean_latency_s());
  std::printf(" 10c: %llu faults, %llu rollbacks (%llu nodes), fanout %llu, "
              "replay %llu msgs, latency %.3f s\n",
              static_cast<unsigned long long>(faults_full.injected),
              static_cast<unsigned long long>(faults_full.rollbacks),
              static_cast<unsigned long long>(faults_full.nodes_rolled_back),
              static_cast<unsigned long long>(faults_full.alert_fanout),
              static_cast<unsigned long long>(faults_full.replayed_msgs),
              faults_full.mean_latency_s());
  std::printf("overlap   : %12.0f events/sec  (%.4f allocs/event, 10x100 "
              "under the overlapping-burst campaign)\n",
              overlap_full.rate(), overlap_full.allocs_per_op());
  std::printf(" 10c: %llu faults, %llu rollbacks (%llu nodes), fanout %llu, "
              "replay %llu msgs, latency %.3f s\n",
              static_cast<unsigned long long>(faults_overlap.injected),
              static_cast<unsigned long long>(faults_overlap.rollbacks),
              static_cast<unsigned long long>(
                  faults_overlap.nodes_rolled_back),
              static_cast<unsigned long long>(faults_overlap.alert_fanout),
              static_cast<unsigned long long>(faults_overlap.replayed_msgs),
              faults_overlap.mean_latency_s());
  std::printf("trace_off : %12.0f sites/sec   (%.4f allocs/op, asserted 0)\n",
              trace_off.rate(), trace_off.allocs_per_op());
  std::printf("trace_emit: %12.0f lines/sec   (%.4f allocs/line, asserted 0 "
              "steady-state)\n",
              trace_emit.rate(), trace_emit.allocs_per_op());
  std::printf("peak RSS  : %ld KB\n", peak_rss_kb());

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out.c_str());
    return 1;
  }
  const auto kernel_json = [f](const char* name, const KernelResult& r,
                               const char* trailer) {
    std::fprintf(f,
                 "    \"%s\": {\"ops\": %llu, \"elapsed_sec\": %.6f, "
                 "\"allocs\": %llu, \"allocs_per_op\": %.6f}%s\n",
                 name, static_cast<unsigned long long>(r.ops), r.elapsed_sec,
                 static_cast<unsigned long long>(r.allocs), r.allocs_per_op(),
                 trailer);
  };
  const auto fault_json = [f](const char* name, const FaultStats& fs,
                              const char* trailer) {
    std::fprintf(
        f,
        "    \"%s\": {\"injected\": %llu, \"rollbacks\": %llu, "
        "\"nodes_rolled_back\": %llu, \"alert_fanout\": %llu, "
        "\"replayed_msgs\": %llu, \"replayed_bytes\": %llu, "
        "\"mean_recovery_latency_s\": %.6f}%s\n",
        name, static_cast<unsigned long long>(fs.injected),
        static_cast<unsigned long long>(fs.rollbacks),
        static_cast<unsigned long long>(fs.nodes_rolled_back),
        static_cast<unsigned long long>(fs.alert_fanout),
        static_cast<unsigned long long>(fs.replayed_msgs),
        static_cast<unsigned long long>(fs.replayed_bytes),
        fs.mean_latency_s(), trailer);
  };
  std::fprintf(f,
               "{\n"
               "  \"seeds\": %llu,\n"
               "  \"events_per_sec\": %.1f,\n"
               "  \"msgs_per_sec\": %.1f,\n"
               "  \"msgs_ddv_per_sec\": %.1f,\n"
               "  \"whole_sim_events_per_sec\": %.1f,\n"
               "  \"scale_fed_events_per_sec\": %.1f,\n"
               "  \"scale_fed_faulty_events_per_sec\": %.1f,\n"
               "  \"scale_fed_faulty_allocs_per_op\": %.6f,\n"
               "  \"scale_fed_overlap_events_per_sec\": %.1f,\n"
               "  \"scale_fed_overlap_allocs_per_op\": %.6f,\n"
               "  \"msgs_allocs_per_op\": %.6f,\n"
               "  \"msgs_ddv_allocs_per_op\": %.6f,\n"
               "  \"events_allocs_per_op\": %.6f,\n"
               "  \"scale_fed_heap_bytes_5c\": %llu,\n"
               "  \"scale_fed_heap_bytes_10c\": %llu,\n"
               "  \"scale_fed_heap_growth\": %.4f,\n"
               "  \"peak_rss_kb\": %ld,\n"
               "  \"fault_campaign\": {\n",
               static_cast<unsigned long long>(seeds), events.rate(),
               msgs.rate(), msgs_ddv.rate(), whole.rate(), scale_full.rate(),
               faulty_full.rate(), faulty_full.allocs_per_op(),
               overlap_full.rate(), overlap_full.allocs_per_op(),
               msgs.allocs_per_op(), msgs_ddv.allocs_per_op(),
               events.allocs_per_op(),
               static_cast<unsigned long long>(scale_half.alloc_bytes),
               static_cast<unsigned long long>(scale_full.alloc_bytes),
               heap_growth, peak_rss_kb());
  fault_json("clusters_5", faults_half, ",");
  fault_json("clusters_10", faults_full, ",");
  fault_json("clusters_10_overlap", faults_overlap, "");
  std::fprintf(f,
               "  },\n"
               "  \"kernels\": {\n");
  kernel_json("events", events, ",");
  kernel_json("msgs", msgs, ",");
  kernel_json("msgs_ddv", msgs_ddv, ",");
  kernel_json("whole_sim", whole, ",");
  kernel_json("scale_fed", scale_full, ",");
  kernel_json("scale_fed_faulty", faulty_full, ",");
  kernel_json("scale_fed_overlap", overlap_full, ",");
  kernel_json("trace_off", trace_off, ",");
  kernel_json("trace_emit", trace_emit, "");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
