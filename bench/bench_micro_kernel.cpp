// Micro-benchmarks for the simulator substrate hot paths.
//
// Three kernels, each timed with the wall clock and reported as a rate:
//
//   events    — event-queue timer churn: a working set of live timers being
//               cancelled/rescheduled while the queue drains, the pattern CLC
//               period timers generate over a 10-simulated-hour run.
//   msgs      — network send/deliver: every message crosses Network::send
//               (stats census, flight registry, arrival scheduling), the
//               per-message path of Table 1's census.
//   whole_sim — an end-to-end run of the paper's §5 reference scenario via
//               driver::run_simulation, the macro number the ROADMAP perf
//               trajectory tracks.
//
// Emits machine-readable results to BENCH_micro.json (override with --out=)
// so CI can archive the perf trajectory; --dump-counters prints the registry
// dump of a fixed-seed run for bit-reproducibility diffs.

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "config/presets.hpp"
#include "driver/run.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"
#include "stats/registry.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

namespace {

using namespace hc3i;

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Peak resident set size in kilobytes (proxy for allocation discipline).
long peak_rss_kb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

struct KernelResult {
  std::uint64_t ops{0};
  double elapsed_sec{0.0};
  double rate() const { return elapsed_sec > 0 ? ops / elapsed_sec : 0.0; }
};

/// Timer-churn kernel: W live timers, each op cancels one and schedules a
/// replacement; every fourth op pops the earliest event.  This is the
/// schedule/cancel/reschedule pattern the CLC timers drive, sustained long
/// enough that per-event bookkeeping (not the heap) dominates.
KernelResult bench_events(std::uint64_t ops, std::uint64_t seed) {
  constexpr std::size_t kWindow = 8192;
  sim::EventQueue q;
  RngStream rng(seed, 7);
  std::uint64_t fired = 0;
  std::vector<sim::EventId> live(kWindow);

  const double t0 = now_sec();
  for (std::size_t i = 0; i < kWindow; ++i) {
    live[i] = q.schedule(SimTime{static_cast<std::int64_t>(i + 1)},
                         [&fired] { ++fired; });
  }
  SimTime frontier = SimTime::zero();
  for (std::uint64_t op = 0; op < ops; ++op) {
    const std::size_t idx = op % kWindow;
    q.cancel(live[idx]);  // often stale (already fired) — must be a no-op
    const auto jitter = static_cast<std::int64_t>(rng.next_below(1000) + 1);
    live[idx] = q.schedule(frontier + SimTime{jitter}, [&fired] { ++fired; });
    if (op % 4 == 0 && !q.empty()) {
      auto [t, cb] = q.pop();
      frontier = t;
      cb();
    }
  }
  while (!q.empty()) q.pop().second();
  const double elapsed = now_sec() - t0;
  if (fired == 0) std::fprintf(stderr, "events kernel: nothing fired?\n");
  return KernelResult{ops + kWindow, elapsed};
}

/// Network send/deliver kernel over a 2-cluster federation: alternating
/// intra/inter application traffic plus a control-plane share, draining the
/// simulation in batches so the flight table stays populated.
KernelResult bench_msgs(std::uint64_t msgs, std::uint64_t seed) {
  sim::Simulation sim(seed);
  stats::Registry reg;
  const net::Topology topo(config::small_test_spec(2, 32).topology);
  net::Network net(sim, topo, reg);
  std::uint64_t delivered = 0;
  for (std::uint32_t i = 0; i < topo.node_count(); ++i) {
    net.attach(NodeId{i}, [&delivered](const net::Envelope&) { ++delivered; });
  }
  RngStream rng(seed, 11);
  const std::uint32_t n = topo.node_count();

  const double t0 = now_sec();
  constexpr std::uint64_t kBatch = 256;
  for (std::uint64_t m = 0; m < msgs; ++m) {
    net::Envelope env;
    env.src = NodeId{static_cast<std::uint32_t>(rng.next_below(n))};
    do {
      env.dst = NodeId{static_cast<std::uint32_t>(rng.next_below(n))};
    } while (env.dst == env.src);
    if (m % 8 == 7) {
      env.cls = net::MsgClass::kControl;
      env.payload_bytes = 64;
    } else {
      env.cls = net::MsgClass::kApp;
      env.payload_bytes = 1024;
      env.app_seq = m + 1;
      env.piggy.sn = static_cast<SeqNum>(m % 50);
    }
    net.send(std::move(env));
    if (m % kBatch == kBatch - 1) sim.run_all();
  }
  sim.run_all();
  const double elapsed = now_sec() - t0;
  if (delivered != msgs) std::fprintf(stderr, "msgs kernel: lost messages?\n");
  return KernelResult{msgs, elapsed};
}

/// End-to-end run of the paper's §5 reference scenario (2 clusters x 100
/// nodes, Table-1 message census) — the "reference kernel" the perf
/// trajectory is judged on.  One simulated hour keeps a bench iteration in
/// seconds while preserving the reference event density.
KernelResult bench_whole_sim(std::uint64_t seed) {
  driver::RunOptions opts;
  opts.spec.topology = config::paper_reference_topology();
  opts.spec.application = config::paper_reference_application();
  opts.spec.timers =
      config::paper_reference_timers(minutes(30), minutes(30), minutes(30));
  opts.spec.application.total_time = hours(1);
  opts.seed = seed;
  const double t0 = now_sec();
  const auto result = driver::run_simulation(opts);
  const double elapsed = now_sec() - t0;
  return KernelResult{result.events_executed, elapsed};
}

void dump_counters() {
  driver::RunOptions opts;
  opts.spec = config::small_test_spec(2, 8);
  opts.spec.application.total_time = hours(1);
  opts.seed = 1;
  const auto result = driver::run_simulation(opts);
  std::fputs(result.registry.dump().c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  for (const std::string& name : flags.names()) {
    if (name != "seeds" && name != "scale" && name != "out" &&
        name != "dump-counters") {
      std::fprintf(stderr, "unknown flag --%s (known: --seeds --scale --out "
                           "--dump-counters)\n", name.c_str());
      return 2;
    }
  }
  if (flags.get_bool("dump-counters", false)) {
    dump_counters();
    return 0;
  }
  const auto seeds = static_cast<std::uint64_t>(flags.get_int("seeds", 1));
  if (seeds < 1) {
    std::fprintf(stderr, "--seeds must be >= 1\n");
    return 2;
  }
  const auto scale = flags.get_double("scale", 1.0);
  const std::string out = flags.get("out", "BENCH_micro.json");
  const auto event_ops = static_cast<std::uint64_t>(4'000'000 * scale);
  const auto msg_ops = static_cast<std::uint64_t>(400'000 * scale);

  KernelResult events, msgs, whole;
  for (std::uint64_t s = 1; s <= seeds; ++s) {
    const auto e = bench_events(event_ops, s);
    const auto m = bench_msgs(msg_ops, s);
    const auto w = bench_whole_sim(s);
    events.ops += e.ops;
    events.elapsed_sec += e.elapsed_sec;
    msgs.ops += m.ops;
    msgs.elapsed_sec += m.elapsed_sec;
    whole.ops += w.ops;
    whole.elapsed_sec += w.elapsed_sec;
  }

  std::printf("events    : %12.0f events/sec\n", events.rate());
  std::printf("msgs      : %12.0f msgs/sec\n", msgs.rate());
  std::printf("whole_sim : %12.0f events/sec\n", whole.rate());
  std::printf("peak RSS  : %ld KB\n", peak_rss_kb());

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"seeds\": %llu,\n"
               "  \"events_per_sec\": %.1f,\n"
               "  \"msgs_per_sec\": %.1f,\n"
               "  \"whole_sim_events_per_sec\": %.1f,\n"
               "  \"peak_rss_kb\": %ld,\n"
               "  \"kernels\": {\n"
               "    \"events\": {\"ops\": %llu, \"elapsed_sec\": %.6f},\n"
               "    \"msgs\": {\"ops\": %llu, \"elapsed_sec\": %.6f},\n"
               "    \"whole_sim\": {\"ops\": %llu, \"elapsed_sec\": %.6f}\n"
               "  }\n"
               "}\n",
               static_cast<unsigned long long>(seeds), events.rate(),
               msgs.rate(), whole.rate(), peak_rss_kb(),
               static_cast<unsigned long long>(events.ops), events.elapsed_sec,
               static_cast<unsigned long long>(msgs.ops), msgs.elapsed_sec,
               static_cast<unsigned long long>(whole.ops), whole.elapsed_sec);
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
