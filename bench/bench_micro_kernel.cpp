// Micro-benchmarks (google-benchmark) for the substrate hot paths: event
// queue throughput, DDV operations, recovery-line computation, GC pruning,
// and a whole-simulation macro benchmark.

#include <benchmark/benchmark.h>

#include "config/presets.hpp"
#include "driver/run.hpp"
#include "proto/recovery_line.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace {

using namespace hc3i;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RngStream rng(1, 1);
  for (auto _ : state) {
    sim::EventQueue q;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule(SimTime{static_cast<std::int64_t>(rng.next_below(1'000'000))},
                 [&sink] { ++sink; });
    }
    while (!q.empty()) q.pop().second();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  // The CLC timer reset pattern: schedule, cancel, reschedule.
  for (auto _ : state) {
    sim::EventQueue q;
    std::uint64_t sink = 0;
    for (int i = 0; i < 10'000; ++i) {
      const auto id = q.schedule(SimTime{i}, [&sink] { ++sink; });
      q.cancel(id);
      q.schedule(SimTime{i}, [&sink] { ++sink; });
    }
    while (!q.empty()) q.pop().second();
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_DdvMergeMax(benchmark::State& state) {
  const auto clusters = static_cast<std::size_t>(state.range(0));
  proto::Ddv a(clusters, ClusterId{0}, 5);
  proto::Ddv b(clusters, ClusterId{1}, 9);
  for (std::size_t i = 0; i < clusters; ++i) {
    b.set(ClusterId{static_cast<std::uint32_t>(i)},
          static_cast<SeqNum>(i * 3 % 17));
  }
  for (auto _ : state) {
    proto::Ddv c = a;
    c.merge_max(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_DdvMergeMax)->Arg(2)->Arg(16)->Arg(128);

std::vector<std::vector<proto::ClcMeta>> random_metas(std::size_t clusters,
                                                      std::size_t depth,
                                                      std::uint64_t seed) {
  RngStream rng(seed, 0);
  std::vector<std::vector<proto::ClcMeta>> metas(clusters);
  std::vector<std::vector<SeqNum>> entries(clusters,
                                           std::vector<SeqNum>(clusters, 0));
  for (std::size_t c = 0; c < clusters; ++c) {
    for (std::size_t sn = 1; sn <= depth; ++sn) {
      entries[c][c] = static_cast<SeqNum>(sn);
      for (std::size_t p = 0; p < clusters; ++p) {
        if (p != c && rng.bernoulli(0.3)) {
          entries[c][p] = std::min<SeqNum>(
              static_cast<SeqNum>(depth),
              entries[c][p] + 1);
        }
      }
      proto::ClcMeta m;
      m.sn = static_cast<SeqNum>(sn);
      m.ddv = proto::Ddv(clusters, ClusterId{static_cast<std::uint32_t>(c)}, 0);
      for (std::size_t p = 0; p < clusters; ++p) {
        m.ddv.set(ClusterId{static_cast<std::uint32_t>(p)}, entries[c][p]);
      }
      metas[c].push_back(std::move(m));
    }
  }
  return metas;
}

void BM_RecoveryLine(benchmark::State& state) {
  const auto metas = random_metas(static_cast<std::size_t>(state.range(0)),
                                  static_cast<std::size_t>(state.range(1)), 7);
  for (auto _ : state) {
    const auto line = proto::compute_recovery_line(metas, ClusterId{0});
    benchmark::DoNotOptimize(line);
  }
}
BENCHMARK(BM_RecoveryLine)->Args({2, 16})->Args({8, 64})->Args({16, 128});

void BM_GcMinSns(benchmark::State& state) {
  const auto metas = random_metas(static_cast<std::size_t>(state.range(0)),
                                  static_cast<std::size_t>(state.range(1)), 7);
  for (auto _ : state) {
    const auto mins = proto::gc_min_restored_sns(metas);
    benchmark::DoNotOptimize(mins);
  }
}
BENCHMARK(BM_GcMinSns)->Args({2, 16})->Args({8, 64});

void BM_WholeSimulationSmall(benchmark::State& state) {
  for (auto _ : state) {
    driver::RunOptions opts;
    opts.spec = config::small_test_spec(2, 8);
    opts.spec.application.total_time = hours(1);
    opts.seed = 1;
    const auto result = driver::run_simulation(opts);
    benchmark::DoNotOptimize(result.events_executed);
  }
}
BENCHMARK(BM_WholeSimulationSmall)->Unit(benchmark::kMillisecond);

void BM_WholeSimulationReference(benchmark::State& state) {
  // The paper's full 200-node, 10-hour reference scenario.
  for (auto _ : state) {
    driver::RunOptions opts;
    opts.spec.topology = config::paper_reference_topology();
    opts.spec.application = config::paper_reference_application();
    opts.spec.timers = config::paper_reference_timers(minutes(30), minutes(30));
    opts.seed = 1;
    const auto result = driver::run_simulation(opts);
    benchmark::DoNotOptimize(result.events_executed);
  }
}
BENCHMARK(BM_WholeSimulationReference)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
