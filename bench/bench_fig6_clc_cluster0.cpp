// Figure 6 reproduction: number of CLCs really committed in cluster 0 as a
// function of the delay between unforced CLCs in cluster 0 (x axis, in
// minutes), with cluster 1's timer set to infinite (paper §5.2).
//
// Expected shape: unforced ~ total_time / delay (minus timer resets),
// falling from ~120 to ~5; forced stays small and roughly constant (~8),
// driven by the ~11 cluster-1 -> cluster-0 messages.

#include "bench_common.hpp"

using namespace hc3i;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const int seeds = static_cast<int>(flags.get_int("seeds", 3));

  bench::print_header(
      "Figure 6", "Interval Between CLCs Influence in Cluster 0",
      "unforced falls ~120 -> ~5 as the timer grows 5 -> 120 min; "
      "forced stays flat at ~8");

  stats::Series forced{"Forced CLCs", {}, {}};
  stats::Series unforced{"Unforced CLCs", {}, {}};
  for (const int delay_min : {5, 10, 20, 30, 45, 60, 90, 120}) {
    const auto avg = bench::average_clcs(minutes(delay_min),
                                         SimTime::infinity(), 11.0, seeds);
    forced.add(delay_min, avg.forced0);
    unforced.add(delay_min, avg.unforced0);
  }
  std::printf("%s\n",
              stats::render_series("Delay Between CLCs (timer) in Cluster 0 [min]",
                                   {forced, unforced})
                  .c_str());
  return 0;
}
