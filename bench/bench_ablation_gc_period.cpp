// Ablation A4: the garbage-collection frequency trade-off the paper closes
// §5.4 with — "A tradeoff has to be found between the frequency of garbage
// collection and the number of CLCs stored."

#include "bench_common.hpp"

#include "util/quantity.hpp"

using namespace hc3i;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  bench::print_header(
      "Ablation A4", "GC period vs storage high-water mark",
      "more frequent GC bounds storage tighter but costs N-1 requests + "
      "responses + collects per round (paper §5.4)");

  stats::Table t({"GC period", "GC rounds", "Max CLCs (c0)",
                  "Max storage (c0)", "GC WAN msgs"});
  for (const int period_min : {30, 60, 120, 240, 0 /* = disabled */}) {
    const SimTime period =
        period_min == 0 ? SimTime::infinity() : minutes(period_min);
    const auto r = bench::run_reference(minutes(30), minutes(30), 103.0,
                                        period, seed);
    // GC traffic: the only inter-cluster *control* messages in this
    // workload besides acks/alerts are the GC request/response/collect
    // triple; count 3 per round for N=2.
    const std::uint64_t rounds = r.counter("gc.rounds");
    t.row()
        .cell(period_min == 0 ? std::string("off")
                              : std::to_string(period_min) + "min")
        .cell(rounds)
        .cell(r.counter("store.max_clcs.c0"))
        .cell(format_bytes(r.counter("store.max_bytes.c0")))
        .cell(rounds * 3);
  }
  std::printf("%s\n", t.to_ascii().c_str());
  return 0;
}
