// Ablation A2/A3 (DESIGN.md): HC3I against the baselines on the same
// failure-injected workload — checkpoint counts, network overhead, rollback
// scope, rollback depth, lost work.  This quantifies the comparisons the
// paper makes qualitatively in §2.2 and §6.

#include "bench_common.hpp"

using namespace hc3i;

namespace {

struct Row {
  std::string name;
  double clcs{0};
  double wan_ctl_kb{0};
  double nodes_restored{0};
  double lost_work_s{0};
  double undone_events{0};
};

Row measure(driver::ProtocolKind kind, int seeds) {
  Row row;
  row.name = driver::to_string(kind);
  for (int s = 1; s <= seeds; ++s) {
    driver::RunOptions opts;
    // A smaller federation (2 x 20 nodes) keeps the global baselines'
    // 2PC traffic readable; 4 h with a fault every ~45 min.  Traffic uses
    // the paper's code-coupling regime: heavy intra-cluster, a thin
    // inter-cluster trickle (§2.1).
    opts.spec = config::small_test_spec(2, 20);
    opts.spec.application.total_time = hours(4);
    opts.spec.application.state_bytes = 8ull * 1024 * 1024;
    for (auto& c : opts.spec.application.clusters) {
      c.mean_compute = minutes(1);
    }
    opts.spec.application.clusters[0].traffic = {0.97, 0.03};
    opts.spec.application.clusters[1].traffic = {0.03, 0.97};
    for (auto& t : opts.spec.timers.clusters) t.clc_period = minutes(30);
    opts.spec.topology.mtbf = minutes(45);
    opts.protocol = kind;
    opts.seed = static_cast<std::uint64_t>(s);
    opts.auto_failures = true;
    const auto r = driver::run_simulation(opts);
    row.clcs += static_cast<double>(r.clc_total(ClusterId{0}) +
                                    r.clc_total(ClusterId{1}));
    row.wan_ctl_kb +=
        static_cast<double>(r.counter("net.ctl.inter.bytes")) / 1024.0;
    row.nodes_restored += static_cast<double>(r.counter("app.restores"));
    row.lost_work_s += r.registry.summary("rollback.lost_work_s").sum();
    row.undone_events += static_cast<double>(r.counter("ledger.undone_events"));
  }
  row.clcs /= seeds;
  row.wan_ctl_kb /= seeds;
  row.nodes_restored /= seeds;
  row.lost_work_s /= seeds;
  row.undone_events /= seeds;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const int seeds = static_cast<int>(flags.get_int("seeds", 3));

  bench::print_header(
      "Ablation A2/A3", "Protocol comparison under failures",
      "qualitative in the paper: coordinated-global freezes the federation "
      "and rolls everyone back; independent checkpointing dominoes; "
      "message logging confines rollback to one node at heavy network cost; "
      "HC3I sits between");

  stats::Table t({"Protocol", "Checkpoints", "WAN ctl KB", "Nodes restored",
                  "Lost work [s]", "Undone events"});
  for (const auto kind : {driver::ProtocolKind::kHc3i,
                          driver::ProtocolKind::kIndependent,
                          driver::ProtocolKind::kCoordinatedGlobal,
                          driver::ProtocolKind::kHierarchicalCoordinated,
                          driver::ProtocolKind::kPessimisticLog}) {
    const Row row = measure(kind, seeds);
    t.row().cell(row.name).cell(row.clcs, 1).cell(row.wan_ctl_kb, 1)
        .cell(row.nodes_restored, 1).cell(row.lost_work_s, 1)
        .cell(row.undone_events, 1);
  }
  std::printf("%s\n", t.to_ascii().c_str());
  std::printf(
      "Reading guide: pessimistic-log restores ~1 node per fault but pays\n"
      "for every delivery twice; the coordinated baselines restore every\n"
      "node every fault; HC3I restores one cluster plus dependents, with\n"
      "WAN control traffic limited to piggybacks, acks and alerts.\n"
      "HC3I's checkpoint count grows with inter-cluster chatter — the\n"
      "paper's own caveat (§5.3): outside the code-coupling regime most\n"
      "messages force a CLC.\n");
  return 0;
}
