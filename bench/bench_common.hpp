#pragma once

// Shared scaffolding for the paper-reproduction benches.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation (§5) on the reference workload: two clusters x 100 nodes,
// Myrinet-like SANs, Ethernet-like interconnect, 10 simulated hours,
// message census per Table 1.  Numbers are seed-averaged (--seeds=N).

#include <cstdio>
#include <string>

#include "config/presets.hpp"
#include "driver/run.hpp"
#include "stats/accumulators.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"

namespace hc3i::bench {

/// One run of the paper §5.2 reference scenario.
inline driver::RunResult run_reference(SimTime timer0, SimTime timer1,
                                       double messages_1_to_0,
                                       SimTime gc_period, std::uint64_t seed) {
  driver::RunOptions opts;
  opts.spec.topology = config::paper_reference_topology();
  opts.spec.application = config::paper_reference_application(messages_1_to_0);
  opts.spec.timers =
      config::paper_reference_timers(timer0, timer1, gc_period);
  opts.seed = seed;
  return driver::run_simulation(opts);
}

/// Seed-averaged committed-CLC counts for one timer configuration.
struct ClcCounts {
  double forced0{0}, unforced0{0}, forced1{0}, unforced1{0};
};

inline ClcCounts average_clcs(SimTime timer0, SimTime timer1,
                              double messages_1_to_0, int seeds) {
  ClcCounts avg;
  for (int s = 1; s <= seeds; ++s) {
    const auto r = run_reference(timer0, timer1, messages_1_to_0,
                                 SimTime::infinity(), static_cast<std::uint64_t>(s));
    avg.forced0 += static_cast<double>(r.clc_forced(ClusterId{0}));
    avg.unforced0 += static_cast<double>(r.clc_unforced(ClusterId{0}));
    avg.forced1 += static_cast<double>(r.clc_forced(ClusterId{1}));
    avg.unforced1 += static_cast<double>(r.clc_unforced(ClusterId{1}));
  }
  avg.forced0 /= seeds;
  avg.unforced0 /= seeds;
  avg.forced1 /= seeds;
  avg.unforced1 /= seeds;
  return avg;
}

/// Print a standard bench header.
inline void print_header(const char* id, const char* title,
                         const char* paper_summary) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("Paper reports: %s\n", paper_summary);
  std::printf("==============================================================\n\n");
}

}  // namespace hc3i::bench
