// Table 3 reproduction: garbage collection on three clusters (paper §5.4).
// Cluster 2 clones cluster 1; roughly 200 messages leave and arrive in each
// cluster over 10 h; GC every 2 hours.
//
//   paper: before 30-80 stored CLCs per cluster, after always 2.

#include "bench_common.hpp"

using namespace hc3i;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  bench::print_header(
      "Table 3", "Number of stored CLCs around each GC (3 clusters)",
      "before 30-80 per cluster, after always 2");

  driver::RunOptions opts;
  opts.spec.topology = config::paper_three_cluster_topology();
  opts.spec.application = config::paper_three_cluster_application();
  opts.spec.timers = config::paper_three_cluster_timers(hours(2));
  opts.seed = seed;
  const auto result = driver::run_simulation(opts);

  stats::Table t({"GC #", "C0 Before", "C0 After", "C1 Before", "C1 After",
                  "C2 Before", "C2 After"});
  // Group the per-cluster events into GC rounds of three.
  std::vector<core::GcEvent> buffer;
  int round = 0;
  for (const auto& ev : result.gc_events) {
    buffer.push_back(ev);
    if (buffer.size() == 3) {
      core::GcEvent by_cluster[3];
      for (const auto& e : buffer) by_cluster[e.cluster.v] = e;
      t.row().cell(std::int64_t{++round});
      for (int c = 0; c < 3; ++c) {
        t.cell(static_cast<std::uint64_t>(by_cluster[c].clcs_before))
            .cell(static_cast<std::uint64_t>(by_cluster[c].clcs_after));
      }
      buffer.clear();
    }
  }
  std::printf("%s\n", t.to_ascii().c_str());
  std::printf("Paper Table 3: before 30/48/54/38 (c0), 50/80/78/64 (c1 and "
              "c2), after always 2.\n");
  return 0;
}
