// Table 2 reproduction: garbage-collection effectiveness on two clusters
// (paper §5.4).  Workload: the Figure 9 configuration with 103 messages from
// cluster 1 to cluster 0, both timers 30 min, one GC every 2 hours.
//
//   paper: stored CLCs before each GC 10-18, after each GC always 2;
//          without GC, 63 CLCs accumulate per cluster; at most 4 logged
//          messages are held at any time.

#include "bench_common.hpp"

using namespace hc3i;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  bench::print_header(
      "Table 2", "Number of stored CLCs around each GC (2 clusters)",
      "before 10-18 / after always 2; 63 CLCs per cluster without GC; "
      "max 4 logged messages");

  // Reference run *without* GC: how much storage accumulates (paper: 63).
  const auto nogc = bench::run_reference(minutes(30), minutes(30), 103.0,
                                         SimTime::infinity(), seed);
  std::printf("Without GC after 10 h: cluster 0 stores %llu CLCs, cluster 1 "
              "stores %llu (paper: 63 each)\n",
              static_cast<unsigned long long>(nogc.counter("store.final_clcs.c0")),
              static_cast<unsigned long long>(nogc.counter("store.final_clcs.c1")));
  std::printf("Each node therefore holds 2x that many local states "
              "(own + neighbour replica), cf. the paper's 126.\n\n");

  // Run with a GC every 2 hours and print the before/after table.
  const auto gc = bench::run_reference(minutes(30), minutes(30), 103.0,
                                       hours(2), seed);
  stats::Table t({"GC #", "Cluster 0 Before", "Cluster 0 After",
                  "Cluster 1 Before", "Cluster 1 After"});
  // gc_events arrive interleaved per cluster; group them by round.
  std::vector<std::pair<core::GcEvent, core::GcEvent>> rounds;
  core::GcEvent pending{};
  bool have_pending = false;
  for (const auto& ev : gc.gc_events) {
    if (!have_pending) {
      pending = ev;
      have_pending = true;
    } else {
      const auto c0 = pending.cluster.v == 0 ? pending : ev;
      const auto c1 = pending.cluster.v == 0 ? ev : pending;
      rounds.emplace_back(c0, c1);
      have_pending = false;
    }
  }
  int i = 0;
  for (const auto& [c0, c1] : rounds) {
    t.row().cell(std::int64_t{++i})
        .cell(static_cast<std::uint64_t>(c0.clcs_before))
        .cell(static_cast<std::uint64_t>(c0.clcs_after))
        .cell(static_cast<std::uint64_t>(c1.clcs_before))
        .cell(static_cast<std::uint64_t>(c1.clcs_after));
  }
  std::printf("%s\n", t.to_ascii().c_str());
  std::printf("Paper Table 2: before 10/18/15/14 (c0) and 11/18/14/15 (c1), "
              "after always 2.\n\n");
  std::printf("Max unacknowledged logged messages (the paper's metric): "
              "c0=%llu c1=%llu (paper: 4 in both clusters)\n",
              static_cast<unsigned long long>(gc.counter("log.max_unacked.c0")),
              static_cast<unsigned long long>(gc.counter("log.max_unacked.c1")));
  std::printf("Total retained log entries between GCs (high-water): "
              "c0=%llu c1=%llu\n",
              static_cast<unsigned long long>(gc.counter("log.max_entries.c0")),
              static_cast<unsigned long long>(gc.counter("log.max_entries.c1")));
  return 0;
}
