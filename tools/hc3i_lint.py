#!/usr/bin/env python3
"""hc3i-lint: determinism & ownership invariants, machine-checked.

The repo's repro contract is byte-identical fixed-seed ``--dump-counters``
goldens, and the sharded runner's thread-safety rests on "shards share only
immutable specs/plans".  Both used to be policed by runtime tests and
reviewer vigilance only; this tool makes them static, per-commit checks.
Rules (IDs are stable; docs/invariants.md maps each to the invariant it
enforces):

  det-wallclock  no wall-clock or entropy source in simulation code
                 (std::chrono clocks, time(), clock(), rand()/srand(),
                 std::random_device, mt19937, getenv) — the single
                 sanctioned use lives in src/util/walltime.hpp and is
                 baselined, not special-cased here.
  det-unordered  no std::unordered_map/set declarations: their iteration
                 order is implementation-defined, and one iteration feeding
                 a counter, report, dump, or wire encoding breaks the
                 golden contract.  Membership-only uses are tagged
                 ``// lint: unordered-ok(<reason>)`` at the declaration.
  det-ptrkey     no pointer-valued keys in associative containers and no
                 address-derived integers (reinterpret_cast to
                 uintptr_t/size_t, std::hash<T*>): addresses vary run to
                 run, so anything they feed — seeds, ordering, dumps — is
                 nondeterministic.
  check-pure     HC3I_CHECK / assert arguments must be side-effect free
                 (no ++/--, no assignment, no calls from the curated
                 mutating-name list): HC3I_DISABLE_CHECKS compiles checks
                 out without evaluating arguments, so a side-effecting
                 check changes behaviour between build modes.
  own-static     no mutable static / thread_local / namespace-scope global
                 state in src/ outside the arena/registry allowlist — the
                 sharded runner's no-sharing claim, statically.  Allowlisted
                 sites are tagged ``// lint: static-ok(<reason>)``.
  trace-guarded  every trace emission site in src/ must go through its
                 self-guarding macro: HC3I_TRACE checks the level before
                 formatting, HC3I_OBS null-tests the recorder pointer.  A
                 raw ``Trace::emit(...)`` formats unconditionally and a raw
                 ``obs->emit(...)`` crashes when tracing is off; both defeat
                 the zero-cost-when-off contract.  The implementation homes
                 (src/obs/, src/util/log.hpp, src/util/log.cpp) are
                 excluded; sanctioned raw calls elsewhere are tagged
                 ``// lint: trace-ok(<reason>)``.

Suppression, two mechanisms, both reason-carrying:

  * inline tag ``// lint: <rule-suffix>-ok(<reason>)`` on the offending
    line, or in the comment block immediately above it;
  * a file-scoped entry in tools/lint_baseline.txt:
    ``<rule-id><TAB><path><TAB><reason>``.

Empty reasons are rejected.  Under ``--strict``, baseline entries that no
longer match any finding are rejected too (a stale suppression is a hole).

Engine: uses libclang (python bindings) for declaration-level precision
when importable, and always falls back to the token/regex engine —
CI can never silently skip the pass because clang is missing.
``--engine=regex`` forces the fallback (the self-tests use it so they are
deterministic across environments).

Usage:
    python3 tools/hc3i_lint.py [--strict] [--engine=auto|regex]
                               [--baseline=tools/lint_baseline.txt]
                               [paths...]
Default scan set: src/, examples/, bench/ under the repo root (own-static
and check-pure scoping per rule, see RULE_SCOPES).
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

# --- rule table -------------------------------------------------------------

RULES = {
    "det-wallclock": "wall-clock/entropy source in simulation code",
    "det-unordered": "unordered container (iteration order is not stable)",
    "det-ptrkey": "pointer key / address-derived value",
    "check-pure": "side effect inside HC3I_CHECK/assert argument",
    "own-static": "mutable static/thread_local/global state",
    "trace-guarded": "unguarded trace emission (use HC3I_TRACE/HC3I_OBS)",
}

# Tag suffix "unordered-ok(...)" -> rule id.
TAG_FOR_RULE = {
    "det-wallclock": "wallclock-ok",
    "det-unordered": "unordered-ok",
    "det-ptrkey": "ptrkey-ok",
    "check-pure": "check-ok",
    "own-static": "static-ok",
    "trace-guarded": "trace-ok",
}
RULE_FOR_TAG = {v: k for k, v in TAG_FOR_RULE.items()}

# Which top-level dirs each rule scans.  own-static is src-only by design:
# examples and benches are drivers, their globals (arg parsing, alloc
# counters) are not simulation state.  trace-guarded is src-only too:
# examples/benches run at a level they set themselves, so a raw emit there
# is a driver choice, not a hot-path hazard.
RULE_SCOPES = {
    "det-wallclock": ("src", "examples", "bench"),
    "det-unordered": ("src", "examples", "bench"),
    "det-ptrkey": ("src", "examples", "bench"),
    "check-pure": ("src", "examples", "bench"),
    "own-static": ("src",),
    "trace-guarded": ("src",),
}

CXX_EXTS = (".cpp", ".hpp", ".cc", ".h", ".cxx", ".hxx")


@dataclass
class Finding:
    rule: str
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    snippet: str
    suppressed_by: str = ""  # "", "tag", or "baseline"

    def render(self) -> str:
        return (f"{self.path}:{self.line}: [{self.rule}] "
                f"{RULES[self.rule]}: {self.snippet.strip()}")


@dataclass
class BaselineEntry:
    rule: str
    path: str
    reason: str
    lineno: int
    hits: int = 0


@dataclass
class FileScan:
    findings: list = field(default_factory=list)
    errors: list = field(default_factory=list)  # malformed tags etc.


# --- source preprocessing ---------------------------------------------------

def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving offsets.

    Newlines inside block comments survive so line numbers stay exact.
    Handles // and /* */, "..." with escapes, '...' with escapes, and the
    raw-string form R"delim(...)delim".
    """
    out = list(text)
    i, n = 0, len(text)

    def blank(a: int, b: int) -> None:
        for k in range(a, b):
            if out[k] != "\n":
                out[k] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            blank(i, j)
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            blank(i, j + 2)
            i = j + 2
        elif c == "R" and text[i:i + 2] == 'R"':
            m = re.match(r'R"([^\s()\\]{0,16})\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i + m.end())
                j = n - len(close) if j < 0 else j
                blank(i, j + len(close))
                i = j + len(close)
            else:
                i += 1
        elif c == '"' or c == "'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            blank(i + 1, min(j, n))
            i = min(j, n) + 1
        else:
            i += 1
    return "".join(out)


TAG_RE = re.compile(r"lint:\s*([a-z0-9-]+)-ok\s*\(")


def collect_tags(raw_lines, path):
    """Return ({line -> set(rule)}, errors).

    A tag suppresses findings from its own line through the next
    non-comment, non-blank line (inclusive) — so a tag inside the comment
    block above a declaration covers the declaration.  The reason between
    the parentheses may span lines; it must contain a non-space character.
    """
    suppress = {}
    errors = []
    joined = "".join(raw_lines)
    line_starts = [0]
    for ln in raw_lines:
        line_starts.append(line_starts[-1] + len(ln))

    def offset_to_line(off: int) -> int:
        lo, hi = 0, len(line_starts) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if line_starts[mid + 1] <= off:
                lo = mid + 1
            else:
                hi = mid
        return lo  # 0-based

    for m in TAG_RE.finditer(joined):
        suffix = m.group(1) + "-ok"
        tag_line = offset_to_line(m.start())
        if suffix not in RULE_FOR_TAG:
            errors.append(f"{path}:{tag_line + 1}: unknown lint tag "
                          f"'{suffix}' (known: "
                          f"{', '.join(sorted(RULE_FOR_TAG))})")
            continue
        rule = RULE_FOR_TAG[suffix]
        # Reason: scan to the matching close paren (may span lines).
        depth, j = 1, m.end()
        while j < len(joined) and depth > 0:
            if joined[j] == "(":
                depth += 1
            elif joined[j] == ")":
                depth -= 1
            j += 1
        reason = joined[m.end():j - 1]
        if depth != 0 or not reason.strip():
            errors.append(f"{path}:{tag_line + 1}: lint tag '{suffix}' "
                          "needs a non-empty (reason)")
            continue
        # Window: tag line through the next non-comment, non-blank line —
        # so a tag in the comment block above a declaration covers it, and
        # a trailing tag covers its own line.
        k = offset_to_line(j - 1) + 1
        while k < len(raw_lines):
            probe = raw_lines[k].strip()
            if probe and not probe.startswith(("//", "/*", "*")):
                break
            k += 1
        for ln in range(tag_line, min(k, len(raw_lines) - 1) + 1):
            suppress.setdefault(ln + 1, set()).add(rule)
    return suppress, errors


# --- rule engines (regex/token fallback — always available) -----------------

WALLCLOCK_RE = re.compile(
    r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
    r"|\brandom_device\b"
    r"|\bmt19937(?:_64)?\b"
    r"|(?:(?<=std::)|(?<![\w.:]))(?:rand|srand|time|clock|getenv)\s*\(")

UNORDERED_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")

PTRKEY_RES = (
    re.compile(r"\b(?:unordered_)?(?:map|set|multimap|multiset)\s*<"
               r"[^<>,]*\*\s*[,>]"),
    re.compile(r"\breinterpret_cast\s*<\s*(?:std::)?"
               r"(?:u?intptr_t|size_t|u?int64_t|u?int32_t)\s*>"),
    re.compile(r"\bstd::hash\s*<[^<>]*\*\s*>"),
)

STATIC_HEAD_RE = re.compile(
    r"^\s*(?:inline\s+)?(?:static|thread_local)\b"
    r"|^\s*static\s+thread_local\b")
INLINE_VAR_RE = re.compile(r"^\s*inline\s+(?!namespace\b)")
# A declaration of a g_-named global: type token(s), then the name.  The
# repo names namespace-scope mutable globals g_* (log sink, trace level),
# so the naming convention itself becomes the detector for globals the
# static/thread_local patterns cannot see (anonymous-namespace definitions
# carry no storage keyword).  Assignments like `g_sink = ...` do not match:
# there is no preceding type token.
GLOBAL_NAME_RE = re.compile(
    r"^\s*(?:[A-Za-z_][\w:]*(?:<[^<>]*>)?[\s*&]+)g_\w+\s*[;={]")
CONSTNESS_RE = re.compile(r"\b(?:const|constexpr|consteval)\b")

# Curated for THIS repo: names that always mutate here.  `store` is
# deliberately absent — `Runtime::store(ClusterId)` is the repo's ClcStore
# accessor idiom, not std::atomic::store; atomic writes are still caught
# via fetch_*/exchange and plain assignment.
MUTATING_CALLS = (
    "push_back", "pop_back", "emplace_back", "emplace_front", "emplace",
    "push", "pop", "insert", "erase", "clear", "reset", "release",
    "resize", "assign", "exchange", "swap", "advance", "consume",
    "commit", "install", "schedule", "cancel", "send", "deliver",
)
MUTATING_CALL_RE = re.compile(
    r"(?:\.|->)\s*(?:" + "|".join(MUTATING_CALLS) + r"|set_\w+|add_\w+"
    r"|fetch_\w+|mark_\w+|bump\w*|next\w*)\s*\(")
CHECK_HEAD_RE = re.compile(r"\b(?:HC3I_CHECK|assert)\s*\(")

# Trace emission: a qualified Trace::emit call, or a member emit(...) call
# (the only emit-named members in src/ are the trace sinks: hc3i::Trace and
# obs::Recorder).  The macro bodies themselves live in the excluded homes,
# so every properly guarded site is invisible to this scan.
TRACE_EMIT_RES = (
    re.compile(r"\bTrace\s*::\s*emit\s*\("),
    re.compile(r"(?:\.|->)\s*emit\s*\("),
)
# Implementation homes: the guard macros and the emit definitions live
# here; a raw call inside them IS the mechanism, not a bypass.
TRACE_EMIT_HOMES = ("src/util/log.hpp", "src/util/log.cpp")
TRACE_EMIT_HOME_DIRS = ("src/obs/",)


def scan_trace_guarded(stripped_lines, out, path):
    if path in TRACE_EMIT_HOMES:
        return
    if any(path.startswith(d) for d in TRACE_EMIT_HOME_DIRS):
        return
    for i, line in enumerate(stripped_lines, start=1):
        for rex in TRACE_EMIT_RES:
            if rex.search(line):
                out.append(Finding("trace-guarded", path, i, line))
                break


def scan_wallclock(stripped_lines, out, path):
    for i, line in enumerate(stripped_lines, start=1):
        if line.lstrip().startswith("#include"):
            continue
        m = WALLCLOCK_RE.search(line)
        if m:
            out.append(Finding("det-wallclock", path, i, line))


def scan_unordered(stripped_lines, out, path):
    for i, line in enumerate(stripped_lines, start=1):
        if line.lstrip().startswith("#include"):
            continue
        if UNORDERED_RE.search(line):
            out.append(Finding("det-unordered", path, i, line))


def scan_ptrkey(stripped_lines, out, path):
    for i, line in enumerate(stripped_lines, start=1):
        for rex in PTRKEY_RES:
            if rex.search(line):
                out.append(Finding("det-ptrkey", path, i, line))
                break


def _has_side_effect(arg_text: str) -> bool:
    if "++" in arg_text or "--" in arg_text:
        return True
    if MUTATING_CALL_RE.search(arg_text):
        return True
    # Assignment: '=' that is neither part of a comparison nor preceded by
    # one, but IS counted when preceded by an arithmetic/bit op (compound
    # assignment).  '<=' '>=' '==' '!=' excluded by the prev-char test.
    for k, ch in enumerate(arg_text):
        if ch != "=":
            continue
        prev = arg_text[k - 1] if k > 0 else ""
        nxt = arg_text[k + 1] if k + 1 < len(arg_text) else ""
        if nxt == "=" or prev in "=!<>":
            continue
        return True
    return False


def scan_check_pure(stripped_text, line_of_offset, out, path):
    for m in CHECK_HEAD_RE.finditer(stripped_text):
        depth, j = 1, m.end()
        while j < len(stripped_text) and depth > 0:
            c = stripped_text[j]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
            j += 1
        args = stripped_text[m.end():j - 1]
        if _has_side_effect(args):
            line = line_of_offset(m.start())
            snippet = stripped_text[m.start():m.end()] + args[:48]
            out.append(Finding("check-pure", path, line,
                               " ".join(snippet.split())))


def _decl_kind(rest: str) -> str:
    """'function' if the first structural token after the specifiers is a
    parameter list, else 'variable'."""
    for ch in rest:
        if ch == "(":
            return "function"
        if ch in "={;":
            return "variable"
    return "variable"


def scan_own_static(stripped_lines, out, path):
    n = len(stripped_lines)
    i = 0
    while i < n:
        line = stripped_lines[i]
        head = (STATIC_HEAD_RE.search(line) or INLINE_VAR_RE.search(line)
                or GLOBAL_NAME_RE.search(line))
        if not head:
            i += 1
            continue
        # Join the logical declaration: up to the first ';' or '{' (max 4
        # lines — real declarations here are short).
        decl = line
        j = i
        while not re.search(r"[;{]", decl) and j + 1 < n and j - i < 3:
            j += 1
            decl += " " + stripped_lines[j]
        flat = " ".join(decl.split())
        is_static = bool(STATIC_HEAD_RE.search(line))
        is_tls = "thread_local" in flat
        is_global_name = bool(GLOBAL_NAME_RE.search(line))
        if not (is_static or is_tls or is_global_name
                or INLINE_VAR_RE.search(line)):
            i = j + 1
            continue
        # Specifier-const declarations are immutable state: fine.
        specs = flat.split("=", 1)[0].split("{", 1)[0]
        if CONSTNESS_RE.search(specs):
            i = j + 1
            continue
        # `inline` alone only matters for variables at namespace scope in
        # headers; functions are skipped by the decl-kind test either way.
        body = re.sub(r"^\s*(?:inline|static|thread_local)\s+", "",
                      flat)
        body = re.sub(r"^\s*(?:inline|static|thread_local)\s+", "", body)
        if _decl_kind(re.sub(r"<[^<>]*>", "<>", body)) == "variable":
            # Plain `inline` hits require a variable with an initializer or
            # g_ name to avoid flagging forward declarations.
            if (is_static or is_tls or is_global_name
                    or re.search(r"[=]", flat)):
                out.append(Finding("own-static", path, i + 1, line))
        i = j + 1


# --- optional libclang engine ----------------------------------------------

def try_clang_index():
    """Import libclang if present; return a usable Index or None."""
    try:
        from clang import cindex  # type: ignore
        idx = cindex.Index.create()
        return cindex, idx
    except Exception:
        return None


def clang_extra_findings(cindex, index, abspath, relpath):
    """AST pass: unordered-container and mutable-static variable decls.

    Purely additive precision on top of the regex engine (catches aliased
    or macro-hidden declarations the token pass cannot see); any failure
    degrades silently to the regex results.
    """
    out = []
    try:
        tu = index.parse(abspath, args=["-std=c++20", "-Isrc"])
        for cur in tu.cursor.walk_preorder():
            try:
                if cur.location.file is None:
                    continue
                if os.path.abspath(cur.location.file.name) != abspath:
                    continue
                if cur.kind in (cindex.CursorKind.VAR_DECL,
                                cindex.CursorKind.FIELD_DECL):
                    spelling = cur.type.get_canonical().spelling
                    if "unordered_map" in spelling or \
                            "unordered_set" in spelling:
                        out.append(Finding("det-unordered", relpath,
                                           cur.location.line,
                                           spelling[:80]))
                if cur.kind == cindex.CursorKind.VAR_DECL and \
                        cur.storage_class == cindex.StorageClass.STATIC:
                    t = cur.type.get_canonical()
                    if not t.is_const_qualified():
                        out.append(Finding("own-static", relpath,
                                           cur.location.line,
                                           cur.spelling))
            except Exception:
                continue
    except Exception:
        return []
    return out


# --- baseline ---------------------------------------------------------------

def load_baseline(path):
    entries, errors = [], []
    if not os.path.exists(path):
        return entries, errors
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.rstrip("\n")
            if not line.strip() or line.lstrip().startswith("#"):
                continue
            parts = re.split(r"\t+|\s{2,}", line.strip(), maxsplit=2)
            if len(parts) < 3 or not parts[2].strip():
                errors.append(f"{path}:{lineno}: baseline entry needs "
                              "'<rule>\t<path>\t<reason>' with a non-empty "
                              f"reason: '{line.strip()}'")
                continue
            rule, fpath, reason = parts[0], parts[1], parts[2].strip()
            if rule not in RULES:
                errors.append(f"{path}:{lineno}: unknown rule '{rule}'")
                continue
            entries.append(BaselineEntry(rule, fpath, reason, lineno))
    return entries, errors


# --- driver -----------------------------------------------------------------

def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def iter_sources(root, paths):
    if paths:
        for p in paths:
            ap = os.path.abspath(p)
            if os.path.isdir(ap):
                for dirpath, dirnames, filenames in os.walk(ap):
                    dirnames[:] = [d for d in dirnames
                                   if not d.startswith(".")]
                    for name in sorted(filenames):
                        if name.endswith(CXX_EXTS):
                            yield os.path.join(dirpath, name)
            elif ap.endswith(CXX_EXTS):
                yield ap
        return
    for top in ("src", "examples", "bench"):
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames if not d.startswith(".")]
            for name in sorted(filenames):
                if name.endswith(CXX_EXTS):
                    yield os.path.join(dirpath, name)


def scan_text(relpath, text, engine="regex", clang_ctx=None, abspath=None):
    """Scan one file's contents; returns FileScan (pre-suppression applied
    for tags, baseline applied by the caller)."""
    fs = FileScan()
    raw_lines = text.splitlines(keepends=True)
    suppress, tag_errors = collect_tags(raw_lines, relpath)
    fs.errors.extend(tag_errors)

    stripped = strip_comments_and_strings(text)
    stripped_lines = stripped.splitlines()
    line_starts = [0]
    for ln in stripped.splitlines(keepends=True):
        line_starts.append(line_starts[-1] + len(ln))

    def line_of_offset(off):
        lo, hi = 0, len(line_starts) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if line_starts[mid + 1] <= off:
                lo = mid + 1
            else:
                hi = mid
        return lo + 1

    top = relpath.split("/", 1)[0]
    findings = []
    if top in RULE_SCOPES["det-wallclock"]:
        scan_wallclock(stripped_lines, findings, relpath)
    if top in RULE_SCOPES["det-unordered"]:
        scan_unordered(stripped_lines, findings, relpath)
    if top in RULE_SCOPES["det-ptrkey"]:
        scan_ptrkey(stripped_lines, findings, relpath)
    if top in RULE_SCOPES["check-pure"]:
        scan_check_pure(stripped, line_of_offset, findings, relpath)
    if top in RULE_SCOPES["own-static"]:
        scan_own_static(stripped_lines, findings, relpath)
    if top in RULE_SCOPES["trace-guarded"]:
        scan_trace_guarded(stripped_lines, findings, relpath)

    if engine == "clang" and clang_ctx is not None and abspath:
        cindex, index = clang_ctx
        extra = clang_extra_findings(cindex, index, abspath, relpath)
        seen = {(f.rule, f.line) for f in findings}
        findings.extend(f for f in extra
                        if f.rule in RULE_SCOPES and
                        top in RULE_SCOPES[f.rule] and
                        (f.rule, f.line) not in seen)

    # Dedup (multiple patterns on one line) and apply tag suppression.
    uniq = {}
    for f in findings:
        uniq.setdefault((f.rule, f.line), f)
    for (rule, line), f in sorted(uniq.items(), key=lambda kv: kv[0][1]):
        if rule in suppress.get(line, set()):
            f.suppressed_by = "tag"
        fs.findings.append(f)
    return fs


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="hc3i_lint.py",
                                 description=__doc__.splitlines()[0])
    ap.add_argument("--strict", action="store_true",
                    help="also fail on stale baseline entries")
    ap.add_argument("--engine", choices=("auto", "regex"), default="auto",
                    help="auto = libclang precision layer when importable; "
                         "regex = token fallback only")
    ap.add_argument("--baseline", default=None,
                    help="baseline file (default tools/lint_baseline.txt)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("paths", nargs="*",
                    help="files/dirs to scan (default src examples bench)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule:15s} {desc}  [tag: {TAG_FOR_RULE[rule]}(...)]")
        return 0

    root = repo_root()
    baseline_path = args.baseline or os.path.join(root, "tools",
                                                  "lint_baseline.txt")
    baseline, errors = load_baseline(baseline_path)

    clang_ctx = try_clang_index() if args.engine == "auto" else None
    engine = "clang" if clang_ctx else "regex"

    all_findings = []
    nfiles = 0
    for abspath in iter_sources(root, args.paths):
        relpath = os.path.relpath(abspath, root).replace(os.sep, "/")
        nfiles += 1
        try:
            with open(abspath, encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            errors.append(f"{relpath}: unreadable: {e}")
            continue
        fs = scan_text(relpath, text, engine=engine, clang_ctx=clang_ctx,
                       abspath=abspath)
        errors.extend(fs.errors)
        for f in fs.findings:
            if not f.suppressed_by:
                for entry in baseline:
                    if entry.rule == f.rule and entry.path == f.path:
                        entry.hits += 1
                        f.suppressed_by = "baseline"
                        break
            all_findings.append(f)

    active = [f for f in all_findings if not f.suppressed_by]
    for f in active:
        print(f"error: {f.render()}", file=sys.stderr)
    for err in errors:
        print(f"error: {err}", file=sys.stderr)

    stale = [e for e in baseline if e.hits == 0]
    if args.strict:
        for e in stale:
            print(f"error: {baseline_path}:{e.lineno}: stale baseline "
                  f"entry ({e.rule} {e.path}) matches no finding — "
                  "delete it", file=sys.stderr)

    suppressed = len(all_findings) - len(active)
    failed = bool(active or errors or (args.strict and stale))
    print(f"hc3i-lint[{engine}]: {nfiles} files, "
          f"{len(active)} finding(s), {suppressed} suppressed "
          f"({len(baseline)} baseline entr{'y' if len(baseline) == 1 else 'ies'}), "
          f"{len(errors)} error(s){', FAILED' if failed else ''}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
