#!/usr/bin/env python3
"""Documentation checks: relative-link resolution plus light markdown lint.

Run from anywhere inside the repo:

    python3 tools/check_docs.py

Checks every tracked-looking *.md file (build trees and hidden dirs are
skipped) for:

  * relative links and images that do not resolve to an existing file or
    directory (anchors are stripped; absolute URLs are ignored),
  * unbalanced fenced code blocks,
  * duplicate top-level titles (more than one leading `# ` heading),
  * subsystem coverage: every `src/<subsystem>/` directory must be
    mentioned in docs/architecture.md or docs/paper_map.md — a new
    subsystem cannot land undocumented.

Exit status is non-zero when any check fails, so CI can gate on it.
"""

import os
import re
import sys

SKIP_DIRS = {"build", ".git", ".github", "node_modules"}
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def repo_root() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(here)


def md_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames if d not in SKIP_DIRS and not d.startswith(".")
        ]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def strip_code_spans(line: str) -> str:
    # Links inside inline code (`[i]` of an array, say) are not links.
    return re.sub(r"`[^`]*`", "", line)


def check_file(path: str, root: str):
    errors = []
    fence_count = 0
    h1_count = 0
    in_fence = False
    with open(path, encoding="utf-8") as f:
        lines = f.readlines()
    for lineno, line in enumerate(lines, start=1):
        if line.lstrip().startswith("```"):
            fence_count += 1
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        if line.startswith("# "):
            h1_count += 1
        for match in LINK_RE.finditer(strip_code_spans(line)):
            target = match.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
                continue
            if target.startswith("#"):  # same-file anchor
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target)
            )
            if not os.path.exists(resolved):
                errors.append(
                    f"{os.path.relpath(path, root)}:{lineno}: broken link "
                    f"'{match.group(1)}' (no such file: "
                    f"{os.path.relpath(resolved, root)})"
                )
    if fence_count % 2 != 0:
        errors.append(
            f"{os.path.relpath(path, root)}: unbalanced ``` code fences"
        )
    if h1_count > 1:
        errors.append(
            f"{os.path.relpath(path, root)}: {h1_count} top-level '# ' "
            "headings (expected at most one)"
        )
    return errors


def check_subsystem_coverage(root: str):
    """Every src/<subsystem>/ needs a row in the architecture docs.

    'Row' is deliberately loose — any `src/<name>` mention in
    docs/architecture.md or docs/paper_map.md counts, table or prose —
    because the two files organise by concern (paper section, perf story),
    not by directory.  What this enforces is that no subsystem exists only
    in the tree.
    """
    errors = []
    src = os.path.join(root, "src")
    if not os.path.isdir(src):
        return errors
    corpus = ""
    doc_names = ("architecture.md", "paper_map.md")
    for name in doc_names:
        path = os.path.join(root, "docs", name)
        if os.path.exists(path):
            with open(path, encoding="utf-8") as f:
                corpus += f.read()
    for entry in sorted(os.listdir(src)):
        if not os.path.isdir(os.path.join(src, entry)):
            continue
        if re.search(r"\bsrc/" + re.escape(entry) + r"\b", corpus):
            continue
        errors.append(
            f"src/{entry}/ is not mentioned in docs/architecture.md or "
            "docs/paper_map.md — add a row for the subsystem"
        )
    return errors


def main() -> int:
    root = repo_root()
    all_errors = []
    checked = 0
    for path in md_files(root):
        checked += 1
        all_errors.extend(check_file(path, root))
    all_errors.extend(check_subsystem_coverage(root))
    for err in all_errors:
        print(f"error: {err}", file=sys.stderr)
    print(f"check_docs: {checked} markdown files, {len(all_errors)} errors")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
