#!/usr/bin/env bash
# Check-only clang-format gate.  No file is ever rewritten by CI; a
# violation prints the offending diff hunks and fails the job.  There is
# deliberately no mass-reformat: the bar applies to files a change touches
# (--diff), or to an explicit file list, so history stays blame-friendly.
#
# Usage:
#   tools/check_format.sh --diff [base-ref]   # files changed vs base
#                                             # (default: HEAD~1, falling
#                                             # back to --all on shallow or
#                                             # rootless checkouts)
#   tools/check_format.sh --all               # every tracked C++ file
#   tools/check_format.sh file.cpp ...        # explicit list
set -u

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check_format: $CLANG_FORMAT not found; install it or set" \
       "CLANG_FORMAT (CI installs clang-format; locally this check is" \
       "skipped with a warning)" >&2
  # Missing formatter is an error in CI (CI=true) and a soft skip locally,
  # so the repo never hard-requires clang tooling on dev machines.
  if [ "${CI:-false}" = "true" ]; then exit 1; else exit 0; fi
fi

collect_all() {
  git ls-files -- 'src/**/*.cpp' 'src/**/*.hpp' 'tests/*.cpp' \
      'tests/*.hpp' 'examples/*.cpp' 'bench/*.cpp' 'bench/*.hpp'
}

files=()
case "${1:---diff}" in
  --all)
    while IFS= read -r f; do files+=("$f"); done < <(collect_all)
    ;;
  --diff)
    base="${2:-HEAD~1}"
    if git rev-parse --verify --quiet "$base" >/dev/null; then
      while IFS= read -r f; do
        case "$f" in
          src/*.cpp|src/*.hpp|src/*/*.cpp|src/*/*.hpp|tests/*.cpp|\
          tests/*.hpp|examples/*.cpp|bench/*.cpp|bench/*.hpp)
            [ -f "$f" ] && files+=("$f") ;;
        esac
      done < <(git diff --name-only "$base" --)
    else
      echo "check_format: base ref '$base' unavailable; checking all" \
           "tracked files" >&2
      while IFS= read -r f; do files+=("$f"); done < <(collect_all)
    fi
    ;;
  *)
    files=("$@")
    ;;
esac

if [ "${#files[@]}" -eq 0 ]; then
  echo "check_format: no C++ files to check"
  exit 0
fi

status=0
for f in "${files[@]}"; do
  if ! "$CLANG_FORMAT" --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "error: $f is not clang-format clean (diff follows)" >&2
    "$CLANG_FORMAT" "$f" | diff -u "$f" - | sed -n '1,40p' >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_format: ${#files[@]} file(s) clean"
fi
exit "$status"
