// The two halves of the HC3I_CHECK contract (docs/invariants.md,
// "check discipline"):
//
//   enabled  — the condition is evaluated exactly once; a false condition
//              throws CheckFailure carrying expression and location; the
//              message is built only on failure.
//   disabled — (HC3I_DISABLE_CHECKS, the sibling TU) nothing is evaluated
//              at all, so checks are behaviour-neutral *provided* their
//              arguments are side-effect free — which is what lint rule
//              check-pure enforces over src/, examples/ and bench/.

#include "util/check.hpp"

#include <gtest/gtest.h>

#include "check_discipline_probe.hpp"

namespace hc3i_test {
namespace {

TEST(CheckDiscipline, EnabledEvaluatesConditionExactlyOnce) {
  Probe probe;
  HC3I_CHECK(probe.count_true(), "passing check");
  EXPECT_EQ(probe.evaluations, 1);
  EXPECT_EQ(probe.message_builds, 0) << "message built on the success path";
}

TEST(CheckDiscipline, EnabledThrowsOnViolationWithLocation) {
  Probe probe;
  try {
    HC3I_CHECK(probe.count_false(), probe.count_message());
    FAIL() << "violated check did not throw";
  } catch (const hc3i::CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("count_false"), std::string::npos) << what;
    EXPECT_NE(what.find("check_discipline_test.cpp"), std::string::npos)
        << what;
    EXPECT_NE(what.find("probe message"), std::string::npos) << what;
  }
  EXPECT_EQ(probe.evaluations, 1);
  EXPECT_EQ(probe.message_builds, 1);
}

TEST(CheckDiscipline, DisabledEvaluatesNothing) {
  Probe probe;
  // The disabled TU runs a passing check, a failing check, and a message
  // expression.  Behaviour neutrality: no evaluation, no message build,
  // no throw.
  const int evaluations = run_checks_in_disabled_tu(probe);
  EXPECT_EQ(evaluations, 0) << "disabled HC3I_CHECK evaluated an argument";
  EXPECT_EQ(probe.evaluations, 0);
  EXPECT_EQ(probe.message_builds, 0);
}

}  // namespace
}  // namespace hc3i_test
