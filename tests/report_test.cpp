// Tests for the run-report rendering and the disk-loading path used by the
// hc3i_sim standalone tool.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "config/parser.hpp"
#include "config/presets.hpp"
#include "config/writer.hpp"
#include "driver/report.hpp"
#include "driver/run.hpp"

namespace hc3i::testing {
namespace {

driver::RunResult tiny_run() {
  driver::RunOptions opts;
  opts.spec = config::small_test_spec(2, 3);
  opts.spec.application.total_time = minutes(30);
  opts.spec.timers.gc_period = minutes(12);
  opts.scripted_failures.push_back({minutes(20), NodeId{1}});
  return driver::run_simulation(opts);
}

TEST(Report, ContainsEverySection) {
  const auto result = tiny_run();
  const std::string report = driver::render_report(result, 2);
  for (const char* needle :
       {"application messages", "cluster-level checkpoints",
        "protocol traffic", "fault tolerance", "garbage collection",
        "consistency", "CONSISTENT"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
  }
  // The census matrix carries real values.
  EXPECT_NE(report.find("C0"), std::string::npos);
  EXPECT_NE(report.find("failures injected        : 1"), std::string::npos);
}

TEST(Report, CountersCsvIsParseable) {
  const auto result = tiny_run();
  const std::string csv = driver::render_counters_csv(result);
  EXPECT_EQ(csv.rfind("counter,value\n", 0), 0u);
  // Every line has exactly one comma.
  std::istringstream is(csv);
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 1) << line;
    ++lines;
  }
  EXPECT_GT(lines, 20);
}

TEST(Report, ViolationsAreRendered) {
  // Sabotaged protocol (no channel capture) across a few seeds; whichever
  // run trips the oracle must render its violations.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    driver::RunOptions opts;
    opts.spec = config::small_test_spec(2, 4);
    opts.spec.application.total_time = minutes(30);
    for (auto& c : opts.spec.application.clusters) {
      c.mean_compute = seconds(2);
      c.message_bytes = 4 * 1024 * 1024;  // keep messages in flight
    }
    for (auto& t : opts.spec.timers.clusters) t.clc_period = minutes(3);
    opts.hc3i.capture_channel_state = false;  // sabotage (negative control)
    opts.scripted_failures.push_back({minutes(13), NodeId{1}});
    opts.seed = seed;
    opts.validate = false;
    const auto result = driver::run_simulation(opts);
    if (result.violations.empty()) continue;
    const std::string report = driver::render_report(result, 2);
    EXPECT_NE(report.find("VIOLATIONS"), std::string::npos);
    return;
  }
  FAIL() << "no seed tripped the sabotaged run";
}

TEST(ConfigFiles, LoadRunSpecFromDisk) {
  // Round-trip the reference configuration through real files, as the
  // hc3i_sim tool does.
  const auto dir = std::string(::testing::TempDir());
  const auto topo_path = dir + "/hc3i_topo.conf";
  const auto app_path = dir + "/hc3i_app.conf";
  const auto timers_path = dir + "/hc3i_timers.conf";
  {
    std::ofstream(topo_path) << config::write_topology(
        config::paper_reference_topology());
    std::ofstream(app_path) << config::write_application(
        config::paper_reference_application());
    std::ofstream(timers_path) << config::write_timers(
        config::paper_reference_timers(minutes(30), SimTime::infinity()));
  }
  const config::RunSpec spec =
      config::load_run_spec(topo_path, app_path, timers_path);
  EXPECT_EQ(spec.topology.total_nodes(), 200u);
  EXPECT_EQ(spec.timers.clusters[0].clc_period, minutes(30));
  EXPECT_TRUE(spec.timers.clusters[1].clc_period.is_infinite());
  std::remove(topo_path.c_str());
  std::remove(app_path.c_str());
  std::remove(timers_path.c_str());
}

TEST(ConfigFiles, MissingFileFailsCleanly) {
  EXPECT_THROW(config::load_run_spec("/nonexistent/topo", "/nonexistent/app",
                                     "/nonexistent/timers"),
               config::ParseError);
}

}  // namespace
}  // namespace hc3i::testing
