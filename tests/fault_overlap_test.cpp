// Concurrent per-cluster recovery tests: the cluster-isolation property
// (disjoint-cluster incidents recover as if alone), kill-during-recovery
// queueing, phase triggers tolerating remote recoveries, per-cluster stream
// independence, interval-attributed telemetry with the post-campaign
// residual, overlap determinism and the same-cluster queue-bound check.

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "config/presets.hpp"
#include "driver/run.hpp"
#include "fault/campaign.hpp"
#include "test_util.hpp"
#include "util/check.hpp"

namespace hc3i::testing {
namespace {

/// A federation whose clusters cannot observe each other's load: traffic is
/// intra-cluster only and every link has infinite bandwidth (latency-only
/// timing), so the only cross-cluster interaction left is the rollback
/// alert — which carries no cost when the receiver holds no dependency.
driver::RunOptions isolated_opts(std::size_t clusters, std::uint32_t nodes,
                                 SimTime total) {
  driver::RunOptions opts;
  opts.spec = config::small_test_spec(clusters, nodes);
  opts.spec.application.total_time = total;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < clusters; ++c) {
    opts.spec.topology.clusters[c].san.bytes_per_sec = kInf;
    auto& traffic = opts.spec.application.clusters[c].traffic;
    for (std::size_t j = 0; j < traffic.size(); ++j) {
      traffic[j] = j == c ? 1.0 : 0.0;
    }
  }
  for (auto& row : opts.spec.topology.inter) {
    for (auto& link : row) link.bytes_per_sec = kInf;
  }
  return opts;
}

/// Per-cluster counters a concurrent remote recovery must not perturb.
const char* const kClusterCounters[] = {
    "rollback.count", "rollback.faults", "rollback.cascade",
    "clc.total",      "clc.forced",      "clc.unforced",
};

std::uint64_t cluster_counter(const driver::RunResult& r, const char* base,
                              std::size_t c) {
  return r.counter(std::string(base) + ".c" + std::to_string(c));
}

// The tentpole property: N simultaneous single-cluster incidents in N
// disjoint clusters recover concurrently, and each cluster's counters match
// a run where only *its* incident happened.
TEST(FaultOverlap, DisjointIncidentsRecoverAsIfAlone) {
  constexpr std::size_t kClusters = 3;
  constexpr std::uint32_t kNodes = 3;
  const SimTime kill_at = minutes(15);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto combined = isolated_opts(kClusters, kNodes, minutes(30));
    combined.seed = seed;
    for (std::uint32_t c = 0; c < kClusters; ++c) {
      combined.campaign.kills.push_back(
          fault::KillSpec{kill_at, NodeId{c * kNodes + 1}});
    }
    const auto combined_result = driver::run_simulation(combined);
    EXPECT_TRUE(combined_result.violations.empty()) << "seed " << seed;
    EXPECT_EQ(combined_result.counter("fault.injected"), kClusters);
    EXPECT_EQ(combined_result.counter("fault.skipped_overlap"), 0u);
    EXPECT_EQ(combined_result.counter("fault.queued_same_cluster"), 0u);
    ASSERT_EQ(combined_result.incidents.size(), kClusters);
    // All three injected at the same instant: a 3-way overlap.
    EXPECT_EQ(combined_result.fault_summary.max_overlap, kClusters);

    for (std::uint32_t c = 0; c < kClusters; ++c) {
      auto solo = isolated_opts(kClusters, kNodes, minutes(30));
      solo.seed = seed;
      solo.campaign.kills.push_back(
          fault::KillSpec{kill_at, NodeId{c * kNodes + 1}});
      const auto solo_result = driver::run_simulation(solo);
      EXPECT_TRUE(solo_result.violations.empty()) << "seed " << seed;
      for (const char* base : kClusterCounters) {
        EXPECT_EQ(cluster_counter(combined_result, base, c),
                  cluster_counter(solo_result, base, c))
            << base << ".c" << c << " seed " << seed;
      }
      // The incident's own timing is identical: concurrency elsewhere does
      // not stretch this cluster's recovery.
      const fault::Incident& solo_inc = solo_result.incidents.at(0);
      const fault::Incident& comb_inc = combined_result.incidents.at(c);
      EXPECT_EQ(comb_inc.cluster, ClusterId{c});
      EXPECT_TRUE(comb_inc.recovery_complete);
      EXPECT_EQ(comb_inc.injected_at, solo_inc.injected_at);
      EXPECT_EQ(comb_inc.detected_at, solo_inc.detected_at);
      EXPECT_EQ(comb_inc.recovered_at, solo_inc.recovered_at);
      EXPECT_EQ(comb_inc.concurrent_peak, kClusters);
      EXPECT_EQ(solo_inc.concurrent_peak, 1u);
    }
  }
}

// Kill-during-recovery: a second scripted kill into a still-recovering
// cluster queues (fault.queued_same_cluster) and fires at that cluster's
// recovery completion, leaving no stale protocol state behind.
TEST(FaultOverlap, SameClusterKillDuringRecoveryQueues) {
  driver::RunOptions opts;
  opts.spec = config::small_test_spec(2, 3);
  opts.campaign.kills.push_back(fault::KillSpec{minutes(20), NodeId{1}});
  // 20ms later is deep inside the first recovery (detection alone is 50ms).
  opts.campaign.kills.push_back(
      fault::KillSpec{minutes(20) + milliseconds(20), NodeId{2}});
  const auto result = driver::run_simulation(opts);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.counter("fault.injected"), 2u);
  EXPECT_EQ(result.counter("fault.queued_same_cluster"), 1u);
  EXPECT_EQ(result.counter("fault.skipped_overlap"), 0u);
  ASSERT_EQ(result.incidents.size(), 2u);
  const fault::Incident& first = result.incidents[0];
  const fault::Incident& second = result.incidents[1];
  EXPECT_TRUE(first.recovery_complete);
  EXPECT_TRUE(second.recovery_complete);
  // The queued kill fired at (not before) the first recovery's completion.
  EXPECT_GE(second.injected_at, first.recovered_at);
  EXPECT_EQ(second.victim, NodeId{2});
  // Same cluster throughout: never more than one recovery in flight.
  EXPECT_EQ(result.fault_summary.max_overlap, 1u);
}

// A phase-targeted trigger whose moment arrives while a *remote* cluster is
// recovering fires in concurrent mode (the remote rollback does not
// invalidate this cluster's phase window) but is skipped in legacy
// serialized mode.
TEST(FaultOverlap, TriggerToleratesRemoteRecovery) {
  // Probe: find when cluster 0's first CLC commit past the 8-minute mark
  // actually lands (commits are not on an exact period grid).
  const auto make_trigger = [](SimTime not_before) {
    fault::PhaseTriggerSpec trigger;
    trigger.cluster = ClusterId{0};
    trigger.phase = fault::Phase::kCommit;
    trigger.occurrence = 1;
    trigger.victim = NodeId{1};
    trigger.not_before = not_before;
    return trigger;
  };
  driver::RunOptions probe;
  probe.spec = config::small_test_spec(2, 3);
  probe.campaign.phase_triggers.push_back(make_trigger(minutes(8)));
  const auto probed = driver::run_simulation(probe);
  ASSERT_EQ(probed.incidents.size(), 1u);
  const SimTime commit_at = probed.incidents[0].injected_at;

  // Real runs: kill a cluster-1 node 10ms before that commit, so the commit
  // lands inside cluster 1's ~56ms recovery window.
  const auto make_opts = [&](bool serialize) {
    driver::RunOptions opts;
    opts.spec = config::small_test_spec(2, 3);
    opts.campaign.serialize_faults = serialize;
    opts.campaign.kills.push_back(
        fault::KillSpec{commit_at - milliseconds(10), NodeId{4}});
    opts.campaign.phase_triggers.push_back(
        make_trigger(commit_at - milliseconds(5)));
    return opts;
  };

  const auto concurrent = driver::run_simulation(make_opts(false));
  EXPECT_TRUE(concurrent.violations.empty());
  EXPECT_EQ(concurrent.counter("fault.injected"), 2u);
  EXPECT_EQ(concurrent.counter("fault.skipped_overlap"), 0u);
  ASSERT_EQ(concurrent.incidents.size(), 2u);
  EXPECT_STREQ(concurrent.incidents[1].source, "phase");
  EXPECT_EQ(concurrent.incidents[1].cluster, ClusterId{0});
  // The phase kill recovered while cluster 1 was still recovering.
  EXPECT_EQ(concurrent.fault_summary.max_overlap, 2u);

  const auto serialized = driver::run_simulation(make_opts(true));
  EXPECT_TRUE(serialized.violations.empty());
  EXPECT_EQ(serialized.counter("fault.injected"), 1u);
  EXPECT_EQ(serialized.counter("fault.skipped_overlap"), 1u);
  ASSERT_EQ(serialized.incidents.size(), 1u);
  EXPECT_STREQ(serialized.incidents[0].source, "scripted");
}

// A per-cluster stream is deaf to remote recoveries: adding a scripted kill
// in another cluster leaves the stream's own cluster byte-identical.
TEST(FaultOverlap, PerClusterStreamIgnoresRemoteRecovery) {
  const auto make_opts = [](bool with_remote_kill) {
    auto opts = isolated_opts(2, 3, hours(1));
    fault::StreamSpec stream;
    stream.cluster = ClusterId{1};
    stream.mtbf = minutes(10);
    stream.start = minutes(5);
    stream.stop = minutes(55);
    opts.campaign.streams.push_back(stream);
    if (with_remote_kill) {
      opts.campaign.kills.push_back(fault::KillSpec{minutes(12), NodeId{1}});
    }
    return opts;
  };
  const auto base = driver::run_simulation(make_opts(false));
  const auto with_kill = driver::run_simulation(make_opts(true));
  EXPECT_TRUE(base.violations.empty());
  EXPECT_TRUE(with_kill.violations.empty());
  EXPECT_EQ(with_kill.counter("fault.injected"),
            base.counter("fault.injected") + 1);
  for (const char* name : kClusterCounters) {
    EXPECT_EQ(cluster_counter(with_kill, name, 1),
              cluster_counter(base, name, 1))
        << name << ".c1";
  }
  // Stream firings hit the same victims at the same instants.
  std::size_t si = 0;
  for (const fault::Incident& inc : with_kill.incidents) {
    if (std::string(inc.source) != "stream") continue;
    ASSERT_LT(si, base.incidents.size());
    EXPECT_EQ(inc.injected_at, base.incidents[si].injected_at);
    EXPECT_EQ(inc.victim, base.incidents[si].victim);
    ++si;
  }
  EXPECT_EQ(si, base.incidents.size());
}

// A stream whose own cluster is recovering blocks without consuming a draw
// and redraws at its own cluster's completion; back-to-back scripted kills
// keep the cluster busy long enough to exercise the blocked path.
TEST(FaultOverlap, StreamRedrawsAtOwnClusterCompletion) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    auto opts = isolated_opts(2, 3, hours(1));
    opts.seed = seed;
    for (int k = 0; k < 3; ++k) {
      opts.campaign.kills.push_back(
          fault::KillSpec{minutes(30) + milliseconds(20 * k), NodeId{4}});
    }
    fault::StreamSpec stream;
    stream.cluster = ClusterId{1};
    stream.mtbf = seconds(30);
    stream.start = minutes(30);
    stream.stop = minutes(32);
    opts.campaign.streams.push_back(stream);
    const auto result = driver::run_simulation(opts);
    EXPECT_TRUE(result.violations.empty()) << "seed " << seed;
    EXPECT_EQ(result.counter("fault.queued_same_cluster"), 2u);
    for (const fault::Incident& inc : result.incidents) {
      EXPECT_EQ(inc.cluster, ClusterId{1});
      EXPECT_TRUE(inc.recovery_complete) << "incident " << inc.id;
    }
    // Every injection the engine admitted really happened.
    EXPECT_EQ(result.counter("fault.injected"), result.incidents.size());
  }
}

// Interval attribution under real overlap: incident rows plus the
// post-campaign residual sum exactly to the end-of-run counters, and the
// overlap columns report the concurrency.
TEST(FaultOverlap, OverlapRowsPlusResidualSumExactly) {
  driver::RunOptions opts;
  opts.spec = config::scale_federation_spec(4, 8, minutes(30));
  opts.campaign = fault::reference_overlap_campaign(4, 8, minutes(30));
  const auto result = driver::run_simulation(opts);
  EXPECT_TRUE(result.violations.empty());
  ASSERT_GE(result.incidents.size(), 8u);
  ASSERT_TRUE(result.fault_summary.has_residual);
  EXPECT_GE(result.fault_summary.max_overlap, 3u);
  EXPECT_GE(result.counter("fault.queued_same_cluster"), 1u);

  const fault::Incident& res = result.fault_summary.residual;
  std::uint64_t rollbacks = res.rollbacks, nodes = res.nodes_rolled_back,
                alerts = res.alert_fanout, msgs = res.replayed_msgs,
                bytes = res.replayed_bytes, undone = res.events_undone;
  std::uint32_t peak = 0;
  for (const fault::Incident& inc : result.incidents) {
    rollbacks += inc.rollbacks;
    nodes += inc.nodes_rolled_back;
    alerts += inc.alert_fanout;
    msgs += inc.replayed_msgs;
    bytes += inc.replayed_bytes;
    undone += inc.events_undone;
    peak = std::max(peak, inc.concurrent_peak);
  }
  EXPECT_EQ(rollbacks, result.counter("rollback.count"));
  EXPECT_EQ(nodes, result.counter("rollback.nodes"));
  EXPECT_EQ(alerts, result.counter("rollback.alerts"));
  EXPECT_EQ(msgs, result.counter("log.resent_msgs"));
  EXPECT_EQ(bytes, result.counter("log.resent_bytes"));
  EXPECT_EQ(undone, result.counter("ledger.undone_events"));
  EXPECT_EQ(peak, result.fault_summary.max_overlap);
}

// Fixed-seed determinism with burst + stream + trigger overlap: two runs of
// the overlap campaign produce byte-identical counter dumps.
TEST(FaultOverlap, OverlapCampaignIsDeterministic) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    driver::RunOptions opts;
    opts.spec = config::scale_federation_spec(4, 8, minutes(30));
    opts.campaign = fault::reference_overlap_campaign(4, 8, minutes(30));
    opts.seed = seed;
    const auto a = driver::run_simulation(opts);
    const auto b = driver::run_simulation(opts);
    EXPECT_EQ(a.registry.dump(), b.registry.dump()) << "seed " << seed;
    ASSERT_EQ(a.incidents.size(), b.incidents.size());
    for (std::size_t i = 0; i < a.incidents.size(); ++i) {
      EXPECT_EQ(a.incidents[i].injected_at, b.incidents[i].injected_at);
      EXPECT_EQ(a.incidents[i].recovered_at, b.incidents[i].recovered_at);
      EXPECT_EQ(a.incidents[i].victim, b.incidents[i].victim);
    }
  }
}

// The queue-bound validator rejects campaigns whose same-cluster queue
// cannot drain before the quiesce bound, naming the offending injector.
TEST(FaultOverlap, QueueBoundCheckNamesTheInjector) {
  const config::RunSpec spec = config::small_test_spec(2, 4);
  const SimTime bound = spec.application.total_time;

  fault::Campaign dense;
  fault::BurstSpec burst;
  burst.cluster = ClusterId{1};
  burst.kills = 3;
  burst.at = bound - milliseconds(1);  // recoveries cannot drain in 1ms
  burst.window = SimTime::zero();
  dense.bursts.push_back(burst);
  try {
    fault::check_queue_bounds(dense, spec, bound);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("[burst] #1"), std::string::npos) << what;
    EXPECT_NE(what.find("queues behind cluster 1"), std::string::npos) << what;
  }

  // The reference overlap campaign itself is well-formed.
  const config::RunSpec scale = config::scale_federation_spec(4, 8, minutes(30));
  EXPECT_NO_THROW(fault::check_queue_bounds(
      fault::reference_overlap_campaign(4, 8, minutes(30)), scale,
      minutes(30)));
}

}  // namespace
}  // namespace hc3i::testing
