// Garbage-collection scenarios (paper §3.5): CLC pruning, log pruning,
// GC network cost, and the safety property (a failure right after a GC
// still finds a complete recovery line).

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace hc3i::testing {
namespace {

/// Spec where both clusters take frequent timer CLCs and GC runs.
config::RunSpec gc_spec() {
  config::RunSpec spec = tiny_spec(2, 3);
  spec.timers.clusters[0].clc_period = minutes(2);
  spec.timers.clusters[1].clc_period = minutes(2);
  spec.timers.gc_period = minutes(15);
  return spec;
}

TEST(Gc, PrunesOldClcsToRecoveryLine) {
  MiniWorld w(gc_spec(), 1);
  // Exchange a little traffic so the recovery line advances.
  w.sim.run_until(minutes(5));
  w.send(NodeId{0}, NodeId{3});
  w.sim.run_until(minutes(10));
  w.send(NodeId{3}, NodeId{0});
  w.sim.run_until(minutes(14));
  const std::size_t before0 = w.runtime->store(ClusterId{0}).size();
  EXPECT_GE(before0, 5u);  // ~7 CLCs accumulated
  w.sim.run_until(minutes(16));
  ASSERT_GE(w.runtime->gc_events().size(), 2u);  // one record per cluster
  for (const auto& ev : w.runtime->gc_events()) {
    EXPECT_GT(ev.clcs_before, ev.clcs_after);
    EXPECT_LE(ev.clcs_after, 2u);  // the paper's Tables 2-3 shape
    EXPECT_GE(ev.clcs_after, 1u);
  }
  EXPECT_EQ(w.registry.get("gc.rounds"), 1u);
}

TEST(Gc, KeepsExactlyTheRecoveryLineWithoutTraffic) {
  // With zero inter-cluster traffic every DDV stays local, so each
  // cluster's worst case is its own last CLC: GC keeps exactly 1.
  MiniWorld w(gc_spec(), 1);
  w.sim.run_until(minutes(16));
  for (std::uint32_t c = 0; c < 2; ++c) {
    EXPECT_EQ(w.runtime->store(ClusterId{c}).size(), 1u) << "cluster " << c;
  }
}

TEST(Gc, FailureRightAfterGcStillRecovers) {
  // The safety property: pruning never removes a CLC a future failure
  // needs (for any failing cluster).
  for (std::uint32_t victim : {0u, 1u, 3u, 4u}) {
    MiniWorld w(gc_spec(), 3);
    w.sim.run_until(minutes(5));
    w.send(NodeId{0}, NodeId{3});
    w.sim.run_until(minutes(12));
    w.send(NodeId{4}, NodeId{1});
    w.sim.run_until(minutes(16));  // GC at 15min
    ASSERT_GE(w.runtime->gc_events().size(), 2u);
    w.fed.inject_failure(NodeId{victim});
    w.settle(minutes(2));
    EXPECT_TRUE(w.fed.ledger().validate(false).empty()) << "victim " << victim;
  }
}

TEST(Gc, PrunesAckedLogEntries) {
  MiniWorld w(gc_spec(), 1);
  w.settle();
  w.send(NodeId{0}, NodeId{3});
  w.settle();
  ASSERT_EQ(w.agent(NodeId{0}).log_size(), 1u);
  // Let both clusters advance well past the ack SN, then GC.
  w.sim.run_until(minutes(16));
  EXPECT_EQ(w.agent(NodeId{0}).log_size(), 0u);
  EXPECT_GE(w.registry.get("gc.log_entries_removed"), 1u);
}

TEST(Gc, NetworkCostMatchesPaperFormula) {
  // Paper §5.4: each GC implies N-1 requests, N-1 responses, N-1 collects
  // (inter-cluster) plus a broadcast in each cluster.
  MiniWorld w(gc_spec(), 1);
  const std::uint64_t ctl_inter_before = w.registry.get("net.ctl.inter.msgs");
  w.sim.run_until(minutes(16));
  const std::uint64_t ctl_inter = w.registry.get("net.ctl.inter.msgs") -
                                  ctl_inter_before;
  // N = 2: 1 request + 1 response + 1 collect = 3 inter-cluster messages
  // (no other inter-cluster control traffic flows in this run).
  EXPECT_EQ(ctl_inter, 3u);
}

TEST(Gc, DisabledWhenPeriodInfinite) {
  config::RunSpec spec = gc_spec();
  spec.timers.gc_period = SimTime::infinity();
  MiniWorld w(spec, 1);
  w.sim.run_until(minutes(30));
  EXPECT_EQ(w.registry.get("gc.rounds"), 0u);
  EXPECT_TRUE(w.runtime->gc_events().empty());
  EXPECT_GE(w.runtime->store(ClusterId{0}).size(), 10u);  // grows unboundedly
}

TEST(Gc, OptionSwitchDisables) {
  core::Hc3iOptions opts;
  opts.enable_gc = false;
  MiniWorld w(gc_spec(), 1, opts);
  w.sim.run_until(minutes(30));
  EXPECT_EQ(w.registry.get("gc.rounds"), 0u);
}

TEST(Gc, RepeatedRoundsKeepStoreBounded) {
  MiniWorld w(gc_spec(), 1);
  w.sim.run_until(hours(1));
  EXPECT_EQ(w.registry.get("gc.rounds"), 4u);  // at 15, 30, 45, 60 min
  EXPECT_LE(w.runtime->store(ClusterId{0}).size(), 8u);
  // High-water mark proves CLCs did accumulate between GCs.
  EXPECT_GE(w.registry.get("store.max_clcs.c0"), 7u);
}

TEST(Gc, AbortsWhenRollbackRaces) {
  // A failure between the GC's metadata snapshot and its collect phase
  // must abort the round (the snapshots are stale).
  config::RunSpec spec = gc_spec();
  // Slow the GC responses down so the race window is wide: huge latency
  // between clusters.
  spec.topology.inter[0][1].latency = seconds(2);
  spec.topology.inter[1][0].latency = seconds(2);
  MiniWorld w(spec, 1);
  w.sim.run_until(minutes(15) + seconds(1));  // GC request in flight
  w.fed.inject_failure(NodeId{4});            // rollback during the round
  w.sim.run_until(minutes(15) + seconds(30));
  EXPECT_EQ(w.registry.get("gc.aborted"), 1u);
  w.settle(minutes(2));
  EXPECT_TRUE(w.fed.ledger().validate(false).empty());
}

}  // namespace
}  // namespace hc3i::testing
