// Tests for the zero-allocation message path: the unified inline-small /
// COW-spill piggyback DDV (spill/unspill boundaries, shared spill blocks,
// the piggyback-sharing contract that replaced the epoch cache), the inline
// event callable, and the copy-on-write sender-log capture.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/message.hpp"
#include "proto/ddv.hpp"
#include "proto/msg_log.hpp"
#include "sim/event_queue.hpp"
#include "sim/inline_fn.hpp"

namespace hc3i {
namespace {

// ---------------------------------------------------------------------------
// Ddv storage — spill/unspill boundaries (the former net::SmallDdv tests,
// now exercising the unified proto::Ddv; COW semantics are covered by
// tests/ddv_property_test.cpp)
// ---------------------------------------------------------------------------

TEST(DdvStorage, DefaultIsEmptyInline) {
  const proto::Ddv d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
  EXPECT_FALSE(d.spilled());
}

TEST(DdvStorage, InlineUpToCapacity) {
  // Every size up to the inline capacity stays inline and round-trips.
  for (std::size_t n = 0; n <= proto::Ddv::kInlineEntries; ++n) {
    std::vector<SeqNum> v;
    for (std::size_t i = 0; i < n; ++i) v.push_back(static_cast<SeqNum>(i + 10));
    const proto::Ddv d(v);
    EXPECT_FALSE(d.spilled()) << "size " << n;
    ASSERT_EQ(d.size(), n);
    EXPECT_EQ(d.to_vector(), v);
  }
}

TEST(DdvStorage, SpillsOnePastCapacity) {
  std::vector<SeqNum> v(proto::Ddv::kInlineEntries + 1);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<SeqNum>(i);
  const proto::Ddv d(v);
  EXPECT_TRUE(d.spilled());
  EXPECT_EQ(d.to_vector(), v);
}

TEST(DdvStorage, CopySharesSpillBlock) {
  const proto::Ddv a({1, 2, 3, 4, 5, 6, 7});
  ASSERT_TRUE(a.spilled());
  const proto::Ddv b = a;
  EXPECT_TRUE(b.shares_storage_with(a));
  EXPECT_EQ(a, b);
}

TEST(DdvStorage, InlineCopiesDoNotShare) {
  const proto::Ddv a({1, 2, 3});
  const proto::Ddv b = a;
  EXPECT_FALSE(b.shares_storage_with(a));
  EXPECT_EQ(a, b);
}

TEST(DdvStorage, MoveStealsSpillBlock) {
  proto::Ddv a({9, 8, 7, 6, 5, 4});
  const proto::Ddv keep = a;  // second ref keeps the block alive
  const proto::Ddv b = std::move(a);
  EXPECT_TRUE(b.shares_storage_with(keep));
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): asserted state
  EXPECT_EQ(b.to_vector(), keep.to_vector());
}

TEST(DdvStorage, UnspillViaReassignment) {
  // Shrinking a spilled instance back below the inline boundary releases
  // the block (the shared copy keeps its view) and goes inline again.
  proto::Ddv d({1, 2, 3, 4, 5});
  const proto::Ddv shared = d;
  d = {42, 43};
  EXPECT_FALSE(d.spilled());
  EXPECT_EQ(d.to_vector(), (std::vector<SeqNum>{42, 43}));
  EXPECT_EQ(shared.to_vector(), (std::vector<SeqNum>{1, 2, 3, 4, 5}));
}

TEST(DdvStorage, CopyAssignOverSpilledReleasesBlock) {
  proto::Ddv d({1, 2, 3, 4, 5, 6});
  const proto::Ddv small({7});
  d = small;
  EXPECT_FALSE(d.spilled());
  EXPECT_EQ(d.to_vector(), std::vector<SeqNum>{7});
}

TEST(DdvStorage, EqualityComparesValues) {
  EXPECT_EQ(proto::Ddv({1, 2}), proto::Ddv({1, 2}));
  EXPECT_FALSE(proto::Ddv({1, 2}) == proto::Ddv({1, 3}));
  EXPECT_FALSE(proto::Ddv({1, 2}) == proto::Ddv({1, 2, 3}));
  // Same values in two independently built spill blocks still compare equal.
  EXPECT_EQ(proto::Ddv({1, 2, 3, 4, 5}), proto::Ddv({1, 2, 3, 4, 5}));
}

// ---------------------------------------------------------------------------
// Piggyback sharing — the COW contract that replaced the epoch cache: a
// sender assigns its live DDV straight into the envelope; every piggyback
// of one (SN, incarnation) epoch shares the sender's block, and the epoch
// advance (a commit or rollback mutating the agent's DDV) detaches the
// writer, never the in-flight snapshots.
// ---------------------------------------------------------------------------

TEST(PiggybackSharing, SendsWithinAnEpochShareTheSendersBlock) {
  proto::Ddv agent_ddv(6, ClusterId{0}, 3);  // spilled: sharing observable
  ASSERT_TRUE(agent_ddv.spilled());
  net::Envelope a, b;
  a.piggy.ddv = agent_ddv;
  b.piggy.ddv = agent_ddv;
  EXPECT_TRUE(a.piggy.ddv.shares_storage_with(agent_ddv));
  EXPECT_TRUE(b.piggy.ddv.shares_storage_with(agent_ddv));
  // Copying the envelope (sender log, channel capture, re-send) keeps
  // sharing — no rebuild, no allocation of a new block.
  const net::Envelope logged = a;
  EXPECT_TRUE(logged.piggy.ddv.shares_storage_with(agent_ddv));
}

TEST(PiggybackSharing, EpochAdvanceDetachesTheWriterNotTheSnapshots) {
  proto::Ddv agent_ddv(6, ClusterId{0}, 3);
  net::Envelope in_flight;
  in_flight.piggy.ddv = agent_ddv;
  const std::vector<SeqNum> at_send = in_flight.piggy.ddv.to_vector();

  // A CLC commit advances the agent's DDV (epoch advance): the agent's
  // copy detaches; the in-flight piggyback must stay frozen at send state.
  agent_ddv.set(ClusterId{0}, 4);
  agent_ddv.raise(ClusterId{2}, 9);
  EXPECT_FALSE(in_flight.piggy.ddv.shares_storage_with(agent_ddv));
  EXPECT_EQ(in_flight.piggy.ddv.to_vector(), at_send);
  EXPECT_EQ(agent_ddv.at(ClusterId{0}), 4u);
  EXPECT_EQ(agent_ddv.at(ClusterId{2}), 9u);
}

TEST(PiggybackSharing, WholeDdvAssignmentRestoresSharing) {
  // handle_clc_commit replaces the agent DDV wholesale (ddv_ = m.ddv); the
  // next send then shares the *new* epoch's block.
  proto::Ddv committed(6, ClusterId{0}, 7);
  proto::Ddv agent_ddv(6, ClusterId{0}, 3);
  agent_ddv = committed;
  net::Envelope env;
  env.piggy.ddv = agent_ddv;
  EXPECT_TRUE(env.piggy.ddv.shares_storage_with(committed));
}

// ---------------------------------------------------------------------------
// InlineFn — the event queue's inline callable
// ---------------------------------------------------------------------------

TEST(InlineFn, InvokesAndReportsEngagement) {
  int calls = 0;
  sim::InlineFn<48> f([&calls] { ++calls; });
  EXPECT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(calls, 2);
}

TEST(InlineFn, DefaultAndNullptrAreEmpty) {
  sim::InlineFn<48> f;
  EXPECT_FALSE(static_cast<bool>(f));
  f = [] {};
  EXPECT_TRUE(static_cast<bool>(f));
  f = nullptr;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFn, MoveTransfersOwnershipAndState) {
  auto counter = std::make_shared<int>(0);
  sim::InlineFn<48> a([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  sim::InlineFn<48> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(counter.use_count(), 2);   // moved, not copied
  b();
  EXPECT_EQ(*counter, 1);
}

TEST(InlineFn, DestroysCaptureOnResetAndDestruction) {
  auto token = std::make_shared<int>(7);
  {
    sim::InlineFn<48> f([token] {});
    EXPECT_EQ(token.use_count(), 2);
    f = nullptr;  // reset destroys the captured shared_ptr
    EXPECT_EQ(token.use_count(), 1);
    f = [token] {};
    EXPECT_EQ(token.use_count(), 2);
  }  // destructor destroys it too
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineFn, MoveAssignDestroysPreviousCallable) {
  auto old_token = std::make_shared<int>(1);
  auto new_token = std::make_shared<int>(2);
  sim::InlineFn<48> f([old_token] {});
  f = sim::InlineFn<48>([new_token] {});
  EXPECT_EQ(old_token.use_count(), 1);
  EXPECT_EQ(new_token.use_count(), 2);
}

TEST(InlineFn, AcceptsCallableAtExactCapacity) {
  // A capture of exactly kCallbackCapacity bytes must compile and run —
  // the static_assert boundary is inclusive.  (One byte more is a compile
  // error, which a build can't test for; the capacity constant is asserted
  // here so growth is a deliberate decision.)
  struct Fat {
    unsigned char bytes[sim::EventQueue::kCallbackCapacity - sizeof(void*)];
  };
  Fat fat{};
  fat.bytes[0] = 42;
  int seen = 0;
  auto lambda = [fat, &seen]() mutable { seen = fat.bytes[0]; };
  static_assert(sizeof(lambda) == sim::EventQueue::kCallbackCapacity,
                "the capture below is meant to fill the buffer exactly");
  sim::EventQueue::Callback cb(lambda);
  cb();
  EXPECT_EQ(seen, 42);
}

TEST(InlineFn, EventQueueCancelDestroysInlineCallable) {
  auto token = std::make_shared<int>(0);
  sim::EventQueue q;
  const sim::EventId id = q.schedule(SimTime{10}, [token] {});
  EXPECT_EQ(token.use_count(), 2);
  q.cancel(id);
  EXPECT_EQ(token.use_count(), 1);  // slot released its callable eagerly
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------------
// Copy-on-write sender-log capture
// ---------------------------------------------------------------------------

net::Envelope inter_env(std::uint64_t msg_id, SeqNum piggy_sn) {
  net::Envelope env;
  env.id = MsgId{msg_id};
  env.src = NodeId{0};
  env.dst = NodeId{100};
  env.src_cluster = ClusterId{0};
  env.dst_cluster = ClusterId{1};
  env.payload_bytes = 100;
  env.piggy.sn = piggy_sn;
  env.app_seq = msg_id;
  return env;
}

/// Field-by-field equality of a captured image against a deep copy — the
/// "byte-compared parts" contract: a COW capture must be indistinguishable
/// from the eager deep copy it replaced.
void expect_entries_equal(const std::vector<proto::LogEntry>& a,
                          const std::vector<proto::LogEntry>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].env.id, b[i].env.id);
    EXPECT_EQ(a[i].env.app_seq, b[i].env.app_seq);
    EXPECT_EQ(a[i].env.piggy.sn, b[i].env.piggy.sn);
    EXPECT_EQ(a[i].env.piggy.incarnation, b[i].env.piggy.incarnation);
    EXPECT_EQ(a[i].env.piggy.ddv, b[i].env.piggy.ddv);
    EXPECT_EQ(a[i].env.payload_bytes, b[i].env.payload_bytes);
    EXPECT_EQ(a[i].acked, b[i].acked);
    EXPECT_EQ(a[i].ack_sn, b[i].ack_sn);
    EXPECT_EQ(a[i].ack_inc, b[i].ack_inc);
  }
}

TEST(CowLogCapture, ImageEqualsDeepCopy) {
  proto::MsgLog log;
  log.add(inter_env(1, 1));
  log.add(inter_env(2, 1));
  log.record_ack(MsgId{1}, 2, 0);
  const std::vector<proto::LogEntry> deep = log.entries();  // eager copy
  const proto::LogImage image = log.capture();
  expect_entries_equal(image.entries(), deep);
}

TEST(CowLogCapture, RepeatedCaptureWithoutMutationShares) {
  proto::MsgLog log;
  log.add(inter_env(1, 1));
  const proto::LogImage a = log.capture();
  const proto::LogImage b = log.capture();
  EXPECT_TRUE(a.shares_storage_with(b));
}

TEST(CowLogCapture, ImageIsFrozenAtCaptureState) {
  proto::MsgLog log;
  log.add(inter_env(1, 1));
  log.add(inter_env(2, 2));
  const std::vector<proto::LogEntry> at_capture = log.entries();
  const proto::LogImage image = log.capture();

  // Every mutator runs after the capture; the image must not move.
  log.add(inter_env(3, 2));
  log.record_ack(MsgId{1}, 5, 0);
  log.truncate_from(2);

  expect_entries_equal(image.entries(), at_capture);
  EXPECT_EQ(image.size(), 2u);
  EXPECT_FALSE(image.entries()[0].acked);
}

TEST(CowLogCapture, CaptureAfterMutationNoLongerShares) {
  proto::MsgLog log;
  log.add(inter_env(1, 1));
  const proto::LogImage before = log.capture();
  log.record_ack(MsgId{1}, 3, 0);
  const proto::LogImage after = log.capture();
  EXPECT_FALSE(before.shares_storage_with(after));
  EXPECT_FALSE(before.entries()[0].acked);
  EXPECT_TRUE(after.entries()[0].acked);
}

TEST(CowLogCapture, RestoreAdoptsImageAndStaysIsolated) {
  proto::MsgLog log;
  log.add(inter_env(1, 1));
  log.add(inter_env(2, 1));
  const proto::LogImage image = log.capture();

  proto::MsgLog recovered;
  recovered.restore(image);
  EXPECT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered.unacked_count(), 2u);

  // The restored log shares the image's buffer until it mutates; mutating
  // it must corrupt neither the image nor the original log.
  recovered.record_ack(MsgId{1}, 4, 0);
  EXPECT_EQ(recovered.unacked_count(), 1u);
  EXPECT_FALSE(image.entries()[0].acked);
  EXPECT_FALSE(log.entries()[0].acked);
}

TEST(CowLogCapture, RestoreFromEmptyImageClears) {
  proto::MsgLog log;
  log.add(inter_env(1, 1));
  log.restore(proto::LogImage{});
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.unacked_count(), 0u);
}

TEST(CowLogCapture, NoOpMutatorsDoNotDetach) {
  // A prune/truncate that removes nothing must not pay the copy — captures
  // taken before and after still share storage.
  proto::MsgLog log;
  log.add(inter_env(1, 5));
  const proto::LogImage before = log.capture();
  EXPECT_EQ(log.prune(ClusterId{1}, 99), 0u);   // nothing acked yet
  EXPECT_EQ(log.truncate_from(99), 0u);         // nothing at/after SN 99
  const proto::LogImage after = log.capture();
  EXPECT_TRUE(before.shares_storage_with(after));
}

}  // namespace
}  // namespace hc3i
