// Unit tests for src/net: topology lookups and network delivery semantics.

#include <gtest/gtest.h>

#include "config/presets.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "stats/registry.hpp"

namespace hc3i::net {
namespace {

Topology make_topo(std::size_t clusters = 2, std::uint32_t nodes = 4) {
  return Topology(config::small_test_spec(clusters, nodes).topology);
}

TEST(Topology, DenseNumbering) {
  const Topology topo = make_topo(3, 5);
  EXPECT_EQ(topo.node_count(), 15u);
  EXPECT_EQ(topo.cluster_of(NodeId{0}), ClusterId{0});
  EXPECT_EQ(topo.cluster_of(NodeId{4}), ClusterId{0});
  EXPECT_EQ(topo.cluster_of(NodeId{5}), ClusterId{1});
  EXPECT_EQ(topo.cluster_of(NodeId{14}), ClusterId{2});
  EXPECT_EQ(topo.first_node(ClusterId{2}), NodeId{10});
  EXPECT_EQ(topo.cluster_size(ClusterId{1}), 5u);
}

TEST(Topology, NodesOfCluster) {
  const Topology topo = make_topo(2, 3);
  const auto nodes = topo.nodes_of(ClusterId{1});
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0], NodeId{3});
  EXPECT_EQ(nodes[2], NodeId{5});
}

TEST(Topology, LinkSelection) {
  const Topology topo = make_topo(2, 4);
  // Same cluster -> SAN latency (10us in the small spec); cross -> 150us.
  EXPECT_EQ(topo.link(NodeId{0}, NodeId{1}).latency, microseconds(10));
  EXPECT_EQ(topo.link(NodeId{0}, NodeId{4}).latency, microseconds(150));
}

TEST(Topology, RingNeighbourWraps) {
  const Topology topo = make_topo(2, 4);
  EXPECT_EQ(topo.ring_neighbour(NodeId{0}), NodeId{1});
  EXPECT_EQ(topo.ring_neighbour(NodeId{3}), NodeId{0});  // wraps in cluster 0
  EXPECT_EQ(topo.ring_neighbour(NodeId{7}), NodeId{4});  // wraps in cluster 1
  EXPECT_EQ(topo.ring_neighbour(NodeId{0}, 2), NodeId{2});
}

TEST(Topology, BadIdsThrow) {
  const Topology topo = make_topo(2, 2);
  EXPECT_THROW(topo.cluster_of(NodeId{99}), CheckFailure);
  EXPECT_THROW(topo.first_node(ClusterId{9}), CheckFailure);
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : topo_(make_topo()), net_(sim_, topo_, reg_) {
    for (std::uint32_t i = 0; i < topo_.node_count(); ++i) {
      net_.attach(NodeId{i}, [this, i](const Envelope& env) {
        received_.emplace_back(NodeId{i}, env);
      });
    }
  }

  Envelope app_env(NodeId src, NodeId dst, std::uint64_t bytes = 1000) {
    Envelope env;
    env.src = src;
    env.dst = dst;
    env.cls = MsgClass::kApp;
    env.payload_bytes = bytes;
    env.app_seq = next_seq_++;
    return env;
  }

  sim::Simulation sim_;
  stats::Registry reg_;
  Topology topo_;
  Network net_;
  std::vector<std::pair<NodeId, Envelope>> received_;
  std::uint64_t next_seq_{1};
};

TEST_F(NetworkTest, DeliversWithLatencyPlusSerialisation) {
  // Intra-cluster: 10us latency + wire bytes at 80Mb/s (= 10MB/s).
  // The wire size includes the 8-byte protocol piggyback.
  Envelope env = app_env(NodeId{0}, NodeId{1}, 1000);
  const std::uint64_t wire = env.wire_bytes();
  EXPECT_EQ(wire, 1008u);
  net_.send(std::move(env));
  sim_.run_all();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].first, NodeId{1});
  EXPECT_EQ(sim_.now(), microseconds(10) + nanoseconds(static_cast<int64_t>(
                            wire / 10e6 * 1e9)));
}

TEST_F(NetworkTest, AssignsUniqueIdsAndClusters) {
  const MsgId a = net_.send(app_env(NodeId{0}, NodeId{1}));
  const MsgId b = net_.send(app_env(NodeId{0}, NodeId{5}));
  EXPECT_NE(a, b);
  sim_.run_all();
  ASSERT_EQ(received_.size(), 2u);
  for (const auto& [node, env] : received_) {
    EXPECT_EQ(env.src_cluster, ClusterId{0});
    if (node == NodeId{5}) {
      EXPECT_EQ(env.dst_cluster, ClusterId{1});
    }
  }
}

TEST_F(NetworkTest, SmallMessageOvertakesLarge) {
  // The paper only assumes arbitrary finite delay; reordering is allowed
  // and the protocols must tolerate it.
  net_.send(app_env(NodeId{0}, NodeId{1}, 1'000'000));
  net_.send(app_env(NodeId{0}, NodeId{1}, 10));
  sim_.run_all();
  ASSERT_EQ(received_.size(), 2u);
  EXPECT_EQ(received_[0].second.payload_bytes, 10u);
}

TEST_F(NetworkTest, ParkedWhileDownDeliveredOnRevival) {
  net_.set_node_down(NodeId{1});
  net_.send(app_env(NodeId{0}, NodeId{1}));
  sim_.run_until(seconds(1));
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(net_.in_flight_count(), 1u);  // parked, not lost
  net_.set_node_up(NodeId{1});
  sim_.run_all();
  ASSERT_EQ(received_.size(), 1u);  // the network is reliable (paper §2.1)
}

TEST_F(NetworkTest, ParkedMessagesDeliverInSendOrder) {
  // Park several messages whose arrival order differs from their send order
  // (the big head-of-line message arrives last); revival must deliver in
  // MsgId (send) order regardless.
  net_.set_node_down(NodeId{1});
  net_.send(app_env(NodeId{0}, NodeId{1}, 1'000'000));  // seq 1, arrives last
  net_.send(app_env(NodeId{0}, NodeId{1}, 10));         // seq 2, arrives first
  net_.send(app_env(NodeId{2}, NodeId{1}, 500));        // seq 3
  sim_.run_until(seconds(1));
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(net_.in_flight_count(), 3u);
  net_.set_node_up(NodeId{1});
  sim_.run_all();
  ASSERT_EQ(received_.size(), 3u);
  EXPECT_EQ(received_[0].second.app_seq, 1u);
  EXPECT_EQ(received_[1].second.app_seq, 2u);
  EXPECT_EQ(received_[2].second.app_seq, 3u);
}

TEST_F(NetworkTest, RevivalOnlyTouchesThatNodesParkedMessages) {
  net_.set_node_down(NodeId{1});
  net_.set_node_down(NodeId{2});
  net_.send(app_env(NodeId{0}, NodeId{1}));
  net_.send(app_env(NodeId{0}, NodeId{2}));
  sim_.run_until(seconds(1));
  EXPECT_EQ(net_.in_flight_count(), 2u);
  net_.set_node_up(NodeId{1});
  sim_.run_all();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].first, NodeId{1});
  EXPECT_EQ(net_.in_flight_count(), 1u);  // node 2's message still parked
  net_.set_node_up(NodeId{2});
  sim_.run_all();
  EXPECT_EQ(received_.size(), 2u);
  EXPECT_EQ(net_.in_flight_count(), 0u);
}

TEST_F(NetworkTest, RepeatedDownUpCyclesKeepParkingConsistent) {
  for (int cycle = 0; cycle < 3; ++cycle) {
    net_.set_node_down(NodeId{1});
    net_.send(app_env(NodeId{0}, NodeId{1}));
    net_.send(app_env(NodeId{3}, NodeId{1}));
    sim_.run_until(sim_.now() + seconds(1));
    net_.set_node_up(NodeId{1});
    sim_.run_all();
  }
  ASSERT_EQ(received_.size(), 6u);
  for (std::size_t i = 1; i < received_.size(); ++i) {
    EXPECT_LT(received_[i - 1].second.app_seq, received_[i].second.app_seq);
  }
}

TEST_F(NetworkTest, SnapshotInFlightSeesUnarrived) {
  net_.send(app_env(NodeId{0}, NodeId{1}));
  net_.send(app_env(NodeId{0}, NodeId{5}));
  const auto intra = net_.snapshot_in_flight(
      [](const Envelope& e) { return e.intra_cluster(); });
  EXPECT_EQ(intra.size(), 1u);
  sim_.run_all();
  EXPECT_TRUE(net_.snapshot_in_flight([](const Envelope&) { return true; })
                  .empty());
}

TEST_F(NetworkTest, DropInFlightCancelsDelivery) {
  net_.send(app_env(NodeId{0}, NodeId{1}));
  net_.send(app_env(NodeId{0}, NodeId{5}));
  const std::size_t dropped = net_.drop_in_flight(
      [](const Envelope& e) { return e.intra_cluster(); });
  EXPECT_EQ(dropped, 1u);
  sim_.run_all();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].first, NodeId{5});
}

TEST_F(NetworkTest, DropAlsoRemovesParked) {
  net_.set_node_down(NodeId{1});
  net_.send(app_env(NodeId{0}, NodeId{1}));
  sim_.run_until(seconds(1));
  EXPECT_EQ(net_.drop_in_flight([](const Envelope&) { return true; }), 1u);
  net_.set_node_up(NodeId{1});
  sim_.run_all();
  EXPECT_TRUE(received_.empty());
}

TEST_F(NetworkTest, CountsTrafficByClassAndPair) {
  net_.send(app_env(NodeId{0}, NodeId{1}));
  net_.send(app_env(NodeId{0}, NodeId{5}));
  Envelope ctl;
  ctl.src = NodeId{0};
  ctl.dst = NodeId{2};
  ctl.cls = MsgClass::kControl;
  ctl.payload_bytes = 64;
  net_.send(std::move(ctl));
  sim_.run_all();
  EXPECT_EQ(reg_.get("net.app.intra.msgs"), 1u);
  EXPECT_EQ(reg_.get("net.app.inter.msgs"), 1u);
  EXPECT_EQ(reg_.get("net.ctl.intra.msgs"), 1u);
  EXPECT_EQ(reg_.get("net.app.pair.0.1"), 1u);
  EXPECT_EQ(reg_.get("net.app.pair.0.0"), 1u);
}

TEST_F(NetworkTest, PiggybackCostsBytes) {
  Envelope env = app_env(NodeId{0}, NodeId{5}, 1000);
  env.piggy.ddv = {1, 2, 3};  // transitive extension carries the DDV
  const std::uint64_t wire = env.wire_bytes();
  EXPECT_EQ(wire, 1000 + sizeof(SeqNum) + sizeof(Incarnation) +
                      3 * sizeof(SeqNum));
}

TEST_F(NetworkTest, SendToSelfThrows) {
  EXPECT_THROW(net_.send(app_env(NodeId{0}, NodeId{0})), CheckFailure);
}

}  // namespace
}  // namespace hc3i::net
