// Unit tests for src/proto: DDV, sender log, checkpoint store, ledger.

#include <gtest/gtest.h>

#include "proto/clc_store.hpp"
#include "proto/ddv.hpp"
#include "proto/ledger.hpp"
#include "proto/msg_log.hpp"

namespace hc3i::proto {
namespace {

// ---------------------------------------------------------------------------
// Ddv
// ---------------------------------------------------------------------------

TEST(Ddv, ConstructionSetsOwnEntry) {
  const Ddv d(3, ClusterId{1}, 7);
  EXPECT_EQ(d.at(ClusterId{0}), 0u);
  EXPECT_EQ(d.at(ClusterId{1}), 7u);
  EXPECT_EQ(d.size(), 3u);
}

TEST(Ddv, RaiseOnlyGoesUp) {
  Ddv d(2, ClusterId{0}, 1);
  EXPECT_TRUE(d.raise(ClusterId{1}, 5));
  EXPECT_FALSE(d.raise(ClusterId{1}, 3));
  EXPECT_EQ(d.at(ClusterId{1}), 5u);
}

TEST(Ddv, MergeMaxEntryWise) {
  Ddv a(3, ClusterId{0}, 2);
  Ddv b(3, ClusterId{1}, 9);
  a.raise(ClusterId{2}, 4);
  b.raise(ClusterId{2}, 1);
  a.merge_max(b);
  EXPECT_EQ(a.at(ClusterId{0}), 2u);
  EXPECT_EQ(a.at(ClusterId{1}), 9u);
  EXPECT_EQ(a.at(ClusterId{2}), 4u);
}

TEST(Ddv, ToStringMatchesPaperStyle) {
  Ddv d(3, ClusterId{0}, 3);
  d.raise(ClusterId{2}, 4);
  EXPECT_EQ(d.to_string(), "(3, 0, 4)");
}

TEST(Ddv, OutOfRangeThrows) {
  Ddv d(2, ClusterId{0}, 1);
  EXPECT_THROW(d.at(ClusterId{5}), CheckFailure);
  EXPECT_THROW(d.raise(ClusterId{5}, 1), CheckFailure);
}

// ---------------------------------------------------------------------------
// MsgLog
// ---------------------------------------------------------------------------

net::Envelope inter_env(std::uint64_t msg_id, SeqNum piggy_sn,
                        std::uint32_t dst_cluster = 1,
                        std::uint64_t app_seq = 0) {
  net::Envelope env;
  env.id = MsgId{msg_id};
  env.src = NodeId{0};
  env.dst = NodeId{100};
  env.src_cluster = ClusterId{0};
  env.dst_cluster = ClusterId{dst_cluster};
  env.payload_bytes = 100;
  env.piggy.sn = piggy_sn;
  env.app_seq = app_seq ? app_seq : msg_id;
  return env;
}

TEST(MsgLog, RejectsIntraCluster) {
  MsgLog log;
  net::Envelope env = inter_env(1, 1);
  env.dst_cluster = env.src_cluster;
  EXPECT_THROW(log.add(env), CheckFailure);
}

TEST(MsgLog, UnackedEntriesAreResent) {
  MsgLog log;
  log.add(inter_env(1, 1));
  const auto resends = log.take_resends(ClusterId{1}, 1, 1);
  EXPECT_EQ(resends.size(), 1u);
  EXPECT_EQ(log.size(), 0u);  // taken entries leave the log
}

TEST(MsgLog, AckedBeforeRestorePointIsStable) {
  // Delivery in epoch 2, receiver restored to SN 3 => the delivery is part
  // of the restored state; no resend.
  MsgLog log;
  log.add(inter_env(1, 1));
  log.record_ack(MsgId{1}, /*ack_sn=*/2, /*ack_inc=*/0);
  const auto resends = log.take_resends(ClusterId{1}, /*restored_sn=*/3,
                                        /*new_inc=*/1);
  EXPECT_TRUE(resends.empty());
  EXPECT_EQ(log.size(), 1u);
}

TEST(MsgLog, AckedAtOrAfterRestorePointIsResent) {
  // Paper §3.4: "Logged messages ... acknowledged with a SN greater than
  // the alert one (or not acknowledged at all) will then be resent";
  // under our SN convention the boundary epoch is lost too (DESIGN.md §3).
  MsgLog log;
  log.add(inter_env(1, 1));
  log.add(inter_env(2, 1));
  log.record_ack(MsgId{1}, /*ack_sn=*/3, /*ack_inc=*/0);
  log.record_ack(MsgId{2}, /*ack_sn=*/5, /*ack_inc=*/0);
  const auto resends = log.take_resends(ClusterId{1}, /*restored_sn=*/3,
                                        /*new_inc=*/1);
  EXPECT_EQ(resends.size(), 2u);
}

TEST(MsgLog, AckFromNewIncarnationIsStable) {
  // The receiver already re-delivered this message after its rollback.
  MsgLog log;
  log.add(inter_env(1, 1));
  log.record_ack(MsgId{1}, /*ack_sn=*/7, /*ack_inc=*/2);
  const auto resends =
      log.take_resends(ClusterId{1}, /*restored_sn=*/3, /*new_inc=*/2);
  EXPECT_TRUE(resends.empty());
}

TEST(MsgLog, ResendsOnlyTargetCluster) {
  MsgLog log;
  log.add(inter_env(1, 1, /*dst_cluster=*/1));
  log.add(inter_env(2, 1, /*dst_cluster=*/2));
  const auto resends = log.take_resends(ClusterId{2}, 1, 1);
  ASSERT_EQ(resends.size(), 1u);
  EXPECT_EQ(resends[0].dst_cluster, ClusterId{2});
  EXPECT_EQ(log.size(), 1u);
}

TEST(MsgLog, TruncateDropsUndoneSends) {
  // Our own cluster rolled back to SN 3: sends from epochs >= 3 are undone.
  MsgLog log;
  log.add(inter_env(1, 2));
  log.add(inter_env(2, 3));
  log.add(inter_env(3, 5));
  EXPECT_EQ(log.truncate_from(3), 2u);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.entries()[0].env.piggy.sn, 2u);
}

TEST(MsgLog, PruneKeepsUnackedAndRecent) {
  // GC rule (paper §3.5): remove entries acknowledged below the receiver
  // cluster's smallest possible rollback SN.
  MsgLog log;
  log.add(inter_env(1, 1));  // will be acked at 2 (stable if min_sn > 2)
  log.add(inter_env(2, 1));  // acked at 9 (recent)
  log.add(inter_env(3, 1));  // never acked
  log.record_ack(MsgId{1}, 2, 0);
  log.record_ack(MsgId{2}, 9, 0);
  EXPECT_EQ(log.prune(ClusterId{1}, /*min_sn=*/5), 1u);
  EXPECT_EQ(log.size(), 2u);
}

TEST(MsgLog, AckForUnknownIdIgnored) {
  MsgLog log;
  log.record_ack(MsgId{404}, 1, 0);  // no crash, no effect
  EXPECT_EQ(log.size(), 0u);
}

TEST(MsgLog, BytesAccountsPayloadAndMetadata) {
  MsgLog log;
  log.add(inter_env(1, 1));
  EXPECT_GT(log.bytes(), 100u);
}

// ---------------------------------------------------------------------------
// ClcStore
// ---------------------------------------------------------------------------

ClcRecord record(SeqNum sn, std::vector<SeqNum> ddv_entries,
                 std::uint32_t nodes = 2) {
  ClcRecord rec;
  rec.sn = sn;
  rec.ddv = Ddv(ddv_entries.size(), ClusterId{0}, 0);
  for (std::size_t i = 0; i < ddv_entries.size(); ++i) {
    rec.ddv.set(ClusterId{static_cast<std::uint32_t>(i)}, ddv_entries[i]);
  }
  rec.parts.resize(nodes);
  for (auto& p : rec.parts) p.app.state_bytes = 1000;
  return rec;
}

TEST(ClcStore, CommitEnforcesInvariants) {
  ClcStore store(ClusterId{0}, 2, 1);
  store.commit(record(1, {1, 0}));
  EXPECT_THROW(store.commit(record(1, {1, 0})), CheckFailure);  // not increasing
  EXPECT_THROW(store.commit(record(5, {4, 0})), CheckFailure);  // ddv[self] != sn
  ClcRecord bad = record(2, {2, 0}, /*nodes=*/3);
  EXPECT_THROW(store.commit(std::move(bad)), CheckFailure);  // wrong part count
}

TEST(ClcStore, OldestWithDepAtLeast) {
  ClcStore store(ClusterId{0}, 2, 1);
  store.commit(record(1, {1, 0}));
  store.commit(record(2, {2, 3}));
  store.commit(record(3, {3, 3}));
  store.commit(record(4, {4, 6}));
  const ClcRecord* rec = store.oldest_with_dep_at_least(ClusterId{1}, 3);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->sn, 2u);  // the *oldest* qualifying CLC (paper §3.4)
  EXPECT_EQ(store.oldest_with_dep_at_least(ClusterId{1}, 7), nullptr);
}

TEST(ClcStore, TruncateAfterRollback) {
  ClcStore store(ClusterId{0}, 2, 1);
  for (SeqNum sn = 1; sn <= 5; ++sn) store.commit(record(sn, {sn, 0}));
  EXPECT_EQ(store.truncate_after(3), 2u);
  EXPECT_EQ(store.last().sn, 3u);
}

TEST(ClcStore, PruneBeforeGc) {
  ClcStore store(ClusterId{0}, 2, 1);
  for (SeqNum sn = 1; sn <= 5; ++sn) store.commit(record(sn, {sn, 0}));
  EXPECT_EQ(store.prune_before(4), 3u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.records().front().sn, 4u);
}

TEST(ClcStore, StorageAccountsReplication) {
  // Paper §5.4 arithmetic: with one neighbour replica each node stores
  // 2 local states per retained CLC (63 CLCs -> 126 local states).
  ClcStore store(ClusterId{0}, 2, 1);
  store.commit(record(1, {1, 0}));
  EXPECT_EQ(store.local_states_per_node(), 2u);
  const std::uint64_t one = store.storage_bytes();
  EXPECT_EQ(one, 2u * 2u * 1000u);  // 2 nodes x (1+1 copies) x 1000 B
  store.commit(record(2, {2, 0}));
  EXPECT_EQ(store.local_states_per_node(), 4u);
  EXPECT_EQ(store.storage_bytes(), 2 * one);
}

TEST(ClcStore, FindBySn) {
  ClcStore store(ClusterId{0}, 2, 1);
  store.commit(record(1, {1, 0}));
  store.commit(record(4, {4, 0}));
  EXPECT_NE(store.find(4), nullptr);
  EXPECT_EQ(store.find(2), nullptr);
}

TEST(ClcStore, ReplicationBounds) {
  EXPECT_THROW(ClcStore(ClusterId{0}, 2, 2), CheckFailure);
  ClcStore solo(ClusterId{0}, 1, 0);
  EXPECT_EQ(solo.replication(), 0u);
}

// ---------------------------------------------------------------------------
// ConsistencyLedger
// ---------------------------------------------------------------------------

TEST(Ledger, CleanRunValidates) {
  ConsistencyLedger ledger;
  ledger.record_send(1, NodeId{0}, ClusterId{0}, seconds(1));
  ledger.record_delivery(1, NodeId{5}, ClusterId{1}, seconds(2));
  EXPECT_TRUE(ledger.validate(false).empty());
}

TEST(Ledger, DetectsLostMessage) {
  ConsistencyLedger ledger;
  ledger.record_send(1, NodeId{0}, ClusterId{0}, seconds(1));
  const auto v = ledger.validate(false);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("lost"), std::string::npos);
  EXPECT_TRUE(ledger.validate(true).empty());  // tolerated while in flight
}

TEST(Ledger, DetectsGhost) {
  ConsistencyLedger ledger;
  const std::uint64_t mark = ledger.mark();
  ledger.record_send(1, NodeId{0}, ClusterId{0}, seconds(1));
  ledger.record_delivery(1, NodeId{5}, ClusterId{1}, seconds(2));
  // Sender cluster rolls back past the send; receiver does not.
  ledger.undo_after(ClusterId{0}, mark);
  const auto v = ledger.validate(true);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("ghost"), std::string::npos);
}

TEST(Ledger, DetectsDuplicate) {
  ConsistencyLedger ledger;
  ledger.record_send(1, NodeId{0}, ClusterId{0}, seconds(1));
  ledger.record_delivery(1, NodeId{5}, ClusterId{1}, seconds(2));
  ledger.record_delivery(1, NodeId{5}, ClusterId{1}, seconds(3));
  const auto v = ledger.validate(true);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("duplicate"), std::string::npos);
}

TEST(Ledger, RollbackPlusResendIsConsistent) {
  // The HC3I happy path: receiver rolls back (delivery undone), the sender
  // log re-sends, the new delivery lands.
  ConsistencyLedger ledger;
  ledger.record_send(1, NodeId{0}, ClusterId{0}, seconds(1));
  const std::uint64_t mark = ledger.mark();
  ledger.record_delivery(1, NodeId{5}, ClusterId{1}, seconds(2));
  ledger.undo_after(ClusterId{1}, mark);
  ledger.record_send(1, NodeId{0}, ClusterId{0}, seconds(3));  // resend
  ledger.record_delivery(1, NodeId{5}, ClusterId{1}, seconds(4));
  EXPECT_TRUE(ledger.validate(false).empty());
  EXPECT_EQ(ledger.undone_events(), 1u);
}

TEST(Ledger, UndoIsScopedToOwner) {
  ConsistencyLedger ledger;
  const std::uint64_t mark = ledger.mark();
  ledger.record_send(1, NodeId{0}, ClusterId{0}, seconds(1));
  ledger.record_send(2, NodeId{9}, ClusterId{1}, seconds(1));
  ledger.undo_after(ClusterId{0}, mark);
  // Only cluster 0's send is undone.
  EXPECT_EQ(ledger.undone_events(), 1u);
}

TEST(Ledger, NodeScopedUndo) {
  ConsistencyLedger ledger;
  const std::uint64_t mark = ledger.mark();
  ledger.record_send(1, NodeId{0}, ClusterId{0}, seconds(1));
  ledger.record_send(2, NodeId{1}, ClusterId{0}, seconds(1));
  ledger.undo_after_node(NodeId{0}, mark);
  EXPECT_EQ(ledger.undone_events(), 1u);  // same cluster, different node kept
}

}  // namespace
}  // namespace hc3i::proto
