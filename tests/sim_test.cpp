// Unit tests for the discrete-event kernel: event queue, executive, timers.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"
#include "sim/timer.hpp"
#include "util/check.hpp"

namespace hc3i::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(seconds(3), [&] { order.push_back(3); });
  q.schedule(seconds(1), [&] { order.push_back(1); });
  q.schedule(seconds(2), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(seconds(1), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule(seconds(1), [&] { ++fired; });
  q.schedule(seconds(2), [&] { ++fired; });
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelTwiceIsHarmless) {
  EventQueue q;
  const EventId id = q.schedule(seconds(1), [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PeekSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(seconds(1), [] {});
  q.schedule(seconds(5), [] {});
  q.cancel(early);
  EXPECT_EQ(q.peek_time(), seconds(5));
}

TEST(EventQueue, RecyclesCancelledSlots) {
  // A long-lived queue must not grow its side table with every event ever
  // scheduled — slots of fired/cancelled events are reused.
  EventQueue q;
  int fired = 0;
  for (int round = 0; round < 10'000; ++round) {
    const EventId a = q.schedule(SimTime{round + 1}, [&] { ++fired; });
    q.schedule(SimTime{round + 1}, [&] { ++fired; });
    q.cancel(a);
    q.pop().second();
  }
  EXPECT_EQ(fired, 10'000);
  EXPECT_TRUE(q.empty());
  // Peak simultaneity here is 2, so the slab stays tiny (vs 20k scheduled).
  EXPECT_LE(q.slot_count(), 4u);
  EXPECT_EQ(q.scheduled_count(), 20'000u);
}

TEST(EventQueue, StaleCancelOfRecycledSlotIsSafe) {
  EventQueue q;
  int first_fired = 0;
  int second_fired = 0;
  const EventId stale = q.schedule(seconds(1), [&] { ++first_fired; });
  q.cancel(stale);
  EXPECT_TRUE(q.empty());
  // The next schedule reuses the slot; the stale id must not touch it.
  const EventId fresh = q.schedule(seconds(2), [&] { ++second_fired; });
  EXPECT_FALSE(stale == fresh);
  q.cancel(stale);  // stale generation: harmless no-op
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(first_fired, 0);
  EXPECT_EQ(second_fired, 1);
}

TEST(EventQueue, CancelAfterFiringIsSafeAcrossReuse) {
  // The timer race: an event fires, its slot is recycled by a new event,
  // and only then does the stale cancel arrive.
  EventQueue q;
  int fired = 0;
  const EventId old_id = q.schedule(seconds(1), [&] { ++fired; });
  q.pop().second();  // fires; slot released
  EXPECT_EQ(fired, 1);
  q.schedule(seconds(2), [&] { ++fired; });  // reuses the slot
  q.cancel(old_id);                          // must not cancel the new event
  EXPECT_EQ(q.size(), 1u);
  q.pop().second();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, DefaultEventIdCancelsNothing) {
  EventQueue q;
  q.schedule(seconds(1), [] {});
  q.cancel(EventId{});
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, OrderPreservedUnderCancelChurn) {
  // Interleave schedules and cancels and verify the surviving events still
  // pop in (time, scheduling order) — the bit-reproducibility contract.
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(
        q.schedule(SimTime{(i * 37) % 10 + 1}, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 100; i += 3) q.cancel(ids[i]);
  std::vector<int> expected;
  for (int i = 0; i < 100; ++i) {
    if (i % 3 != 0) expected.push_back(i);
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](int a, int b) { return (a * 37) % 10 < (b * 37) % 10; });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, expected);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), CheckFailure);
  EXPECT_THROW(q.peek_time(), CheckFailure);
}

TEST(Simulation, ClockAdvancesToEventTimes) {
  Simulation sim;
  std::vector<SimTime> at;
  sim.schedule_at(seconds(5), [&] { at.push_back(sim.now()); });
  sim.schedule_at(seconds(2), [&] { at.push_back(sim.now()); });
  sim.run_all();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], seconds(2));
  EXPECT_EQ(at[1], seconds(5));
}

TEST(Simulation, SchedulingInPastThrows) {
  Simulation sim;
  sim.schedule_at(seconds(10), [] {});
  sim.run_all();
  EXPECT_EQ(sim.now(), seconds(10));
  EXPECT_THROW(sim.schedule_at(seconds(5), [] {}), CheckFailure);
}

TEST(Simulation, RunUntilHonoursHorizon) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(seconds(1), [&] { ++fired; });
  sim.schedule_at(seconds(10), [&] { ++fired; });
  const std::uint64_t ran = sim.run_until(seconds(5));
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), seconds(5));  // clock advanced to the horizon
  sim.run_until(seconds(20));
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventsExactlyAtHorizonRun) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(seconds(5), [&] { ++fired; });
  sim.run_until(seconds(5));
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(seconds(1), [&] {
    order.push_back(1);
    sim.schedule_after(seconds(1), [&] { order.push_back(2); });
  });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), seconds(2));
}

TEST(Simulation, StepRunsExactlyOne) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(seconds(1), [&] { ++fired; });
  sim.schedule_at(seconds(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, RequestStopBreaksLoop) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(seconds(1), [&] {
    ++fired;
    sim.request_stop();
  });
  sim.schedule_at(seconds(2), [&] { ++fired; });
  sim.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulation, RngStreamsReproducible) {
  Simulation a(99), b(99);
  auto ra = a.rng_stream(5);
  auto rb = b.rng_stream(5);
  EXPECT_EQ(ra.next_u64(), rb.next_u64());
}

TEST(Simulation, InfiniteDelayNeverFires) {
  Simulation sim;
  int fired = 0;
  sim.schedule_after(SimTime::infinity(), [&] { ++fired; });
  sim.run_until(hours(1000));
  EXPECT_EQ(fired, 0);
}

TEST(Timer, OneShotFiresOnce) {
  Simulation sim;
  int fired = 0;
  Timer t(sim, seconds(5), /*periodic=*/false, [&] { ++fired; });
  t.arm();
  sim.run_until(seconds(30));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(t.fire_count(), 1u);
}

TEST(Timer, PeriodicKeepsFiring) {
  Simulation sim;
  int fired = 0;
  Timer t(sim, seconds(10), /*periodic=*/true, [&] { ++fired; });
  t.arm();
  sim.run_until(seconds(35));
  EXPECT_EQ(fired, 3);  // at 10, 20, 30
}

TEST(Timer, ResetDelaysExpiry) {
  // Matches the paper's behaviour: "the timer is reset when a forced CLC
  // is established", so back-to-back resets postpone the unforced CLC.
  Simulation sim;
  int fired = 0;
  Timer t(sim, seconds(10), /*periodic=*/true, [&] { ++fired; });
  t.arm();
  sim.schedule_at(seconds(9), [&] { t.reset(); });
  sim.run_until(seconds(18));
  EXPECT_EQ(fired, 0);  // original expiry at 10 was pushed to 19
  sim.run_until(seconds(19));
  EXPECT_EQ(fired, 1);
}

TEST(Timer, CancelStopsIt) {
  Simulation sim;
  int fired = 0;
  Timer t(sim, seconds(10), /*periodic=*/true, [&] { ++fired; });
  t.arm();
  sim.schedule_at(seconds(15), [&] { t.cancel(); });
  sim.run_until(seconds(100));
  EXPECT_EQ(fired, 1);  // only the expiry at 10
}

TEST(Timer, InfinitePeriodNeverFires) {
  // Paper §5.2 runs cluster 1 with "delay between CLCs set to infinite".
  Simulation sim;
  int fired = 0;
  Timer t(sim, SimTime::infinity(), /*periodic=*/true, [&] { ++fired; });
  t.arm();
  EXPECT_FALSE(t.armed());
  sim.run_until(hours(100));
  EXPECT_EQ(fired, 0);
}

TEST(Timer, CallbackMayResetItself) {
  Simulation sim;
  int fired = 0;
  Timer t(sim, seconds(10), /*periodic=*/true, [&] {
    ++fired;
    t.reset();
  });
  t.arm();
  sim.run_until(seconds(45));
  EXPECT_EQ(fired, 4);
}

}  // namespace
}  // namespace hc3i::sim
