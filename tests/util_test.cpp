// Unit tests for src/util: time, RNG, quantity parsing, flags, checks.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/quantity.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace hc3i {
namespace {

// ---------------------------------------------------------------------------
// SimTime
// ---------------------------------------------------------------------------

TEST(SimTime, UnitConstructorsAgree) {
  EXPECT_EQ(microseconds(1).ns, 1000);
  EXPECT_EQ(milliseconds(1), microseconds(1000));
  EXPECT_EQ(seconds(1), milliseconds(1000));
  EXPECT_EQ(minutes(2), seconds(120));
  EXPECT_EQ(hours(1), minutes(60));
}

TEST(SimTime, Arithmetic) {
  EXPECT_EQ(seconds(3) + seconds(4), seconds(7));
  EXPECT_EQ(seconds(10) - seconds(4), seconds(6));
  EXPECT_EQ(seconds(3) * 4, seconds(12));
  SimTime t = seconds(1);
  t += seconds(2);
  EXPECT_EQ(t, seconds(3));
}

TEST(SimTime, Ordering) {
  EXPECT_LT(seconds(1), seconds(2));
  EXPECT_LT(seconds(1), SimTime::infinity());
  EXPECT_TRUE(SimTime::infinity().is_infinite());
  EXPECT_FALSE(hours(10).is_infinite());
}

TEST(SimTime, FractionalConversions) {
  EXPECT_DOUBLE_EQ(seconds(90).minutes_f(), 1.5);
  EXPECT_DOUBLE_EQ(minutes(90).hours_f(), 1.5);
  EXPECT_DOUBLE_EQ(milliseconds(1500).seconds(), 1.5);
}

TEST(SimTime, FromSecondsRounds) {
  EXPECT_EQ(from_seconds_f(1.0), seconds(1));
  EXPECT_EQ(from_seconds_f(1e-9), nanoseconds(1));
  EXPECT_EQ(from_seconds_f(0.5).ns, 500'000'000);
}

TEST(SimTime, FromSecondsRejectsBadInput) {
  EXPECT_THROW(from_seconds_f(-1.0), CheckFailure);
  EXPECT_THROW(from_seconds_f(std::nan("")), CheckFailure);
}

TEST(SimTime, ToStringPicksUnits) {
  EXPECT_EQ(to_string(SimTime::zero()), "0");
  EXPECT_EQ(to_string(nanoseconds(5)), "5ns");
  EXPECT_EQ(to_string(microseconds(150)), "150us");
  EXPECT_EQ(to_string(SimTime::infinity()), "inf");
  EXPECT_NE(to_string(hours(2)).find("2h"), std::string::npos);
}

// ---------------------------------------------------------------------------
// RngStream
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicPerSeedAndStream) {
  RngStream a(42, 7), b(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DistinctStreamsDiffer) {
  RngStream a(42, 1), b(42, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, DistinctSeedsDiffer) {
  RngStream a(1, 0), b(2, 0);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  RngStream r(3, 3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowInRangeAndCoversAll) {
  RngStream r(9, 1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = r.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowRejectsZero) {
  RngStream r(1, 1);
  EXPECT_THROW(r.next_below(0), CheckFailure);
}

TEST(Rng, UniformIntInclusiveBounds) {
  RngStream r(5, 5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = r.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanConverges) {
  RngStream r(11, 0);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += r.exponential(10.0);
  EXPECT_NEAR(total / n, 10.0, 0.5);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  RngStream r(1, 1);
  EXPECT_THROW(r.exponential(0.0), CheckFailure);
  EXPECT_THROW(r.exponential(-1.0), CheckFailure);
}

TEST(Rng, BernoulliEdges) {
  RngStream r(1, 1);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
}

TEST(Rng, BernoulliRate) {
  RngStream r(1, 2);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  RngStream r(2, 2);
  std::vector<double> w{0.0, 3.0, 1.0};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[r.weighted_index(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsDegenerate) {
  RngStream r(1, 1);
  std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(r.weighted_index(zeros), CheckFailure);
  std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(r.weighted_index(negative), CheckFailure);
}

TEST(Rng, StateRoundTrip) {
  RngStream r(7, 7);
  r.next_u64();
  const auto st = r.state();
  const std::uint64_t expected = r.next_u64();
  r.set_state(st);
  EXPECT_EQ(r.next_u64(), expected);
}

// ---------------------------------------------------------------------------
// Quantity parsing
// ---------------------------------------------------------------------------

struct DurationCase {
  const char* text;
  std::int64_t ns;
};

class ParseDuration : public ::testing::TestWithParam<DurationCase> {};

TEST_P(ParseDuration, Parses) {
  const auto v = parse_duration(GetParam().text);
  ASSERT_TRUE(v.has_value()) << GetParam().text;
  EXPECT_EQ(v->ns, GetParam().ns) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Units, ParseDuration,
    ::testing::Values(DurationCase{"10us", 10'000},
                      DurationCase{"150 us", 150'000},
                      DurationCase{"1ms", 1'000'000},
                      DurationCase{"2.5s", 2'500'000'000},
                      DurationCase{"30min", 1'800'000'000'000},
                      DurationCase{"30m", 1'800'000'000'000},
                      DurationCase{"10h", 36'000'000'000'000},
                      DurationCase{"1hr", 3'600'000'000'000},
                      DurationCase{"0", 0},
                      DurationCase{"7ns", 7},
                      DurationCase{"100ms", 100'000'000}));

TEST(ParseDurationEdge, Infinity) {
  const auto v = parse_duration("inf");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->is_infinite());
}

TEST(ParseDurationEdge, Rejects) {
  EXPECT_FALSE(parse_duration("").has_value());
  EXPECT_FALSE(parse_duration("fast").has_value());
  EXPECT_FALSE(parse_duration("10 parsecs").has_value());
  EXPECT_FALSE(parse_duration("-5s").has_value());
}

TEST(ParseBandwidth, CommonForms) {
  EXPECT_DOUBLE_EQ(*parse_bandwidth("80Mb/s"), 80e6 / 8);
  EXPECT_DOUBLE_EQ(*parse_bandwidth("100Mbps"), 100e6 / 8);
  EXPECT_DOUBLE_EQ(*parse_bandwidth("1Gb/s"), 1e9 / 8);
  EXPECT_DOUBLE_EQ(*parse_bandwidth("9600b/s"), 1200.0);
  EXPECT_TRUE(std::isinf(*parse_bandwidth("inf")));
}

TEST(ParseBandwidth, ByteRatesUseCapitalB) {
  // Networking convention: 80Mb/s is bits, 80MB/s is bytes.
  EXPECT_DOUBLE_EQ(*parse_bandwidth("80MB/s"), 80e6);
  EXPECT_DOUBLE_EQ(*parse_bandwidth("1kB/s"), 1e3);
}

TEST(ParseBandwidth, Rejects) {
  EXPECT_FALSE(parse_bandwidth("fast").has_value());
  EXPECT_FALSE(parse_bandwidth("80Tb/s").has_value());
  EXPECT_FALSE(parse_bandwidth("80M/s").has_value());
}

TEST(ParseBytes, BinaryPrefixes) {
  EXPECT_EQ(*parse_bytes("512"), 512u);
  EXPECT_EQ(*parse_bytes("512B"), 512u);
  EXPECT_EQ(*parse_bytes("4KB"), 4096u);
  EXPECT_EQ(*parse_bytes("8MB"), 8u * 1024 * 1024);
  EXPECT_EQ(*parse_bytes("1GB"), 1024ull * 1024 * 1024);
}

TEST(ParseScalars, DoubleAndUint) {
  EXPECT_DOUBLE_EQ(*parse_double("2.75"), 2.75);
  EXPECT_EQ(*parse_uint("12345"), 12345u);
  EXPECT_FALSE(parse_double("two").has_value());
  EXPECT_FALSE(parse_uint("-3").has_value());
  EXPECT_FALSE(parse_uint("3.5").has_value());
}

TEST(FormatBytes, PicksUnit) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(8 * 1024 * 1024), "8.0MB");
}

// ---------------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------------

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta=7", "--gamma",
                        "positional"};
  const Flags f = Flags::parse(5, argv);
  EXPECT_EQ(f.get_int("alpha", 0), 3);
  EXPECT_EQ(f.get_int("beta", 0), 7);
  EXPECT_TRUE(f.get_bool("gamma", false));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "positional");
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  const Flags f = Flags::parse(1, argv);
  EXPECT_EQ(f.get("name", "fallback"), "fallback");
  EXPECT_EQ(f.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(f.get_double("x", 1.5), 1.5);
  EXPECT_FALSE(f.has("n"));
}

TEST(Flags, BadNumberThrows) {
  const char* argv[] = {"prog", "--n=abc"};
  const Flags f = Flags::parse(2, argv);
  EXPECT_THROW(f.get_int("n", 0), CheckFailure);
}

// ---------------------------------------------------------------------------
// Checks
// ---------------------------------------------------------------------------

TEST(Check, PassesSilently) { HC3I_CHECK(1 + 1 == 2, "math works"); }

TEST(Check, ThrowsWithContext) {
  try {
    HC3I_CHECK(false, "the message");
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace hc3i
