#!/usr/bin/env python3
"""Self-tests for tools/hc3i_lint.py: every rule must fire on its trigger
fixture and stay silent on its clean fixture, so the linter itself cannot
rot.  Runs as a ctest (`lint_selftest`) and in the CI lint job:

    python3 tests/lint_test.py

All fixtures are scanned with the regex engine (the always-available
fallback) so the results are identical on machines with and without
libclang.
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "tools"))
import hc3i_lint  # noqa: E402


def scan(snippet, path="src/fake/fixture.cpp"):
    """Lint one in-memory fixture; returns (active, suppressed, errors)."""
    fs = hc3i_lint.scan_text(path, snippet, engine="regex")
    active = [f for f in fs.findings if not f.suppressed_by]
    suppressed = [f for f in fs.findings if f.suppressed_by]
    return active, suppressed, fs.errors


def rules_of(findings):
    return sorted({f.rule for f in findings})


class DetWallclock(unittest.TestCase):
    def test_triggers(self):
        for snippet in (
            "auto t = std::chrono::system_clock::now();",
            "auto t = std::chrono::steady_clock::now();",
            "auto t = std::chrono::high_resolution_clock::now();",
            "std::random_device rd;",
            "std::mt19937_64 gen(seed);",
            "long t = time(nullptr);",
            "int r = rand();",
            "srand(42);",
            "double t = clock();",
            "const char* home = getenv(\"HOME\");",
            "auto r = std::rand();",
        ):
            active, _, _ = scan(snippet)
            self.assertIn("det-wallclock", rules_of(active), snippet)

    def test_clean(self):
        for snippet in (
            "SimTime t = sim.now();",
            "// time() in a comment is prose, not entropy\nint x = 0;",
            "auto s = to_string(commit_time);",
            "double work_time(int n);  // declaration, fine\n",
            "auto v = rng.next_below(1000);",
            "std::string s = \"rand() inside a string\";",
            "sim_time(3);",
        ):
            active, _, _ = scan(snippet)
            self.assertNotIn("det-wallclock", rules_of(active), snippet)

    def test_examples_and_bench_in_scope(self):
        active, _, _ = scan("std::random_device rd;",
                            path="bench/bench_fake.cpp")
        self.assertIn("det-wallclock", rules_of(active))

    def test_tests_dir_out_of_scope(self):
        active, _, _ = scan("std::random_device rd;",
                            path="tests/fake_test.cpp")
        self.assertEqual(active, [])


class DetUnordered(unittest.TestCase):
    def test_triggers(self):
        for snippet in (
            "std::unordered_map<int, int> m;",
            "std::unordered_set<std::uint64_t> seen_;",
            "std::unordered_multimap<Key, V> mm;",
        ):
            active, _, _ = scan(snippet)
            self.assertIn("det-unordered", rules_of(active), snippet)

    def test_clean(self):
        for snippet in (
            "std::map<int, int> m;",
            "std::set<std::uint64_t> seen_;",
            "#include <unordered_set>",  # include alone is not a decl
        ):
            active, _, _ = scan(snippet)
            self.assertNotIn("det-unordered", rules_of(active), snippet)

    def test_tag_suppresses_same_line(self):
        active, suppressed, _ = scan(
            "std::unordered_set<int> s_;  "
            "// lint: unordered-ok(membership only)")
        self.assertEqual(active, [])
        self.assertEqual(rules_of(suppressed), ["det-unordered"])

    def test_tag_suppresses_from_comment_block_above(self):
        active, suppressed, _ = scan(
            "// lint: unordered-ok(membership queries only; the sorted\n"
            "// image is what dumps read)\n"
            "std::unordered_set<int> s_;\n")
        self.assertEqual(active, [])
        self.assertEqual(rules_of(suppressed), ["det-unordered"])

    def test_tag_needs_reason(self):
        active, _, errors = scan(
            "std::unordered_set<int> s_;  // lint: unordered-ok()")
        self.assertTrue(errors)
        self.assertEqual(rules_of(active), ["det-unordered"])

    def test_tag_does_not_leak_past_declaration(self):
        active, _, _ = scan(
            "// lint: unordered-ok(first only)\n"
            "std::unordered_set<int> a_;\n"
            "std::unordered_set<int> b_;\n")
        self.assertEqual(len(active), 1)
        self.assertEqual(active[0].line, 3)


class DetPtrkey(unittest.TestCase):
    def test_triggers(self):
        for snippet in (
            "std::map<Node*, int> owners;",
            "std::unordered_map<const Agent*, State> st;",
            "std::set<Foo*> live;",
            "auto h = reinterpret_cast<std::uintptr_t>(p);",
            "auto h = reinterpret_cast<size_t>(ptr);",
            "std::hash<void*> hasher;",
        ):
            active, _, _ = scan(snippet)
            self.assertIn("det-ptrkey", rules_of(active), snippet)

    def test_clean(self):
        for snippet in (
            "std::map<NodeId, int> owners;",
            "auto* hdr = reinterpret_cast<BlockHeader*>(base);",
            "std::hash<std::uint64_t> hasher;",
            "std::vector<Node*> nodes;",
        ):
            active, _, _ = scan(snippet)
            self.assertNotIn("det-ptrkey", rules_of(active), snippet)


class CheckPure(unittest.TestCase):
    def test_triggers(self):
        for snippet in (
            "HC3I_CHECK(++calls < 10, \"msg\");",
            "HC3I_CHECK(n-- > 0, \"msg\");",
            "HC3I_CHECK(x = compute(), \"assignment, not comparison\");",
            "HC3I_CHECK(total += n, \"compound\");",
            "HC3I_CHECK(!q.pop(), \"mutating call\");",
            "HC3I_CHECK(log_.erase(k) == 1, \"mutating call\");",
            "assert(v.push_back(1), true);",
            "HC3I_CHECK(rng.advance(2) != 0, \"rng state\");",
        ):
            active, _, _ = scan(snippet)
            self.assertIn("check-pure", rules_of(active), snippet)

    def test_clean(self):
        for snippet in (
            "HC3I_CHECK(calls < 10, \"msg\");",
            "HC3I_CHECK(a == b && c <= d, \"comparisons are fine\");",
            "HC3I_CHECK(!rt.store(ClusterId{0}).empty(), \"accessor\");",
            "HC3I_CHECK(v.has_value(), \"flag --x is not a number: \" + s);",
            "HC3I_CHECK(!arg.empty(), \"bare '--' is not a valid flag\");",
            "HC3I_CHECK(t >= now_, \"past (t=\" + to_string(t) + \")\");",
            "HC3I_CHECK(set.count(k) == 1, \"pure query\");",
        ):
            active, _, _ = scan(snippet)
            self.assertNotIn("check-pure", rules_of(active), snippet)

    def test_multiline_argument(self):
        active, _, _ = scan(
            "HC3I_CHECK(counter++ <\n"
            "           limit,\n"
            "           \"spans lines\");\n")
        self.assertIn("check-pure", rules_of(active))


class OwnStatic(unittest.TestCase):
    def test_triggers(self):
        for snippet in (
            "static int counter = 0;",
            "static std::atomic<std::uint32_t> counter{0};",
            "thread_local Arena* t_arena = nullptr;",
            "inline thread_local Arena* t_arena = nullptr;",
            "inline TraceLevel g_level = TraceLevel::kStats;",
            "TraceSink g_sink;",
            "static std::vector<int> cache;",
        ):
            active, _, _ = scan(snippet)
            self.assertIn("own-static", rules_of(active), snippet)

    def test_clean(self):
        for snippet in (
            "static constexpr std::size_t kMax = 4096;",
            "static const std::string kEmpty;",
            "static const std::uint32_t idx = next_pool_type_index();",
            "static Flags parse(int argc, const char* const* argv);",
            "static PayloadArena* current() { return arena; }",
            "static bool earlier(const Entry& a, const Entry& b) {",
            "static std::uint64_t pack(ClusterId src, ClusterId dst) {",
            "inline double now_sec() {",
            "inline constexpr bool kEnabled = true;",
            "g_sink = std::move(sink);",  # assignment, not a declaration
            "int local = 0;",
        ):
            active, _, _ = scan(snippet)
            self.assertNotIn("own-static", rules_of(active), snippet)

    def test_out_of_scope_dirs(self):
        # own-static is a src/-only rule: bench alloc counters and example
        # arg-parsing globals are driver state, not simulation state.
        active, _, _ = scan("std::uint64_t g_allocs = 0;",
                            path="bench/bench_fake.cpp")
        self.assertEqual(active, [])

    def test_tag_suppresses(self):
        active, suppressed, _ = scan(
            "// lint: static-ok(type-index registry, atomic)\n"
            "static std::atomic<std::uint32_t> counter{0};\n")
        self.assertEqual(active, [])
        self.assertEqual(rules_of(suppressed), ["own-static"])


class TraceGuarded(unittest.TestCase):
    def test_triggers(self):
        for snippet in (
            "ctx_.obs->emit(obs::RecordKind::kClcCommit, now, c, n, id);",
            "recorder_.emit(obs::RecordKind::kFailure, now, c, v, 0);",
            "Trace::emit(TraceLevel::kStats, now, line);",
            "::hc3i::Trace::emit(TraceLevel::kAction, now, line);",
            "if (x) { rec->emit(k, t, c, n, id); }",  # hand-rolled guard
        ):
            active, _, _ = scan(snippet)
            self.assertIn("trace-guarded", rules_of(active), snippet)

    def test_clean(self):
        for snippet in (
            "HC3I_OBS(ctx_.obs, obs::RecordKind::kClcAck, now, c, n, id);",
            "HC3I_TRACE(kProtocol, now, \"cluster \" << c << \" commit\");",
            "registry_.inc(\"clc.total\");",
            "q.emplace(k, v);",  # emplace is not emit
            "// rec->emit(...) in prose\nint x = 0;",
        ):
            active, _, _ = scan(snippet)
            self.assertNotIn("trace-guarded", rules_of(active), snippet)

    def test_implementation_homes_excluded(self):
        for path in ("src/obs/trace.hpp", "src/obs/export.cpp",
                     "src/util/log.cpp", "src/util/log.hpp"):
            active, _, _ = scan(
                "Trace::emit(lv, t, line); buf->emit(k, t, c, n, id);",
                path=path)
            self.assertEqual(active, [], path)

    def test_out_of_scope_dirs(self):
        # Drivers set the level themselves; a raw emit there is a choice.
        active, _, _ = scan("Trace::emit(TraceLevel::kAction, t, line);",
                            path="bench/bench_fake.cpp")
        self.assertEqual(active, [])

    def test_tag_suppresses(self):
        active, suppressed, _ = scan(
            "// lint: trace-ok(level pre-checked by the enclosing branch)\n"
            "Trace::emit(TraceLevel::kAction, now, line);\n")
        self.assertEqual(active, [])
        self.assertEqual(rules_of(suppressed), ["trace-guarded"])


class Baseline(unittest.TestCase):
    def _write(self, tmp, content):
        path = os.path.join(tmp, "baseline.txt")
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
        return path

    def test_reason_required(self):
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            path = self._write(tmp, "det-wallclock\tsrc/a.cpp\n")
            entries, errors = hc3i_lint.load_baseline(path)
            self.assertEqual(entries, [])
            self.assertTrue(errors)

    def test_unknown_rule_rejected(self):
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            path = self._write(tmp, "not-a-rule\tsrc/a.cpp\treason\n")
            entries, errors = hc3i_lint.load_baseline(path)
            self.assertEqual(entries, [])
            self.assertTrue(errors)

    def test_wellformed_entry_parses(self):
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            path = self._write(
                tmp, "# comment\n\ndet-wallclock\tsrc/a.cpp\tthe reason\n")
            entries, errors = hc3i_lint.load_baseline(path)
            self.assertEqual(errors, [])
            self.assertEqual(len(entries), 1)
            self.assertEqual(entries[0].rule, "det-wallclock")
            self.assertEqual(entries[0].path, "src/a.cpp")
            self.assertEqual(entries[0].reason, "the reason")


class RepoIsClean(unittest.TestCase):
    def test_strict_run_over_tree_passes(self):
        # The real tree, the real baseline, strict mode: exactly what CI
        # runs.  Any regression in either the code or the linter shows here.
        rc = hc3i_lint.main(["--strict", "--engine=regex"])
        self.assertEqual(rc, 0)


if __name__ == "__main__":
    unittest.main(verbosity=2)
