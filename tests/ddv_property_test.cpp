// Property suite for the unified proto::Ddv (inline-small + refcounted
// COW spill): every operation must agree with a plain std::vector<SeqNum>
// reference model at widths spanning the inline/spill boundary, and shared
// storage must behave like value semantics — a mutation after sharing
// detaches the writer and never moves an outstanding snapshot.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "proto/ddv.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace hc3i::proto {
namespace {

std::vector<SeqNum> random_entries(RngStream& rng, std::size_t width) {
  std::vector<SeqNum> v(width);
  for (auto& e : v) e = static_cast<SeqNum>(rng.next_below(50));
  return v;
}

// ---------------------------------------------------------------------------
// Model equivalence: raise/set/merge_max/at/equality vs the vector model,
// with aliased snapshots taken along the way (COW isolation).
// ---------------------------------------------------------------------------

class DdvModelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DdvModelProperty, AgreesWithVectorModelAcrossWidths) {
  RngStream rng(GetParam(), 0xDD5);
  // Width 1..64: both sides of the inline boundary, far into spill range.
  std::size_t width = 1 + rng.next_below(64);
  Ddv d(width, ClusterId{0}, 0);
  std::vector<SeqNum> model(width, 0);
  // Aliased snapshots with their expected values at snapshot time.
  std::vector<std::pair<Ddv, std::vector<SeqNum>>> snaps;

  for (int step = 0; step < 300; ++step) {
    const auto i =
        ClusterId{static_cast<std::uint32_t>(rng.next_below(width))};
    switch (rng.next_below(6)) {
      case 0: {  // raise
        const auto sn = static_cast<SeqNum>(rng.next_below(60));
        const bool raised = d.raise(i, sn);
        EXPECT_EQ(raised, sn > model[i.v]);
        model[i.v] = std::max(model[i.v], sn);
        break;
      }
      case 1: {  // set (any direction, including no-op)
        const auto sn = static_cast<SeqNum>(rng.next_below(60));
        d.set(i, sn);
        model[i.v] = sn;
        break;
      }
      case 2: {  // merge_max with an independent vector
        const std::vector<SeqNum> other = random_entries(rng, width);
        d.merge_max(Ddv(other));
        for (std::size_t k = 0; k < width; ++k) {
          model[k] = std::max(model[k], other[k]);
        }
        break;
      }
      case 3: {  // take an aliasing snapshot (bounded)
        if (snaps.size() < 8) snaps.emplace_back(d, model);
        break;
      }
      case 4: {  // whole reassignment — crosses the inline/spill boundary
                 // in both directions as widths shuffle
        width = 1 + rng.next_below(64);
        const std::vector<SeqNum> fresh = random_entries(rng, width);
        d = Ddv(fresh);
        model = fresh;
        break;
      }
      case 5: {  // self-merge is always a no-op
        d.merge_max(d);
        break;
      }
    }
    // Invariants, every step.
    ASSERT_EQ(d.size(), model.size());
    ASSERT_EQ(d.to_vector(), model);
    ASSERT_EQ(d.spilled(), model.size() > Ddv::kInlineEntries);
    for (std::size_t k = 0; k < model.size(); ++k) {
      ASSERT_EQ(d.at(ClusterId{static_cast<std::uint32_t>(k)}), model[k]);
      ASSERT_EQ(d[k], model[k]);
    }
    ASSERT_TRUE(d == Ddv(model));
    // Every outstanding snapshot is frozen at its capture state.
    for (const auto& [snap, expect] : snaps) {
      ASSERT_EQ(snap.to_vector(), expect);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomOpSequences, DdvModelProperty,
                         ::testing::Range<std::uint64_t>(1, 33));

// ---------------------------------------------------------------------------
// Targeted COW aliasing checks
// ---------------------------------------------------------------------------

TEST(DdvCow, MutateAfterShareDetachesSpilled) {
  Ddv a(8, ClusterId{0}, 5);
  Ddv b = a;
  ASSERT_TRUE(b.shares_storage_with(a));
  ASSERT_TRUE(b.raise(ClusterId{3}, 9));
  EXPECT_FALSE(b.shares_storage_with(a));
  EXPECT_EQ(a.at(ClusterId{3}), 0u);  // the shared block never moved
  EXPECT_EQ(b.at(ClusterId{3}), 9u);
  EXPECT_EQ(a.at(ClusterId{0}), 5u);
}

TEST(DdvCow, MutateAfterShareLeavesInlineCopiesIndependent) {
  Ddv a(3, ClusterId{0}, 5);
  Ddv b = a;
  b.set(ClusterId{1}, 7);
  EXPECT_EQ(a.at(ClusterId{1}), 0u);
  EXPECT_EQ(b.at(ClusterId{1}), 7u);
}

TEST(DdvCow, NoOpMutatorsDoNotDetach) {
  Ddv a(8, ClusterId{2}, 5);
  a.raise(ClusterId{6}, 3);
  Ddv b = a;
  ASSERT_TRUE(b.shares_storage_with(a));
  EXPECT_FALSE(b.raise(ClusterId{6}, 2));  // below current: no-op
  b.set(ClusterId{2}, 5);                  // equal: no-op
  b.merge_max(a);                          // dominated: no-op
  b.merge_max(b);                          // self: no-op
  EXPECT_TRUE(b.shares_storage_with(a));
}

TEST(DdvCow, MergeMaxDetachesExactlyWhenAnEntryRises) {
  Ddv a(8, ClusterId{0}, 5);
  Ddv b = a;
  Ddv other(8, ClusterId{7}, 1);
  b.merge_max(other);  // raises entry 7 from 0 to 1
  EXPECT_FALSE(b.shares_storage_with(a));
  EXPECT_EQ(a.at(ClusterId{7}), 0u);
  EXPECT_EQ(b.at(ClusterId{7}), 1u);
  EXPECT_EQ(b.at(ClusterId{0}), 5u);  // untouched entries carried over
}

TEST(DdvCow, MergeWithAliasedArgumentIsSafe) {
  // The argument shares the destination's spill block; the early "anything
  // to raise?" scan must conclude no and leave both untouched.
  Ddv a(8, ClusterId{1}, 4);
  Ddv b = a;
  b.merge_max(a);
  EXPECT_TRUE(b.shares_storage_with(a));
  EXPECT_EQ(b, a);
}

TEST(DdvCow, ThirdCopyStillSharesAfterOneWriterDetaches) {
  Ddv a(8, ClusterId{0}, 5);
  Ddv b = a;
  Ddv c = a;
  b.set(ClusterId{4}, 2);  // b detaches
  EXPECT_TRUE(c.shares_storage_with(a));
  EXPECT_FALSE(b.shares_storage_with(a));
  EXPECT_EQ(c, a);
}

TEST(DdvCow, SoleOwnerMutatesInPlaceWithoutReallocating) {
  Ddv a(8, ClusterId{0}, 5);
  const SeqNum* before = a.data();
  a.set(ClusterId{3}, 9);   // refs == 1: in-place
  a.raise(ClusterId{5}, 2);
  EXPECT_EQ(a.data(), before);
}

// ---------------------------------------------------------------------------
// Inline/spill boundary crossings
// ---------------------------------------------------------------------------

TEST(DdvBoundary, ExactCapacityStaysInlineOnePastSpills) {
  const Ddv at_cap(Ddv::kInlineEntries, ClusterId{0}, 1);
  EXPECT_FALSE(at_cap.spilled());
  const Ddv past(Ddv::kInlineEntries + 1, ClusterId{0}, 1);
  EXPECT_TRUE(past.spilled());
  EXPECT_EQ(past.at(ClusterId{0}), 1u);
  EXPECT_EQ(past.at(ClusterId{static_cast<std::uint32_t>(
                Ddv::kInlineEntries)}),
            0u);
}

TEST(DdvBoundary, AssignAcrossTheBoundaryBothDirections) {
  Ddv d(2, ClusterId{0}, 3);          // inline
  const Ddv wide(9, ClusterId{8}, 7);  // spilled
  d = wide;                            // inline -> spill (refcount bump)
  EXPECT_TRUE(d.spilled());
  EXPECT_TRUE(d.shares_storage_with(wide));
  d = Ddv(2, ClusterId{1}, 4);         // spill -> inline (block released)
  EXPECT_FALSE(d.spilled());
  EXPECT_EQ(d.at(ClusterId{1}), 4u);
  EXPECT_EQ(wide.at(ClusterId{8}), 7u);  // survivor unaffected
}

TEST(DdvBoundary, OutOfRangeAccessorsThrowAtEveryWidth) {
  for (const std::size_t width : {1u, 4u, 5u, 64u}) {
    Ddv d(width, ClusterId{0}, 1);
    const auto past = ClusterId{static_cast<std::uint32_t>(width)};
    EXPECT_THROW(d.at(past), CheckFailure) << width;
    EXPECT_THROW(d.raise(past, 1), CheckFailure) << width;
    EXPECT_THROW(d.set(past, 1), CheckFailure) << width;
    EXPECT_THROW(d.merge_max(Ddv(width + 1, ClusterId{0}, 1)), CheckFailure)
        << width;
  }
}

TEST(DdvBoundary, MovedFromIsEmptyAndReusable) {
  Ddv a(8, ClusterId{0}, 1);
  Ddv b = std::move(a);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): asserted state
  a = Ddv(3, ClusterId{1}, 2);
  EXPECT_EQ(a.at(ClusterId{1}), 2u);
  EXPECT_EQ(b.at(ClusterId{0}), 1u);
}

}  // namespace
}  // namespace hc3i::proto
