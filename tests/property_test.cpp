// Property suite: every protocol, across seeds, cluster layouts and failure
// schedules, must finish with a clean consistency ledger — no ghost
// messages, no duplicates, no losses (paper §2.2's definition of a
// consistent state, enforced over whole executions).
//
// This is the randomized backbone of the test suite: the scenario tests
// pin down specific mechanisms; this sweep hunts for interleavings nobody
// thought of.

#include <gtest/gtest.h>

#include <tuple>

#include "driver/run.hpp"
#include "test_util.hpp"

namespace hc3i::testing {
namespace {

struct PropertyCase {
  driver::ProtocolKind protocol;
  std::uint64_t seed;
  std::size_t clusters;
  std::uint32_t nodes;
  int failures;  ///< failures spread over the run (0 = failure-free)
};

void PrintTo(const PropertyCase& c, std::ostream* os) {
  *os << driver::to_string(c.protocol) << "/seed" << c.seed << "/" << c.clusters
      << "x" << c.nodes << "/f" << c.failures;
}

class ConsistencyProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ConsistencyProperty, LedgerStaysClean) {
  const PropertyCase& c = GetParam();
  driver::RunOptions opts;
  opts.spec = config::small_test_spec(c.clusters, c.nodes);
  opts.spec.application.total_time = hours(1);
  for (auto& t : opts.spec.timers.clusters) t.clc_period = minutes(7);
  if (c.protocol == driver::ProtocolKind::kHc3i) {
    opts.spec.timers.gc_period = minutes(13);
  }
  opts.protocol = c.protocol;
  opts.seed = c.seed;
  // Spread scripted failures across the run; rotate victims across
  // clusters and pick both coordinators and followers.
  RngStream rng(c.seed, 0xFA17);
  for (int i = 0; i < c.failures; ++i) {
    const SimTime at = minutes(9 + i * (45 / std::max(1, c.failures)));
    const auto victim = NodeId{static_cast<std::uint32_t>(
        rng.next_below(c.clusters * c.nodes))};
    opts.scripted_failures.push_back({at, victim});
  }
  opts.validate = false;  // collect violations; assert below for messages
  const auto result = driver::run_simulation(opts);
  EXPECT_TRUE(result.violations.empty())
      << result.violations.size() << " violations, first: "
      << (result.violations.empty() ? "" : result.violations.front());
  // The run must have actually exercised the machinery.
  EXPECT_GT(result.counter("app.sends"), 50u);
  if (c.failures > 0) {
    EXPECT_GE(result.counter("fault.injected"), 1u);
  }
}

std::vector<PropertyCase> all_cases() {
  std::vector<PropertyCase> cases;
  const driver::ProtocolKind kinds[] = {
      driver::ProtocolKind::kHc3i,
      driver::ProtocolKind::kIndependent,
      driver::ProtocolKind::kCoordinatedGlobal,
      driver::ProtocolKind::kPessimisticLog,
      driver::ProtocolKind::kHierarchicalCoordinated,
  };
  for (const auto kind : kinds) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      cases.push_back({kind, seed, 2, 3, 0});
      cases.push_back({kind, seed, 2, 3, 2});
      cases.push_back({kind, seed, 3, 2, 3});
    }
  }
  // HC3I gets extra stress: more clusters, more faults, bigger clusters.
  for (const std::uint64_t seed : {4ull, 5ull, 6ull, 7ull}) {
    cases.push_back({driver::ProtocolKind::kHc3i, seed, 4, 2, 4});
    cases.push_back({driver::ProtocolKind::kHc3i, seed, 2, 6, 3});
    cases.push_back({driver::ProtocolKind::kHc3i, seed, 3, 4, 5});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConsistencyProperty,
                         ::testing::ValuesIn(all_cases()));

// Random (MTBF-driven) failures instead of scripted ones.
class AutoFailureProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AutoFailureProperty, Hc3iSurvivesPoissonFaults) {
  driver::RunOptions opts;
  opts.spec = config::small_test_spec(2, 3);
  opts.spec.application.total_time = hours(2);
  opts.spec.topology.mtbf = minutes(25);
  for (auto& t : opts.spec.timers.clusters) t.clc_period = minutes(8);
  opts.spec.timers.gc_period = minutes(30);
  opts.seed = GetParam();
  opts.auto_failures = true;
  const auto result = driver::run_simulation(opts);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_GE(result.counter("fault.injected"), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutoFailureProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// Replication-degree extension (paper §7): any degree must stay consistent.
class ReplicationProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(ReplicationProperty, AnyDegreeStaysConsistent) {
  driver::RunOptions opts;
  opts.spec = config::small_test_spec(2, 4);
  opts.spec.application.total_time = hours(1);
  opts.hc3i.replication = std::get<0>(GetParam());
  opts.seed = std::get<1>(GetParam());
  opts.scripted_failures.push_back({minutes(30), NodeId{2}});
  const auto result = driver::run_simulation(opts);
  EXPECT_TRUE(result.violations.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Degrees, ReplicationProperty,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 3u),
                       ::testing::Values(1ull, 2ull)));

// Transitive-DDV extension (paper §7) under failures.
class TransitiveProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransitiveProperty, StaysConsistentUnderFailures) {
  driver::RunOptions opts;
  opts.spec = config::small_test_spec(3, 2);
  opts.spec.application.total_time = hours(1);
  opts.hc3i.transitive_ddv = true;
  opts.seed = GetParam();
  opts.scripted_failures.push_back({minutes(20), NodeId{1}});
  opts.scripted_failures.push_back({minutes(40), NodeId{4}});
  const auto result = driver::run_simulation(opts);
  EXPECT_TRUE(result.violations.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransitiveProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

/// Heavy-traffic spec: multi-megabyte messages keep several intra-cluster
/// transfers in flight at any instant, so every CLC commit has channel
/// state to capture.
driver::RunOptions heavy_traffic_opts(std::uint64_t seed) {
  driver::RunOptions opts;
  opts.spec = config::small_test_spec(2, 4);
  opts.spec.application.total_time = minutes(20);
  for (auto& c : opts.spec.application.clusters) {
    c.mean_compute = seconds(2);
    c.message_bytes = 4 * 1024 * 1024;  // ~0.4 s in flight on the SAN
  }
  for (auto& t : opts.spec.timers.clusters) t.clc_period = minutes(3);
  opts.seed = seed;
  opts.scripted_failures.push_back({minutes(13), NodeId{1}});
  opts.validate = false;
  return opts;
}

// Positive control: with channel capture on, the heavy-traffic scenario is
// clean — in-flight intra messages crossing a commit survive the rollback.
TEST(ChannelState, HeavyTrafficStaysConsistent) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto result = driver::run_simulation(heavy_traffic_opts(seed));
    EXPECT_TRUE(result.violations.empty())
        << "seed " << seed << ": "
        << (result.violations.empty() ? "" : result.violations.front());
  }
}

// Negative control: breaking channel-state capture must surface as ledger
// violations — proof the oracle actually detects protocol bugs.
TEST(NegativeControl, DisabledChannelCaptureIsCaught) {
  bool any_violation = false;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    auto opts = heavy_traffic_opts(seed);
    opts.hc3i.capture_channel_state = false;  // sabotage
    const auto result = driver::run_simulation(opts);
    any_violation = any_violation || !result.violations.empty();
  }
  EXPECT_TRUE(any_violation)
      << "sabotaged protocol passed the checker — the oracle is too weak";
}

}  // namespace
}  // namespace hc3i::testing
