#pragma once

// Shared test scaffolding.
//
// ScriptedApp is a minimal AppHandle whose sends are driven explicitly by
// the test ("node 3 sends to node 17 now"), giving scenario tests precise
// control over the message pattern — the unit-level complement to the
// random Workload used by the property suites.
//
// MiniWorld assembles a full stack (simulation, federation, agents, one
// ScriptedApp per node) for a given spec and protocol factory.

#include <functional>
#include <memory>
#include <vector>

#include "baselines/independent.hpp"
#include "config/presets.hpp"
#include "fed/federation.hpp"
#include "hc3i/agent.hpp"
#include "hc3i/runtime.hpp"
#include "proto/snapshot.hpp"
#include "sim/simulation.hpp"
#include "stats/registry.hpp"

namespace hc3i::testing {

/// Test-controlled application process.
class ScriptedApp final : public proto::AppHandle {
 public:
  proto::AppSnapshot snapshot() const override {
    proto::AppSnapshot snap;
    snap.progress = progress;
    snap.virtual_work = virtual_work;
    // Must match the spec's declared state size: the protocol checks every
    // captured part against it (regression: a fixture hardcoding 1024 here
    // silently mis-sized all storage accounting).
    snap.state_bytes = state_bytes;
    snap.delta_bytes = state_bytes;
    snap.opaque = {delivered_count};
    return snap;
  }
  void freeze() override { frozen = true; }
  void restore(const proto::AppSnapshot& snap) override {
    frozen = false;
    progress = snap.progress;
    virtual_work = snap.virtual_work;
    delivered_count = snap.opaque.empty() ? 0 : snap.opaque[0];
    ++restore_count;
  }
  void deliver(const net::Envelope& env) override {
    ++delivered_count;
    delivered.push_back(env);
  }

  /// Advance the fake progress marker (simulates computation).
  void work() {
    ++progress;
    virtual_work += seconds(1);
  }

  std::uint64_t progress{0};
  SimTime virtual_work{};
  std::uint64_t state_bytes{1024};  ///< MiniWorld aligns this with the spec
  std::uint64_t delivered_count{0};
  std::vector<net::Envelope> delivered;  ///< every delivery ever (not state)
  bool frozen{false};
  int restore_count{0};
};

/// A fully wired mini federation with scripted apps.
class MiniWorld {
 public:
  /// `independent` swaps in the independent-checkpointing baseline agent
  /// (same runtime/stores, forcing rule disabled).
  MiniWorld(config::RunSpec spec, std::uint64_t seed,
            core::Hc3iOptions options = {}, bool independent = false)
      : sim(seed), spec_(std::move(spec)), fed(sim, spec_, registry) {
    if (independent) options.enable_gc = false;
    runtime = std::make_unique<core::Hc3iRuntime>(spec_, options);
    apps.reserve(fed.topology().node_count());
    for (std::uint32_t i = 0; i < fed.topology().node_count(); ++i) {
      apps.push_back(std::make_unique<ScriptedApp>());
      apps.back()->state_bytes = spec_.application.state_bytes;
    }
    std::vector<proto::AppHandle*> handles;
    for (auto& a : apps) handles.push_back(a.get());
    fed.build_agents(independent ? baselines::independent_factory(*runtime)
                                 : runtime->factory(),
                     handles);
    fed.start();
  }

  /// Let all pending protocol activity settle (bounded horizon).
  void settle(SimTime dt = seconds(30)) { sim.run_until(sim.now() + dt); }

  /// Issue one application send from `src` to `dst`; returns the app_seq.
  std::uint64_t send(NodeId src, NodeId dst, std::uint64_t bytes = 1024) {
    const std::uint64_t seq = next_seq_++;
    fed.agent(src).app_send(dst, bytes, seq);
    return seq;
  }

  core::Hc3iAgent& agent(NodeId n) {
    return *static_cast<core::Hc3iAgent*>(&fed.agent(n));
  }

  /// True when a delivery of `app_seq` reached `dst` (ever).
  bool delivered(NodeId dst, std::uint64_t app_seq) const {
    for (const auto& env : apps[dst.v]->delivered) {
      if (env.app_seq == app_seq) return true;
    }
    return false;
  }

  sim::Simulation sim;
  stats::Registry registry;
  config::RunSpec spec_;
  fed::Federation fed;
  std::unique_ptr<core::Hc3iRuntime> runtime;
  std::vector<std::unique_ptr<ScriptedApp>> apps;

 private:
  std::uint64_t next_seq_{1};
};

/// A spec with near-zero latencies disabled GC and no failures, sized
/// `clusters` x `nodes` — the default scenario-test substrate.
inline config::RunSpec tiny_spec(std::size_t clusters = 2,
                                 std::uint32_t nodes = 3) {
  config::RunSpec spec = config::small_test_spec(clusters, nodes);
  spec.application.state_bytes = 64 * 1024;
  // Effectively-never unforced CLCs: scenario tests drive everything.
  for (auto& c : spec.timers.clusters) c.clc_period = SimTime::infinity();
  return spec;
}

}  // namespace hc3i::testing
