// Baseline-protocol scenarios: each baseline must survive failures with a
// clean ledger, and must exhibit its characteristic behaviour (domino for
// independent, whole-federation rollback for coordinated-global, single-node
// rollback for pessimistic logging, fewer WAN crossings for hierarchical).

#include <gtest/gtest.h>

#include "driver/run.hpp"
#include "test_util.hpp"

namespace hc3i::testing {
namespace {

driver::RunOptions base_opts(driver::ProtocolKind kind, std::uint64_t seed = 1) {
  driver::RunOptions opts;
  opts.spec = config::small_test_spec(2, 3);
  opts.spec.application.total_time = hours(1);
  opts.spec.timers.clusters[0].clc_period = minutes(10);
  opts.spec.timers.clusters[1].clc_period = minutes(10);
  opts.protocol = kind;
  opts.seed = seed;
  return opts;
}

TEST(CoordinatedGlobal, FailureFreeRunCheckpoints) {
  const auto result = driver::run_simulation(
      base_opts(driver::ProtocolKind::kCoordinatedGlobal));
  // Global rounds: initial + ~5 timer rounds; every cluster stores each.
  EXPECT_GE(result.clc_total(ClusterId{0}), 5u);
  EXPECT_EQ(result.clc_total(ClusterId{0}), result.clc_total(ClusterId{1}));
  EXPECT_EQ(result.clc_forced(ClusterId{0}), 0u);  // nothing is forced
  EXPECT_TRUE(result.violations.empty());
}

TEST(CoordinatedGlobal, FailureRollsBackEveryCluster) {
  auto opts = base_opts(driver::ProtocolKind::kCoordinatedGlobal);
  opts.scripted_failures.push_back({minutes(25), NodeId{1}});
  const auto result = driver::run_simulation(opts);
  // Both clusters roll back — the cost the paper's hierarchy avoids.
  EXPECT_EQ(result.counter("rollback.count"), 2u);
  EXPECT_GE(result.counter("app.restores"), 6u);  // every node restored
  EXPECT_TRUE(result.violations.empty());
}

TEST(CoordinatedGlobal, FreezeTimeIsObserved) {
  const auto result = driver::run_simulation(
      base_opts(driver::ProtocolKind::kCoordinatedGlobal));
  EXPECT_GT(result.registry.summary("global.freeze_s").count(), 0u);
  EXPECT_GT(result.registry.summary("global.freeze_s").mean(), 0.0);
}

TEST(HierarchicalCoordinated, FewerWanControlMessagesThanFlat) {
  const auto flat = driver::run_simulation(
      base_opts(driver::ProtocolKind::kCoordinatedGlobal));
  const auto hier = driver::run_simulation(
      base_opts(driver::ProtocolKind::kHierarchicalCoordinated));
  // Same number of global checkpoints...
  EXPECT_EQ(flat.clc_total(ClusterId{0}), hier.clc_total(ClusterId{0}));
  // ...but the two-level variant crosses the WAN once per cluster instead
  // of once per node ([9]'s claim).
  EXPECT_LT(hier.counter("net.ctl.inter.msgs"),
            flat.counter("net.ctl.inter.msgs") / 2);
  EXPECT_TRUE(hier.violations.empty());
}

TEST(HierarchicalCoordinated, RecoversFromFailure) {
  auto opts = base_opts(driver::ProtocolKind::kHierarchicalCoordinated);
  opts.scripted_failures.push_back({minutes(25), NodeId{4}});
  const auto result = driver::run_simulation(opts);
  EXPECT_EQ(result.counter("rollback.count"), 2u);  // all clusters
  EXPECT_TRUE(result.violations.empty());
}

TEST(PessimisticLog, OnlyTheFailedNodeRollsBack) {
  auto opts = base_opts(driver::ProtocolKind::kPessimisticLog);
  opts.scripted_failures.push_back({minutes(25), NodeId{1}});
  const auto result = driver::run_simulation(opts);
  EXPECT_EQ(result.counter("rollback.count"), 1u);
  EXPECT_EQ(result.counter("app.restores"), 1u);  // exactly one node
  EXPECT_TRUE(result.violations.empty());
}

TEST(PessimisticLog, ReplaysLoggedDeliveries) {
  auto opts = base_opts(driver::ProtocolKind::kPessimisticLog);
  opts.scripted_failures.push_back({minutes(37), NodeId{2}});
  const auto result = driver::run_simulation(opts);
  // The victim had deliveries after its last checkpoint; they must have
  // been replayed from the channel memory.
  EXPECT_GE(result.counter("pess.replayed"), 1u);
  EXPECT_TRUE(result.violations.empty());
}

TEST(PessimisticLog, LoggingDoublesDeliveryTraffic) {
  const auto result = driver::run_simulation(
      base_opts(driver::ProtocolKind::kPessimisticLog));
  // Every delivery ships one copy to the channel memory.
  EXPECT_EQ(result.counter("pess.log_copies"), result.counter("app.delivered"));
}

TEST(Independent, RunsCleanWithoutFailures) {
  const auto result =
      driver::run_simulation(base_opts(driver::ProtocolKind::kIndependent));
  EXPECT_EQ(result.counter("cic.forced_triggers.c0") +
                result.counter("cic.forced_triggers.c1"),
            0u);  // the forcing rule is off
  EXPECT_TRUE(result.violations.empty());
}

TEST(Independent, DominoEffectRollsDeeperThanHc3i) {
  // Deterministic timeline demonstrating §2.2's argument for forcing:
  //   t≈3min  cluster 0 commits CLC sn=2 (timer)
  //   t=5min  cluster 0 -> cluster 1 message m carrying SN 2
  //             HC3I: forced CLC in cluster 1 right before delivering m
  //             independent: m delivered immediately, DDV raised lazily
  //   t=10min cluster 1 commits its timer CLC (contaminated by m)
  //   t=12min cluster 0 fails and restores SN 2 => m is undone.
  // HC3I rolls cluster 1 back to the forced CLC taken at 5min; the
  // independent baseline has no checkpoint between the initial CLC and the
  // contamination, so it dominoes all the way to SN 1.
  auto run = [](bool independent) {
    config::RunSpec spec = tiny_spec(2, 2);
    spec.timers.clusters[0].clc_period = minutes(4);
    spec.timers.clusters[1].clc_period = seconds(90);
    MiniWorld w(spec, 1, {}, independent);
    // Cluster 0 commits sn=2 at ~4min; m is sent right after, carrying SN 2.
    w.sim.run_until(minutes(4) + seconds(10));
    EXPECT_EQ(w.runtime->store(ClusterId{0}).last().sn, 2u);
    w.send(NodeId{0}, NodeId{2});  // m
    // Cluster 1 keeps committing 90s CLCs, all contaminated by m now.
    // Fail cluster 0 before its 8-minute commit: it restores SN 2, so m is
    // undone and cluster 1 must abandon every contaminated checkpoint.
    w.sim.run_until(minutes(7) + seconds(50));
    w.fed.inject_failure(NodeId{1});
    // Settle long enough for the cascade but shorter than cluster 1's 90 s
    // timer, so no fresh post-recovery CLC masks the restored one.
    w.settle(seconds(30));
    EXPECT_TRUE(w.fed.ledger().validate(false).empty());
    EXPECT_GE(w.registry.get("rollback.count.c1"), 1u);
    // Where did cluster 1 land, in wall-clock terms?
    return w.runtime->store(ClusterId{1}).last().commit_time;
  };
  const SimTime hc3i_restored_at = run(false);
  const SimTime indep_restored_at = run(true);
  // HC3I lands on the forced CLC taken right before m's delivery (~4min);
  // the independent baseline dominoes past it to the last checkpoint that
  // provably precedes the contamination (~3min) — strictly more lost work.
  EXPECT_GT(hc3i_restored_at, indep_restored_at);
  EXPECT_GE(hc3i_restored_at, minutes(4));
  EXPECT_LE(indep_restored_at, minutes(3) + seconds(10));
}

TEST(Independent, GcIsRefused) {
  auto opts = base_opts(driver::ProtocolKind::kIndependent);
  opts.spec.timers.gc_period = minutes(20);
  opts.hc3i.enable_gc = true;  // the driver must override this
  const auto result = driver::run_simulation(opts);
  EXPECT_EQ(result.counter("gc.rounds"), 0u);
}

TEST(AllProtocols, NamesAreStable) {
  EXPECT_EQ(driver::to_string(driver::ProtocolKind::kHc3i), "HC3I");
  EXPECT_EQ(driver::to_string(driver::ProtocolKind::kIndependent),
            "independent");
  EXPECT_EQ(driver::to_string(driver::ProtocolKind::kCoordinatedGlobal),
            "coordinated-global");
  EXPECT_EQ(driver::to_string(driver::ProtocolKind::kPessimisticLog),
            "pessimistic-log");
  EXPECT_EQ(driver::to_string(driver::ProtocolKind::kHierarchicalCoordinated),
            "hierarchical-coordinated");
}

}  // namespace
}  // namespace hc3i::testing
