// Scale-out regime tests: the sparse pair census (vs a dense reference,
// including node up/down churn), pooled control payloads (recycling without
// aliasing), the compressed GC metadata codec (round trip), the dedup-set
// copy-on-write capture, and a 10-cluster end-to-end smoke run.

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "config/presets.hpp"
#include "driver/run.hpp"
#include "hc3i/control.hpp"
#include "net/network.hpp"
#include "net/pair_census.hpp"
#include "proto/dedup_set.hpp"
#include "proto/gc_wire.hpp"
#include "proto/payload_pool.hpp"
#include "sim/simulation.hpp"
#include "stats/registry.hpp"
#include "util/rng.hpp"

namespace hc3i {
namespace {

// ---------------------------------------------------------------------------
// Sparse pair census
// ---------------------------------------------------------------------------

TEST(PairCensus, CountsMatchDenseReference) {
  net::PairCensus census;
  stats::Registry reg;
  // Dense reference: a plain map keyed the obvious way.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> dense;
  RngStream rng(42, 1);
  constexpr std::uint32_t kClusters = 37;  // deliberately not a power of two
  for (int i = 0; i < 20000; ++i) {
    const ClusterId src{static_cast<std::uint32_t>(rng.next_below(kClusters))};
    const ClusterId dst{static_cast<std::uint32_t>(rng.next_below(kClusters))};
    stats::Counter*& cell = census.slot(src, dst);
    if (!cell) {
      cell = &reg.counter("pair." + std::to_string(src.v) + "." +
                          std::to_string(dst.v));
    }
    cell->inc();
    ++dense[{src.v, dst.v}];
  }
  ASSERT_EQ(census.active_pairs(), dense.size());
  for (const auto& [pair, count] : dense) {
    EXPECT_EQ(reg.get("pair." + std::to_string(pair.first) + "." +
                      std::to_string(pair.second)),
              count);
  }
}

TEST(PairCensus, FootprintScalesWithActivePairsNotClusters) {
  // A 1000-cluster federation where only a ring of pairs carries traffic:
  // the table must size by the ~2000 touched pairs, not by 1000² cells.
  net::PairCensus census;
  stats::Registry reg;
  constexpr std::uint32_t kClusters = 1000;
  for (std::uint32_t c = 0; c < kClusters; ++c) {
    for (const std::uint32_t d : {c, (c + 1) % kClusters}) {
      stats::Counter*& cell = census.slot(ClusterId{c}, ClusterId{d});
      if (!cell) cell = &reg.counter("p");
      cell->inc();
    }
  }
  EXPECT_EQ(census.active_pairs(), 2u * kClusters);
  // Open addressing at a 0.7 load bound: capacity stays within a small
  // constant of the active-pair count — nowhere near clusters².
  EXPECT_LE(census.bucket_count(), 8u * kClusters);
}

TEST(SparseCensus, NodeChurnMatchesDenseReference) {
  // Drive the real Network across up/down churn (parked deliveries) and
  // check the per-pair registry counters against an independently kept
  // dense tally — churn must not double- or under-count the census.
  sim::Simulation sim(7);
  stats::Registry reg;
  const net::Topology topo(config::small_test_spec(4, 3).topology);
  net::Network net(sim, topo, reg);
  std::uint64_t delivered = 0;
  for (std::uint32_t i = 0; i < topo.node_count(); ++i) {
    net.attach(NodeId{i}, [&delivered](const net::Envelope&) { ++delivered; });
  }
  std::vector<std::vector<std::uint64_t>> dense(4, std::vector<std::uint64_t>(4));
  RngStream rng(7, 3);
  std::uint64_t sent = 0;
  for (int round = 0; round < 200; ++round) {
    // Toggle one node per round (down on even, up on odd rounds).
    const NodeId victim{static_cast<std::uint32_t>(rng.next_below(12))};
    if (round % 2 == 0) {
      if (net.node_up(victim)) net.set_node_down(victim);
    } else {
      net.set_node_up(victim);
    }
    for (int m = 0; m < 5; ++m) {
      net::Envelope env;
      env.src = NodeId{static_cast<std::uint32_t>(rng.next_below(12))};
      do {
        env.dst = NodeId{static_cast<std::uint32_t>(rng.next_below(12))};
      } while (env.dst == env.src);
      env.cls = net::MsgClass::kApp;
      env.payload_bytes = 128;
      env.app_seq = ++sent;
      ++dense[topo.cluster_of(env.src).v][topo.cluster_of(env.dst).v];
      net.send(std::move(env));
    }
    sim.run_all();
  }
  // Revive everyone so parked messages drain.
  for (std::uint32_t i = 0; i < 12; ++i) net.set_node_up(NodeId{i});
  sim.run_all();
  EXPECT_EQ(delivered, sent);
  std::size_t active = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (std::uint32_t d = 0; d < 4; ++d) {
      const std::uint64_t expect = dense[s][d];
      EXPECT_EQ(reg.get("net.app.pair." + std::to_string(s) + "." +
                        std::to_string(d)),
                expect)
          << "pair " << s << "->" << d;
      if (expect > 0) ++active;
    }
  }
  EXPECT_EQ(net.census_active_pairs(), active);
}

// ---------------------------------------------------------------------------
// Pooled control payloads
// ---------------------------------------------------------------------------

TEST(PayloadPool, NoAliasingAcrossLiveReferences) {
  auto a = proto::make_pooled<core::InterAck>();
  a->msg = MsgId{1};
  a->ack_sn = 7;
  const void* a_storage = a.get();
  // A second allocation while `a` is alive must not reuse its storage.
  auto b = proto::make_pooled<core::InterAck>();
  EXPECT_NE(static_cast<const void*>(b.get()), a_storage);
  b->msg = MsgId{2};
  b->ack_sn = 9;
  EXPECT_EQ(a->msg, MsgId{1});
  EXPECT_EQ(a->ack_sn, 7u);
}

TEST(PayloadPool, RecyclesOnlyAfterLastReferenceDrops) {
  // Recycling is an arena behaviour (PR 7): without an installed arena
  // make_pooled is plain heap traffic, so pin one for the pool semantics.
  proto::PayloadArena arena;
  proto::ScopedPayloadArena scope(arena);
  auto a = proto::make_pooled<core::InterAck>();
  a->ack_sn = 41;
  const void* a_storage = a.get();
  std::shared_ptr<const core::InterAck> keep = a;  // aliasing live reference
  a.reset();
  // Still referenced through `keep`: a new allocation must not reuse it.
  auto b = proto::make_pooled<core::InterAck>();
  EXPECT_NE(static_cast<const void*>(b.get()), a_storage);
  EXPECT_EQ(keep->ack_sn, 41u);
  keep.reset();
  // Now the block is free: the (LIFO, single-threaded) pool hands it back,
  // freshly constructed — no field bleeds through from the previous life.
  auto c = proto::make_pooled<core::InterAck>();
  EXPECT_EQ(static_cast<const void*>(c.get()), a_storage);
  EXPECT_EQ(c->ack_sn, 0u);
  EXPECT_EQ(c->msg, MsgId{});
  EXPECT_EQ(c->kind, core::InterAck::kKind);
}

TEST(PayloadPool, PoolsArePerType) {
  proto::PayloadArena arena;
  proto::ScopedPayloadArena scope(arena);
  auto a = proto::make_pooled<core::GcRequest>();
  const void* a_storage = a.get();
  a.reset();
  // A different payload type must not be served from GcRequest's free list.
  auto b = proto::make_pooled<core::ClcRequest>();
  EXPECT_NE(static_cast<const void*>(b.get()), a_storage);
}

// ---------------------------------------------------------------------------
// Compressed GC metadata codec
// ---------------------------------------------------------------------------

proto::ClcMeta meta_of(SeqNum sn, const std::vector<SeqNum>& entries) {
  proto::ClcMeta m;
  m.sn = sn;
  m.ddv = proto::Ddv(entries.size(), ClusterId{0}, 0);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    m.ddv.set(ClusterId{static_cast<std::uint32_t>(i)}, entries[i]);
  }
  return m;
}

TEST(GcWire, RoundTripsEmptyAndSingle) {
  EXPECT_TRUE(proto::decode_clc_metas(proto::encode_clc_metas({})).empty());

  const std::vector<proto::ClcMeta> one = {meta_of(1, {1, 0, 0})};
  const auto decoded = proto::decode_clc_metas(proto::encode_clc_metas(one));
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].sn, 1u);
  EXPECT_EQ(decoded[0].ddv, one[0].ddv);
}

TEST(GcWire, RoundTripsTypicalAndAdversarialLists) {
  // Typical: ascending SNs, mostly-unchanged DDVs.  Adversarial: an entry
  // that *decreases* between records (cannot happen in a live store, but
  // the codec must not corrupt it silently), wide values, repeated SNs.
  const std::vector<std::vector<proto::ClcMeta>> cases = {
      {meta_of(1, {1, 0, 0, 0}), meta_of(2, {2, 0, 0, 0}),
       meta_of(3, {3, 5, 0, 0}), meta_of(9, {9, 5, 0, 7})},
      {meta_of(5, {5, 9, 2}), meta_of(6, {6, 3, 2})},  // entry drops 9 -> 3
      {meta_of(1, {1}), meta_of(1, {4})},              // repeated SN
      {meta_of(1000000, {1000000, 999999, 0, 123456, 1})},
  };
  for (const auto& metas : cases) {
    const auto decoded =
        proto::decode_clc_metas(proto::encode_clc_metas(metas));
    ASSERT_EQ(decoded.size(), metas.size());
    for (std::size_t i = 0; i < metas.size(); ++i) {
      EXPECT_EQ(decoded[i].sn, metas[i].sn);
      EXPECT_EQ(decoded[i].ddv, metas[i].ddv);
    }
  }
}

TEST(GcWire, CompressesTheTypicalStore) {
  // 60 retained CLCs in a 10-cluster federation, one DDV entry moving per
  // record — the §5.4 shape.  The encoding must beat the flat model by a
  // wide margin (this is the point of the change).
  std::vector<proto::ClcMeta> metas;
  std::vector<SeqNum> entries(10, 0);
  for (SeqNum sn = 1; sn <= 60; ++sn) {
    entries[0] = sn;
    entries[1 + (sn % 9)] += 1;
    metas.push_back(meta_of(sn, entries));
  }
  const auto enc = proto::encode_clc_metas(metas);
  const std::uint64_t flat = proto::uncompressed_clc_metas_bytes(
      metas.size(), 10, core::ControlSizes::kPerDdvEntry);
  EXPECT_LT(enc.wire_bytes() * 4, flat);  // at least 4x smaller
  const auto decoded = proto::decode_clc_metas(enc);
  ASSERT_EQ(decoded.size(), metas.size());
  EXPECT_EQ(decoded.back().ddv, metas.back().ddv);
}

TEST(GcWire, RejectsMalformedStreams) {
  const auto enc = proto::encode_clc_metas(
      {meta_of(1, {1, 0}), meta_of(2, {2, 1})});
  proto::EncodedClcMetas truncated = enc;
  truncated.bytes.resize(truncated.bytes.size() - 1);
  EXPECT_THROW(proto::decode_clc_metas(truncated), CheckFailure);
  proto::EncodedClcMetas trailing = enc;
  trailing.bytes.push_back(0);
  EXPECT_THROW(proto::decode_clc_metas(trailing), CheckFailure);
  // A crafted header claiming 2^60 records must be rejected before any
  // allocation sized by it (and likewise an implausible DDV width).
  proto::EncodedClcMetas huge;
  huge.bytes = {0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10, 0x02};
  EXPECT_THROW(proto::decode_clc_metas(huge), CheckFailure);
  proto::EncodedClcMetas wide;
  wide.bytes = {0x01, 0x80, 0x80, 0x80, 0x80, 0x10, 0x00, 0x00};
  EXPECT_THROW(proto::decode_clc_metas(wide), CheckFailure);
}

TEST(GcWire, RejectsSnDeltaOutOfRange) {
  // An adversarial SN-delta varint used to wrap the SeqNum accumulator
  // silently (prev_sn += truncates) while the DDV entries on the lines
  // below were range-checked; it must be rejected the same way.
  // count=1, width=1, sn_delta=2^32 (one past the SeqNum range), 0 changes.
  proto::EncodedClcMetas wrap;
  wrap.bytes = {0x01, 0x01, 0x80, 0x80, 0x80, 0x80, 0x10, 0x00};
  EXPECT_THROW(proto::decode_clc_metas(wrap), CheckFailure);
  // Accumulated wrap: first record lands exactly on the SeqNum maximum,
  // the second record's +1 delta pushes past it.
  proto::EncodedClcMetas accum;
  accum.bytes = {0x02, 0x01,
                 0xff, 0xff, 0xff, 0xff, 0x0f, 0x00,  // sn = 2^32-1, 0 changes
                 0x01, 0x00};                          // +1 overflows
  EXPECT_THROW(proto::decode_clc_metas(accum), CheckFailure);
  // The boundary itself is legal: a single record at the SeqNum maximum
  // decodes (delta == max - 0 is in range).
  proto::EncodedClcMetas edge;
  edge.bytes = {0x01, 0x01, 0xff, 0xff, 0xff, 0xff, 0x0f, 0x00};
  const auto decoded = proto::decode_clc_metas(edge);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].sn, std::numeric_limits<SeqNum>::max());
}

// ---------------------------------------------------------------------------
// Dedup-set copy-on-write capture
// ---------------------------------------------------------------------------

TEST(DedupSet, CaptureIsSharedUntilMutation) {
  proto::DedupSet set;
  set.insert(30);
  set.insert(10);
  set.insert(20);
  const proto::DedupImage a = set.capture();
  const proto::DedupImage b = set.capture();
  EXPECT_TRUE(a.shares_storage_with(b));  // no mutation between captures
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.entries(), (std::vector<std::uint64_t>{10, 20, 30}));  // sorted

  set.insert(15);  // invalidates the cache...
  const proto::DedupImage c = set.capture();
  EXPECT_FALSE(c.shares_storage_with(a));
  EXPECT_EQ(c.entries(), (std::vector<std::uint64_t>{10, 15, 20, 30}));
  // ...but the old images are frozen snapshots, untouched by the mutation.
  EXPECT_EQ(a.entries(), (std::vector<std::uint64_t>{10, 20, 30}));

  set.insert(15);  // duplicate: a no-op must not invalidate the cache
  EXPECT_TRUE(set.capture().shares_storage_with(c));
}

TEST(DedupSet, RestoreAdoptsImageStorage) {
  proto::DedupSet set;
  set.insert(1);
  set.insert(2);
  const proto::DedupImage checkpoint = set.capture();
  set.insert(3);  // post-checkpoint history

  proto::DedupSet restored;
  restored.restore(checkpoint);
  EXPECT_EQ(restored.size(), 2u);
  EXPECT_TRUE(restored.contains(1));
  EXPECT_FALSE(restored.contains(3));
  // Adoption: the next capture shares the checkpoint's buffer (O(1)).
  EXPECT_TRUE(restored.capture().shares_storage_with(checkpoint));
}

// ---------------------------------------------------------------------------
// Scale-out end-to-end smoke
// ---------------------------------------------------------------------------

TEST(ScaleFederation, TenClusterSmokeRunsConsistently) {
  driver::RunOptions opts;
  opts.spec = config::scale_federation_spec(10, 4, minutes(10));
  opts.seed = 3;
  const driver::RunResult result = driver::run_simulation(opts);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_GT(result.events_executed, 0u);
  // GC ran and the compressed responses saved real bytes.
  EXPECT_GT(result.counter("gc.rounds"), 0u);
  std::uint64_t saved = 0;
  std::size_t pairs = 0;
  for (const std::string& name : result.registry.counter_names()) {
    if (name.rfind("gc.resp_bytes_saved.", 0) == 0) {
      saved += result.counter(name);
    }
    if (name.rfind("net.app.pair.", 0) == 0) ++pairs;
  }
  EXPECT_GT(saved, 0u);
  // Ring traffic: intra pairs (10) plus two neighbours per cluster.
  EXPECT_EQ(pairs, 30u);
}

}  // namespace
}  // namespace hc3i
