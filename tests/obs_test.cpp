// Tests for the observability layer: Log2Histogram quantiles, the chunked
// trace buffer, the Recorder's derived distributions, exporter formats, and
// the end-to-end determinism contract (two same-seed traced runs export
// byte-identical JSON/TSV; untraced runs carry no Recording at all).

#include <gtest/gtest.h>

#include <string>

#include "config/presets.hpp"
#include "driver/report.hpp"
#include "driver/run.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "stats/accumulators.hpp"

namespace hc3i::testing {
namespace {

// ---------------------------------------------------------------------------
// Log2Histogram
// ---------------------------------------------------------------------------

TEST(Log2Histogram, EmptyQuantileIsZero) {
  stats::Log2Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Log2Histogram, ZerosLandInBucketZero) {
  stats::Log2Histogram h;
  h.add(0);
  h.add(0);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
}

TEST(Log2Histogram, BucketBoundaries) {
  stats::Log2Histogram h;
  h.add(1);    // bucket 1: [1, 2)
  h.add(2);    // bucket 2: [2, 4)
  h.add(3);    // bucket 2
  h.add(4);    // bucket 3: [4, 8)
  h.add(255);  // bucket 8: [128, 256)
  h.add(256);  // bucket 9: [256, 512)
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.bucket_count(8), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.count(), 6u);
}

TEST(Log2Histogram, QuantilesStayInsideContainingBucket) {
  stats::Log2Histogram h;
  for (int i = 0; i < 90; ++i) h.add(10);    // bucket 4: [8, 16)
  for (int i = 0; i < 10; ++i) h.add(1000);  // bucket 10: [512, 1024)
  const double p50 = h.quantile(0.50);
  EXPECT_GE(p50, 8.0);
  EXPECT_LT(p50, 16.0);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LT(p99, 1024.0);
  EXPECT_LE(h.quantile(0.05), p50);
  EXPECT_LE(p50, p99);
}

TEST(Log2Histogram, MergeAddsBucketwise) {
  stats::Log2Histogram a, b;
  a.add(10);
  b.add(10);
  b.add(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bucket_count(4), 2u);
  EXPECT_EQ(a.bucket_count(10), 1u);
}

// ---------------------------------------------------------------------------
// TraceBuffer / Recorder
// ---------------------------------------------------------------------------

TEST(TraceBuffer, PreservesOrderAcrossChunks) {
  obs::TraceBuffer buf;
  const std::size_t n = obs::TraceBuffer::kChunkCap * 2 + 17;
  for (std::size_t i = 0; i < n; ++i) {
    obs::TraceRecord r;
    r.t = nanoseconds(static_cast<std::int64_t>(i));
    r.id = i;
    buf.push(r);
  }
  EXPECT_EQ(buf.size(), n);
  std::size_t expect = 0;
  buf.for_each([&](const obs::TraceRecord& r) {
    EXPECT_EQ(r.id, expect);
    ++expect;
  });
  EXPECT_EQ(expect, n);
}

TEST(Recorder, DerivesRoundDurationFromBeginCommit) {
  obs::Recorder rec;
  rec.emit(obs::RecordKind::kClcRoundBegin, seconds(10), 0, 0, 1);
  rec.emit(obs::RecordKind::kClcCommit, seconds(10) + milliseconds(8), 0, 0, 1,
           2);
  EXPECT_EQ(rec.round_us().count(), 1u);
  // 8ms = 8000us lands in bucket [8192/2, 8192) = [4096, 8192).
  const double p50 = rec.round_us().quantile(0.5);
  EXPECT_GE(p50, 4096.0);
  EXPECT_LT(p50, 8192.0);
  // A commit with no matching begin (other cluster) records nothing.
  rec.emit(obs::RecordKind::kClcCommit, seconds(11), 1, 0, 1, 2);
  EXPECT_EQ(rec.round_us().count(), 1u);
}

TEST(Recorder, DerivesStallFromStorageRecords) {
  obs::Recorder rec;
  rec.emit(obs::RecordKind::kCkptWrite, seconds(1), 0, 3, 1, 4096,
           2'000'000);  // 2ms stall
  rec.emit(obs::RecordKind::kChainRead, seconds(2), 0, 3, 1, 4096,
           500'000);  // 0.5ms read
  EXPECT_EQ(rec.stall_us().count(), 2u);
  EXPECT_EQ(rec.records().size(), 2u);
}

TEST(RecordKinds, AllHaveLabels) {
  for (int k = 0; k <= static_cast<int>(obs::RecordKind::kCampaignInject);
       ++k) {
    const char* label = obs::to_label(static_cast<obs::RecordKind>(k));
    ASSERT_NE(label, nullptr);
    EXPECT_GT(std::string(label).size(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(Export, TraceJsonShapeAndSpanPairing) {
  obs::Recording rec;
  rec.recorder.emit(obs::RecordKind::kClcRoundBegin, seconds(1), 0, 0, 1, 1);
  rec.recorder.emit(obs::RecordKind::kClcAck, seconds(1) + milliseconds(1), 0,
                    2, 1, 1, 3);
  rec.recorder.emit(obs::RecordKind::kClcCommit, seconds(2), 0, 0, 1, 5, 1);
  rec.recorder.emit(obs::RecordKind::kRollbackBegin, seconds(3), 1, 0, 0, 7);
  rec.recorder.emit(obs::RecordKind::kRecoveryEnd, seconds(4), 1, 0, 0);
  const std::string json = obs::trace_json(rec);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // The async span opens and closes under the same name.
  EXPECT_NE(json.find("\"name\":\"clc_round\",\"cat\":\"clc\",\"ph\":\"b\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"clc_round\",\"cat\":\"clc\",\"ph\":\"e\""),
            std::string::npos);
  EXPECT_NE(
      json.find("\"name\":\"recovery\",\"cat\":\"recovery\",\"ph\":\"b\""),
      std::string::npos);
  EXPECT_NE(
      json.find("\"name\":\"recovery\",\"cat\":\"recovery\",\"ph\":\"e\""),
      std::string::npos);
  // Timestamps are integer-derived microseconds: 1s -> 1000000.000.
  EXPECT_NE(json.find("\"ts\":1000000.000"), std::string::npos);
}

TEST(Export, MetricsTsvHeaderAndRows) {
  obs::Recording rec;
  obs::MetricsSample s;
  s.t = seconds(30);
  s.clc_total = 4;
  s.in_flight = 2;
  rec.samples.push_back(s);
  const std::string tsv = obs::metrics_tsv(rec);
  EXPECT_EQ(tsv.rfind("time_s\t", 0), 0u);
  EXPECT_NE(tsv.find("\n30.000000000\t0\t4\t2\t"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End to end through the driver
// ---------------------------------------------------------------------------

driver::RunOptions obs_opts() {
  driver::RunOptions opts;
  opts.spec = config::small_test_spec(2, 3);
  opts.spec.application.total_time = minutes(30);
  opts.spec.timers.gc_period = minutes(12);
  opts.scripted_failures.push_back({minutes(20), NodeId{1}});
  opts.trace = true;
  opts.metrics_interval = minutes(5);
  return opts;
}

TEST(ObsEndToEnd, OffMeansNoRecording) {
  driver::RunOptions opts = obs_opts();
  opts.trace = false;
  opts.metrics_interval = SimTime::zero();
  const auto result = driver::run_simulation(opts);
  EXPECT_EQ(result.obs, nullptr);
}

TEST(ObsEndToEnd, TracedRunRecordsProtocolActivity) {
  const auto result = driver::run_simulation(obs_opts());
  ASSERT_NE(result.obs, nullptr);
  EXPECT_GT(result.obs->recorder.records().size(), 0u);
  EXPECT_GT(result.obs->recorder.round_us().count(), 0u);
  EXPECT_FALSE(result.obs->samples.empty());
  // The failure at t=20min shows up as fault records.
  bool saw_failure = false, saw_recovery_end = false;
  result.obs->recorder.records().for_each([&](const obs::TraceRecord& r) {
    saw_failure = saw_failure || r.kind == obs::RecordKind::kFailure;
    saw_recovery_end =
        saw_recovery_end || r.kind == obs::RecordKind::kRecoveryEnd;
  });
  EXPECT_TRUE(saw_failure);
  EXPECT_TRUE(saw_recovery_end);
  // The recovery-latency histogram feeds the report's percentile line.
  EXPECT_GT(result.recovery_latency_us.count(), 0u);
  const std::string report = driver::render_report(result, 2);
  EXPECT_NE(report.find("recovery latency pcts"), std::string::npos);
}

TEST(ObsEndToEnd, SameSeedExportsAreByteIdentical) {
  const auto a = driver::run_simulation(obs_opts());
  const auto b = driver::run_simulation(obs_opts());
  ASSERT_NE(a.obs, nullptr);
  ASSERT_NE(b.obs, nullptr);
  EXPECT_EQ(obs::trace_json(*a.obs), obs::trace_json(*b.obs));
  EXPECT_EQ(obs::metrics_tsv(*a.obs), obs::metrics_tsv(*b.obs));
}

TEST(ObsEndToEnd, TracingDoesNotPerturbTheRun) {
  // The observability layer must be a pure observer: counters (and thus
  // goldens) are identical with and without it.
  driver::RunOptions off = obs_opts();
  off.trace = false;
  off.metrics_interval = SimTime::zero();
  const auto traced = driver::run_simulation(obs_opts());
  const auto plain = driver::run_simulation(off);
  // Sampler ticks do add events to the queue, so compare counters
  // (behaviour), not the executed-event census.
  EXPECT_EQ(driver::render_counters_csv(traced),
            driver::render_counters_csv(plain));
  EXPECT_EQ(traced.end_time, plain.end_time);
}

TEST(ObsEndToEnd, MetricsSamplesAreMonotone) {
  const auto result = driver::run_simulation(obs_opts());
  ASSERT_NE(result.obs, nullptr);
  const auto& samples = result.obs->samples;
  ASSERT_GT(samples.size(), 1u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GT(samples[i].t, samples[i - 1].t);
    EXPECT_GE(samples[i].clc_total, samples[i - 1].clc_total);
    EXPECT_GE(samples[i].app_delivered, samples[i - 1].app_delivered);
  }
}

}  // namespace
}  // namespace hc3i::testing
