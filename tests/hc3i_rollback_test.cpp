// Rollback scenarios for HC3I (paper §3.4): single-cluster rollback, alert
// cascades, logged-message replay, stale-message filtering, failed-node log
// recovery — each checked against the consistency ledger and, for cascades,
// against the pure recovery-line oracle.

#include <gtest/gtest.h>

#include "proto/recovery_line.hpp"
#include "test_util.hpp"

namespace hc3i::testing {
namespace {

/// Collect the (sn, ddv) metadata of every cluster's store.
std::vector<std::vector<proto::ClcMeta>> metas_of(MiniWorld& w) {
  std::vector<std::vector<proto::ClcMeta>> out(w.runtime->cluster_count());
  for (std::size_t c = 0; c < out.size(); ++c) {
    for (const auto& rec :
         w.runtime->store(ClusterId{static_cast<std::uint32_t>(c)}).records()) {
      out[c].push_back(proto::ClcMeta{rec.sn, rec.ddv});
    }
  }
  return out;
}

TEST(Rollback, FaultRestoresLastClcAndResumes) {
  MiniWorld w(tiny_spec(2, 3), 1);
  w.settle();
  // Progress the apps a bit past the initial CLC.
  for (auto& app : w.apps) app->work();
  w.fed.inject_failure(NodeId{1});
  w.settle();
  EXPECT_EQ(w.registry.get("rollback.count.c0"), 1u);
  EXPECT_EQ(w.registry.get("fault.recovery_complete"), 1u);
  // Every node of cluster 0 restored to the initial snapshot (progress 0).
  for (std::uint32_t n = 0; n < 3; ++n) {
    EXPECT_EQ(w.apps[n]->progress, 0u) << "node " << n;
    EXPECT_EQ(w.apps[n]->restore_count, 1);
  }
  // Cluster 1 untouched.
  for (std::uint32_t n = 3; n < 6; ++n) {
    EXPECT_EQ(w.apps[n]->restore_count, 0);
  }
  // Incarnation bumped cluster-wide; agreement restored.
  for (const auto* a : w.runtime->cluster_agents(ClusterId{0})) {
    EXPECT_EQ(a->incarnation(), 1u);
    EXPECT_EQ(a->sn(), 1u);
  }
  EXPECT_TRUE(w.fed.ledger().validate(false).empty());
}

TEST(Rollback, ReceiverRollsBackWhenSenderFails) {
  // m1 forced a CLC in cluster 1 stamped DDV[0] = 1.  Cluster 0 then fails
  // without having committed since, so its restored SN (1) makes cluster 1
  // roll back to that forced CLC (the paper's CLC1/CLC2 consistency case).
  MiniWorld w(tiny_spec(2, 3), 1);
  w.settle();
  const std::uint64_t seq = w.send(NodeId{0}, NodeId{3});
  w.settle();
  ASSERT_TRUE(w.delivered(NodeId{3}, seq));
  const auto before = metas_of(w);
  const auto oracle = proto::compute_recovery_line(before, ClusterId{0});
  w.fed.inject_failure(NodeId{0});
  w.settle(minutes(2));
  // The distributed cascade must land exactly where the oracle says.
  EXPECT_TRUE(oracle.rolled_back[1]);
  EXPECT_EQ(w.runtime->store(ClusterId{1}).last().sn, oracle.restored[1]);
  EXPECT_EQ(w.registry.get("rollback.cascade.c1"), 1u);
  // The undone delivery is replayed from the sender's log: cluster 0
  // re-sends m1 (its send was *before* its restored checkpoint? No — the
  // send happened in epoch 1, which is exactly the restored SN, so the
  // send is undone and the *application* re-executes instead).
  EXPECT_TRUE(w.fed.ledger().validate(false).empty());
}

TEST(Rollback, SenderUnaffectedWhenReceiverFails) {
  // Paper §3.3: "If the sender of a message does not rollback while the
  // receiver does, the sender's cluster does not need to be forced to
  // rollback" — the logged message is simply re-sent.
  MiniWorld w(tiny_spec(2, 3), 1);
  w.settle();
  const std::uint64_t seq = w.send(NodeId{0}, NodeId{3});
  w.settle();
  ASSERT_TRUE(w.delivered(NodeId{3}, seq));
  w.fed.inject_failure(NodeId{4});  // receiver cluster fails
  w.settle(minutes(2));
  EXPECT_EQ(w.registry.get("rollback.count.c1"), 1u);
  EXPECT_EQ(w.registry.get("rollback.count.c0"), 0u);  // sender kept running
  EXPECT_EQ(w.apps[0]->restore_count, 0);
  // The delivery was undone by the rollback and replayed from the log.
  EXPECT_GE(w.registry.get("log.resent_msgs"), 1u);
  EXPECT_EQ(w.apps[3]->delivered_count, 1u);  // exactly once in live state
  EXPECT_TRUE(w.fed.ledger().validate(false).empty());
}

TEST(Rollback, UnackedLoggedMessageResentAfterReceiverFault) {
  // The message is still in flight (not yet delivered) when the receiver
  // cluster rolls back: the log entry is unacknowledged and must re-send;
  // the receiver de-duplicates if both copies eventually arrive.
  MiniWorld w(tiny_spec(2, 3), 1);
  w.settle();
  w.send(NodeId{0}, NodeId{3});
  // Fail immediately: the inter-cluster message (150us) is still in flight.
  w.fed.inject_failure(NodeId{3});
  w.settle(minutes(2));
  EXPECT_TRUE(w.fed.ledger().validate(false).empty());
  EXPECT_EQ(w.apps[3]->delivered_count, 1u);
}

TEST(Rollback, CascadeMatchesOracleOnThreeClusters) {
  // Build the paper-§4-like dependency chain across three clusters, then
  // fail the middle one and compare the distributed result with the pure
  // recovery-line computation.
  config::RunSpec spec = tiny_spec(3, 2);
  spec.timers.clusters[0].clc_period = minutes(3);
  spec.timers.clusters[1].clc_period = minutes(4);
  MiniWorld w(spec, 1);
  w.settle();
  w.send(NodeId{0}, NodeId{2});  // C0 -> C1
  w.settle();
  w.send(NodeId{2}, NodeId{4});  // C1 -> C2
  w.settle();
  w.sim.run_until(minutes(5));   // let timers advance some SNs
  w.send(NodeId{2}, NodeId{5});  // C1 -> C2 with a fresher SN
  w.settle();
  w.send(NodeId{4}, NodeId{1});  // C2 -> C0
  w.settle();

  const auto before = metas_of(w);
  const auto oracle = proto::compute_recovery_line(before, ClusterId{1});
  w.fed.inject_failure(NodeId{2});
  w.settle(minutes(2));
  for (std::uint32_t c = 0; c < 3; ++c) {
    EXPECT_EQ(w.runtime->store(ClusterId{c}).last().sn, oracle.restored[c])
        << "cluster " << c;
    if (oracle.rolled_back[c] && c != 1) {
      EXPECT_GE(w.registry.get("rollback.count.c" + std::to_string(c)), 1u);
    }
  }
  EXPECT_TRUE(w.fed.ledger().validate(false).empty());
}

TEST(Rollback, FailedNodeRecoversItsLogFromTheClc) {
  // The failed node's volatile log is lost; it restores the checkpointed
  // copy (DESIGN.md §3) so later alerts can still replay its sends.
  MiniWorld w(tiny_spec(2, 3), 1);
  w.settle();
  const std::uint64_t seq = w.send(NodeId{0}, NodeId{3});
  w.settle();
  ASSERT_TRUE(w.delivered(NodeId{3}, seq));
  ASSERT_EQ(w.agent(NodeId{0}).log_size(), 1u);
  // Force a CLC in cluster 0 so the log copy lands in a checkpoint whose
  // SN exceeds the send epoch (otherwise truncate_from drops the entry).
  w.send(NodeId{3}, NodeId{0});
  w.settle();
  ASSERT_GE(w.runtime->store(ClusterId{0}).last().sn, 2u);
  // Now node 0 itself fails; the cluster rolls back to the CLC above.
  w.fed.inject_failure(NodeId{0});
  w.settle(minutes(2));
  EXPECT_EQ(w.agent(NodeId{0}).log_size(), 1u)
      << "checkpointed log copy not restored";
  EXPECT_TRUE(w.fed.ledger().validate(false).empty());
}

TEST(Rollback, SurvivorTruncatesUndoneSendsFromLog) {
  MiniWorld w(tiny_spec(2, 3), 1);
  w.settle();
  w.send(NodeId{1}, NodeId{3});  // logged in epoch 1 at node 1
  w.settle();
  ASSERT_EQ(w.agent(NodeId{1}).log_size(), 1u);
  // Cluster 0 rolls back to SN 1 (initial CLC): the epoch-1 send is undone
  // and must leave the log (the application re-executes it).
  w.fed.inject_failure(NodeId{2});
  w.settle(minutes(2));
  EXPECT_EQ(w.agent(NodeId{1}).log_size(), 0u);
  EXPECT_TRUE(w.fed.ledger().validate(false).empty());
}

TEST(Rollback, StaleInFlightMessageDropped) {
  // A message sent in an undone epoch but still in flight when the sender
  // rolls back must be discarded by the receiver (incarnation filter,
  // DESIGN.md §3.5) — its application-level re-execution supersedes it.
  config::RunSpec spec = tiny_spec(2, 3);
  // Slow inter-cluster link so the message is still in flight at rollback.
  spec.topology.inter[0][1].bytes_per_sec = 1000.0;
  spec.topology.inter[1][0].bytes_per_sec = 1000.0;
  MiniWorld w(spec, 1);
  w.settle();
  w.send(NodeId{0}, NodeId{3});  // ~1s serialisation: in flight
  w.fed.inject_failure(NodeId{1});
  w.settle(minutes(2));
  EXPECT_GE(w.registry.get("cic.stale_dropped"), 1u);
  EXPECT_TRUE(w.fed.ledger().validate(false).empty());
}

TEST(Rollback, FailureDuringRoundAbortsIt) {
  // A node dies mid-2PC; the rollback must clear the round so the cluster
  // can checkpoint again afterwards.
  config::RunSpec spec = tiny_spec(2, 3);
  spec.application.state_bytes = 50 * 1024 * 1024;  // seconds-long round
  spec.timers.clusters[0].clc_period = minutes(5);
  MiniWorld w(spec, 1);
  w.settle(seconds(1));
  ASSERT_TRUE(w.agent(NodeId{0}).in_round());
  // The initial round is still open: fault now. (The initial CLC has not
  // committed yet, so the store is empty — the failure detector fires
  // after the commit in practice; make sure a *later* round aborts.)
  w.settle(seconds(30));  // initial CLC committed
  w.sim.run_until(minutes(5));
  while (!w.agent(NodeId{0}).in_round() && w.sim.now() < minutes(9)) {
    ASSERT_TRUE(w.sim.step());
  }
  ASSERT_TRUE(w.agent(NodeId{0}).in_round());  // timer round in flight
  w.fed.inject_failure(NodeId{2});
  w.settle(minutes(2));
  EXPECT_FALSE(w.agent(NodeId{0}).in_round());
  // The cluster can still commit CLCs after the aborted round.
  w.sim.run_until(w.sim.now() + minutes(6));
  EXPECT_GE(w.runtime->store(ClusterId{0}).last().sn, 2u);
  EXPECT_TRUE(w.fed.ledger().validate(false).empty());
}

TEST(Rollback, FailureBetweenPhase1AcksLeavesNoStaleDdv) {
  // Regression for the coordinator round-scratch lifecycle: a failure that
  // aborts a 2PC round between its phase-1 acks (incarnation bump
  // mid-round) must not let the aborted round's merged DDV, absorbed
  // demands or tentative parts leak into a later round's committed DDV
  // (apply_cluster_rollback clears parts_/round_ddv_merge_/pending_*).
  config::RunSpec spec = tiny_spec(2, 3);
  spec.application.state_bytes = 50 * 1024 * 1024;  // seconds-long phase 1
  MiniWorld w(spec, 3);
  w.settle(minutes(1));  // initial CLCs committed
  // Build a C0 <-> C1 dependency chain so C0's DDV carries a real entry
  // for C1 before the aborted round.
  w.send(NodeId{0}, NodeId{3});  // C0 SN 1 fresh at C1: forces a CLC there
  w.settle(minutes(1));
  w.send(NodeId{3}, NodeId{0});  // C1 SN 2 fresh at C0: forces, raises ddv
  w.settle(minutes(1));
  ASSERT_GE(w.agent(NodeId{0}).ddv().at(ClusterId{1}), 2u);
  w.send(NodeId{0}, NodeId{4});  // another fresh C0 SN: C1 commits again
  w.settle(minutes(1));
  const SeqNum c1_before = w.agent(NodeId{3}).sn();

  // A fresher C1 SN demands a forced CLC in C0; fail a C0 member while
  // that round is collecting phase-1 acks.  The demanded raise (to C1's
  // SN 4) is exactly the kind of entry that must die with the round.
  w.send(NodeId{4}, NodeId{1});
  while (!w.agent(NodeId{0}).in_round() && w.sim.now() < minutes(15)) {
    ASSERT_TRUE(w.sim.step());
  }
  ASSERT_TRUE(w.agent(NodeId{0}).in_round());
  w.fed.inject_failure(NodeId{2});
  w.settle(minutes(3));

  // C0 restores SN 2; C1's DDV[0] = 2 >= 2, so C1 cascades onto its most
  // recent CLC — which undoes the triggering send itself (its epoch is
  // gone; the application re-executes it in real runs).
  EXPECT_EQ(w.registry.get("rollback.count.c0"), 1u);
  EXPECT_EQ(w.registry.get("rollback.cascade.c1"), 1u);
  EXPECT_FALSE(w.agent(NodeId{0}).in_round());
  // No stale round scratch: every committed C0 record's entry for C1 stays
  // within what C1 really committed, and the cluster agrees on one DDV.
  for (const auto& rec : w.runtime->store(ClusterId{0}).records()) {
    EXPECT_LE(rec.ddv.at(ClusterId{1}), w.agent(NodeId{3}).sn())
        << "committed DDV depends on a C1 SN that never stabilised";
  }
  const auto* first = w.runtime->cluster_agents(ClusterId{0}).front();
  for (const auto* a : w.runtime->cluster_agents(ClusterId{0})) {
    EXPECT_TRUE(a->ddv() == first->ddv());
    EXPECT_EQ(a->sn(), first->sn());
  }
  EXPECT_EQ(w.agent(NodeId{3}).sn(), c1_before);

  // The cluster must checkpoint cleanly after the aborted round: a fresh
  // C1 send (SN 3, new incarnation) forces a CLC in C0 whose committed DDV
  // carries exactly the re-observed SN — nothing from the dead round.
  const std::uint64_t fresh = w.send(NodeId{3}, NodeId{0});
  w.settle(minutes(2));
  EXPECT_TRUE(w.delivered(NodeId{0}, fresh));
  EXPECT_GE(w.agent(NodeId{0}).sn(), 3u);
  EXPECT_EQ(w.agent(NodeId{0}).ddv().at(ClusterId{1}),
            w.agent(NodeId{3}).sn());
  for (const auto& rec : w.runtime->store(ClusterId{0}).records()) {
    EXPECT_LE(rec.ddv.at(ClusterId{1}), w.agent(NodeId{3}).sn());
  }
  EXPECT_TRUE(w.fed.ledger().validate(false).empty());
}

TEST(Rollback, CoordinatorFailureHandledBySurvivor) {
  // The failure detector notifies the first *up* node; when node 0 (the
  // 2PC coordinator) dies, node 1 runs the rollback.
  MiniWorld w(tiny_spec(2, 3), 1);
  w.settle();
  for (auto& app : w.apps) app->work();
  w.fed.inject_failure(NodeId{0});
  w.settle(minutes(2));
  EXPECT_EQ(w.registry.get("rollback.count.c0"), 1u);
  EXPECT_EQ(w.apps[0]->restore_count, 1);
  EXPECT_TRUE(w.fed.ledger().validate(false).empty());
  // And the cluster still checkpoints (coordinator node came back).
  w.send(NodeId{3}, NodeId{0});
  w.settle();
  EXPECT_GE(w.registry.get("clc.forced.c0"), 1u);
}

TEST(Rollback, LostWorkIsObserved) {
  MiniWorld w(tiny_spec(2, 3), 1);
  w.settle();
  for (std::uint32_t n = 0; n < 3; ++n) {
    w.apps[n]->work();  // 1 virtual second each
  }
  w.fed.inject_failure(NodeId{1});
  w.settle(minutes(2));
  const auto& lost = w.registry.summary("rollback.lost_work_s");
  EXPECT_EQ(lost.count(), 3u);
  EXPECT_DOUBLE_EQ(lost.sum(), 3.0);
}

TEST(Rollback, RepeatedFaultsStayConsistent) {
  MiniWorld w(tiny_spec(2, 3), 7);
  w.settle();
  for (int round = 0; round < 5; ++round) {
    const std::uint64_t s = w.send(NodeId{0}, NodeId{3});
    w.settle();
    EXPECT_TRUE(w.delivered(NodeId{3}, s));
    w.fed.inject_failure(NodeId{static_cast<std::uint32_t>(round % 6)});
    w.settle(minutes(2));
    EXPECT_TRUE(w.fed.ledger().validate(false).empty()) << "round " << round;
  }
  EXPECT_EQ(w.registry.get("fault.injected"), 5u);
}

}  // namespace
}  // namespace hc3i::testing
