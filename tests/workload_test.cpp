// Tests for the synthetic code-coupling workload (src/app): traffic shape,
// snapshot/restore semantics, deterministic vs divergent replay.

#include <gtest/gtest.h>

#include "app/workload.hpp"
#include "driver/run.hpp"
#include "test_util.hpp"

namespace hc3i::testing {
namespace {

TEST(Workload, TrafficFollowsWeights) {
  // Cluster 0 sends 90% intra / 10% inter in the small spec; over a long
  // run the census should reflect that.
  driver::RunOptions opts;
  opts.spec = config::small_test_spec(2, 4);
  opts.spec.application.total_time = hours(4);
  opts.seed = 11;
  const auto result = driver::run_simulation(opts);
  const double intra = static_cast<double>(
      result.app_messages(ClusterId{0}, ClusterId{0}));
  const double inter = static_cast<double>(
      result.app_messages(ClusterId{0}, ClusterId{1}));
  ASSERT_GT(intra + inter, 500);
  EXPECT_NEAR(inter / (intra + inter), 0.1, 0.03);
}

TEST(Workload, SendRateMatchesMeanCompute) {
  // 4 nodes x (4h / 20s) expected steps per node in cluster 0.
  driver::RunOptions opts;
  opts.spec = config::small_test_spec(1, 4);
  opts.spec.application.total_time = hours(4);
  opts.seed = 3;
  const auto result = driver::run_simulation(opts);
  const double expected = 4.0 * opts.spec.application.total_time.seconds() /
                          opts.spec.application.clusters[0].mean_compute.seconds();
  EXPECT_NEAR(static_cast<double>(result.counter("app.sends")), expected,
              expected * 0.12);
}

TEST(Workload, SeedsChangeTheTrace) {
  driver::RunOptions a;
  a.spec = config::small_test_spec(2, 3);
  a.spec.application.total_time = minutes(60);
  a.seed = 1;
  driver::RunOptions b = a;
  b.seed = 2;
  const auto ra = driver::run_simulation(a);
  const auto rb = driver::run_simulation(b);
  EXPECT_NE(ra.counter("app.sends"), rb.counter("app.sends"));
}

TEST(Workload, SameSeedReproducesExactly) {
  driver::RunOptions opts;
  opts.spec = config::small_test_spec(2, 3);
  opts.spec.application.total_time = minutes(60);
  opts.seed = 5;
  const auto ra = driver::run_simulation(opts);
  const auto rb = driver::run_simulation(opts);
  EXPECT_EQ(ra.counter("app.sends"), rb.counter("app.sends"));
  EXPECT_EQ(ra.events_executed, rb.events_executed);
  EXPECT_EQ(ra.total_progress, rb.total_progress);
}

TEST(Workload, SnapshotRestoreRewindsProgress) {
  sim::Simulation sim(1);
  stats::Registry reg;
  net::Topology topo(config::small_test_spec(1, 2).topology);
  config::ApplicationSpec app = config::small_test_spec(1, 2).application;
  app::Workload workload(sim, topo, app, reg);

  // A null agent that swallows sends.
  struct NullAgent final : proto::ProtocolAgent {
    using ProtocolAgent::ProtocolAgent;
    void start() override {}
    void app_send(NodeId, std::uint64_t, std::uint64_t) override { ++sends; }
    void on_message(const net::Envelope&) override {}
    void on_failure_detected(NodeId) override {}
    int sends{0};
  };
  proto::AgentContext ctx;  // enough context for a null agent
  NullAgent agent(ctx);
  workload.bind_agents([&agent](NodeId) { return &agent; });
  workload.start();
  sim.run_until(minutes(5));
  auto& node = workload.node(NodeId{0});
  const auto snap = node.snapshot();
  EXPECT_GT(snap.progress, 0u);
  sim.run_until(minutes(10));
  EXPECT_GT(node.progress(), snap.progress);
  node.restore(snap);
  EXPECT_EQ(node.progress(), snap.progress);
  // Execution resumes after restore.
  sim.run_until(minutes(15));
  EXPECT_GT(node.progress(), snap.progress);
}

TEST(Workload, FreezeStopsActivity) {
  sim::Simulation sim(1);
  stats::Registry reg;
  const auto spec = config::small_test_spec(1, 2);
  net::Topology topo(spec.topology);
  app::Workload workload(sim, topo, spec.application, reg);
  struct NullAgent final : proto::ProtocolAgent {
    using ProtocolAgent::ProtocolAgent;
    void start() override {}
    void app_send(NodeId, std::uint64_t, std::uint64_t) override {}
    void on_message(const net::Envelope&) override {}
    void on_failure_detected(NodeId) override {}
  };
  proto::AgentContext ctx;
  NullAgent agent(ctx);
  workload.bind_agents([&agent](NodeId) { return &agent; });
  workload.start();
  sim.run_until(minutes(5));
  auto& node = workload.node(NodeId{0});
  node.freeze();
  const std::uint64_t frozen_at = node.progress();
  sim.run_until(minutes(30));
  EXPECT_EQ(node.progress(), frozen_at);
}

TEST(Workload, DeterministicReplayRepeatsDecisions) {
  // Under PWD (ReplayMode::kDeterministic), restoring and re-running must
  // reproduce the same sends (same app_seqs, same destinations) — the
  // property the pessimistic-logging baseline depends on.
  for (const auto mode :
       {app::ReplayMode::kDeterministic, app::ReplayMode::kDivergent}) {
    sim::Simulation sim(1);
    stats::Registry reg;
    auto spec = config::small_test_spec(2, 2);
    spec.application.total_time = hours(3);  // covers run + replay windows
    net::Topology topo(spec.topology);
    app::Workload workload(sim, topo, spec.application, reg, mode);
    struct Recorder final : proto::ProtocolAgent {
      using ProtocolAgent::ProtocolAgent;
      void start() override {}
      void app_send(NodeId dst, std::uint64_t, std::uint64_t seq) override {
        sends.emplace_back(dst, seq);
      }
      void on_message(const net::Envelope&) override {}
      void on_failure_detected(NodeId) override {}
      std::vector<std::pair<NodeId, std::uint64_t>> sends;
    };
    proto::AgentContext ctx;
    Recorder agent(ctx);
    workload.bind_agents([&agent](NodeId) { return &agent; });
    auto& node = workload.node(NodeId{0});
    const auto snap = node.snapshot();
    workload.start();
    sim.run_until(hours(1));
    const auto first = agent.sends;
    agent.sends.clear();
    // Rewind node 0 to the start and replay the same wall-clock window.
    node.restore(snap);
    sim.run_until(sim.now() + hours(1));
    std::vector<std::pair<NodeId, std::uint64_t>> replayed;
    for (const auto& s : agent.sends) replayed.push_back(s);
    // Compare the node-0 subsequence of both traces.
    auto only_node0 = [](const std::vector<std::pair<NodeId, std::uint64_t>>& v) {
      std::vector<std::pair<NodeId, std::uint64_t>> out;
      for (const auto& [dst, seq] : v) {
        if ((seq >> 32) == 0) out.emplace_back(dst, seq);
      }
      return out;
    };
    const auto a = only_node0(first);
    const auto b = only_node0(replayed);
    ASSERT_GT(a.size(), 10u);
    ASSERT_GT(b.size(), 10u);
    const std::size_t n = std::min(a.size(), b.size());
    bool identical = true;
    for (std::size_t i = 0; i < n; ++i) identical = identical && a[i] == b[i];
    if (mode == app::ReplayMode::kDeterministic) {
      EXPECT_TRUE(identical) << "PWD replay diverged";
    } else {
      EXPECT_FALSE(identical) << "divergent replay repeated itself";
    }
  }
}

TEST(Workload, StopsAtHorizon) {
  driver::RunOptions opts;
  opts.spec = config::small_test_spec(1, 2);
  opts.spec.application.total_time = minutes(30);
  const auto result = driver::run_simulation(opts);
  // No sends may be initiated after the horizon; the drain only flushes.
  EXPECT_GT(result.counter("app.sends"), 0u);
  EXPECT_LE(result.end_time, minutes(30) + opts.drain);
}

}  // namespace
}  // namespace hc3i::testing
