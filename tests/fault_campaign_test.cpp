// Fault-campaign subsystem tests: declarative injector semantics, campaign
// determinism (same seed + same campaign => byte-identical counter dumps),
// the legacy ScriptedFailure/auto_failures shims, the quiesce-bound
// rejection, recovery telemetry attribution, the report's incident table
// and the campaign config round-trip.

#include <gtest/gtest.h>

#include "config/parser.hpp"
#include "config/presets.hpp"
#include "config/writer.hpp"
#include "driver/report.hpp"
#include "driver/run.hpp"
#include "fault/campaign.hpp"
#include "fault/engine.hpp"
#include "test_util.hpp"

namespace hc3i::testing {
namespace {

driver::RunOptions small_opts(std::size_t clusters = 2,
                              std::uint32_t nodes = 3,
                              SimTime total = hours(1)) {
  driver::RunOptions opts;
  opts.spec = config::small_test_spec(clusters, nodes);
  opts.spec.application.total_time = total;
  for (auto& t : opts.spec.timers.clusters) t.clc_period = minutes(10);
  return opts;
}

// ---------------------------------------------------------------------------
// Injector semantics
// ---------------------------------------------------------------------------

TEST(Campaign, ScriptedKillViaCampaignInjects) {
  auto opts = small_opts();
  opts.campaign.kills.push_back(fault::KillSpec{minutes(25), NodeId{1}});
  const auto result = driver::run_simulation(opts);
  EXPECT_EQ(result.counter("fault.injected"), 1u);
  EXPECT_EQ(result.counter("rollback.faults.c0"), 1u);
  EXPECT_TRUE(result.violations.empty());
  ASSERT_EQ(result.incidents.size(), 1u);
  EXPECT_STREQ(result.incidents[0].source, "scripted");
  EXPECT_EQ(result.incidents[0].victim, NodeId{1});
  EXPECT_EQ(result.incidents[0].cluster, ClusterId{0});
  EXPECT_TRUE(result.incidents[0].recovery_complete);
  EXPECT_GT(result.incidents[0].recovery_latency().ns, 0);
  EXPECT_GE(result.incidents[0].detected_at, result.incidents[0].injected_at);
}

TEST(Campaign, BurstSerialisesRackLoss) {
  auto opts = small_opts(2, 4);
  opts.campaign.serialize_faults = true;  // the legacy one-fault-at-a-time mode
  fault::BurstSpec burst;
  burst.cluster = ClusterId{1};
  burst.kills = 3;
  burst.at = minutes(20);
  burst.window = minutes(2);
  opts.campaign.bursts.push_back(burst);
  const auto result = driver::run_simulation(opts);
  // Every kill of the burst lands (deferred if mid-recovery, never lost)...
  EXPECT_EQ(result.counter("fault.injected"), 3u);
  EXPECT_EQ(result.counter("rollback.faults.c1"), 3u);
  EXPECT_EQ(result.counter("rollback.faults.c0"), 0u);
  EXPECT_TRUE(result.violations.empty());
  ASSERT_EQ(result.incidents.size(), 3u);
  std::uint32_t prev_victim = 0;
  for (const fault::Incident& inc : result.incidents) {
    EXPECT_STREQ(inc.source, "burst");
    EXPECT_EQ(inc.cluster, ClusterId{1});
    EXPECT_TRUE(inc.recovery_complete);
    // ...one fault at a time: windows are disjoint and ordered.
    EXPECT_GT(inc.victim.v, prev_victim);
    prev_victim = inc.victim.v;
  }
  EXPECT_LE(result.incidents.back().injected_at,
            minutes(22) + seconds(30));  // window + deferral slack
}

TEST(Campaign, RepeatOffenderFailsTwice) {
  auto opts = small_opts(2, 3);
  opts.campaign.repeats.push_back(
      fault::RepeatSpec{NodeId{2}, 2, minutes(15), minutes(20)});
  const auto result = driver::run_simulation(opts);
  EXPECT_EQ(result.counter("fault.injected"), 2u);
  ASSERT_EQ(result.incidents.size(), 2u);
  for (const fault::Incident& inc : result.incidents) {
    EXPECT_STREQ(inc.source, "repeat");
    EXPECT_EQ(inc.victim, NodeId{2});
  }
  EXPECT_TRUE(result.violations.empty());
}

TEST(Campaign, PerClusterStreamOnlyHitsItsCluster) {
  auto opts = small_opts(2, 3, hours(2));
  fault::StreamSpec stream;
  stream.cluster = ClusterId{1};
  stream.mtbf = minutes(20);
  opts.campaign.streams.push_back(stream);
  const auto result = driver::run_simulation(opts);
  EXPECT_GE(result.counter("fault.injected"), 1u);
  EXPECT_EQ(result.counter("rollback.faults.c0"), 0u);
  EXPECT_EQ(result.counter("rollback.faults.c1"),
            result.counter("fault.injected"));
  EXPECT_TRUE(result.violations.empty());
  for (const fault::Incident& inc : result.incidents) {
    EXPECT_STREQ(inc.source, "stream");
    EXPECT_EQ(inc.cluster, ClusterId{1});
  }
}

TEST(Campaign, MixedInjectorsStayConsistentAcrossSeeds) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    auto opts = small_opts(3, 3, hours(2));
    opts.seed = seed;
    opts.campaign.kills.push_back(fault::KillSpec{minutes(15), NodeId{4}});
    fault::StreamSpec stream;
    stream.cluster = ClusterId{0};
    stream.mtbf = minutes(25);
    stream.start = minutes(30);
    opts.campaign.streams.push_back(stream);
    fault::BurstSpec burst;
    burst.cluster = ClusterId{2};
    burst.kills = 2;
    burst.at = minutes(50);
    burst.window = minutes(1);
    opts.campaign.bursts.push_back(burst);
    opts.campaign.repeats.push_back(
        fault::RepeatSpec{NodeId{1}, 2, minutes(70), minutes(15)});
    const auto result = driver::run_simulation(opts);
    EXPECT_GE(result.counter("fault.injected"), 5u) << "seed " << seed;
    EXPECT_TRUE(result.violations.empty()) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Phase-targeted triggers
// ---------------------------------------------------------------------------

TEST(Campaign, PhaseTriggerKillsBetweenPhase1AckAndCommit) {
  // The declarative form of Rollback.FailureBetweenPhase1AcksLeavesNoStale-
  // Ddv's hand-built race: a huge state size stretches the replica-store
  // phase to seconds, the trigger fires after the round's first phase-1 ack
  // and the detection delay (50 ms) lands the rollback well before the
  // remaining acks — the round aborts mid-2PC.
  config::RunSpec spec = tiny_spec(2, 3);
  spec.application.state_bytes = 50 * 1024 * 1024;
  MiniWorld w(spec, 3);
  w.settle(minutes(2));  // initial CLCs committed

  fault::Campaign plan;
  fault::PhaseTriggerSpec trigger;
  trigger.cluster = ClusterId{0};
  trigger.phase = fault::Phase::kPhase1Acks;
  trigger.after_acks = 1;
  trigger.occurrence = 1;
  trigger.victim = NodeId{2};
  trigger.not_before = minutes(1);  // skip the initial t=0 rounds
  plan.phase_triggers.push_back(trigger);
  fault::CampaignEngine engine(w.fed, w.runtime.get(), plan,
                               w.spec_.application.total_time);
  engine.arm();

  // A fresh C1 SN forces a CLC round in C0; the trigger should abort it.
  w.send(NodeId{3}, NodeId{0});
  w.settle(minutes(5));
  engine.finalize();

  EXPECT_EQ(w.registry.get("fault.injected"), 1u);
  EXPECT_EQ(w.registry.get("rollback.faults.c0"), 1u);
  ASSERT_EQ(engine.incidents().size(), 1u);
  const fault::Incident& inc = engine.incidents()[0];
  EXPECT_STREQ(inc.source, "phase");
  EXPECT_EQ(inc.victim, NodeId{2});
  EXPECT_TRUE(inc.recovery_complete);
  // The aborted round leaked nothing: C0 agrees cluster-wide and its stored
  // DDV entries for C1 never exceed what C1 actually committed.
  const auto* first = w.runtime->cluster_agents(ClusterId{0}).front();
  for (const auto* a : w.runtime->cluster_agents(ClusterId{0})) {
    EXPECT_TRUE(a->ddv() == first->ddv());
    EXPECT_EQ(a->sn(), first->sn());
    EXPECT_FALSE(a->in_round());
  }
  for (const auto& rec : w.runtime->store(ClusterId{0}).records()) {
    EXPECT_LE(rec.ddv.at(ClusterId{1}), w.agent(NodeId{3}).sn());
  }
  EXPECT_TRUE(w.fed.ledger().validate(false).empty());

  // And the cluster still checkpoints cleanly afterwards.
  const std::uint64_t fresh = w.send(NodeId{3}, NodeId{0});
  w.settle(minutes(3));
  EXPECT_TRUE(w.delivered(NodeId{0}, fresh));
}

TEST(Campaign, CommitTriggerFiresOnNthCommit) {
  auto opts = small_opts(2, 3);
  fault::PhaseTriggerSpec trigger;
  trigger.cluster = ClusterId{1};
  trigger.phase = fault::Phase::kCommit;
  trigger.occurrence = 2;
  trigger.victim = NodeId{4};
  trigger.not_before = minutes(5);
  opts.campaign.phase_triggers.push_back(trigger);
  const auto result = driver::run_simulation(opts);
  EXPECT_EQ(result.counter("fault.injected"), 1u);
  EXPECT_EQ(result.counter("rollback.faults.c1"), 1u);
  EXPECT_TRUE(result.violations.empty());
  ASSERT_EQ(result.incidents.size(), 1u);
  EXPECT_STREQ(result.incidents[0].source, "phase");
  // Fired at the 2nd commit at/after 5min, not at a scripted wall time.
  EXPECT_GE(result.incidents[0].injected_at, minutes(5));
}

TEST(Campaign, PhaseTriggerRejectedForNonHc3iProtocols) {
  auto opts = small_opts();
  opts.protocol = driver::ProtocolKind::kCoordinatedGlobal;
  fault::PhaseTriggerSpec trigger;
  trigger.victim = NodeId{1};
  opts.campaign.phase_triggers.push_back(trigger);
  EXPECT_THROW(driver::run_simulation(opts), CheckFailure);
}

// ---------------------------------------------------------------------------
// Determinism and the legacy shims
// ---------------------------------------------------------------------------

driver::RunOptions determinism_opts(std::uint64_t seed) {
  auto opts = small_opts(3, 3, hours(1));
  opts.seed = seed;
  opts.campaign.kills.push_back(fault::KillSpec{minutes(12), NodeId{4}});
  fault::BurstSpec burst;
  burst.cluster = ClusterId{2};
  burst.kills = 2;
  burst.at = minutes(25);
  burst.window = minutes(1);
  opts.campaign.bursts.push_back(burst);
  fault::PhaseTriggerSpec trigger;
  trigger.cluster = ClusterId{0};
  trigger.phase = fault::Phase::kCommit;
  trigger.occurrence = 3;
  trigger.victim = NodeId{1};
  trigger.not_before = minutes(5);
  opts.campaign.phase_triggers.push_back(trigger);
  fault::StreamSpec stream;
  stream.mtbf = minutes(18);
  stream.start = minutes(35);
  opts.campaign.streams.push_back(stream);
  return opts;
}

TEST(Campaign, SameSeedSameCampaignIsByteIdentical) {
  const auto a = driver::run_simulation(determinism_opts(7));
  const auto b = driver::run_simulation(determinism_opts(7));
  EXPECT_GE(a.counter("fault.injected"), 4u);  // all injector kinds fired
  EXPECT_EQ(driver::render_counters_csv(a), driver::render_counters_csv(b));
  ASSERT_EQ(a.incidents.size(), b.incidents.size());
  for (std::size_t i = 0; i < a.incidents.size(); ++i) {
    EXPECT_EQ(a.incidents[i].injected_at, b.incidents[i].injected_at);
    EXPECT_EQ(a.incidents[i].victim, b.incidents[i].victim);
    EXPECT_STREQ(a.incidents[i].source, b.incidents[i].source);
    EXPECT_EQ(a.incidents[i].replayed_msgs, b.incidents[i].replayed_msgs);
  }
}

TEST(Campaign, ScriptedFailureShimMatchesExplicitCampaign) {
  // The legacy RunOptions::scripted_failures path must reproduce, byte for
  // byte, what the equivalent campaign produces (it *is* the same engine —
  // the shim folds into campaign.kills, preserving PR-era behaviour).
  auto legacy = small_opts(2, 4);
  legacy.seed = 5;
  legacy.scripted_failures.push_back({minutes(20), NodeId{1}});
  legacy.scripted_failures.push_back({minutes(40), NodeId{5}});

  auto campaign = small_opts(2, 4);
  campaign.seed = 5;
  campaign.campaign.kills.push_back(fault::KillSpec{minutes(20), NodeId{1}});
  campaign.campaign.kills.push_back(fault::KillSpec{minutes(40), NodeId{5}});

  const auto a = driver::run_simulation(legacy);
  const auto b = driver::run_simulation(campaign);
  EXPECT_EQ(a.counter("fault.injected"), 2u);
  EXPECT_EQ(driver::render_counters_csv(a), driver::render_counters_csv(b));
  EXPECT_EQ(a.incidents.size(), b.incidents.size());
}

TEST(Campaign, AutoFailuresShimMatchesFederationWideStream) {
  // auto_failures folds into stream index 0, whose derived RNG id matches
  // the pre-campaign Federation injector — so the shim and the explicit
  // federation-wide stream are the same run.
  auto legacy = small_opts(2, 3, hours(2));
  legacy.seed = 3;
  legacy.spec.topology.mtbf = minutes(25);
  legacy.auto_failures = true;

  auto campaign = small_opts(2, 3, hours(2));
  campaign.seed = 3;
  campaign.spec.topology.mtbf = minutes(25);  // same topology bytes
  fault::StreamSpec stream;
  stream.mtbf = minutes(25);
  stream.stop = hours(2);  // the quiesce bound the shim applies
  campaign.campaign.streams.push_back(stream);

  const auto a = driver::run_simulation(legacy);
  const auto b = driver::run_simulation(campaign);
  EXPECT_GE(a.counter("fault.injected"), 1u);
  EXPECT_EQ(driver::render_counters_csv(a), driver::render_counters_csv(b));
}

// ---------------------------------------------------------------------------
// Quiesce bound
// ---------------------------------------------------------------------------

TEST(Campaign, ScriptedKillPastQuiesceBoundIsRejected) {
  // Pessimistic logging replays lost work in simulated time; the driver
  // bounds injections at horizon - (max CLC period + margin).  A script
  // inside that margin used to strand pre-failure sends as ghosts — now it
  // is rejected up front with a clear CheckFailure.
  auto opts = small_opts(2, 3, hours(1));  // bound = 60 - (10 + 10) = 40min
  opts.protocol = driver::ProtocolKind::kPessimisticLog;
  opts.scripted_failures.push_back({minutes(50), NodeId{1}});
  try {
    driver::run_simulation(opts);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("quiesce bound"), std::string::npos)
        << e.what();
  }
}

TEST(Campaign, ScriptedKillAtQuiesceBoundIsAccepted) {
  auto opts = small_opts(2, 3, hours(1));
  opts.protocol = driver::ProtocolKind::kPessimisticLog;
  opts.scripted_failures.push_back({minutes(40), NodeId{1}});  // == bound
  const auto result = driver::run_simulation(opts);
  EXPECT_EQ(result.counter("fault.injected"), 1u);
  EXPECT_TRUE(result.violations.empty());
}

TEST(Campaign, DeferredKillPushedPastBoundIsDroppedNotInjected) {
  // arm() checks *scheduled* times, but a deferral can push a kill past
  // the quiesce bound: a huge process state makes the first burst kill's
  // recovery (state transfer over the SAN) outlast the bound, so the
  // second kill — legal on paper at exactly the bound — would fire far
  // beyond it.  It must be dropped and counted, not injected.
  auto opts = small_opts(2, 3, hours(1));  // HC3I: bound == horizon (60min)
  opts.spec.application.state_bytes = 600ull * 1024 * 1024;  // ~63s restore
  fault::BurstSpec burst;
  burst.cluster = ClusterId{0};
  burst.kills = 2;
  burst.at = minutes(59) + seconds(30);
  burst.window = seconds(30);  // second kill lands at the bound exactly
  opts.campaign.bursts.push_back(burst);
  const auto result = driver::run_simulation(opts);
  EXPECT_EQ(result.counter("fault.injected"), 1u);
  EXPECT_EQ(result.counter("fault.deferred"), 1u);
  EXPECT_EQ(result.counter("fault.skipped_quiesce"), 1u);
  EXPECT_TRUE(result.violations.empty());
}

TEST(Campaign, RepeatOccurrencesPastBoundAreClamped) {
  auto opts = small_opts(2, 3, hours(1));
  opts.protocol = driver::ProtocolKind::kPessimisticLog;  // bound = 40min
  opts.campaign.repeats.push_back(
      fault::RepeatSpec{NodeId{1}, 4, minutes(20), minutes(15)});
  const auto result = driver::run_simulation(opts);
  // Occurrences at 20 and 35 min fire; 50 and 65 min are clamped away.
  EXPECT_EQ(result.counter("fault.injected"), 2u);
  EXPECT_TRUE(result.violations.empty());
}

// ---------------------------------------------------------------------------
// Telemetry attribution and the report
// ---------------------------------------------------------------------------

TEST(Campaign, IncidentWindowsPartitionTheRunCosts) {
  auto opts = small_opts(3, 3, hours(2));
  opts.hc3i.transitive_ddv = true;
  opts.campaign.kills.push_back(fault::KillSpec{minutes(20), NodeId{1}});
  opts.campaign.kills.push_back(fault::KillSpec{minutes(60), NodeId{4}});
  opts.campaign.kills.push_back(fault::KillSpec{minutes(90), NodeId{7}});
  const auto result = driver::run_simulation(opts);
  ASSERT_EQ(result.incidents.size(), 3u);
  std::uint64_t rollbacks = 0, alerts = 0, replayed_msgs = 0,
                replayed_bytes = 0, undone = 0, nodes = 0;
  for (const fault::Incident& inc : result.incidents) {
    rollbacks += inc.rollbacks;
    alerts += inc.alert_fanout;
    replayed_msgs += inc.replayed_msgs;
    replayed_bytes += inc.replayed_bytes;
    undone += inc.events_undone;
    nodes += inc.nodes_rolled_back;
    EXPECT_TRUE(inc.recovery_complete);
    EXPECT_GE(inc.rollbacks, 1u);
    EXPECT_GE(inc.nodes_rolled_back, 3u);  // at least the faulty cluster
  }
  // Incident intervals plus the post-campaign residual tile the run, so the
  // deltas sum *exactly* to the end-of-run counters.
  ASSERT_TRUE(result.fault_summary.has_residual);
  const fault::Incident& res = result.fault_summary.residual;
  EXPECT_STREQ(res.source, "post-campaign");
  EXPECT_EQ(rollbacks + res.rollbacks, result.counter("rollback.count"));
  EXPECT_EQ(nodes + res.nodes_rolled_back, result.counter("rollback.nodes"));
  EXPECT_EQ(alerts + res.alert_fanout, result.counter("rollback.alerts"));
  EXPECT_EQ(replayed_msgs + res.replayed_msgs,
            result.counter("log.resent_msgs"));
  EXPECT_EQ(replayed_bytes + res.replayed_bytes,
            result.counter("log.resent_bytes"));
  EXPECT_EQ(undone + res.events_undone,
            result.counter("ledger.undone_events"));
  // Serial incidents: never more than one recovery in flight.
  EXPECT_EQ(result.fault_summary.max_overlap, 1u);
  EXPECT_TRUE(result.violations.empty());
}

TEST(Campaign, ReportRendersRecoveryCountersAndIncidentTable) {
  auto opts = small_opts(2, 3);
  opts.campaign.kills.push_back(fault::KillSpec{minutes(25), NodeId{1}});
  const auto result = driver::run_simulation(opts);
  const std::string report = driver::render_report(result, 2);
  for (const char* needle :
       {"fault incidents (recovery telemetry)", "recovery latency",
        "node restores", "scripted", "replay msgs", "lost work"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
  }
}

// ---------------------------------------------------------------------------
// Campaign config round-trip
// ---------------------------------------------------------------------------

fault::Campaign full_campaign() {
  fault::Campaign plan;
  plan.serialize_faults = true;  // round-trips through [options]
  plan.kills.push_back(fault::KillSpec{minutes(6), NodeId{5}});
  plan.kills.push_back(fault::KillSpec{minutes(9), NodeId{0}});
  fault::StreamSpec fed_stream;
  fed_stream.mtbf = minutes(8);
  plan.streams.push_back(fed_stream);
  fault::StreamSpec cl_stream;
  cl_stream.cluster = ClusterId{1};
  cl_stream.mtbf = minutes(3);
  cl_stream.start = minutes(5);
  cl_stream.stop = minutes(25);
  plan.streams.push_back(cl_stream);
  fault::BurstSpec burst;
  burst.cluster = ClusterId{1};
  burst.kills = 3;
  burst.at = minutes(12);
  burst.window = minutes(2);
  burst.first_victim = 1;
  plan.bursts.push_back(burst);
  plan.repeats.push_back(fault::RepeatSpec{NodeId{7}, 3, minutes(10), minutes(6)});
  fault::PhaseTriggerSpec trigger;
  trigger.cluster = ClusterId{0};
  trigger.phase = fault::Phase::kPhase1Acks;
  trigger.after_acks = 2;
  trigger.occurrence = 4;
  trigger.victim = NodeId{2};
  trigger.not_before = minutes(1);
  plan.phase_triggers.push_back(trigger);
  return plan;
}

TEST(CampaignConfig, WriterParserRoundTrip) {
  const config::TopologySpec topo = config::small_test_spec(2, 4).topology;
  const fault::Campaign plan = full_campaign();
  const std::string text = config::write_campaign(plan);
  const fault::Campaign parsed = config::parse_campaign(text, topo, "<rt>");
  EXPECT_EQ(parsed, plan);
  // Idempotent: writing the parsed plan reproduces the text.
  EXPECT_EQ(config::write_campaign(parsed), text);
}

TEST(CampaignConfig, DefaultsAreOptional) {
  const config::TopologySpec topo = config::small_test_spec(2, 4).topology;
  const auto plan = config::parse_campaign(
      "[kill]\nat = 5min\nnode = 3\n"
      "[stream]\nmtbf = 4min\n"
      "[phase_trigger]\ncluster = 0\nphase = commit\nnode = 1\n",
      topo, "<min>");
  ASSERT_EQ(plan.kills.size(), 1u);
  ASSERT_EQ(plan.streams.size(), 1u);
  EXPECT_FALSE(plan.streams[0].cluster.has_value());
  EXPECT_EQ(plan.streams[0].start, SimTime::zero());
  EXPECT_TRUE(plan.streams[0].stop.is_infinite());
  ASSERT_EQ(plan.phase_triggers.size(), 1u);
  EXPECT_EQ(plan.phase_triggers[0].phase, fault::Phase::kCommit);
  EXPECT_EQ(plan.phase_triggers[0].after_acks, 1u);
  EXPECT_EQ(plan.phase_triggers[0].occurrence, 1u);
}

TEST(CampaignConfig, RejectsBadInput) {
  const config::TopologySpec topo = config::small_test_spec(2, 4).topology;
  // Unknown section.
  EXPECT_THROW(config::parse_campaign("[explode]\nat = 1min\n", topo, "<t>"),
               config::ParseError);
  // Unknown phase name.
  EXPECT_THROW(config::parse_campaign(
                   "[phase_trigger]\ncluster = 0\nphase = sometime\nnode = 1\n",
                   topo, "<t>"),
               config::ParseError);
  // Victim out of range (validation folded into ParseError with origin).
  EXPECT_THROW(config::parse_campaign("[kill]\nat = 1min\nnode = 99\n", topo,
                                      "<t>"),
               config::ParseError);
  // Burst larger than its cluster.
  EXPECT_THROW(config::parse_campaign(
                   "[burst]\ncluster = 0\nkills = 9\nat = 1min\nwindow = 1min\n",
                   topo, "<t>"),
               config::ParseError);
}

TEST(CampaignConfig, ValidateCatchesStructuralMistakes) {
  const config::TopologySpec topo = config::small_test_spec(2, 4).topology;
  fault::Campaign plan;
  fault::StreamSpec stream;  // mtbf left at zero
  plan.streams.push_back(stream);
  EXPECT_THROW(plan.validate(topo), CheckFailure);

  plan = {};
  plan.repeats.push_back(fault::RepeatSpec{NodeId{1}, 3, minutes(5),
                                           SimTime::zero()});  // gap 0, times 3
  EXPECT_THROW(plan.validate(topo), CheckFailure);

  // A phase1_acks trigger whose after_acks >= cluster size has no
  // ack/commit window (the last ack commits synchronously) — it would
  // either never match or fire after the commit it claims to precede.
  plan = {};
  fault::PhaseTriggerSpec trigger;
  trigger.cluster = ClusterId{0};
  trigger.phase = fault::Phase::kPhase1Acks;
  trigger.after_acks = 4;  // == cluster size
  trigger.victim = NodeId{1};
  plan.phase_triggers.push_back(trigger);
  EXPECT_THROW(plan.validate(topo), CheckFailure);
  plan.phase_triggers[0].after_acks = 3;  // strictly inside the window
  plan.validate(topo);
}

}  // namespace
}  // namespace hc3i::testing
