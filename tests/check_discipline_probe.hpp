#pragma once

// Shared between the enabled and disabled check-discipline TUs: a probe
// whose member calls count how often HC3I_CHECK arguments are evaluated.

#include <string>

namespace hc3i_test {

struct Probe {
  int evaluations = 0;
  int message_builds = 0;

  bool count_true() {
    ++evaluations;
    return true;
  }
  bool count_false() {
    ++evaluations;
    return false;
  }
  std::string count_message() {
    ++message_builds;
    return "probe message";
  }
};

/// Defined in check_discipline_disabled_tu.cpp (HC3I_DISABLE_CHECKS set):
/// runs a passing and a failing HC3I_CHECK; returns probe.evaluations.
int run_checks_in_disabled_tu(Probe& probe);

}  // namespace hc3i_test
