// Sharded-sweep subsystem tests.
//
// The load-bearing property: a run executed inside batch::Runner — any shard
// count, any interleaving, warm or cold worker pools — produces a counter
// dump byte-identical to the same (spec, seed) executed solo on a fresh
// single-threaded context.  The grid here (3 topologies x 2 campaigns x
// 5 seeds) is the ISSUE's shard-isolation suite, compared at threads = 1, 4
// and 8; the same binary runs under ThreadSanitizer in CI to check the
// no-sharing claim at the memory level.
//
// Alongside it: the pool-isolation regressions for the PayloadArena refactor
// (owner tags refuse cross-arena recycling, blocks may outlive their arena,
// the no-arena path is plain heap traffic — the static-teardown leak the
// old function-local-static free lists needed a workaround for is now
// structurally impossible), and the sweep config kind's parser.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "batch/report.hpp"
#include "batch/runner.hpp"
#include "batch/sweep.hpp"
#include "config/parser.hpp"
#include "config/spec.hpp"
#include "driver/run.hpp"
#include "driver/sim_context.hpp"
#include "fault/campaign.hpp"
#include "proto/payload_pool.hpp"
#include "util/check.hpp"

namespace hc3i::testing {
namespace {

// ---------------------------------------------------------------------------
// Shard isolation: sharded == solo, byte for byte
// ---------------------------------------------------------------------------

/// The ISSUE grid: 3 topologies x 2 campaigns x 5 seeds = 30 runs.  The
/// explicit campaign (a scripted early kill of node 1) is valid on every
/// topology point, so the same plan object is shared across the cells.
batch::SweepSpec isolation_sweep() {
  batch::SweepSpec sweep;
  sweep.topologies = {batch::small_topology(2, 3), batch::small_topology(3, 2),
                      batch::small_topology(2, 4)};
  fault::Campaign plan;
  plan.kills.push_back(fault::KillSpec{minutes(20), NodeId{1}});
  sweep.campaigns = {batch::no_campaign(),
                     batch::explicit_campaign("kill_n1", std::move(plan))};
  sweep.seeds = {1, 2, 3, 4, 5};
  return sweep;
}

/// Execute every case solo — fresh run-scoped context each time, exactly the
/// options the runner would use — and collect the counter dumps.
std::vector<std::string> solo_dumps(const std::vector<batch::RunCase>& cases) {
  std::vector<std::string> dumps;
  dumps.reserve(cases.size());
  for (const batch::RunCase& rc : cases) {
    driver::RunOptions opts = rc.options();
    opts.validate = false;  // match run_case(): violations recorded, not thrown
    const driver::RunResult result = driver::run_simulation(opts);
    EXPECT_TRUE(result.violations.empty()) << rc.name();
    dumps.push_back(result.registry.dump());
  }
  return dumps;
}

TEST(ShardIsolation, ShardedDumpsMatchSoloAtEveryThreadCount) {
  const batch::SweepSpec sweep = isolation_sweep();
  const std::vector<batch::RunCase> cases = batch::expand(sweep);
  ASSERT_EQ(cases.size(), 30u);
  const std::vector<std::string> solo = solo_dumps(cases);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    batch::RunnerOptions ropts;
    ropts.threads = threads;
    ropts.keep_dumps = true;
    const batch::BatchReport report = batch::Runner(ropts).run(cases);
    ASSERT_EQ(report.cases.size(), cases.size());
    EXPECT_EQ(report.failures(), 0u);
    for (std::size_t i = 0; i < cases.size(); ++i) {
      EXPECT_TRUE(report.cases[i].ok) << cases[i].name();
      EXPECT_EQ(report.cases[i].dump, solo[i])
          << cases[i].name() << " diverged at threads=" << threads;
    }
  }
}

/// The storage axis under sharding: capture stalls and chain reads run on
/// the simulated clock, so a storage-charged grid must shard as cleanly as
/// the plain one — byte-identical to solo at every thread count.
batch::SweepSpec storage_sweep() {
  batch::SweepSpec sweep;
  sweep.topologies = {batch::scale_topology(2, 4, minutes(20))};
  sweep.campaigns = {batch::no_campaign(), batch::reference_campaign()};
  config::StorageSpec local;
  local.kind = config::StorageSpec::Kind::kLocalDisk;
  config::StorageSpec striped;
  striped.kind = config::StorageSpec::Kind::kStripedRemote;
  striped.incremental = false;
  sweep.storage = {batch::storage_point("local", local),
                   batch::storage_point("striped-full", striped, minutes(2))};
  sweep.seeds = {1, 2, 3};
  return sweep;
}

TEST(ShardIsolation, StorageChargedGridMatchesSoloAtEveryThreadCount) {
  const std::vector<batch::RunCase> cases = batch::expand(storage_sweep());
  ASSERT_EQ(cases.size(), 12u);
  const std::vector<std::string> solo = solo_dumps(cases);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    batch::RunnerOptions ropts;
    ropts.threads = threads;
    ropts.keep_dumps = true;
    const batch::BatchReport report = batch::Runner(ropts).run(cases);
    EXPECT_EQ(report.failures(), 0u);
    for (std::size_t i = 0; i < cases.size(); ++i) {
      EXPECT_EQ(report.cases[i].dump, solo[i])
          << cases[i].name() << " diverged at threads=" << threads;
      // Every storage-charged case actually exercised the cost model.
      EXPECT_GT(report.cases[i].ckpt_bytes, 0u) << cases[i].name();
    }
  }
}

TEST(SweepExpand, StorageAxisMultipliesTheGridAndDerivesSpecs) {
  const batch::SweepSpec sweep = storage_sweep();
  EXPECT_EQ(sweep.runs(), 12u);
  const std::vector<batch::RunCase> cases = batch::expand(sweep);
  EXPECT_EQ(cases[0].name(), "scale_2x4/none/local s=1");
  EXPECT_EQ(cases[3].name(), "scale_2x4/none/striped-full s=1");
  // The derived spec carries the point's backend and interval override; the
  // base topology spec is untouched.
  EXPECT_EQ(cases[0].spec->topology.clusters[0].storage.kind,
            config::StorageSpec::Kind::kLocalDisk);
  EXPECT_EQ(cases[3].spec->topology.clusters[0].storage.kind,
            config::StorageSpec::Kind::kStripedRemote);
  EXPECT_EQ(cases[3].spec->timers.clusters[0].clc_period, minutes(2));
  EXPECT_EQ(sweep.topologies[0].spec->topology.clusters[0].storage.kind,
            config::StorageSpec::Kind::kNone);
  // Seeds of one (topology, storage) cell share the derived spec.
  EXPECT_EQ(cases[3].spec, cases[4].spec);
  EXPECT_NE(cases[0].spec, cases[3].spec);
}

TEST(SweepConfig, ParsesStorageSections) {
  const char* text =
      "[topology t]\n"
      "preset = scale\n"
      "clusters = 2\n"
      "nodes = 4\n"
      "minutes = 10\n"
      "\n"
      "[storage fast]\n"
      "kind = striped-remote\n"
      "latency = 2ms\n"
      "write_bandwidth = 500MB/s\n"
      "read_bandwidth = 1GB/s\n"
      "stripe_width = 8\n"
      "incremental = 0\n"
      "interval = 90s\n"
      "state_size = 32MiB\n"
      "\n"
      "[storage slow]\n"
      "kind = local-disk\n";
  const batch::SweepSpec sweep = batch::parse_sweep(text, "test.ini");
  ASSERT_EQ(sweep.storage.size(), 2u);
  const batch::StoragePoint& fast = sweep.storage[0];
  EXPECT_EQ(fast.name, "fast");
  EXPECT_EQ(fast.storage.kind, config::StorageSpec::Kind::kStripedRemote);
  EXPECT_EQ(fast.storage.latency, milliseconds(2));
  EXPECT_EQ(fast.storage.stripe_width, 8u);
  EXPECT_FALSE(fast.storage.incremental);
  EXPECT_EQ(fast.clc_period, seconds(90));
  EXPECT_EQ(fast.state_bytes, 32ull << 20);
  EXPECT_EQ(sweep.storage[1].storage.kind,
            config::StorageSpec::Kind::kLocalDisk);
  EXPECT_EQ(sweep.runs(), 2u);
  // Bad storage sections are rejected with the file origin.
  EXPECT_THROW(batch::parse_sweep("[topology t]\npreset = small\n"
                                  "[storage s]\nkind = carrier-pigeon\n"),
               config::ParseError);
  EXPECT_THROW(batch::parse_sweep("[topology t]\npreset = small\n"
                                  "[storage s]\nfrobnicate = 1\n"),
               config::ParseError);
}

TEST(ShardIsolation, WarmArenaRunsAreByteIdentical) {
  // Pool warmth is a throughput knob, never an observable: run 2 inside the
  // same worker context pops recycled blocks where run 1 paid heap traffic,
  // and the dumps must not be able to tell.
  const batch::RunCase rc = batch::expand(isolation_sweep())[7];
  driver::RunOptions opts = rc.options();
  opts.validate = false;
  driver::SimContext ctx;
  const std::string cold = driver::run_simulation(opts, ctx).registry.dump();
  const std::uint64_t reused_before = ctx.arena().reused_blocks();
  const std::string warm = driver::run_simulation(opts, ctx).registry.dump();
  EXPECT_GT(ctx.arena().reused_blocks(), reused_before)
      << "second run should hit the warmed pool";
  EXPECT_EQ(cold, warm);
}

TEST(ShardIsolation, ReportIsInGridOrderWithConsistentWorkerStats) {
  batch::SweepSpec sweep = isolation_sweep();
  sweep.seeds = {1, 2};  // 12 runs is plenty for a shape test
  const std::vector<batch::RunCase> cases = batch::expand(sweep);
  batch::RunnerOptions ropts;
  ropts.threads = 4;
  const batch::BatchReport report = batch::Runner(ropts).run(cases);

  ASSERT_EQ(report.cases.size(), cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(report.cases[i].index, i);
    EXPECT_EQ(report.cases[i].topology, cases[i].topology);
    EXPECT_EQ(report.cases[i].campaign, cases[i].campaign);
    EXPECT_EQ(report.cases[i].seed, cases[i].seed);
    EXPECT_TRUE(report.cases[i].dump.empty());  // keep_dumps defaults off
  }
  std::size_t worker_runs = 0;
  for (const batch::WorkerStats& ws : report.workers) worker_runs += ws.runs;
  EXPECT_EQ(worker_runs, cases.size());
  EXPECT_EQ(report.threads, 4u);
}

TEST(Runner, SickCaseDoesNotAbortItsWorker) {
  batch::SweepSpec sweep;
  sweep.topologies = {batch::small_topology(2, 3)};
  sweep.campaigns = {batch::no_campaign()};
  sweep.seeds = {1, 2};
  std::vector<batch::RunCase> cases = batch::expand(sweep);
  // Corrupt case 0 behind expand()'s validation: a kill of a node the
  // topology does not have.  The campaign engine rejects it at arm time;
  // the runner must fold that into a failed CaseResult and keep going.
  fault::Campaign bad;
  bad.kills.push_back(fault::KillSpec{minutes(1), NodeId{999}});
  cases[0].plan = std::make_shared<const fault::Campaign>(std::move(bad));

  batch::RunnerOptions ropts;
  ropts.threads = 1;
  const batch::BatchReport report = batch::Runner(ropts).run(cases);
  EXPECT_FALSE(report.cases[0].ok);
  EXPECT_FALSE(report.cases[0].error.empty());
  EXPECT_TRUE(report.cases[1].ok) << report.cases[1].error;
  EXPECT_EQ(report.failures(), 1u);
}

// ---------------------------------------------------------------------------
// Pool isolation: the PayloadArena ownership contract
// ---------------------------------------------------------------------------

/// Stand-in payload type; gets its own per-type pool index like any control
/// payload would.
struct Blob {
  std::uint64_t a{1};
  std::uint64_t b{2};
};

TEST(PayloadPool, HomeReturnParksAndRecycles) {
  proto::PayloadArena arena;
  proto::ScopedPayloadArena scope(arena);
  { auto p = proto::make_pooled<Blob>(); }
  EXPECT_EQ(arena.parked_blocks(), 1u);
  EXPECT_EQ(arena.fresh_blocks(), 1u);
  { auto p = proto::make_pooled<Blob>(); }
  EXPECT_EQ(arena.reused_blocks(), 1u);
  EXPECT_EQ(arena.fresh_blocks(), 1u) << "warm pop must not touch the heap";
}

TEST(PayloadPool, ForeignReturnIsRefusedNotAdopted) {
  if (!proto::kPoolOwnerTagEnabled) {
    GTEST_SKIP() << "owner tags compiled out (release build without "
                    "HC3I_POOL_OWNER_TAG)";
  }
  proto::PayloadArena home;
  proto::PayloadArena other;
  std::shared_ptr<Blob> p;
  {
    proto::ScopedPayloadArena scope(home);
    p = proto::make_pooled<Blob>();
  }
  {
    // Drop the block while a *different* arena is current: it must be
    // heap-freed and counted, never recycled into the wrong free list —
    // that's the cross-shard-recycle tripwire.
    proto::ScopedPayloadArena scope(other);
    p.reset();
    EXPECT_EQ(other.parked_blocks(), 0u);
    EXPECT_EQ(other.foreign_returns(), 1u);
  }
  EXPECT_EQ(home.parked_blocks(), 0u);
}

TEST(PayloadPool, BlockMayOutliveItsArena) {
  // A payload that escapes its run (a held shared_ptr) must stay valid after
  // the owning arena is gone and free cleanly through the heap path.  Under
  // ASan this test is the teardown regression: the old function-local-static
  // free lists needed an intentional-leak workaround here.
  std::shared_ptr<Blob> p;
  {
    proto::PayloadArena arena;
    proto::ScopedPayloadArena scope(arena);
    p = proto::make_pooled<Blob>();
  }
  EXPECT_EQ(p->a, 1u);
  p.reset();  // no arena installed: plain heap free
}

TEST(PayloadPool, NoArenaMeansPlainHeapTraffic) {
  ASSERT_EQ(proto::PayloadArena::current(), nullptr);
  auto p = proto::make_pooled<Blob>();
  EXPECT_EQ(p->b, 2u);
  p.reset();  // nothing parked anywhere, nothing to leak past main()
}

TEST(PayloadPool, ScopesNestAndRestore) {
  proto::PayloadArena outer;
  proto::PayloadArena inner;
  proto::ScopedPayloadArena s1(outer);
  EXPECT_EQ(proto::PayloadArena::current(), &outer);
  {
    proto::ScopedPayloadArena s2(inner);
    EXPECT_EQ(proto::PayloadArena::current(), &inner);
  }
  EXPECT_EQ(proto::PayloadArena::current(), &outer);
}

TEST(PayloadPool, CrossThreadArenasNeverInterleave) {
  // Each thread installs its own arena and churns allocations; with owner
  // tags on, any cross-thread recycle would show as a foreign return (and
  // as a race under the TSan build of this binary).
  auto churn = [] {
    proto::PayloadArena arena;
    proto::ScopedPayloadArena scope(arena);
    std::vector<std::shared_ptr<Blob>> held;
    for (int i = 0; i < 2000; ++i) {
      held.push_back(proto::make_pooled<Blob>());
      if (held.size() > 16) held.clear();
    }
    held.clear();
    EXPECT_EQ(arena.foreign_returns(), 0u);
    EXPECT_GT(arena.reused_blocks(), 0u);
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) pool.emplace_back(churn);
  for (std::thread& t : pool) t.join();
}

TEST(PayloadPool, ReleaseAllEmptiesTheArena) {
  proto::PayloadArena arena;
  {
    proto::ScopedPayloadArena scope(arena);
    { auto a = proto::make_pooled<Blob>(); }
    { auto b = proto::make_pooled<Blob>(); }
  }
  EXPECT_GT(arena.parked_blocks(), 0u);
  arena.release_all();
  EXPECT_EQ(arena.parked_blocks(), 0u);
}

// ---------------------------------------------------------------------------
// The sweep config kind
// ---------------------------------------------------------------------------

TEST(SweepConfig, ParsesFullFile) {
  const char* text =
      "[sweep]\n"
      "seeds = 2..4\n"
      "protocol = independent\n"
      "\n"
      "[topology tiny]\n"
      "preset = small\n"
      "clusters = 2\n"
      "nodes = 4\n"
      "\n"
      "[topology ring]\n"
      "preset = scale\n"
      "clusters = 5\n"
      "nodes = 10\n"
      "minutes = 15\n"
      "\n"
      "[campaign clean]\n"
      "kind = none\n"
      "[campaign faulty]\n"
      "kind = reference\n";
  const batch::SweepSpec sweep = batch::parse_sweep(text, "test.ini");
  ASSERT_EQ(sweep.topologies.size(), 2u);
  EXPECT_EQ(sweep.topologies[0].name, "tiny");
  EXPECT_EQ(sweep.topologies[1].name, "ring");
  EXPECT_EQ(sweep.topologies[1].spec->topology.cluster_count(), 5u);
  EXPECT_EQ(sweep.topologies[1].spec->application.total_time, minutes(15));
  ASSERT_EQ(sweep.campaigns.size(), 2u);
  EXPECT_EQ(sweep.campaigns[1].kind, batch::CampaignPoint::Kind::kReference);
  EXPECT_EQ(sweep.seeds, (std::vector<std::uint64_t>{2, 3, 4}));
  EXPECT_EQ(sweep.protocol, driver::ProtocolKind::kIndependent);
  EXPECT_EQ(sweep.runs(), 12u);
}

TEST(SweepConfig, DefaultsSeedsAndCampaigns) {
  const batch::SweepSpec sweep = batch::parse_sweep(
      "[topology t]\npreset = small\nclusters = 2\nnodes = 3\n");
  EXPECT_EQ(sweep.seeds, (std::vector<std::uint64_t>{1}));
  ASSERT_EQ(sweep.campaigns.size(), 1u);
  EXPECT_EQ(sweep.campaigns[0].kind, batch::CampaignPoint::Kind::kNone);
}

TEST(SweepConfig, RejectsMalformedSweeps) {
  using config::ParseError;
  // No topology axis at all.
  EXPECT_THROW(batch::parse_sweep("[sweep]\nseeds = 1\n"), ParseError);
  // Unknown section / key / preset / campaign kind.
  EXPECT_THROW(batch::parse_sweep("[bogus]\n"), ParseError);
  EXPECT_THROW(batch::parse_sweep("[sweep]\nfrobnicate = 1\n"), ParseError);
  EXPECT_THROW(
      batch::parse_sweep("[topology t]\npreset = toroidal\nclusters = 2\n"),
      ParseError);
  EXPECT_THROW(batch::parse_sweep("[topology t]\npreset = small\n"
                                  "[campaign c]\nkind = mystery\n"),
               ParseError);
  // Duplicate [sweep].
  EXPECT_THROW(batch::parse_sweep("[sweep]\n[sweep]\n[topology t]\n"),
               ParseError);
  // Overlap campaign demands >= 4 clusters; a 2-cluster topology fails
  // validation, surfaced as a ParseError with the file origin.
  EXPECT_THROW(batch::parse_sweep("[topology t]\npreset = small\n"
                                  "clusters = 2\nnodes = 3\n"
                                  "[campaign o]\nkind = overlap\n"),
               ParseError);
}

TEST(SweepConfig, SeedListSyntax) {
  EXPECT_EQ(batch::parse_seed_list("3..6"),
            (std::vector<std::uint64_t>{3, 4, 5, 6}));
  EXPECT_EQ(batch::parse_seed_list("7"), (std::vector<std::uint64_t>{7}));
  EXPECT_EQ(batch::parse_seed_list("1,9,4"),
            (std::vector<std::uint64_t>{1, 9, 4}));
  EXPECT_THROW(batch::parse_seed_list("5..2"), config::ParseError);
  EXPECT_THROW(batch::parse_seed_list("a..b"), config::ParseError);
  EXPECT_THROW(batch::parse_seed_list(""), config::ParseError);
  EXPECT_THROW(batch::parse_seed_list("1,x"), config::ParseError);
}

TEST(SweepExpand, GridOrderIsTopologyMajor) {
  batch::SweepSpec sweep;
  sweep.topologies = {batch::small_topology(2, 4), batch::small_topology(3, 4)};
  sweep.campaigns = {batch::no_campaign(), batch::reference_campaign()};
  sweep.seeds = {1, 2};
  const std::vector<batch::RunCase> cases = batch::expand(sweep);
  ASSERT_EQ(cases.size(), 8u);
  EXPECT_EQ(cases[0].name(), "small_2x4/none s=1");
  EXPECT_EQ(cases[1].name(), "small_2x4/none s=2");
  EXPECT_EQ(cases[2].name(), "small_2x4/faulty s=1");
  EXPECT_EQ(cases[4].name(), "small_3x4/none s=1");
  EXPECT_EQ(cases[7].name(), "small_3x4/faulty s=2");
  // Seeds of one cell share the materialised plan; cells do not.
  EXPECT_EQ(cases[2].plan, cases[3].plan);
  EXPECT_NE(cases[2].plan, cases[6].plan);
  EXPECT_EQ(cases[0].plan, nullptr);
}

TEST(SweepExpand, ValidationRejectsBadGrids) {
  batch::SweepSpec empty;
  EXPECT_THROW(batch::expand(empty), CheckFailure);

  batch::SweepSpec sweep;
  sweep.topologies = {batch::small_topology(2, 3)};
  sweep.campaigns = {batch::overlap_campaign()};  // needs >= 4 clusters
  sweep.seeds = {1};
  EXPECT_THROW(batch::expand(sweep), CheckFailure);

  // An explicit plan is validated against *every* topology point.
  batch::SweepSpec mixed;
  mixed.topologies = {batch::small_topology(2, 4), batch::small_topology(2, 2)};
  fault::Campaign plan;
  plan.kills.push_back(fault::KillSpec{minutes(5), NodeId{6}});  // 2x4 only
  mixed.campaigns = {batch::explicit_campaign("k6", std::move(plan))};
  mixed.seeds = {1};
  EXPECT_THROW(batch::expand(mixed), CheckFailure);
}

}  // namespace
}  // namespace hc3i::testing
