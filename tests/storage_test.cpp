// Checkpoint-storage subsystem tests.
//
// The tentpole property: incremental dirty-range capture is lossless.  A
// materialized StateRegion driven through randomized touch sequences — with
// overlapping ranges, clamped tails, zero-touch rounds and payloads on both
// sides of the inline/spill boundary — must rebuild byte-exactly from the
// base + Σ deltas chain at *every* prefix, matching the full image a plain
// snapshot would have captured at that point (40 seeds).
//
// Alongside it: the backend cost models against their closed forms (local
// disk gated by the largest per-node chain, striped remote by the cluster
// total), ClcStore::chain_read_bytes walking a chain back to its nearest
// base (including the GC-rebased-oldest rule), the end-to-end exact-sum
// check — ckpt.* / recovery.read_us counters equal incident rows plus the
// post-campaign residual under each backend — and the regression test for
// the snapshot-size check that used to be missing (a fixture hardcoding
// state_bytes silently mis-sized all storage accounting).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "config/presets.hpp"
#include "config/spec.hpp"
#include "driver/run.hpp"
#include "fault/campaign.hpp"
#include "proto/clc_store.hpp"
#include "storage/backend.hpp"
#include "storage/state_region.hpp"
#include "test_util.hpp"
#include "util/check.hpp"

namespace hc3i::testing {
namespace {

using storage::CaptureMode;
using storage::CaptureRecord;
using storage::StateRegion;

// ---------------------------------------------------------------------------
// StateRegion: delta capture vs. the full-image reference model
// ---------------------------------------------------------------------------

/// Deterministic xorshift64 stream — the property suite's only entropy.
struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed * 0x9E3779B97F4A7C15ULL + 1) {}
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

TEST(StateRegionProperty, ChainRebuildsFullImageAtEveryPrefix) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    // Sizes straddle CaptureBytes::kInlineBytes so some deltas stay inline
    // and some spill.
    const std::uint64_t size = 16 + rng.below(240);
    StateRegion region(size, StateRegion::Content::kMaterialized);
    std::vector<CaptureRecord> chain;
    std::vector<std::vector<std::uint8_t>> images;  // full-image reference

    const std::uint64_t captures = 4 + rng.below(5);
    for (std::uint64_t cap = 0; cap < captures; ++cap) {
      const std::uint64_t touches = rng.below(6);  // sometimes zero
      for (std::uint64_t t = 0; t < touches; ++t) {
        // Offsets may land past the end (clamped), lengths overlap freely.
        region.touch(rng.below(size + 8), rng.below(size / 2 + 2),
                     rng.next());
      }
      const CaptureRecord rec = region.capture(CaptureMode::kIncremental);
      if (cap == 0) {
        // No base yet: the first capture degrades to a full image.
        EXPECT_FALSE(rec.incremental) << "seed " << seed;
        EXPECT_EQ(rec.length, size) << "seed " << seed;
      } else {
        EXPECT_TRUE(rec.incremental) << "seed " << seed;
        if (touches == 0) {
          EXPECT_EQ(rec.length, 0u) << "zero touches must capture free";
        }
      }
      chain.push_back(rec);
      images.push_back(region.contents());
    }

    for (std::size_t k = 1; k <= chain.size(); ++k) {
      const std::vector<CaptureRecord> prefix(chain.begin(),
                                              chain.begin() + k);
      EXPECT_EQ(StateRegion::rebuild(size, prefix), images[k - 1])
          << "seed " << seed << " diverged at chain prefix " << k;
    }
  }
}

TEST(StateRegionProperty, CaptureNeverPerturbsContents) {
  // Two regions fed the identical touch sequence, one capturing after every
  // round, must hold identical bytes throughout — capture is observation.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng a_rng(seed), b_rng(seed);
    StateRegion a(100, StateRegion::Content::kMaterialized);
    StateRegion b(100, StateRegion::Content::kMaterialized);
    for (int round = 0; round < 8; ++round) {
      for (int t = 0; t < 3; ++t) {
        a.touch(a_rng.below(100), a_rng.below(50), a_rng.next());
        b.touch(b_rng.below(100), b_rng.below(50), b_rng.next());
      }
      a.capture(CaptureMode::kIncremental);
      EXPECT_EQ(a.contents(), b.contents()) << "seed " << seed;
    }
  }
}

TEST(StateRegion, WatermarkTracksTouchedSpan) {
  StateRegion region(1000);
  EXPECT_FALSE(region.dirty());
  region.touch(100, 50);
  EXPECT_EQ(region.dirty_bytes(), 50u);
  region.touch(120, 100);  // overlapping extension
  EXPECT_EQ(region.dirty_bytes(), 120u);  // [100, 220)
  region.touch(990, 100);  // clamped at the region end
  EXPECT_EQ(region.dirty_bytes(), 900u);  // [100, 1000)
  region.touch(2000, 10);  // entirely out of range: ignored
  EXPECT_EQ(region.dirty_bytes(), 900u);
  region.touch(5, 0);  // zero length: ignored
  EXPECT_EQ(region.dirty_bytes(), 900u);
}

TEST(StateRegion, CaptureModesAndChainBases) {
  StateRegion region(256);
  // First capture is a full base even when incremental was asked for.
  CaptureRecord base = region.capture(CaptureMode::kIncremental);
  EXPECT_FALSE(base.incremental);
  EXPECT_EQ(base.length, 256u);

  region.touch(10, 20);
  const CaptureRecord delta = region.capture(CaptureMode::kIncremental);
  EXPECT_TRUE(delta.incremental);
  EXPECT_EQ(delta.offset, 10u);
  EXPECT_EQ(delta.length, 20u);

  // A full capture restarts the chain regardless of dirt.
  region.touch(50, 5);
  const CaptureRecord full = region.capture(CaptureMode::kFull);
  EXPECT_FALSE(full.incremental);
  EXPECT_EQ(full.length, 256u);

  // reset_base(): the next incremental capture is full again (restore made
  // the restored image the baseline, not this region's history).
  region.touch(1, 1);
  region.reset_base();
  const CaptureRecord rebased = region.capture(CaptureMode::kIncremental);
  EXPECT_FALSE(rebased.incremental);
  EXPECT_EQ(rebased.length, 256u);
}

TEST(StateRegion, InlineSpillBoundary) {
  StateRegion region(128, StateRegion::Content::kMaterialized);
  region.capture(CaptureMode::kFull);  // establish the base

  region.touch(0, storage::CaptureBytes::kInlineBytes);
  CaptureRecord at_boundary = region.capture(CaptureMode::kIncremental);
  EXPECT_EQ(at_boundary.bytes.size(), storage::CaptureBytes::kInlineBytes);
  EXPECT_FALSE(at_boundary.bytes.spilled());

  region.touch(0, storage::CaptureBytes::kInlineBytes + 1);
  CaptureRecord past_boundary = region.capture(CaptureMode::kIncremental);
  EXPECT_EQ(past_boundary.bytes.size(),
            storage::CaptureBytes::kInlineBytes + 1);
  EXPECT_TRUE(past_boundary.bytes.spilled());
}

TEST(StateRegion, RebuildRejectsMalformedChains) {
  EXPECT_THROW(StateRegion::rebuild(64, {}), CheckFailure);
  // A chain must open with a full capture of the right size.
  StateRegion region(64, StateRegion::Content::kMaterialized);
  region.capture(CaptureMode::kFull);
  region.touch(0, 8);
  const CaptureRecord delta = region.capture(CaptureMode::kIncremental);
  EXPECT_THROW(StateRegion::rebuild(64, {delta}), CheckFailure);
  EXPECT_THROW(StateRegion(0), CheckFailure);
}

// ---------------------------------------------------------------------------
// Backend cost models against their closed forms
// ---------------------------------------------------------------------------

config::StorageSpec backend_spec(config::StorageSpec::Kind kind) {
  config::StorageSpec spec;
  spec.kind = kind;
  spec.latency = milliseconds(5);
  spec.write_bytes_per_sec = 100e6;
  spec.read_bytes_per_sec = 200e6;
  spec.stripe_width = 4;
  return spec;
}

TEST(Backend, LocalDiskGatedByLargestPerNodeChain) {
  const auto be = storage::make_backend(
      backend_spec(config::StorageSpec::Kind::kLocalDisk), 8);
  ASSERT_NE(be, nullptr);
  EXPECT_STREQ(be->name(), "local-disk");
  // latency + bytes / write_bw
  EXPECT_EQ(be->node_write_time(100'000'000), milliseconds(5) + seconds(1));
  // Reads run on per-node disks in parallel: only max_node_bytes gates.
  EXPECT_EQ(be->cluster_read_time(1'000'000'000, 200'000'000),
            milliseconds(5) + seconds(1));
  // Zero bytes cost nothing — not even the latency (nothing to persist).
  EXPECT_EQ(be->node_write_time(0), SimTime::zero());
  EXPECT_EQ(be->cluster_read_time(0, 0), SimTime::zero());
}

TEST(Backend, StripedRemoteMultipliesBandwidthAndGatesOnTotal) {
  const auto be = storage::make_backend(
      backend_spec(config::StorageSpec::Kind::kStripedRemote), 8);
  ASSERT_NE(be, nullptr);
  EXPECT_STREQ(be->name(), "striped-remote");
  // Writes chunk across 4 donors: latency + bytes / (write_bw * 4).
  EXPECT_EQ(be->node_write_time(400'000'000), milliseconds(5) + seconds(1));
  // The shared store serves all chains: total_bytes gates, max is ignored.
  EXPECT_EQ(be->cluster_read_time(800'000'000, 100),
            milliseconds(5) + seconds(1));
}

TEST(Backend, StripeWidthClampsToClusterSize) {
  const auto narrow = storage::make_backend(
      backend_spec(config::StorageSpec::Kind::kStripedRemote), 2);
  // Only 2 nodes to stripe across: width 2, not the configured 4.
  EXPECT_EQ(narrow->node_write_time(200'000'000),
            milliseconds(5) + seconds(1));
}

TEST(Backend, NoneMeansNoBackend) {
  EXPECT_EQ(storage::make_backend(
                backend_spec(config::StorageSpec::Kind::kNone), 8),
            nullptr);
}

// ---------------------------------------------------------------------------
// ClcStore: chain read accounting
// ---------------------------------------------------------------------------

proto::ClcRecord chain_rec(SeqNum sn, std::uint32_t nodes,
                           std::uint64_t state, std::uint64_t delta,
                           bool incremental) {
  proto::ClcRecord rec;
  rec.sn = sn;
  rec.ddv = proto::Ddv(1, ClusterId{0}, sn);
  rec.parts.resize(nodes);
  for (proto::NodePart& p : rec.parts) {
    p.app.state_bytes = state;
    p.app.delta_bytes = incremental ? delta : state;
    p.app.incremental = incremental;
  }
  return rec;
}

TEST(ClcStore, ChainReadWalksBackToNearestBase) {
  proto::ClcStore store(ClusterId{0}, 2);
  store.commit(chain_rec(1, 2, 1000, 1000, false));
  store.commit(chain_rec(2, 2, 1000, 100, true));
  store.commit(chain_rec(3, 2, 1000, 50, true));
  store.commit(chain_rec(4, 2, 1000, 1000, false));  // a fresh base
  EXPECT_EQ(store.chain_read_bytes(1, 0), 1000u);
  EXPECT_EQ(store.chain_read_bytes(2, 0), 1100u);
  EXPECT_EQ(store.chain_read_bytes(3, 1), 1150u);
  // Restoring from the fresh base never re-reads the older chain.
  EXPECT_EQ(store.chain_read_bytes(4, 0), 1000u);
}

TEST(ClcStore, GcRebasedOldestDeltaChargedAsFullImage) {
  proto::ClcStore store(ClusterId{0}, 2);
  store.commit(chain_rec(1, 2, 1000, 1000, false));
  store.commit(chain_rec(2, 2, 1000, 100, true));
  store.commit(chain_rec(3, 2, 1000, 50, true));
  EXPECT_EQ(store.prune_before(2), 1u);  // GC drops the true base
  // The oldest retained record acts as a rebased full image.
  EXPECT_EQ(store.chain_read_bytes(2, 0), 1000u);
  EXPECT_EQ(store.chain_read_bytes(3, 0), 1050u);
}

TEST(ClcStore, StorageBytesCountsDeltasNotImages) {
  proto::ClcStore store(ClusterId{0}, 2);  // default replication 1
  store.commit(chain_rec(1, 2, 1000, 1000, false));
  store.commit(chain_rec(2, 2, 1000, 100, true));
  // (2 parts x 1000 + 2 parts x 100) x (1 + replication)
  EXPECT_EQ(store.storage_bytes(), (2000u + 200u) * 2u);
}

// ---------------------------------------------------------------------------
// End to end: a kill mid-interval under each backend, exact-sum telemetry
// ---------------------------------------------------------------------------

driver::RunOptions storage_run(config::StorageSpec::Kind kind,
                               bool incremental) {
  driver::RunOptions opts;
  opts.spec = config::scale_federation_spec(2, 6, minutes(30));
  config::StorageSpec st;
  st.kind = kind;
  st.incremental = incremental;
  for (config::ClusterSpec& c : opts.spec.topology.clusters) c.storage = st;
  // Mid-interval kill: 30 s past a 5-minute CLC-timer boundary, so the
  // rollback discards real progress and recovery reads a non-trivial chain.
  opts.campaign.kills.push_back(
      fault::KillSpec{minutes(12) + seconds(30), NodeId{1}});
  return opts;
}

TEST(StorageE2E, IncidentRowsPlusResidualSumExactlyUnderEachBackend) {
  for (const auto kind : {config::StorageSpec::Kind::kLocalDisk,
                          config::StorageSpec::Kind::kStripedRemote}) {
    const auto result = driver::run_simulation(storage_run(kind, true));
    EXPECT_TRUE(result.violations.empty());
    ASSERT_EQ(result.incidents.size(), 1u);
    ASSERT_TRUE(result.fault_summary.has_residual);

    EXPECT_GT(result.counter("ckpt.bytes_written"), 0u);
    EXPECT_GT(result.counter("ckpt.stall_us"), 0u);
    EXPECT_GT(result.counter("recovery.read_us"), 0u);
    // The chain read happened during the incident's own interval.
    EXPECT_GT(result.incidents[0].recovery_read_us, 0u);

    const fault::Incident& res = result.fault_summary.residual;
    std::uint64_t bytes = res.ckpt_bytes_written;
    std::uint64_t saved = res.ckpt_bytes_delta_saved;
    std::uint64_t stall = res.ckpt_stall_us;
    std::uint64_t read = res.recovery_read_us;
    for (const fault::Incident& inc : result.incidents) {
      bytes += inc.ckpt_bytes_written;
      saved += inc.ckpt_bytes_delta_saved;
      stall += inc.ckpt_stall_us;
      read += inc.recovery_read_us;
    }
    EXPECT_EQ(bytes, result.counter("ckpt.bytes_written"));
    EXPECT_EQ(saved, result.counter("ckpt.bytes_delta_saved"));
    EXPECT_EQ(stall, result.counter("ckpt.stall_us"));
    EXPECT_EQ(read, result.counter("recovery.read_us"));
  }
}

TEST(StorageE2E, IncrementalCaptureSavesBytes) {
  const auto inc = driver::run_simulation(
      storage_run(config::StorageSpec::Kind::kLocalDisk, true));
  const auto full = driver::run_simulation(
      storage_run(config::StorageSpec::Kind::kLocalDisk, false));
  EXPECT_GT(inc.counter("ckpt.bytes_delta_saved"), 0u);
  EXPECT_EQ(full.counter("ckpt.bytes_delta_saved"), 0u);
  EXPECT_LT(inc.counter("ckpt.bytes_written"),
            full.counter("ckpt.bytes_written"));
}

TEST(StorageE2E, StorageChargedRunsAreDeterministic) {
  for (const auto kind : {config::StorageSpec::Kind::kLocalDisk,
                          config::StorageSpec::Kind::kStripedRemote}) {
    const auto opts = storage_run(kind, true);
    const auto a = driver::run_simulation(opts);
    const auto b = driver::run_simulation(opts);
    EXPECT_EQ(a.registry.dump(), b.registry.dump());
  }
}

TEST(StorageE2E, StorageOffLeavesNoCounterTrace) {
  // The golden-file contract: with no backend the ckpt.* counters are never
  // interned, so pre-storage dumps stay byte-identical.
  driver::RunOptions opts = storage_run(config::StorageSpec::Kind::kNone,
                                        true);
  const auto result = driver::run_simulation(opts);
  EXPECT_EQ(result.counter("ckpt.bytes_written"), 0u);
  EXPECT_EQ(result.counter("recovery.read_us"), 0u);
  EXPECT_EQ(result.registry.dump().find("ckpt."), std::string::npos);
  EXPECT_EQ(result.registry.dump().find("recovery.read"), std::string::npos);
}

// Regression: AppSnapshot.state_bytes was never validated against the
// declared application state size, so a fixture (or app) reporting the
// wrong size silently mis-sized every storage and lost-work figure.  The
// capture path now rejects the mismatch.
TEST(StorageE2E, MismatchedSnapshotStateSizeIsRejected) {
  config::RunSpec spec = tiny_spec();
  spec.timers.clusters[0].clc_period = minutes(5);
  MiniWorld w(spec, /*seed=*/1);
  w.apps[0]->state_bytes = 4096;  // disagrees with the declared 64 KiB
  EXPECT_THROW(w.settle(minutes(6)), CheckFailure);
}

}  // namespace
}  // namespace hc3i::testing
