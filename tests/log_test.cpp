// Unit tests for util/log: level gating, the enabled() guard, sink
// install/restore, and the HC3I_TRACE macro's skip-below-level contract.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/log.hpp"
#include "util/time.hpp"

namespace hc3i {
namespace {

/// Saves and restores the global trace configuration so these tests cannot
/// leak a level or sink into the rest of the suite.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = Trace::level();
    Trace::set_sink([this](const std::string& line) {
      lines_.push_back(line);
    });
  }
  void TearDown() override {
    Trace::set_level(saved_level_);
    Trace::set_sink({});  // restore stderr
  }

  std::vector<std::string> lines_;

 private:
  TraceLevel saved_level_{};
};

TEST_F(LogTest, EmitRespectsLevelGating) {
  Trace::set_level(TraceLevel::kStats);
  Trace::emit(TraceLevel::kProtocol, seconds(1), "hidden");
  Trace::emit(TraceLevel::kAction, seconds(1), "also hidden");
  EXPECT_TRUE(lines_.empty());

  Trace::emit(TraceLevel::kStats, seconds(1), "visible");
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0], "[1s] visible");
}

TEST_F(LogTest, HigherLevelsIncludeLowerOnes) {
  Trace::set_level(TraceLevel::kAction);
  Trace::emit(TraceLevel::kStats, SimTime::zero(), "a");
  Trace::emit(TraceLevel::kProtocol, SimTime::zero(), "b");
  Trace::emit(TraceLevel::kAction, SimTime::zero(), "c");
  EXPECT_EQ(lines_.size(), 3u);
}

TEST_F(LogTest, OffSilencesEverything) {
  Trace::set_level(TraceLevel::kOff);
  Trace::emit(TraceLevel::kStats, SimTime::zero(), "x");
  EXPECT_TRUE(lines_.empty());
}

TEST_F(LogTest, EnabledMatchesLevelOrdering) {
  Trace::set_level(TraceLevel::kProtocol);
  EXPECT_TRUE(Trace::enabled(TraceLevel::kStats));
  EXPECT_TRUE(Trace::enabled(TraceLevel::kProtocol));
  EXPECT_FALSE(Trace::enabled(TraceLevel::kAction));

  Trace::set_level(TraceLevel::kOff);
  EXPECT_FALSE(Trace::enabled(TraceLevel::kStats));
}

TEST_F(LogTest, PrefixesSimTimeLikeToString) {
  Trace::set_level(TraceLevel::kAction);
  const SimTime t = minutes(90) + milliseconds(2500);
  Trace::emit(TraceLevel::kAction, t, "payload");
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0], "[" + to_string(t) + "] payload");
}

TEST_F(LogTest, SinkInstallAndRestore) {
  Trace::set_level(TraceLevel::kStats);
  std::vector<std::string> other;
  Trace::set_sink([&other](const std::string& line) {
    other.push_back(line);
  });
  Trace::emit(TraceLevel::kStats, SimTime::zero(), "redirected");
  EXPECT_TRUE(lines_.empty());
  ASSERT_EQ(other.size(), 1u);
  EXPECT_EQ(other[0], "[0] redirected");

  // Re-installing the fixture sink routes lines back here; the dangling
  // reference to `other` must not be invoked afterwards.
  Trace::set_sink([this](const std::string& line) {
    lines_.push_back(line);
  });
  Trace::emit(TraceLevel::kStats, SimTime::zero(), "back");
  EXPECT_EQ(other.size(), 1u);
  EXPECT_EQ(lines_.size(), 1u);
}

TEST_F(LogTest, MacroSkipsFormattingBelowLevel) {
  Trace::set_level(TraceLevel::kStats);
  int evaluations = 0;
  const auto count = [&evaluations]() {
    ++evaluations;
    return "formatted";
  };
  HC3I_TRACE(kProtocol, SimTime::zero(), count());
  EXPECT_EQ(evaluations, 0);  // stream expression never evaluated
  EXPECT_TRUE(lines_.empty());

  Trace::set_level(TraceLevel::kProtocol);
  HC3I_TRACE(kProtocol, seconds(2), count() << " now");
  EXPECT_EQ(evaluations, 1);
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0], "[2s] formatted now");
}

TEST_F(LogTest, EmitReusesBufferAcrossCalls) {
  Trace::set_level(TraceLevel::kStats);
  // A long line followed by a short one: the reused buffer must not carry
  // stale tail bytes into the shorter rendering.
  Trace::emit(TraceLevel::kStats, seconds(1),
              std::string(128, 'x'));
  Trace::emit(TraceLevel::kStats, seconds(1), "short");
  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_EQ(lines_[1], "[1s] short");
}

TEST(FormatTime, MatchesToString) {
  const SimTime cases[] = {SimTime::zero(),   nanoseconds(5),
                           microseconds(150), milliseconds(3),
                           seconds(42),       minutes(5) + seconds(30),
                           hours(2) + minutes(3) + milliseconds(4500),
                           SimTime::infinity()};
  for (const SimTime t : cases) {
    char buf[kTimeBufSize];
    const std::size_t n = format_time(t, buf, sizeof buf);
    EXPECT_EQ(std::string(buf, n), to_string(t));
  }
}

}  // namespace
}  // namespace hc3i
