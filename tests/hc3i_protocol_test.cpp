// Scenario tests for the HC3I agent: 2PC CLCs, the communication-induced
// forcing rule, sender-side logging and acks — all failure-free paths.
// (Rollback scenarios live in hc3i_rollback_test.cpp.)

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace hc3i::testing {
namespace {

TEST(Hc3iBasic, InitialClcOnEveryCluster) {
  MiniWorld w(tiny_spec(3, 2), /*seed=*/1);
  w.settle();
  for (std::uint32_t c = 0; c < 3; ++c) {
    const auto& store = w.runtime->store(ClusterId{c});
    ASSERT_EQ(store.size(), 1u) << "cluster " << c;
    EXPECT_EQ(store.last().sn, 1u);  // paper §4: SN 1 at application start
    EXPECT_EQ(w.registry.get("clc.initial.c" + std::to_string(c)), 1u);
  }
}

TEST(Hc3iBasic, SnAgreedClusterWideAfterCommit) {
  MiniWorld w(tiny_spec(2, 4), 1);
  w.settle();
  for (const auto* a : w.runtime->cluster_agents(ClusterId{0})) {
    EXPECT_EQ(a->sn(), 1u);
    EXPECT_FALSE(a->in_round());
    EXPECT_EQ(a->ddv().at(ClusterId{0}), 1u);
    EXPECT_EQ(a->ddv().at(ClusterId{1}), 0u);
  }
}

TEST(Hc3iBasic, IntraClusterSendNeedsNoCheckpoint) {
  MiniWorld w(tiny_spec(2, 3), 1);
  w.settle();
  const std::uint64_t seq = w.send(NodeId{1}, NodeId{2});
  w.settle();
  EXPECT_TRUE(w.delivered(NodeId{2}, seq));
  EXPECT_EQ(w.runtime->store(ClusterId{0}).size(), 1u);  // only the initial
  EXPECT_EQ(w.registry.get("cic.forced_triggers.c0"), 0u);
  // Intra-cluster messages are never logged (paper §3.3).
  EXPECT_EQ(w.agent(NodeId{1}).log_size(), 0u);
}

TEST(Hc3iBasic, FreshSnForcesClcBeforeDelivery) {
  // Paper §4, message m1: cluster 0's SN (1) exceeds cluster 1's DDV entry
  // (0), so delivery waits for a forced CLC.
  MiniWorld w(tiny_spec(2, 3), 1);
  w.settle();
  const NodeId receiver{3};  // first node of cluster 1
  const std::uint64_t seq = w.send(NodeId{0}, receiver);
  w.settle();
  EXPECT_TRUE(w.delivered(receiver, seq));
  const auto& store1 = w.runtime->store(ClusterId{1});
  ASSERT_EQ(store1.size(), 2u);
  EXPECT_TRUE(store1.last().forced);
  EXPECT_EQ(store1.last().sn, 2u);
  // The forced CLC's DDV is stamped with the observed SN (paper §3.2).
  EXPECT_EQ(store1.last().ddv.at(ClusterId{0}), 1u);
  EXPECT_EQ(w.registry.get("clc.forced.c1"), 1u);
  // ... and the CLC precedes the delivery: the snapshot must not contain
  // the message.
  EXPECT_EQ(store1.last().parts[0].dedup.size(), 0u);
}

TEST(Hc3iBasic, SameSnDoesNotForceAgain) {
  // Paper §4, message m2: the second message with an unchanged sender SN
  // is delivered without a new CLC.
  MiniWorld w(tiny_spec(2, 3), 1);
  w.settle();
  const std::uint64_t s1 = w.send(NodeId{0}, NodeId{3});
  w.settle();
  const std::uint64_t s2 = w.send(NodeId{1}, NodeId{4});
  w.settle();
  EXPECT_TRUE(w.delivered(NodeId{3}, s1));
  EXPECT_TRUE(w.delivered(NodeId{4}, s2));
  EXPECT_EQ(w.runtime->store(ClusterId{1}).size(), 2u);  // initial + 1 forced
  EXPECT_EQ(w.registry.get("clc.forced.c1"), 1u);
}

TEST(Hc3iBasic, SenderLogsInterClusterMessages) {
  MiniWorld w(tiny_spec(2, 3), 1);
  w.settle();
  w.send(NodeId{0}, NodeId{3});
  w.settle();
  const auto& log = w.agent(NodeId{0}).msg_log();
  ASSERT_EQ(log.size(), 1u);
  // Ack carries the receiver's post-forced-CLC SN (the paper's "local
  // SN + 1"): the initial CLC gave SN 1, the forced CLC made it 2.
  EXPECT_TRUE(log.entries()[0].acked);
  EXPECT_EQ(log.entries()[0].ack_sn, 2u);
}

TEST(Hc3iBasic, TimerDrivenUnforcedClcs) {
  config::RunSpec spec = tiny_spec(2, 3);
  spec.timers.clusters[0].clc_period = minutes(5);
  MiniWorld w(spec, 1);
  w.sim.run_until(minutes(21));
  // Initial at ~0, then timer CLCs at ~5, 10, 15, 20 minutes.
  EXPECT_EQ(w.registry.get("clc.unforced.c0"), 4u);
  EXPECT_EQ(w.registry.get("clc.unforced.c1"), 0u);  // infinite timer
  EXPECT_EQ(w.runtime->store(ClusterId{0}).last().sn, 5u);
}

TEST(Hc3iBasic, ForcedClcResetsTimer) {
  // Paper §5.2: "the timer is reset when a forced CLC is established", so
  // the unforced CLC count drops below total_time/period.
  config::RunSpec spec = tiny_spec(2, 3);
  spec.timers.clusters[1].clc_period = minutes(10);
  MiniWorld w(spec, 1);
  w.settle();
  // At t≈8min, force a CLC in cluster 1 (fresh SN from cluster 0).
  w.sim.run_until(minutes(8));
  w.send(NodeId{0}, NodeId{3});
  w.sim.run_until(minutes(19));
  // Without the reset an unforced CLC would have fired at ~10min.
  // With it, the first unforced CLC lands at ~18min.
  EXPECT_EQ(w.registry.get("clc.forced.c1"), 1u);
  EXPECT_EQ(w.registry.get("clc.unforced.c1"), 1u);
}

TEST(Hc3iBasic, AppMessagesQueuedDuringRound) {
  // Paper §3.1: "Between the request and the commit messages, application
  // messages are queued."  With a large state size the 2PC window is long
  // enough to observe the queueing.
  config::RunSpec spec = tiny_spec(2, 3);
  spec.application.state_bytes = 50 * 1024 * 1024;  // ~5s replica transfer
  MiniWorld w(spec, 1);
  w.settle(seconds(1));  // initial round still replicating
  EXPECT_TRUE(w.agent(NodeId{0}).in_round());
  const std::uint64_t seq = w.send(NodeId{0}, NodeId{1});
  w.settle(seconds(1));
  EXPECT_FALSE(w.delivered(NodeId{1}, seq));  // frozen
  EXPECT_GE(w.registry.get("clc.queued_sends.c0"), 1u);
  w.settle(seconds(30));
  EXPECT_TRUE(w.delivered(NodeId{1}, seq));  // drained after commit
}

TEST(Hc3iBasic, ReplicaTransfersModelStableStorage) {
  MiniWorld w(tiny_spec(1, 3), 1);
  w.settle();
  // Initial CLC: each of the 3 nodes ships one replica to its neighbour.
  EXPECT_GE(w.registry.get("net.ctl.intra.bytes"),
            3u * w.spec_.application.state_bytes);
}

TEST(Hc3iBasic, SingleNodeClustersNeedNoReplica) {
  MiniWorld w(tiny_spec(2, 1), 1);
  w.settle();
  EXPECT_EQ(w.runtime->store(ClusterId{0}).size(), 1u);
  EXPECT_EQ(w.runtime->store(ClusterId{0}).replication(), 0u);
}

TEST(Hc3iBasic, DemandsAbsorbedByActiveRound) {
  // Two messages with fresh SNs arriving back-to-back produce one forced
  // CLC, not two: the second demand folds into the running round.
  MiniWorld w(tiny_spec(2, 4), 1);
  w.settle();
  const std::uint64_t s1 = w.send(NodeId{0}, NodeId{4});
  const std::uint64_t s2 = w.send(NodeId{1}, NodeId{5});
  w.settle();
  EXPECT_TRUE(w.delivered(NodeId{4}, s1));
  EXPECT_TRUE(w.delivered(NodeId{5}, s2));
  EXPECT_EQ(w.registry.get("clc.forced.c1"), 1u);
}

TEST(Hc3iBasic, ChannelStateCapturedAtCommit) {
  // An intra-cluster message in flight across a commit lands in the CLC's
  // channel state (Chandy-Lamport capture, DESIGN.md §3).
  config::RunSpec spec = tiny_spec(2, 3);
  spec.application.state_bytes = 50 * 1024 * 1024;  // long 2PC window
  MiniWorld w(spec, 1);
  w.settle(seconds(1));
  ASSERT_TRUE(w.agent(NodeId{3}).in_round());
  // Cluster 1's nodes are mid-round; an intra message sent *into* the
  // round... sends are queued, so instead park one in the network by
  // sending right before the request lands. Easiest deterministic variant:
  // let the round finish, start a new forced one, and check that deferred
  // arrivals are recorded.
  w.settle(seconds(30));
  const std::uint64_t seq = w.send(NodeId{3}, NodeId{4});
  w.settle();
  EXPECT_TRUE(w.delivered(NodeId{4}, seq));
}

TEST(Hc3iBasic, MessageCensusMatchesLedger) {
  MiniWorld w(tiny_spec(2, 3), 1);
  w.settle();
  w.send(NodeId{0}, NodeId{1});
  w.send(NodeId{0}, NodeId{3});
  w.send(NodeId{4}, NodeId{5});
  w.settle();
  EXPECT_EQ(w.registry.get("net.app.pair.0.0"), 1u);
  EXPECT_EQ(w.registry.get("net.app.pair.0.1"), 1u);
  EXPECT_EQ(w.registry.get("net.app.pair.1.1"), 1u);
  EXPECT_TRUE(w.fed.ledger().validate(false).empty());
}

TEST(Hc3iTransitive, FullDdvPiggybackReducesForcedClcs) {
  // Paper §7: with transitive DDVs, C2 learns C0's SN through C1's relay,
  // so a later direct C0 -> C2 message with that SN no longer forces.
  auto run = [](bool transitive) {
    core::Hc3iOptions opts;
    opts.transitive_ddv = transitive;
    MiniWorld w(tiny_spec(3, 2), 1, opts);
    w.settle();
    // C0 -> C1 (forces in C1; C1's commit records DDV[0] = 1).
    w.send(NodeId{0}, NodeId{2});
    w.settle();
    // C1 -> C2 (forces in C2; with the extension C2 also merges DDV[0]=1).
    w.send(NodeId{2}, NodeId{4});
    w.settle();
    // C0 -> C2 with SN 1: forces only without the extension.
    w.send(NodeId{0}, NodeId{4});
    w.settle();
    return w.registry.get("clc.forced.c2");
  };
  EXPECT_EQ(run(false), 2u);
  EXPECT_EQ(run(true), 1u);
}

TEST(Hc3iBasic, DeliveryWaitsForChainedForcedClc) {
  // A message carrying SN 2 arrives while DDV[src] is 0 after SN 1 was
  // observed but never committed... exercise the wait queue by sending
  // from a cluster that checkpoints between two sends.
  config::RunSpec spec = tiny_spec(2, 3);
  spec.timers.clusters[0].clc_period = minutes(2);
  MiniWorld w(spec, 1);
  w.settle();
  const std::uint64_t s1 = w.send(NodeId{0}, NodeId{3});  // SN 1, forces
  w.sim.run_until(minutes(3));                            // cluster 0 -> SN 2
  const std::uint64_t s2 = w.send(NodeId{0}, NodeId{3});  // SN 2, forces again
  w.settle();
  EXPECT_TRUE(w.delivered(NodeId{3}, s1));
  EXPECT_TRUE(w.delivered(NodeId{3}, s2));
  EXPECT_EQ(w.registry.get("clc.forced.c1"), 2u);
  EXPECT_EQ(w.agent(NodeId{3}).waiting_forced(), 0u);
}

}  // namespace
}  // namespace hc3i::testing
