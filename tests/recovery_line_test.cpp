// Tests for the pure recovery-line computation — including a mechanised
// replay of the paper's worked example (Figure 5).

#include <gtest/gtest.h>

#include "proto/recovery_line.hpp"
#include "util/rng.hpp"

namespace hc3i::proto {
namespace {

ClcMeta meta(std::vector<SeqNum> entries, std::size_t self) {
  ClcMeta m;
  m.sn = entries[self];
  m.ddv = Ddv(entries.size(), ClusterId{static_cast<std::uint32_t>(self)}, 0);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    m.ddv.set(ClusterId{static_cast<std::uint32_t>(i)}, entries[i]);
  }
  return m;
}

/// The paper's Figure 5 execution, reconstructed from the prose of §4:
///   * every cluster stores its initial CLC (SN 1);
///   * m1 (C1 SN 1 -> C2) forces CLC2 in cluster 2 -> DDV (1, 2, 0);
///   * cluster 1 stores unforced CLCs; m3/m4 from C2 force CLCs in C3;
///   * m5 from C3 forces a CLC in C1.
/// Using 0-based cluster indices (paper's cluster k = index k-1), the
/// stored lists when the fault hits cluster 2 (index 1) are:
std::vector<std::vector<ClcMeta>> figure5_state() {
  std::vector<std::vector<ClcMeta>> state(3);
  // Cluster index 0 (paper C1): initial, unforced x2, then forced by m5
  // carrying C3's SN 4 (paper: rolls back to "its last CLC which has 4 in
  // cluster 3's entry").
  state[0] = {meta({1, 0, 0}, 0), meta({2, 0, 0}, 0), meta({3, 0, 0}, 0),
              meta({4, 0, 4}, 0)};
  // Cluster index 1 (paper C2): initial, forced by m1 (C1 SN 1), then a
  // later CLC; its last stored CLC has SN 3.
  state[1] = {meta({0, 1, 0}, 1), meta({1, 2, 0}, 1), meta({1, 3, 0}, 1)};
  // Cluster index 2 (paper C3): initial, forced by m3 (C2 SN 2), forced by
  // m4 (C2 SN 3), then one more.
  state[2] = {meta({0, 0, 1}, 2), meta({0, 2, 2}, 2), meta({0, 3, 3}, 2),
              meta({0, 3, 4}, 2)};
  return state;
}

TEST(RecoveryLine, PaperFigure5FaultInCluster2) {
  const auto state = figure5_state();
  // Fault in paper-C2 (index 1): it restores its last stored CLC, SN 3.
  const RecoveryLine line = compute_recovery_line(state, ClusterId{1});
  EXPECT_TRUE(line.rolled_back[1]);
  EXPECT_EQ(line.restored[1], 3u);

  // "Cluster 1 does not have any cluster 2 DDV entry greater than or equal
  // to the received SN ... it does not need to rollback" — from C2's alert
  // alone.  But cluster 3 must roll back to its CLC with C2-entry == 3,
  // whose SN is 3; its alert (SN 3) then forces cluster 1 back to its CLC
  // with 4 in cluster 3's entry... which is its last CLC (SN 4), and the
  // cascade stops ("no cluster has to rollback anymore").
  EXPECT_TRUE(line.rolled_back[2]);
  EXPECT_EQ(line.restored[2], 3u);
  EXPECT_TRUE(line.rolled_back[0]);
  EXPECT_EQ(line.restored[0], 4u);
}

TEST(RecoveryLine, FaultWithoutDependenciesIsLocal) {
  // Cluster 2 never received anything: a fault there rolls back only itself.
  auto state = figure5_state();
  state[2] = {meta({0, 0, 1}, 2), meta({0, 0, 2}, 2)};
  state[0] = {meta({1, 0, 0}, 0), meta({2, 0, 0}, 0)};
  const RecoveryLine line = compute_recovery_line(state, ClusterId{2});
  EXPECT_TRUE(line.rolled_back[2]);
  EXPECT_FALSE(line.rolled_back[0]);
  EXPECT_FALSE(line.rolled_back[1]);
  EXPECT_EQ(line.restored[0], 2u);  // untouched
}

TEST(RecoveryLine, FaultRestoresOwnLastClc) {
  const auto state = figure5_state();
  const RecoveryLine line = compute_recovery_line(state, ClusterId{0});
  EXPECT_TRUE(line.rolled_back[0]);
  EXPECT_EQ(line.restored[0], 4u);  // its own last CLC
  // Nobody depends on cluster 0 beyond what their stored DDVs cover:
  // cluster 1's DDV[0] is 1 < 4, cluster 2's is 0 < 4.
  EXPECT_FALSE(line.rolled_back[1]);
  EXPECT_FALSE(line.rolled_back[2]);
}

TEST(RecoveryLine, CascadePropagatesTransitively) {
  // C0 -> C1 -> C2 dependency chain: a fault in 0 drags everyone back.
  std::vector<std::vector<ClcMeta>> state(3);
  state[0] = {meta({1, 0, 0}, 0), meta({2, 0, 0}, 0), meta({3, 0, 0}, 0)};
  // C1 was forced by a message carrying C0's SN 3 (its CLC 2), then sent on.
  state[1] = {meta({0, 1, 0}, 1), meta({3, 2, 0}, 1)};
  // C2 was forced by a message carrying C1's SN 2.
  state[2] = {meta({0, 0, 1}, 2), meta({0, 2, 2}, 2)};
  // Fault in C0: restores SN 3. C1's DDV[0] = 3 >= 3 -> rolls to CLC sn=2.
  // C2's DDV[1] = 2 >= 2 -> rolls to its CLC sn=2.
  const RecoveryLine line = compute_recovery_line(state, ClusterId{0});
  EXPECT_EQ(line.restored[0], 3u);
  EXPECT_TRUE(line.rolled_back[1]);
  EXPECT_EQ(line.restored[1], 2u);
  EXPECT_TRUE(line.rolled_back[2]);
  EXPECT_EQ(line.restored[2], 2u);
}

TEST(RecoveryLine, RollbackTargetIsOldestQualifying) {
  std::vector<std::vector<ClcMeta>> state(2);
  state[0] = {meta({1, 0}, 0), meta({2, 0}, 0), meta({3, 0}, 0)};
  // Cluster 1 saw C0's SN 2 early (CLC sn=2) and again later (sn=3, 4).
  state[1] = {meta({0, 1}, 1), meta({2, 2}, 1), meta({2, 3}, 1),
              meta({3, 4}, 1)};
  // C0 cascades... directly fault C0 restoring SN 3; entry >= 3 first at
  // cluster 1's sn=4; but fault restores C0's LAST (sn=3), so alert SN is 3:
  // oldest CLC with ddv[0] >= 3 is sn=4.
  const RecoveryLine line = compute_recovery_line(state, ClusterId{0});
  EXPECT_TRUE(line.rolled_back[1]);
  EXPECT_EQ(line.restored[1], 4u);
}

TEST(RecoveryLine, MissingInitialCheckpointThrows) {
  std::vector<std::vector<ClcMeta>> state(2);
  state[0] = {meta({1, 0}, 0)};
  state[1] = {};  // no stored CLC at all
  EXPECT_THROW(compute_recovery_line(state, ClusterId{0}), CheckFailure);
}

TEST(RecoveryLine, UnorderedMetadataThrows) {
  std::vector<std::vector<ClcMeta>> state(1);
  state[0] = {meta({2}, 0), meta({1}, 0)};
  EXPECT_THROW(compute_recovery_line(state, ClusterId{0}), CheckFailure);
}

TEST(GcMinSns, Figure5Bound) {
  const auto state = figure5_state();
  const std::vector<SeqNum> mins = gc_min_restored_sns(state);
  // Worst case per cluster over the three failure scenarios; pruning below
  // these SNs can never remove a rollback target.
  ASSERT_EQ(mins.size(), 3u);
  EXPECT_EQ(mins[1], 3u);   // cluster 2 restores its last CLC in every case
  EXPECT_LE(mins[0], 4u);
  EXPECT_LE(mins[2], 3u);
  // Re-running the recovery line on the pruned lists must still succeed.
  auto pruned = state;
  for (std::size_t c = 0; c < pruned.size(); ++c) {
    auto& list = pruned[c];
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](const ClcMeta& m) { return m.sn < mins[c]; }),
               list.end());
    ASSERT_FALSE(list.empty());
  }
  for (std::uint32_t f = 0; f < 3; ++f) {
    EXPECT_NO_THROW(compute_recovery_line(pruned, ClusterId{f}));
  }
}

// Build random-but-wellformed checkpoint metadata: SNs increase by 1;
// a cluster's entry for peer p only moves up, never past p's max SN.
std::vector<std::vector<ClcMeta>> random_wellformed_state(std::uint64_t seed) {
  RngStream rng(seed, 0);
  const std::size_t n = 2 + rng.next_below(3);  // 2..4 clusters
  std::vector<std::vector<ClcMeta>> state(n);
  std::vector<SeqNum> max_sn(n);
  for (std::size_t c = 0; c < n; ++c) {
    max_sn[c] = 2 + static_cast<SeqNum>(rng.next_below(6));
  }
  for (std::size_t c = 0; c < n; ++c) {
    std::vector<SeqNum> entries(n, 0);
    for (SeqNum sn = 1; sn <= max_sn[c]; ++sn) {
      entries[c] = sn;
      for (std::size_t p = 0; p < n; ++p) {
        if (p == c) continue;
        // Occasionally observe a fresher SN from p (bounded by p's max).
        if (rng.bernoulli(0.4)) {
          const SeqNum cap = max_sn[p];
          const SeqNum bump = entries[p] + 1 + static_cast<SeqNum>(rng.next_below(2));
          entries[p] = std::min<SeqNum>(cap, std::max(entries[p], bump));
        }
      }
      state[c].push_back(meta(entries, c));
    }
  }
  return state;
}

/// The pre-solver fixpoint, kept verbatim as the reference model: a full
/// linear rescan for the effective DDV on every inner-loop call.  The
/// shipping LineSolver (binary search + incrementally maintained effective
/// indices, shared across the GC's per-fault fixpoints) must agree with
/// this on every input.
RecoveryLine naive_recovery_line(const std::vector<std::vector<ClcMeta>>& meta,
                                 ClusterId faulty) {
  const std::size_t n = meta.size();
  const auto current_ddv = [](const std::vector<ClcMeta>& metas,
                              SeqNum restored_sn) -> const Ddv& {
    const ClcMeta* best = nullptr;
    for (const auto& m : metas) {
      if (m.sn <= restored_sn) best = &m;
    }
    EXPECT_NE(best, nullptr);
    return best->ddv;
  };
  RecoveryLine line;
  line.restored.resize(n);
  line.rolled_back.assign(n, false);
  for (std::size_t c = 0; c < n; ++c) line.restored[c] = meta[c].back().sn;
  line.rolled_back[faulty.v] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!line.rolled_back[i]) continue;
      const SeqNum r_i = line.restored[i];
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const Ddv& ddv_j = current_ddv(meta[j], line.restored[j]);
        if (ddv_j.at(ClusterId{static_cast<std::uint32_t>(i)}) < r_i) continue;
        const ClcMeta* target = nullptr;
        for (const auto& m : meta[j]) {
          if (m.sn > line.restored[j]) break;
          if (m.ddv.at(ClusterId{static_cast<std::uint32_t>(i)}) >= r_i) {
            target = &m;
            break;
          }
        }
        EXPECT_NE(target, nullptr);
        if (target->sn < line.restored[j] || !line.rolled_back[j]) {
          line.restored[j] = target->sn;
          line.rolled_back[j] = true;
          changed = true;
        }
      }
    }
  }
  return line;
}

// Property: the shared-fixpoint solver agrees with the naive reference on
// every fault and on the GC bound, across random dependency structures.
class SolverEquivalenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverEquivalenceProperty, MatchesNaiveFixpointEverywhere) {
  const auto state = random_wellformed_state(GetParam());
  const std::size_t n = state.size();
  std::vector<SeqNum> naive_mins(n);
  for (std::size_t c = 0; c < n; ++c) naive_mins[c] = state[c].back().sn;
  for (std::uint32_t f = 0; f < n; ++f) {
    const RecoveryLine expect = naive_recovery_line(state, ClusterId{f});
    const RecoveryLine got = compute_recovery_line(state, ClusterId{f});
    EXPECT_EQ(got.restored, expect.restored) << "fault " << f;
    EXPECT_EQ(got.rolled_back, expect.rolled_back) << "fault " << f;
    for (std::size_t c = 0; c < n; ++c) {
      naive_mins[c] = std::min(naive_mins[c], expect.restored[c]);
    }
  }
  EXPECT_EQ(gc_min_restored_sns(state), naive_mins);
}

INSTANTIATE_TEST_SUITE_P(RandomDependencyGraphs, SolverEquivalenceProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

// Property: GC pruning at the computed bound never breaks any later
// recovery line, across random dependency structures.
class GcSafetyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GcSafetyProperty, PruneThenRecoverAlwaysWorks) {
  const auto state = random_wellformed_state(GetParam());
  const std::size_t n = state.size();
  const std::vector<SeqNum> mins = gc_min_restored_sns(state);
  auto pruned = state;
  for (std::size_t c = 0; c < n; ++c) {
    auto& list = pruned[c];
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](const ClcMeta& m) { return m.sn < mins[c]; }),
               list.end());
    ASSERT_FALSE(list.empty()) << "GC removed every checkpoint";
  }
  for (std::uint32_t f = 0; f < n; ++f) {
    RecoveryLine before{}, after{};
    ASSERT_NO_THROW(before = compute_recovery_line(state, ClusterId{f}));
    ASSERT_NO_THROW(after = compute_recovery_line(pruned, ClusterId{f}));
    // Pruning must not change where anyone lands.
    EXPECT_EQ(before.restored, after.restored);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDependencyGraphs, GcSafetyProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace hc3i::proto
