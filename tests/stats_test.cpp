// Unit tests for src/stats: accumulators, registry, table rendering.

#include <gtest/gtest.h>

#include "stats/accumulators.hpp"
#include "stats/registry.hpp"
#include "stats/table.hpp"
#include "util/check.hpp"

namespace hc3i::stats {
namespace {

TEST(Summary, EmptyIsNeutral) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, MeanAndVariance) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, MergeMatchesSequential) {
  Summary all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  Summary b;
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bin 0
  h.add(9.99);   // bin 9
  h.add(10.0);   // overflow (hi is exclusive)
  h.add(5.5);    // bin 5
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(5.0, 5.0, 10), CheckFailure);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckFailure);
}

TEST(Registry, CountersStartAtZero) {
  Registry r;
  EXPECT_EQ(r.get("nope"), 0u);
  r.inc("a");
  r.inc("a", 4);
  EXPECT_EQ(r.get("a"), 5u);
}

TEST(Registry, SetAndRaise) {
  Registry r;
  r.set("gauge", 10);
  r.raise("gauge", 5);
  EXPECT_EQ(r.get("gauge"), 10u);
  r.raise("gauge", 15);
  EXPECT_EQ(r.get("gauge"), 15u);
}

TEST(Registry, Summaries) {
  Registry r;
  r.observe("lat", 1.0);
  r.observe("lat", 3.0);
  EXPECT_EQ(r.summary("lat").count(), 2u);
  EXPECT_DOUBLE_EQ(r.summary("lat").mean(), 2.0);
  EXPECT_EQ(r.summary("absent").count(), 0u);
}

TEST(Registry, HandleAndNameApisShareStorage) {
  Registry r;
  Counter& c = r.counter("hits");
  c.inc();
  c.inc(4);
  EXPECT_EQ(r.get("hits"), 5u);       // name shim reads handle-backed storage
  r.inc("hits", 2);                   // and writes land where the handle reads
  EXPECT_EQ(c.value(), 7u);
  EXPECT_EQ(&r.counter("hits"), &c);  // re-resolution returns the same slot
  c.raise(3);
  EXPECT_EQ(c.value(), 7u);
  c.raise(11);
  EXPECT_EQ(r.get("hits"), 11u);
  c.set(2);
  EXPECT_EQ(r.get("hits"), 2u);

  Summary& s = r.summary_handle("lat");
  s.add(1.0);
  r.observe("lat", 3.0);
  EXPECT_EQ(r.summary("lat").count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(Registry, HandlesStayValidAsRegistryGrows) {
  Registry r;
  Counter& first = r.counter("first");
  first.inc();
  // Force enough interning to grow every internal structure several times.
  for (int i = 0; i < 3000; ++i) {
    r.counter("filler." + std::to_string(i)).inc();
  }
  first.inc();
  EXPECT_EQ(r.get("first"), 2u);
  EXPECT_EQ(r.counter_names().size(), 3001u);
}

TEST(Registry, ConstSummaryLookupTracksLaterObservations) {
  // Regression: the old implementation returned a shared static empty
  // summary for untouched names, so a reference taken before the first
  // observe() never saw the data.
  Registry r;
  const Registry& cr = r;
  const Summary& s = cr.summary("lat");
  EXPECT_EQ(s.count(), 0u);
  r.observe("lat", 4.0);
  r.observe("lat", 6.0);
  EXPECT_EQ(s.count(), 2u);  // the earlier reference sees the live slot
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // And the const read must not have invented a counter.
  EXPECT_TRUE(cr.counter_names().empty());
}

TEST(Registry, CopyIsDeepAndIndependent) {
  Registry r;
  r.counter("a").inc(3);
  r.observe("lat", 1.0);
  Registry copy = r;
  copy.counter("a").inc();
  copy.observe("lat", 9.0);
  EXPECT_EQ(r.get("a"), 3u);
  EXPECT_EQ(copy.get("a"), 4u);
  EXPECT_EQ(r.summary("lat").count(), 1u);
  EXPECT_EQ(copy.summary("lat").count(), 2u);
  r = copy;
  EXPECT_EQ(r.get("a"), 4u);
}

TEST(Registry, NamesSortedAndDump) {
  Registry r;
  r.inc("zulu");
  r.inc("alpha");
  const auto names = r.counter_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_NE(r.dump().find("zulu = 1"), std::string::npos);
}

TEST(Table, AsciiAlignsColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{42});
  t.row().cell("b").cell(3.14159, 2);
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_EQ(t.at(0, 1), "42");
}

TEST(Table, Markdown) {
  Table t({"a", "b"});
  t.row().cell("x").cell("y");
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("| x | y |"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"a"});
  t.row().cell("has,comma");
  EXPECT_NE(t.to_csv().find("\"has,comma\""), std::string::npos);
  Table q({"a"});
  q.row().cell("has\"quote");
  EXPECT_NE(q.to_csv().find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, GuardsAgainstMisuse) {
  Table t({"only"});
  EXPECT_THROW(t.cell("before row"), CheckFailure);
  t.row().cell("ok");
  EXPECT_THROW(t.cell("too many"), CheckFailure);
  EXPECT_THROW(Table({}), CheckFailure);
}

TEST(Series, RenderAlignedColumns) {
  Series a{"forced", {}, {}};
  Series b{"unforced", {}, {}};
  for (int x : {10, 20, 30}) {
    a.add(x, x * 1.0);
    b.add(x, x * 2.0);
  }
  const std::string out = render_series("timer", {a, b}, 1);
  EXPECT_NE(out.find("timer"), std::string::npos);
  EXPECT_NE(out.find("forced"), std::string::npos);
  EXPECT_NE(out.find("60.0"), std::string::npos);
}

TEST(Series, RejectsRaggedInput) {
  Series a{"a", {1.0}, {1.0}};
  Series b{"b", {1.0, 2.0}, {1.0, 2.0}};
  EXPECT_THROW(render_series("x", {a, b}), CheckFailure);
  EXPECT_THROW(render_series("x", {}), CheckFailure);
}

}  // namespace
}  // namespace hc3i::stats
