// Unit tests for src/config: the three file formats, round trips, presets.

#include <gtest/gtest.h>

#include "config/parser.hpp"
#include "config/presets.hpp"
#include "config/writer.hpp"

namespace hc3i::config {
namespace {

constexpr const char* kTopology = R"(
# reference topology (paper 5.2)
[federation]
clusters = 2
mtbf = 100h

[cluster 0]
nodes = 100
latency = 10us
bandwidth = 80Mb/s

[cluster 1]
nodes = 100
latency = 10us
bandwidth = 80Mb/s

[link 0 1]
latency = 150us
bandwidth = 100Mb/s
)";

TEST(Parser, SectionsAndComments) {
  const auto sections = parse_sections("# c\n[alpha 1 2]\nk = v # trail\n", "t");
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].name, "alpha");
  EXPECT_EQ(sections[0].args, (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(sections[0].values.at("k"), "v");
}

TEST(Parser, RejectsMalformedLines) {
  EXPECT_THROW(parse_sections("[unterminated\n", "t"), ParseError);
  EXPECT_THROW(parse_sections("key = early\n", "t"), ParseError);
  EXPECT_THROW(parse_sections("[s]\nno equals\n", "t"), ParseError);
  EXPECT_THROW(parse_sections("[s]\nk=1\nk=2\n", "t"), ParseError);
  EXPECT_THROW(parse_sections("[]\n", "t"), ParseError);
}

TEST(Topology, ParsesReference) {
  const TopologySpec topo = parse_topology(kTopology);
  EXPECT_EQ(topo.cluster_count(), 2u);
  EXPECT_EQ(topo.total_nodes(), 200u);
  EXPECT_EQ(topo.clusters[0].san.latency, microseconds(10));
  EXPECT_DOUBLE_EQ(topo.clusters[0].san.bytes_per_sec, 80e6 / 8);
  EXPECT_EQ(topo.inter_link(ClusterId{0}, ClusterId{1}).latency,
            microseconds(150));
  EXPECT_EQ(topo.mtbf, hours(100));
}

TEST(Topology, RejectsInconsistency) {
  EXPECT_THROW(parse_topology("[cluster 0]\nnodes=2\n"), ParseError);  // no fed
  EXPECT_THROW(parse_topology("[federation]\nclusters = 2\n"), ParseError);
  EXPECT_THROW(parse_topology("[federation]\nclusters = 1\n"
                              "[cluster 0]\nnodes = 0\nlatency = 1us\n"
                              "bandwidth = 1Mb/s\n"),
               CheckFailure);  // zero nodes fails validation
  EXPECT_THROW(parse_topology("[federation]\nclusters = 1\n"
                              "[cluster 7]\nnodes = 1\nlatency = 1us\n"
                              "bandwidth = 1Mb/s\n"),
               ParseError);  // index out of range
}

TEST(Application, ParsesAndValidates) {
  const TopologySpec topo = parse_topology(kTopology);
  const auto app = parse_application(R"(
[application]
total_time = 10h
state_size = 8MB

[cluster 0]
mean_compute = 2min
message_size = 10KB

[cluster 1]
mean_compute = 3min

[traffic 0]
0 = 0.95
1 = 0.05

[traffic 1]
1 = 1.0
)",
                                     topo);
  EXPECT_EQ(app.total_time, hours(10));
  EXPECT_EQ(app.state_bytes, 8u * 1024 * 1024);
  EXPECT_EQ(app.clusters[0].mean_compute, minutes(2));
  EXPECT_DOUBLE_EQ(app.clusters[0].traffic[1], 0.05);
  EXPECT_DOUBLE_EQ(app.clusters[1].traffic[0], 0.0);
}

TEST(Application, RejectsBadTraffic) {
  const TopologySpec topo = parse_topology(kTopology);
  EXPECT_THROW(parse_application(R"(
[application]
total_time = 1h
[cluster 0]
mean_compute = 1min
[cluster 1]
mean_compute = 1min
[traffic 0]
5 = 1.0
)",
                                 topo),
               ParseError);
}

TEST(Timers, ParsesWithDefaults) {
  const TopologySpec topo = parse_topology(kTopology);
  const auto timers = parse_timers(R"(
[timers]
gc_period = 2h
detection_delay = 100ms

[cluster 0]
clc_period = 30min

[cluster 1]
clc_period = inf
)",
                                   topo);
  EXPECT_EQ(timers.gc_period, hours(2));
  EXPECT_EQ(timers.clusters[0].clc_period, minutes(30));
  EXPECT_TRUE(timers.clusters[1].clc_period.is_infinite());
}

TEST(Writer, TopologyRoundTrips) {
  const TopologySpec topo = paper_reference_topology();
  const TopologySpec again = parse_topology(write_topology(topo));
  EXPECT_EQ(again.cluster_count(), topo.cluster_count());
  EXPECT_EQ(again.clusters[0].nodes, topo.clusters[0].nodes);
  EXPECT_EQ(again.clusters[0].san.latency, topo.clusters[0].san.latency);
  EXPECT_DOUBLE_EQ(again.inter_link(ClusterId{0}, ClusterId{1}).bytes_per_sec,
                   topo.inter_link(ClusterId{0}, ClusterId{1}).bytes_per_sec);
  EXPECT_EQ(again.mtbf, topo.mtbf);
}

TEST(Writer, ApplicationRoundTrips) {
  const TopologySpec topo = paper_reference_topology();
  const ApplicationSpec app = paper_reference_application();
  const ApplicationSpec again = parse_application(write_application(app), topo);
  EXPECT_EQ(again.total_time, app.total_time);
  EXPECT_EQ(again.state_bytes, app.state_bytes);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(again.clusters[c].mean_compute, app.clusters[c].mean_compute);
    EXPECT_EQ(again.clusters[c].traffic, app.clusters[c].traffic);
  }
}

TEST(Writer, TimersRoundTrip) {
  const TopologySpec topo = paper_reference_topology();
  const TimersSpec timers =
      paper_reference_timers(minutes(30), SimTime::infinity(), hours(2));
  const TimersSpec again = parse_timers(write_timers(timers), topo);
  EXPECT_EQ(again.clusters[0].clc_period, minutes(30));
  EXPECT_TRUE(again.clusters[1].clc_period.is_infinite());
  EXPECT_EQ(again.gc_period, hours(2));
}

TEST(Writer, QuantityTextForms) {
  EXPECT_EQ(duration_text(minutes(30)), "30min");
  EXPECT_EQ(duration_text(microseconds(150)), "150us");
  EXPECT_EQ(duration_text(SimTime::infinity()), "inf");
  EXPECT_EQ(bandwidth_text(80e6 / 8), "80Mb/s");
  EXPECT_EQ(bytes_text(8u * 1024 * 1024), "8MB");
}

TEST(Presets, ReferenceMatchesPaperParameters) {
  const TopologySpec topo = paper_reference_topology();
  EXPECT_EQ(topo.cluster_count(), 2u);
  EXPECT_EQ(topo.clusters[0].nodes, 100u);
  EXPECT_EQ(topo.clusters[0].san.latency, microseconds(10));   // Myrinet-like
  EXPECT_EQ(topo.inter_link(ClusterId{0}, ClusterId{1}).latency,
            microseconds(150));                                 // Ethernet-like
  const ApplicationSpec app = paper_reference_application();
  EXPECT_EQ(app.total_time, hours(10));
  // Expected sends over 10 h match the Table 1 census.
  const double sends0 =
      app.total_time.seconds() / app.clusters[0].mean_compute.seconds() * 100;
  EXPECT_NEAR(sends0, 2920 + 145, 1.0);
  const double inter0 = sends0 * app.clusters[0].traffic[1] /
                        (app.clusters[0].traffic[0] + app.clusters[0].traffic[1]);
  EXPECT_NEAR(inter0, 145, 0.5);
}

TEST(Presets, ThreeClusterShape) {
  const TopologySpec topo = paper_three_cluster_topology();
  EXPECT_EQ(topo.cluster_count(), 3u);
  const ApplicationSpec app = paper_three_cluster_application();
  // "approximately 200 messages that leave ... each cluster"
  for (std::size_t c = 0; c < 3; ++c) {
    const auto& row = app.clusters[c].traffic;
    double inter = 0;
    for (std::size_t j = 0; j < 3; ++j) {
      if (j != c) inter += row[j];
    }
    const double total = inter + row[c];
    const double sends =
        app.total_time.seconds() / app.clusters[c].mean_compute.seconds() * 100;
    EXPECT_NEAR(sends * inter / total, 200, 1.0);
  }
}

TEST(Presets, SmallSpecValidates) {
  for (std::size_t clusters : {1u, 2u, 3u, 4u}) {
    const RunSpec spec = small_test_spec(clusters, 4);
    EXPECT_NO_THROW(spec.validate());
  }
}

}  // namespace
}  // namespace hc3i::config
