// Compiled with HC3I_DISABLE_CHECKS: every HC3I_CHECK in this translation
// unit must compile to nothing and evaluate nothing.  The counting probes
// here are deliberate — this TU exists to *measure* evaluation, which is
// exactly why real check arguments must be side-effect free (lint rule
// check-pure): with them, disabled builds would diverge from enabled ones.
// tests/check_discipline_test.cpp (checks enabled) drives this TU and
// asserts the counters stay untouched.

#define HC3I_DISABLE_CHECKS
#include "util/check.hpp"

#include "check_discipline_probe.hpp"

namespace hc3i_test {

int run_checks_in_disabled_tu(Probe& probe) {
  // A passing condition, a failing condition, and a message expression:
  // none of them may run.  With checks disabled the failing condition must
  // also not throw.
  HC3I_CHECK(probe.count_true(), "never built");
  HC3I_CHECK(probe.count_false(), probe.count_message());
  return probe.evaluations;
}

}  // namespace hc3i_test
