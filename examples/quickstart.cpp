// Quickstart: simulate a small cluster federation running a code-coupling
// application under the HC3I checkpointing protocol, inject a node failure
// mid-run, and print what the protocol did.
//
//   ./quickstart [--clusters=2] [--nodes=8] [--seed=1] [--fail-at=12min]
//
// This is the five-minute tour of the library: build a RunSpec (or load the
// paper's three configuration files with config::load_run_spec), pick a
// protocol, call driver::run_simulation, read the statistics.

#include <cstdio>

#include "config/presets.hpp"
#include "driver/run.hpp"
#include "util/flags.hpp"
#include "util/quantity.hpp"

using namespace hc3i;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const auto clusters = static_cast<std::size_t>(flags.get_int("clusters", 2));
  const auto nodes = static_cast<std::uint32_t>(flags.get_int("nodes", 8));

  driver::RunOptions opts;
  opts.spec = config::small_test_spec(clusters, nodes);
  opts.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  opts.protocol = driver::ProtocolKind::kHc3i;

  // Inject one fail-stop node failure mid-run (paper §2.1 failure model).
  const auto fail_at = parse_duration(flags.get("fail-at", "12min"));
  if (fail_at && !fail_at->is_infinite()) {
    opts.scripted_failures.push_back(
        driver::ScriptedFailure{*fail_at, NodeId{nodes / 2}});
  }

  const driver::RunResult result = driver::run_simulation(opts);

  std::printf("HC3I quickstart — %zu clusters x %u nodes, %s of application\n",
              clusters, nodes,
              to_string(opts.spec.application.total_time).c_str());
  std::printf("  simulated events      : %llu\n",
              static_cast<unsigned long long>(result.events_executed));
  std::printf("  app messages delivered: %llu\n",
              static_cast<unsigned long long>(result.total_received));
  for (std::size_t c = 0; c < clusters; ++c) {
    const ClusterId cid{static_cast<std::uint32_t>(c)};
    std::printf(
        "  cluster %zu: %llu CLCs committed (%llu forced, %llu unforced)\n", c,
        static_cast<unsigned long long>(result.clc_total(cid)),
        static_cast<unsigned long long>(result.clc_forced(cid)),
        static_cast<unsigned long long>(result.clc_unforced(cid)));
  }
  std::printf("  failures injected     : %llu\n",
              static_cast<unsigned long long>(result.counter("fault.injected")));
  std::printf("  cluster rollbacks     : %llu\n",
              static_cast<unsigned long long>(result.counter("rollback.count")));
  std::printf("  logged msgs re-sent   : %llu\n",
              static_cast<unsigned long long>(result.counter("log.resent_msgs")));
  std::printf("  consistency violations: %zu\n", result.violations.size());
  std::printf("\nThe consistency ledger audited every send/delivery across the "
              "rollback:\n  %llu of %llu events were undone and re-executed "
              "consistently.\n",
              static_cast<unsigned long long>(
                  result.counter("ledger.undone_events")),
              static_cast<unsigned long long>(
                  result.counter("ledger.total_events")));
  return 0;
}
