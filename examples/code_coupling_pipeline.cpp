// Code-coupling pipeline — the paper's motivating application (Fig. 1):
// "Simulation -> Treatment -> Display" stages pinned to three clusters,
// with pipelined inter-cluster communication.  Runs HC3I and prints what
// the communication-induced layer cost on top of the timer CLCs.
//
//   ./code_coupling_pipeline [--hours=10] [--seed=1] [--clc-min=30]
//                            [--transitive]
//
// Also demonstrates the configuration-file layer: the exact topology /
// application / timers files for this scenario are printed with --dump.

#include <cstdio>

#include "config/writer.hpp"
#include "driver/run.hpp"
#include "util/flags.hpp"

using namespace hc3i;

namespace {

config::RunSpec pipeline_spec(std::int64_t run_hours, std::int64_t clc_min) {
  config::RunSpec spec;
  // Three 32-node clusters: simulation, treatment, display.
  config::LinkSpec san{microseconds(10), 80e6 / 8};
  config::LinkSpec wan{microseconds(150), 100e6 / 8};
  spec.topology.clusters.assign(3, config::ClusterSpec{32, san});
  spec.topology.inter.assign(3, std::vector<config::LinkSpec>(3));
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) spec.topology.inter[i][j] = wan;
    }
  }
  spec.application.total_time = hours(run_hours);
  spec.application.state_bytes = 8ull * 1024 * 1024;
  spec.application.clusters.resize(3);
  // The simulation stage computes hard and streams results downstream;
  // treatment relays; display only consumes.
  spec.application.clusters[0] = {minutes(2), 64 * 1024, {0.92, 0.08, 0.0}};
  spec.application.clusters[1] = {minutes(3), 32 * 1024, {0.0, 0.90, 0.10}};
  spec.application.clusters[2] = {minutes(4), 16 * 1024, {0.0, 0.0, 1.0}};
  spec.timers.clusters.assign(3, config::ClusterTimerSpec{minutes(clc_min)});
  spec.timers.gc_period = hours(2);
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const config::RunSpec spec =
      pipeline_spec(flags.get_int("hours", 10), flags.get_int("clc-min", 30));

  if (flags.get_bool("dump", false)) {
    std::printf("# --- topology file ---\n%s\n# --- application file ---\n%s\n"
                "# --- timers file ---\n%s\n",
                config::write_topology(spec.topology).c_str(),
                config::write_application(spec.application).c_str(),
                config::write_timers(spec.timers).c_str());
    return 0;
  }

  driver::RunOptions opts;
  opts.spec = spec;
  opts.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  opts.hc3i.transitive_ddv = flags.get_bool("transitive", false);
  const auto result = driver::run_simulation(opts);

  std::printf("Code-coupling pipeline (simulation -> treatment -> display)\n");
  std::printf("  dependency tracking: %s\n\n",
              opts.hc3i.transitive_ddv ? "full DDV (transitive, paper §7)"
                                       : "SN piggyback (paper default)");
  const char* stage[] = {"simulation", "treatment", "display"};
  for (std::uint32_t c = 0; c < 3; ++c) {
    const ClusterId cid{c};
    std::printf("  %-10s: %3llu CLCs (%llu forced, %llu unforced), "
                "%llu msgs received from upstream\n",
                stage[c],
                static_cast<unsigned long long>(result.clc_total(cid)),
                static_cast<unsigned long long>(result.clc_forced(cid)),
                static_cast<unsigned long long>(result.clc_unforced(cid)),
                static_cast<unsigned long long>(
                    c == 0 ? 0
                           : result.app_messages(ClusterId{c - 1}, cid)));
  }
  std::printf("\n  GC rounds: %llu; retained CLCs at end: %llu / %llu / %llu\n",
              static_cast<unsigned long long>(result.counter("gc.rounds")),
              static_cast<unsigned long long>(result.counter("store.final_clcs.c0")),
              static_cast<unsigned long long>(result.counter("store.final_clcs.c1")),
              static_cast<unsigned long long>(result.counter("store.final_clcs.c2")));
  std::printf("  consistency violations: %zu\n", result.violations.size());
  return 0;
}
