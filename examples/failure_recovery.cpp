// Failure-recovery walkthrough: reproduces the paper's §4 sample execution
// narrative on a live simulation — inter-cluster messages forcing CLCs,
// then a fault, the rollback-alert cascade and the logged-message replay —
// with protocol-level tracing enabled so every step is visible.
//
//   ./failure_recovery [--seed=1] [--quiet]

#include <cstdio>

#include "config/presets.hpp"
#include "driver/run.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"

using namespace hc3i;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  if (!flags.get_bool("quiet", false)) {
    Trace::set_level(TraceLevel::kProtocol);
  }

  driver::RunOptions opts;
  // Three small clusters with a modest inter-cluster exchange pattern.
  opts.spec = config::small_test_spec(3, 4);
  opts.spec.application.total_time = hours(1);
  for (auto& t : opts.spec.timers.clusters) t.clc_period = minutes(10);
  opts.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  // Fault in cluster 1 mid-run — the paper's snapshot 1 -> 2 transition.
  opts.scripted_failures.push_back({minutes(35), NodeId{5}});

  std::printf("Simulating 1 h of a 3-cluster code-coupling run; node 5\n"
              "(cluster 1) fails at t=35min. Protocol trace follows.\n\n");
  const auto result = driver::run_simulation(opts);

  std::printf("\n--- outcome ---------------------------------------------\n");
  std::printf("failures injected        : %llu\n",
              static_cast<unsigned long long>(result.counter("fault.injected")));
  std::printf("cluster rollbacks        : %llu  (faulty cluster + cascades)\n",
              static_cast<unsigned long long>(result.counter("rollback.count")));
  std::printf("rollback alerts received : %llu\n",
              static_cast<unsigned long long>(result.counter("rollback.alerts")));
  std::printf("logged messages re-sent  : %llu\n",
              static_cast<unsigned long long>(result.counter("log.resent_msgs")));
  std::printf("stale messages discarded : %llu\n",
              static_cast<unsigned long long>(result.counter("cic.stale_dropped")));
  std::printf("work lost to the fault   : %.1f node-seconds\n",
              result.registry.summary("rollback.lost_work_s").sum());
  std::printf("consistency violations   : %zu (the ledger audited %llu\n"
              "                           send/delivery events end-to-end)\n",
              result.violations.size(),
              static_cast<unsigned long long>(result.counter("ledger.total_events")));
  return 0;
}
