// Protocol comparison on one command line — run the same workload and
// failure schedule under any of the five protocols and compare outcomes.
//
//   ./protocol_comparison [--protocol=hc3i|independent|global|hier|pessimistic]
//                         [--hours=2] [--mtbf-min=40] [--seed=1]

#include <cstdio>
#include <string>

#include "config/presets.hpp"
#include "driver/run.hpp"
#include "util/flags.hpp"

using namespace hc3i;

namespace {

driver::ProtocolKind parse_protocol(const std::string& name) {
  if (name == "hc3i") return driver::ProtocolKind::kHc3i;
  if (name == "independent") return driver::ProtocolKind::kIndependent;
  if (name == "global") return driver::ProtocolKind::kCoordinatedGlobal;
  if (name == "hier") return driver::ProtocolKind::kHierarchicalCoordinated;
  if (name == "pessimistic") return driver::ProtocolKind::kPessimisticLog;
  HC3I_CHECK(false, "unknown --protocol: " + name +
                        " (hc3i|independent|global|hier|pessimistic)");
  return driver::ProtocolKind::kHc3i;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  driver::RunOptions opts;
  opts.spec = config::small_test_spec(2, 10);
  opts.spec.application.total_time = hours(flags.get_int("hours", 2));
  opts.spec.topology.mtbf = minutes(flags.get_int("mtbf-min", 40));
  for (auto& t : opts.spec.timers.clusters) t.clc_period = minutes(20);
  opts.protocol = parse_protocol(flags.get("protocol", "hc3i"));
  opts.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  opts.auto_failures = true;

  const auto r = driver::run_simulation(opts);

  std::printf("protocol                 : %s\n",
              driver::to_string(opts.protocol).c_str());
  std::printf("application progress     : %llu work units\n",
              static_cast<unsigned long long>(r.total_progress));
  std::printf("checkpoints committed    : %llu\n",
              static_cast<unsigned long long>(r.clc_total(ClusterId{0}) +
                                              r.clc_total(ClusterId{1})));
  std::printf("failures / rollbacks     : %llu / %llu\n",
              static_cast<unsigned long long>(r.counter("fault.injected")),
              static_cast<unsigned long long>(r.counter("rollback.count")));
  std::printf("nodes restored           : %llu\n",
              static_cast<unsigned long long>(r.counter("app.restores")));
  std::printf("work lost to rollbacks   : %.1f node-seconds\n",
              r.registry.summary("rollback.lost_work_s").sum());
  std::printf("inter-cluster ctl bytes  : %llu\n",
              static_cast<unsigned long long>(r.counter("net.ctl.inter.bytes")));
  std::printf("intra-cluster ctl bytes  : %llu\n",
              static_cast<unsigned long long>(r.counter("net.ctl.intra.bytes")));
  std::printf("consistency violations   : %zu\n", r.violations.size());
  return 0;
}
