// Sharded sweep driver: parameter sweeps as a service.
//
// Expands a topology x campaign x seed grid and shards the runs across
// worker threads, each worker owning its full simulation context (payload
// pools included — see src/batch/ and driver/sim_context.hpp).  Per-run
// results are byte-identical to solo single-threaded runs of the same
// (spec, seed) regardless of thread count; the aggregated report is in grid
// order, independent of scheduling.
//
//   ./sweep                                        # 2,5,10-cluster grid x 3 seeds
//   ./sweep --clusters=2,5,10 --campaigns=none,faulty --seeds=1..5
//   ./sweep --nodes=50 --minutes=10 --threads=4 --json
//   ./sweep --config=my_sweep.ini                  # the sweep config kind
//                                                  #   (batch::parse_sweep)
//   ./sweep --grid=determinism                     # CI seed-grid check: the
//                                                  #   10x100 overlap scenario,
//                                                  #   10 seeds x 2 runs, every
//                                                  #   pair byte-compared
//
// --campaigns kinds: none (failure-free), faulty (the reference campaign in
// legacy serialized mode, as the --faulty golden), overlap (concurrent
// per-cluster recoveries; needs >= 4 clusters).
//
// Exit status: 0 all runs clean, 1 any violation/mismatch, 2 usage error.

#include <cstdio>
#include <string>
#include <vector>

#include "batch/runner.hpp"
#include "batch/sweep.hpp"
#include "config/parser.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/quantity.hpp"

using namespace hc3i;

namespace {

/// Split "a,b,c" into non-empty tokens.
std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) out.push_back(tok);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// The CI determinism grid: every seed of the overlap scenario run twice
/// (threads-many shards each pass), each pair's counter dumps byte-compared.
/// This is the promotion of the PR 6 hand-rolled 3-seed shell loop to a
/// 10-seed grid the sharded runner can afford inside the CI budget.
int run_determinism_grid(std::size_t threads) {
  batch::SweepSpec sweep;
  sweep.topologies = {batch::scale_topology(10, 100, minutes(30))};
  sweep.campaigns = {batch::overlap_campaign()};
  for (std::uint64_t s = 1; s <= 10; ++s) sweep.seeds.push_back(s);

  batch::RunnerOptions opts;
  opts.threads = threads;
  opts.keep_dumps = true;
  const batch::Runner runner(opts);
  std::printf("determinism grid: %zu runs x 2 passes (overlap 10x100)\n",
              sweep.runs());
  const batch::BatchReport a = runner.run(sweep);
  const batch::BatchReport b = runner.run(sweep);

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < a.cases.size(); ++i) {
    const batch::CaseResult& ca = a.cases[i];
    const batch::CaseResult& cb = b.cases[i];
    const bool same = ca.ok && cb.ok && ca.dump == cb.dump;
    if (!same) ++mismatches;
    std::printf("  seed %-3llu %s\n",
                static_cast<unsigned long long>(ca.seed),
                same ? "ok (byte-identical)"
                     : !ca.ok || !cb.ok ? "FAILED RUN" : "DUMP MISMATCH");
  }
  std::printf("%s: %zu seeds, %.2f s + %.2f s wall (%zu threads)\n",
              mismatches == 0 ? "PASS" : "FAIL", a.cases.size(), a.wall_sec,
              b.wall_sec, a.threads);
  return mismatches == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  for (const std::string& name : flags.names()) {
    if (name != "clusters" && name != "nodes" && name != "minutes" &&
        name != "campaigns" && name != "seeds" && name != "threads" &&
        name != "json" && name != "config" && name != "grid" &&
        name != "protocol") {
      std::fprintf(stderr,
                   "unknown flag --%s (known: --clusters --nodes --minutes "
                   "--campaigns --seeds --threads --json --config --grid "
                   "--protocol)\n",
                   name.c_str());
      return 2;
    }
  }
  const auto threads =
      static_cast<std::size_t>(flags.get_int("threads", 0));

  const std::string grid = flags.get("grid", "");
  if (!grid.empty()) {
    if (grid != "determinism") {
      std::fprintf(stderr, "unknown --grid=%s (known: determinism)\n",
                   grid.c_str());
      return 2;
    }
    return run_determinism_grid(threads);
  }

  batch::SweepSpec sweep;
  const std::string config_path = flags.get("config", "");
  if (!config_path.empty()) {
    try {
      sweep = batch::parse_sweep(config::read_file(config_path), config_path);
    } catch (const config::ParseError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  } else {
    const auto nodes =
        static_cast<std::uint32_t>(flags.get_int("nodes", 100));
    const SimTime total = minutes(flags.get_int("minutes", 10));
    for (const std::string& tok : split_list(flags.get("clusters", "2,5,10"))) {
      const auto v = parse_uint(tok);
      if (!v || *v < 1) {
        std::fprintf(stderr, "--clusters wants counts >= 1, got '%s'\n",
                     tok.c_str());
        return 2;
      }
      sweep.topologies.push_back(
          batch::scale_topology(static_cast<std::size_t>(*v), nodes, total));
    }
    for (const std::string& tok : split_list(flags.get("campaigns", "none"))) {
      if (tok == "none") {
        sweep.campaigns.push_back(batch::no_campaign());
      } else if (tok == "faulty") {
        sweep.campaigns.push_back(batch::reference_campaign());
      } else if (tok == "overlap") {
        sweep.campaigns.push_back(batch::overlap_campaign());
      } else {
        std::fprintf(stderr, "--campaigns wants none|faulty|overlap, got "
                             "'%s'\n", tok.c_str());
        return 2;
      }
    }
    try {
      sweep.seeds = batch::parse_seed_list(flags.get("seeds", "1..3"),
                                           "--seeds");
    } catch (const config::ParseError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    const std::string proto = flags.get("protocol", "hc3i");
    if (proto == "hc3i") {
      sweep.protocol = driver::ProtocolKind::kHc3i;
    } else if (proto == "independent") {
      sweep.protocol = driver::ProtocolKind::kIndependent;
    } else if (proto == "coordinated-global") {
      sweep.protocol = driver::ProtocolKind::kCoordinatedGlobal;
    } else if (proto == "pessimistic-log") {
      sweep.protocol = driver::ProtocolKind::kPessimisticLog;
    } else if (proto == "hierarchical-coordinated") {
      sweep.protocol = driver::ProtocolKind::kHierarchicalCoordinated;
    } else {
      std::fprintf(stderr, "unknown --protocol=%s\n", proto.c_str());
      return 2;
    }
  }

  batch::RunnerOptions opts;
  opts.threads = threads;
  const batch::Runner runner(opts);
  batch::BatchReport report;
  try {
    report = runner.run(sweep);
  } catch (const CheckFailure& e) {
    std::fprintf(stderr, "invalid sweep: %s\n", e.what());
    return 2;
  }

  if (flags.get_bool("json", false)) {
    std::fputs(report.to_json().c_str(), stdout);
  } else {
    std::fputs(report.render_table().c_str(), stdout);
  }
  return report.failures() == 0 ? 0 : 1;
}
