// Sharded sweep driver: parameter sweeps as a service.
//
// Expands a topology x campaign x seed grid and shards the runs across
// worker threads, each worker owning its full simulation context (payload
// pools included — see src/batch/ and driver/sim_context.hpp).  Per-run
// results are byte-identical to solo single-threaded runs of the same
// (spec, seed) regardless of thread count; the aggregated report is in grid
// order, independent of scheduling.
//
//   ./sweep                                        # 2,5,10-cluster grid x 3 seeds
//   ./sweep --clusters=2,5,10 --campaigns=none,faulty --seeds=1..5
//   ./sweep --nodes=50 --minutes=10 --threads=4 --json
//   ./sweep --config=my_sweep.ini                  # the sweep config kind
//                                                  #   (batch::parse_sweep)
//   ./sweep --grid=determinism                     # CI seed-grid check: the
//                                                  #   10x100 overlap scenario,
//                                                  #   10 seeds x 2 runs, every
//                                                  #   pair byte-compared, plus
//                                                  #   one storage-charged cell
//   ./sweep --grid=storage                         # optimal-interval table:
//                                                  #   checkpoint interval x
//                                                  #   storage bandwidth for
//                                                  #   both backends
//   ./sweep --obs-dir=traces [--metrics-interval=30s]
//                                                  # per-case observability:
//                                                  #   every grid cell writes
//                                                  #   traces/case<i>.trace.json
//                                                  #   (+ .metrics.tsv); paths
//                                                  #   are disjoint per case so
//                                                  #   shards never collide
//
// --campaigns kinds: none (failure-free), faulty (the reference campaign in
// legacy serialized mode, as the --faulty golden), overlap (concurrent
// per-cluster recoveries; needs >= 4 clusters).
//
// Exit status: 0 all runs clean, 1 any violation/mismatch, 2 usage error.

#include <cstdio>
#include <string>
#include <vector>

#include "batch/runner.hpp"
#include "batch/sweep.hpp"
#include "config/parser.hpp"
#include "config/spec.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/quantity.hpp"

using namespace hc3i;

namespace {

/// Split "a,b,c" into non-empty tokens.
std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) out.push_back(tok);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Run a sweep twice and byte-compare each case's counter dump, printing one
/// line per case under `label`.  Returns the number of mismatching cases.
std::size_t compare_two_passes(const batch::Runner& runner,
                               const batch::SweepSpec& sweep,
                               const char* label) {
  const batch::BatchReport a = runner.run(sweep);
  const batch::BatchReport b = runner.run(sweep);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < a.cases.size(); ++i) {
    const batch::CaseResult& ca = a.cases[i];
    const batch::CaseResult& cb = b.cases[i];
    const bool same = ca.ok && cb.ok && ca.dump == cb.dump;
    if (!same) ++mismatches;
    std::printf("  %s seed %-3llu %s\n", label,
                static_cast<unsigned long long>(ca.seed),
                same ? "ok (byte-identical)"
                     : !ca.ok || !cb.ok ? "FAILED RUN" : "DUMP MISMATCH");
  }
  std::printf("  %s: %zu cases, %.2f s + %.2f s wall (%zu threads)\n", label,
              a.cases.size(), a.wall_sec, b.wall_sec, a.threads);
  return mismatches;
}

/// The CI determinism grid: every seed of the overlap scenario run twice
/// (threads-many shards each pass), each pair's counter dumps byte-compared.
/// This is the promotion of the PR 6 hand-rolled 3-seed shell loop to a
/// 10-seed grid the sharded runner can afford inside the CI budget.  A
/// second, smaller cell repeats the check with the storage axis engaged so
/// capture stalls and chain reads are covered by the same bit-for-bit
/// guarantee.
int run_determinism_grid(std::size_t threads) {
  batch::RunnerOptions opts;
  opts.threads = threads;
  opts.keep_dumps = true;
  const batch::Runner runner(opts);

  batch::SweepSpec sweep;
  sweep.topologies = {batch::scale_topology(10, 100, minutes(30))};
  sweep.campaigns = {batch::overlap_campaign()};
  for (std::uint64_t s = 1; s <= 10; ++s) sweep.seeds.push_back(s);
  std::printf("determinism grid: %zu runs x 2 passes (overlap 10x100)\n",
              sweep.runs());
  std::size_t mismatches = compare_two_passes(runner, sweep, "plain  ");

  // The storage-charged cell: striped-remote backend with incremental
  // capture, 3 seeds.  Capture stalls reshape the event schedule, so this
  // exercises a decision stream the plain cell never sees.
  batch::SweepSpec charged;
  charged.topologies = sweep.topologies;
  charged.campaigns = sweep.campaigns;
  charged.seeds = {1, 2, 3};
  config::StorageSpec striped;
  striped.kind = config::StorageSpec::Kind::kStripedRemote;
  charged.storage = {
      batch::storage_point("striped", striped, minutes(5), 16ull << 20)};
  std::printf("storage-charged cell: %zu runs x 2 passes (striped-remote)\n",
              charged.runs());
  mismatches += compare_two_passes(runner, charged, "striped");

  std::printf("%s\n", mismatches == 0 ? "PASS" : "FAIL");
  return mismatches == 0 ? 0 : 1;
}

/// The optimal-interval grid: checkpoint interval x storage bandwidth for
/// both backends, reference fault campaign.  Each cell reports checkpoint
/// bytes written and the two sides of the classic tradeoff — time lost
/// writing checkpoints (capture stalls + recovery chain reads) vs. work
/// re-executed after rollbacks — and the per-(backend, bandwidth) row with
/// the lowest total is flagged as the optimal interval.
///
/// Runs the independent-checkpointing baseline, not HC3I: under HC3I the
/// §3.2 forcing rule ties CLC frequency to inter-cluster traffic, so with
/// the ring workload the timer barely moves the checkpoint rate and there
/// is no interval to optimise (see docs/scaling.md).  The baseline
/// checkpoints purely on the timer, which is the regime the classic
/// interval analysis assumes.
int run_storage_grid(std::size_t threads) {
  struct BwPoint { const char* tag; double bytes_per_sec; };
  struct IvPoint { const char* tag; SimTime period; };
  static const BwPoint kBandwidths[] = {{"50M", 50e6}, {"200M", 200e6}};
  static const IvPoint kIntervals[] = {
      {"2m", minutes(2)}, {"5m", minutes(5)}, {"10m", minutes(10)}};
  static const std::pair<config::StorageSpec::Kind, const char*> kKinds[] = {
      {config::StorageSpec::Kind::kLocalDisk, "local-disk"},
      {config::StorageSpec::Kind::kStripedRemote, "striped-remote"}};
  constexpr std::uint64_t kStateBytes = 64ull << 20;  // per node

  batch::SweepSpec sweep;
  sweep.protocol = driver::ProtocolKind::kIndependent;
  sweep.topologies = {batch::scale_topology(4, 25, minutes(60))};
  sweep.campaigns = {batch::reference_campaign()};
  sweep.seeds = {1, 2};
  for (const auto& [kind, ktag] : kKinds) {
    for (const BwPoint& bw : kBandwidths) {
      for (const IvPoint& iv : kIntervals) {
        config::StorageSpec st;
        st.kind = kind;
        st.write_bytes_per_sec = bw.bytes_per_sec;
        st.read_bytes_per_sec = bw.bytes_per_sec;
        sweep.storage.push_back(batch::storage_point(
            std::string(ktag) + "/" + bw.tag + "/" + iv.tag, st, iv.period,
            kStateBytes));
      }
    }
  }

  batch::RunnerOptions opts;
  opts.threads = threads;
  const batch::Runner runner(opts);
  std::printf("storage grid: %zu runs (4x25 faulty, independent protocol, "
              "64 MiB state/node)\n",
              sweep.runs());
  const batch::BatchReport report = runner.run(sweep);
  if (report.failures() > 0) {
    std::fputs(report.render_table().c_str(), stdout);
    return 1;
  }

  // Aggregate per storage point (seeds summed), keyed by the point label.
  struct Cell {
    std::uint64_t ckpt_bytes{0};
    double stall_s{0.0}, read_s{0.0}, lost_work_s{0.0};
    double total_s() const { return stall_s + read_s + lost_work_s; }
  };
  std::vector<std::pair<std::string, Cell>> cells;
  for (const batch::CaseResult& c : report.cases) {
    Cell* cell = nullptr;
    for (auto& [name, v] : cells) {
      if (name == c.storage) cell = &v;
    }
    if (!cell) {
      cells.emplace_back(c.storage, Cell{});
      cell = &cells.back().second;
    }
    cell->ckpt_bytes += c.ckpt_bytes;
    cell->stall_s += static_cast<double>(c.ckpt_stall_us) * 1e-6;
    cell->read_s += static_cast<double>(c.recovery_read_us) * 1e-6;
    cell->lost_work_s += c.lost_work_s;
  }
  const auto find_cell = [&cells](const std::string& name) -> const Cell& {
    const Cell* found = nullptr;
    for (const auto& [n, v] : cells) {
      if (n == name) found = &v;
    }
    HC3I_CHECK(found != nullptr, "storage grid cell missing from report");
    return *found;
  };

  std::printf("\n%-15s %-7s %-9s %10s %9s %8s %13s %9s\n", "backend",
              "bw", "interval", "ckpt GiB", "stall s", "read s",
              "lost work s", "total s");
  for (const auto& [kind, ktag] : kKinds) {
    for (const BwPoint& bw : kBandwidths) {
      // The optimal interval for this (backend, bandwidth) row group.
      double best = -1.0;
      for (const IvPoint& iv : kIntervals) {
        const Cell& cell = find_cell(std::string(ktag) + "/" + bw.tag + "/" +
                                     iv.tag);
        if (best < 0 || cell.total_s() < best) best = cell.total_s();
      }
      for (const IvPoint& iv : kIntervals) {
        const Cell& cell = find_cell(std::string(ktag) + "/" + bw.tag + "/" +
                                     iv.tag);
        std::printf("%-15s %-7s %-9s %10.2f %9.1f %8.1f %13.1f %9.1f%s\n",
                    ktag, bw.tag, iv.tag,
                    static_cast<double>(cell.ckpt_bytes) / (1ull << 30),
                    cell.stall_s, cell.read_s, cell.lost_work_s,
                    cell.total_s(),
                    cell.total_s() == best ? "  <- optimal" : "");
      }
    }
  }
  std::printf("\n%zu runs in %.2f s (%zu threads)\n", report.cases.size(),
              report.wall_sec, report.threads);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  for (const std::string& name : flags.names()) {
    if (name != "clusters" && name != "nodes" && name != "minutes" &&
        name != "campaigns" && name != "seeds" && name != "threads" &&
        name != "json" && name != "config" && name != "grid" &&
        name != "protocol" && name != "obs-dir" &&
        name != "metrics-interval") {
      std::fprintf(stderr,
                   "unknown flag --%s (known: --clusters --nodes --minutes "
                   "--campaigns --seeds --threads --json --config --grid "
                   "--protocol --obs-dir --metrics-interval)\n",
                   name.c_str());
      return 2;
    }
  }
  const auto threads =
      static_cast<std::size_t>(flags.get_int("threads", 0));

  const std::string grid = flags.get("grid", "");
  if (!grid.empty()) {
    if (grid == "determinism") return run_determinism_grid(threads);
    if (grid == "storage") return run_storage_grid(threads);
    std::fprintf(stderr, "unknown --grid=%s (known: determinism storage)\n",
                 grid.c_str());
    return 2;
  }

  batch::SweepSpec sweep;
  const std::string config_path = flags.get("config", "");
  if (!config_path.empty()) {
    try {
      sweep = batch::parse_sweep(config::read_file(config_path), config_path);
    } catch (const config::ParseError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  } else {
    const auto nodes =
        static_cast<std::uint32_t>(flags.get_int("nodes", 100));
    const SimTime total = minutes(flags.get_int("minutes", 10));
    for (const std::string& tok : split_list(flags.get("clusters", "2,5,10"))) {
      const auto v = parse_uint(tok);
      if (!v || *v < 1) {
        std::fprintf(stderr, "--clusters wants counts >= 1, got '%s'\n",
                     tok.c_str());
        return 2;
      }
      sweep.topologies.push_back(
          batch::scale_topology(static_cast<std::size_t>(*v), nodes, total));
    }
    for (const std::string& tok : split_list(flags.get("campaigns", "none"))) {
      if (tok == "none") {
        sweep.campaigns.push_back(batch::no_campaign());
      } else if (tok == "faulty") {
        sweep.campaigns.push_back(batch::reference_campaign());
      } else if (tok == "overlap") {
        sweep.campaigns.push_back(batch::overlap_campaign());
      } else {
        std::fprintf(stderr, "--campaigns wants none|faulty|overlap, got "
                             "'%s'\n", tok.c_str());
        return 2;
      }
    }
    try {
      sweep.seeds = batch::parse_seed_list(flags.get("seeds", "1..3"),
                                           "--seeds");
    } catch (const config::ParseError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    const std::string proto = flags.get("protocol", "hc3i");
    if (proto == "hc3i") {
      sweep.protocol = driver::ProtocolKind::kHc3i;
    } else if (proto == "independent") {
      sweep.protocol = driver::ProtocolKind::kIndependent;
    } else if (proto == "coordinated-global") {
      sweep.protocol = driver::ProtocolKind::kCoordinatedGlobal;
    } else if (proto == "pessimistic-log") {
      sweep.protocol = driver::ProtocolKind::kPessimisticLog;
    } else if (proto == "hierarchical-coordinated") {
      sweep.protocol = driver::ProtocolKind::kHierarchicalCoordinated;
    } else {
      std::fprintf(stderr, "unknown --protocol=%s\n", proto.c_str());
      return 2;
    }
  }

  batch::RunnerOptions opts;
  opts.threads = threads;
  opts.obs_dir = flags.get("obs-dir", "");
  if (!opts.obs_dir.empty()) {
    const std::string interval_text = flags.get("metrics-interval", "30s");
    const auto parsed = parse_duration(interval_text);
    if (!parsed.has_value() || parsed->is_infinite()) {
      std::fprintf(stderr, "bad --metrics-interval: %s\n",
                   interval_text.c_str());
      return 2;
    }
    opts.obs_metrics_interval = *parsed;
  }
  const batch::Runner runner(opts);
  batch::BatchReport report;
  try {
    report = runner.run(sweep);
  } catch (const CheckFailure& e) {
    std::fprintf(stderr, "invalid sweep: %s\n", e.what());
    return 2;
  }

  if (flags.get_bool("json", false)) {
    std::fputs(report.to_json().c_str(), stdout);
  } else {
    std::fputs(report.render_table().c_str(), stdout);
  }
  return report.failures() == 0 ? 0 : 1;
}
