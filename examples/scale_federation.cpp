// Scale-out federation scenario: 10 clusters x 100 nodes (configurable),
// with a sweep axis over the cluster count.
//
// The paper's hierarchy exists so the protocol scales past one cluster, but
// its evaluation stops at 2-3 clusters.  This scenario opens the
// large-federation regime: ring-structured traffic over `--clusters`
// clusters of `--nodes` nodes with CLC timers and garbage collection
// enabled, reporting what actually grows with the cluster count — events,
// active census pairs, retained CLCs, GC response bytes (and how much the
// delta-compressed encoding saved).  See docs/scaling.md for the cost model
// each column checks.
//
//   ./scale_federation                         # one 10x100 run
//   ./scale_federation --clusters=6 --nodes=50
//   ./scale_federation --sweep=2,4,6,8,10      # the scaling story table
//   ./scale_federation --dump-counters         # fixed-seed repro dump (CI
//                                              #   diffs it against
//                                              #   bench/golden_counters_scale.txt)
//   ./scale_federation --faulty [--sweep=...]  # same scenario under the fixed
//                                              #   reference fault campaign in
//                                              #   legacy serialized mode; with
//                                              #   --dump-counters CI diffs it
//                                              #   against
//                                              #   bench/golden_counters_scale_faulty.txt
//   ./scale_federation --overlap               # overlapping-burst campaign:
//                                              #   concurrent per-cluster
//                                              #   recoveries; with
//                                              #   --dump-counters CI diffs it
//                                              #   against
//                                              #   bench/golden_counters_scale_overlap.txt
//   ./scale_federation --storage [--overlap]   # charge checkpoint capture and
//                                              #   recovery reads to a
//                                              #   striped-remote store on
//                                              #   every cluster (orthogonal to
//                                              #   the fault mode); with
//                                              #   --overlap --dump-counters CI
//                                              #   diffs it against
//                                              #   bench/golden_counters_scale_storage.txt
//   ./scale_federation --trace-out=t.json --metrics-out=m.tsv
//                                              # structured protocol trace
//                                              #   (Perfetto trace_event JSON)
//                                              #   and periodic counter samples
//                                              #   (--metrics-interval, default
//                                              #   30s); byte-reproducible per
//                                              #   seed — CI byte-compares two
//                                              #   passes.  Sweep rows get a
//                                              #   ".c<N>" path suffix.

#include <cstdio>
#include <string>
#include <vector>

#include "config/presets.hpp"
#include "driver/run.hpp"
#include "fault/campaign.hpp"
#include "obs/export.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/quantity.hpp"
#include "util/walltime.hpp"

using namespace hc3i;

namespace {

using util::now_sec;

/// Parse "2,4,6" into cluster counts; returns false (with *out untouched
/// beyond valid prefixes) on a non-numeric or zero token.
bool parse_sweep(const std::string& s, std::vector<std::size_t>* out) {
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) {
      std::size_t value = 0;
      for (const char ch : tok) {
        if (ch < '0' || ch > '9') return false;
        value = value * 10 + static_cast<std::size_t>(ch - '0');
      }
      if (value == 0) return false;
      out->push_back(value);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

/// Which fault plan (if any) rides on the scale scenario.
enum class FaultMode { kNone, kFaulty, kOverlap };

void apply_fault_mode(driver::RunOptions* opts, FaultMode mode,
                      std::size_t clusters, std::uint32_t nodes,
                      SimTime total) {
  switch (mode) {
    case FaultMode::kNone:
      break;
    case FaultMode::kFaulty:
      opts->campaign = fault::reference_scale_campaign(clusters, nodes, total);
      // The faulty golden predates concurrent recoveries; pin the legacy
      // one-fault-at-a-time mode so the dump stays byte-identical.
      opts->campaign.serialize_faults = true;
      break;
    case FaultMode::kOverlap:
      opts->campaign =
          fault::reference_overlap_campaign(clusters, nodes, total);
      break;
  }
}

/// The storage-charged variant: a striped-remote checkpoint store with the
/// default cost model (5 ms latency, 100 MB/s per stripe, width 4) and
/// incremental dirty-range capture on every cluster.
void apply_storage(config::RunSpec* spec) {
  config::StorageSpec storage;
  storage.kind = config::StorageSpec::Kind::kStripedRemote;
  for (config::ClusterSpec& c : spec->topology.clusters) c.storage = storage;
}

struct RowStats {
  std::uint64_t events;
  double wall_sec;
  std::size_t census_pairs;
  std::uint64_t store_max_clcs;
  std::uint64_t gc_saved_bytes;
};

/// Observability outputs for one run; paths empty = off.
struct ObsOutputs {
  std::string trace_out;
  std::string metrics_out;
  SimTime metrics_interval{SimTime::zero()};
};

/// Per-sweep-row output path: verbatim for a single row, suffixed with the
/// cluster count otherwise so rows never clobber each other.
std::string row_path(const std::string& base, std::size_t clusters,
                     bool multi) {
  return multi ? base + ".c" + std::to_string(clusters) : base;
}

RowStats run_one(std::size_t clusters, std::uint32_t nodes, SimTime total,
                 std::uint64_t seed, FaultMode mode, bool storage,
                 const ObsOutputs& obs_out, bool multi_row) {
  driver::RunOptions opts;
  opts.spec = config::scale_federation_spec(clusters, nodes, total);
  if (storage) apply_storage(&opts.spec);
  apply_fault_mode(&opts, mode, clusters, nodes, total);
  opts.seed = seed;
  opts.trace = !obs_out.trace_out.empty();
  opts.metrics_interval = obs_out.metrics_interval;
  const double t0 = now_sec();
  const driver::RunResult result = driver::run_simulation(opts);
  if (result.obs != nullptr) {
    if (!obs_out.trace_out.empty()) {
      const std::string path = row_path(obs_out.trace_out, clusters, multi_row);
      HC3I_CHECK(obs::write_text_file(path, obs::trace_json(*result.obs)),
                 "cannot write " + path);
    }
    if (!obs_out.metrics_out.empty()) {
      const std::string path =
          row_path(obs_out.metrics_out, clusters, multi_row);
      HC3I_CHECK(obs::write_text_file(path, obs::metrics_tsv(*result.obs)),
                 "cannot write " + path);
    }
  }
  RowStats row{};
  row.events = result.events_executed;
  row.wall_sec = now_sec() - t0;
  for (const std::string& name : result.registry.counter_names()) {
    if (name.rfind("net.app.pair.", 0) == 0) ++row.census_pairs;
    if (name.rfind("store.max_clcs.", 0) == 0) {
      const std::uint64_t v = result.counter(name);
      if (v > row.store_max_clcs) row.store_max_clcs = v;
    }
    if (name.rfind("gc.resp_bytes_saved.", 0) == 0) {
      row.gc_saved_bytes += result.counter(name);
    }
  }
  return row;
}

void dump_counters(std::uint32_t nodes, FaultMode mode, bool storage,
                   std::uint64_t seed) {
  driver::RunOptions opts;
  opts.spec = config::scale_federation_spec(10, nodes, minutes(30));
  if (storage) apply_storage(&opts.spec);
  apply_fault_mode(&opts, mode, 10, nodes, minutes(30));
  opts.seed = seed;
  const driver::RunResult result = driver::run_simulation(opts);
  std::fputs(result.registry.dump().c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  for (const std::string& name : flags.names()) {
    if (name != "clusters" && name != "nodes" && name != "seed" &&
        name != "minutes" && name != "sweep" && name != "dump-counters" &&
        name != "faulty" && name != "overlap" && name != "storage" &&
        name != "trace-out" && name != "metrics-out" &&
        name != "metrics-interval") {
      std::fprintf(stderr,
                   "unknown flag --%s (known: --clusters --nodes --seed "
                   "--minutes --sweep --dump-counters --faulty --overlap "
                   "--storage --trace-out --metrics-out "
                   "--metrics-interval)\n",
                   name.c_str());
      return 2;
    }
  }
  const auto nodes = static_cast<std::uint32_t>(flags.get_int("nodes", 100));
  const bool faulty = flags.get_bool("faulty", false);
  const bool overlap = flags.get_bool("overlap", false);
  if (faulty && overlap) {
    std::fprintf(stderr, "--faulty and --overlap are mutually exclusive\n");
    return 2;
  }
  const FaultMode mode = faulty ? FaultMode::kFaulty
                        : overlap ? FaultMode::kOverlap
                                  : FaultMode::kNone;
  const bool storage = flags.get_bool("storage", false);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  if (flags.get_bool("dump-counters", false)) {
    dump_counters(nodes, mode, storage, seed);
    return 0;
  }
  const SimTime total = minutes(flags.get_int("minutes", 30));

  ObsOutputs obs_out;
  obs_out.trace_out = flags.get("trace-out", "");
  obs_out.metrics_out = flags.get("metrics-out", "");
  const std::string interval_text = flags.get("metrics-interval", "");
  if (!interval_text.empty()) {
    const auto parsed = parse_duration(interval_text);
    if (!parsed.has_value() || parsed->is_infinite()) {
      std::fprintf(stderr, "bad --metrics-interval: %s\n",
                   interval_text.c_str());
      return 2;
    }
    obs_out.metrics_interval = *parsed;
  } else if (!obs_out.metrics_out.empty()) {
    obs_out.metrics_interval = seconds(30);
  }

  std::vector<std::size_t> sweep;
  if (!parse_sweep(flags.get("sweep", ""), &sweep)) {
    std::fprintf(stderr, "--sweep wants a comma list of cluster counts, "
                         "e.g. --sweep=2,4,6,8,10\n");
    return 2;
  }
  if (sweep.empty()) {
    sweep.push_back(static_cast<std::size_t>(flags.get_int("clusters", 10)));
  }

  std::printf("scale-out federation — %u nodes/cluster, %s simulated, "
              "ring traffic, CLC timer 5min, GC 10min%s%s\n\n",
              nodes, to_string(total).c_str(),
              mode == FaultMode::kFaulty
                  ? ", reference fault campaign (serialized)"
                  : mode == FaultMode::kOverlap
                        ? ", overlap fault campaign (concurrent recoveries)"
                        : "",
              storage ? ", striped-remote checkpoint store" : "");
  std::printf("%9s %7s %10s %9s %12s %10s %12s %12s\n", "clusters", "nodes",
              "events", "wall_s", "events/s", "pairs", "max_clcs",
              "gc_saved_B");
  for (const std::size_t c : sweep) {
    const RowStats row = run_one(c, nodes, total, seed, mode, storage, obs_out,
                                 sweep.size() > 1);
    std::printf("%9zu %7u %10llu %9.2f %12.0f %10zu %12llu %12llu\n", c,
                c * nodes, static_cast<unsigned long long>(row.events),
                row.wall_sec,
                row.wall_sec > 0 ? row.events / row.wall_sec : 0.0,
                row.census_pairs,
                static_cast<unsigned long long>(row.store_max_clcs),
                static_cast<unsigned long long>(row.gc_saved_bytes));
  }
  std::printf(
      "\ncolumns: pairs = distinct (src,dst) cluster pairs that carried "
      "application traffic\n         (ring workload: ~3 per cluster — the "
      "sparse census footprint);\n         max_clcs = retained-CLC "
      "high-water across clusters (GC keeps it flat);\n         gc_saved_B "
      "= GC response bytes avoided by the delta-compressed encoding.\n");
  return 0;
}
