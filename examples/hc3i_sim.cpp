// hc3i_sim — the paper's simulator as a standalone tool (§5.1): "The user
// has to provide three files: a topology file, an application file and a
// timer file."
//
//   ./hc3i_sim <topology.conf> <application.conf> <timers.conf>
//              [--seed=1] [--protocol=hc3i|independent|global|hier|pessimistic]
//              [--failures] [--campaign=<campaign.conf>]
//              [--trace=stats|protocol|action] [--csv]
//              [--trace-out=<trace.json>] [--metrics-out=<metrics.tsv>]
//              [--metrics-interval=<dur>]
//
// --campaign loads a declarative fault plan (see config/parser.hpp for the
// file format); the run report then includes the per-incident recovery
// telemetry table.
//
// --trace-out writes the structured protocol trace as Chrome/Perfetto
// trace_event JSON (open in https://ui.perfetto.dev); --metrics-out writes
// the periodic counter samples as TSV, sampled every --metrics-interval of
// simulated time (default 30s when --metrics-out is given).  Both outputs
// are byte-reproducible for a fixed seed; see docs/observability.md.
//
// Prints the end-of-run statistics block (the simulator's "lowest output",
// per the paper); --trace=action shows "each node time-stamped action".
// Try it on the committed reference files:
//
//   ./hc3i_sim configs/paper/topology.conf configs/paper/application.conf \
//              configs/paper/timers.conf

#include <cstdio>

#include "config/parser.hpp"
#include "driver/report.hpp"
#include "driver/run.hpp"
#include "obs/export.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/quantity.hpp"

using namespace hc3i;

namespace {

driver::ProtocolKind parse_protocol(const std::string& name) {
  if (name == "hc3i") return driver::ProtocolKind::kHc3i;
  if (name == "independent") return driver::ProtocolKind::kIndependent;
  if (name == "global") return driver::ProtocolKind::kCoordinatedGlobal;
  if (name == "hier") return driver::ProtocolKind::kHierarchicalCoordinated;
  if (name == "pessimistic") return driver::ProtocolKind::kPessimisticLog;
  HC3I_CHECK(false, "unknown --protocol: " + name);
  return driver::ProtocolKind::kHc3i;
}

TraceLevel parse_trace(const std::string& name) {
  if (name == "stats") return TraceLevel::kStats;
  if (name == "protocol") return TraceLevel::kProtocol;
  if (name == "action") return TraceLevel::kAction;
  HC3I_CHECK(false, "unknown --trace: " + name + " (stats|protocol|action)");
  return TraceLevel::kStats;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  if (flags.positional().size() != 3) {
    std::fprintf(stderr,
                 "usage: hc3i_sim <topology.conf> <application.conf> "
                 "<timers.conf> [--seed=N] [--protocol=...] [--failures] "
                 "[--campaign=<file>] [--trace=...] [--csv] "
                 "[--trace-out=<f>] [--metrics-out=<f>] "
                 "[--metrics-interval=<dur>]\n");
    return 2;
  }
  try {
    Trace::set_level(parse_trace(flags.get("trace", "stats")));

    driver::RunOptions opts;
    opts.spec = config::load_run_spec(flags.positional()[0],
                                      flags.positional()[1],
                                      flags.positional()[2]);
    opts.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    opts.protocol = parse_protocol(flags.get("protocol", "hc3i"));
    opts.auto_failures = flags.get_bool("failures", false);
    const std::string campaign_path = flags.get("campaign", "");
    if (!campaign_path.empty()) {
      opts.campaign = config::parse_campaign(
          config::read_file(campaign_path), opts.spec.topology, campaign_path);
    }
    opts.validate = false;  // report violations instead of throwing

    const std::string trace_out = flags.get("trace-out", "");
    const std::string metrics_out = flags.get("metrics-out", "");
    opts.trace = !trace_out.empty();
    const std::string interval_text = flags.get("metrics-interval", "");
    if (!interval_text.empty()) {
      const auto parsed = parse_duration(interval_text);
      HC3I_CHECK(parsed.has_value() && !parsed->is_infinite(),
                 "bad --metrics-interval: " + interval_text);
      opts.metrics_interval = *parsed;
    } else if (!metrics_out.empty()) {
      opts.metrics_interval = seconds(30);
    }

    const driver::RunResult result = driver::run_simulation(opts);
    if (result.obs != nullptr) {
      if (!trace_out.empty()) {
        HC3I_CHECK(obs::write_text_file(trace_out, obs::trace_json(*result.obs)),
                   "cannot write " + trace_out);
      }
      if (!metrics_out.empty()) {
        HC3I_CHECK(
            obs::write_text_file(metrics_out, obs::metrics_tsv(*result.obs)),
            "cannot write " + metrics_out);
      }
    }
    if (flags.get_bool("csv", false)) {
      std::printf("%s", driver::render_counters_csv(result).c_str());
    } else {
      std::printf("%s", driver::render_report(
                            result, opts.spec.topology.cluster_count())
                            .c_str());
    }
    return result.violations.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hc3i_sim: %s\n", e.what());
    return 2;
  }
}
