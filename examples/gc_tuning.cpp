// Garbage-collection tuning — explores the trade-off the paper closes §5.4
// with: "A tradeoff has to be found between the frequency of garbage
// collection and the number of CLCs stored."  Runs the paper's reference
// workload at several GC periods and reports storage vs GC traffic, plus
// the safety check: a failure injected right after the last GC still
// recovers.
//
//   ./gc_tuning [--seed=1] [--msgs-1to0=103]

#include <cstdio>

#include "config/presets.hpp"
#include "driver/run.hpp"
#include "util/flags.hpp"
#include "util/quantity.hpp"

using namespace hc3i;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double msgs = flags.get_double("msgs-1to0", 103.0);

  std::printf("GC period sweep on the paper's reference workload "
              "(cluster-1 -> cluster-0 messages: %.0f)\n\n", msgs);
  std::printf("%-10s %-10s %-14s %-16s %-18s %s\n", "period", "rounds",
              "max CLCs (c0)", "storage HW (c0)", "post-fault OK?",
              "retained at end");
  for (const int period_min : {30, 60, 120, 240, 0}) {
    driver::RunOptions opts;
    opts.spec.topology = config::paper_reference_topology();
    opts.spec.application = config::paper_reference_application(msgs);
    opts.spec.timers = config::paper_reference_timers(
        minutes(30), minutes(30),
        period_min == 0 ? SimTime::infinity() : minutes(period_min));
    opts.seed = seed;
    // Fault near the end of the run: every retained-CLC decision the GC
    // made must still admit a full recovery line.
    opts.scripted_failures.push_back({hours(9) + minutes(30), NodeId{17}});
    const auto r = driver::run_simulation(opts);
    std::printf("%-10s %-10llu %-14llu %-16s %-18s %llu / %llu\n",
                period_min == 0 ? "off" : (std::to_string(period_min) + "min").c_str(),
                static_cast<unsigned long long>(r.counter("gc.rounds")),
                static_cast<unsigned long long>(r.counter("store.max_clcs.c0")),
                format_bytes(r.counter("store.max_bytes.c0")).c_str(),
                r.violations.empty() ? "consistent" : "VIOLATIONS",
                static_cast<unsigned long long>(r.counter("store.final_clcs.c0")),
                static_cast<unsigned long long>(r.counter("store.final_clcs.c1")));
  }
  std::printf("\nEach retained CLC costs every node 2 local states (own part\n"
              "plus its neighbour's replica) — the paper's 63-CLC run kept\n"
              "126 states per node until the first GC reclaimed them.\n");
  return 0;
}
