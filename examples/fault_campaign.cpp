// Fault-campaign scenario: recovery cost vs fault rate vs federation size.
//
// The paper proves the protocol *correct* under failures; this scenario
// measures what recovery *costs* as fault load and cluster count grow — the
// comparison axis of the CIC literature (rollback fanout, replayed
// messages, lost work, restart latency).  Each row runs the scale-out ring
// workload (config::scale_federation_spec) under a federation-wide Poisson
// failure stream of the given MTBF and reports the per-incident recovery
// telemetry the fault subsystem records.
//
//   ./fault_campaign                                   # default sweep
//   ./fault_campaign --clusters=2,5,10 --mtbf=5min,2min,1min
//   ./fault_campaign --nodes=50 --minutes=20 --seed=3
//   ./fault_campaign --reference --clusters=10         # the fixed reference
//                                                      #   campaign + incident
//                                                      #   table (CI golden's
//                                                      #   scenario)
//   ./fault_campaign --overlap --clusters=10           # the overlapping-burst
//                                                      #   campaign: concurrent
//                                                      #   per-cluster
//                                                      #   recoveries, conc
//                                                      #   column + residual
//                                                      #   row in the table
//
// Columns: ev/s (simulator throughput under fault load), faults (injected),
// rb/fault (cluster rollbacks per incident, cascades included), fanout
// (rollback alerts per incident), replay (logged messages re-sent), lost_s
// (node-seconds of recomputation), lat_ms (mean injection-to-resume
// recovery latency).

#include <cstdio>
#include <string>
#include <vector>

#include "config/presets.hpp"
#include "driver/report.hpp"
#include "driver/run.hpp"
#include "fault/campaign.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/quantity.hpp"
#include "util/walltime.hpp"

using namespace hc3i;

namespace {

using util::now_sec;

/// Split "a,b,c" into non-empty tokens.
std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) out.push_back(tok);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

struct Row {
  std::size_t clusters;
  SimTime mtbf;
  std::uint64_t events;
  double wall_sec;
  std::uint64_t faults;
  std::uint64_t rollbacks;
  std::uint64_t fanout;
  std::uint64_t replayed;
  double lost_work_s;
  double mean_latency_s;
};

Row run_one(std::size_t clusters, std::uint32_t nodes, SimTime total,
            SimTime mtbf, std::uint64_t seed) {
  driver::RunOptions opts;
  opts.spec = config::scale_federation_spec(clusters, nodes, total);
  fault::StreamSpec stream;  // federation-wide Poisson fault load
  stream.mtbf = mtbf;
  opts.campaign.streams.push_back(stream);
  opts.seed = seed;
  const double t0 = now_sec();
  const driver::RunResult result = driver::run_simulation(opts);
  Row row{};
  row.clusters = clusters;
  row.mtbf = mtbf;
  row.events = result.events_executed;
  row.wall_sec = now_sec() - t0;
  row.faults = result.counter("fault.injected");
  row.rollbacks = result.counter("rollback.count");
  row.fanout = result.counter("rollback.alerts");
  row.replayed = result.counter("log.resent_msgs");
  row.lost_work_s = result.registry.summary("rollback.lost_work_s").sum();
  row.mean_latency_s =
      result.registry.summary("fault.recovery_latency_s").mean();
  return row;
}

int run_reference(std::size_t clusters, std::uint32_t nodes, SimTime total,
                  std::uint64_t seed, bool overlap) {
  driver::RunOptions opts;
  opts.spec = config::scale_federation_spec(clusters, nodes, total);
  opts.campaign =
      overlap ? fault::reference_overlap_campaign(clusters, nodes, total)
              : fault::reference_scale_campaign(clusters, nodes, total);
  if (!overlap) opts.campaign.serialize_faults = true;  // the legacy scenario
  if (overlap) {
    // Reject campaigns whose same-cluster queues cannot drain before the
    // quiesce bound (a burst denser than the cluster's recovery rate).
    try {
      fault::check_queue_bounds(opts.campaign, opts.spec,
                                opts.spec.application.total_time);
    } catch (const CheckFailure& e) {
      std::fprintf(stderr, "unbounded same-cluster queue: %s\n", e.what());
      return 2;
    }
  }
  opts.seed = seed;
  const driver::RunResult result = driver::run_simulation(opts);
  std::printf("%s", driver::render_report(result, clusters).c_str());
  return result.violations.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  for (const std::string& name : flags.names()) {
    if (name != "clusters" && name != "nodes" && name != "seed" &&
        name != "minutes" && name != "mtbf" && name != "reference" &&
        name != "overlap") {
      std::fprintf(stderr,
                   "unknown flag --%s (known: --clusters --nodes --seed "
                   "--minutes --mtbf --reference --overlap)\n",
                   name.c_str());
      return 2;
    }
  }
  const auto nodes = static_cast<std::uint32_t>(flags.get_int("nodes", 100));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const SimTime total = minutes(flags.get_int("minutes", 20));

  std::vector<std::size_t> clusters;
  for (const std::string& tok : split_list(flags.get("clusters", ""))) {
    const auto v = parse_uint(tok);
    if (!v || *v < 2) {
      std::fprintf(stderr, "--clusters wants counts >= 2, got '%s'\n",
                   tok.c_str());
      return 2;
    }
    clusters.push_back(static_cast<std::size_t>(*v));
  }
  if (clusters.empty()) clusters = {2, 5, 10};

  if (flags.get_bool("reference", false) || flags.get_bool("overlap", false)) {
    return run_reference(clusters.back(), nodes, total, seed,
                         flags.get_bool("overlap", false));
  }

  std::vector<SimTime> mtbfs;
  for (const std::string& tok : split_list(flags.get("mtbf", ""))) {
    const auto v = parse_duration(tok);
    if (!v || v->is_infinite() || v->ns <= 0) {
      std::fprintf(stderr, "--mtbf wants finite durations, got '%s'\n",
                   tok.c_str());
      return 2;
    }
    mtbfs.push_back(*v);
  }
  if (mtbfs.empty()) mtbfs = {minutes(10), minutes(5), minutes(2)};

  std::printf("fault-campaign sweep — %u nodes/cluster, %s simulated, ring "
              "traffic,\nfederation-wide Poisson failure stream (one fault "
              "at a time, paper 2.1)\n\n",
              nodes, to_string(total).c_str());
  std::printf("%9s %8s %11s %7s %9s %7s %8s %8s %8s\n", "clusters", "mtbf",
              "ev/s", "faults", "rb/fault", "fanout", "replay", "lost_s",
              "lat_ms");
  for (const std::size_t c : clusters) {
    for (const SimTime mtbf : mtbfs) {
      const Row r = run_one(c, nodes, total, mtbf, seed);
      std::printf("%9zu %8s %11.0f %7llu %9.2f %7llu %8llu %8.1f %8.1f\n", c,
                  to_string(r.mtbf).c_str(),
                  r.wall_sec > 0 ? r.events / r.wall_sec : 0.0,
                  static_cast<unsigned long long>(r.faults),
                  r.faults > 0 ? static_cast<double>(r.rollbacks) /
                                     static_cast<double>(r.faults)
                               : 0.0,
                  static_cast<unsigned long long>(r.fanout),
                  static_cast<unsigned long long>(r.replayed), r.lost_work_s,
                  r.mean_latency_s * 1e3);
    }
  }
  std::printf(
      "\ncolumns: rb/fault = cluster rollbacks per injected fault (cascades "
      "included);\n         fanout = rollback alerts received federation-"
      "wide; replay = logged\n         messages re-sent; lost_s = node-"
      "seconds of recomputation; lat_ms =\n         mean injection-to-resume "
      "recovery latency.\n");
  return 0;
}
