#include "fault/campaign.hpp"

#include <string>

#include "util/check.hpp"

namespace hc3i::fault {

namespace {

void check_node(NodeId n, const config::TopologySpec& topo, const char* what) {
  HC3I_CHECK(n.v < topo.total_nodes(),
             std::string(what) + ": victim node " + std::to_string(n.v) +
                 " out of range (federation has " +
                 std::to_string(topo.total_nodes()) + " nodes)");
}

void check_cluster(ClusterId c, const config::TopologySpec& topo,
                   const char* what) {
  HC3I_CHECK(c.v < topo.cluster_count(),
             std::string(what) + ": cluster " + std::to_string(c.v) +
                 " out of range (federation has " +
                 std::to_string(topo.cluster_count()) + " clusters)");
}

}  // namespace

void Campaign::validate(const config::TopologySpec& topo) const {
  for (const KillSpec& k : kills) {
    check_node(k.victim, topo, "campaign [kill]");
    HC3I_CHECK(!k.at.is_infinite(), "campaign [kill]: 'at' must be finite");
  }
  for (const StreamSpec& s : streams) {
    if (s.cluster) check_cluster(*s.cluster, topo, "campaign [stream]");
    HC3I_CHECK(s.mtbf.ns > 0 && !s.mtbf.is_infinite(),
               "campaign [stream]: mtbf must be positive and finite");
    HC3I_CHECK(s.start <= s.stop,
               "campaign [stream]: start must not exceed stop");
  }
  for (const BurstSpec& b : bursts) {
    check_cluster(b.cluster, topo, "campaign [burst]");
    HC3I_CHECK(b.kills >= 1, "campaign [burst]: kills must be >= 1");
    const std::uint32_t size = topo.clusters[b.cluster.v].nodes;
    HC3I_CHECK(b.first_victim < size,
               "campaign [burst]: first_victim out of cluster range");
    HC3I_CHECK(b.kills <= size,
               "campaign [burst]: kills " + std::to_string(b.kills) +
                   " exceeds cluster size " + std::to_string(size));
    HC3I_CHECK(!b.at.is_infinite() && !b.window.is_infinite(),
               "campaign [burst]: at/window must be finite");
  }
  for (const RepeatSpec& r : repeats) {
    check_node(r.victim, topo, "campaign [repeat]");
    HC3I_CHECK(r.times >= 1, "campaign [repeat]: times must be >= 1");
    HC3I_CHECK(!r.first.is_infinite(),
               "campaign [repeat]: 'first' must be finite");
    HC3I_CHECK(r.times == 1 || (r.gap.ns > 0 && !r.gap.is_infinite()),
               "campaign [repeat]: gap must be positive for times > 1");
  }
  for (const PhaseTriggerSpec& t : phase_triggers) {
    check_cluster(t.cluster, topo, "campaign [phase_trigger]");
    check_node(t.victim, topo, "campaign [phase_trigger]");
    HC3I_CHECK(t.after_acks >= 1,
               "campaign [phase_trigger]: after_acks must be >= 1");
    if (t.phase == Phase::kPhase1Acks) {
      // The commit runs synchronously once the last ack is recorded, so a
      // kill "between phase-1 acks and commit" needs after_acks strictly
      // below the cluster size; a larger value would never match at all.
      HC3I_CHECK(t.after_acks < topo.clusters[t.cluster.v].nodes,
                 "campaign [phase_trigger]: after_acks " +
                     std::to_string(t.after_acks) +
                     " must be below the cluster size " +
                     std::to_string(topo.clusters[t.cluster.v].nodes) +
                     " for the ack/commit window to exist");
    }
    HC3I_CHECK(t.occurrence >= 1,
               "campaign [phase_trigger]: occurrence must be >= 1");
  }
}

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kPhase1Acks:
      return "phase1_acks";
    case Phase::kCommit:
      return "commit";
  }
  HC3I_UNREACHABLE("bad fault::Phase");
}

std::optional<Phase> parse_phase(std::string_view name) {
  if (name == "phase1_acks") return Phase::kPhase1Acks;
  if (name == "commit") return Phase::kCommit;
  return std::nullopt;
}

Campaign reference_scale_campaign(std::size_t clusters, std::uint32_t nodes,
                                  SimTime total) {
  HC3I_CHECK(clusters >= 2 && nodes >= 4,
             "reference_scale_campaign needs >= 2 clusters of >= 4 nodes");
  // Times are fractions of the horizon so the same campaign shape runs at
  // the bench's 10-minute and the CI golden's 30-minute horizons alike.
  const auto frac = [total](double f) {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(total.ns) * f)};
  };
  Campaign plan;
  // One scripted kill in cluster 0's interior.
  plan.kills.push_back(KillSpec{frac(0.20), NodeId{nodes / 2}});
  // Rack loss: three nodes of cluster 1 inside a 5%-of-horizon window.
  plan.bursts.push_back(
      BurstSpec{ClusterId{1}, 3, frac(0.35), frac(0.05), /*first_victim=*/1});
  // Sustained Poisson load on the last cluster for the middle of the run.
  StreamSpec stream;
  stream.cluster = ClusterId{static_cast<std::uint32_t>(clusters - 1)};
  stream.mtbf = frac(0.20);
  stream.start = frac(0.50);
  stream.stop = frac(0.90);
  plan.streams.push_back(stream);
  // A flaky machine in cluster 0 that fails twice.
  plan.repeats.push_back(
      RepeatSpec{NodeId{1}, 2, frac(0.55), frac(0.15)});
  // Phase-targeted: kill a cluster-0 node right after its 4th CLC commit.
  PhaseTriggerSpec trigger;
  trigger.cluster = ClusterId{0};
  trigger.phase = Phase::kCommit;
  trigger.occurrence = 4;
  trigger.victim = NodeId{2};
  trigger.not_before = frac(0.10);
  plan.phase_triggers.push_back(trigger);
  return plan;
}

}  // namespace hc3i::fault
