#include "fault/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace hc3i::fault {

namespace {

void check_node(NodeId n, const config::TopologySpec& topo, const char* what) {
  HC3I_CHECK(n.v < topo.total_nodes(),
             std::string(what) + ": victim node " + std::to_string(n.v) +
                 " out of range (federation has " +
                 std::to_string(topo.total_nodes()) + " nodes)");
}

void check_cluster(ClusterId c, const config::TopologySpec& topo,
                   const char* what) {
  HC3I_CHECK(c.v < topo.cluster_count(),
             std::string(what) + ": cluster " + std::to_string(c.v) +
                 " out of range (federation has " +
                 std::to_string(topo.cluster_count()) + " clusters)");
}

}  // namespace

void Campaign::validate(const config::TopologySpec& topo) const {
  for (const KillSpec& k : kills) {
    check_node(k.victim, topo, "campaign [kill]");
    HC3I_CHECK(!k.at.is_infinite(), "campaign [kill]: 'at' must be finite");
  }
  for (const StreamSpec& s : streams) {
    if (s.cluster) check_cluster(*s.cluster, topo, "campaign [stream]");
    HC3I_CHECK(s.mtbf.ns > 0 && !s.mtbf.is_infinite(),
               "campaign [stream]: mtbf must be positive and finite");
    HC3I_CHECK(s.start <= s.stop,
               "campaign [stream]: start must not exceed stop");
  }
  for (const BurstSpec& b : bursts) {
    check_cluster(b.cluster, topo, "campaign [burst]");
    HC3I_CHECK(b.kills >= 1, "campaign [burst]: kills must be >= 1");
    const std::uint32_t size = topo.clusters[b.cluster.v].nodes;
    HC3I_CHECK(b.first_victim < size,
               "campaign [burst]: first_victim out of cluster range");
    HC3I_CHECK(b.kills <= size,
               "campaign [burst]: kills " + std::to_string(b.kills) +
                   " exceeds cluster size " + std::to_string(size));
    HC3I_CHECK(!b.at.is_infinite() && !b.window.is_infinite(),
               "campaign [burst]: at/window must be finite");
  }
  for (const RepeatSpec& r : repeats) {
    check_node(r.victim, topo, "campaign [repeat]");
    HC3I_CHECK(r.times >= 1, "campaign [repeat]: times must be >= 1");
    HC3I_CHECK(!r.first.is_infinite(),
               "campaign [repeat]: 'first' must be finite");
    HC3I_CHECK(r.times == 1 || (r.gap.ns > 0 && !r.gap.is_infinite()),
               "campaign [repeat]: gap must be positive for times > 1");
  }
  for (const PhaseTriggerSpec& t : phase_triggers) {
    check_cluster(t.cluster, topo, "campaign [phase_trigger]");
    check_node(t.victim, topo, "campaign [phase_trigger]");
    HC3I_CHECK(t.after_acks >= 1,
               "campaign [phase_trigger]: after_acks must be >= 1");
    if (t.phase == Phase::kPhase1Acks) {
      // The commit runs synchronously once the last ack is recorded, so a
      // kill "between phase-1 acks and commit" needs after_acks strictly
      // below the cluster size; a larger value would never match at all.
      HC3I_CHECK(t.after_acks < topo.clusters[t.cluster.v].nodes,
                 "campaign [phase_trigger]: after_acks " +
                     std::to_string(t.after_acks) +
                     " must be below the cluster size " +
                     std::to_string(topo.clusters[t.cluster.v].nodes) +
                     " for the ack/commit window to exist");
    }
    HC3I_CHECK(t.occurrence >= 1,
               "campaign [phase_trigger]: occurrence must be >= 1");
  }
}

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kPhase1Acks:
      return "phase1_acks";
    case Phase::kCommit:
      return "commit";
  }
  HC3I_UNREACHABLE("bad fault::Phase");
}

std::optional<Phase> parse_phase(std::string_view name) {
  if (name == "phase1_acks") return Phase::kPhase1Acks;
  if (name == "commit") return Phase::kCommit;
  return std::nullopt;
}

Campaign reference_scale_campaign(std::size_t clusters, std::uint32_t nodes,
                                  SimTime total) {
  HC3I_CHECK(clusters >= 2 && nodes >= 4,
             "reference_scale_campaign needs >= 2 clusters of >= 4 nodes");
  // Times are fractions of the horizon so the same campaign shape runs at
  // the bench's 10-minute and the CI golden's 30-minute horizons alike.
  const auto frac = [total](double f) {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(total.ns) * f)};
  };
  Campaign plan;
  // One scripted kill in cluster 0's interior.
  plan.kills.push_back(KillSpec{frac(0.20), NodeId{nodes / 2}});
  // Rack loss: three nodes of cluster 1 inside a 5%-of-horizon window.
  plan.bursts.push_back(
      BurstSpec{ClusterId{1}, 3, frac(0.35), frac(0.05), /*first_victim=*/1});
  // Sustained Poisson load on the last cluster for the middle of the run.
  StreamSpec stream;
  stream.cluster = ClusterId{static_cast<std::uint32_t>(clusters - 1)};
  stream.mtbf = frac(0.20);
  stream.start = frac(0.50);
  stream.stop = frac(0.90);
  plan.streams.push_back(stream);
  // A flaky machine in cluster 0 that fails twice.
  plan.repeats.push_back(
      RepeatSpec{NodeId{1}, 2, frac(0.55), frac(0.15)});
  // Phase-targeted: kill a cluster-0 node right after its 4th CLC commit.
  PhaseTriggerSpec trigger;
  trigger.cluster = ClusterId{0};
  trigger.phase = Phase::kCommit;
  trigger.occurrence = 4;
  trigger.victim = NodeId{2};
  trigger.not_before = frac(0.10);
  plan.phase_triggers.push_back(trigger);
  return plan;
}

Campaign reference_overlap_campaign(std::size_t clusters, std::uint32_t nodes,
                                    SimTime total) {
  HC3I_CHECK(clusters >= 4 && nodes >= 4,
             "reference_overlap_campaign needs >= 4 clusters of >= 4 nodes");
  const auto frac = [total](double f) {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(total.ns) * f)};
  };
  Campaign plan;  // serialize_faults stays off: overlap is the point
  // A solo kill well clear of everything else (the single-incident baseline
  // row of the incident table).
  plan.kills.push_back(KillSpec{frac(0.20), NodeId{nodes / 2}});
  // The overlap instant: a cluster-0 kill fires at the same simulated time
  // as the first kill of each burst below, so four clusters recover
  // concurrently.
  plan.kills.push_back(KillSpec{frac(0.30), NodeId{nodes / 2}});
  // Kill during recovery: 20 ms later — inside cluster 0's recovery window
  // (detection delay alone is 50 ms) — a second cluster-0 kill queues and
  // fires at that cluster's recovery completion
  // (`fault.queued_same_cluster`).
  plan.kills.push_back(
      KillSpec{frac(0.30) + milliseconds(20), NodeId{nodes / 2 + 1}});
  // Overlapping rack loss across disjoint clusters: bursts in clusters 1
  // and 2 share the same window, a two-kill burst in cluster 3 starts at
  // the same instant.
  plan.bursts.push_back(
      BurstSpec{ClusterId{1}, 3, frac(0.30), frac(0.05), /*first_victim=*/1});
  plan.bursts.push_back(
      BurstSpec{ClusterId{2}, 3, frac(0.30), frac(0.05), /*first_victim=*/1});
  plan.bursts.push_back(
      BurstSpec{ClusterId{3}, 2, frac(0.30), frac(0.04), /*first_victim=*/0});
  // Sustained Poisson load on the last cluster for the middle of the run
  // (redraws at *its* cluster's recovery completion, not a global edge).
  StreamSpec stream;
  stream.cluster = ClusterId{static_cast<std::uint32_t>(clusters - 1)};
  stream.mtbf = frac(0.20);
  stream.start = frac(0.50);
  stream.stop = frac(0.90);
  plan.streams.push_back(stream);
  // A flaky cluster-0 machine late in the run.
  plan.repeats.push_back(RepeatSpec{NodeId{1}, 2, frac(0.55), frac(0.15)});
  // Phase-targeted kill, tolerant of concurrent remote-cluster recoveries.
  PhaseTriggerSpec trigger;
  trigger.cluster = ClusterId{0};
  trigger.phase = Phase::kCommit;
  trigger.occurrence = 4;
  trigger.victim = NodeId{2};
  trigger.not_before = frac(0.10);
  plan.phase_triggers.push_back(trigger);
  return plan;
}

void check_queue_bounds(const Campaign& plan, const config::RunSpec& spec,
                        SimTime bound) {
  const auto& topo = spec.topology;
  // Estimated recovery service time per cluster: failure detection plus the
  // state transfer that restores the victim from its neighbour's replica.
  const auto recovery_estimate = [&](std::uint32_t c) {
    const auto& san = topo.clusters[c].san;
    SimTime r = spec.timers.detection_delay + san.latency;
    if (std::isfinite(san.bytes_per_sec)) {
      r = r + from_seconds_f(
                  static_cast<double>(spec.application.state_bytes) /
                  san.bytes_per_sec);
    }
    return r;
  };
  const auto cluster_of = [&](NodeId n) {
    std::uint32_t c = 0, base = 0;
    while (base + topo.clusters[c].nodes <= n.v) base += topo.clusters[c++].nodes;
    return c;
  };

  struct ScheduledKill {
    SimTime at{};
    std::uint32_t cluster{};
    std::string injector;
  };
  std::vector<ScheduledKill> kills;
  for (std::size_t i = 0; i < plan.kills.size(); ++i) {
    const KillSpec& k = plan.kills[i];
    kills.push_back({k.at, cluster_of(k.victim),
                     "[kill] #" + std::to_string(i + 1)});
  }
  for (std::size_t i = 0; i < plan.bursts.size(); ++i) {
    const BurstSpec& b = plan.bursts[i];
    for (std::uint32_t j = 0; j < b.kills; ++j) {
      const SimTime when =
          b.kills > 1
              ? SimTime{b.at.ns +
                        (b.window.ns * static_cast<std::int64_t>(j)) /
                            (b.kills - 1)}
              : b.at;
      kills.push_back({when, b.cluster.v,
                       "[burst] #" + std::to_string(i + 1) + " (cluster " +
                           std::to_string(b.cluster.v) + ")"});
    }
  }
  for (std::size_t i = 0; i < plan.repeats.size(); ++i) {
    const RepeatSpec& r = plan.repeats[i];
    for (std::uint32_t j = 0; j < r.times; ++j) {
      const SimTime when = r.first + r.gap * static_cast<std::int64_t>(j);
      if (when > bound) break;  // the engine clamps these away anyway
      kills.push_back({when, cluster_of(r.victim),
                       "[repeat] #" + std::to_string(i + 1)});
    }
  }
  std::stable_sort(kills.begin(), kills.end(),
                   [](const ScheduledKill& a, const ScheduledKill& b) {
                     return a.at < b.at;
                   });

  // Walk each cluster's kill sequence through a FIFO server: a kill starts
  // when both its scheduled time and the previous recovery allow it.
  std::vector<SimTime> busy_until(topo.cluster_count(), SimTime::zero());
  for (const ScheduledKill& k : kills) {
    const SimTime start = std::max(k.at, busy_until[k.cluster]);
    HC3I_CHECK(
        start <= bound,
        "campaign " + k.injector + ": kill scheduled at " + to_string(k.at) +
            " queues behind cluster " + std::to_string(k.cluster) +
            "'s earlier recoveries until " + to_string(start) +
            ", past the quiesce bound " + to_string(bound) +
            " — the same-cluster queue cannot drain (estimated recovery " +
            to_string(recovery_estimate(k.cluster)) +
            "; widen the burst window or thin the kills)");
    busy_until[k.cluster] = start + recovery_estimate(k.cluster);
  }
}

}  // namespace hc3i::fault
