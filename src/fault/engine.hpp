#pragma once

// CampaignEngine — compiles a declarative fault::Campaign into simulator
// events against a live federation and owns the recovery telemetry.
//
// Concurrency model (default): at most one fault in flight *per cluster*.
// Disjoint-cluster injections recover concurrently — the hierarchy exists
// precisely so independent cluster failures stay independent — while the
// paper's §2.1 one-fault assumption is enforced cluster-locally:
//
//   * a kill aimed at a cluster that is already recovering queues on that
//     cluster's FIFO and fires the instant *that cluster's* recovery
//     completes (scripted kills count `fault.queued_same_cluster`,
//     burst/repeat kills keep the legacy `fault.deferred` name);
//   * per-cluster streams block — without consuming a draw — while their
//     own cluster recovers, and redraw at its completion; federation-wide
//     streams draw the victim first and block on the victim's cluster;
//   * phase-targeted triggers skip (`fault.skipped_overlap`) only when
//     their *own* cluster is recovering — a remote cluster's rollback does
//     not invalidate "between phase-1 ack and commit" here.
//
// Legacy serialisation model (`Campaign::serialize_faults`, the pre-PR-6
// behaviour, kept bit-compatible for golden reproduction): one fault at a
// time federation-wide —
//
//   * scripted kills that land while any recovery is pending are dropped
//     and counted under `fault.skipped_overlap` — the exact semantics of
//     the legacy `driver::ScriptedFailure` path;
//   * stream firings defer: a fresh exponential gap is drawn when the
//     blocking recovery completes (the legacy `auto_failures` semantics,
//     same RNG stream id for the federation-wide shim);
//   * burst and repeat kills queue FIFO and fire the instant the blocking
//     recovery completes — a rack loss is modelled as the fastest legal
//     serialisation of its kills;
//   * phase-targeted triggers are one-shot: a trigger whose moment arrives
//     mid-recovery is skipped and counted, because "between phase-1 ack and
//     commit" cannot be deferred and still mean anything.
//
// Quiesce bound: the driver passes the same bound it applies to automatic
// failures (for message-logging protocols the horizon minus one checkpoint
// period plus margin — see driver/run.cpp).  Scripted kills and burst ends
// beyond the bound are rejected with a CheckFailure at arm() time; stream
// stops are clamped; repeat occurrences past the bound are dropped.
//
// Everything the engine schedules is deterministic: per-injector RNG
// streams are derived from the simulation's master seed with fixed ids, so
// one (seed, campaign) pair always produces a byte-identical counter dump.

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/telemetry.hpp"
#include "fed/federation.hpp"
#include "hc3i/runtime.hpp"
#include "util/rng.hpp"

namespace hc3i::fault {

/// Arms a campaign against a federation and records per-incident telemetry.
class CampaignEngine final : public core::ProtocolObserver {
 public:
  /// `runtime` may be null (non-HC3I protocols); phase triggers then reject
  /// at arm() time.  `quiesce_bound` is the last admissible injection time.
  CampaignEngine(fed::Federation& fed, core::Hc3iRuntime* runtime,
                 Campaign plan, SimTime quiesce_bound);

  CampaignEngine(const CampaignEngine&) = delete;
  CampaignEngine& operator=(const CampaignEngine&) = delete;

  /// Validate timing against the quiesce bound and schedule every injector.
  /// Call once, after Federation::start(); throws CheckFailure on a kill
  /// that cannot quiesce before validation.
  void arm();

  /// Close the open telemetry window (call after the simulation drains).
  void finalize();

  RecoveryTelemetry& telemetry() { return telemetry_; }
  const std::vector<Incident>& incidents() const {
    return telemetry_.incidents();
  }

  // core::ProtocolObserver ---------------------------------------------------
  void on_phase1_ack(ClusterId cluster, std::uint64_t round,
                     std::uint32_t acks, std::uint32_t needed) override;
  void on_clc_commit(ClusterId cluster, SeqNum sn, bool forced) override;
  void on_failure_detected(ClusterId cluster, NodeId failed) override;

 private:
  struct StreamState {
    StreamSpec spec;
    RngStream rng;
    SimTime stop{};        ///< spec.stop clamped to the quiesce bound
    bool deferred{false};  ///< legacy mode: waiting for any recovery
    std::optional<ClusterId> blocked_on{};  ///< concurrent mode: waiting for
                                            ///< this cluster's recovery
  };
  struct TriggerState {
    PhaseTriggerSpec spec;
    std::uint32_t seen{0};
    bool done{false};
  };
  struct PendingKill {
    NodeId victim{};
    const char* source{""};
    const char* counter{""};  ///< stat bumped each time the kill queues
  };

  sim::Simulation& sim() { return fed_.simulation(); }
  ClusterId cluster_of(NodeId n) const {
    return fed_.topology().cluster_of(n);
  }

  /// Inject now (caller ensured the victim's cluster is clear) and open the
  /// incident record.
  void inject(NodeId victim, const char* source);
  /// Legacy: inject, or queue FIFO behind *any* pending recovery
  /// (bursts/repeats).
  void inject_or_queue(NodeId victim, const char* source);
  /// Legacy: inject, or drop with `fault.skipped_overlap` (kills/phase
  /// triggers).
  void inject_or_skip(NodeId victim, const char* source);
  /// Concurrent: inject, or queue on the victim's cluster FIFO, bumping
  /// `counter` each time it queues.
  void inject_or_queue_cluster(NodeId victim, const char* source,
                               const char* counter);
  /// Concurrent: inject, or drop with `fault.skipped_overlap` iff the
  /// victim's *own* cluster is recovering (phase triggers).
  void inject_or_skip_cluster(NodeId victim, const char* source);

  void schedule_stream_next(std::size_t i);
  void stream_fire(std::size_t i);
  void trigger_matched(TriggerState& t);
  void on_recovery(ClusterId cluster);

  fed::Federation& fed_;
  core::Hc3iRuntime* rt_;
  Campaign plan_;
  SimTime bound_;
  bool serialize_;  ///< legacy one-fault-federation-wide mode
  RecoveryTelemetry telemetry_;
  std::vector<StreamState> streams_;
  std::vector<TriggerState> triggers_;
  std::vector<PendingKill> pending_;  ///< legacy global FIFO, front at 0
  std::vector<std::vector<PendingKill>> cluster_queue_;  ///< concurrent FIFOs
  bool armed_{false};
};

}  // namespace hc3i::fault
