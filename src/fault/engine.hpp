#pragma once

// CampaignEngine — compiles a declarative fault::Campaign into simulator
// events against a live federation and owns the recovery telemetry.
//
// Serialisation model (paper §2.1, one fault at a time):
//
//   * scripted kills that land while a recovery is pending are dropped and
//     counted under `fault.skipped_overlap` — the exact semantics of the
//     legacy `driver::ScriptedFailure` path, kept bit-compatible so the
//     shim reproduces PR-era runs;
//   * stream firings defer: a fresh exponential gap is drawn when the
//     blocking recovery completes (the legacy `auto_failures` semantics,
//     same RNG stream id for the federation-wide shim);
//   * burst and repeat kills queue FIFO and fire the instant the blocking
//     recovery completes — a rack loss is modelled as the fastest legal
//     serialisation of its kills;
//   * phase-targeted triggers are one-shot: a trigger whose moment arrives
//     mid-recovery is skipped and counted, because "between phase-1 ack and
//     commit" cannot be deferred and still mean anything.
//
// Quiesce bound: the driver passes the same bound it applies to automatic
// failures (for message-logging protocols the horizon minus one checkpoint
// period plus margin — see driver/run.cpp).  Scripted kills and burst ends
// beyond the bound are rejected with a CheckFailure at arm() time; stream
// stops are clamped; repeat occurrences past the bound are dropped.
//
// Everything the engine schedules is deterministic: per-injector RNG
// streams are derived from the simulation's master seed with fixed ids, so
// one (seed, campaign) pair always produces a byte-identical counter dump.

#include <cstdint>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/telemetry.hpp"
#include "fed/federation.hpp"
#include "hc3i/runtime.hpp"
#include "util/rng.hpp"

namespace hc3i::fault {

/// Arms a campaign against a federation and records per-incident telemetry.
class CampaignEngine final : public core::ProtocolObserver {
 public:
  /// `runtime` may be null (non-HC3I protocols); phase triggers then reject
  /// at arm() time.  `quiesce_bound` is the last admissible injection time.
  CampaignEngine(fed::Federation& fed, core::Hc3iRuntime* runtime,
                 Campaign plan, SimTime quiesce_bound);

  CampaignEngine(const CampaignEngine&) = delete;
  CampaignEngine& operator=(const CampaignEngine&) = delete;

  /// Validate timing against the quiesce bound and schedule every injector.
  /// Call once, after Federation::start(); throws CheckFailure on a kill
  /// that cannot quiesce before validation.
  void arm();

  /// Close the open telemetry window (call after the simulation drains).
  void finalize();

  RecoveryTelemetry& telemetry() { return telemetry_; }
  const std::vector<Incident>& incidents() const {
    return telemetry_.incidents();
  }

  // core::ProtocolObserver ---------------------------------------------------
  void on_phase1_ack(ClusterId cluster, std::uint64_t round,
                     std::uint32_t acks, std::uint32_t needed) override;
  void on_clc_commit(ClusterId cluster, SeqNum sn, bool forced) override;
  void on_failure_detected(ClusterId cluster, NodeId failed) override;

 private:
  struct StreamState {
    StreamSpec spec;
    RngStream rng;
    SimTime stop{};        ///< spec.stop clamped to the quiesce bound
    bool deferred{false};  ///< a firing is waiting for recovery completion
  };
  struct TriggerState {
    PhaseTriggerSpec spec;
    std::uint32_t seen{0};
    bool done{false};
  };
  struct PendingKill {
    NodeId victim{};
    const char* source{""};
  };

  sim::Simulation& sim() { return fed_.simulation(); }
  ClusterId cluster_of(NodeId n) const {
    return fed_.topology().cluster_of(n);
  }

  /// Inject now (caller ensured no recovery is pending) and open the
  /// incident record.
  void inject(NodeId victim, const char* source);
  /// Inject, or queue FIFO behind the pending recovery (bursts/repeats).
  void inject_or_queue(NodeId victim, const char* source);
  /// Inject, or drop with `fault.skipped_overlap` (kills/phase triggers).
  void inject_or_skip(NodeId victim, const char* source);

  void schedule_stream_next(std::size_t i);
  void stream_fire(std::size_t i);
  void trigger_matched(TriggerState& t);
  void on_recovery(ClusterId cluster);

  fed::Federation& fed_;
  core::Hc3iRuntime* rt_;
  Campaign plan_;
  SimTime bound_;
  RecoveryTelemetry telemetry_;
  std::vector<StreamState> streams_;
  std::vector<TriggerState> triggers_;
  std::vector<PendingKill> pending_;  ///< FIFO, front at index 0
  bool armed_{false};
};

}  // namespace hc3i::fault
