#pragma once

// Declarative fault campaigns.
//
// The protocol's whole reason to exist is surviving failures, but a bare
// "kill node n at time t" list cannot express the failure patterns the
// CIC/rollback literature measures against: sustained Poisson fault load,
// correlated rack loss, flaky repeat-offender machines, or failures timed
// against a protocol phase (the hand-built race in
// Rollback.FailureBetweenPhase1AcksLeavesNoStaleDdv).  A fault::Campaign is
// the declarative form of all of those: a list of typed injectors that the
// CampaignEngine (fault/engine.hpp) compiles into simulator events against a
// live federation, with one-fault-at-a-time serialisation (paper §2.1) and
// per-incident recovery telemetry (fault/telemetry.hpp).
//
// This header is pure data + validation: it depends only on config/spec and
// util so the config parser/writer (campaign files) and the driver can share
// the type without pulling in the federation.  Campaigns are deterministic by
// construction — every random choice is drawn from a fixed, per-injector RNG
// stream — so a (seed, campaign) pair always produces a byte-identical
// counter dump.

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "config/spec.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace hc3i::fault {

/// One-shot kill at a fixed simulated time (subsumes the driver's legacy
/// `ScriptedFailure`).  If a previous fault's recovery is still pending at
/// `at`, the kill is dropped and counted under `fault.skipped_overlap`
/// (the legacy scripted-failure semantics, kept bit-compatible).
struct KillSpec {
  SimTime at{};
  NodeId victim{};
  constexpr bool operator==(const KillSpec&) const = default;
};

/// Poisson/MTBF failure stream: exponential inter-arrival times with mean
/// `mtbf`, victims drawn uniformly from `cluster` (or the whole federation
/// when `cluster` is empty — the legacy `auto_failures` behaviour).  A
/// firing that lands while a recovery is pending is deferred: a fresh gap is
/// drawn once the recovery completes.  The stream dies permanently when a
/// draw lands past min(`stop`, quiesce bound).
struct StreamSpec {
  std::optional<ClusterId> cluster;  ///< empty = federation-wide
  SimTime mtbf{};
  SimTime start{SimTime::zero()};
  SimTime stop{SimTime::infinity()};  ///< clamped to the quiesce bound
  constexpr bool operator==(const StreamSpec&) const = default;
};

/// Correlated burst: `kills` distinct nodes of one cluster within `window`
/// of `at` — the rack-loss pattern.  The protocol model admits one fault at
/// a time, so the burst is the fastest legal serialisation: kills are spaced
/// evenly across the window and any kill that lands mid-recovery fires the
/// instant that recovery completes.  Victims are the cluster's nodes in
/// local order starting at `first_victim`.
struct BurstSpec {
  ClusterId cluster{};
  std::uint32_t kills{2};
  SimTime at{};
  SimTime window{};
  std::uint32_t first_victim{0};  ///< local index of the first victim
  constexpr bool operator==(const BurstSpec&) const = default;
};

/// Repeat offender: the same node fails `times` times — first at `first`,
/// then every `gap`.  Occurrences that would land past the quiesce bound are
/// clamped away; mid-recovery occurrences are deferred like burst kills.
struct RepeatSpec {
  NodeId victim{};
  std::uint32_t times{2};
  SimTime first{};
  SimTime gap{};
  constexpr bool operator==(const RepeatSpec&) const = default;
};

/// Protocol phase a trigger can target (HC3I protocols only).
enum class Phase : std::uint8_t {
  kPhase1Acks,  ///< between a CLC round's phase-1 acks and its commit
  kCommit,      ///< immediately after a CLC commit
};

/// Phase-targeted trigger: fire relative to protocol state instead of the
/// clock.  `kPhase1Acks` fires when the `occurrence`-th observed round in
/// `cluster` (at or after `not_before`) has collected `after_acks` phase-1
/// acks but has not committed — the generalisation of the hand-built
/// mid-round race regression.  `kCommit` fires right after that round
/// commits.  One-shot; skipped (and counted) if a recovery is pending.
struct PhaseTriggerSpec {
  ClusterId cluster{};
  Phase phase{Phase::kPhase1Acks};
  /// kPhase1Acks: ack count that arms the kill; must be strictly below the
  /// cluster size (the last ack commits synchronously, so the window
  /// closes there — validate() enforces this).
  std::uint32_t after_acks{1};
  std::uint32_t occurrence{1};   ///< 1-based index of the matching event
  NodeId victim{};
  SimTime not_before{SimTime::zero()};
  constexpr bool operator==(const PhaseTriggerSpec&) const = default;
};

/// A fault campaign: every injector of every kind, armed together.
struct Campaign {
  std::vector<KillSpec> kills;
  std::vector<StreamSpec> streams;
  std::vector<BurstSpec> bursts;
  std::vector<RepeatSpec> repeats;
  std::vector<PhaseTriggerSpec> phase_triggers;

  /// Legacy serialisation mode: one fault at a time *federation-wide* (the
  /// paper's §2.1 reading, and the semantics of every run before concurrent
  /// recoveries landed).  Default off: injections targeting disjoint
  /// clusters recover concurrently and only same-cluster injections queue
  /// behind an in-flight recovery (see fault/engine.hpp).  The
  /// `scale_federation --faulty` CI golden runs with this flag on, pinning
  /// the legacy byte-identical dumps forever.
  bool serialize_faults{false};

  bool operator==(const Campaign&) const = default;

  /// True when no injector is configured (the engine is not even built).
  bool empty() const {
    return kills.empty() && streams.empty() && bursts.empty() &&
           repeats.empty() && phase_triggers.empty();
  }
  /// Total number of injectors.
  std::size_t size() const {
    return kills.size() + streams.size() + bursts.size() + repeats.size() +
           phase_triggers.size();
  }

  /// Structural validation against a topology (victims exist, clusters in
  /// range, burst fits its cluster, stream MTBF positive...).  Throws
  /// CheckFailure with the offending injector on inconsistency.
  void validate(const config::TopologySpec& topo) const;
};

/// Human-readable phase name ("phase1_acks" / "commit"); round-trips through
/// parse_phase.
const char* to_string(Phase p);
/// Parse a phase name; empty optional on unknown input.
std::optional<Phase> parse_phase(std::string_view name);

/// The fixed campaign of the scale-out regime (docs/scaling.md "failures at
/// scale"): one scripted kill, a 3-node burst, a per-cluster MTBF stream, a
/// repeat offender and a commit-targeted trigger, with times expressed as
/// fractions of `total` so the same shape runs at any horizon.  Requires
/// `clusters >= 2`; used by the `scale_fed_faulty` bench kernel, the
/// `scale_federation --faulty` CI golden and the fault_campaign example.
Campaign reference_scale_campaign(std::size_t clusters, std::uint32_t nodes,
                                  SimTime total);

/// The concurrent-recovery variant of the scale-out campaign
/// (docs/scaling.md "concurrent incidents"): three bursts start at the same
/// instant in *disjoint* clusters, a scripted kill lands in cluster 0 at
/// that instant and a second cluster-0 kill 20 ms later exercises the
/// kill-during-recovery queue (`fault.queued_same_cluster`).  Requires
/// `clusters >= 4`; `serialize_faults` is left off — this campaign exists
/// to overlap recoveries.  Used by the `scale_fed_overlap` bench kernel,
/// the `scale_federation --overlap` CI golden and `fault_campaign
/// --overlap`.
Campaign reference_overlap_campaign(std::size_t clusters, std::uint32_t nodes,
                                    SimTime total);

/// Reject campaigns whose scheduled kills pile into a same-cluster queue
/// that cannot drain before the quiesce bound (an effectively unbounded
/// queue: every queued kill past the bound is dropped en masse).  Models
/// each cluster's recovery as a FIFO server with an estimated service time
/// of detection delay + SAN latency + state transfer, walks every
/// time-scheduled kill (scripted, burst, repeat — streams and phase
/// triggers have no static schedule) and throws CheckFailure naming the
/// offending injector when a queued kill could not fire before `bound`.
void check_queue_bounds(const Campaign& plan, const config::RunSpec& spec,
                        SimTime bound);

}  // namespace hc3i::fault
