#pragma once

// Recovery telemetry: what a failure actually costs.
//
// The related work compares checkpointing protocols by recovery cost —
// rollback fanout, replayed traffic, lost work, restart latency — yet the
// run result used to expose only `fault.injected`.  RecoveryTelemetry turns
// every injection into an Incident record: the engine opens one per kill,
// the protocol observer stamps detection/rollback facts, the federation's
// recovery signal stamps the latency and closes the incident's interval.
//
// Attribution is *per-incident interval*: an incident owns
// [injection, its own cluster's resume), and federation-wide cost deltas
// (alerts, rollbacks, replayed messages/bytes, ledger events undone, lost
// work) are measured as registry/ledger differences over the *segments*
// between interval edges.  A segment during which k incidents are open
// splits its delta evenly across the k (integer shares; the oldest open
// incident absorbs the remainder), which is exactly interval-intersection
// attribution for concurrently-recovering clusters.  Cost that accrues
// while *no* incident is open — trailing replay after the last resume,
// cascade tails between incidents — lands in a synthetic "post-campaign"
// residual row, so the incident rows plus the residual sum *exactly* to the
// end-of-run counters.
//
// Windowed deltas keep the attribution deterministic and cheap: nothing on
// the hot path changes, and a (seed, campaign) pair always yields the same
// incident table.  Each incident also records how many recoveries were in
// flight at its injection (`concurrent_peak` is the high-water over its
// interval), and the telemetry tracks the campaign-wide maximum overlap.
//
// Aggregates are also pushed into registry summaries
// (`fault.recovery_latency_s`, `fault.alert_fanout`, `fault.replayed_msgs`,
// `fault.nodes_rolled_back`) so reports and benches can read them without
// walking the table.  Summaries never appear in counter dumps, so none of
// this perturbs golden files.

#include <cstdint>
#include <vector>

#include "proto/ledger.hpp"
#include "stats/accumulators.hpp"
#include "stats/registry.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace hc3i::fault {

/// One injected failure and what its recovery cost.
struct Incident {
  std::uint32_t id{0};            ///< 1-based injection index (0 = residual)
  SimTime injected_at{};
  NodeId victim{};
  ClusterId cluster{};
  const char* source{"scripted"}; ///< scripted|stream|burst|repeat|phase
  SimTime detected_at{};          ///< failure-detector notification (HC3I)
  SimTime recovered_at{};         ///< faulty cluster's application resume
  bool recovery_complete{false};  ///< recovered_at is valid
  std::uint32_t concurrent_peak{0};  ///< max incidents open during interval

  // Interval deltas (federation-wide costs attributed to this incident).
  std::uint64_t rollbacks{0};          ///< cluster rollbacks (origin+cascade)
  std::uint64_t nodes_rolled_back{0};  ///< node-level restores implied
  std::uint64_t alert_fanout{0};       ///< rollback alerts received
  std::uint64_t replayed_msgs{0};      ///< logged messages re-sent
  std::uint64_t replayed_bytes{0};     ///< payload bytes of those re-sends
  std::uint64_t events_undone{0};      ///< ledger events discarded
  std::uint64_t ckpt_bytes_written{0};    ///< checkpoint bytes persisted
  std::uint64_t ckpt_bytes_delta_saved{0};///< bytes incremental capture saved
  std::uint64_t ckpt_stall_us{0};         ///< node-us stalled writing captures
  std::uint64_t recovery_read_us{0};      ///< us reading chains back on restore
  double lost_work_s{0.0};             ///< node-seconds of recomputation

  /// Injection-to-resume latency; zero when recovery never completed.
  SimTime recovery_latency() const {
    return recovery_complete ? recovered_at - injected_at : SimTime::zero();
  }
};

/// Campaign-level attribution facts the incident table alone cannot show.
struct CampaignSummary {
  bool has_residual{false};   ///< residual row is meaningful (run finalized)
  Incident residual{};        ///< id 0, source "post-campaign": cost accrued
                              ///< while no incident was open
  std::uint32_t max_overlap{0};  ///< most recoveries ever in flight at once
};

/// Observer-side recorder of per-incident recovery cost.
class RecoveryTelemetry {
 public:
  RecoveryTelemetry(stats::Registry& registry,
                    const proto::ConsistencyLedger& ledger);

  /// A failure was injected: attributes the elapsed segment and opens a new
  /// incident interval (concurrently with any intervals already open).
  void begin_incident(SimTime now, NodeId victim, ClusterId cluster,
                      const char* source);
  /// The failure detector notified the victim's cluster (HC3I observer).
  void on_failure_detected(SimTime now, ClusterId cluster);
  /// The faulty cluster's application resumed (federation recovery signal):
  /// attributes the elapsed segment and closes that cluster's incident.
  void on_recovery_complete(SimTime now, ClusterId cluster);
  /// End of run: attribute the tail segment and close any stuck intervals.
  void finalize(SimTime now);

  const std::vector<Incident>& incidents() const { return incidents_; }
  std::vector<Incident> take_incidents() { return std::move(incidents_); }
  /// Residual row + overlap high-water (valid once finalize() ran).
  CampaignSummary summary() const { return summary_; }
  /// Recovery-latency distribution in microseconds (completed recoveries
  /// only): the tail the mean in `fault.recovery_latency_s` hides under
  /// overlapping incidents.  Standalone accumulator, never registry-hosted,
  /// so counter dumps are untouched.
  const stats::Log2Histogram& latency_histogram() const {
    return latency_us_;
  }

 private:
  /// Counter values the segment attribution diffs.
  struct CostSnapshot {
    std::uint64_t rollbacks{0};
    std::uint64_t nodes{0};
    std::uint64_t alerts{0};
    std::uint64_t resent_msgs{0};
    std::uint64_t resent_bytes{0};
    std::uint64_t undone{0};
    std::uint64_t ckpt_bytes{0};
    std::uint64_t ckpt_saved{0};
    std::uint64_t ckpt_stall_us{0};
    std::uint64_t recovery_read_us{0};
    double lost_work_s{0.0};
  };
  CostSnapshot snapshot() const;
  /// Split the delta since `last_` across the open incidents (or into the
  /// residual when none are open) and advance `last_`.
  void attribute_segment();
  void observe_cost(const Incident& inc);

  stats::Registry& registry_;
  const proto::ConsistencyLedger& ledger_;
  std::vector<Incident> incidents_;
  std::vector<std::size_t> open_;  ///< indices into incidents_, oldest first
  CostSnapshot last_{};            ///< zero-init: pre-campaign cost → residual
  CampaignSummary summary_{};
  stats::Log2Histogram latency_us_;  ///< completed recovery latencies, us
};

}  // namespace hc3i::fault
