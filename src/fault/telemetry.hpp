#pragma once

// Recovery telemetry: what a failure actually costs.
//
// The related work compares checkpointing protocols by recovery cost —
// rollback fanout, replayed traffic, lost work, restart latency — yet the
// run result used to expose only `fault.injected`.  RecoveryTelemetry turns
// every injection into an Incident record: the engine opens one per kill,
// the protocol observer stamps detection/rollback facts, the federation's
// recovery signal stamps the latency, and the per-federation cost deltas
// (alerts, rollbacks, replayed messages/bytes, ledger events undone, lost
// work) are measured as registry/ledger differences over the incident's
// window [injection, next injection or end of run].
//
// Windowed deltas make the attribution deterministic and cheap: nothing on
// the hot path changes, and a (seed, campaign) pair always yields the same
// incident table.  When incidents are spaced closer than a recovery's
// cascade settles, trailing replay cost is charged to the *next* incident's
// window — acceptable for campaign-level reporting and called out in
// docs/scaling.md.
//
// Aggregates are also pushed into registry summaries
// (`fault.recovery_latency_s`, `fault.alert_fanout`, `fault.replayed_msgs`,
// `fault.nodes_rolled_back`) so reports and benches can read them without
// walking the table.

#include <cstdint>
#include <vector>

#include "proto/ledger.hpp"
#include "stats/registry.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace hc3i::fault {

/// One injected failure and what its recovery cost.
struct Incident {
  std::uint32_t id{0};            ///< 1-based injection index
  SimTime injected_at{};
  NodeId victim{};
  ClusterId cluster{};
  const char* source{"scripted"}; ///< scripted|stream|burst|repeat|phase
  SimTime detected_at{};          ///< failure-detector notification (HC3I)
  SimTime recovered_at{};         ///< faulty cluster's application resume
  bool recovery_complete{false};  ///< recovered_at is valid

  // Window deltas (federation-wide costs attributed to this incident).
  std::uint64_t rollbacks{0};          ///< cluster rollbacks (origin+cascade)
  std::uint64_t nodes_rolled_back{0};  ///< node-level restores implied
  std::uint64_t alert_fanout{0};       ///< rollback alerts received
  std::uint64_t replayed_msgs{0};      ///< logged messages re-sent
  std::uint64_t replayed_bytes{0};     ///< payload bytes of those re-sends
  std::uint64_t events_undone{0};      ///< ledger events discarded
  double lost_work_s{0.0};             ///< node-seconds of recomputation

  /// Injection-to-resume latency; zero when recovery never completed.
  SimTime recovery_latency() const {
    return recovery_complete ? recovered_at - injected_at : SimTime::zero();
  }
};

/// Observer-side recorder of per-incident recovery cost.
class RecoveryTelemetry {
 public:
  RecoveryTelemetry(stats::Registry& registry,
                    const proto::ConsistencyLedger& ledger);

  /// A failure was injected: closes the previous incident's window and
  /// opens a new one.
  void begin_incident(SimTime now, NodeId victim, ClusterId cluster,
                      const char* source);
  /// The failure detector notified the victim's cluster (HC3I observer).
  void on_failure_detected(SimTime now, ClusterId cluster);
  /// The faulty cluster's application resumed (federation recovery signal).
  void on_recovery_complete(SimTime now, ClusterId cluster);
  /// End of run: close the last open window.
  void finalize(SimTime now);

  const std::vector<Incident>& incidents() const { return incidents_; }
  std::vector<Incident> take_incidents() { return std::move(incidents_); }

 private:
  /// Counter values an incident window diffs.
  struct CostSnapshot {
    std::uint64_t rollbacks{0};
    std::uint64_t nodes{0};
    std::uint64_t alerts{0};
    std::uint64_t resent_msgs{0};
    std::uint64_t resent_bytes{0};
    std::uint64_t undone{0};
    double lost_work_s{0.0};
  };
  CostSnapshot snapshot() const;
  void close_window();

  stats::Registry& registry_;
  const proto::ConsistencyLedger& ledger_;
  std::vector<Incident> incidents_;
  CostSnapshot window_start_{};
  bool window_open_{false};
};

}  // namespace hc3i::fault
