#include "fault/engine.hpp"

#include <algorithm>
#include <string>

#include "obs/trace.hpp"
#include "util/quantity.hpp"

namespace hc3i::fault {

namespace {

// Fixed RNG stream id for failure injection, disjoint from the per-node
// streams the workload derives (those use the node id directly).  Index 0 —
// the slot the driver's `auto_failures` shim occupies — yields exactly the
// id the Federation's built-in injector used before the campaign engine
// subsumed it, so MTBF-driven runs reproduce pre-campaign behaviour draw
// for draw.
constexpr std::uint64_t kFailureRngStream = 0xFA11FA11ULL;

constexpr std::uint64_t stream_rng_id(std::size_t index) {
  return kFailureRngStream + (static_cast<std::uint64_t>(index) << 32);
}

}  // namespace

CampaignEngine::CampaignEngine(fed::Federation& fed,
                               core::Hc3iRuntime* runtime, Campaign plan,
                               SimTime quiesce_bound)
    : fed_(fed),
      rt_(runtime),
      plan_(std::move(plan)),
      bound_(quiesce_bound),
      serialize_(plan_.serialize_faults),
      telemetry_(fed.registry(), fed.ledger()),
      cluster_queue_(fed.topology().cluster_count()) {}

void CampaignEngine::arm() {
  HC3I_CHECK(!armed_, "CampaignEngine::arm called twice");
  armed_ = true;
  plan_.validate(fed_.spec().topology);
  HC3I_CHECK(plan_.phase_triggers.empty() || rt_ != nullptr,
             "campaign phase triggers observe HC3I protocol state; the "
             "selected protocol exposes none");

  // The quiesce bound is the last admissible injection time: a kill later
  // than this leaves the recovery (and, for message-logging protocols, the
  // replay of lost work) no runway before strict validation, so pre-failure
  // sends would be audited as ghosts.  Reject loudly instead of producing a
  // run whose violations blame the protocol.
  for (const KillSpec& k : plan_.kills) {
    HC3I_CHECK(k.at <= bound_,
               "campaign kill of node " + std::to_string(k.victim.v) +
                   " at " + to_string(k.at) +
                   " lands past the failure quiesce bound " +
                   to_string(bound_) +
                   ": recovery could not settle before validation "
                   "(move the kill earlier or extend the horizon)");
  }
  for (const BurstSpec& b : plan_.bursts) {
    const SimTime last = b.kills > 1 ? b.at + b.window : b.at;
    HC3I_CHECK(last <= bound_,
               "campaign burst in cluster " + std::to_string(b.cluster.v) +
                   " ends at " + to_string(last) +
                   ", past the failure quiesce bound " + to_string(bound_));
  }

  fed_.set_recovery_listener([this](ClusterId c) { on_recovery(c); });
  if (rt_ != nullptr) rt_->set_observer(this);

  // Streams arm first: the auto_failures shim occupies stream index 0 and
  // historically scheduled its first draw before any scripted kill.
  streams_.reserve(plan_.streams.size());
  for (std::size_t i = 0; i < plan_.streams.size(); ++i) {
    const StreamSpec& spec = plan_.streams[i];
    streams_.push_back(StreamState{spec, sim().rng_stream(stream_rng_id(i)),
                                   std::min(spec.stop, bound_), false});
    if (spec.start <= sim().now()) {
      schedule_stream_next(i);
    } else {
      sim().schedule_at(spec.start, [this, i] { schedule_stream_next(i); });
    }
  }

  for (const KillSpec& k : plan_.kills) {
    sim().schedule_at(k.at, [this, k] {
      if (serialize_) {
        inject_or_skip(k.victim, "scripted");
      } else {
        // Concurrent mode: a scripted kill into a recovering cluster is a
        // deliberate kill-during-recovery — queue it rather than drop it.
        inject_or_queue_cluster(k.victim, "scripted",
                                "fault.queued_same_cluster");
      }
    });
  }

  const net::Topology& topo = fed_.topology();
  for (const BurstSpec& b : plan_.bursts) {
    const std::uint32_t size = topo.cluster_size(b.cluster);
    const NodeId base = topo.first_node(b.cluster);
    for (std::uint32_t j = 0; j < b.kills; ++j) {
      // Kills spaced evenly across [at, at + window]; the one-fault-at-a-
      // time model serialises whatever lands inside a recovery.
      const SimTime when =
          b.kills > 1 ? SimTime{b.at.ns + (b.window.ns *
                                           static_cast<std::int64_t>(j)) /
                                              (b.kills - 1)}
                      : b.at;
      const NodeId victim{base.v + (b.first_victim + j) % size};
      sim().schedule_at(when, [this, victim] {
        if (serialize_) {
          inject_or_queue(victim, "burst");
        } else {
          inject_or_queue_cluster(victim, "burst", "fault.deferred");
        }
      });
    }
  }

  for (const RepeatSpec& r : plan_.repeats) {
    for (std::uint32_t j = 0; j < r.times; ++j) {
      const SimTime when = r.first + r.gap * static_cast<std::int64_t>(j);
      if (when > bound_) break;  // clamp occurrences past the quiesce bound
      const NodeId victim = r.victim;
      sim().schedule_at(when, [this, victim] {
        if (serialize_) {
          inject_or_queue(victim, "repeat");
        } else {
          inject_or_queue_cluster(victim, "repeat", "fault.deferred");
        }
      });
    }
  }

  triggers_.reserve(plan_.phase_triggers.size());
  for (const PhaseTriggerSpec& t : plan_.phase_triggers) {
    triggers_.push_back(TriggerState{t, 0, false});
  }
}

void CampaignEngine::finalize() { telemetry_.finalize(sim().now()); }

// ---------------------------------------------------------------------------
// Injection paths
// ---------------------------------------------------------------------------

void CampaignEngine::inject(NodeId victim, const char* source) {
  telemetry_.begin_incident(sim().now(), victim, cluster_of(victim), source);
  // Every injection path (scripted, burst, MTBF stream, repeat offender,
  // phase trigger) funnels through here, so one record catches the campaign
  // decision with its source label; the federation emits the fault itself.
  HC3I_OBS(fed_.recorder(), obs::RecordKind::kCampaignInject, sim().now(),
           cluster_of(victim).v, victim.v, 0, 0, 0, source);
  fed_.inject_failure(victim);
}

void CampaignEngine::inject_or_queue(NodeId victim, const char* source) {
  if (sim().now() > bound_) {
    // A deferral pushed this kill past the quiesce bound (arm() only checks
    // the *scheduled* times): injecting now would leave the recovery — and
    // for message-logging protocols the replay of lost work — no runway
    // before strict validation, the ghost-send hazard the bound exists to
    // prevent.  Drop and count instead.
    fed_.registry().inc("fault.skipped_quiesce");
    return;
  }
  if (fed_.recovery_pending()) {
    pending_.push_back(PendingKill{victim, source});
    fed_.registry().inc("fault.deferred");
    return;
  }
  inject(victim, source);
}

void CampaignEngine::inject_or_skip(NodeId victim, const char* source) {
  if (sim().now() > bound_) {
    // Phase-targeted triggers can match a round that runs in the drain
    // window; past the bound the kill could not settle (see above).
    fed_.registry().inc("fault.skipped_quiesce");
    return;
  }
  if (fed_.recovery_pending()) {
    fed_.registry().inc("fault.skipped_overlap");
    return;
  }
  inject(victim, source);
}

void CampaignEngine::inject_or_queue_cluster(NodeId victim, const char* source,
                                             const char* counter) {
  if (sim().now() > bound_) {
    // A queued kill drained past the quiesce bound — same ghost-send hazard
    // as the legacy deferral path above.
    fed_.registry().inc("fault.skipped_quiesce");
    return;
  }
  const ClusterId c = cluster_of(victim);
  if (fed_.recovery_pending(c)) {
    cluster_queue_[c.v].push_back(PendingKill{victim, source, counter});
    fed_.registry().inc(counter);
    return;
  }
  inject(victim, source);
}

void CampaignEngine::inject_or_skip_cluster(NodeId victim,
                                            const char* source) {
  if (sim().now() > bound_) {
    fed_.registry().inc("fault.skipped_quiesce");
    return;
  }
  // A remote cluster's concurrent recovery is irrelevant to this trigger's
  // phase window; only the target cluster's own recovery invalidates it.
  if (fed_.recovery_pending(cluster_of(victim))) {
    fed_.registry().inc("fault.skipped_overlap");
    return;
  }
  inject(victim, source);
}

// ---------------------------------------------------------------------------
// MTBF streams
// ---------------------------------------------------------------------------

void CampaignEngine::schedule_stream_next(std::size_t i) {
  StreamState& st = streams_[i];
  const SimTime gap =
      from_seconds_f(st.rng.exponential(st.spec.mtbf.seconds()));
  const SimTime when = sim().now() + gap;
  if (when > st.stop) return;  // the stream dies past its window
  sim().schedule_at(when, [this, i] { stream_fire(i); });
}

void CampaignEngine::stream_fire(std::size_t i) {
  StreamState& st = streams_[i];
  if (serialize_ && fed_.recovery_pending()) {
    // One fault at a time: a fresh gap is drawn once recovery completes.
    st.deferred = true;
    return;
  }
  const net::Topology& topo = fed_.topology();
  if (!serialize_ && st.spec.cluster &&
      fed_.recovery_pending(*st.spec.cluster)) {
    // Per-cluster stream: its own cluster is recovering.  Block *before*
    // drawing a victim so the redraw at completion starts from the same
    // RNG position a never-blocked stream would use.
    st.blocked_on = *st.spec.cluster;
    return;
  }
  NodeId victim;
  if (st.spec.cluster) {
    const ClusterId c = *st.spec.cluster;
    victim = NodeId{topo.first_node(c).v +
                    static_cast<std::uint32_t>(
                        st.rng.next_below(topo.cluster_size(c)))};
  } else {
    victim = NodeId{
        static_cast<std::uint32_t>(st.rng.next_below(topo.node_count()))};
  }
  if (!serialize_ && fed_.recovery_pending(cluster_of(victim))) {
    // Federation-wide stream: the drawn victim's cluster is mid-recovery.
    // Block on that cluster; the completion redraw picks gap and victim
    // afresh.
    st.blocked_on = cluster_of(victim);
    return;
  }
  inject(victim, "stream");
  schedule_stream_next(i);
}

// ---------------------------------------------------------------------------
// Phase-targeted triggers (ProtocolObserver)
// ---------------------------------------------------------------------------

void CampaignEngine::trigger_matched(TriggerState& t) {
  if (++t.seen < t.spec.occurrence) return;
  t.done = true;
  const NodeId victim = t.spec.victim;
  // Deferred one (zero-delay) event so the kill never mutates network state
  // from inside the protocol handler that reported the phase.
  sim().schedule_after(SimTime::zero(), [this, victim] {
    if (serialize_) {
      inject_or_skip(victim, "phase");
    } else {
      inject_or_skip_cluster(victim, "phase");
    }
  });
}

void CampaignEngine::on_phase1_ack(ClusterId cluster, std::uint64_t /*round*/,
                                   std::uint32_t acks,
                                   std::uint32_t /*needed*/) {
  for (TriggerState& t : triggers_) {
    if (t.done || t.spec.phase != Phase::kPhase1Acks) continue;
    if (t.spec.cluster != cluster || acks != t.spec.after_acks) continue;
    if (sim().now() < t.spec.not_before) continue;
    trigger_matched(t);
  }
}

void CampaignEngine::on_clc_commit(ClusterId cluster, SeqNum /*sn*/,
                                   bool /*forced*/) {
  for (TriggerState& t : triggers_) {
    if (t.done || t.spec.phase != Phase::kCommit) continue;
    if (t.spec.cluster != cluster) continue;
    if (sim().now() < t.spec.not_before) continue;
    trigger_matched(t);
  }
}

void CampaignEngine::on_failure_detected(ClusterId cluster,
                                         NodeId /*failed*/) {
  telemetry_.on_failure_detected(sim().now(), cluster);
}

// ---------------------------------------------------------------------------
// Recovery completion: retry whatever the one-fault rule held back
// ---------------------------------------------------------------------------

void CampaignEngine::on_recovery(ClusterId cluster) {
  telemetry_.on_recovery_complete(sim().now(), cluster);
  if (serialize_) {
    if (!pending_.empty()) {
      // Burst/repeat kills fire the instant the blocking recovery completes,
      // one per completion (injecting sets recovery_pending again).  Streams
      // stay deferred until the queue drains.
      const PendingKill k = pending_.front();
      pending_.erase(pending_.begin());
      sim().schedule_after(SimTime::zero(), [this, k] {
        inject_or_queue(k.victim, k.source);
      });
      return;
    }
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      if (streams_[i].deferred) {
        streams_[i].deferred = false;
        schedule_stream_next(i);
      }
    }
    return;
  }
  // Concurrent mode: only *this* cluster's queue unblocks.  One queued kill
  // fires per completion (re-injecting marks the cluster pending again, so
  // the rest of the queue drains recovery by recovery); streams blocked on
  // the cluster stay blocked while its queue holds kills.
  auto& queue = cluster_queue_[cluster.v];
  if (!queue.empty()) {
    const PendingKill k = queue.front();
    queue.erase(queue.begin());
    sim().schedule_after(SimTime::zero(), [this, k] {
      inject_or_queue_cluster(k.victim, k.source, k.counter);
    });
    return;
  }
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i].blocked_on && *streams_[i].blocked_on == cluster) {
      streams_[i].blocked_on.reset();
      schedule_stream_next(i);
    }
  }
}

}  // namespace hc3i::fault
