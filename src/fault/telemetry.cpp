#include "fault/telemetry.hpp"

#include <algorithm>

namespace hc3i::fault {

RecoveryTelemetry::RecoveryTelemetry(stats::Registry& registry,
                                     const proto::ConsistencyLedger& ledger)
    : registry_(registry), ledger_(ledger) {
  summary_.residual.id = 0;
  summary_.residual.source = "post-campaign";
}

RecoveryTelemetry::CostSnapshot RecoveryTelemetry::snapshot() const {
  // Read-only lookups: get() never interns, so telemetry cannot perturb a
  // counter dump.  The lost-work summary is interned lazily like any reader.
  CostSnapshot s;
  s.rollbacks = registry_.get("rollback.count");
  s.nodes = registry_.get("rollback.nodes");
  s.alerts = registry_.get("rollback.alerts");
  s.resent_msgs = registry_.get("log.resent_msgs");
  s.resent_bytes = registry_.get("log.resent_bytes");
  s.undone = ledger_.undone_events();
  s.ckpt_bytes = registry_.get("ckpt.bytes_written");
  s.ckpt_saved = registry_.get("ckpt.bytes_delta_saved");
  s.ckpt_stall_us = registry_.get("ckpt.stall_us");
  s.recovery_read_us = registry_.get("recovery.read_us");
  s.lost_work_s = registry_.summary("rollback.lost_work_s").sum();
  return s;
}

void RecoveryTelemetry::attribute_segment() {
  const CostSnapshot now = snapshot();
  struct Field {
    std::uint64_t CostSnapshot::*snap;
    std::uint64_t Incident::*inc;
  };
  static constexpr Field kFields[] = {
      {&CostSnapshot::rollbacks, &Incident::rollbacks},
      {&CostSnapshot::nodes, &Incident::nodes_rolled_back},
      {&CostSnapshot::alerts, &Incident::alert_fanout},
      {&CostSnapshot::resent_msgs, &Incident::replayed_msgs},
      {&CostSnapshot::resent_bytes, &Incident::replayed_bytes},
      {&CostSnapshot::undone, &Incident::events_undone},
      {&CostSnapshot::ckpt_bytes, &Incident::ckpt_bytes_written},
      {&CostSnapshot::ckpt_saved, &Incident::ckpt_bytes_delta_saved},
      {&CostSnapshot::ckpt_stall_us, &Incident::ckpt_stall_us},
      {&CostSnapshot::recovery_read_us, &Incident::recovery_read_us},
  };
  const std::size_t k = open_.size();
  if (k == 0) {
    // No interval covers this segment: the cost is campaign overhead (or a
    // cascade tail) and lands in the residual row, keeping the table's sum
    // exact.
    for (const Field& f : kFields) {
      summary_.residual.*f.inc += now.*f.snap - last_.*f.snap;
    }
    summary_.residual.lost_work_s += now.lost_work_s - last_.lost_work_s;
  } else {
    // Interval intersection: every open incident covers this whole segment,
    // so the delta splits evenly; the oldest absorbs the integer remainder
    // (and the floating-point one) so sums stay exact.
    for (const Field& f : kFields) {
      const std::uint64_t d = now.*f.snap - last_.*f.snap;
      const std::uint64_t share = d / k;
      std::uint64_t given = 0;
      for (std::size_t i = 1; i < k; ++i) {
        incidents_[open_[i]].*f.inc += share;
        given += share;
      }
      incidents_[open_[0]].*f.inc += d - given;
    }
    const double dl = now.lost_work_s - last_.lost_work_s;
    const double share = dl / static_cast<double>(k);
    double given = 0.0;
    for (std::size_t i = 1; i < k; ++i) {
      incidents_[open_[i]].lost_work_s += share;
      given += share;
    }
    incidents_[open_[0]].lost_work_s += dl - given;
  }
  last_ = now;
}

void RecoveryTelemetry::observe_cost(const Incident& inc) {
  registry_.observe("fault.alert_fanout",
                    static_cast<double>(inc.alert_fanout));
  registry_.observe("fault.replayed_msgs",
                    static_cast<double>(inc.replayed_msgs));
  registry_.observe("fault.nodes_rolled_back",
                    static_cast<double>(inc.nodes_rolled_back));
}

void RecoveryTelemetry::begin_incident(SimTime now, NodeId victim,
                                       ClusterId cluster, const char* source) {
  attribute_segment();
  Incident inc;
  inc.id = static_cast<std::uint32_t>(incidents_.size() + 1);
  inc.injected_at = now;
  inc.victim = victim;
  inc.cluster = cluster;
  inc.source = source;
  open_.push_back(incidents_.size());
  incidents_.push_back(inc);
  // Every open incident (including this one) now sees `open_.size()`
  // concurrent recoveries; bump each one's high-water and the campaign's.
  const auto overlap = static_cast<std::uint32_t>(open_.size());
  for (const std::size_t idx : open_) {
    incidents_[idx].concurrent_peak =
        std::max(incidents_[idx].concurrent_peak, overlap);
  }
  summary_.max_overlap = std::max(summary_.max_overlap, overlap);
}

void RecoveryTelemetry::on_failure_detected(SimTime now, ClusterId cluster) {
  // At most one incident per cluster is open (the federation enforces one
  // fault in flight per cluster), so the match is unique.
  for (const std::size_t idx : open_) {
    Incident& inc = incidents_[idx];
    if (inc.cluster == cluster && inc.detected_at == SimTime::zero()) {
      inc.detected_at = now;
      return;
    }
  }
}

void RecoveryTelemetry::on_recovery_complete(SimTime now, ClusterId cluster) {
  const auto it = std::find_if(
      open_.begin(), open_.end(),
      [&](std::size_t idx) { return incidents_[idx].cluster == cluster; });
  if (it == open_.end()) return;  // recovery the engine did not inject
  attribute_segment();
  Incident& inc = incidents_[*it];
  inc.recovered_at = now;
  inc.recovery_complete = true;
  open_.erase(it);
  registry_.observe("fault.recovery_latency_s",
                    inc.recovery_latency().seconds());
  latency_us_.add(static_cast<std::uint64_t>(inc.recovery_latency().ns / 1000));
  observe_cost(inc);
}

void RecoveryTelemetry::finalize(SimTime) {
  attribute_segment();
  // Incidents whose recovery never completed close at end of run with their
  // interval deltas as-is (latency stays zero / flagged incomplete).
  for (const std::size_t idx : open_) observe_cost(incidents_[idx]);
  open_.clear();
  summary_.has_residual = true;
}

}  // namespace hc3i::fault
