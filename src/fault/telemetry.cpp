#include "fault/telemetry.hpp"

namespace hc3i::fault {

RecoveryTelemetry::RecoveryTelemetry(stats::Registry& registry,
                                     const proto::ConsistencyLedger& ledger)
    : registry_(registry), ledger_(ledger) {}

RecoveryTelemetry::CostSnapshot RecoveryTelemetry::snapshot() const {
  // Read-only lookups: get() never interns, so telemetry cannot perturb a
  // counter dump.  The lost-work summary is interned lazily like any reader.
  CostSnapshot s;
  s.rollbacks = registry_.get("rollback.count");
  s.nodes = registry_.get("rollback.nodes");
  s.alerts = registry_.get("rollback.alerts");
  s.resent_msgs = registry_.get("log.resent_msgs");
  s.resent_bytes = registry_.get("log.resent_bytes");
  s.undone = ledger_.undone_events();
  s.lost_work_s = registry_.summary("rollback.lost_work_s").sum();
  return s;
}

void RecoveryTelemetry::close_window() {
  if (!window_open_) return;
  window_open_ = false;
  const CostSnapshot now = snapshot();
  Incident& inc = incidents_.back();
  inc.rollbacks = now.rollbacks - window_start_.rollbacks;
  inc.nodes_rolled_back = now.nodes - window_start_.nodes;
  inc.alert_fanout = now.alerts - window_start_.alerts;
  inc.replayed_msgs = now.resent_msgs - window_start_.resent_msgs;
  inc.replayed_bytes = now.resent_bytes - window_start_.resent_bytes;
  inc.events_undone = now.undone - window_start_.undone;
  inc.lost_work_s = now.lost_work_s - window_start_.lost_work_s;
  registry_.observe("fault.alert_fanout",
                    static_cast<double>(inc.alert_fanout));
  registry_.observe("fault.replayed_msgs",
                    static_cast<double>(inc.replayed_msgs));
  registry_.observe("fault.nodes_rolled_back",
                    static_cast<double>(inc.nodes_rolled_back));
}

void RecoveryTelemetry::begin_incident(SimTime now, NodeId victim,
                                       ClusterId cluster, const char* source) {
  close_window();
  Incident inc;
  inc.id = static_cast<std::uint32_t>(incidents_.size() + 1);
  inc.injected_at = now;
  inc.victim = victim;
  inc.cluster = cluster;
  inc.source = source;
  incidents_.push_back(inc);
  window_start_ = snapshot();
  window_open_ = true;
}

void RecoveryTelemetry::on_failure_detected(SimTime now, ClusterId cluster) {
  if (incidents_.empty()) return;
  Incident& inc = incidents_.back();
  if (inc.cluster == cluster && inc.detected_at == SimTime::zero()) {
    inc.detected_at = now;
  }
}

void RecoveryTelemetry::on_recovery_complete(SimTime now, ClusterId cluster) {
  if (incidents_.empty()) return;
  Incident& inc = incidents_.back();
  if (inc.recovery_complete || inc.cluster != cluster) return;
  inc.recovered_at = now;
  inc.recovery_complete = true;
  registry_.observe("fault.recovery_latency_s",
                    inc.recovery_latency().seconds());
}

void RecoveryTelemetry::finalize(SimTime) { close_window(); }

}  // namespace hc3i::fault
