#pragma once

// Hc3iAgent — the HC3I protocol (paper §3), one instance per node.
//
// Responsibilities, mapped to the paper:
//   §3.1  Cluster-level checkpointing: a two-phase-commit CLC inside the
//         cluster.  The coordinator (first node) broadcasts a request; each
//         node takes a tentative local checkpoint, writes its replica to a
//         ring neighbour, and acks; the coordinator commits.  Application
//         messages are queued between request and commit.  Each commit
//         increments the cluster SN.
//   §3.2  Federation-level checkpointing: each inter-cluster application
//         message piggybacks the sender cluster's SN; a receiver seeing a
//         fresher SN than its DDV entry stashes the message, demands a
//         forced CLC, and delivers only after that CLC commits.  DDVs are
//         synchronised cluster-wide at commit time.
//   §3.3  Sender-side optimistic logging of inter-cluster messages,
//         acknowledged with the receiver's SN at delivery.
//   §3.4  Rollback: the failed cluster restores its last CLC; rollback
//         alerts propagate the recovery line; non-rolled-back senders
//         replay logged messages.
//   §3.5  Centralized garbage collection of CLCs and logs.
//
// Implementation refinements beyond the paper's prose (DESIGN.md §3):
// cluster incarnation numbers to filter stale in-flight messages, channel-
// state capture of intra-cluster in-flight messages at commit, checkpointed
// copies of the sender log so a failed node recovers its log, and receiver-
// side de-duplication of re-sent inter-cluster messages.
//
// Three protected virtual hooks (the communication-induced forcing rule,
// the rollback-necessity test and the rollback-target rule) let the
// independent-checkpointing baseline reuse the entire machinery with
// forcing disabled — exactly the ablation the paper argues against in §2.2.

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "hc3i/control.hpp"
#include "hc3i/options.hpp"
#include "hc3i/runtime.hpp"
#include "proto/agent_base.hpp"
#include "proto/msg_log.hpp"
#include "sim/timer.hpp"

namespace hc3i::core {

/// The HC3I protocol agent.
class Hc3iAgent : public proto::AgentBase {
 public:
  Hc3iAgent(const proto::AgentContext& ctx, Hc3iRuntime& rt);

  // ProtocolAgent interface -------------------------------------------------
  void start() override;
  void app_send(NodeId dst, std::uint64_t bytes, std::uint64_t app_seq) override;
  void on_message(const net::Envelope& env) override;
  void on_failure_detected(NodeId failed) override;

  // Introspection (tests / runtime statistics) ------------------------------
  SeqNum sn() const { return sn_; }
  const proto::Ddv& ddv() const { return ddv_; }
  Incarnation incarnation() const { return inc_; }
  bool in_round() const { return in_round_; }
  std::size_t log_size() const { return log_.size(); }
  const proto::MsgLog& msg_log() const { return log_; }
  std::size_t waiting_forced() const { return wait_force_.size(); }
  bool rollback_pending() const { return rollback_pending_; }

  /// Why a CLC round was started (statistics bucket).
  enum class RoundReason { kInitial, kTimer, kForced };

 protected:
  // -- protocol-variant hooks (overridden by the independent baseline)
  /// Should this inter-cluster arrival force a CLC before delivery?
  virtual bool cic_should_force(const net::Envelope& env) const;
  /// Delivery-time DDV bookkeeping (no-op for HC3I: DDVs change at commit).
  virtual void on_inter_delivered(const net::Envelope& env);
  /// Must this cluster roll back for alert (f, restored_sn)?
  virtual bool decide_needs_rollback(ClusterId f, SeqNum restored_sn) const;
  /// The CLC to restore for alert (f, restored_sn); never null when
  /// decide_needs_rollback returned true.
  virtual const proto::ClcRecord* find_rollback_target(
      ClusterId f, SeqNum restored_sn) const;

  Hc3iRuntime& rt_;

 private:
  // -- receive dispatch
  void on_app_message(const net::Envelope& env);
  void on_control_message(const net::Envelope& env);

  // -- intra-cluster 2PC (paper §3.1)
  void on_clc_timer();
  void coordinator_begin_round(RoundReason reason);
  void handle_clc_request(const ClcRequest& m);
  void handle_replica_store(const net::Envelope& env, const ReplicaStore& m);
  void handle_replica_ack(const ReplicaAck& m);
  void handle_clc_ack(const ClcAck& m);
  void coordinator_commit_round();
  void handle_clc_commit(const ClcCommit& m);
  void send_phase1_ack();

  // -- communication-induced path (paper §3.2)
  void receive_inter_app(const net::Envelope& env);
  void deliver_and_ack(const net::Envelope& env);
  bool is_stale(const net::Envelope& env) const;
  void drain_wait_queue();
  void handle_clc_demand(const ClcDemand& m);
  void send_demand(ClusterId from, SeqNum sn, const proto::Ddv& ddv);

  // -- logging / acks (paper §3.3)
  void handle_inter_ack(const InterAck& m);
  void do_send(NodeId dst, std::uint64_t bytes, std::uint64_t app_seq);

  // -- rollback (paper §3.4)
  void rollback_cluster(proto::ClcRecord rec, bool fault_origin);
  void apply_cluster_rollback(const proto::ClcRecord& rec, Incarnation new_inc,
                              bool lost_memory);
  void resume_after_rollback(const proto::ClcRecord& rec);
  void handle_rollback_alert(const RollbackAlert& m);
  void handle_alert_relay(const AlertRelay& m);

  // -- garbage collection (paper §3.5)
  void on_gc_timer();
  void handle_gc_request(const net::Envelope& env, const GcRequest& m);
  void handle_gc_response(const GcResponse& m);
  void handle_gc_collect(const GcCollect& m);
  void handle_gc_prune(const GcPrune& m);

  // -- helpers
  std::string cstat(const char* name) const;
  /// Lazily resolve a per-cluster counter handle ("<name>.c<cluster>") into
  /// `slot`: the name string is built once per agent, not once per bump, and
  /// the counter still only exists once actually touched.
  stats::Counter& stat(stats::Counter*& slot, const char* name);
  std::uint32_t local_index(NodeId n) const;
  /// Capture this node's CLC part.  Non-const: with a storage backend the
  /// capture consumes the app's dirty-range watermark (delta chains).
  proto::NodePart make_part();
  /// Tail of handle_clc_request: replica writes or the phase-1 ack.  Split
  /// out so a storage backend can charge the capture-write stall on the
  /// simulated clock before it runs.
  void finish_capture();
  std::uint32_t replicas_needed() const;
  proto::ClcStore& store() { return rt_.store(cluster()); }
  const proto::ClcStore& store() const { return rt_.store(cluster()); }
  SimTime state_restore_delay() const;
  void note_log_highwater();

 protected:
  // Replicated cluster state (synchronised by the 2PC; the invariant tests
  // assert all nodes of a cluster agree outside rounds, as the paper claims).
  SeqNum sn_{0};
  proto::Ddv ddv_;
  Incarnation inc_{0};

 private:
  // Node-local protocol state.
  proto::MsgLog log_;
  proto::DedupSet dedup_;                   ///< delivered inter app_seqs
                                            ///< (hashed membership; sorted
                                            ///< shared image at capture)
  std::vector<net::Envelope> wait_force_;   ///< stashed, awaiting forced CLC
  std::vector<net::Envelope> deferred_;     ///< arrived during a 2PC round
  struct QueuedSend {
    NodeId dst;
    std::uint64_t bytes;
    std::uint64_t app_seq;
  };
  std::vector<QueuedSend> queued_sends_;    ///< issued during a 2PC round
  bool in_round_{false};
  std::uint64_t round_{0};                  ///< round currently joined
  /// A ClcRequest for a round NEWER than the one we're in: the previous
  /// round's commit carries the merged DDV, so it is larger and slower on
  /// the SAN than the next round's request — when the coordinator opens the
  /// next round at commit time, the request can overtake the commit.
  /// Dropping it would deadlock the new round (no ack, no retransmit);
  /// instead it is held here and replayed once our commit lands.  Rounds
  /// are serialised, so at most one can be pending.
  std::optional<ClcRequest> pending_request_;
  std::uint32_t replica_acks_{0};
  std::optional<proto::NodePart> tentative_;
  std::optional<std::uint32_t> lost_memory_idx_;  ///< failed node (this fault)

  // Rollback bookkeeping.
  bool rollback_pending_{false};            ///< protocol restored, app not yet
  std::vector<net::Envelope> post_rollback_stash_;
  struct RollbackInfo {
    Incarnation inc;
    SeqNum restored;
  };
  std::vector<std::vector<RollbackInfo>> known_rollbacks_;  ///< [cluster];
                                            ///< sized lazily at the first
                                            ///< alert (empty = none known)
  std::set<std::pair<std::uint32_t, Incarnation>> alerts_seen_;

  // Coordinator round state.
  bool round_active_{false};
  std::uint64_t next_round_{1};
  std::uint64_t active_round_id_{0};
  RoundReason round_reason_{RoundReason::kInitial};
  std::map<std::uint32_t, SeqNum> pending_raises_;  ///< cluster -> demanded SN
  std::optional<proto::Ddv> pending_merge_;         ///< transitive extension
  proto::Ddv round_ddv_merge_;              ///< max of node DDVs this round
  std::vector<std::optional<proto::NodePart>> parts_;
  std::size_t acks_received_{0};
  std::unique_ptr<sim::Timer> clc_timer_;

  // Pre-resolved stats handles (see stat()).
  stats::Counter* stat_log_max_entries_{nullptr};
  stats::Counter* stat_log_max_unacked_{nullptr};
  stats::Counter* stat_queued_sends_{nullptr};
  stats::Counter* stat_forced_triggers_{nullptr};
  stats::Counter* stat_clc_total_{nullptr};
  stats::Counter* stat_clc_initial_{nullptr};
  stats::Counter* stat_clc_unforced_{nullptr};
  stats::Counter* stat_clc_forced_{nullptr};
  stats::Counter* stat_store_max_clcs_{nullptr};
  stats::Counter* stat_store_max_bytes_{nullptr};
  stats::Counter* stat_rollback_faults_{nullptr};
  stats::Counter* stat_rollback_count_{nullptr};
  stats::Counter* stat_rollback_global_{nullptr};
  stats::Counter* stat_rollback_nodes_{nullptr};
  stats::Counter* stat_rollback_cascade_{nullptr};
  stats::Counter* stat_gc_removed_{nullptr};
  stats::Counter* stat_gc_resp_saved_{nullptr};
  // Checkpoint-storage accounting (only touched when a backend is
  // configured, so storage-off dumps stay byte-identical to the seed).
  stats::Counter* stat_ckpt_bytes_{nullptr};
  stats::Counter* stat_ckpt_saved_{nullptr};
  stats::Counter* stat_ckpt_stall_{nullptr};
  stats::Counter* stat_recovery_read_{nullptr};
  stats::Counter* stat_g_ckpt_bytes_{nullptr};
  stats::Counter* stat_g_ckpt_saved_{nullptr};
  stats::Counter* stat_g_ckpt_stall_{nullptr};
  stats::Counter* stat_g_recovery_read_{nullptr};
  stats::Summary* stat_rollback_depth_{nullptr};

  // GC initiator state (coordinator of cluster 0 only).
  std::unique_ptr<sim::Timer> gc_timer_;
  bool gc_active_{false};
  std::uint64_t gc_round_{0};
  std::uint64_t gc_epoch_at_start_{0};
  std::vector<std::optional<std::vector<proto::ClcMeta>>> gc_metas_;
  std::size_t gc_responses_{0};
};

}  // namespace hc3i::core
