#pragma once

// HC3I tunables.
//
// The defaults reproduce the paper's protocol exactly; the non-default
// settings implement the extensions the paper sketches in §7 (transitive
// DDV piggybacking, configurable stable-storage replication degree) and a
// fault-injection switch the tests use to prove the consistency checker
// catches broken protocols.

#include <cstdint>

#include "util/time.hpp"

namespace hc3i::core {

/// Protocol configuration knobs.
struct Hc3iOptions {
  /// Stable-storage replication degree: extra copies of each node's
  /// checkpoint part on neighbour nodes.  1 in the paper ("only one
  /// simultaneous fault in a cluster is tolerated"); §7 proposes making it
  /// user-chosen.
  std::uint32_t replication{1};

  /// Paper §7: piggy-back the whole DDV instead of only the SN, adding
  /// transitivity to dependency tracking "in order to take less forced
  /// checkpoints".
  bool transitive_ddv{false};

  /// Capture in-flight intra-cluster messages as CLC channel state.
  /// Always on for correct operation; switching it off is used by the
  /// negative tests to demonstrate that the consistency ledger detects
  /// the resulting message loss.
  bool capture_channel_state{true};

  /// Enable the centralized garbage collector (runs on the coordinator of
  /// cluster 0 with the configured gc_period).
  bool enable_gc{true};
};

}  // namespace hc3i::core
