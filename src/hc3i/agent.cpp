#include "hc3i/agent.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"
#include "proto/payload_pool.hpp"
#include "util/log.hpp"

namespace hc3i::core {

namespace {
using net::payload_as;
}  // namespace

Hc3iAgent::Hc3iAgent(const proto::AgentContext& ctx, Hc3iRuntime& rt)
    : AgentBase(ctx), rt_(rt),
      ddv_(rt.cluster_count(), ctx.cluster, 0),
      round_ddv_merge_(rt.cluster_count(), ctx.cluster, 0) {
  // known_rollbacks_ stays empty (size 0) until the first alert arrives:
  // failure-free runs — and most nodes of any run — never pay its per-node
  // per-cluster allocation.
}

std::string Hc3iAgent::cstat(const char* name) const {
  return std::string(name) + ".c" + std::to_string(cluster().v);
}

stats::Counter& Hc3iAgent::stat(stats::Counter*& slot, const char* name) {
  return stats::lazy_counter(*ctx_.registry, slot,
                             [this, name] { return cstat(name); });
}

std::uint32_t Hc3iAgent::local_index(NodeId n) const {
  return n.v - ctx_.topology->first_node(ctx_.topology->cluster_of(n)).v;
}

std::uint32_t Hc3iAgent::replicas_needed() const {
  return store().replication();
}

proto::NodePart Hc3iAgent::make_part() {
  proto::NodePart part;
  if (rt_.backend(cluster()) != nullptr) {
    // Storage is modelled: consume the app's dirty-range watermark so
    // successive captures form base + Σ deltas chains (a full image when
    // incremental capture is disabled or no base exists yet).
    part.app = ctx_.app->snapshot(rt_.storage_spec(cluster()).incremental
                                      ? storage::CaptureMode::kIncremental
                                      : storage::CaptureMode::kFull);
  } else {
    part.app = ctx_.app->snapshot();
  }
  HC3I_CHECK(part.app.state_bytes == rt_.spec().application.state_bytes,
             "make_part: app state_bytes disagrees with the declared spec");
  // Both captures are copy-on-write images: O(1) refcount bumps unless the
  // underlying state changed since the previous checkpoint (DedupSet sorts
  // once per mutation epoch — checkpoint parts are protocol state, so the
  // canonical order is part of bit-reproducibility).
  part.dedup = dedup_.capture();
  part.log = log_.capture();
  return part;
}

SimTime Hc3iAgent::state_restore_delay() const {
  const auto& san = rt_.spec().topology.clusters[cluster().v].san;
  SimTime delay = san.latency;
  if (std::isfinite(san.bytes_per_sec)) {
    delay += from_seconds_f(
        static_cast<double>(rt_.spec().application.state_bytes) /
        san.bytes_per_sec);
  }
  return delay;
}

void Hc3iAgent::note_log_highwater() {
  stat(stat_log_max_entries_, "log.max_entries")
      .raise(rt_.cluster_log_entries(cluster()));
  stat(stat_log_max_unacked_, "log.max_unacked")
      .raise(rt_.cluster_unacked_log_entries(cluster()));
}

// ---------------------------------------------------------------------------
// Protocol-variant hooks (HC3I defaults)
// ---------------------------------------------------------------------------

bool Hc3iAgent::cic_should_force(const net::Envelope& env) const {
  // Paper §3.2: force iff a CLC has been stored in the sender's cluster
  // since the last communication from it — i.e. the piggybacked SN is
  // fresher than our DDV entry.
  return env.piggy.sn > ddv_.at(env.src_cluster);
}

void Hc3iAgent::on_inter_delivered(const net::Envelope&) {
  // HC3I keeps DDV updates synchronised with forced-CLC commits; nothing
  // happens at delivery time.
}

bool Hc3iAgent::decide_needs_rollback(ClusterId f, SeqNum restored_sn) const {
  return ddv_.at(f) >= restored_sn;
}

const proto::ClcRecord* Hc3iAgent::find_rollback_target(
    ClusterId f, SeqNum restored_sn) const {
  // Paper §3.4: "rollback to the first (the older) CLC which has its DDV
  // entry corresponding to the faulty cluster greater than or equal to the
  // received SN" — that forced CLC precedes the first undone delivery.
  return store().oldest_with_dep_at_least(f, restored_sn);
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void Hc3iAgent::start() {
  if (!is_cluster_coordinator()) return;
  const SimTime period = rt_.spec().timers.clusters[cluster().v].clc_period;
  clc_timer_ = std::make_unique<sim::Timer>(*ctx_.sim, period, /*periodic=*/true,
                                            [this] { on_clc_timer(); });
  clc_timer_->arm();
  // "Each cluster stores a first CLC which is the beginning of the
  // application" (paper §4).
  ctx_.sim->schedule_after(SimTime::zero(), [this] {
    coordinator_begin_round(RoundReason::kInitial);
  });

  if (cluster().v == 0 && rt_.options().enable_gc &&
      !rt_.spec().timers.gc_period.is_infinite()) {
    gc_timer_ = std::make_unique<sim::Timer>(*ctx_.sim,
                                             rt_.spec().timers.gc_period,
                                             /*periodic=*/true,
                                             [this] { on_gc_timer(); });
    gc_timer_->arm();
  }
}

// ---------------------------------------------------------------------------
// Application sends (paper Fig. 2: the agent catches every message)
// ---------------------------------------------------------------------------

void Hc3iAgent::app_send(NodeId dst, std::uint64_t bytes,
                         std::uint64_t app_seq) {
  if (rollback_pending_) return;  // frozen application cannot send
  if (in_round_) {
    // "Between the request and the commit messages, application messages
    // are queued" (paper §3.1).
    queued_sends_.push_back(QueuedSend{dst, bytes, app_seq});
    stat(stat_queued_sends_, "clc.queued_sends").inc();
    return;
  }
  do_send(dst, bytes, app_seq);
}

void Hc3iAgent::do_send(NodeId dst, std::uint64_t bytes,
                        std::uint64_t app_seq) {
  net::Piggyback piggy;
  piggy.sn = sn_;
  piggy.incarnation = inc_;
  const bool inter = ctx_.topology->cluster_of(dst) != cluster();
  if (inter && rt_.options().transitive_ddv) {
    // The cluster's DDV is immutable within a (SN, incarnation) epoch, so
    // assigning it is an inline memcpy (or a refcount bump once spilled);
    // commits and rollbacks mutate through the COW barrier and never touch
    // piggybacks already in flight.
    piggy.ddv = ddv_;
  }
  const net::Envelope sent = send_app(dst, bytes, app_seq, piggy);
  if (inter) {
    // Optimistic sender-side log (paper §3.3).
    log_.add(sent);
    note_log_highwater();
  }
}

// ---------------------------------------------------------------------------
// Receive dispatch
// ---------------------------------------------------------------------------

void Hc3iAgent::on_message(const net::Envelope& env) {
  if (env.cls == net::MsgClass::kApp) {
    on_app_message(env);
  } else {
    on_control_message(env);
  }
}

void Hc3iAgent::on_app_message(const net::Envelope& env) {
  if (!env.intra_cluster() && is_stale(env)) {
    // A pre-rollback message from an undone epoch of the sender; the new
    // incarnation will re-send it (DESIGN.md §3.5).
    ctx_.registry->inc("cic.stale_dropped");
    return;
  }
  if (rollback_pending_) {
    // The application is frozen between the protocol rollback and the
    // state-transfer completion; hold arrivals until resume.
    post_rollback_stash_.push_back(env);
    return;
  }
  if (in_round_) {
    // Queued until commit (both directions are frozen during the 2PC).
    deferred_.push_back(env);
    return;
  }
  if (env.intra_cluster()) {
    deliver_app(env);
  } else {
    receive_inter_app(env);
  }
}

void Hc3iAgent::on_control_message(const net::Envelope& env) {
  if (const auto* m = payload_as<ClcRequest>(env)) return handle_clc_request(*m);
  if (const auto* m = payload_as<ReplicaStore>(env))
    return handle_replica_store(env, *m);
  if (const auto* m = payload_as<ReplicaAck>(env)) return handle_replica_ack(*m);
  if (const auto* m = payload_as<ClcAck>(env)) return handle_clc_ack(*m);
  if (const auto* m = payload_as<ClcCommit>(env)) return handle_clc_commit(*m);
  if (const auto* m = payload_as<ClcDemand>(env)) return handle_clc_demand(*m);
  if (const auto* m = payload_as<InterAck>(env)) return handle_inter_ack(*m);
  if (const auto* m = payload_as<RollbackAlert>(env))
    return handle_rollback_alert(*m);
  if (const auto* m = payload_as<AlertRelay>(env)) return handle_alert_relay(*m);
  if (const auto* m = payload_as<GcRequest>(env))
    return handle_gc_request(env, *m);
  if (const auto* m = payload_as<GcResponse>(env)) return handle_gc_response(*m);
  if (const auto* m = payload_as<GcCollect>(env)) return handle_gc_collect(*m);
  if (const auto* m = payload_as<GcPrune>(env)) return handle_gc_prune(*m);
  HC3I_UNREACHABLE("Hc3iAgent: unknown control payload");
}

// ---------------------------------------------------------------------------
// Communication-induced checkpointing (paper §3.2)
// ---------------------------------------------------------------------------

bool Hc3iAgent::is_stale(const net::Envelope& env) const {
  // Stale iff the sender cluster rolled back after the message was sent and
  // the send belongs to an undone epoch (piggyback SN >= restored SN).
  if (known_rollbacks_.empty()) return false;  // no alert ever received
  for (const RollbackInfo& rb : known_rollbacks_[env.src_cluster.v]) {
    if (env.piggy.incarnation < rb.inc && env.piggy.sn >= rb.restored) {
      return true;
    }
  }
  return false;
}

void Hc3iAgent::receive_inter_app(const net::Envelope& env) {
  if (dedup_.contains(env.app_seq)) {
    // Duplicate of an already-delivered message (a re-send raced with the
    // original copy). Re-acknowledge so the sender's log entry settles.
    ctx_.registry->inc("cic.dup_dropped");
    auto ack = proto::make_pooled<InterAck>();
    ack->msg = env.id;
    ack->ack_sn = sn_;
    ack->ack_inc = inc_;
    send_control(env.src, ControlSizes::kSmall, std::move(ack));
    return;
  }
  if (cic_should_force(env)) {
    // Fresh sender SN: a CLC has been stored in the sender's cluster since
    // the last communication — force a CLC before delivery (paper §3.2).
    wait_force_.push_back(env);
    stat(stat_forced_triggers_, "cic.forced_triggers").inc();
    send_demand(env.src_cluster, env.piggy.sn, env.piggy.ddv);
    return;
  }
  deliver_and_ack(env);
}

void Hc3iAgent::deliver_and_ack(const net::Envelope& env) {
  dedup_.insert(env.app_seq);
  on_inter_delivered(env);
  deliver_app(env);
  // "Inter-cluster messages are acknowledged with the local SN" at delivery
  // time (paper §4 figure note; +1 relative to the pre-forced-CLC value).
  auto ack = proto::make_pooled<InterAck>();
  ack->msg = env.id;
  ack->ack_sn = sn_;
  ack->ack_inc = inc_;
  send_control(env.src, ControlSizes::kSmall, std::move(ack));
}

void Hc3iAgent::send_demand(ClusterId from, SeqNum sn,
                            const proto::Ddv& observed_ddv) {
  auto demand = proto::make_pooled<ClcDemand>();
  demand->inc = inc_;
  demand->from_cluster = from;
  demand->observed_sn = sn;
  if (rt_.options().transitive_ddv) {
    demand->observed_ddv = observed_ddv;
  }
  send_control_or_local(coordinator_of(cluster()),
                        ControlSizes::kSmall +
                            observed_ddv.size() * ControlSizes::kPerDdvEntry,
                        std::move(demand));
}

void Hc3iAgent::drain_wait_queue() {
  std::vector<net::Envelope> still_waiting;
  for (const net::Envelope& env : wait_force_) {
    if (is_stale(env)) {
      ctx_.registry->inc("cic.stale_dropped");
      continue;
    }
    if (!cic_should_force(env)) {
      if (!dedup_.contains(env.app_seq)) deliver_and_ack(env);
    } else {
      still_waiting.push_back(env);
    }
  }
  wait_force_ = std::move(still_waiting);
}

void Hc3iAgent::handle_clc_demand(const ClcDemand& m) {
  if (m.inc != inc_) return;  // pre-rollback demand
  auto& slot = pending_raises_[m.from_cluster.v];
  slot = std::max(slot, m.observed_sn);
  if (rt_.options().transitive_ddv && !m.observed_ddv.empty()) {
    proto::Ddv observed = m.observed_ddv;
    observed.set(cluster(), 0);  // never raise our own entry from a peer
    if (!pending_merge_) {
      pending_merge_ = std::move(observed);
    } else {
      pending_merge_->merge_max(observed);
    }
  }
  if (!round_active_ && !rollback_pending_) {
    coordinator_begin_round(RoundReason::kForced);
  }
  // An active round absorbs the demand: the raise is folded into its commit
  // (safe because the triggering message is stashed, not delivered, so no
  // tentative snapshot depends on it).
}

// ---------------------------------------------------------------------------
// Intra-cluster two-phase commit (paper §3.1)
// ---------------------------------------------------------------------------

void Hc3iAgent::on_clc_timer() {
  if (round_active_ || rollback_pending_) return;
  coordinator_begin_round(RoundReason::kTimer);
}

void Hc3iAgent::coordinator_begin_round(RoundReason reason) {
  HC3I_CHECK(is_cluster_coordinator(), "begin_round on non-coordinator");
  if (round_active_ || rollback_pending_) return;
  round_active_ = true;
  round_reason_ = reason;
  active_round_id_ = next_round_++;
  parts_.assign(ctx_.topology->cluster_size(cluster()), std::nullopt);
  acks_received_ = 0;
  round_ddv_merge_ = ddv_;
  auto req = proto::make_pooled<ClcRequest>();
  req->round = active_round_id_;
  req->inc = inc_;
  HC3I_TRACE(kProtocol, now(),
             "C" << cluster().v << " CLC round " << active_round_id_
                 << (reason == RoundReason::kForced ? " (forced)" : " (timer)"));
  HC3I_OBS(ctx_.obs, obs::RecordKind::kClcRoundBegin, now(), cluster().v,
           self().v, active_round_id_,
           reason == RoundReason::kForced ? 1 : 0);
  broadcast_control(cluster(), ControlSizes::kSmall, std::move(req),
                    /*include_self=*/true);
}

void Hc3iAgent::handle_clc_request(const ClcRequest& m) {
  if (m.inc != inc_ || rollback_pending_) return;
  if (in_round_) {
    // Overtaken commit (see pending_request_): hold the newer round's
    // request; a re-broadcast of the current round stays a no-op.
    if (m.round > round_) pending_request_ = m;
    return;
  }
  in_round_ = true;
  round_ = m.round;
  replica_acks_ = 0;
  // Tentative local checkpoint (phase 1) + stable-storage replica write.
  tentative_ = make_part();
  const storage::Backend* be = rt_.backend(cluster());
  if (be == nullptr) {
    finish_capture();
    return;
  }
  // Charge the capture write to the storage backend: the node stalls until
  // its (full or delta) image is persisted, which delays its phase-1 ack
  // and therefore stretches the whole round — checkpoint cost surfaces as
  // time the application spends with messages queued.
  const std::uint64_t bytes = tentative_->app.delta_bytes;
  const std::uint64_t saved = tentative_->app.state_bytes - bytes;
  stat(stat_ckpt_bytes_, "ckpt.bytes_written").inc(bytes);
  named_stat(stat_g_ckpt_bytes_, "ckpt.bytes_written").inc(bytes);
  if (saved > 0) {
    stat(stat_ckpt_saved_, "ckpt.bytes_delta_saved").inc(saved);
    named_stat(stat_g_ckpt_saved_, "ckpt.bytes_delta_saved").inc(saved);
  }
  const SimTime stall = be->node_write_time(bytes);
  const std::uint64_t stall_us = static_cast<std::uint64_t>(stall.ns / 1000);
  stat(stat_ckpt_stall_, "ckpt.stall_us").inc(stall_us);
  named_stat(stat_g_ckpt_stall_, "ckpt.stall_us").inc(stall_us);
  HC3I_OBS(ctx_.obs, obs::RecordKind::kCkptWrite, now(), cluster().v, self().v,
           round_, bytes, static_cast<std::uint64_t>(stall.ns));
  const Incarnation round_inc = inc_;
  const std::uint64_t round_id = round_;
  ctx_.sim->schedule_after(stall, [this, round_inc, round_id] {
    // A rollback mid-write aborts the round (the incarnation bump or the
    // cleared in_round_ flag filters the stale completion).
    if (inc_ != round_inc || !in_round_ || round_ != round_id) return;
    finish_capture();
  });
}

void Hc3iAgent::finish_capture() {
  HC3I_CHECK(tentative_.has_value(), "finish_capture without a capture");
  if (replicas_needed() == 0) {
    send_phase1_ack();
    return;
  }
  // The replica transfer carries the captured image across the SAN — the
  // whole process state, or just the delta when storage models incremental
  // capture.
  const std::uint64_t replica_bytes = rt_.backend(cluster()) != nullptr
                                          ? tentative_->app.delta_bytes
                                          : rt_.spec().application.state_bytes;
  for (std::uint32_t r = 1; r <= replicas_needed(); ++r) {
    auto rs = proto::make_pooled<ReplicaStore>();
    rs->round = round_;
    rs->inc = inc_;
    rs->origin = self();
    send_control(ctx_.topology->ring_neighbour(self(), r), replica_bytes,
                 std::move(rs));
  }
}

void Hc3iAgent::handle_replica_store(const net::Envelope& env,
                                     const ReplicaStore& m) {
  if (m.inc != inc_) return;
  auto ack = proto::make_pooled<ReplicaAck>();
  ack->round = m.round;
  ack->inc = inc_;
  send_control(env.src, ControlSizes::kSmall, std::move(ack));
}

void Hc3iAgent::handle_replica_ack(const ReplicaAck& m) {
  if (m.inc != inc_ || !in_round_ || m.round != round_) return;
  if (++replica_acks_ == replicas_needed()) send_phase1_ack();
}

void Hc3iAgent::send_phase1_ack() {
  auto ack = proto::make_pooled<ClcAck>();
  ack->round = round_;
  ack->inc = inc_;
  ack->node = self();
  ack->part = *tentative_;
  ack->node_ddv = ddv_;
  send_control_or_local(coordinator_of(cluster()), ControlSizes::kSmall,
                        std::move(ack));
}

void Hc3iAgent::handle_clc_ack(const ClcAck& m) {
  if (m.inc != inc_ || !round_active_ || m.round != active_round_id_) return;
  const std::uint32_t idx = local_index(m.node);
  HC3I_CHECK(idx < parts_.size(), "ClcAck from foreign node");
  if (parts_[idx].has_value()) return;  // duplicate
  parts_[idx] = m.part;
  round_ddv_merge_.merge_max(m.node_ddv);
  ++acks_received_;
  if (ProtocolObserver* ob = rt_.observer()) {
    // Phase-targeted fault injection observes the ack/commit window here.
    ob->on_phase1_ack(cluster(), active_round_id_,
                      static_cast<std::uint32_t>(acks_received_),
                      static_cast<std::uint32_t>(parts_.size()));
  }
  HC3I_OBS(ctx_.obs, obs::RecordKind::kClcAck, now(), cluster().v, m.node.v,
           active_round_id_, acks_received_, parts_.size());
  if (acks_received_ == parts_.size()) coordinator_commit_round();
}

void Hc3iAgent::coordinator_commit_round() {
  const SeqNum new_sn = sn_ + 1;
  proto::Ddv new_ddv = round_ddv_merge_;
  new_ddv.set(cluster(), new_sn);
  for (const auto& [c, s] : pending_raises_) {
    new_ddv.raise(ClusterId{c}, s);
  }
  if (pending_merge_) {
    // Transitive extension (paper §7): fold the piggybacked DDVs in, never
    // lowering our own entry.
    pending_merge_->set(cluster(), new_sn);
    new_ddv.merge_max(*pending_merge_);
  }
  pending_raises_.clear();
  pending_merge_.reset();

  proto::ClcRecord rec;
  rec.sn = new_sn;
  rec.ddv = new_ddv;
  rec.commit_time = now();
  rec.ledger_mark = ctx_.ledger->mark();
  rec.forced = round_reason_ == RoundReason::kForced;
  rec.parts.reserve(parts_.size());
  for (auto& p : parts_) {
    HC3I_CHECK(p.has_value(), "commit without all parts");
    rec.parts.push_back(std::move(*p));
  }
  if (rt_.options().capture_channel_state) {
    // Channel state: intra-cluster application messages that are in the
    // network, parked, or held in a node's deferred queue at this instant.
    // (A real implementation gathers the same set with flush markers over
    // the FIFO SAN; see DESIGN.md §3.)
    const ClusterId c = cluster();
    rec.channel = ctx_.network->snapshot_in_flight([c](const net::Envelope& e) {
      return e.cls == net::MsgClass::kApp && e.src_cluster == c &&
             e.dst_cluster == c;
    });
    for (const Hc3iAgent* peer : rt_.cluster_agents(c)) {
      for (const net::Envelope& e : peer->deferred_) {
        if (e.intra_cluster()) rec.channel.push_back(e);
      }
    }
  }
  store().commit(std::move(rec));

  stat(stat_clc_total_, "clc.total").inc();
  switch (round_reason_) {
    case RoundReason::kInitial:
      stat(stat_clc_initial_, "clc.initial").inc();
      break;
    case RoundReason::kTimer:
      stat(stat_clc_unforced_, "clc.unforced").inc();
      break;
    case RoundReason::kForced:
      stat(stat_clc_forced_, "clc.forced").inc();
      break;
  }
  stat(stat_store_max_clcs_, "store.max_clcs").raise(store().size());
  stat(stat_store_max_bytes_, "store.max_bytes").raise(store().storage_bytes());
  HC3I_TRACE(kProtocol, now(), "C" << cluster().v << " commit CLC sn=" << new_sn
                                   << " ddv=" << new_ddv.to_string());
  HC3I_OBS(ctx_.obs, obs::RecordKind::kClcCommit, now(), cluster().v, self().v,
           active_round_id_, static_cast<std::uint64_t>(new_sn),
           round_reason_ == RoundReason::kForced ? 1 : 0);

  round_active_ = false;
  auto commit = proto::make_pooled<ClcCommit>();
  commit->round = active_round_id_;
  commit->inc = inc_;
  commit->sn = new_sn;
  commit->ddv = new_ddv;
  broadcast_control(cluster(),
                    ControlSizes::kSmall +
                        new_ddv.size() * ControlSizes::kPerDdvEntry,
                    std::move(commit), /*include_self=*/true);
  if (ProtocolObserver* ob = rt_.observer()) {
    ob->on_clc_commit(cluster(), new_sn,
                      round_reason_ == RoundReason::kForced);
  }
}

void Hc3iAgent::handle_clc_commit(const ClcCommit& m) {
  if (m.inc != inc_ || rollback_pending_) return;
  if (!in_round_ || m.round != round_) return;  // aborted round
  sn_ = m.sn;
  ddv_ = m.ddv;
  in_round_ = false;
  tentative_.reset();
  if (is_cluster_coordinator() && clc_timer_) {
    // "The timer is reset when a forced CLC is established" (paper §5.2) —
    // on timer-driven CLCs the period naturally restarts too.
    clc_timer_->reset();
  }
  // Drain everything frozen during the round: sends first (they carry the
  // new SN), then arrivals, then the forced-CLC stash.
  auto sends = std::move(queued_sends_);
  queued_sends_.clear();
  for (const QueuedSend& q : sends) do_send(q.dst, q.bytes, q.app_seq);
  auto arrivals = std::move(deferred_);
  deferred_.clear();
  for (const net::Envelope& env : arrivals) on_app_message(env);
  drain_wait_queue();
  if (pending_request_) {
    // The next round's request overtook this commit on the SAN; join it now
    // that the round it raced is settled.
    const ClcRequest held = *pending_request_;
    pending_request_.reset();
    handle_clc_request(held);
  }
}

// ---------------------------------------------------------------------------
// Acks / sender log (paper §3.3)
// ---------------------------------------------------------------------------

void Hc3iAgent::handle_inter_ack(const InterAck& m) {
  log_.record_ack(m.msg, m.ack_sn, m.ack_inc);
}

// ---------------------------------------------------------------------------
// Rollback (paper §3.4)
// ---------------------------------------------------------------------------

void Hc3iAgent::on_failure_detected(NodeId failed) {
  // Delivered to the surviving coordinator of the failed node's cluster:
  // "When a node failure is detected, the cluster rolls back to its last
  // stored CLC."
  HC3I_CHECK(ctx_.topology->cluster_of(failed) == cluster(),
             "failure notification routed to wrong cluster");
  if (ProtocolObserver* ob = rt_.observer()) {
    ob->on_failure_detected(cluster(), failed);
  }
  stat(stat_rollback_faults_, "rollback.faults").inc();
  proto::ClcRecord rec = store().last();  // copy: the store gets truncated
  // The failed node lost its volatile memory; it will restore the
  // checkpointed copy of its log (survivors keep and truncate theirs).
  for (Hc3iAgent* peer : rt_.cluster_agents(cluster())) {
    peer->lost_memory_idx_ = local_index(failed);
  }
  rollback_cluster(std::move(rec), /*fault_origin=*/true);
}

void Hc3iAgent::rollback_cluster(proto::ClcRecord rec_arg, bool fault_origin) {
  // The record is shared by the two deferred resume events below; a
  // shared_ptr capture keeps each event callable within the queue's inline
  // storage (the record itself is cold-path state, allocated once per
  // rollback).
  const auto rec_sp =
      std::make_shared<const proto::ClcRecord>(std::move(rec_arg));
  const proto::ClcRecord& rec = *rec_sp;
  const ClusterId c = cluster();
  const Incarnation new_inc = rt_.bump_incarnation(c);
  named_stat(stat_rollback_global_, "rollback.count").inc();
  stat(stat_rollback_count_, "rollback.count").inc();
  // Node-level blast radius: the whole cluster restores (recovery telemetry
  // diffs this per incident).
  named_stat(stat_rollback_nodes_, "rollback.nodes")
      .inc(ctx_.topology->cluster_size(c));
  named_summary(stat_rollback_depth_, "rollback.depth_clcs")
      .add(static_cast<double>(sn_ - rec.sn));
  HC3I_TRACE(kProtocol, now(), "C" << c.v << " ROLLBACK to sn=" << rec.sn
                                   << " inc=" << new_inc
                                   << (fault_origin ? " (fault)" : " (alert)"));
  if (fault_origin) {
    // Alert-triggered rollbacks piggyback on another cluster's recovery
    // window; only the faulted cluster opens a recovery span (closed by
    // Federation::recovery_complete).
    HC3I_OBS(ctx_.obs, obs::RecordKind::kRollbackBegin, now(), c.v, self().v, 0,
             static_cast<std::uint64_t>(rec.sn));
  }

  // 1. Drop this cluster's stale intra-cluster traffic (app and control) —
  //    except rollback-alert relays: they carry epoch-independent knowledge
  //    ("cluster f restored sn X under incarnation i") whose replay triggers
  //    are deduplicated at the alert, not the relay.  Dropping one here
  //    (alert relayed in the instant before our own fault applies — only
  //    reachable with concurrent per-cluster recoveries) would silently
  //    orphan this node's logged sends into f: no retransmit path exists,
  //    and the ledger would report them as lost.
  ctx_.network->drop_in_flight([c](const net::Envelope& e) {
    if (!(e.src_cluster == c && e.dst_cluster == c)) return false;
    return payload_as<AlertRelay>(e) == nullptr &&
           payload_as<RollbackAlert>(e) == nullptr;
  });

  // 2. Undo the cluster's post-checkpoint history in the ledger.
  ctx_.ledger->undo_after(c, rec.ledger_mark);

  // 3. Restore protocol state on every node of the cluster (atomic cluster
  //    event; the modelled cost is the resume delay below).
  for (Hc3iAgent* peer : rt_.cluster_agents(c)) {
    const bool lost_memory =
        peer->lost_memory_idx_.has_value() &&
        *peer->lost_memory_idx_ == local_index(peer->self());
    peer->apply_cluster_rollback(rec, new_inc, lost_memory);
    peer->lost_memory_idx_.reset();
  }
  if (fault_origin) rt_.set_fault_recovery_owed(c);

  // 4. Discard the checkpoints of the undone future.
  store().truncate_after(rec.sn);

  // 5. Re-inject the channel state once every node has restored.
  SimTime resume_delay = state_restore_delay();
  if (const storage::Backend* be = rt_.backend(c)) {
    // Storage-modelled recovery: every node re-reads its checkpoint chain
    // (its part of the restored CLC plus the deltas back to the nearest
    // full image) before the application can resume.
    std::uint64_t total_bytes = 0;
    std::uint64_t max_node_bytes = 0;
    const std::uint32_t nodes = ctx_.topology->cluster_size(c);
    for (std::uint32_t i = 0; i < nodes; ++i) {
      const std::uint64_t b = store().chain_read_bytes(rec.sn, i);
      total_bytes += b;
      max_node_bytes = std::max(max_node_bytes, b);
    }
    const SimTime read = be->cluster_read_time(total_bytes, max_node_bytes);
    const std::uint64_t read_us = static_cast<std::uint64_t>(read.ns / 1000);
    stat(stat_recovery_read_, "recovery.read_us").inc(read_us);
    named_stat(stat_g_recovery_read_, "recovery.read_us").inc(read_us);
    HC3I_OBS(ctx_.obs, obs::RecordKind::kChainRead, now(), c.v, self().v,
             static_cast<std::uint64_t>(rec.sn), total_bytes,
             static_cast<std::uint64_t>(read.ns));
    resume_delay += read;
  }
  ctx_.sim->schedule_after(
      resume_delay + microseconds(1), [this, rec_sp, new_inc] {
        if (inc_ != new_inc) return;  // superseded by a deeper rollback
        for (const net::Envelope& env : rec_sp->channel) {
          Hc3iAgent* dst = rt_.cluster_agents(cluster())[local_index(env.dst)];
          dst->on_app_message(env);
        }
      });

  // 6. Resume the application after the state transfer completes.
  ctx_.sim->schedule_after(resume_delay, [this, rec_sp, new_inc] {
    for (Hc3iAgent* peer : rt_.cluster_agents(cluster())) {
      if (peer->inc_ == new_inc) peer->resume_after_rollback(*rec_sp);
    }
    if (inc_ == new_inc && rt_.take_fault_recovery_owed(cluster())) {
      ctx_.recovery_done(cluster());
    }
  });

  // 7. Alert one node in every other cluster (paper §3.4).
  auto alert = proto::make_pooled<RollbackAlert>();
  alert->faulty = c;
  alert->restored_sn = rec.sn;
  alert->new_inc = new_inc;
  for (std::size_t k = 0; k < rt_.cluster_count(); ++k) {
    if (k == c.v) continue;
    send_control(coordinator_of(ClusterId{static_cast<std::uint32_t>(k)}),
                 ControlSizes::kSmall, alert);
  }
}

void Hc3iAgent::apply_cluster_rollback(const proto::ClcRecord& rec,
                                       Incarnation new_inc, bool lost_memory) {
  const std::uint32_t idx = local_index(self());
  // Lost-work accounting: everything since the restored snapshot.
  const proto::AppSnapshot current = ctx_.app->snapshot();
  const SimTime lost = current.virtual_work - rec.parts[idx].app.virtual_work;
  if (lost.ns > 0) {
    ctx_.registry->observe("rollback.lost_work_s", lost.seconds());
  }

  sn_ = rec.sn;
  ddv_ = rec.ddv;
  inc_ = new_inc;
  dedup_.restore(rec.parts[idx].dedup);
  if (lost_memory) {
    log_.restore(rec.parts[idx].log);
  } else {
    log_.truncate_from(rec.sn);
  }
  wait_force_.clear();
  deferred_.clear();
  queued_sends_.clear();
  post_rollback_stash_.clear();
  pending_request_.reset();  // pre-rollback round; its inc is stale anyway
  in_round_ = false;
  tentative_.reset();
  round_active_ = false;
  pending_raises_.clear();
  pending_merge_.reset();
  acks_received_ = 0;
  // An incarnation bump mid-round aborts the round; no coordinator scratch
  // from the undone epoch may survive it.  `parts_` holds tentative
  // checkpoint images and `round_ddv_merge_` the DDV entries merged from
  // its phase-1 acks — begin_round reinitialises both, and stale acks are
  // filtered by (inc, round id), but clearing here releases the retained
  // images immediately and makes "no stale merged entry can leak into a
  // later round's committed DDV" hold by construction rather than by the
  // interplay of three guards (regression: Rollback.FailureBetweenPhase1-
  // AcksLeavesNoStaleDdv).
  parts_.clear();
  round_ddv_merge_ = ddv_;
  if (clc_timer_) clc_timer_->cancel();
  rollback_pending_ = true;
  ctx_.app->freeze();
}

void Hc3iAgent::resume_after_rollback(const proto::ClcRecord& rec) {
  rollback_pending_ = false;
  ctx_.app->restore(rec.parts[local_index(self())].app);
  if (is_cluster_coordinator() && clc_timer_) clc_timer_->reset();
  auto stash = std::move(post_rollback_stash_);
  post_rollback_stash_.clear();
  for (const net::Envelope& env : stash) on_app_message(env);
}

void Hc3iAgent::handle_rollback_alert(const RollbackAlert& m) {
  HC3I_CHECK(m.faulty != cluster(), "alert from own cluster");
  if (!alerts_seen_.insert({m.faulty.v, m.new_inc}).second) return;
  ctx_.registry->inc("rollback.alerts");
  if (known_rollbacks_.empty()) known_rollbacks_.resize(rt_.cluster_count());
  known_rollbacks_[m.faulty.v].push_back(
      RollbackInfo{m.new_inc, m.restored_sn});

  // Rollback decision first (paper §3.4): if our DDV entry for the faulty
  // cluster is >= the alerted SN, roll back to the target CLC, then alert
  // the others with our own new SN (done inside rollback_cluster).
  if (decide_needs_rollback(m.faulty, m.restored_sn)) {
    const proto::ClcRecord* target =
        find_rollback_target(m.faulty, m.restored_sn);
    HC3I_CHECK(target != nullptr,
               "no rollback target — the garbage collector over-pruned");
    stat(stat_rollback_cascade_, "rollback.cascade").inc();
    rollback_cluster(*target, /*fault_origin=*/false);
  }

  // Relay intra-cluster so every node replays its logged messages
  // ("Even if its cluster does not need to rollback, a node receiving a
  // rollback alert broadcasts it in its cluster").
  auto relay = proto::make_pooled<AlertRelay>();
  relay->inc = inc_;
  relay->alert = m;
  broadcast_control(cluster(), ControlSizes::kSmall, std::move(relay),
                    /*include_self=*/true);
}

void Hc3iAgent::handle_alert_relay(const AlertRelay& m) {
  // Replaying is safe regardless of our incarnation: surviving log entries
  // always describe sends that are part of our current state.
  if (known_rollbacks_.empty()) known_rollbacks_.resize(rt_.cluster_count());
  known_rollbacks_[m.alert.faulty.v].push_back(
      RollbackInfo{m.alert.new_inc, m.alert.restored_sn});
  const std::vector<net::Envelope> resends =
      log_.take_resends(m.alert.faulty, m.alert.restored_sn, m.alert.new_inc);
  for (const net::Envelope& env : resends) {
    const net::Envelope fresh = resend_app(env);
    log_.add(fresh);
  }
  if (!resends.empty()) note_log_highwater();
}

// ---------------------------------------------------------------------------
// Garbage collection (paper §3.5)
// ---------------------------------------------------------------------------

void Hc3iAgent::on_gc_timer() {
  if (gc_active_) return;
  gc_active_ = true;
  ++gc_round_;
  gc_epoch_at_start_ = rt_.fed_rollback_epoch();
  gc_metas_.assign(rt_.cluster_count(), std::nullopt);
  gc_responses_ = 0;
  ctx_.registry->inc("gc.rounds");
  HC3I_TRACE(kProtocol, now(), "GC round " << gc_round_ << " start");
  HC3I_OBS(ctx_.obs, obs::RecordKind::kGcRoundBegin, now(), cluster().v,
           self().v, gc_round_);
  auto req = proto::make_pooled<GcRequest>();
  req->gc_round = gc_round_;
  for (std::size_t k = 0; k < rt_.cluster_count(); ++k) {
    send_control_or_local(
        coordinator_of(ClusterId{static_cast<std::uint32_t>(k)}),
        ControlSizes::kSmall, req);
  }
}

void Hc3iAgent::handle_gc_request(const net::Envelope& env, const GcRequest& m) {
  auto resp = proto::make_pooled<GcResponse>();
  resp->gc_round = m.gc_round;
  resp->cluster = cluster();
  std::vector<proto::ClcMeta> metas;
  metas.reserve(store().size());
  for (const proto::ClcRecord& r : store().records()) {
    metas.push_back(proto::ClcMeta{r.sn, r.ddv});
  }
  // The response carries the whole DDV list (paper §5.4 calls this out as
  // the GC's main network cost) — delta+varint compressed, and charged its
  // real encoded size so the simulated GC cost matches what a wire
  // implementation would pay.
  resp->metas = proto::encode_clc_metas(metas);
  const std::uint64_t flat = proto::uncompressed_clc_metas_bytes(
      metas.size(), rt_.cluster_count(), ControlSizes::kPerDdvEntry);
  const std::uint64_t bytes = ControlSizes::kSmall + resp->metas.wire_bytes();
  if (flat > resp->metas.wire_bytes()) {
    stat(stat_gc_resp_saved_, "gc.resp_bytes_saved")
        .inc(flat - resp->metas.wire_bytes());
  }
  send_control_or_local(env.src, bytes, std::move(resp));
}

void Hc3iAgent::handle_gc_response(const GcResponse& m) {
  if (!gc_active_ || m.gc_round != gc_round_) return;
  if (gc_metas_[m.cluster.v].has_value()) return;
  gc_metas_[m.cluster.v] = proto::decode_clc_metas(m.metas);
  if (++gc_responses_ < rt_.cluster_count()) return;

  gc_active_ = false;
  if (rt_.fed_rollback_epoch() != gc_epoch_at_start_) {
    // A rollback raced with this GC round; the snapshots are inconsistent.
    ctx_.registry->inc("gc.aborted");
    return;
  }
  std::vector<std::vector<proto::ClcMeta>> metas;
  metas.reserve(rt_.cluster_count());
  for (auto& m_opt : gc_metas_) metas.push_back(std::move(*m_opt));
  const std::vector<SeqNum> min_sns = proto::gc_min_restored_sns(metas);

  auto collect = proto::make_pooled<GcCollect>();
  collect->gc_round = gc_round_;
  collect->min_sns = min_sns;
  const std::uint64_t bytes =
      ControlSizes::kSmall + min_sns.size() * ControlSizes::kPerDdvEntry;
  for (std::size_t k = 0; k < rt_.cluster_count(); ++k) {
    send_control_or_local(
        coordinator_of(ClusterId{static_cast<std::uint32_t>(k)}), bytes,
        collect);
  }
}

void Hc3iAgent::handle_gc_collect(const GcCollect& m) {
  HC3I_CHECK(m.min_sns.size() == rt_.cluster_count(), "GC vector size");
  const std::size_t before = store().size();
  const std::size_t removed = store().prune_before(m.min_sns[cluster().v]);
  const std::size_t after = store().size();
  rt_.record_gc(now(), cluster(), before, after);
  stat(stat_gc_removed_, "gc.clcs_removed").inc(removed);
  HC3I_TRACE(kProtocol, now(), "C" << cluster().v << " GC prune: " << before
                                   << " -> " << after);
  HC3I_OBS(ctx_.obs, obs::RecordKind::kGcPrune, now(), cluster().v, self().v,
           m.gc_round, removed);
  auto prune = proto::make_pooled<GcPrune>();
  prune->min_sns = m.min_sns;
  broadcast_control(cluster(),
                    ControlSizes::kSmall +
                        m.min_sns.size() * ControlSizes::kPerDdvEntry,
                    std::move(prune), /*include_self=*/true);
}

void Hc3iAgent::handle_gc_prune(const GcPrune& m) {
  std::size_t removed = 0;
  for (std::size_t d = 0; d < m.min_sns.size(); ++d) {
    if (d == cluster().v) continue;
    removed +=
        log_.prune(ClusterId{static_cast<std::uint32_t>(d)}, m.min_sns[d]);
  }
  if (removed > 0) ctx_.registry->inc("gc.log_entries_removed", removed);
}

}  // namespace hc3i::core
