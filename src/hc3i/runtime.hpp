#pragma once

// Hc3iRuntime — per-run shared state of the HC3I protocol.
//
// The runtime owns what is logically *cluster-level* rather than node-level:
// the stable-storage checkpoint store of each cluster (paper §3.1), the
// cluster incarnation counters (DESIGN.md §3.5), and the garbage-collection
// history the evaluation tables report.  It also gives the cluster
// coordinator direct access to its cluster's agents for two simulator
// shortcuts documented in DESIGN.md §3:
//
//   * channel-state capture at CLC commit reads each node's held-back
//     arrivals (a real implementation would gather the same information
//     with Chandy–Lamport flush markers over the FIFO SAN), and
//   * a cluster rollback applies atomically to all nodes of the cluster
//     (a real implementation would run a restart barrier; the simulated
//     time cost — state-transfer delay before the application resumes —
//     is modelled either way).

#include <memory>
#include <vector>

#include "config/spec.hpp"
#include "hc3i/options.hpp"
#include "proto/agent.hpp"
#include "proto/clc_store.hpp"
#include "storage/backend.hpp"
#include "util/check.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace hc3i::core {

class Hc3iAgent;

/// One garbage-collection outcome for one cluster (paper Tables 2 and 3:
/// "the number of CLCs stored just before and just after the collection").
struct GcEvent {
  SimTime time{};
  ClusterId cluster{};
  std::size_t clcs_before{0};
  std::size_t clcs_after{0};
};

/// Observer of coarse protocol-state transitions (per CLC round / per
/// failure, never per message).  The fault-campaign engine
/// (src/fault/engine.hpp) implements it to fire phase-targeted failure
/// injections ("between phase-1 ack and commit") and to stamp recovery
/// telemetry; agents notify through the runtime only when an observer is
/// installed, so failure-free runs pay one null-pointer test per round.
class ProtocolObserver {
 public:
  virtual ~ProtocolObserver() = default;
  /// A coordinator recorded a phase-1 ack: `acks` of `needed` are in and
  /// the round has not committed yet (when acks == needed the commit
  /// follows immediately after this call returns).
  virtual void on_phase1_ack(ClusterId /*cluster*/, std::uint64_t /*round*/,
                             std::uint32_t /*acks*/,
                             std::uint32_t /*needed*/) {}
  /// A cluster committed a CLC.
  virtual void on_clc_commit(ClusterId /*cluster*/, SeqNum /*sn*/,
                             bool /*forced*/) {}
  /// The failure detector notified `cluster`'s surviving coordinator.
  virtual void on_failure_detected(ClusterId /*cluster*/,
                                   NodeId /*failed*/) {}
};

/// Shared protocol state for one simulation run.
class Hc3iRuntime {
 public:
  Hc3iRuntime(const config::RunSpec& spec, Hc3iOptions opts);

  /// The agent factory to hand to Federation::build_agents. Agents register
  /// themselves with the runtime on construction.
  proto::AgentFactory factory();

  /// Register an externally constructed agent (used by protocol variants
  /// that subclass Hc3iAgent, e.g. the independent-checkpointing baseline).
  void register_agent(ClusterId c, Hc3iAgent* agent);

  const Hc3iOptions& options() const { return opts_; }
  const config::RunSpec& spec() const { return spec_; }
  std::size_t cluster_count() const { return spec_.topology.cluster_count(); }

  /// The stable-storage checkpoint store of a cluster.
  proto::ClcStore& store(ClusterId c);
  const proto::ClcStore& store(ClusterId c) const;

  /// The checkpoint-storage cost model of a cluster, or nullptr when
  /// storage is not modelled there (the default: captures and recovery
  /// reads are free, exactly the seed behaviour).
  const storage::Backend* backend(ClusterId c) const {
    HC3I_CHECK(c.v < backends_.size(), "backend: bad cluster");
    return backends_[c.v].get();
  }
  /// The storage spec the backend was built from.
  const config::StorageSpec& storage_spec(ClusterId c) const {
    HC3I_CHECK(c.v < spec_.topology.clusters.size(),
               "storage_spec: bad cluster");
    return spec_.topology.clusters[c.v].storage;
  }

  /// Current incarnation of a cluster (bumped on every rollback).
  Incarnation incarnation(ClusterId c) const;
  /// Bump and return the new incarnation.
  Incarnation bump_incarnation(ClusterId c);
  /// Sum of all incarnations — changes iff any rollback happened (used by
  /// the GC initiator to abort rounds that raced with a rollback).
  std::uint64_t fed_rollback_epoch() const;

  /// Agents of one cluster, in node order (available once built).
  const std::vector<Hc3iAgent*>& cluster_agents(ClusterId c) const;

  /// Total sender-log entries currently held by a cluster's nodes.
  std::size_t cluster_log_entries(ClusterId c) const;
  /// Unacknowledged sender-log entries across a cluster's nodes.
  std::size_t cluster_unacked_log_entries(ClusterId c) const;

  /// Record a GC outcome (called by each cluster's GC handler).
  void record_gc(SimTime t, ClusterId c, std::size_t before,
                 std::size_t after);
  /// All GC outcomes, in occurrence order.
  const std::vector<GcEvent>& gc_events() const { return gc_events_; }

  /// Install (or clear) the protocol observer; `o` must outlive the run.
  void set_observer(ProtocolObserver* o) { observer_ = o; }
  /// The installed observer, or nullptr (the common, failure-free case).
  ProtocolObserver* observer() const { return observer_; }

  /// Mark cluster `c` as owing a recovery_done() signal for an injected
  /// fault.  The flag is cluster-level (not agent-level) because the
  /// rollback that pays the debt may be superseded by a cascade routed
  /// through a *different* agent of the same cluster; whichever resume
  /// survives at the latest incarnation consumes the flag.
  void set_fault_recovery_owed(ClusterId c) {
    HC3I_CHECK(c.v < fault_recovery_owed_.size(),
               "set_fault_recovery_owed: bad cluster");
    fault_recovery_owed_[c.v] = 1;
  }
  /// Consume the owed-recovery flag of cluster `c`; returns whether it was
  /// set.
  bool take_fault_recovery_owed(ClusterId c) {
    HC3I_CHECK(c.v < fault_recovery_owed_.size(),
               "take_fault_recovery_owed: bad cluster");
    const bool owed = fault_recovery_owed_[c.v] != 0;
    fault_recovery_owed_[c.v] = 0;
    return owed;
  }

 private:
  config::RunSpec spec_;
  Hc3iOptions opts_;
  std::vector<std::unique_ptr<proto::ClcStore>> stores_;
  std::vector<std::unique_ptr<storage::Backend>> backends_;  ///< per cluster
  std::vector<Incarnation> incarnations_;
  std::vector<std::vector<Hc3iAgent*>> agents_;  ///< [cluster][local index]
  std::vector<GcEvent> gc_events_;
  std::vector<std::uint8_t> fault_recovery_owed_;  ///< per cluster, 0/1
  ProtocolObserver* observer_{nullptr};
};

}  // namespace hc3i::core
