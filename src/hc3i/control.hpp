#pragma once

// HC3I protocol control messages.
//
// These are the payload types carried with net::MsgClass::kControl between
// agents: the intra-cluster two-phase commit (paper §3.1), the forced-CLC
// demand path (§3.2), inter-cluster acknowledgements for the sender log
// (§3.3), rollback alerts (§3.4) and the garbage-collection round (§3.5).
// Every intra-cluster message carries the sender's cluster incarnation so a
// rollback invalidates in-flight rounds without extra machinery.

#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "proto/clc_store.hpp"
#include "proto/ddv.hpp"
#include "proto/gc_wire.hpp"
#include "proto/recovery_line.hpp"
#include "util/ids.hpp"

namespace hc3i::core {

/// Modelled wire sizes for control messages (bytes).  The exact values only
/// matter for the network-overhead accounting; they are chosen to be
/// plausible for the fields carried.
struct ControlSizes {
  static constexpr std::uint64_t kSmall = 64;       ///< fixed-field messages
  static constexpr std::uint64_t kPerDdvEntry = 4;  ///< per DDV entry
};

/// Coordinator -> cluster: take a tentative local checkpoint (2PC phase 1).
struct ClcRequest final : net::ControlPayload {
    static constexpr std::uint32_t kKind = 1;
    ClcRequest() : ControlPayload(kKind) {}
  std::uint64_t round{0};
  Incarnation inc{0};
};

/// Node -> its ring neighbour: store my checkpoint part replica
/// (paper §3.1 stable storage; payload_bytes models the state transfer).
struct ReplicaStore final : net::ControlPayload {
    static constexpr std::uint32_t kKind = 2;
    ReplicaStore() : ControlPayload(kKind) {}
  std::uint64_t round{0};
  Incarnation inc{0};
  NodeId origin{};
};

/// Neighbour -> node: replica persisted.
struct ReplicaAck final : net::ControlPayload {
    static constexpr std::uint32_t kKind = 3;
    ReplicaAck() : ControlPayload(kKind) {}
  std::uint64_t round{0};
  Incarnation inc{0};
};

/// Node -> coordinator: local checkpoint + replica done (2PC phase 1 ack).
/// Carries the node's tentative checkpoint part (simulator-level shortcut
/// for the part staying on the node; only metadata travels for real) and
/// the node's DDV view (identical cluster-wide under HC3I; per-node under
/// the independent baseline, merged by max at commit).
struct ClcAck final : net::ControlPayload {
    static constexpr std::uint32_t kKind = 4;
    ClcAck() : ControlPayload(kKind) {}
  std::uint64_t round{0};
  Incarnation inc{0};
  NodeId node{};
  proto::NodePart part;
  proto::Ddv node_ddv;
};

/// Coordinator -> cluster: commit the CLC (2PC phase 2). Carries the new
/// SN and the committed DDV so every node re-synchronises both (paper §3.2:
/// "we use the synchronization induced by the CLC two-phase commit").
struct ClcCommit final : net::ControlPayload {
    static constexpr std::uint32_t kKind = 5;
    ClcCommit() : ControlPayload(kKind) {}
  std::uint64_t round{0};
  Incarnation inc{0};
  SeqNum sn{0};
  proto::Ddv ddv;
};

/// Any node -> coordinator: an inter-cluster message with a fresh SN
/// arrived; a forced CLC is required before it can be delivered (§3.2).
struct ClcDemand final : net::ControlPayload {
    static constexpr std::uint32_t kKind = 6;
    ClcDemand() : ControlPayload(kKind) {}
  Incarnation inc{0};
  ClusterId from_cluster{};
  SeqNum observed_sn{0};
  /// With the transitive extension (paper §7), the full piggybacked DDV
  /// (copied from the envelope by refcount bump / inline memcpy).
  proto::Ddv observed_ddv;
};

/// Receiver -> sender of an inter-cluster application message: delivery
/// acknowledgement for the sender log (§3.3).
struct InterAck final : net::ControlPayload {
    static constexpr std::uint32_t kKind = 7;
    InterAck() : ControlPayload(kKind) {}
  MsgId msg{};
  SeqNum ack_sn{0};
  Incarnation ack_inc{0};
};

/// Rolled-back cluster -> one node of every other cluster (§3.4).
struct RollbackAlert final : net::ControlPayload {
    static constexpr std::uint32_t kKind = 8;
    RollbackAlert() : ControlPayload(kKind) {}
  ClusterId faulty{};
  SeqNum restored_sn{0};
  Incarnation new_inc{0};
};

/// Intra-cluster relay of a received alert (every node must scan its log).
struct AlertRelay final : net::ControlPayload {
    static constexpr std::uint32_t kKind = 9;
    AlertRelay() : ControlPayload(kKind) {}
  Incarnation inc{0};  ///< receiving cluster's incarnation
  RollbackAlert alert;
};

/// GC initiator -> one node per cluster: send your stored-CLC DDV list.
struct GcRequest final : net::ControlPayload {
    static constexpr std::uint32_t kKind = 10;
    GcRequest() : ControlPayload(kKind) {}
  std::uint64_t gc_round{0};
};

/// Reply: the cluster's retained checkpoint metadata (§3.5), delta+varint
/// compressed (proto/gc_wire.hpp) — the paper calls the DDV list out as the
/// GC's main network cost, and uncompressed it grows with records x
/// clusters along a scale-out sweep.
struct GcResponse final : net::ControlPayload {
    static constexpr std::uint32_t kKind = 11;
    GcResponse() : ControlPayload(kKind) {}
  std::uint64_t gc_round{0};
  ClusterId cluster{};
  proto::EncodedClcMetas metas;
};

/// GC initiator -> one node per cluster: the smallest-SN vector; prune.
struct GcCollect final : net::ControlPayload {
    static constexpr std::uint32_t kKind = 12;
    GcCollect() : ControlPayload(kKind) {}
  std::uint64_t gc_round{0};
  std::vector<SeqNum> min_sns;
};

/// Intra-cluster broadcast of GcCollect so every node prunes its log.
struct GcPrune final : net::ControlPayload {
    static constexpr std::uint32_t kKind = 13;
    GcPrune() : ControlPayload(kKind) {}
  Incarnation inc{0};
  std::vector<SeqNum> min_sns;
};

}  // namespace hc3i::core
