#include "hc3i/runtime.hpp"

#include <utility>

#include "hc3i/agent.hpp"

namespace hc3i::core {

Hc3iRuntime::Hc3iRuntime(const config::RunSpec& spec, Hc3iOptions opts)
    : spec_(spec), opts_(opts) {
  spec_.validate();
  const std::size_t n = spec_.topology.cluster_count();
  incarnations_.assign(n, 0);
  fault_recovery_owed_.assign(n, 0);
  agents_.resize(n);
  stores_.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    const std::uint32_t nodes = spec_.topology.clusters[c].nodes;
    // The replication degree cannot exceed the number of neighbour nodes.
    const std::uint32_t repl =
        nodes > 1 ? std::min(opts_.replication, nodes - 1) : 0;
    stores_.push_back(std::make_unique<proto::ClcStore>(
        ClusterId{static_cast<std::uint32_t>(c)}, nodes, repl));
    backends_.push_back(
        storage::make_backend(spec_.topology.clusters[c].storage, nodes));
    agents_[c].reserve(nodes);
  }
}

proto::AgentFactory Hc3iRuntime::factory() {
  return [this](const proto::AgentContext& ctx) {
    auto agent = std::make_unique<Hc3iAgent>(ctx, *this);
    register_agent(ctx.cluster, agent.get());
    return agent;
  };
}

void Hc3iRuntime::register_agent(ClusterId c, Hc3iAgent* agent) {
  HC3I_CHECK(c.v < agents_.size(), "register_agent: bad cluster");
  HC3I_CHECK(agent != nullptr, "register_agent: null agent");
  agents_[c.v].push_back(agent);
}

proto::ClcStore& Hc3iRuntime::store(ClusterId c) {
  HC3I_CHECK(c.v < stores_.size(), "store: bad cluster");
  return *stores_[c.v];
}

const proto::ClcStore& Hc3iRuntime::store(ClusterId c) const {
  HC3I_CHECK(c.v < stores_.size(), "store: bad cluster");
  return *stores_[c.v];
}

Incarnation Hc3iRuntime::incarnation(ClusterId c) const {
  HC3I_CHECK(c.v < incarnations_.size(), "incarnation: bad cluster");
  return incarnations_[c.v];
}

Incarnation Hc3iRuntime::bump_incarnation(ClusterId c) {
  HC3I_CHECK(c.v < incarnations_.size(), "bump_incarnation: bad cluster");
  return ++incarnations_[c.v];
}

std::uint64_t Hc3iRuntime::fed_rollback_epoch() const {
  std::uint64_t sum = 0;
  for (const Incarnation i : incarnations_) sum += i;
  return sum;
}

const std::vector<Hc3iAgent*>& Hc3iRuntime::cluster_agents(ClusterId c) const {
  HC3I_CHECK(c.v < agents_.size(), "cluster_agents: bad cluster");
  return agents_[c.v];
}

std::size_t Hc3iRuntime::cluster_log_entries(ClusterId c) const {
  std::size_t total = 0;
  for (const Hc3iAgent* a : cluster_agents(c)) total += a->log_size();
  return total;
}

std::size_t Hc3iRuntime::cluster_unacked_log_entries(ClusterId c) const {
  std::size_t total = 0;
  for (const Hc3iAgent* a : cluster_agents(c)) {
    total += a->msg_log().unacked_count();
  }
  return total;
}

void Hc3iRuntime::record_gc(SimTime t, ClusterId c, std::size_t before,
                            std::size_t after) {
  gc_events_.push_back(GcEvent{t, c, before, after});
}

}  // namespace hc3i::core
