#pragma once

// Periodic metrics sampler: turns end-of-run counter totals into time
// series by snapshotting a fixed set of stats::Registry counters (plus the
// network's live in-flight count) on the simulated clock.
//
// Golden-safety: the sampler reads counters only through Registry::get(),
// which never interns a name, so arming it cannot add rows to a
// --dump-counters golden.  Its tick events ride the ordinary event queue,
// so two same-seed runs sample identical values at identical instants and
// the TSV export is byte-reproducible.

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "stats/registry.hpp"
#include "util/time.hpp"

namespace hc3i::obs {

/// One snapshot row.  Cumulative counter values as of `t` (rates are the
/// reader's derivative); `in_flight` is the instantaneous live count.
struct MetricsSample {
  SimTime t;
  std::uint64_t clc_forced{0};
  std::uint64_t clc_total{0};
  std::uint64_t in_flight{0};
  std::uint64_t app_delivered{0};
  std::uint64_t log_resent_bytes{0};
  std::uint64_t ckpt_bytes_written{0};
  std::uint64_t ckpt_stall_us{0};
  std::uint64_t recovery_read_us{0};
};

/// Samples every `interval` of simulated time from t=interval until the
/// given horizon (inclusive).  Construct before the run, arm() once, read
/// samples() after the run; the sampler must not outlive the simulation it
/// is armed on.
class MetricsSampler {
 public:
  MetricsSampler(sim::Simulation& sim, const stats::Registry& registry,
                 const net::Network& network, SimTime interval);

  /// Schedule the tick chain up to `until` (no-op if interval is zero).
  void arm(SimTime until);

  const std::vector<MetricsSample>& samples() const { return samples_; }
  /// Move the collected series out (the sampler is then spent).
  std::vector<MetricsSample> take_samples() { return std::move(samples_); }

 private:
  void tick(SimTime until);

  sim::Simulation& sim_;
  const stats::Registry& registry_;
  const net::Network& network_;
  SimTime interval_;
  std::vector<MetricsSample> samples_;
};

}  // namespace hc3i::obs
