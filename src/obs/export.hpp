#pragma once

// Exporters for the observability layer.
//
// trace_json renders the structured trace as Chrome trace_event JSON
// (load it at ui.perfetto.dev or chrome://tracing): CLC rounds and
// rollback->recovery windows become async "b"/"e" spans on per-cluster
// tracks, checkpoint writes and recovery chain reads become "X" complete
// events with their stall as the duration, and acks / failures / GC
// prunes become "i" instants.  metrics_tsv renders the sampler series as
// a tab-separated table with a fixed column set.
//
// Both renderings are pure functions of the recording — integer-only
// timestamp formatting, emission-order traversal — so a fixed seed yields
// byte-identical output (CI compares two same-seed passes with cmp).

#include <string>

#include "obs/recording.hpp"

namespace hc3i::obs {

/// Chrome/Perfetto trace_event JSON for the structured trace.
std::string trace_json(const Recording& rec);

/// Tab-separated metrics time series (header row + one row per sample).
std::string metrics_tsv(const Recording& rec);

/// Write `content` to `path` (truncating). Returns false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace hc3i::obs
