#pragma once

// The bundle of everything one run's observability layer produced: the
// structured trace (with its derived round/stall distributions) plus the
// periodic metrics series.  Owned by driver::RunResult via shared_ptr so
// results stay cheaply copyable; null when observability was off.

#include <vector>

#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace hc3i::obs {

struct Recording {
  Recorder recorder;
  std::vector<MetricsSample> samples;
  SimTime metrics_interval{SimTime::zero()};
};

}  // namespace hc3i::obs
