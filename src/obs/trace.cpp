#include "obs/trace.hpp"

namespace hc3i::obs {

const char* to_label(RecordKind k) {
  switch (k) {
    case RecordKind::kClcRoundBegin:
      return "clc_round";
    case RecordKind::kClcAck:
      return "clc_ack";
    case RecordKind::kClcCommit:
      return "clc_commit";
    case RecordKind::kCkptWrite:
      return "ckpt_write";
    case RecordKind::kChainRead:
      return "chain_read";
    case RecordKind::kFailure:
      return "failure";
    case RecordKind::kNodeRestored:
      return "node_restored";
    case RecordKind::kRollbackBegin:
      return "rollback";
    case RecordKind::kRecoveryEnd:
      return "recovery_end";
    case RecordKind::kGcRoundBegin:
      return "gc_round";
    case RecordKind::kGcPrune:
      return "gc_prune";
    case RecordKind::kCampaignInject:
      return "inject";
  }
  return "unknown";
}

}  // namespace hc3i::obs
