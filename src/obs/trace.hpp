#pragma once

// Structured protocol trace: the typed counterpart of the §5.1 text trace.
//
// The paper's simulator "can be compiled with different trace levels"; the
// text tiers (util/log.hpp) reproduce that, but a timeline needs records a
// program can read back: which CLC round a commit closed, how long a
// checkpoint write stalled, when a rollback started and when its recovery
// finished.  This header defines those records and the Recorder that
// collects them.
//
// Cost discipline: when tracing is off the recorder pointer threaded
// through proto::AgentContext is null and every emission site is one
// pointer test (the HC3I_OBS macro below).  When it is on, records land in
// a chunked buffer — fixed-size chunks, never relocated — so steady-state
// emission does not allocate per record.  The simulation is
// single-threaded and events execute in time order, so the buffer is
// chronologically sorted by construction and the export (obs/export.hpp)
// is deterministic for a fixed seed.

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "stats/accumulators.hpp"
#include "util/time.hpp"

namespace hc3i::obs {

/// What happened.  Payload field meaning per kind is documented inline and
/// in docs/observability.md (the export relies on it).
enum class RecordKind : std::uint8_t {
  kClcRoundBegin,   ///< id=round, a=forced(0/1)
  kClcAck,          ///< id=round, node=acking node, a=acks so far, b=needed
  kClcCommit,       ///< id=round, a=committed SN, b=forced(0/1)
  kCkptWrite,       ///< node=writer, a=bytes, b=stall ns
  kChainRead,       ///< a=bytes, b=read ns (recovery chain read)
  kFailure,         ///< node=victim
  kNodeRestored,    ///< node=restored node
  kRollbackBegin,   ///< a=rollback-to SN
  kRecoveryEnd,     ///< recovery complete for the cluster
  kGcRoundBegin,    ///< id=GC round
  kGcPrune,         ///< id=GC round, a=CLCs removed
  kCampaignInject,  ///< node=victim, label=injection source
};

/// Stable lowercase event name for exports ("clc_round", "ckpt_write", ...).
const char* to_label(RecordKind k);

/// One fixed-layout trace record.  `label`, when set, always points at a
/// string literal (campaign source names), never at owned storage.
struct TraceRecord {
  SimTime t;
  std::uint64_t id{0};
  std::uint64_t a{0};
  std::uint64_t b{0};
  std::uint32_t cluster{0};
  std::uint32_t node{0};
  RecordKind kind{};
  const char* label{nullptr};
};

/// Append-only record store: fixed-capacity chunks chained in a vector, so
/// a push never moves existing records and steady-state pushes (within a
/// chunk) never allocate.
class TraceBuffer {
 public:
  static constexpr std::size_t kChunkCap = 4096;

  void push(const TraceRecord& r) {
    if (chunks_.empty() || chunks_.back()->n == kChunkCap) {
      chunks_.push_back(std::make_unique<Chunk>());
    }
    Chunk& c = *chunks_.back();
    c.recs[c.n++] = r;
    ++size_;
  }

  std::size_t size() const { return size_; }

  /// Visit every record in emission (= chronological) order.
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& c : chunks_) {
      for (std::size_t i = 0; i < c->n; ++i) f(c->recs[i]);
    }
  }

 private:
  struct Chunk {
    std::array<TraceRecord, kChunkCap> recs;
    std::size_t n{0};
  };
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t size_{0};
};

/// Collects trace records and, on the side, the latency distributions only
/// a record stream can see: CLC round duration (begin -> commit, per
/// cluster) and storage stall (checkpoint write + recovery chain read).
/// One Recorder per run, owned by the driver; emission sites hold a raw
/// pointer that is null when tracing is off.
class Recorder {
 public:
  void emit(RecordKind k, SimTime t, std::uint32_t cluster, std::uint32_t node,
            std::uint64_t id, std::uint64_t a = 0, std::uint64_t b = 0,
            const char* label = nullptr) {
    buf_.push(TraceRecord{t, id, a, b, cluster, node, k, label});
    switch (k) {
      case RecordKind::kClcRoundBegin:
        if (cluster >= round_begin_.size()) {
          round_begin_.resize(cluster + 1, SimTime::infinity());
        }
        round_begin_[cluster] = t;
        break;
      case RecordKind::kClcCommit:
        if (cluster < round_begin_.size() &&
            !round_begin_[cluster].is_infinite()) {
          round_us_.add(
              static_cast<std::uint64_t>((t - round_begin_[cluster]).ns) /
              1000u);
          round_begin_[cluster] = SimTime::infinity();
        }
        break;
      case RecordKind::kCkptWrite:
      case RecordKind::kChainRead:
        stall_us_.add(b / 1000u);
        break;
      default:
        break;
    }
  }

  const TraceBuffer& records() const { return buf_; }
  /// CLC round duration distribution, microseconds.
  const stats::Log2Histogram& round_us() const { return round_us_; }
  /// Storage stall distribution (ckpt writes + chain reads), microseconds.
  const stats::Log2Histogram& stall_us() const { return stall_us_; }

 private:
  TraceBuffer buf_;
  std::vector<SimTime> round_begin_;  ///< open round start, per cluster
  stats::Log2Histogram round_us_;
  stats::Log2Histogram stall_us_;
};

}  // namespace hc3i::obs

/// The sanctioned emission idiom: one null test when tracing is off, a
/// record append when on.  Instrumentation sites must use this macro (or an
/// equivalent visible guard) — the trace-guarded lint rule rejects raw
/// Recorder/Trace emission calls outside src/obs/.
#define HC3I_OBS(rec, ...)                         \
  do {                                             \
    if ((rec) != nullptr) (rec)->emit(__VA_ARGS__); \
  } while (0)
