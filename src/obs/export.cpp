#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>

namespace hc3i::obs {

namespace {

/// Append printf-formatted text to `out` (records are short; 256 covers
/// every event line this exporter produces).
template <typename... Args>
void append_fmt(std::string& out, const char* fmt, Args... args) {
  char buf[256];
  const int n = std::snprintf(buf, sizeof buf, fmt, args...);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

/// trace_event timestamps are microseconds; render the integer-ns SimTime
/// as "<us>.<frac3>" with integer math only, so output never depends on
/// floating-point formatting.
void append_ts(std::string& out, SimTime t) {
  const auto ns = static_cast<std::uint64_t>(t.ns);
  append_fmt(out, "%" PRIu64 ".%03" PRIu64, ns / 1000u, ns % 1000u);
}

void append_event_head(std::string& out, const char* name, const char* cat,
                       const char* ph, const TraceRecord& r) {
  append_fmt(out, "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",", name, cat,
             ph);
  append_fmt(out, "\"pid\":0,\"tid\":%u,\"ts\":", r.cluster);
  append_ts(out, r.t);
}

void append_record(std::string& out, const TraceRecord& r) {
  const char* name = to_label(r.kind);
  switch (r.kind) {
    case RecordKind::kClcRoundBegin:
      append_event_head(out, name, "clc", "b", r);
      append_fmt(out,
                 ",\"id\":%" PRIu64 ",\"args\":{\"forced\":%" PRIu64 "}}",
                 r.id, r.a);
      break;
    case RecordKind::kClcAck:
      append_event_head(out, name, "clc", "i", r);
      append_fmt(out,
                 ",\"s\":\"t\",\"args\":{\"round\":%" PRIu64
                 ",\"node\":%u,\"acks\":%" PRIu64 ",\"needed\":%" PRIu64 "}}",
                 r.id, r.node, r.a, r.b);
      break;
    case RecordKind::kClcCommit:
      // Closes the async span opened by the matching kClcRoundBegin; the
      // name must equal the begin event's ("clc_round"), so the commit
      // payload rides in args.
      append_event_head(out, "clc_round", "clc", "e", r);
      append_fmt(out,
                 ",\"id\":%" PRIu64 ",\"args\":{\"sn\":%" PRIu64
                 ",\"forced\":%" PRIu64 "}}",
                 r.id, r.a, r.b);
      break;
    case RecordKind::kCkptWrite:
    case RecordKind::kChainRead:
      append_event_head(out, name, "storage", "X", r);
      append_fmt(out, ",\"dur\":");
      append_ts(out, SimTime{static_cast<std::int64_t>(r.b)});
      append_fmt(out, ",\"args\":{\"node\":%u,\"bytes\":%" PRIu64 "}}", r.node,
                 r.a);
      break;
    case RecordKind::kFailure:
    case RecordKind::kNodeRestored:
      append_event_head(out, name, "fault", "i", r);
      append_fmt(out, ",\"s\":\"t\",\"args\":{\"node\":%u}}", r.node);
      break;
    case RecordKind::kCampaignInject:
      append_event_head(out, name, "fault", "i", r);
      append_fmt(out, ",\"s\":\"t\",\"args\":{\"node\":%u,\"source\":\"%s\"}}",
                 r.node, r.label != nullptr ? r.label : "");
      break;
    case RecordKind::kRollbackBegin:
      // Async "recovery" span per cluster: a second fault into a recovering
      // cluster queues (federation invariant), so the cluster id is a valid
      // span id — spans on one track never overlap.
      append_event_head(out, "recovery", "recovery", "b", r);
      append_fmt(out, ",\"id\":%u,\"args\":{\"to_sn\":%" PRIu64 "}}",
                 r.cluster, r.a);
      break;
    case RecordKind::kRecoveryEnd:
      append_event_head(out, "recovery", "recovery", "e", r);
      append_fmt(out, ",\"id\":%u}", r.cluster);
      break;
    case RecordKind::kGcRoundBegin:
      append_event_head(out, name, "gc", "i", r);
      append_fmt(out, ",\"s\":\"t\",\"args\":{\"round\":%" PRIu64 "}}", r.id);
      break;
    case RecordKind::kGcPrune:
      append_event_head(out, name, "gc", "i", r);
      append_fmt(out,
                 ",\"s\":\"t\",\"args\":{\"round\":%" PRIu64
                 ",\"removed\":%" PRIu64 "}}",
                 r.id, r.a);
      break;
  }
}

}  // namespace

std::string trace_json(const Recording& rec) {
  std::string out;
  out.reserve(128 + rec.recorder.records().size() * 96);
  out += "{\"traceEvents\":[";
  bool first = true;
  rec.recorder.records().for_each([&](const TraceRecord& r) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    append_record(out, r);
  });
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string metrics_tsv(const Recording& rec) {
  std::string out;
  out.reserve(64 + rec.samples.size() * 80);
  out +=
      "time_s\tclc_forced\tclc_total\tin_flight\tapp_delivered\t"
      "log_resent_bytes\tckpt_bytes_written\tckpt_stall_us\t"
      "recovery_read_us\n";
  for (const MetricsSample& s : rec.samples) {
    const auto ns = static_cast<std::uint64_t>(s.t.ns);
    append_fmt(out,
               "%" PRIu64 ".%09" PRIu64 "\t%" PRIu64 "\t%" PRIu64 "\t%" PRIu64
               "\t%" PRIu64 "\t%" PRIu64 "\t%" PRIu64 "\t%" PRIu64 "\t%" PRIu64
               "\n",
               ns / 1'000'000'000u, ns % 1'000'000'000u, s.clc_forced,
               s.clc_total, s.in_flight, s.app_delivered, s.log_resent_bytes,
               s.ckpt_bytes_written, s.ckpt_stall_us, s.recovery_read_us);
  }
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = n == content.size() && std::fclose(f) == 0;
  if (n != content.size()) std::fclose(f);
  return ok;
}

}  // namespace hc3i::obs
