#include "obs/sampler.hpp"

#include "util/check.hpp"

namespace hc3i::obs {

MetricsSampler::MetricsSampler(sim::Simulation& sim,
                               const stats::Registry& registry,
                               const net::Network& network, SimTime interval)
    : sim_(sim), registry_(registry), network_(network), interval_(interval) {
  HC3I_CHECK(interval.ns >= 0, "MetricsSampler: negative interval");
}

void MetricsSampler::arm(SimTime until) {
  if (interval_ == SimTime::zero()) return;
  sim_.schedule_after(interval_, [this, until] { tick(until); });
}

void MetricsSampler::tick(SimTime until) {
  MetricsSample s;
  s.t = sim_.now();
  s.clc_forced = registry_.get("clc.forced");
  s.clc_total = registry_.get("clc.total");
  s.in_flight = network_.in_flight_count();
  s.app_delivered = registry_.get("app.delivered");
  s.log_resent_bytes = registry_.get("log.resent_bytes");
  s.ckpt_bytes_written = registry_.get("ckpt.bytes_written");
  s.ckpt_stall_us = registry_.get("ckpt.stall_us");
  s.recovery_read_us = registry_.get("recovery.read_us");
  samples_.push_back(s);
  if (sim_.now() + interval_ <= until) {
    sim_.schedule_after(interval_, [this, until] { tick(until); });
  }
}

}  // namespace hc3i::obs
