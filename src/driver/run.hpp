#pragma once

// One-call simulation driver.
//
// run_simulation() assembles the full stack (simulation kernel, topology,
// network, federation, protocol agents, workload), runs the configured
// scenario to its horizon plus a drain window, audits the consistency
// ledger, and returns every statistic the benches and tests consume.
// This is the paper's "Controller" thread (§5.1) in library form.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "config/spec.hpp"
#include "app/workload.hpp"
#include "driver/sim_context.hpp"
#include "fault/campaign.hpp"
#include "fault/telemetry.hpp"
#include "hc3i/options.hpp"
#include "hc3i/runtime.hpp"
#include "obs/recording.hpp"
#include "stats/accumulators.hpp"
#include "stats/registry.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace hc3i::driver {

/// Which checkpointing protocol to run.
enum class ProtocolKind {
  kHc3i,                     ///< the paper's protocol
  kIndependent,              ///< HC3I minus forcing (domino-prone baseline)
  kCoordinatedGlobal,        ///< federation-wide 2PC (paper §2.2 strawman)
  kPessimisticLog,           ///< MPICH-V-like message logging (paper §6)
  kHierarchicalCoordinated,  ///< two-level coordinated (paper §6, ref [9])
};

/// Human-readable protocol name.
std::string to_string(ProtocolKind kind);

/// A failure to inject at a fixed simulated time.  Legacy shim: folded into
/// the campaign as a `fault::KillSpec` at run time (same semantics, byte-
/// identical runs); new call sites should populate `RunOptions::campaign`.
struct ScriptedFailure {
  SimTime at{};
  NodeId victim{};
};

/// Everything that defines one simulation run.
struct RunOptions {
  config::RunSpec spec;
  std::uint64_t seed{1};
  ProtocolKind protocol{ProtocolKind::kHc3i};
  core::Hc3iOptions hc3i{};
  /// Declarative fault plan (scripted kills, MTBF streams, correlated
  /// bursts, repeat offenders, phase-targeted triggers); compiled by the
  /// fault::CampaignEngine, measured by fault::RecoveryTelemetry.
  fault::Campaign campaign;
  /// Legacy shim: inject random failures per the topology MTBF.  Folded
  /// into the campaign as a federation-wide `fault::StreamSpec` (same RNG
  /// stream, draw-for-draw identical to the pre-campaign injector).
  bool auto_failures{false};
  /// Legacy shim: deterministic failure script (see ScriptedFailure).
  std::vector<ScriptedFailure> scripted_failures;
  /// Extra simulated time after the application horizon for messages,
  /// forced CLCs and recoveries to settle before strict validation.
  SimTime drain{minutes(5)};
  app::ReplayMode replay{app::ReplayMode::kDivergent};
  /// Throw CheckFailure on any consistency violation (tests rely on it);
  /// when false, violations are only reported in the result.
  bool validate{true};
  /// Collect the structured protocol trace (obs::Recorder threaded through
  /// every agent; off = every emission site is one null-pointer test).
  bool trace{false};
  /// Sample the metrics time series every this much simulated time
  /// (zero = off).  Reads counters via Registry::get() only, so arming the
  /// sampler never adds rows to a counter dump.
  SimTime metrics_interval{SimTime::zero()};
};

/// Everything a run produces.
struct RunResult {
  stats::Registry registry;
  std::vector<core::GcEvent> gc_events;
  /// Per-injection recovery cost records (empty for failure-free runs);
  /// rendered as a table by driver/report.
  std::vector<fault::Incident> incidents;
  /// Residual (unattributed) cost row + concurrency high-water for the
  /// incident table; `has_residual` is false for failure-free runs.
  fault::CampaignSummary fault_summary;
  std::vector<std::string> violations;
  /// Recovery-latency distribution (us, completed recoveries): feeds the
  /// p50/p95/p99 columns the mean-only summaries cannot show.
  stats::Log2Histogram recovery_latency_us;
  /// Structured trace + metrics series; null unless RunOptions::trace or
  /// metrics_interval enabled the observability layer.
  std::shared_ptr<obs::Recording> obs;
  SimTime end_time{};
  std::uint64_t events_executed{0};
  std::uint64_t total_progress{0};
  std::uint64_t total_received{0};

  /// Committed forced CLCs of a cluster (excluding the initial CLC).
  std::uint64_t clc_forced(ClusterId c) const;
  /// Committed unforced (timer) CLCs of a cluster (excluding initial).
  std::uint64_t clc_unforced(ClusterId c) const;
  /// All committed CLCs of a cluster (including the initial one).
  std::uint64_t clc_total(ClusterId c) const;
  /// Application messages sent from cluster `from` to cluster `to`
  /// (the Table 1 census; excludes protocol re-sends' duplicates only in
  /// the sense that re-sends are counted as traffic, as they are on a wire).
  std::uint64_t app_messages(ClusterId from, ClusterId to) const;
  /// Named counter shorthand.
  std::uint64_t counter(const std::string& name) const {
    return registry.get(name);
  }
};

/// Build, run and audit one simulation in a private, run-scoped SimContext.
RunResult run_simulation(const RunOptions& opts);

/// Build, run and audit one simulation inside a caller-owned context.  The
/// sharded batch runner threads each worker's SimContext through here so
/// payload pools stay warm across the worker's runs; results are
/// byte-identical to the context-less overload regardless of how warm the
/// context is (pool state never leaks into simulation behaviour).  The
/// context must not be used by two runs concurrently.
RunResult run_simulation(const RunOptions& opts, SimContext& ctx);

}  // namespace hc3i::driver
