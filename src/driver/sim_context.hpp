#pragma once

// Per-worker simulation substrate.
//
// A SimContext owns every piece of mutable state that outlives one run but
// must not be shared between concurrent runs: today that is the payload
// arena (proto/payload_pool.hpp).  The sharded batch runner (src/batch/)
// gives each worker thread one SimContext and reuses it across the runs the
// worker executes, which is what turns per-run pool warm-up from a
// per-process one-off into an amortised per-worker cost: the second run a
// worker executes pops warm free-list blocks where the first paid heap
// allocations.
//
// The ownership rule it encodes (docs/architecture.md, PR 7):
//
//   * shared read-only across shards — immutable sweep inputs: topology /
//     application / timer specs and campaign plans (batch::RunCase holds
//     them behind shared_ptr<const>), interned metric *names* (strings,
//     created once, read-only after).
//   * shard-local, deliberately NOT atomic — everything a run mutates:
//     the simulation kernel and its event queue, stats::Registry values,
//     RNG streams, COW refcounts (proto::Ddv spills, LogImage/DedupImage
//     buffers), and this context's payload arena.  None of these carry
//     atomics or locks; isolation, not synchronisation, is the concurrency
//     model, and the TSan CI job checks that claim.
//
// driver::run_simulation(opts) with no context constructs a private one per
// run — solo behaviour is unchanged, and pool teardown happens at run end
// (deterministically, not at static destruction).

#include "proto/payload_pool.hpp"

namespace hc3i::driver {

/// Worker-owned state threaded through run_simulation(); reuse across runs
/// keeps payload pools warm, and teardown releases them deterministically.
class SimContext {
 public:
  SimContext() = default;
  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  /// The worker's payload arena (installed for the duration of each run).
  proto::PayloadArena& arena() { return arena_; }
  const proto::PayloadArena& arena() const { return arena_; }

 private:
  proto::PayloadArena arena_;
};

}  // namespace hc3i::driver
