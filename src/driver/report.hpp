#pragma once

// Human-readable run reports.
//
// The paper's simulator prints "statistical data, as messages count in
// clusters and between each cluster, number of stored CLCs, number of
// protocol messages" as its lowest-level output (§5.1).  render_report
// produces that summary from a RunResult — used by the hc3i_sim CLI tool
// and handy from examples.

#include <string>

#include "driver/run.hpp"

namespace hc3i::driver {

/// Render the end-of-run statistics block: the message census matrix,
/// per-cluster CLC counts, rollback/GC/log statistics and the consistency
/// verdict.  `clusters` is the federation size the run used.
std::string render_report(const RunResult& result, std::size_t clusters);

/// Render the raw counter registry as CSV ("counter,value" rows) for
/// scripted post-processing.
std::string render_counters_csv(const RunResult& result);

}  // namespace hc3i::driver
