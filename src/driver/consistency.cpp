#include "driver/consistency.hpp"

#include "hc3i/agent.hpp"

namespace hc3i::driver {

void append_cluster_agreement_violations(const core::Hc3iRuntime& rt,
                                         std::vector<std::string>& out,
                                         bool expect_ddv_agreement) {
  for (std::size_t c = 0; c < rt.cluster_count(); ++c) {
    const ClusterId cid{static_cast<std::uint32_t>(c)};
    const auto& agents = rt.cluster_agents(cid);
    if (agents.empty()) continue;

    // Agreement only holds outside 2PC rounds (paper §3.1); skip clusters
    // observed mid-round (a timer can fire inside the drain window).
    bool mid_round = false;
    for (const core::Hc3iAgent* a : agents) mid_round = mid_round || a->in_round();
    if (!mid_round) {
      const core::Hc3iAgent* first = agents.front();
      for (const core::Hc3iAgent* a : agents) {
        if (a->sn() != first->sn()) {
          out.push_back("cluster " + std::to_string(c) +
                        ": SN disagreement between nodes");
          break;
        }
        if (expect_ddv_agreement && !(a->ddv() == first->ddv())) {
          out.push_back("cluster " + std::to_string(c) +
                        ": DDV disagreement between nodes");
          break;
        }
        if (a->incarnation() != first->incarnation()) {
          out.push_back("cluster " + std::to_string(c) +
                        ": incarnation disagreement between nodes");
          break;
        }
      }
    }

    // Store well-formedness: SNs strictly increasing, own DDV entry == SN.
    const auto& records = rt.store(cid).records();
    for (std::size_t k = 0; k < records.size(); ++k) {
      if (records[k].ddv.at(cid) != records[k].sn) {
        out.push_back("cluster " + std::to_string(c) + ": CLC sn=" +
                      std::to_string(records[k].sn) +
                      " has DDV[self] != SN");
      }
      if (k > 0 && records[k].sn <= records[k - 1].sn) {
        out.push_back("cluster " + std::to_string(c) +
                      ": CLC SNs not strictly increasing");
      }
    }
  }

  // In failure-free runs, no cluster can have observed an SN the sender
  // never committed: DDV_j[i] <= SN_i.  (After rollbacks this bound can
  // transiently overshoot by design — see DESIGN.md §3 — so it is only
  // checked when no rollback happened.)
  if (expect_ddv_agreement && rt.fed_rollback_epoch() == 0) {
    for (std::size_t j = 0; j < rt.cluster_count(); ++j) {
      const auto& agents = rt.cluster_agents(ClusterId{static_cast<std::uint32_t>(j)});
      if (agents.empty()) continue;
      for (std::size_t i = 0; i < rt.cluster_count(); ++i) {
        if (i == j) continue;
        const ClusterId ci{static_cast<std::uint32_t>(i)};
        const auto& peer_agents = rt.cluster_agents(ci);
        if (peer_agents.empty()) continue;
        if (agents.front()->ddv().at(ci) > peer_agents.front()->sn()) {
          out.push_back("cluster " + std::to_string(j) +
                        " observed SN beyond cluster " + std::to_string(i) +
                        "'s commits");
        }
      }
    }
  }
}

}  // namespace hc3i::driver
