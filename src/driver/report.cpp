#include "driver/report.hpp"

#include <sstream>

#include "stats/table.hpp"
#include "util/quantity.hpp"

namespace hc3i::driver {

std::string render_report(const RunResult& result, std::size_t clusters) {
  std::ostringstream os;

  os << "== application messages (Table-1-style census) ==\n";
  {
    std::vector<std::string> headers{"from \\ to"};
    for (std::size_t j = 0; j < clusters; ++j) {
      headers.push_back("C" + std::to_string(j));
    }
    stats::Table t(headers);
    for (std::size_t i = 0; i < clusters; ++i) {
      t.row().cell("C" + std::to_string(i));
      for (std::size_t j = 0; j < clusters; ++j) {
        t.cell(result.app_messages(ClusterId{static_cast<std::uint32_t>(i)},
                                   ClusterId{static_cast<std::uint32_t>(j)}));
      }
    }
    os << t.to_ascii();
  }

  os << "\n== cluster-level checkpoints ==\n";
  {
    stats::Table t({"cluster", "total", "forced", "unforced", "retained",
                    "max stored", "max storage"});
    for (std::size_t c = 0; c < clusters; ++c) {
      const ClusterId cid{static_cast<std::uint32_t>(c)};
      const std::string suffix = ".c" + std::to_string(c);
      t.row()
          .cell("C" + std::to_string(c))
          .cell(result.clc_total(cid))
          .cell(result.clc_forced(cid))
          .cell(result.clc_unforced(cid))
          .cell(result.counter("store.final_clcs" + suffix))
          .cell(result.counter("store.max_clcs" + suffix))
          .cell(format_bytes(result.counter("store.max_bytes" + suffix)));
    }
    os << t.to_ascii();
  }

  os << "\n== protocol traffic ==\n";
  {
    stats::Table t({"class", "messages", "bytes"});
    for (const char* key : {"app.intra", "app.inter", "ctl.intra", "ctl.inter"}) {
      const std::string base = std::string("net.") + key;
      t.row().cell(std::string(key))
          .cell(result.counter(base + ".msgs"))
          .cell(format_bytes(result.counter(base + ".bytes")));
    }
    os << t.to_ascii();
  }

  os << "\n== fault tolerance ==\n";
  os << "failures injected        : " << result.counter("fault.injected")
     << " (skipped mid-recovery: " << result.counter("fault.skipped_overlap")
     << ", deferred: " << result.counter("fault.deferred")
     << ", queued same-cluster: "
     << result.counter("fault.queued_same_cluster")
     << ", dropped at quiesce bound: "
     << result.counter("fault.skipped_quiesce") << ")\n";
  os << "cluster rollbacks        : " << result.counter("rollback.count")
     << " (" << result.counter("rollback.nodes") << " node restores)\n";
  os << "rollback alerts          : " << result.counter("rollback.alerts") << "\n";
  os << "logged messages re-sent  : " << result.counter("log.resent_msgs")
     << " (" << format_bytes(result.counter("log.resent_bytes")) << ")\n";
  os << "stale messages discarded : " << result.counter("cic.stale_dropped") << "\n";
  os << "duplicates suppressed    : " << result.counter("cic.dup_dropped") << "\n";
  const auto& lost = result.registry.summary("rollback.lost_work_s");
  os << "work lost to rollbacks   : " << lost.sum() << " node-seconds over "
     << lost.count() << " node restores\n";
  const auto& latency = result.registry.summary("fault.recovery_latency_s");
  if (latency.count() > 0) {
    os << "recovery latency         : " << latency.mean() << " s mean, "
       << latency.max() << " s max over " << latency.count()
       << " recoveries\n";
    const auto& h = result.recovery_latency_us;
    if (h.count() > 0) {
      // Log2-bucket quantiles: the tail the mean hides when recoveries
      // overlap.  Bucket resolution is a factor of two, which is enough to
      // tell "one slow cascade" from "uniformly slow".
      os << "recovery latency pcts    : p50 " << h.quantile(0.50) * 1e-6
         << " s, p95 " << h.quantile(0.95) * 1e-6 << " s, p99 "
         << h.quantile(0.99) * 1e-6 << " s (log2 buckets)\n";
    }
  }
  os << "GC rounds                : " << result.counter("gc.rounds")
     << " (aborted: " << result.counter("gc.aborted") << ")\n";

  if (result.counter("ckpt.bytes_written") > 0) {
    os << "\n== checkpoint storage ==\n";
    os << "checkpoint bytes written : "
       << format_bytes(result.counter("ckpt.bytes_written")) << "\n";
    os << "saved by delta capture   : "
       << format_bytes(result.counter("ckpt.bytes_delta_saved")) << "\n";
    os << "capture stall            : "
       << static_cast<double>(result.counter("ckpt.stall_us")) * 1e-6
       << " node-seconds\n";
    os << "recovery chain reads     : "
       << static_cast<double>(result.counter("recovery.read_us")) * 1e-6
       << " seconds\n";
  }

  if (!result.incidents.empty()) {
    os << "\n== fault incidents (recovery telemetry) ==\n";
    // Storage columns only when the run charged storage costs: keeps the
    // table narrow (and byte-identical) for every pre-storage scenario.
    const bool storage_cols = result.counter("ckpt.bytes_written") > 0 ||
                              result.counter("recovery.read_us") > 0;
    std::vector<std::string> headers{
        "#", "injected", "node", "cluster", "source", "latency", "conc",
        "rollbacks", "nodes", "alerts", "replay msgs", "replay bytes",
        "lost work (s)", "undone"};
    if (storage_cols) {
      headers.push_back("ckpt bytes");
      headers.push_back("read (s)");
    }
    stats::Table t(headers);
    const auto cost_cells = [&t, storage_cols](const fault::Incident& inc) {
      t.cell(inc.rollbacks)
          .cell(inc.nodes_rolled_back)
          .cell(inc.alert_fanout)
          .cell(inc.replayed_msgs)
          .cell(format_bytes(inc.replayed_bytes))
          .cell(inc.lost_work_s, 1)
          .cell(inc.events_undone);
      if (storage_cols) {
        t.cell(format_bytes(inc.ckpt_bytes_written))
            .cell(static_cast<double>(inc.recovery_read_us) * 1e-6, 3);
      }
    };
    for (const fault::Incident& inc : result.incidents) {
      t.row()
          .cell(static_cast<std::uint64_t>(inc.id))
          .cell(to_string(inc.injected_at))
          .cell("n" + std::to_string(inc.victim.v))
          .cell("C" + std::to_string(inc.cluster.v))
          .cell(std::string(inc.source))
          .cell(inc.recovery_complete ? to_string(inc.recovery_latency())
                                      : std::string("incomplete"))
          .cell(static_cast<std::uint64_t>(inc.concurrent_peak));
      cost_cells(inc);
    }
    if (result.fault_summary.has_residual) {
      // Synthetic row: cost that accrued while no incident interval was
      // open (cascade tails, post-campaign replay).  Incident rows plus
      // this row sum exactly to the end-of-run counters.
      const fault::Incident& res = result.fault_summary.residual;
      t.row()
          .cell(std::string("-"))
          .cell(std::string("-"))
          .cell(std::string("-"))
          .cell(std::string("-"))
          .cell(std::string(res.source))
          .cell(std::string("-"))
          .cell(std::string("-"));
      cost_cells(res);
    }
    os << t.to_ascii();
    os << "max concurrent recoveries: " << result.fault_summary.max_overlap
       << "\n";
  }

  if (!result.gc_events.empty()) {
    os << "\n== garbage collection (stored CLCs before -> after) ==\n";
    for (const auto& ev : result.gc_events) {
      os << "  [" << to_string(ev.time) << "] C" << ev.cluster.v << ": "
         << ev.clcs_before << " -> " << ev.clcs_after << "\n";
    }
  }

  os << "\n== consistency ==\n";
  os << "ledger events            : " << result.counter("ledger.total_events")
     << " (undone by rollbacks: " << result.counter("ledger.undone_events")
     << ")\n";
  if (result.violations.empty()) {
    os << "verdict                  : CONSISTENT (no ghost, duplicate or "
          "lost messages)\n";
  } else {
    os << "verdict                  : " << result.violations.size()
       << " VIOLATIONS\n";
    for (const auto& v : result.violations) os << "  - " << v << "\n";
  }

  os << "\nsimulated time " << to_string(result.end_time) << ", "
     << result.events_executed << " events executed\n";
  return os.str();
}

std::string render_counters_csv(const RunResult& result) {
  std::ostringstream os;
  os << "counter,value\n";
  for (const auto& name : result.registry.counter_names()) {
    os << name << "," << result.registry.get(name) << "\n";
  }
  return os.str();
}

}  // namespace hc3i::driver
