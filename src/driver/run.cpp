#include "driver/run.hpp"

#include "baselines/global.hpp"
#include "baselines/independent.hpp"
#include "baselines/pessimistic.hpp"
#include "driver/consistency.hpp"
#include "fault/engine.hpp"
#include "fed/federation.hpp"
#include "hc3i/agent.hpp"
#include "obs/sampler.hpp"
#include "util/log.hpp"

namespace hc3i::driver {

std::string to_string(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kHc3i:
      return "HC3I";
    case ProtocolKind::kIndependent:
      return "independent";
    case ProtocolKind::kCoordinatedGlobal:
      return "coordinated-global";
    case ProtocolKind::kPessimisticLog:
      return "pessimistic-log";
    case ProtocolKind::kHierarchicalCoordinated:
      return "hierarchical-coordinated";
  }
  HC3I_UNREACHABLE("bad ProtocolKind");
}

std::uint64_t RunResult::clc_forced(ClusterId c) const {
  return registry.get("clc.forced.c" + std::to_string(c.v));
}

std::uint64_t RunResult::clc_unforced(ClusterId c) const {
  return registry.get("clc.unforced.c" + std::to_string(c.v));
}

std::uint64_t RunResult::clc_total(ClusterId c) const {
  return registry.get("clc.total.c" + std::to_string(c.v));
}

std::uint64_t RunResult::app_messages(ClusterId from, ClusterId to) const {
  return registry.get("net.app.pair." + std::to_string(from.v) + "." +
                      std::to_string(to.v));
}

RunResult run_simulation(const RunOptions& opts) {
  SimContext ctx;  // run-scoped: pools are built and torn down with the run
  return run_simulation(opts, ctx);
}

RunResult run_simulation(const RunOptions& opts, SimContext& ctx) {
  // Everything below allocates control payloads through the context's
  // arena; the scope must enclose the whole stack (network, federation,
  // runtimes) so releases during their teardown still see the same arena.
  proto::ScopedPayloadArena payload_scope(ctx.arena());

  RunOptions o = opts;
  o.spec.validate();
  if (o.protocol == ProtocolKind::kPessimisticLog) {
    // Message logging needs the PWD assumption (paper §2.2 / §6).
    o.replay = app::ReplayMode::kDeterministic;
  }
  if (o.protocol == ProtocolKind::kIndependent) {
    // The GC bound of §3.5 assumes the forcing rule; see independent.hpp.
    o.hc3i.enable_gc = false;
  }

  sim::Simulation sim(o.seed);
  stats::Registry registry;
  fed::Federation fed(sim, o.spec, registry);

  // Observability: one Recording per run when enabled.  The recorder must
  // be installed before build_agents (agents capture the pointer in their
  // context); the sampler rides the ordinary event queue, so its ticks are
  // part of the deterministic schedule.
  std::shared_ptr<obs::Recording> recording;
  if (o.trace || o.metrics_interval != SimTime::zero()) {
    recording = std::make_shared<obs::Recording>();
    recording->metrics_interval = o.metrics_interval;
    if (o.trace) fed.set_recorder(&recording->recorder);
  }

  app::Workload workload(sim, fed.topology(), o.spec.application, registry,
                         o.replay);

  // Protocol-specific runtimes; only the selected one is constructed.
  std::unique_ptr<core::Hc3iRuntime> hc3i_rt;
  std::unique_ptr<baselines::GlobalRuntime> global_rt;
  std::unique_ptr<baselines::PessimisticRuntime> pess_rt;
  proto::AgentFactory factory;
  switch (o.protocol) {
    case ProtocolKind::kHc3i:
      hc3i_rt = std::make_unique<core::Hc3iRuntime>(o.spec, o.hc3i);
      factory = hc3i_rt->factory();
      break;
    case ProtocolKind::kIndependent:
      hc3i_rt = std::make_unique<core::Hc3iRuntime>(o.spec, o.hc3i);
      factory = baselines::independent_factory(*hc3i_rt);
      break;
    case ProtocolKind::kCoordinatedGlobal:
      global_rt = std::make_unique<baselines::GlobalRuntime>(
          o.spec, /*hierarchical=*/false);
      factory = global_rt->factory();
      break;
    case ProtocolKind::kHierarchicalCoordinated:
      global_rt = std::make_unique<baselines::GlobalRuntime>(
          o.spec, /*hierarchical=*/true);
      factory = global_rt->factory();
      break;
    case ProtocolKind::kPessimisticLog:
      pess_rt = std::make_unique<baselines::PessimisticRuntime>(o.spec);
      factory = pess_rt->factory();
      break;
  }

  fed.build_agents(factory, workload.handles());
  workload.bind_agents([&fed](NodeId n) { return &fed.agent(n); });
  fed.start();
  workload.start();

  const SimTime horizon = o.spec.application.total_time;
  SimTime failure_bound = horizon;
  if (o.protocol == ProtocolKind::kPessimisticLog) {
    // Message-logging recovery re-executes the victim's lost work in
    // simulated time (up to one checkpoint period).  A failure without
    // enough runway before the horizon leaves the replay unfinished and
    // the victim's pre-failure sends would validate as ghosts, so every
    // injector quiesces early (documented in baselines/pessimistic.hpp).
    // The campaign engine enforces the same bound on scripted kills: a
    // script landing inside the margin is rejected with a CheckFailure
    // instead of producing ghost-send violations blamed on the protocol.
    SimTime max_period = SimTime::zero();
    for (const auto& t : o.spec.timers.clusters) {
      if (!t.clc_period.is_infinite()) {
        max_period = std::max(max_period, t.clc_period);
      }
    }
    const SimTime margin = max_period + minutes(10);
    failure_bound = horizon > margin ? horizon - margin : SimTime::zero();
  }

  // Fold the legacy fields into the campaign (shims: same semantics, same
  // RNG streams, byte-identical runs).  auto_failures becomes stream index
  // 0 — the slot whose derived RNG id matches the pre-campaign injector —
  // and scripted failures become front-of-list one-shot kills.
  fault::Campaign plan = o.campaign;
  if (o.auto_failures && !o.spec.topology.mtbf.is_infinite()) {
    fault::StreamSpec mtbf_stream;
    mtbf_stream.mtbf = o.spec.topology.mtbf;
    mtbf_stream.stop = failure_bound;
    plan.streams.insert(plan.streams.begin(), mtbf_stream);
  }
  if (!o.scripted_failures.empty()) {
    std::vector<fault::KillSpec> legacy;
    legacy.reserve(o.scripted_failures.size());
    for (const ScriptedFailure& f : o.scripted_failures) {
      legacy.push_back(fault::KillSpec{f.at, f.victim});
    }
    plan.kills.insert(plan.kills.begin(), legacy.begin(), legacy.end());
  }
  std::unique_ptr<fault::CampaignEngine> engine;
  if (!plan.empty()) {
    engine = std::make_unique<fault::CampaignEngine>(
        fed, hc3i_rt.get(), std::move(plan), failure_bound);
    engine->arm();
  }

  std::unique_ptr<obs::MetricsSampler> sampler;
  if (recording && o.metrics_interval != SimTime::zero()) {
    sampler = std::make_unique<obs::MetricsSampler>(
        sim, registry, fed.network(), o.metrics_interval);
    sampler->arm(horizon + o.drain);
  }

  sim.run_until(horizon + o.drain);
  if (engine) engine->finalize();

  RunResult result;
  result.violations = fed.ledger().validate(/*allow_in_flight=*/false);
  if (hc3i_rt) {
    append_cluster_agreement_violations(
        *hc3i_rt, result.violations,
        /*expect_ddv_agreement=*/o.protocol == ProtocolKind::kHc3i);
    result.gc_events = hc3i_rt->gc_events();
    for (std::size_t c = 0; c < hc3i_rt->cluster_count(); ++c) {
      registry.set("store.final_clcs.c" + std::to_string(c),
                   hc3i_rt->store(ClusterId{static_cast<std::uint32_t>(c)})
                       .size());
    }
  }
  registry.set("ledger.undone_events", fed.ledger().undone_events());
  registry.set("ledger.total_events", fed.ledger().total_events());
  if (engine) {
    result.fault_summary = engine->telemetry().summary();
    result.recovery_latency_us = engine->telemetry().latency_histogram();
    result.incidents = engine->telemetry().take_incidents();
  }
  if (recording) {
    if (sampler) recording->samples = sampler->take_samples();
    result.obs = std::move(recording);
  }
  result.registry = registry;
  result.end_time = sim.now();
  result.events_executed = sim.events_executed();
  result.total_progress = workload.total_progress();
  result.total_received = workload.total_received();

  if (o.validate && !result.violations.empty()) {
    std::string all = "consistency violations (" + to_string(o.protocol) +
                      ", seed " + std::to_string(o.seed) + "):";
    const std::size_t show = std::min<std::size_t>(result.violations.size(), 8);
    for (std::size_t i = 0; i < show; ++i) {
      all += "\n  " + result.violations[i];
    }
    if (result.violations.size() > show) {
      all += "\n  ... and " +
             std::to_string(result.violations.size() - show) + " more";
    }
    throw CheckFailure(all);
  }
  return result;
}

}  // namespace hc3i::driver
