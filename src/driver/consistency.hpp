#pragma once

// Post-run structural invariants, beyond the message-level ledger audit.
//
// The paper claims (§3.1-3.2) that the two-phase commit keeps the SN and
// the DDV "the same on all the nodes of a cluster (outside the two-phase
// commit protocol)".  These helpers verify exactly that after a run, plus
// DDV well-formedness on every retained checkpoint.

#include <string>
#include <vector>

#include "hc3i/runtime.hpp"

namespace hc3i::driver {

/// Append violations of the cluster-agreement and store invariants to
/// `out` (nothing is appended when all hold):
///   * all agents of a cluster agree on SN, DDV and incarnation, unless a
///     2PC round is in flight at the observation instant;
///   * every stored CLC has DDV[self] == its SN and SN strictly increasing;
///   * DDV entries never exceed the referenced cluster's current SN.
/// `expect_ddv_agreement` is false for the independent baseline, whose
/// nodes legitimately diverge on DDV entries between commits (lazy
/// delivery-time updates).
void append_cluster_agreement_violations(const core::Hc3iRuntime& rt,
                                         std::vector<std::string>& out,
                                         bool expect_ddv_agreement = true);

}  // namespace hc3i::driver
