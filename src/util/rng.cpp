#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace hc3i {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

RngStream::RngStream(std::uint64_t master_seed, std::uint64_t stream_id) {
  // Mix the stream id into the seed, then expand with SplitMix64 as the
  // xoshiro authors recommend. The golden-ratio multiplier decorrelates
  // consecutive stream ids.
  std::uint64_t sm = master_seed ^ (stream_id * 0x9E3779B97F4A7C15ULL + 1);
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is the one invalid xoshiro state; SplitMix64 cannot
  // produce four zero outputs in a row, but keep the guard explicit.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t RngStream::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double RngStream::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t RngStream::next_below(std::uint64_t bound) {
  HC3I_CHECK(bound > 0, "next_below: bound must be positive");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) mod bound
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  HC3I_CHECK(lo <= hi, "uniform_int: empty range");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool RngStream::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double RngStream::exponential(double mean) {
  HC3I_CHECK(mean > 0.0, "exponential: mean must be positive");
  // Inverse CDF; 1 - u in (0, 1] so the log argument is never zero.
  const double u = next_double();
  return -mean * std::log1p(-u);
}

std::size_t RngStream::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    HC3I_CHECK(w >= 0.0, "weighted_index: negative weight");
    total += w;
  }
  HC3I_CHECK(total > 0.0, "weighted_index: all weights are zero");
  double x = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  // Floating-point edge: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  HC3I_UNREACHABLE("weighted_index: no positive weight found");
}

}  // namespace hc3i
