#pragma once

// Minimal command-line flag parsing for the examples and bench binaries.
//
// Syntax: --name=value or --name value; bare --name sets a boolean flag.
// Unknown flags are an error (typos in experiment sweeps should fail loudly,
// not silently run the default configuration).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hc3i {

/// Parsed command line: flag map plus positional arguments.
class Flags {
 public:
  /// Parse argv. Throws CheckFailure on malformed input.
  static Flags parse(int argc, const char* const* argv);

  /// String flag with default.
  std::string get(const std::string& name, const std::string& def) const;
  /// Integer flag with default (throws if present but unparsable).
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  /// Floating-point flag with default.
  double get_double(const std::string& name, double def) const;
  /// Boolean flag: present (with no value or "true"/"1") => true.
  bool get_bool(const std::string& name, bool def) const;

  /// True if the flag appeared on the command line.
  bool has(const std::string& name) const { return values_.count(name) > 0; }

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Names of all flags that were set (for unknown-flag validation).
  std::vector<std::string> names() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace hc3i
