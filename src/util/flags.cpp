#include "util/flags.hpp"

#include "util/check.hpp"
#include "util/quantity.hpp"

namespace hc3i {

Flags Flags::parse(int argc, const char* const* argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      f.positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    HC3I_CHECK(!arg.empty(), "bare '--' is not a valid flag");
    // Only --name=value and bare --name (boolean) are supported; the
    // space-separated form is ambiguous next to positional arguments.
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      f.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      f.values_[arg] = "true";
    }
  }
  return f;
}

std::string Flags::get(const std::string& name, const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const auto v = parse_double(it->second);
  HC3I_CHECK(v.has_value(), "flag --" + name + " is not a number: " + it->second);
  return static_cast<std::int64_t>(*v);
}

double Flags::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const auto v = parse_double(it->second);
  HC3I_CHECK(v.has_value(), "flag --" + name + " is not a number: " + it->second);
  return *v;
}

bool Flags::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Flags::names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace hc3i
