#pragma once

// Trace logging for the simulator.
//
// The paper (§5.1): "The simulator can be compiled with different trace
// levels.  With the higher trace level, we can observe each node
// time-stamped action (sends, receives, timer interruptions, log searches
// ...). The lowest simulator output is statistical data."
//
// We keep the same tiers but select them at runtime: kStats (default, only
// end-of-run statistics), kProtocol (checkpoints / rollbacks / GC), kAction
// (every node action, time-stamped).  The logger is deliberately a tiny
// global: simulations are single-threaded and the hot path must stay cheap
// when tracing is off (one branch on an int).

#include <functional>
#include <sstream>
#include <string>

#include "util/time.hpp"

namespace hc3i {

/// Trace verbosity tiers (paper §5.1 "trace levels").
enum class TraceLevel : int {
  kOff = 0,       ///< nothing at all
  kStats = 1,     ///< end-of-run statistics only (paper's lowest output)
  kProtocol = 2,  ///< protocol milestones: CLCs, rollbacks, GC rounds
  kAction = 3,    ///< every time-stamped node action (paper's highest level)
};

/// Where a trace line goes. Default prints to stderr; tests install a
/// capturing sink.
using TraceSink = std::function<void(const std::string& line)>;

namespace detail {
/// The active level, inline so the HC3I_TRACE guard compiles to a single
/// load-and-compare at every call site instead of a cross-TU function call
/// — protocol milestones sit on paths that run per CLC round, and the
/// alloc-counter audit (docs/scaling.md) requires tracing-off to cost
/// nothing measurable.  Written only through Trace::set_level.
// lint: static-ok(trace-config registry: set once by the driver/tests
// before a run, never written from simulation code)
inline TraceLevel g_trace_level = TraceLevel::kStats;
}  // namespace detail

/// Global trace configuration.
class Trace {
 public:
  static TraceLevel level() { return detail::g_trace_level; }
  static void set_level(TraceLevel lv) { detail::g_trace_level = lv; }
  /// Replace the output sink (empty function restores stderr).
  static void set_sink(TraceSink sink);
  /// Emit one line at the given level (no-op if below the active level).
  static void emit(TraceLevel lv, SimTime t, const std::string& line);
  /// True if lines at `lv` are currently emitted (guards formatting cost —
  /// every HC3I_TRACE builds its string only behind this check).
  static bool enabled(TraceLevel lv) { return level() >= lv; }
};

}  // namespace hc3i

/// Convenience macro: formats only when the level is active.
/// Usage: HC3I_TRACE(kProtocol, now, "cluster " << c << " committed CLC");
#define HC3I_TRACE(lvl, now, stream_expr)                                  \
  do {                                                                     \
    if (::hc3i::Trace::enabled(::hc3i::TraceLevel::lvl)) {                 \
      std::ostringstream hc3i_trace_os_;                                   \
      hc3i_trace_os_ << stream_expr;                                       \
      ::hc3i::Trace::emit(::hc3i::TraceLevel::lvl, (now),                  \
                          hc3i_trace_os_.str());                           \
    }                                                                      \
  } while (0)
