#pragma once

// Strongly-typed identifiers used across the federation model.
//
// ClusterId / NodeId are distinct types so cluster-scoped and node-scoped
// quantities cannot be mixed up (a DDV is indexed by *cluster*, which the
// paper stresses: "the size of the DDV is the number of clusters in the
// federation, not the number of nodes").

#include <cstdint>
#include <functional>
#include <string>

namespace hc3i {

/// Identifies a cluster within the federation (dense, 0-based).
struct ClusterId {
  std::uint32_t v{0};
  constexpr bool operator==(const ClusterId&) const = default;
  constexpr auto operator<=>(const ClusterId&) const = default;
};

/// Identifies a node globally (dense, 0-based across the whole federation).
struct NodeId {
  std::uint32_t v{0};
  constexpr bool operator==(const NodeId&) const = default;
  constexpr auto operator<=>(const NodeId&) const = default;
};

/// Globally unique message identifier, assigned by the network at send time.
struct MsgId {
  std::uint64_t v{0};
  constexpr bool operator==(const MsgId&) const = default;
  constexpr auto operator<=>(const MsgId&) const = default;
};

/// A cluster-level checkpoint sequence number (the paper's "SN").
/// SN_i counts the CLCs committed by cluster i; the initial checkpoint taken
/// at application start commits with SN = 1.
using SeqNum = std::uint32_t;

/// A cluster incarnation number, bumped each time the cluster rolls back.
/// Used to tell stale pre-rollback messages from their re-sent copies
/// (DESIGN.md §3.5); the paper leaves this mechanism implicit.
using Incarnation = std::uint32_t;

inline std::string to_string(ClusterId c) { return "C" + std::to_string(c.v); }
inline std::string to_string(NodeId n) { return "n" + std::to_string(n.v); }

}  // namespace hc3i

template <>
struct std::hash<hc3i::ClusterId> {
  std::size_t operator()(hc3i::ClusterId c) const noexcept {
    return std::hash<std::uint32_t>{}(c.v);
  }
};
template <>
struct std::hash<hc3i::NodeId> {
  std::size_t operator()(hc3i::NodeId n) const noexcept {
    return std::hash<std::uint32_t>{}(n.v);
  }
};
template <>
struct std::hash<hc3i::MsgId> {
  std::size_t operator()(hc3i::MsgId m) const noexcept {
    return std::hash<std::uint64_t>{}(m.v);
  }
};
