#include "util/check.hpp"

#include <sstream>

namespace hc3i::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "HC3I_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace hc3i::detail
