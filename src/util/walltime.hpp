#pragma once

// The one sanctioned wall-clock source in the tree.
//
// Simulation code must be a pure function of (seed, spec): the lint rule
// det-wallclock (tools/hc3i_lint.py, docs/invariants.md) bans every host
// time and entropy source — std::chrono clocks, time(), rand(),
// std::random_device — from src/, examples/ and bench/.  Throughput
// reporting still needs real elapsed time, so that single legitimate use
// lives here, behind one function, and this file is the only det-wallclock
// entry in tools/lint_baseline.txt.  Nothing returned by now_sec() may feed
// simulated state, counters, RNG seeds, or dump output; it is for
// events-per-second style reporting lines only.

#include <chrono>

namespace hc3i::util {

/// Monotonic wall-clock seconds since an arbitrary epoch; subtract two
/// samples for an elapsed-time measurement.
inline double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace hc3i::util
