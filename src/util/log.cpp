#include "util/log.hpp"

#include <cstdio>

namespace hc3i {

namespace {
TraceLevel g_level = TraceLevel::kStats;
TraceSink g_sink;  // empty => stderr
}  // namespace

TraceLevel Trace::level() { return g_level; }

void Trace::set_level(TraceLevel lv) { g_level = lv; }

void Trace::set_sink(TraceSink sink) { g_sink = std::move(sink); }

void Trace::emit(TraceLevel lv, SimTime t, const std::string& line) {
  if (g_level < lv) return;
  const std::string full = "[" + to_string(t) + "] " + line;
  if (g_sink) {
    g_sink(full);
  } else {
    std::fprintf(stderr, "%s\n", full.c_str());
  }
}

}  // namespace hc3i
