#include "util/log.hpp"

#include <cstdio>

namespace hc3i {

namespace {
// lint: static-ok(trace-config registry: installed by tests via
// Trace::set_sink outside any run, read-only on the emit path)
TraceSink g_sink;  // empty => stderr

// Reused line buffer: once it has grown to the longest line seen, emitting
// allocates nothing (the bench's alloc-counter audit asserts steady-state
// emission is allocation-free).  Tracing is single-threaded like the
// simulator itself, and the contents never outlive the call.
// lint: static-ok(scratch line buffer, see above)
std::string g_line;
}  // namespace

void Trace::set_sink(TraceSink sink) { g_sink = std::move(sink); }

void Trace::emit(TraceLevel lv, SimTime t, const std::string& line) {
  if (level() < lv) return;
  char ts[kTimeBufSize];
  const std::size_t ts_len = format_time(t, ts, sizeof ts);
  g_line.clear();
  g_line += '[';
  g_line.append(ts, ts_len);
  g_line += "] ";
  g_line += line;
  if (g_sink) {
    g_sink(g_line);
  } else {
    std::fprintf(stderr, "%s\n", g_line.c_str());
  }
}

}  // namespace hc3i
