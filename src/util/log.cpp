#include "util/log.hpp"

#include <cstdio>

namespace hc3i {

namespace {
// lint: static-ok(trace-config registry: installed by tests via
// Trace::set_sink outside any run, read-only on the emit path)
TraceSink g_sink;  // empty => stderr
}  // namespace

void Trace::set_sink(TraceSink sink) { g_sink = std::move(sink); }

void Trace::emit(TraceLevel lv, SimTime t, const std::string& line) {
  if (level() < lv) return;
  const std::string full = "[" + to_string(t) + "] " + line;
  if (g_sink) {
    g_sink(full);
  } else {
    std::fprintf(stderr, "%s\n", full.c_str());
  }
}

}  // namespace hc3i
