#pragma once

// Simulated-time representation for the HC3I discrete-event simulator.
//
// Simulated time is an integer count of nanoseconds since the start of the
// simulation.  Integer ticks (rather than floating point) make event ordering
// exact and runs bit-reproducible across platforms, which the test suite
// relies on.  The paper's scenarios span 10 simulated hours (3.6e13 ns), far
// inside the int64 range.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace hc3i {

/// A point in simulated time, in nanoseconds since simulation start.
/// Also used for durations (the arithmetic is the same); helpers below build
/// durations from human units.
struct SimTime {
  std::int64_t ns{0};

  constexpr bool operator==(const SimTime&) const = default;
  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime{ns + o.ns}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{ns - o.ns}; }
  constexpr SimTime& operator+=(SimTime o) {
    ns += o.ns;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns -= o.ns;
    return *this;
  }
  /// Scale a duration (used for bandwidth / rate computations).
  constexpr SimTime operator*(std::int64_t k) const { return SimTime{ns * k}; }

  /// Duration expressed in fractional seconds (for statistics/report output).
  constexpr double seconds() const { return static_cast<double>(ns) * 1e-9; }
  /// Duration expressed in fractional minutes.
  constexpr double minutes_f() const { return seconds() / 60.0; }
  /// Duration expressed in fractional hours.
  constexpr double hours_f() const { return seconds() / 3600.0; }

  /// The zero instant / zero duration.
  static constexpr SimTime zero() { return SimTime{0}; }
  /// A time later than every event the simulator can schedule.
  static constexpr SimTime infinity() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }
  constexpr bool is_infinite() const { return ns == infinity().ns; }
};

/// Build a duration from nanoseconds.
constexpr SimTime nanoseconds(std::int64_t v) { return SimTime{v}; }
/// Build a duration from microseconds.
constexpr SimTime microseconds(std::int64_t v) { return SimTime{v * 1'000}; }
/// Build a duration from milliseconds.
constexpr SimTime milliseconds(std::int64_t v) { return SimTime{v * 1'000'000}; }
/// Build a duration from seconds.
constexpr SimTime seconds(std::int64_t v) { return SimTime{v * 1'000'000'000}; }
/// Build a duration from minutes.
constexpr SimTime minutes(std::int64_t v) { return seconds(v * 60); }
/// Build a duration from hours.
constexpr SimTime hours(std::int64_t v) { return seconds(v * 3600); }

/// Build a duration from a (non-negative, finite) count of fractional
/// seconds, rounding to the nearest nanosecond.  Used when converting random
/// exponential draws into simulated time.
SimTime from_seconds_f(double s);

/// Render a time/duration compactly for traces: "1h02m03.5s", "150us", "0".
std::string to_string(SimTime t);

/// Buffer size that fits every format_time() rendering (NUL included).
inline constexpr std::size_t kTimeBufSize = 64;

/// Format `t` exactly as to_string() would, but into a caller-provided
/// buffer of at least kTimeBufSize bytes; returns the length written
/// (excluding the NUL).  The allocation-free flavour the trace hot path
/// uses (Trace::emit reuses one line buffer per process).
std::size_t format_time(SimTime t, char* buf, std::size_t cap);

}  // namespace hc3i
