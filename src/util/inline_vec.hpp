#pragma once

// InlineVec — a fixed-capacity, inline-storage vector for tiny hot-path
// payloads.
//
// AppSnapshot::opaque used to be a std::vector<std::uint64_t> holding zero
// or one words; every snapshot() and every snapshot copy (parts travel in
// phase-1 acks and committed records) paid a heap allocation for it.  The
// simulator's snapshot-carried data is bounded and tiny by design, so the
// storage lives in the object: copies are memcpy, and exceeding the
// capacity is an invariant violation (HC3I_CHECK), not a silent heap
// spill — the same no-fallback discipline as sim::InlineFn.

#include <cstddef>
#include <initializer_list>
#include <type_traits>

#include "util/check.hpp"

namespace hc3i {

/// Fixed-capacity vector with inline storage; T must be trivially copyable.
template <typename T, std::size_t N>
class InlineVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVec is for trivially copyable payload words");

 public:
  InlineVec() = default;
  InlineVec(std::initializer_list<T> init) { assign(init); }
  InlineVec& operator=(std::initializer_list<T> init) {
    assign(init);
    return *this;
  }

  void assign(std::initializer_list<T> init) {
    HC3I_CHECK(init.size() <= N, "InlineVec: capacity exceeded");
    size_ = 0;
    for (const T& x : init) v_[size_++] = x;
  }

  void push_back(const T& x) {
    HC3I_CHECK(size_ < N, "InlineVec: capacity exceeded");
    v_[size_++] = x;
  }

  void clear() { size_ = 0; }

  const T& operator[](std::size_t i) const { return v_[i]; }
  T& operator[](std::size_t i) { return v_[i]; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  static constexpr std::size_t capacity() { return N; }

  const T* begin() const { return v_; }
  const T* end() const { return v_ + size_; }

  friend bool operator==(const InlineVec& a, const InlineVec& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a.v_[i] == b.v_[i])) return false;
    }
    return true;
  }

 private:
  T v_[N]{};
  std::size_t size_{0};
};

}  // namespace hc3i
