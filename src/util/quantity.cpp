#include "util/quantity.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace hc3i {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

/// Split "<number><unit>" (whitespace between them allowed).
/// Returns false if no leading number is present.
bool split_number_unit(std::string_view text, double& value,
                       std::string_view& unit) {
  text = trim(text);
  if (text.empty()) return false;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  double v = 0.0;
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr == begin) return false;
  value = v;
  unit = trim(std::string_view(ptr, static_cast<std::size_t>(end - ptr)));
  return true;
}

std::string lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(
      static_cast<unsigned char>(c))));
  return out;
}

}  // namespace

std::optional<SimTime> parse_duration(std::string_view text) {
  if (lower(std::string(trim(text))) == "inf") return SimTime::infinity();
  double v = 0.0;
  std::string_view unit_sv;
  if (!split_number_unit(text, v, unit_sv)) return std::nullopt;
  if (v < 0.0 || !std::isfinite(v)) return std::nullopt;
  const std::string unit = lower(unit_sv);
  double seconds_per_unit = 0.0;
  if (unit == "ns") {
    seconds_per_unit = 1e-9;
  } else if (unit == "us") {
    seconds_per_unit = 1e-6;
  } else if (unit == "ms") {
    seconds_per_unit = 1e-3;
  } else if (unit == "s" || unit == "sec" || unit.empty()) {
    // A bare number is seconds except bare zero, which is unambiguous.
    seconds_per_unit = 1.0;
  } else if (unit == "min" || unit == "m") {
    seconds_per_unit = 60.0;
  } else if (unit == "h" || unit == "hr") {
    seconds_per_unit = 3600.0;
  } else if (unit == "inf" ) {
    return SimTime::infinity();
  } else {
    return std::nullopt;
  }
  const double total = v * seconds_per_unit;
  if (total * 1e9 >= 9.2e18) return SimTime::infinity();
  return from_seconds_f(total);
}

std::optional<double> parse_bandwidth(std::string_view text) {
  // Special-case the bare word "inf" for tests that want a zero-cost link.
  if (lower(std::string(trim(text))) == "inf")
    return std::numeric_limits<double>::infinity();
  double v = 0.0;
  std::string_view unit_sv;
  if (!split_number_unit(text, v, unit_sv)) return std::nullopt;
  if (v < 0.0 || !std::isfinite(v)) return std::nullopt;
  std::string unit(unit_sv);
  // Strip a trailing "/s" or "ps" ("Mbps") — case-insensitive.
  const std::string lowered = lower(unit);
  if (lowered.size() >= 2 && lowered.compare(lowered.size() - 2, 2, "/s") == 0) {
    unit.erase(unit.size() - 2);
  } else if (lowered.size() >= 3 &&
             lowered.compare(lowered.size() - 3, 3, "bps") == 0) {
    unit.erase(unit.size() - 2);  // keep the 'b'
  }
  if (unit.empty()) return std::nullopt;
  // The trailing letter's case distinguishes bits ('b') from bytes ('B'),
  // as in networking convention: 80Mb/s vs 80MB/s.
  const char last = unit.back();
  const bool bytes = last == 'B';
  if (last != 'b' && last != 'B') return std::nullopt;
  const std::string prefix = lower(unit.substr(0, unit.size() - 1));
  double scale = 0.0;
  if (prefix.empty()) {
    scale = 1.0;
  } else if (prefix == "k") {
    scale = 1e3;
  } else if (prefix == "m") {
    scale = 1e6;
  } else if (prefix == "g") {
    scale = 1e9;
  } else {
    return std::nullopt;
  }
  const double units_per_sec = v * scale;
  return bytes ? units_per_sec : units_per_sec / 8.0;  // bytes per second
}

std::optional<std::uint64_t> parse_bytes(std::string_view text) {
  double v = 0.0;
  std::string_view unit_sv;
  if (!split_number_unit(text, v, unit_sv)) return std::nullopt;
  if (v < 0.0 || !std::isfinite(v)) return std::nullopt;
  const std::string unit = lower(unit_sv);
  double scale = 0.0;
  if (unit.empty() || unit == "b") {
    scale = 1.0;
  } else if (unit == "kb" || unit == "kib" || unit == "k") {
    scale = 1024.0;
  } else if (unit == "mb" || unit == "mib" || unit == "m") {
    scale = 1024.0 * 1024.0;
  } else if (unit == "gb" || unit == "gib" || unit == "g") {
    scale = 1024.0 * 1024.0 * 1024.0;
  } else {
    return std::nullopt;
  }
  const double total = v * scale;
  if (total >= 1.8e19) return std::nullopt;
  return static_cast<std::uint64_t>(std::llround(total));
}

std::optional<double> parse_double(std::string_view text) {
  text = trim(text);
  double v = 0.0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return v;
}

std::optional<std::uint64_t> parse_uint(std::string_view text) {
  text = trim(text);
  std::uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return v;
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes < 1024) {
    std::snprintf(buf, sizeof buf, "%lluB", static_cast<unsigned long long>(bytes));
  } else if (bytes < 1024ULL * 1024) {
    std::snprintf(buf, sizeof buf, "%.1fKB", static_cast<double>(bytes) / 1024.0);
  } else if (bytes < 1024ULL * 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.1fMB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof buf, "%.2fGB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

}  // namespace hc3i
