#pragma once

// Invariant checking for the HC3I library.
//
// HC3I_CHECK is active in all build types: protocol correctness is the whole
// point of this codebase, and the cost of the checks is negligible next to
// event scheduling.  Failures throw CheckFailure (rather than aborting) so
// tests can assert on violated invariants and the simulator driver can report
// the simulated time at which an inconsistency was detected.
//
// Defining HC3I_DISABLE_CHECKS before including this header compiles every
// HC3I_CHECK in that translation unit down to nothing — arguments are NOT
// evaluated.  That is only sound because check arguments are required to be
// side-effect free (lint rule check-pure in tools/hc3i_lint.py, see
// docs/invariants.md); tests/check_discipline_test.cpp pins both halves of
// the contract (enabled checks evaluate exactly once and throw on
// violation, disabled checks evaluate nothing).

#include <stdexcept>
#include <string>

namespace hc3i {

/// Thrown when an HC3I_CHECK invariant is violated.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

/// Check an invariant; throws CheckFailure with location info when violated.
/// The message argument is only evaluated on failure.
#ifdef HC3I_DISABLE_CHECKS
// The disabled form must not evaluate anything (behaviour neutrality), but
// the arguments must still parse so a TU with checks off cannot bit-rot:
// sizeof of an unevaluated operand type-checks the condition for free.
#define HC3I_CHECK(expr, ...) \
  do {                        \
    (void)sizeof(!(expr));    \
  } while (0)
#else
#define HC3I_CHECK(expr, ...)                                       \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::hc3i::detail::check_failed(#expr, __FILE__, __LINE__,       \
                                   ::std::string(__VA_ARGS__));     \
    }                                                               \
  } while (0)
#endif

/// Mark unreachable code paths.
#define HC3I_UNREACHABLE(msg) \
  ::hc3i::detail::check_failed("unreachable", __FILE__, __LINE__, (msg))

}  // namespace hc3i
