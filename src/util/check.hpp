#pragma once

// Invariant checking for the HC3I library.
//
// HC3I_CHECK is active in all build types: protocol correctness is the whole
// point of this codebase, and the cost of the checks is negligible next to
// event scheduling.  Failures throw CheckFailure (rather than aborting) so
// tests can assert on violated invariants and the simulator driver can report
// the simulated time at which an inconsistency was detected.

#include <stdexcept>
#include <string>

namespace hc3i {

/// Thrown when an HC3I_CHECK invariant is violated.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

/// Check an invariant; throws CheckFailure with location info when violated.
/// The message argument is only evaluated on failure.
#define HC3I_CHECK(expr, ...)                                       \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::hc3i::detail::check_failed(#expr, __FILE__, __LINE__,       \
                                   ::std::string(__VA_ARGS__));     \
    }                                                               \
  } while (0)

/// Mark unreachable code paths.
#define HC3I_UNREACHABLE(msg) \
  ::hc3i::detail::check_failed("unreachable", __FILE__, __LINE__, (msg))

}  // namespace hc3i
