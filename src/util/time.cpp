#include "util/time.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace hc3i {

SimTime from_seconds_f(double s) {
  HC3I_CHECK(std::isfinite(s), "from_seconds_f: non-finite seconds value");
  HC3I_CHECK(s >= 0.0, "from_seconds_f: negative duration");
  const double ns = s * 1e9;
  HC3I_CHECK(ns < 9.2e18, "from_seconds_f: duration overflows SimTime");
  return SimTime{static_cast<std::int64_t>(std::llround(ns))};
}

std::size_t format_time(SimTime t, char* buf, std::size_t cap) {
  HC3I_CHECK(cap >= kTimeBufSize, "format_time: buffer too small");
  int n = 0;
  const std::int64_t ns = t.ns;
  if (t.is_infinite()) {
    n = std::snprintf(buf, cap, "inf");
  } else if (ns == 0) {
    n = std::snprintf(buf, cap, "0");
  } else if (ns < 1'000) {
    n = std::snprintf(buf, cap, "%lldns", static_cast<long long>(ns));
  } else if (ns < 1'000'000) {
    n = std::snprintf(buf, cap, "%.3gus", static_cast<double>(ns) / 1e3);
  } else if (ns < 1'000'000'000) {
    n = std::snprintf(buf, cap, "%.3gms", static_cast<double>(ns) / 1e6);
  } else if (ns < 60LL * 1'000'000'000) {
    n = std::snprintf(buf, cap, "%.4gs", static_cast<double>(ns) / 1e9);
  } else {
    const std::int64_t total_s = ns / 1'000'000'000;
    const std::int64_t h = total_s / 3600;
    const std::int64_t m = (total_s % 3600) / 60;
    const double s = static_cast<double>(ns % 60'000'000'000) / 1e9;
    if (h > 0) {
      n = std::snprintf(buf, cap, "%lldh%02lldm%04.1fs",
                        static_cast<long long>(h), static_cast<long long>(m),
                        s);
    } else {
      n = std::snprintf(buf, cap, "%lldm%04.1fs", static_cast<long long>(m),
                        s);
    }
  }
  return n > 0 ? static_cast<std::size_t>(n) : 0;
}

std::string to_string(SimTime t) {
  char buf[kTimeBufSize];
  return std::string(buf, format_time(t, buf, sizeof buf));
}

}  // namespace hc3i
