#include "util/time.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace hc3i {

SimTime from_seconds_f(double s) {
  HC3I_CHECK(std::isfinite(s), "from_seconds_f: non-finite seconds value");
  HC3I_CHECK(s >= 0.0, "from_seconds_f: negative duration");
  const double ns = s * 1e9;
  HC3I_CHECK(ns < 9.2e18, "from_seconds_f: duration overflows SimTime");
  return SimTime{static_cast<std::int64_t>(std::llround(ns))};
}

std::string to_string(SimTime t) {
  if (t.is_infinite()) return "inf";
  if (t.ns == 0) return "0";
  char buf[64];
  const std::int64_t ns = t.ns;
  if (ns < 1'000) {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns));
  } else if (ns < 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3gus", static_cast<double>(ns) / 1e3);
  } else if (ns < 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.3gms", static_cast<double>(ns) / 1e6);
  } else if (ns < 60LL * 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.4gs", static_cast<double>(ns) / 1e9);
  } else {
    const std::int64_t total_s = ns / 1'000'000'000;
    const std::int64_t h = total_s / 3600;
    const std::int64_t m = (total_s % 3600) / 60;
    const double s = static_cast<double>(ns % 60'000'000'000) / 1e9;
    if (h > 0) {
      std::snprintf(buf, sizeof buf, "%lldh%02lldm%04.1fs",
                    static_cast<long long>(h), static_cast<long long>(m), s);
    } else {
      std::snprintf(buf, sizeof buf, "%lldm%04.1fs", static_cast<long long>(m),
                    s);
    }
  }
  return buf;
}

}  // namespace hc3i
