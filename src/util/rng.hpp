#pragma once

// Deterministic random-number generation.
//
// The simulator must be bit-reproducible from a single master seed, across
// platforms and regardless of how many entities draw random numbers.  Every
// entity (node, failure injector, workload generator, ...) therefore owns its
// own RngStream, derived from (master seed, stream id) with SplitMix64, so
// adding a consumer never perturbs the draws seen by existing consumers.
//
// The core generator is xoshiro256** 1.0 (Blackman & Vigna, public domain
// reference implementation re-derived here), a small, fast, high-quality
// generator; std::mt19937_64 is avoided because its distribution helpers are
// not specified bit-exactly across standard libraries.

#include <array>
#include <cstdint>
#include <vector>

namespace hc3i {

/// SplitMix64 step; used to expand seeds. Public-domain algorithm.
std::uint64_t splitmix64(std::uint64_t& state);

/// An independent random stream.  Copyable (copying forks the exact state,
/// which some tests use to replay a decision sequence).
class RngStream {
 public:
  /// Derive a stream from a master seed and a stream identifier.
  /// Distinct (seed, stream) pairs produce statistically independent streams.
  RngStream(std::uint64_t master_seed, std::uint64_t stream_id);

  /// Next raw 64-bit value (xoshiro256**).
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double();

  /// Uniform integer in [0, bound) using rejection sampling (unbiased).
  /// bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean);

  /// Sample an index from an unnormalised non-negative weight vector.
  /// At least one weight must be positive.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Export the generator state (checkpointing under the PWD assumption).
  std::array<std::uint64_t, 4> state() const { return s_; }
  /// Restore a previously exported state.
  void set_state(const std::array<std::uint64_t, 4>& s) { s_ = s; }

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace hc3i
