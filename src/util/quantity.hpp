#pragma once

// Human-readable quantity parsing / formatting.
//
// The paper's simulator is driven by three text configuration files whose
// values are physical quantities ("10us" latency, "80Mb/s" bandwidth, "10h"
// total time, "8MB" state size).  This module parses and prints them.
// Bit quantities use decimal SI prefixes (networking convention: 80Mb/s =
// 80e6 bit/s); byte quantities use binary prefixes (8MB = 8*2^20 bytes).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/time.hpp"

namespace hc3i {

/// Parse a duration such as "10us", "150 us", "30min", "10h", "2.5s", "0".
/// Accepted units: ns, us, ms, s, sec, min, m (minutes), h, hr.
/// Returns std::nullopt on malformed input.
std::optional<SimTime> parse_duration(std::string_view text);

/// Parse a bandwidth such as "80Mb/s", "100Mbps", "1Gb/s", "9600b/s".
/// Result is in bytes per second (bits / 8). Decimal SI prefixes.
std::optional<double> parse_bandwidth(std::string_view text);

/// Parse a byte size such as "8MB", "64KB", "1GB", "512B", "4096".
/// Binary prefixes (1KB = 1024 B). A bare number is bytes.
std::optional<std::uint64_t> parse_bytes(std::string_view text);

/// Parse a plain floating-point number (locale-independent).
std::optional<double> parse_double(std::string_view text);

/// Parse a non-negative integer.
std::optional<std::uint64_t> parse_uint(std::string_view text);

/// Format a byte count compactly: "8.0MB", "512B".
std::string format_bytes(std::uint64_t bytes);

}  // namespace hc3i
