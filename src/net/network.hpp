#pragma once

// The simulated network.
//
// Semantics follow the paper's assumptions (§2.1): reliable — "a sent message
// will be received in an arbitrary but finite lapse of time" — with per-link
// one-way latency plus size/bandwidth serialisation delay.  Messages between
// different node pairs are independent (no contention model); messages on the
// same pair may reorder when a small message overtakes a large one, which the
// protocols must (and do) tolerate.
//
// Fail-stop support: messages addressed to a node that is currently down are
// *parked* and delivered when the node comes back up — the network never
// loses messages, matching the paper's reliability assumption; it is the
// protocol's job (incarnation filtering) to discard stale ones.
//
// The in-flight registry gives the checkpointing layer two primitives the
// paper leaves implicit but any implementation needs:
//   * snapshot_in_flight(pred) — capture channel state at CLC commit,
//   * drop_in_flight(pred)     — discard a rolled-back cluster's stale
//                                intra-cluster traffic.
//
// Every message crosses this layer, so its bookkeeping is slot-indexed: a
// flight lives in a recycled slab slot (O(1) add/remove, no per-message node
// allocation), parked messages hang off a per-node intrusive list (reviving a
// node is O(parked-for-that-node), not O(all in flight)), and the traffic
// census bumps pre-resolved stats::Counter handles instead of building
// name strings per send.

#include <functional>
#include <vector>

#include "net/message.hpp"
#include "net/pair_census.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "stats/registry.hpp"

namespace hc3i::net {

/// Delivery callback: invoked at arrival time with the envelope.
using DeliverFn = std::function<void(const Envelope&)>;

/// The message-passing fabric of the federation.
class Network {
 public:
  Network(sim::Simulation& sim, const Topology& topo, stats::Registry& reg);

  /// Register the receive handler for a node. Must be called for every node
  /// before traffic flows to it.
  void attach(NodeId n, DeliverFn deliver);

  /// Transmit a message. The envelope's id and sent_at are assigned here;
  /// the assigned MsgId is returned (sender-side logs keep it).
  /// src/dst clusters are filled from the topology.
  MsgId send(Envelope env);

  /// Mark a node down (fail-stop) — subsequent arrivals are parked.
  void set_node_down(NodeId n);
  /// Mark a node up again and deliver everything parked for it.
  void set_node_up(NodeId n);
  /// True if the node is currently up.
  bool node_up(NodeId n) const;

  /// Copy every in-flight (sent, not yet arrived, plus parked) envelope
  /// matching `pred`, in MsgId (send) order. Used for CLC channel-state
  /// capture.
  std::vector<Envelope> snapshot_in_flight(
      const std::function<bool(const Envelope&)>& pred) const;

  /// Remove every in-flight/parked envelope matching `pred`; returns how
  /// many were dropped. Used when a cluster rolls back.
  std::size_t drop_in_flight(const std::function<bool(const Envelope&)>& pred);

  /// Number of messages currently in flight or parked.
  std::size_t in_flight_count() const { return live_flights_; }

  /// Total messages ever sent.
  std::uint64_t total_sent() const { return next_msg_id_; }

  /// Distinct (src cluster, dst cluster) pairs that carried application
  /// traffic — the census footprint (scales with active pairs, not
  /// clusters²; see pair_census.hpp).
  std::size_t census_active_pairs() const {
    return pair_census_.active_pairs();
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Flight {
    Envelope env;
    sim::EventId event;       ///< scheduled arrival (stale while parked)
    std::uint32_t gen{1};     ///< bumped when the slot is recycled
    std::uint32_t park_prev{kNil};  ///< intrusive per-destination parked list
    std::uint32_t park_next{kNil};
    bool live{false};
    bool parked{false};
  };

  /// Pre-resolved census handles for one (class, direction) bucket.
  struct TrafficCounters {
    stats::Counter* msgs{nullptr};
    stats::Counter* bytes{nullptr};
  };

  void arrive(std::uint32_t slot, std::uint32_t gen);
  void count_send(const Envelope& env);
  std::uint32_t alloc_flight();
  void release_flight(std::uint32_t slot);
  void park(std::uint32_t slot);
  void unpark(std::uint32_t slot);

  sim::Simulation& sim_;
  const Topology& topo_;
  stats::Registry& reg_;
  std::vector<DeliverFn> deliver_;     ///< indexed by NodeId
  std::vector<bool> up_;               ///< indexed by NodeId
  std::vector<Flight> flights_;        ///< slot-indexed flight table
  std::vector<std::uint32_t> free_flights_;  ///< recycled slots
  std::vector<std::uint32_t> park_head_;     ///< per-node parked list head
  std::vector<std::uint32_t> park_tail_;     ///< per-node parked list tail
  std::size_t live_flights_{0};
  std::uint64_t next_msg_id_{1};

  // Census handles, resolved on first touch so a run's counter set (and its
  // dump) stays exactly what the traffic actually produced.
  TrafficCounters traffic_[2][2];  ///< [is_app][is_intra]
  PairCensus pair_census_;         ///< sparse (src, dst) cluster-pair census
};

}  // namespace hc3i::net
