#pragma once

// Runtime topology: node/cluster layout plus link-parameter lookup.
//
// Nodes are numbered densely across the federation, cluster by cluster, so
// cluster membership is a range check and iteration over a cluster's nodes
// is a contiguous loop (matters at 100+ nodes per cluster).

#include <vector>

#include "config/spec.hpp"
#include "util/ids.hpp"

namespace hc3i::net {

/// Immutable layout + link lookup built from a validated TopologySpec.
class Topology {
 public:
  explicit Topology(config::TopologySpec spec);

  /// Number of clusters.
  std::size_t cluster_count() const { return spec_.cluster_count(); }
  /// Total node count.
  std::uint32_t node_count() const { return total_nodes_; }
  /// Number of nodes in a cluster.
  std::uint32_t cluster_size(ClusterId c) const;
  /// Cluster that owns a node.
  ClusterId cluster_of(NodeId n) const;
  /// First (lowest-id) node of a cluster — the default coordinator.
  NodeId first_node(ClusterId c) const;
  /// All node ids of a cluster, in id order.
  std::vector<NodeId> nodes_of(ClusterId c) const;
  /// Link parameters between two nodes: the cluster SAN when co-located,
  /// otherwise the inter-cluster link (paper: SAN vs LAN/WAN).
  const config::LinkSpec& link(NodeId a, NodeId b) const;
  /// The ring successor of a node within its cluster — the stable-storage
  /// replica holder (paper §3.1: "in the memory of an other node").
  NodeId ring_neighbour(NodeId n, std::uint32_t distance = 1) const;
  /// The underlying validated spec.
  const config::TopologySpec& spec() const { return spec_; }

 private:
  config::TopologySpec spec_;
  std::vector<std::uint32_t> first_;  ///< first node id of each cluster
  std::uint32_t total_nodes_{0};
};

}  // namespace hc3i::net
