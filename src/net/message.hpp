#pragma once

// Message envelope carried by the simulated network.
//
// The paper's system model (Fig. 2): nodes are system-level modules that
// "catch every inter-process message" and may piggy-back protocol data on it.
// Envelope models one in-flight message: addressing, modelled size, the
// HC3I piggyback area, and (for protocol messages) a typed control payload.

#include <cstdint>
#include <memory>

#include "proto/ddv.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace hc3i::net {

/// Coarse message class: application traffic vs. protocol control traffic.
/// Control traffic is never queued/frozen by checkpointing rounds.
enum class MsgClass : std::uint8_t {
  kApp,      ///< application payload (subject to CLC freezing, logging, CIC)
  kControl,  ///< protocol internal (2PC, acks, alerts, GC, replicas)
};

/// Protocol metadata piggy-backed on application messages (paper §3.2):
/// "The current cluster's sequence number is piggy-backed on each
/// inter-cluster application message."  The incarnation tag and the optional
/// full DDV are implementation refinements documented in DESIGN.md §3.
struct Piggyback {
  /// Sender cluster's SN at send time.
  SeqNum sn{0};
  /// Sender cluster's incarnation at send time (bumped on rollback).
  Incarnation incarnation{0};
  /// Optional full DDV (transitive-dependency extension, paper §7);
  /// empty when the extension is off.  The unified inline-small / COW-spill
  /// representation (proto/ddv.hpp) means copying an envelope never
  /// allocates, and senders assign their live DDV directly — the snapshot
  /// stays frozen because mutators detach.
  proto::Ddv ddv;

  /// Modelled wire size of the piggyback area.
  std::uint64_t wire_bytes() const {
    return sizeof(SeqNum) + sizeof(Incarnation) +
           ddv.size() * sizeof(SeqNum);
  }
};

/// Base class for typed control payloads.  Concrete payload types live with
/// the protocol that defines them (src/hc3i/control.hpp, baselines); the
/// network carries them opaquely by shared_ptr (messages are immutable once
/// sent, so sharing is safe and keeps re-send cheap).
///
/// `kind` is a protocol-defined dispatch tag (each payload type passes its
/// unique constant up from its constructor): receive dispatch is an integer
/// compare per candidate instead of a dynamic_cast, which matters because
/// every control message crosses it.  Tag ranges are per protocol
/// (hc3i 1-13, global baseline 20+, pessimistic 30+); payloads never cross
/// protocols, the ranges just keep mistakes loud.
struct ControlPayload {
  ControlPayload() = default;
  explicit ControlPayload(std::uint32_t k) : kind(k) {}
  virtual ~ControlPayload() = default;

  std::uint32_t kind{0};
};

/// One message in flight.
struct Envelope {
  MsgId id{};                     ///< unique per transmission (re-sends get new ids)
  NodeId src{};                   ///< sending node
  NodeId dst{};                   ///< receiving node
  ClusterId src_cluster{};        ///< cluster of src (cached for routing/stats)
  ClusterId dst_cluster{};        ///< cluster of dst
  MsgClass cls{MsgClass::kApp};
  std::uint64_t payload_bytes{0}; ///< application/control body size
  SimTime sent_at{};              ///< send timestamp (set by the network)
  Piggyback piggy{};              ///< protocol piggyback (app messages)
  std::shared_ptr<const ControlPayload> control; ///< null for app messages

  /// Stable application-level identity: a logical app message keeps its
  /// app_seq across re-sends, letting receivers de-duplicate and the
  /// consistency checker match sends to deliveries.  0 for control traffic.
  std::uint64_t app_seq{0};

  /// True when src and dst are in the same cluster.
  bool intra_cluster() const { return src_cluster == dst_cluster; }

  /// Total modelled wire size (payload + piggyback).
  std::uint64_t wire_bytes() const {
    return payload_bytes + (cls == MsgClass::kApp ? piggy.wire_bytes() : 0);
  }
};

/// Downcast a received envelope's control payload iff its kind tag matches
/// `T::kKind` — an integer compare per candidate type, not a dynamic_cast
/// (this runs for every control message a protocol receives).
template <typename T>
const T* payload_as(const Envelope& env) {
  const ControlPayload* p = env.control.get();
  return p != nullptr && p->kind == T::kKind ? static_cast<const T*>(p)
                                             : nullptr;
}

}  // namespace hc3i::net
