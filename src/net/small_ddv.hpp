#pragma once

// Small-buffer-optimised DDV carried in the message piggyback.
//
// The paper's federations are small — 2 or 3 clusters in every experiment
// (§5) — so the transitive-DDV extension piggybacks 2-3 SeqNums on each
// inter-cluster message.  Storing them in a std::vector made the DDV the
// last per-message heap allocation on the send path, and copying an
// Envelope (sender log, channel capture, wait queues, re-sends) re-paid it
// every time.  SmallDdv keeps up to kInlineEntries entries inline; larger
// federations spill to a refcounted immutable block, so copies are always
// allocation-free (inline memcpy or refcount bump) and senders in the same
// (cluster, SN) epoch can share one spilled block (see
// Hc3iRuntime::shared_piggy_ddv).
//
// The spill pointer shares storage with the inline buffer (a union keyed on
// size_), so SmallDdv is no larger than the std::vector it replaces, and
// the refcount is a plain integer — the simulator is single-threaded, and
// an atomic would put a lock prefix on every envelope copy for nothing.
//
// Entries are immutable after construction — a piggyback is a snapshot of
// the sender's DDV at send time — which is what makes sharing safe.

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <new>
#include <vector>

#include "util/ids.hpp"

namespace hc3i::net {

/// An immutable, small-buffer-optimised sequence of DDV entries.
class SmallDdv {
 public:
  /// Inline capacity: covers the federations the paper evaluates (2-3
  /// clusters) with headroom; beyond this the entries live in a shared
  /// refcounted block.
  static constexpr std::size_t kInlineEntries = 4;

  SmallDdv() : inline_{} {}
  SmallDdv(std::initializer_list<SeqNum> init)
      : SmallDdv(init.begin(), init.size()) {}
  explicit SmallDdv(const std::vector<SeqNum>& v)
      : SmallDdv(v.data(), v.size()) {}
  SmallDdv(const SeqNum* data, std::size_t n) : inline_{} {
    init_members(data, n);
  }

  SmallDdv(const SmallDdv& o) : size_(o.size_) {
    if (spilled()) {
      spill_ = o.spill_;
      ++spill_->refs;
    } else {
      std::memcpy(inline_, o.inline_, sizeof(inline_));
    }
  }

  SmallDdv(SmallDdv&& o) noexcept : size_(o.size_) {
    if (spilled()) {
      spill_ = o.spill_;
      o.size_ = 0;
    } else {
      std::memcpy(inline_, o.inline_, sizeof(inline_));
    }
  }

  SmallDdv& operator=(const SmallDdv& o) {
    if (this != &o) {
      SmallDdv tmp(o);
      swap(tmp);
    }
    return *this;
  }

  SmallDdv& operator=(SmallDdv&& o) noexcept {
    if (this != &o) {
      release();
      size_ = o.size_;
      if (spilled()) {
        spill_ = o.spill_;
        o.size_ = 0;
      } else {
        std::memcpy(inline_, o.inline_, sizeof(inline_));
      }
    }
    return *this;
  }

  SmallDdv& operator=(std::initializer_list<SeqNum> init) {
    release();
    init_members(init.begin(), init.size());
    return *this;
  }

  ~SmallDdv() { release(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const SeqNum* data() const { return spilled() ? spill_->data() : inline_; }
  const SeqNum* begin() const { return data(); }
  const SeqNum* end() const { return data() + size_; }
  SeqNum operator[](std::size_t i) const { return data()[i]; }

  /// True when the entries live in the shared spill block (tests).
  bool spilled() const { return size_ > kInlineEntries; }

  /// True when two spilled instances share one block (tests; always false
  /// for inline instances, which have nothing to share).
  bool shares_storage_with(const SmallDdv& o) const {
    return spilled() && o.spilled() && spill_ == o.spill_;
  }

  std::vector<SeqNum> to_vector() const {
    return std::vector<SeqNum>(begin(), end());
  }

  friend bool operator==(const SmallDdv& a, const SmallDdv& b) {
    if (a.size_ != b.size_) return false;
    if (a.spilled() && a.spill_ == b.spill_) return true;
    return std::memcmp(a.data(), b.data(), a.size_ * sizeof(SeqNum)) == 0;
  }

 private:
  /// Header of a heap spill block; the entries follow it in the same
  /// allocation (4-byte aligned either side, so `this + 1` is the array).
  struct Spill {
    std::uint32_t refs;
    static_assert(alignof(SeqNum) <= alignof(std::uint32_t),
                  "spill layout places the entry array right after the "
                  "header; a wider SeqNum needs explicit padding here");
    SeqNum* data() { return reinterpret_cast<SeqNum*>(this + 1); }
    const SeqNum* data() const {
      return reinterpret_cast<const SeqNum*>(this + 1);
    }
  };

  void init_members(const SeqNum* data, std::size_t n) {
    size_ = static_cast<std::uint32_t>(n);
    if (n <= kInlineEntries) {
      std::memset(inline_, 0, sizeof(inline_));
      if (n > 0) std::memcpy(inline_, data, n * sizeof(SeqNum));
      return;
    }
    auto* block = static_cast<Spill*>(
        ::operator new(sizeof(Spill) + n * sizeof(SeqNum)));
    block->refs = 1;
    std::memcpy(block->data(), data, n * sizeof(SeqNum));
    spill_ = block;
  }

  void release() {
    if (spilled() && --spill_->refs == 0) {
      ::operator delete(spill_);
    }
    size_ = 0;
  }

  void swap(SmallDdv& o) noexcept {
    // Byte-wise member swap: both representations are trivially movable
    // (the union holds either a POD array or a pointer).
    SmallDdv* a = this;
    SmallDdv* b = &o;
    std::uint32_t ts = a->size_;
    a->size_ = b->size_;
    b->size_ = ts;
    unsigned char buf[sizeof(inline_)];
    std::memcpy(buf, a->inline_, sizeof(inline_));
    std::memcpy(a->inline_, b->inline_, sizeof(inline_));
    std::memcpy(b->inline_, buf, sizeof(inline_));
  }

  std::uint32_t size_{0};
  union {
    SeqNum inline_[kInlineEntries];  ///< active while size_ <= kInlineEntries
    Spill* spill_;                   ///< active while size_ >  kInlineEntries
  };
};

}  // namespace hc3i::net
