#pragma once

// Sparse per-cluster-pair traffic census.
//
// The Table-1 census used to be a dense clusters x clusters matrix of
// counter handles, sized at construction.  That is O(clusters²) memory
// regardless of traffic — harmless at the paper's 2-3 clusters, but the
// wrong shape for scale-out federations where real applications touch a
// sparse set of pairs (a 10-cluster ring workload has ~3 active pairs per
// cluster, not 10).  PairCensus is an open-addressing hash table keyed by
// the packed (src, dst) pair: memory and rehash cost scale with the pairs
// that actually carried traffic, and the common case — the same pair as
// the previous message — is a one-probe hit.
//
// The census only ever grows (counters are never removed), entries resolve
// their stats::Counter lazily at first touch exactly like the dense matrix
// did, so the registry dump stays byte-identical for any traffic pattern.

#include <cstdint>
#include <vector>

#include "stats/registry.hpp"
#include "util/ids.hpp"

namespace hc3i::net {

/// Open-addressing map from (src cluster, dst cluster) to a lazily resolved
/// counter handle.  Single-threaded, insert-only.
class PairCensus {
 public:
  PairCensus() = default;

  /// The counter slot for a pair, inserting an unresolved (nullptr) slot on
  /// first touch.  The returned reference is valid until the next slot()
  /// call with a previously unseen pair (growth rehashes); callers resolve
  /// and bump immediately.
  stats::Counter*& slot(ClusterId src, ClusterId dst);

  /// Number of distinct pairs that have been touched.
  std::size_t active_pairs() const { return size_; }

  /// Current table capacity (tests assert growth is driven by active pairs,
  /// not by the federation's cluster count).
  std::size_t bucket_count() const { return table_.size(); }

 private:
  struct Entry {
    std::uint64_t key{kEmptyKey};
    stats::Counter* counter{nullptr};
  };

  static constexpr std::uint64_t kEmptyKey = ~0ull;

  static std::uint64_t pack(ClusterId src, ClusterId dst) {
    return (static_cast<std::uint64_t>(src.v) << 32) | dst.v;
  }
  /// splitmix64 finaliser — cheap, and strong enough that linear probing
  /// stays short at the 0.7 load bound.
  static std::size_t hash(std::uint64_t key) {
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ull;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebull;
    key ^= key >> 31;
    return static_cast<std::size_t>(key);
  }

  Entry* find_or_claim(std::uint64_t key);
  void grow();

  std::vector<Entry> table_;  ///< power-of-two capacity, linear probing
  std::size_t size_{0};
};

}  // namespace hc3i::net
