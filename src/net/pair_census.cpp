#include "net/pair_census.hpp"

namespace hc3i::net {

stats::Counter*& PairCensus::slot(ClusterId src, ClusterId dst) {
  return find_or_claim(pack(src, dst))->counter;
}

PairCensus::Entry* PairCensus::find_or_claim(std::uint64_t key) {
  if (table_.empty()) grow();
  while (true) {
    const std::size_t mask = table_.size() - 1;
    std::size_t i = hash(key) & mask;
    while (true) {
      Entry& e = table_[i];
      if (e.key == key) return &e;
      if (e.key == kEmptyKey) {
        // Claiming a new pair: grow first if that would breach the load
        // bound, then re-probe — a hit on an existing pair never rehashes,
        // which is what keeps previously returned references valid until
        // the next unseen pair (the contract in pair_census.hpp).
        if (size_ + 1 > (table_.size() * 7) / 10) break;
        e.key = key;
        ++size_;
        return &e;
      }
      i = (i + 1) & mask;
    }
    grow();
  }
}

void PairCensus::grow() {
  const std::size_t cap = table_.empty() ? 16 : table_.size() * 2;
  std::vector<Entry> old = std::move(table_);
  table_.assign(cap, Entry{});
  const std::size_t mask = cap - 1;
  for (const Entry& e : old) {
    if (e.key == kEmptyKey) continue;
    std::size_t i = hash(e.key) & mask;
    while (table_[i].key != kEmptyKey) i = (i + 1) & mask;
    table_[i] = e;
  }
}

}  // namespace hc3i::net
