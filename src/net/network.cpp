#include "net/network.hpp"

#include <cmath>

#include "util/log.hpp"

namespace hc3i::net {

Network::Network(sim::Simulation& sim, const Topology& topo,
                 stats::Registry& reg)
    : sim_(sim), topo_(topo), reg_(reg),
      deliver_(topo.node_count()),
      up_(topo.node_count(), true) {}

void Network::attach(NodeId n, DeliverFn deliver) {
  HC3I_CHECK(n.v < deliver_.size(), "attach: bad node id");
  deliver_[n.v] = std::move(deliver);
}

void Network::count_send(const Envelope& env) {
  const std::string dir = env.intra_cluster() ? "intra" : "inter";
  const std::string cls = env.cls == MsgClass::kApp ? "app" : "ctl";
  reg_.inc("net." + cls + "." + dir + ".msgs");
  reg_.inc("net." + cls + "." + dir + ".bytes", env.wire_bytes());
  if (env.cls == MsgClass::kApp) {
    // Per-cluster-pair census — this is Table 1 of the paper.
    reg_.inc("net.app.pair." + std::to_string(env.src_cluster.v) + "." +
             std::to_string(env.dst_cluster.v));
  }
}

MsgId Network::send(Envelope env) {
  HC3I_CHECK(env.src.v < topo_.node_count() && env.dst.v < topo_.node_count(),
             "send: bad endpoint");
  HC3I_CHECK(env.src != env.dst, "send: src == dst (use a direct call)");
  env.id = MsgId{next_msg_id_++};
  env.src_cluster = topo_.cluster_of(env.src);
  env.dst_cluster = topo_.cluster_of(env.dst);
  env.sent_at = sim_.now();
  count_send(env);

  const auto& link = topo_.link(env.src, env.dst);
  SimTime delay = link.latency;
  if (std::isfinite(link.bytes_per_sec)) {
    delay += from_seconds_f(static_cast<double>(env.wire_bytes()) /
                            link.bytes_per_sec);
  }
  const MsgId id = env.id;
  Flight flight{std::move(env), {}, false};
  flight.event = sim_.schedule_after(delay, [this, id] { arrive(id); });
  in_flight_.emplace(id.v, std::move(flight));
  return id;
}

void Network::arrive(MsgId id) {
  const auto it = in_flight_.find(id.v);
  HC3I_CHECK(it != in_flight_.end(), "arrive: unknown message");
  if (!up_[it->second.env.dst.v]) {
    // Destination is down: park. Delivered on set_node_up — the network is
    // reliable (paper §2.1), it never drops.
    it->second.parked = true;
    return;
  }
  Envelope env = std::move(it->second.env);
  in_flight_.erase(it);
  const auto& fn = deliver_[env.dst.v];
  HC3I_CHECK(static_cast<bool>(fn), "arrive: node has no receive handler");
  fn(env);
}

void Network::set_node_down(NodeId n) {
  HC3I_CHECK(n.v < up_.size(), "set_node_down: bad node id");
  up_[n.v] = false;
}

void Network::set_node_up(NodeId n) {
  HC3I_CHECK(n.v < up_.size(), "set_node_up: bad node id");
  if (up_[n.v]) return;
  up_[n.v] = true;
  // Deliver parked messages for this node, in MsgId (send) order, as fresh
  // immediate events so handlers run from a clean stack.
  std::vector<MsgId> ready;
  for (const auto& [mid, flight] : in_flight_) {
    if (flight.parked && flight.env.dst == n) ready.push_back(MsgId{mid});
  }
  for (MsgId mid : ready) {
    auto& flight = in_flight_.at(mid.v);
    flight.parked = false;
    flight.event = sim_.schedule_after(SimTime::zero(),
                                       [this, mid] { arrive(mid); });
  }
}

bool Network::node_up(NodeId n) const {
  HC3I_CHECK(n.v < up_.size(), "node_up: bad node id");
  return up_[n.v];
}

std::vector<Envelope> Network::snapshot_in_flight(
    const std::function<bool(const Envelope&)>& pred) const {
  std::vector<Envelope> out;
  for (const auto& [_, flight] : in_flight_) {
    if (pred(flight.env)) out.push_back(flight.env);
  }
  return out;
}

std::size_t Network::drop_in_flight(
    const std::function<bool(const Envelope&)>& pred) {
  std::size_t dropped = 0;
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    if (pred(it->second.env)) {
      if (!it->second.parked) sim_.cancel(it->second.event);
      it = in_flight_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace hc3i::net
