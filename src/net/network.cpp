#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/log.hpp"

namespace hc3i::net {

Network::Network(sim::Simulation& sim, const Topology& topo,
                 stats::Registry& reg)
    : sim_(sim), topo_(topo), reg_(reg),
      deliver_(topo.node_count()),
      up_(topo.node_count(), true),
      park_head_(topo.node_count(), kNil),
      park_tail_(topo.node_count(), kNil) {}

void Network::attach(NodeId n, DeliverFn deliver) {
  HC3I_CHECK(n.v < deliver_.size(), "attach: bad node id");
  deliver_[n.v] = std::move(deliver);
}

void Network::count_send(const Envelope& env) {
  const bool app = env.cls == MsgClass::kApp;
  const bool intra = env.intra_cluster();
  TrafficCounters& tc = traffic_[app][intra];
  if (!tc.msgs) {
    const std::string key = std::string("net.") + (app ? "app" : "ctl") + "." +
                            (intra ? "intra" : "inter");
    tc.msgs = &reg_.counter(key + ".msgs");
    tc.bytes = &reg_.counter(key + ".bytes");
  }
  tc.msgs->inc();
  tc.bytes->inc(env.wire_bytes());
  if (app) {
    // Per-cluster-pair census — this is Table 1 of the paper.  A sparse
    // table of pre-resolved handles keyed by the pair actually touched
    // (memory scales with active pairs, not clusters²); the name string is
    // built once per pair per run, not once per message.
    stats::Counter*& cell = pair_census_.slot(env.src_cluster, env.dst_cluster);
    if (!cell) {
      cell = &reg_.counter("net.app.pair." + std::to_string(env.src_cluster.v) +
                           "." + std::to_string(env.dst_cluster.v));
    }
    cell->inc();
  }
}

std::uint32_t Network::alloc_flight() {
  std::uint32_t slot;
  if (!free_flights_.empty()) {
    slot = free_flights_.back();
    free_flights_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(flights_.size());
    flights_.emplace_back();
  }
  flights_[slot].live = true;
  ++live_flights_;
  return slot;
}

void Network::release_flight(std::uint32_t slot) {
  Flight& f = flights_[slot];
  f.env = {};  // drop payload references now, not when the slot is reused
  f.live = false;
  f.parked = false;
  f.park_prev = f.park_next = kNil;
  f.event = {};
  ++f.gen;
  free_flights_.push_back(slot);
  --live_flights_;
}

void Network::park(std::uint32_t slot) {
  Flight& f = flights_[slot];
  f.parked = true;
  const std::uint32_t node = f.env.dst.v;
  f.park_prev = park_tail_[node];
  f.park_next = kNil;
  if (park_tail_[node] != kNil) {
    flights_[park_tail_[node]].park_next = slot;
  } else {
    park_head_[node] = slot;
  }
  park_tail_[node] = slot;
}

void Network::unpark(std::uint32_t slot) {
  Flight& f = flights_[slot];
  const std::uint32_t node = f.env.dst.v;
  if (f.park_prev != kNil) {
    flights_[f.park_prev].park_next = f.park_next;
  } else {
    park_head_[node] = f.park_next;
  }
  if (f.park_next != kNil) {
    flights_[f.park_next].park_prev = f.park_prev;
  } else {
    park_tail_[node] = f.park_prev;
  }
  f.park_prev = f.park_next = kNil;
  f.parked = false;
}

MsgId Network::send(Envelope env) {
  HC3I_CHECK(env.src.v < topo_.node_count() && env.dst.v < topo_.node_count(),
             "send: bad endpoint");
  HC3I_CHECK(env.src != env.dst, "send: src == dst (use a direct call)");
  env.id = MsgId{next_msg_id_++};
  env.src_cluster = topo_.cluster_of(env.src);
  env.dst_cluster = topo_.cluster_of(env.dst);
  env.sent_at = sim_.now();
  count_send(env);

  const auto& link = topo_.link(env.src, env.dst);
  SimTime delay = link.latency;
  if (std::isfinite(link.bytes_per_sec)) {
    delay += from_seconds_f(static_cast<double>(env.wire_bytes()) /
                            link.bytes_per_sec);
  }
  const MsgId id = env.id;
  const std::uint32_t slot = alloc_flight();
  Flight& f = flights_[slot];
  f.env = std::move(env);
  f.event = sim_.schedule_after(
      delay, [this, slot, gen = f.gen] { arrive(slot, gen); });
  return id;
}

void Network::arrive(std::uint32_t slot, std::uint32_t gen) {
  HC3I_CHECK(slot < flights_.size() && flights_[slot].live &&
                 flights_[slot].gen == gen,
             "arrive: unknown message");
  Flight& f = flights_[slot];
  if (!up_[f.env.dst.v]) {
    // Destination is down: park. Delivered on set_node_up — the network is
    // reliable (paper §2.1), it never drops.
    park(slot);
    return;
  }
  Envelope env = std::move(f.env);
  release_flight(slot);
  const auto& fn = deliver_[env.dst.v];
  HC3I_CHECK(static_cast<bool>(fn), "arrive: node has no receive handler");
  fn(env);
}

void Network::set_node_down(NodeId n) {
  HC3I_CHECK(n.v < up_.size(), "set_node_down: bad node id");
  up_[n.v] = false;
}

void Network::set_node_up(NodeId n) {
  HC3I_CHECK(n.v < up_.size(), "set_node_up: bad node id");
  if (up_[n.v]) return;
  up_[n.v] = true;
  // Deliver parked messages for this node, in MsgId (send) order, as fresh
  // immediate events so handlers run from a clean stack.  Only this node's
  // parked list is touched — O(parked here), not O(all in flight).
  std::vector<std::uint32_t> ready;
  for (std::uint32_t s = park_head_[n.v]; s != kNil; s = flights_[s].park_next) {
    ready.push_back(s);
  }
  std::sort(ready.begin(), ready.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return flights_[a].env.id.v < flights_[b].env.id.v;
            });
  for (const std::uint32_t slot : ready) {
    unpark(slot);
    Flight& f = flights_[slot];
    f.event = sim_.schedule_after(
        SimTime::zero(), [this, slot, gen = f.gen] { arrive(slot, gen); });
  }
}

bool Network::node_up(NodeId n) const {
  HC3I_CHECK(n.v < up_.size(), "node_up: bad node id");
  return up_[n.v];
}

std::vector<Envelope> Network::snapshot_in_flight(
    const std::function<bool(const Envelope&)>& pred) const {
  // Gather matching slots, then emit in MsgId order: the captured channel
  // state feeds protocol decisions, so its order is part of the
  // bit-reproducibility contract.
  std::vector<std::uint32_t> match;
  for (std::uint32_t s = 0; s < flights_.size(); ++s) {
    if (flights_[s].live && pred(flights_[s].env)) match.push_back(s);
  }
  std::sort(match.begin(), match.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return flights_[a].env.id.v < flights_[b].env.id.v;
            });
  std::vector<Envelope> out;
  out.reserve(match.size());
  for (const std::uint32_t s : match) out.push_back(flights_[s].env);
  return out;
}

std::size_t Network::drop_in_flight(
    const std::function<bool(const Envelope&)>& pred) {
  std::size_t dropped = 0;
  for (std::uint32_t s = 0; s < flights_.size(); ++s) {
    Flight& f = flights_[s];
    if (!f.live || !pred(f.env)) continue;
    if (f.parked) {
      unpark(s);
    } else {
      sim_.cancel(f.event);
    }
    release_flight(s);
    ++dropped;
  }
  return dropped;
}

}  // namespace hc3i::net
