#include "net/topology.hpp"

#include <algorithm>

namespace hc3i::net {

Topology::Topology(config::TopologySpec spec) : spec_(std::move(spec)) {
  spec_.validate();
  first_.reserve(spec_.cluster_count());
  std::uint32_t next = 0;
  for (const auto& c : spec_.clusters) {
    first_.push_back(next);
    next += c.nodes;
  }
  total_nodes_ = next;
}

std::uint32_t Topology::cluster_size(ClusterId c) const {
  HC3I_CHECK(c.v < spec_.cluster_count(), "cluster_size: bad cluster id");
  return spec_.clusters[c.v].nodes;
}

ClusterId Topology::cluster_of(NodeId n) const {
  HC3I_CHECK(n.v < total_nodes_, "cluster_of: bad node id");
  // first_ is sorted; find the last cluster whose first node is <= n.
  const auto it = std::upper_bound(first_.begin(), first_.end(), n.v);
  return ClusterId{static_cast<std::uint32_t>(it - first_.begin() - 1)};
}

NodeId Topology::first_node(ClusterId c) const {
  HC3I_CHECK(c.v < first_.size(), "first_node: bad cluster id");
  return NodeId{first_[c.v]};
}

std::vector<NodeId> Topology::nodes_of(ClusterId c) const {
  const std::uint32_t base = first_node(c).v;
  const std::uint32_t n = cluster_size(c);
  std::vector<NodeId> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(NodeId{base + i});
  return out;
}

const config::LinkSpec& Topology::link(NodeId a, NodeId b) const {
  const ClusterId ca = cluster_of(a), cb = cluster_of(b);
  if (ca == cb) return spec_.clusters[ca.v].san;
  return spec_.inter_link(ca, cb);
}

NodeId Topology::ring_neighbour(NodeId n, std::uint32_t distance) const {
  const ClusterId c = cluster_of(n);
  const std::uint32_t base = first_node(c).v;
  const std::uint32_t size = cluster_size(c);
  HC3I_CHECK(size > 1 || distance % size == 0,
             "ring_neighbour: single-node cluster has no distinct neighbour");
  return NodeId{base + (n.v - base + distance) % size};
}

}  // namespace hc3i::net
