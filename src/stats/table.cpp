#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace hc3i::stats {

const std::string Table::kEmpty;

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HC3I_CHECK(!headers_.empty(), "Table: need at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& v) {
  HC3I_CHECK(!rows_.empty(), "Table: cell() before row()");
  HC3I_CHECK(rows_.back().size() < headers_.size(),
             "Table: more cells than columns");
  rows_.back().push_back(v);
  return *this;
}

Table& Table::cell(std::int64_t v) { return cell(std::to_string(v)); }
Table& Table::cell(std::uint64_t v) { return cell(std::to_string(v)); }

Table& Table::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return cell(std::string(buf));
}

const std::string& Table::at(std::size_t r, std::size_t c) const {
  HC3I_CHECK(r < rows_.size() && c < headers_.size(), "Table::at out of range");
  if (c >= rows_[r].size()) return kEmpty;
  return rows_[r][c];
}

namespace {
std::vector<std::size_t> column_widths(
    const std::vector<std::string>& headers,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> w(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) w[c] = headers[c].size();
  for (const auto& r : rows) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      w[c] = std::max(w[c], r[c].size());
    }
  }
  return w;
}

std::string pad(const std::string& s, std::size_t width) {
  std::string out = s;
  out.resize(width, ' ');
  return out;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_ascii() const {
  const auto w = column_widths(headers_, rows_);
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << pad(headers_[c], w[c]) << (c + 1 < headers_.size() ? "  " : "");
  }
  os << '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(w[c], '-') << (c + 1 < headers_.size() ? "  " : "");
  }
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < r.size() ? r[c] : kEmpty;
      os << pad(v, w[c]) << (c + 1 < headers_.size() ? "  " : "");
    }
    os << '\n';
  }
  return os.str();
}

std::string Table::to_markdown() const {
  std::ostringstream os;
  os << '|';
  for (const auto& h : headers_) os << ' ' << h << " |";
  os << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& r : rows_) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << ' ' << (c < r.size() ? r[c] : kEmpty) << " |";
    }
    os << '\n';
  }
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << csv_escape(headers_[c]) << (c + 1 < headers_.size() ? "," : "");
  }
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << (c < r.size() ? csv_escape(r[c]) : kEmpty)
         << (c + 1 < headers_.size() ? "," : "");
    }
    os << '\n';
  }
  return os.str();
}

std::string render_series(const std::string& x_name,
                          const std::vector<Series>& series, int precision) {
  HC3I_CHECK(!series.empty(), "render_series: no series");
  const std::size_t n = series.front().x.size();
  for (const auto& s : series) {
    HC3I_CHECK(s.x.size() == n && s.y.size() == n,
               "render_series: series lengths differ");
  }
  std::vector<std::string> headers{x_name};
  for (const auto& s : series) headers.push_back(s.name);
  Table t(headers);
  for (std::size_t i = 0; i < n; ++i) {
    t.row();
    t.cell(series.front().x[i], 0);
    for (const auto& s : series) t.cell(s.y[i], precision);
  }
  return t.to_ascii();
}

}  // namespace hc3i::stats
