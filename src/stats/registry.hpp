#pragma once

// Named metric registry.
//
// Protocol components increment named counters ("clc.forced", "msg.inter",
// "rollback.clusters", ...) without knowing who will read them; benches and
// tests read them by name after the run.  One registry per simulation run —
// never global, so parallel parameter sweeps don't share state.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stats/accumulators.hpp"

namespace hc3i::stats {

/// Per-run metric registry: monotonically increasing counters plus
/// observation summaries.
class Registry {
 public:
  /// Add `delta` to a named counter (creates it at zero first).
  void inc(const std::string& name, std::uint64_t delta = 1);

  /// Set a counter to an absolute value (gauges, e.g. high-water marks).
  void set(const std::string& name, std::uint64_t value);

  /// Raise a gauge to `value` if it is below it (high-water-mark update).
  void raise(const std::string& name, std::uint64_t value);

  /// Current value of a counter (0 if never touched).
  std::uint64_t get(const std::string& name) const;

  /// Record an observation into a named summary.
  void observe(const std::string& name, double x);

  /// Read a named summary (empty summary if never touched).
  const Summary& summary(const std::string& name) const;

  /// All counter names in lexicographic order (for dumps).
  std::vector<std::string> counter_names() const;

  /// Render every counter as "name = value" lines (debug output).
  std::string dump() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Summary> summaries_;
  static const Summary kEmptySummary;
};

}  // namespace hc3i::stats
