#pragma once

// Named metric registry.
//
// Protocol components increment named counters ("clc.forced", "msg.inter",
// "rollback.clusters", ...) without knowing who will read them; benches and
// tests read them by name after the run.  One registry per simulation run —
// never global, so parallel parameter sweeps don't share state.
//
// Hot paths resolve a name ONCE into a handle (`Counter&` / `Summary&`) and
// bump through it; the per-call cost is then a single add, not a string
// construction plus a tree walk.  Names are interned in an open-addressing
// hash table that maps to dense indices; the values live in chunked slabs so
// handles stay valid as the registry grows.  The original name-keyed API is
// kept as a thin shim over the same storage, so results read identically.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "stats/accumulators.hpp"

namespace hc3i::stats {

/// A single named counter; obtained from Registry::counter() and valid for
/// the registry's lifetime.
class Counter {
 public:
  /// Add `delta` (monotonic counters).
  void inc(std::uint64_t delta = 1) { v_ += delta; }
  /// Set an absolute value (gauges, e.g. high-water marks).
  void set(std::uint64_t value) { v_ = value; }
  /// Raise to `value` if below it (high-water-mark update).
  void raise(std::uint64_t value) {
    if (value > v_) v_ = value;
  }
  /// Current value.
  std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_{0};
};

namespace detail {

/// Open-addressing (linear probe, power-of-two capacity) map from interned
/// name to dense index.  Indices are handed out in interning order.
class NameIndex {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// Index of `name`, interning it if absent.
  std::uint32_t intern(std::string_view name);
  /// Index of `name`, or kNone — never interns.
  std::uint32_t find(std::string_view name) const;

  const std::vector<std::string>& names() const { return names_; }
  std::size_t size() const { return names_.size(); }

 private:
  void rehash(std::size_t capacity);

  std::vector<std::string> names_;   ///< dense, indexed by interned id
  std::vector<std::uint32_t> slots_; ///< probe table holding index+1 (0=empty)
};

/// Chunked value storage: grows like a vector but never relocates elements,
/// so references into it (the handles) stay valid.
template <typename T>
class Slab {
 public:
  static constexpr std::size_t kChunkShift = 8;  // 256 values per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  /// Element `i`, allocating chunks as needed to cover it.
  T& ensure(std::uint32_t i) {
    const std::size_t chunk = i >> kChunkShift;
    while (chunks_.size() <= chunk) {
      chunks_.push_back(std::make_unique<T[]>(kChunkSize));
    }
    return chunks_[chunk][i & (kChunkSize - 1)];
  }

  const T& at(std::uint32_t i) const {
    return chunks_[i >> kChunkShift][i & (kChunkSize - 1)];
  }

 private:
  std::vector<std::unique_ptr<T[]>> chunks_;
};

}  // namespace detail

/// Per-run metric registry: monotonically increasing counters plus
/// observation summaries.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry& o) { copy_from(o); }
  Registry& operator=(const Registry& o) {
    if (this != &o) {
      *this = Registry();  // reset via move
      copy_from(o);
    }
    return *this;
  }
  Registry(Registry&&) noexcept = default;
  Registry& operator=(Registry&&) noexcept = default;

  // --- handle API (hot paths: resolve once, bump forever) ---

  /// Handle to a named counter (created at zero on first resolution).  The
  /// reference stays valid for the registry's lifetime.
  Counter& counter(std::string_view name) {
    return counters_.ensure(counter_names_.intern(name));
  }

  /// Handle to a named summary (created empty on first resolution).  The
  /// reference stays valid for the registry's lifetime.
  Summary& summary_handle(std::string_view name) {
    return summaries_.ensure(summary_names_.intern(name));
  }

  // --- name-keyed compatibility shim over the same storage ---

  /// Add `delta` to a named counter (creates it at zero first).
  void inc(std::string_view name, std::uint64_t delta = 1) {
    counter(name).inc(delta);
  }

  /// Set a counter to an absolute value (gauges, e.g. high-water marks).
  void set(std::string_view name, std::uint64_t value) {
    counter(name).set(value);
  }

  /// Raise a gauge to `value` if it is below it (high-water-mark update).
  void raise(std::string_view name, std::uint64_t value) {
    counter(name).raise(value);
  }

  /// Current value of a counter (0 if never touched).
  std::uint64_t get(std::string_view name) const;

  /// Record an observation into a named summary.
  void observe(std::string_view name, double x) { summary_handle(name).add(x); }

  /// Read a named summary.  The returned reference is the live slot: a
  /// later observe() of the same name updates what it sees (reading an
  /// untouched name interns an empty summary — count() stays 0 until
  /// someone observes into it).
  const Summary& summary(std::string_view name) const {
    return summaries_.ensure(summary_names_.intern(name));
  }

  /// All counter names in lexicographic order (for dumps).
  std::vector<std::string> counter_names() const;

  /// Render every counter as "name = value" lines (debug output).
  std::string dump() const;

 private:
  void copy_from(const Registry& o);

  detail::NameIndex counter_names_;
  mutable detail::NameIndex summary_names_;
  detail::Slab<Counter> counters_;
  // Summaries are interned (not copied) by const reads so the reference a
  // reader holds is the same slot a later observe() writes — the registry
  // is logically unchanged by the read.
  mutable detail::Slab<Summary> summaries_;
};

/// Resolve-once helper for hot-path handles: `slot` caches the resolved
/// pointer; `make_name` (anything convertible to string_view) is only
/// invoked on first touch, so computed names cost nothing once cached and
/// the metric still only exists once actually bumped.  All lazily-resolved
/// call sites funnel through here — one place to change the idiom.
template <typename MakeName>
Counter& lazy_counter(Registry& reg, Counter*& slot, MakeName&& make_name) {
  if (!slot) slot = &reg.counter(make_name());
  return *slot;
}

/// Summary flavour of lazy_counter().
template <typename MakeName>
Summary& lazy_summary(Registry& reg, Summary*& slot, MakeName&& make_name) {
  if (!slot) slot = &reg.summary_handle(make_name());
  return *slot;
}

}  // namespace hc3i::stats
