#include "stats/registry.hpp"

#include <algorithm>
#include <sstream>

namespace hc3i::stats {

const Summary Registry::kEmptySummary;

void Registry::inc(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

void Registry::set(const std::string& name, std::uint64_t value) {
  counters_[name] = value;
}

void Registry::raise(const std::string& name, std::uint64_t value) {
  auto& slot = counters_[name];
  slot = std::max(slot, value);
}

std::uint64_t Registry::get(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Registry::observe(const std::string& name, double x) {
  summaries_[name].add(x);
}

const Summary& Registry::summary(const std::string& name) const {
  const auto it = summaries_.find(name);
  return it == summaries_.end() ? kEmptySummary : it->second;
}

std::vector<std::string> Registry::counter_names() const {
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [k, _] : counters_) names.push_back(k);
  return names;
}

std::string Registry::dump() const {
  std::ostringstream os;
  for (const auto& [k, v] : counters_) os << k << " = " << v << '\n';
  return os.str();
}

}  // namespace hc3i::stats
