#include "stats/registry.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace hc3i::stats {
namespace detail {
namespace {

/// FNV-1a over the name bytes; cheap and good enough for metric-name keys.
std::uint64_t hash_name(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::uint32_t NameIndex::find(std::string_view name) const {
  if (slots_.empty()) return kNone;
  const std::size_t mask = slots_.size() - 1;
  for (std::size_t i = hash_name(name) & mask;; i = (i + 1) & mask) {
    const std::uint32_t slot = slots_[i];
    if (slot == 0) return kNone;
    if (names_[slot - 1] == name) return slot - 1;
  }
}

std::uint32_t NameIndex::intern(std::string_view name) {
  if (slots_.empty()) rehash(16);
  std::size_t mask = slots_.size() - 1;
  std::size_t i = hash_name(name) & mask;
  for (; slots_[i] != 0; i = (i + 1) & mask) {
    if (names_[slots_[i] - 1] == name) return slots_[i] - 1;
  }
  const auto idx = static_cast<std::uint32_t>(names_.size());
  HC3I_CHECK(idx != kNone, "NameIndex: too many interned names");
  names_.emplace_back(name);
  slots_[i] = idx + 1;
  // Keep the probe table under ~70% load.
  if ((names_.size() + 1) * 10 >= slots_.size() * 7) rehash(slots_.size() * 2);
  return idx;
}

void NameIndex::rehash(std::size_t capacity) {
  slots_.assign(capacity, 0);
  const std::size_t mask = capacity - 1;
  for (std::uint32_t idx = 0; idx < names_.size(); ++idx) {
    std::size_t i = hash_name(names_[idx]) & mask;
    while (slots_[i] != 0) i = (i + 1) & mask;
    slots_[i] = idx + 1;
  }
}

}  // namespace detail

std::uint64_t Registry::get(std::string_view name) const {
  const std::uint32_t idx = counter_names_.find(name);
  return idx == detail::NameIndex::kNone ? 0 : counters_.at(idx).value();
}

std::vector<std::string> Registry::counter_names() const {
  std::vector<std::string> names = counter_names_.names();
  std::sort(names.begin(), names.end());
  return names;
}

std::string Registry::dump() const {
  // Sorted by name, matching the ordering the registry has always dumped in.
  std::vector<std::uint32_t> order(counter_names_.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  const auto& names = counter_names_.names();
  std::sort(order.begin(), order.end(),
            [&names](std::uint32_t a, std::uint32_t b) {
              return names[a] < names[b];
            });
  std::ostringstream os;
  for (const std::uint32_t i : order) {
    os << names[i] << " = " << counters_.at(i).value() << '\n';
  }
  return os.str();
}

void Registry::copy_from(const Registry& o) {
  for (std::uint32_t i = 0; i < o.counter_names_.size(); ++i) {
    counter(o.counter_names_.names()[i]).set(o.counters_.at(i).value());
  }
  for (std::uint32_t i = 0; i < o.summary_names_.size(); ++i) {
    summary_handle(o.summary_names_.names()[i]) = o.summaries_.at(i);
  }
}

}  // namespace hc3i::stats
