#pragma once

// Result-table construction and rendering.
//
// Every bench binary regenerates one of the paper's tables/figures and prints
// it in the same row/series layout.  Table collects cells column-wise and
// renders aligned ASCII (for the console), Markdown (for EXPERIMENTS.md) and
// CSV (for plotting).

#include <cstdint>
#include <string>
#include <vector>

#include "stats/accumulators.hpp"

namespace hc3i::stats {

/// A simple row-oriented table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row; subsequent cell() calls fill it left to right.
  Table& row();
  /// Append a string cell to the current row.
  Table& cell(const std::string& v);
  /// Append an integer cell.
  Table& cell(std::int64_t v);
  /// Append an unsigned cell.
  Table& cell(std::uint64_t v);
  /// Append a floating cell with the given precision.
  Table& cell(double v, int precision = 2);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }
  /// Cell text at (r, c); empty string if the row is ragged there.
  const std::string& at(std::size_t r, std::size_t c) const;

  /// Render with aligned columns for terminal output.
  std::string to_ascii() const;
  /// Render as a GitHub-flavoured Markdown table.
  std::string to_markdown() const;
  /// Render as CSV (RFC-4180 quoting for cells containing commas/quotes).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  static const std::string kEmpty;
};

/// Render a set of (x, y) series as an aligned ASCII table with one x column
/// and one column per series — the layout the figure benches print.
std::string render_series(const std::string& x_name,
                          const std::vector<Series>& series, int precision = 1);

}  // namespace hc3i::stats
