#include "stats/accumulators.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace hc3i::stats {

void Summary::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  HC3I_CHECK(hi > lo, "Histogram: hi must exceed lo");
  HC3I_CHECK(bins > 0, "Histogram: need at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
    ++counts_[idx];
  }
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  HC3I_CHECK(i < counts_.size(), "Histogram: bin index out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  HC3I_CHECK(i < counts_.size(), "Histogram: bin index out of range");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::quantile(double q) const {
  HC3I_CHECK(q >= 0.0 && q <= 1.0, "Histogram: quantile must be in [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

void Log2Histogram::add(std::uint64_t v) {
  ++total_;
  ++counts_[std::bit_width(v)];  // bit_width(0) == 0: zeros get bucket 0
}

std::uint64_t Log2Histogram::bucket_count(std::size_t i) const {
  HC3I_CHECK(i < counts_.size(), "Log2Histogram: bucket index out of range");
  return counts_[i];
}

double Log2Histogram::quantile(double q) const {
  HC3I_CHECK(q >= 0.0 && q <= 1.0, "Log2Histogram: quantile must be in [0,1]");
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      if (i == 0) return 0.0;
      const double lo = std::ldexp(1.0, static_cast<int>(i) - 1);
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return lo + frac * lo;  // bucket spans [lo, 2*lo)
    }
    cum = next;
  }
  return std::ldexp(1.0, 63);  // unreachable with total_ > 0
}

void Log2Histogram::merge(const Log2Histogram& other) {
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

}  // namespace hc3i::stats
