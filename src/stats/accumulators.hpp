#pragma once

// Online statistical accumulators.
//
// The simulator's "lowest output is statistical data" (paper §5.1); these
// accumulators gather it in one pass with O(1) memory: Welford mean/variance,
// min/max, and a fixed-bin histogram for distributions (rollback depth, CLC
// intervals, message latency).

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace hc3i::stats {

/// Running mean / variance / extrema (Welford's algorithm).
class Summary {
 public:
  /// Add one observation.
  void add(double x);

  /// Number of observations.
  std::uint64_t count() const { return n_; }
  /// Arithmetic mean (0 when empty).
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance (0 with fewer than two observations).
  double variance() const { return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1); }
  /// Sample standard deviation.
  double stddev() const;
  /// Smallest observation (+inf when empty).
  double min() const { return min_; }
  /// Largest observation (-inf when empty).
  double max() const { return max_; }
  /// Sum of all observations.
  double sum() const { return sum_; }

  /// Merge another summary into this one (parallel-safe combination rule).
  void merge(const Summary& other);

 private:
  std::uint64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double sum_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range values land in
/// saturating under/overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Record one observation.
  void add(double x);

  /// Number of observations recorded (including under/overflow).
  std::uint64_t count() const { return total_; }
  /// Count in bin i.
  std::uint64_t bin_count(std::size_t i) const;
  /// Lower edge of bin i.
  double bin_lo(std::size_t i) const;
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  /// Value below which `q` (in [0,1]) of the mass lies, by linear
  /// interpolation within the containing bin.
  double quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_{0}, overflow_{0}, total_{0};
};

/// Log2-bucket histogram over non-negative integer observations (latencies
/// in microseconds, byte counts): bucket 0 holds exact zeros, bucket i
/// (i >= 1) holds values in [2^(i-1), 2^i).  Exponential buckets cover the
/// full uint64 range in 65 counters with no configuration, which is what a
/// tail-latency accumulator needs — p99 of recovery latency spans orders of
/// magnitude between a quiet run and an overlapping-burst campaign.
/// Integer-only state keeps quantiles bit-reproducible across platforms.
class Log2Histogram {
 public:
  /// Record one observation.
  void add(std::uint64_t v);

  /// Number of observations recorded.
  std::uint64_t count() const { return total_; }
  /// Count in bucket i (0 = exact zeros, i = [2^(i-1), 2^i)).
  std::uint64_t bucket_count(std::size_t i) const;
  static constexpr std::size_t kBuckets = 65;

  /// Value below which `q` (in [0,1]) of the mass lies, by linear
  /// interpolation within the containing bucket (0 when empty).
  double quantile(double q) const;

  /// Merge another histogram into this one (bucket-wise addition).
  void merge(const Log2Histogram& other);

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_{0};
};

/// An (x, y) series, e.g. a metric sampled against a swept parameter.
/// This is what the figure benches emit.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;

  /// Append one point.
  void add(double xv, double yv) {
    x.push_back(xv);
    y.push_back(yv);
  }
};

}  // namespace hc3i::stats
