#pragma once

// The simulation executive: clock + event loop.
//
// This replaces the C++SIM library the paper used (§5.1).  C++SIM models
// entities as threads under a scheduler; we use the equivalent (and
// deterministic) event-driven formulation: entities schedule callbacks, the
// executive advances the clock to the next event and runs it.  The paper's
// four threads map as: "Nodes" -> node event handlers, "Network" -> the
// net::Network delivery events, "Timers" -> sim::Timer, "Controller" -> the
// driver::SimulationBuilder / ExperimentRunner.

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace hc3i::sim {

/// Simulation executive. One instance per simulation run.
class Simulation {
 public:
  /// `master_seed` seeds every RNG stream derived via rng_stream().
  explicit Simulation(std::uint64_t master_seed = 1);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedule a callback at an absolute simulated time (>= now).
  EventId schedule_at(SimTime t, EventQueue::Callback cb);

  /// Schedule a callback after a delay (>= 0) from now.
  EventId schedule_after(SimTime delay, EventQueue::Callback cb);

  /// Cancel a scheduled event (no-op if already fired/cancelled).
  void cancel(EventId id) { queue_.cancel(id); }

  /// Run until the event queue empties or the clock passes `horizon`.
  /// Events scheduled exactly at the horizon still run.  Returns the number
  /// of events executed.
  std::uint64_t run_until(SimTime horizon);

  /// Run to completion (empty queue) — callers must guarantee termination.
  std::uint64_t run_all() { return run_until(SimTime::infinity()); }

  /// Execute exactly one event, if any. Returns false when the queue is empty.
  bool step();

  /// Ask the executive to stop after the current event returns.
  void request_stop() { stop_requested_ = true; }

  /// Derive a named RNG stream. Streams with distinct ids are independent;
  /// calling again with the same id restarts the stream from its origin,
  /// so each consumer should derive its stream once and keep it.
  RngStream rng_stream(std::uint64_t stream_id) const;

  /// Master seed (for run manifests).
  std::uint64_t seed() const { return master_seed_; }

  /// Total events executed so far.
  std::uint64_t events_executed() const { return executed_; }

  /// Live events currently pending.
  std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  SimTime now_{SimTime::zero()};
  std::uint64_t master_seed_;
  std::uint64_t executed_{0};
  bool stop_requested_{false};
};

}  // namespace hc3i::sim
