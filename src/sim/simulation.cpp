#include "sim/simulation.hpp"

namespace hc3i::sim {

Simulation::Simulation(std::uint64_t master_seed) : master_seed_(master_seed) {}

EventId Simulation::schedule_at(SimTime t, EventQueue::Callback cb) {
  HC3I_CHECK(t >= now_, "schedule_at: cannot schedule in the past (t=" +
                            to_string(t) + " now=" + to_string(now_) + ")");
  return queue_.schedule(t, std::move(cb));
}

EventId Simulation::schedule_after(SimTime delay, EventQueue::Callback cb) {
  HC3I_CHECK(delay.ns >= 0, "schedule_after: negative delay");
  if (delay.is_infinite()) {
    return queue_.schedule(SimTime::infinity(), std::move(cb));
  }
  return queue_.schedule(now_ + delay, std::move(cb));
}

std::uint64_t Simulation::run_until(SimTime horizon) {
  std::uint64_t ran = 0;
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.peek_time() > horizon) break;
    auto [t, cb] = queue_.pop();
    now_ = t;
    cb();
    ++ran;
    ++executed_;
  }
  // Advance the clock to the horizon even if no event lands exactly there,
  // so back-to-back run_until calls observe monotone time.
  if (!horizon.is_infinite() && now_ < horizon) now_ = horizon;
  return ran;
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  auto [t, cb] = queue_.pop();
  now_ = t;
  cb();
  ++executed_;
  return true;
}

RngStream Simulation::rng_stream(std::uint64_t stream_id) const {
  return RngStream(master_seed_, stream_id);
}

}  // namespace hc3i::sim
