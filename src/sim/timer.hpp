#pragma once

// Restartable timers on top of the simulation executive.
//
// The paper's protocol relies on timers whose phase is *reset* by protocol
// events: "the timer is reset when a forced CLC is established" (§5.2).
// Timer encapsulates that pattern: arm(), reset(), cancel(); a periodic
// timer re-arms itself after each expiry unless cancelled.

#include <functional>
#include <optional>

#include "sim/simulation.hpp"

namespace hc3i::sim {

/// A one-shot or periodic timer.  Not copyable (identity matters).
class Timer {
 public:
  using Callback = std::function<void()>;

  /// `period` may be SimTime::infinity() => the timer never fires (the
  /// paper runs cluster 1 with "delay between CLCs set to infinite").
  Timer(Simulation& sim, SimTime period, bool periodic, Callback cb);
  ~Timer() { cancel(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Arm the timer `period` from now (idempotent: re-arms from scratch).
  void arm();

  /// Reset the phase: cancel any pending expiry and re-arm `period` from
  /// now.  Equivalent to arm(); named to match the protocol prose.
  void reset() { arm(); }

  /// Stop the timer; it will not fire until re-armed.
  void cancel();

  /// Change the period; takes effect at the next arm()/reset().
  void set_period(SimTime period) { period_ = period; }
  SimTime period() const { return period_; }

  /// True if an expiry is currently scheduled.
  bool armed() const { return pending_.has_value(); }

  /// Number of times the timer has fired.
  std::uint64_t fire_count() const { return fires_; }

 private:
  void on_fire();

  Simulation& sim_;
  SimTime period_;
  bool periodic_;
  Callback cb_;
  std::optional<EventId> pending_;
  std::uint64_t fires_{0};
};

}  // namespace hc3i::sim
