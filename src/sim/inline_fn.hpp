#pragma once

// Fixed-capacity inline callable for the event queue.
//
// Every simulated event used to be stored as a std::function<void()>: one
// type-erased heap allocation per scheduled event whenever the callable
// outgrew libstdc++'s small-object buffer, plus an indirect dispatch through
// the std::function machinery.  The simulator schedules tens of millions of
// events per run, so that was the last per-event allocation on the hot path.
//
// InlineFn stores the callable in an in-object buffer, full stop: there is
// no heap fallback.  A callable that does not fit is a compile error (the
// static_asserts below), which keeps the no-allocation property enforced at
// build time rather than decaying silently as captures grow.  Call sites
// with genuinely large state capture a shared_ptr to it instead (see
// Hc3iAgent::rollback_cluster) — the allocation then belongs to the cold
// path that created the state, not to the event queue.
//
// Dispatch is one indirect call through a per-type operations table (the
// same cost as a virtual call); move and destroy are likewise table-driven
// so the event-queue slab can recycle slots holding arbitrary callables.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hc3i::sim {

/// A move-only `void()` callable with inline-only storage.
template <std::size_t Capacity, std::size_t Alignment = alignof(std::max_align_t)>
class InlineFn {
 public:
  static constexpr std::size_t kCapacity = Capacity;

  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineFn> &&
                !std::is_same_v<std::remove_cvref_t<F>, std::nullptr_t>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>, "InlineFn: not callable");
    static_assert(sizeof(Fn) <= Capacity,
                  "InlineFn: callable exceeds the inline capacity — shrink "
                  "the capture (e.g. capture a shared_ptr to large state) or "
                  "raise the queue's capacity constant");
    static_assert(alignof(Fn) <= Alignment,
                  "InlineFn: callable is over-aligned for the inline buffer");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "InlineFn: callable must be nothrow-movable (the event "
                  "slab relocates callables when slots are recycled)");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    ops_ = ops_for<Fn>();
  }

  InlineFn(InlineFn&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& o) noexcept {
    if (this != &o) {
      reset();
      if (o.ops_ != nullptr) {
        ops_ = o.ops_;
        ops_->relocate(buf_, o.buf_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-construct the callable at `dst` from `src`, destroying `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* self);
  };

  template <typename Fn>
  static const Ops* ops_for() {
    static constexpr Ops ops{
        [](void* self) { (*static_cast<Fn*>(self))(); },
        [](void* dst, void* src) {
          Fn* f = static_cast<Fn*>(src);
          ::new (dst) Fn(std::move(*f));
          f->~Fn();
        },
        [](void* self) { static_cast<Fn*>(self)->~Fn(); },
    };
    return &ops;
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_{nullptr};
  alignas(Alignment) std::byte buf_[Capacity];
};

}  // namespace hc3i::sim
