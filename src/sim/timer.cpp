#include "sim/timer.hpp"

namespace hc3i::sim {

Timer::Timer(Simulation& sim, SimTime period, bool periodic, Callback cb)
    : sim_(sim), period_(period), periodic_(periodic), cb_(std::move(cb)) {
  HC3I_CHECK(static_cast<bool>(cb_), "Timer: empty callback");
  HC3I_CHECK(period_.ns > 0, "Timer: period must be positive");
}

void Timer::arm() {
  cancel();
  if (period_.is_infinite()) return;  // "infinite delay" timers never fire
  pending_ = sim_.schedule_after(period_, [this] { on_fire(); });
}

void Timer::cancel() {
  if (pending_) {
    sim_.cancel(*pending_);
    pending_.reset();
  }
}

void Timer::on_fire() {
  pending_.reset();
  ++fires_;
  // Re-arm before invoking the callback so the callback may itself call
  // reset() to change the phase (forced CLCs do exactly that).
  if (periodic_) arm();
  cb_();
}

}  // namespace hc3i::sim
