#include "sim/event_queue.hpp"

namespace hc3i::sim {

void EventQueue::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!earlier(e, heap_[parent])) break;
    put(i, heap_[parent]);
    i = parent;
  }
  put(i, e);
}

void EventQueue::sift_down(std::size_t i) {
  const Entry e = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    put(i, heap_[best]);
    i = best;
  }
  put(i, e);
}

void EventQueue::remove_at(std::size_t i) {
  const Entry moved = heap_.back();
  heap_.pop_back();
  if (i == heap_.size()) return;  // removed the tail entry itself
  put(i, moved);
  if (i > 0 && earlier(moved, heap_[(i - 1) >> 2])) {
    sift_up(i);
  } else {
    sift_down(i);
  }
}

EventId EventQueue::schedule(SimTime t, Callback cb) {
  HC3I_CHECK(static_cast<bool>(cb), "schedule: empty callback");
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].cb = std::move(cb);
  heap_.push_back(Entry{t, next_seq_++, slot});
  slots_[slot].pos = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
  ++live_;
  return EventId{(static_cast<std::uint64_t>(slots_[slot].gen) << 32) | slot};
}

void EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id.v & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id.v >> 32);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (s.gen != gen || !s.cb) return;  // stale id, already fired, or cancelled
  s.cb = nullptr;
  const std::uint32_t pos = s.pos;
  release(slot);
  remove_at(pos);
  --live_;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  HC3I_CHECK(!empty(), "pop on empty queue");
  const Entry top = heap_[0];
  Callback cb = std::move(slots_[top.slot].cb);
  slots_[top.slot].cb = nullptr;
  release(top.slot);
  remove_at(0);
  --live_;
  return {top.t, std::move(cb)};
}

}  // namespace hc3i::sim
