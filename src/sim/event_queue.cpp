#include "sim/event_queue.hpp"

namespace hc3i::sim {

EventId EventQueue::schedule(SimTime t, Callback cb) {
  HC3I_CHECK(static_cast<bool>(cb), "schedule: empty callback");
  const std::uint64_t seq = next_seq_++;
  callbacks_.push_back(std::move(cb));
  heap_.push(Entry{t, seq});
  ++live_;
  return EventId{seq};
}

void EventQueue::cancel(EventId id) {
  if (id.v >= callbacks_.size()) return;
  if (callbacks_[id.v]) {
    callbacks_[id.v] = nullptr;
    --live_;
  }
}

void EventQueue::drop_dead_top() const {
  auto* self = const_cast<EventQueue*>(this);
  while (!self->heap_.empty() && !self->callbacks_[self->heap_.top().seq]) {
    self->heap_.pop();
  }
}

SimTime EventQueue::peek_time() const {
  HC3I_CHECK(!empty(), "peek_time on empty queue");
  drop_dead_top();
  return heap_.top().t;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  HC3I_CHECK(!empty(), "pop on empty queue");
  drop_dead_top();
  const Entry top = heap_.top();
  heap_.pop();
  Callback cb = std::move(callbacks_[top.seq]);
  callbacks_[top.seq] = nullptr;
  --live_;
  return {top.t, std::move(cb)};
}

}  // namespace hc3i::sim
