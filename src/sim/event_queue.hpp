#pragma once

// Pending-event set for the discrete-event simulator.
//
// A 4-ary min-heap keyed on (time, sequence).  The sequence number makes
// ordering of simultaneous events deterministic (FIFO in scheduling order),
// which in turn makes whole simulations bit-reproducible — the property the
// regression tests and the paper-reproduction benches depend on.
//
// Callbacks live in a slab of recycled slots rather than a table that grows
// with every event ever scheduled: a 10-simulated-hour run schedules tens of
// millions of events but only keeps thousands pending, and the slab's memory
// tracks the pending set, not the total.  Each slot carries a generation
// stamp and EventId encodes (slot, generation), so an id that outlives its
// event — a timer cancelling after its own firing, or after the slot was
// recycled for a newer event — cancels nothing but is always safe.
//
// Each slot also records its entry's current heap position, so cancel()
// removes the entry immediately (O(log n) on a heap that only ever holds
// live events).  Timers cancel and re-schedule constantly (CLC periods are
// reset whenever a forced CLC commits, paper §5.2); with lazy cancellation
// the dead entries pile up and every heap operation pays for them — eager
// removal keeps the heap at the size of the genuinely pending set.

#include <cstdint>
#include <vector>

#include "sim/inline_fn.hpp"
#include "util/check.hpp"
#include "util/time.hpp"

namespace hc3i::sim {

/// Identifies a scheduled event; used to cancel it.  Packs the slab slot in
/// the low 32 bits and the slot's generation in the high 32; generations
/// start at 1, so a default-constructed id matches nothing.
struct EventId {
  std::uint64_t v{0};
  constexpr bool operator==(const EventId&) const = default;
};

/// The pending-event set.
class EventQueue {
 public:
  /// Inline capacity for event callables.  Sized for the largest capture the
  /// simulator schedules (a `this` pointer plus a shared_ptr plus a couple
  /// of scalars); callables that would not fit fail to compile rather than
  /// silently falling back to the heap (see inline_fn.hpp).
  static constexpr std::size_t kCallbackCapacity = 48;

  using Callback = InlineFn<kCallbackCapacity>;

  /// Schedule `cb` at absolute time `t`. Events at equal times fire in
  /// scheduling order. Returns an id usable with cancel().
  EventId schedule(SimTime t, Callback cb);

  /// Cancel a scheduled event. Cancelling an already-fired, already-
  /// cancelled, or otherwise stale id is a harmless no-op (timers race with
  /// their own firing; the generation stamp keeps recycled slots safe).
  void cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live events.
  std::size_t size() const { return live_; }

  /// Time of the earliest live event; REQUIRES !empty().
  SimTime peek_time() const {
    HC3I_CHECK(!empty(), "peek_time on empty queue");
    return heap_[0].t;
  }

  /// Remove and return the earliest live event's callback and time.
  /// REQUIRES !empty().
  std::pair<SimTime, Callback> pop();

  /// Total events ever scheduled (statistics).
  std::uint64_t scheduled_count() const { return next_seq_; }

  /// Size of the callback slab — tracks peak simultaneous events, not total
  /// scheduled (bounded-memory regression checks use this).
  std::size_t slot_count() const { return slots_.size(); }

 private:
  struct Entry {
    SimTime t;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  struct Slot {
    Callback cb;            ///< empty == cancelled or already fired
    std::uint32_t gen{1};   ///< bumped when the slot is recycled
    std::uint32_t pos{0};   ///< heap index of this slot's entry (while live)
  };

  /// Heap order: earliest time first, scheduling order among equals.
  static bool earlier(const Entry& a, const Entry& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Remove the entry at heap index `i`, restoring the heap invariant.
  void remove_at(std::size_t i);
  /// Recycle a slot whose heap entry has been removed.
  void release(std::uint32_t slot) {
    ++slots_[slot].gen;
    free_.push_back(slot);
  }
  /// Place `e` at heap index `i` and keep its slot's position current.
  void put(std::size_t i, const Entry& e) {
    heap_[i] = e;
    slots_[e.slot].pos = static_cast<std::uint32_t>(i);
  }

  std::vector<Entry> heap_;               ///< live entries only (4-ary heap)
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;       ///< recycled slot indices
  std::uint64_t next_seq_{0};
  std::size_t live_{0};
};

}  // namespace hc3i::sim
