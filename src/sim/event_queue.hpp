#pragma once

// Pending-event set for the discrete-event simulator.
//
// A binary heap keyed on (time, sequence).  The sequence number makes
// ordering of simultaneous events deterministic (FIFO in scheduling order),
// which in turn makes whole simulations bit-reproducible — the property the
// regression tests and the paper-reproduction benches depend on.
//
// Cancellation is O(1) lazily: a cancelled event stays in the heap and is
// skipped when popped.  Timers (CLC periods are reset whenever a forced CLC
// commits, paper §5.2) cancel and re-schedule constantly, so this matters.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/check.hpp"
#include "util/time.hpp"

namespace hc3i::sim {

/// Identifies a scheduled event; used to cancel it.
struct EventId {
  std::uint64_t v{0};
  constexpr bool operator==(const EventId&) const = default;
};

/// The pending-event set.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `t`. Events at equal times fire in
  /// scheduling order. Returns an id usable with cancel().
  EventId schedule(SimTime t, Callback cb);

  /// Cancel a scheduled event. Cancelling an already-fired or already-
  /// cancelled event is a harmless no-op (timers race with their own firing).
  void cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live events.
  std::size_t size() const { return live_; }

  /// Time of the earliest live event; REQUIRES !empty().
  SimTime peek_time() const;

  /// Remove and return the earliest live event's callback and time.
  /// REQUIRES !empty().
  std::pair<SimTime, Callback> pop();

  /// Total events ever scheduled (statistics).
  std::uint64_t scheduled_count() const { return next_seq_; }

 private:
  struct Entry {
    SimTime t;
    std::uint64_t seq;
    bool operator>(const Entry& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  // Heap holds (time, seq); payloads live in a side table so cancel() does
  // not need to touch the heap. The side table is keyed by seq.
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::vector<Callback> callbacks_;  // indexed by seq; empty fn == cancelled
  std::uint64_t next_seq_{0};
  std::size_t live_{0};

  void drop_dead_top() const;
};

}  // namespace hc3i::sim
