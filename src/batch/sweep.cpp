#include "batch/sweep.hpp"

#include <utility>

#include "config/parser.hpp"
#include "config/presets.hpp"
#include "util/check.hpp"
#include "util/quantity.hpp"

namespace hc3i::batch {

namespace {

/// Campaign for one (campaign point, topology) cell, or null for kNone.
/// Reference kinds scale with the topology; explicit plans pass through.
std::shared_ptr<const fault::Campaign> materialize(
    const CampaignPoint& point, const config::RunSpec& spec) {
  switch (point.kind) {
    case CampaignPoint::Kind::kNone:
      return nullptr;
    case CampaignPoint::Kind::kReference: {
      auto plan = std::make_shared<fault::Campaign>(
          fault::reference_scale_campaign(spec.topology.cluster_count(),
                                          spec.topology.clusters[0].nodes,
                                          spec.application.total_time));
      // The reference campaign's golden history predates concurrent
      // recoveries; it always runs in legacy serialized mode (the same
      // pinning scale_federation --faulty applies).
      plan->serialize_faults = true;
      return plan;
    }
    case CampaignPoint::Kind::kOverlap:
      return std::make_shared<fault::Campaign>(
          fault::reference_overlap_campaign(spec.topology.cluster_count(),
                                            spec.topology.clusters[0].nodes,
                                            spec.application.total_time));
    case CampaignPoint::Kind::kExplicit:
      return point.plan;
  }
  HC3I_UNREACHABLE("bad CampaignPoint::Kind");
}

/// Spec for one (topology, storage) cell: the shared base when the point is
/// inactive, otherwise a derived copy with the cost model applied to every
/// cluster and the interval / state-size overrides folded in.
std::shared_ptr<const config::RunSpec> apply_storage(
    const std::shared_ptr<const config::RunSpec>& base,
    const StoragePoint& point) {
  if (!point.active()) return base;
  auto spec = std::make_shared<config::RunSpec>(*base);
  for (auto& c : spec->topology.clusters) c.storage = point.storage;
  if (point.clc_period.ns > 0) {
    for (auto& t : spec->timers.clusters) {
      // Clusters pinned to never self-checkpoint stay pinned.
      if (!t.clc_period.is_infinite()) t.clc_period = point.clc_period;
    }
  }
  if (point.state_bytes > 0) spec->application.state_bytes = point.state_bytes;
  spec->validate();
  return spec;
}

}  // namespace

void SweepSpec::validate() const {
  HC3I_CHECK(!topologies.empty(), "sweep: no topology points");
  HC3I_CHECK(!campaigns.empty(), "sweep: no campaign points");
  HC3I_CHECK(!seeds.empty(), "sweep: no seeds");
  for (const TopologyPoint& t : topologies) {
    HC3I_CHECK(!t.name.empty(), "sweep: unnamed topology point");
    HC3I_CHECK(t.spec != nullptr,
               "sweep: topology point '" + t.name + "' has no spec");
    t.spec->validate();
  }
  for (const CampaignPoint& c : campaigns) {
    HC3I_CHECK(!c.name.empty(), "sweep: unnamed campaign point");
    if (c.kind == CampaignPoint::Kind::kExplicit) {
      HC3I_CHECK(c.plan != nullptr,
                 "sweep: explicit campaign '" + c.name + "' has no plan");
    }
    for (const TopologyPoint& t : topologies) {
      if (c.kind == CampaignPoint::Kind::kOverlap) {
        HC3I_CHECK(t.spec->topology.cluster_count() >= 4,
                   "sweep: campaign '" + c.name +
                       "' (overlap) needs >= 4 clusters; topology '" +
                       t.name + "' has fewer");
      }
      if (c.kind == CampaignPoint::Kind::kReference) {
        HC3I_CHECK(t.spec->topology.cluster_count() >= 2 &&
                       t.spec->topology.clusters[0].nodes >= 4,
                   "sweep: campaign '" + c.name +
                       "' (reference) needs >= 2 clusters of >= 4 nodes; "
                       "topology '" + t.name + "' is smaller");
      }
      if (c.plan) c.plan->validate(t.spec->topology);
    }
  }
  for (const StoragePoint& s : storage) {
    HC3I_CHECK(!s.name.empty() || !s.active(),
               "sweep: active storage point must be named");
    HC3I_CHECK(s.clc_period.ns >= 0 && !s.clc_period.is_infinite(),
               "sweep: storage point '" + s.name +
                   "' interval override must be finite and >= 0");
  }
}

std::string RunCase::name() const {
  return topology + "/" + campaign +
         (storage.empty() ? "" : "/" + storage) + " s=" +
         std::to_string(seed);
}

driver::RunOptions RunCase::options() const {
  driver::RunOptions opts;
  opts.spec = *spec;  // per-run copy; the shared original stays read-only
  opts.seed = seed;
  opts.protocol = protocol;
  if (plan) opts.campaign = *plan;
  return opts;
}

std::vector<RunCase> expand(const SweepSpec& sweep) {
  sweep.validate();
  // An empty storage axis is the implicit off point — same cases, labels
  // and shared specs as before the axis existed.
  static const std::vector<StoragePoint> kOffOnly{StoragePoint{}};
  const auto& storage_axis =
      sweep.storage.empty() ? kOffOnly : sweep.storage;
  std::vector<RunCase> cases;
  cases.reserve(sweep.runs());
  for (const TopologyPoint& topo : sweep.topologies) {
    // One derived spec per (topology, storage) cell, shared by its runs.
    std::vector<std::shared_ptr<const config::RunSpec>> specs;
    specs.reserve(storage_axis.size());
    for (const StoragePoint& sp : storage_axis) {
      specs.push_back(apply_storage(topo.spec, sp));
    }
    for (const CampaignPoint& camp : sweep.campaigns) {
      // One materialised plan per grid cell, shared by that cell's seeds.
      const auto plan = materialize(camp, *topo.spec);
      for (std::size_t si = 0; si < storage_axis.size(); ++si) {
        for (const std::uint64_t seed : sweep.seeds) {
          RunCase rc;
          rc.index = cases.size();
          rc.topology = topo.name;
          rc.campaign = camp.name;
          rc.storage = storage_axis[si].active() ? storage_axis[si].name : "";
          rc.seed = seed;
          rc.protocol = sweep.protocol;
          rc.spec = specs[si];
          rc.plan = plan;
          cases.push_back(std::move(rc));
        }
      }
    }
  }
  return cases;
}

TopologyPoint scale_topology(std::size_t clusters, std::uint32_t nodes,
                             SimTime total) {
  TopologyPoint point;
  point.name = "scale_" + std::to_string(clusters) + "x" +
               std::to_string(nodes);
  point.spec = std::make_shared<const config::RunSpec>(
      config::scale_federation_spec(clusters, nodes, total));
  return point;
}

TopologyPoint small_topology(std::size_t clusters, std::uint32_t nodes) {
  TopologyPoint point;
  point.name = "small_" + std::to_string(clusters) + "x" +
               std::to_string(nodes);
  point.spec = std::make_shared<const config::RunSpec>(
      config::small_test_spec(clusters, nodes));
  return point;
}

CampaignPoint no_campaign() {
  return CampaignPoint{"none", CampaignPoint::Kind::kNone, nullptr};
}

CampaignPoint reference_campaign() {
  return CampaignPoint{"faulty", CampaignPoint::Kind::kReference, nullptr};
}

CampaignPoint overlap_campaign() {
  return CampaignPoint{"overlap", CampaignPoint::Kind::kOverlap, nullptr};
}

CampaignPoint explicit_campaign(std::string name, fault::Campaign plan) {
  return CampaignPoint{std::move(name), CampaignPoint::Kind::kExplicit,
                       std::make_shared<const fault::Campaign>(
                           std::move(plan))};
}

StoragePoint storage_point(std::string name, config::StorageSpec storage,
                           SimTime clc_period, std::uint64_t state_bytes) {
  StoragePoint point;
  point.name = std::move(name);
  point.storage = storage;
  point.clc_period = clc_period;
  point.state_bytes = state_bytes;
  return point;
}

namespace {

using config::ParseError;
using config::Section;

[[noreturn]] void fail(const std::string& origin, int line,
                       const std::string& what) {
  throw ParseError(origin + ":" + std::to_string(line) + ": " + what);
}

std::uint64_t want_uint(const Section& sec, const std::string& origin,
                        const std::string& key, std::uint64_t def) {
  const auto it = sec.values.find(key);
  if (it == sec.values.end()) return def;
  const auto v = parse_uint(it->second);
  if (!v) fail(origin, sec.line, "bad " + key + " '" + it->second + "'");
  return *v;
}

driver::ProtocolKind parse_protocol(const std::string& name,
                                    const std::string& origin, int line) {
  if (name == "hc3i") return driver::ProtocolKind::kHc3i;
  if (name == "independent") return driver::ProtocolKind::kIndependent;
  if (name == "coordinated-global") {
    return driver::ProtocolKind::kCoordinatedGlobal;
  }
  if (name == "pessimistic-log") return driver::ProtocolKind::kPessimisticLog;
  if (name == "hierarchical-coordinated") {
    return driver::ProtocolKind::kHierarchicalCoordinated;
  }
  fail(origin, line, "unknown protocol '" + name + "'");
}

}  // namespace

std::vector<std::uint64_t> parse_seed_list(const std::string& text,
                                           const std::string& origin) {
  std::vector<std::uint64_t> seeds;
  const std::size_t dots = text.find("..");
  if (dots != std::string::npos) {
    const auto lo = parse_uint(text.substr(0, dots));
    const auto hi = parse_uint(text.substr(dots + 2));
    if (!lo || !hi || *hi < *lo) {
      throw ParseError(origin + ": bad seed range '" + text + "'");
    }
    for (std::uint64_t s = *lo; s <= *hi; ++s) seeds.push_back(s);
    return seeds;
  }
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string tok = text.substr(
        pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) {
      const auto v = parse_uint(tok);
      if (!v) throw ParseError(origin + ": bad seed '" + tok + "'");
      seeds.push_back(*v);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (seeds.empty()) {
    throw ParseError(origin + ": empty seed list '" + text + "'");
  }
  return seeds;
}

SweepSpec parse_sweep(std::string_view text, const std::string& origin) {
  SweepSpec sweep;
  bool saw_sweep = false;
  for (const Section& sec : config::parse_sections(text, origin)) {
    if (sec.name == "sweep") {
      if (saw_sweep) fail(origin, sec.line, "duplicate [sweep] section");
      saw_sweep = true;
      for (const auto& [key, value] : sec.values) {
        if (key == "seeds") {
          sweep.seeds = parse_seed_list(
              value, origin + ":" + std::to_string(sec.line));
        } else if (key == "protocol") {
          sweep.protocol = parse_protocol(value, origin, sec.line);
        } else {
          fail(origin, sec.line, "unknown [sweep] key '" + key + "'");
        }
      }
    } else if (sec.name == "topology") {
      if (sec.args.size() != 1) {
        fail(origin, sec.line, "[topology] wants exactly one name argument");
      }
      const std::string preset =
          sec.values.count("preset") ? sec.values.at("preset") : "scale";
      const auto clusters =
          static_cast<std::size_t>(want_uint(sec, origin, "clusters", 2));
      const auto nodes =
          static_cast<std::uint32_t>(want_uint(sec, origin, "nodes", 100));
      if (clusters < 1 || nodes < 1) {
        fail(origin, sec.line, "clusters and nodes must be >= 1");
      }
      for (const auto& [key, value] : sec.values) {
        (void)value;
        if (key != "preset" && key != "clusters" && key != "nodes" &&
            key != "minutes") {
          fail(origin, sec.line, "unknown [topology] key '" + key + "'");
        }
      }
      TopologyPoint point;
      if (preset == "scale") {
        point = scale_topology(
            clusters, nodes,
            minutes(static_cast<std::int64_t>(
                want_uint(sec, origin, "minutes", 30))));
      } else if (preset == "small") {
        point = small_topology(clusters, nodes);
        if (sec.values.count("minutes")) {
          auto spec = std::make_shared<config::RunSpec>(*point.spec);
          spec->application.total_time = minutes(static_cast<std::int64_t>(
              want_uint(sec, origin, "minutes", 30)));
          point.spec = std::move(spec);
        }
      } else {
        fail(origin, sec.line, "unknown topology preset '" + preset +
                                   "' (known: scale, small)");
      }
      point.name = sec.args[0];
      sweep.topologies.push_back(std::move(point));
    } else if (sec.name == "campaign") {
      if (sec.args.size() != 1) {
        fail(origin, sec.line, "[campaign] wants exactly one name argument");
      }
      const auto it = sec.values.find("kind");
      if (it == sec.values.end()) {
        fail(origin, sec.line, "[campaign] needs kind = none|reference|"
                               "overlap");
      }
      for (const auto& [key, value] : sec.values) {
        (void)value;
        if (key != "kind") {
          fail(origin, sec.line, "unknown [campaign] key '" + key + "'");
        }
      }
      CampaignPoint point;
      if (it->second == "none") {
        point = no_campaign();
      } else if (it->second == "reference") {
        point = reference_campaign();
      } else if (it->second == "overlap") {
        point = overlap_campaign();
      } else {
        fail(origin, sec.line, "unknown campaign kind '" + it->second +
                                   "' (known: none, reference, overlap)");
      }
      point.name = sec.args[0];
      sweep.campaigns.push_back(std::move(point));
    } else if (sec.name == "storage") {
      if (sec.args.size() != 1) {
        fail(origin, sec.line, "[storage] wants exactly one name argument");
      }
      StoragePoint point;
      point.name = sec.args[0];
      for (const auto& [key, value] : sec.values) {
        if (key == "kind") {
          if (value == "local-disk") {
            point.storage.kind = config::StorageSpec::Kind::kLocalDisk;
          } else if (value == "striped-remote") {
            point.storage.kind = config::StorageSpec::Kind::kStripedRemote;
          } else if (value == "none") {
            point.storage.kind = config::StorageSpec::Kind::kNone;
          } else {
            fail(origin, sec.line, "unknown storage kind '" + value + "'");
          }
        } else if (key == "latency") {
          const auto v = parse_duration(value);
          if (!v) fail(origin, sec.line, "bad latency '" + value + "'");
          point.storage.latency = *v;
        } else if (key == "write_bandwidth" || key == "read_bandwidth") {
          const auto v = parse_bandwidth(value);
          if (!v) fail(origin, sec.line, "bad " + key + " '" + value + "'");
          (key[0] == 'w' ? point.storage.write_bytes_per_sec
                         : point.storage.read_bytes_per_sec) = *v;
        } else if (key == "stripe_width") {
          point.storage.stripe_width = static_cast<std::uint32_t>(
              want_uint(sec, origin, "stripe_width", 4));
        } else if (key == "incremental") {
          point.storage.incremental =
              want_uint(sec, origin, "incremental", 1) != 0;
        } else if (key == "interval") {
          const auto v = parse_duration(value);
          if (!v) fail(origin, sec.line, "bad interval '" + value + "'");
          point.clc_period = *v;
        } else if (key == "state_size") {
          const auto v = parse_bytes(value);
          if (!v) fail(origin, sec.line, "bad state_size '" + value + "'");
          point.state_bytes = *v;
        } else {
          fail(origin, sec.line, "unknown [storage] key '" + key + "'");
        }
      }
      sweep.storage.push_back(std::move(point));
    } else {
      fail(origin, sec.line, "unknown section [" + sec.name +
                                 "] (known: sweep, topology, campaign, "
                                 "storage)");
    }
  }
  if (sweep.seeds.empty()) sweep.seeds = {1};
  if (sweep.campaigns.empty()) sweep.campaigns = {no_campaign()};
  if (sweep.topologies.empty()) {
    throw ParseError(origin + ": sweep defines no [topology] points");
  }
  try {
    sweep.validate();
  } catch (const CheckFailure& e) {
    throw ParseError(origin + ": " + e.what());
  }
  return sweep;
}

}  // namespace hc3i::batch
