#pragma once

// Sharded execution of a sweep grid.
//
// Runner::run() expands the grid and shards the runs across N worker
// threads.  Each worker owns its full simulation context (a
// driver::SimContext — payload arena today, every future worker-scoped
// resource tomorrow) and executes whole runs pulled from a shared atomic
// cursor; the only cross-thread traffic is that cursor, the immutable
// shared specs/plans, and each case's result slot (disjoint per case,
// written before the join).  No simulation state is shared, nothing inside
// a run is atomic, and per-run results are byte-identical to solo
// single-threaded runs of the same (spec, seed) regardless of shard count
// or interleaving — tests/batch_test.cpp pins that property and the TSan
// CI job watches the no-sharing claim.

#include <cstddef>
#include <string>
#include <vector>

#include "batch/report.hpp"
#include "batch/sweep.hpp"
#include "util/time.hpp"

namespace hc3i::batch {

/// Runner knobs.
struct RunnerOptions {
  /// Worker thread count; 0 = one per hardware thread.
  std::size_t threads{0};
  /// Retain each run's full counter dump in its CaseResult (the
  /// shard-isolation tests and the determinism grid byte-compare these).
  bool keep_dumps{false};
  /// When non-empty, every case runs with the structured trace on and
  /// writes `<obs_dir>/case<index>.trace.json` (plus
  /// `case<index>.metrics.tsv` when `obs_metrics_interval` is non-zero).
  /// Paths are keyed by the case's grid index, so concurrent workers write
  /// disjoint files; contents are byte-identical across shard counts
  /// because the runs themselves are.
  std::string obs_dir;
  /// Metrics sampling period for obs_dir cases (zero = trace only).
  SimTime obs_metrics_interval{SimTime::zero()};
};

/// Shards a sweep's runs across worker threads, each with its own
/// SimContext.
class Runner {
 public:
  explicit Runner(RunnerOptions opts = {}) : opts_(opts) {}

  /// Expand and execute the whole grid; blocks until every run finished.
  /// A run that throws (consistency violation, campaign rejection) becomes
  /// a failed CaseResult, never tears down the batch.
  BatchReport run(const SweepSpec& sweep) const;

  /// Execute pre-expanded cases (the grid order of `cases` is the report
  /// order).
  BatchReport run(const std::vector<RunCase>& cases) const;

 private:
  RunnerOptions opts_;
};

}  // namespace hc3i::batch
