#include "batch/report.hpp"

#include <cstdio>
#include <map>
#include <utility>

namespace hc3i::batch {

namespace {

/// printf into a growing string (the repo's tables are printf-formatted).
template <typename... Args>
void appendf(std::string* out, const char* fmt, Args... args) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  *out += buf;
}

/// Escape the few characters a CheckFailure message could smuggle into a
/// JSON string.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          appendf(&out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::uint64_t BatchReport::total_events() const {
  std::uint64_t n = 0;
  for (const CaseResult& c : cases) n += c.events;
  return n;
}

std::size_t BatchReport::failures() const {
  std::size_t n = 0;
  for (const CaseResult& c : cases) {
    if (!c.ok) ++n;
  }
  return n;
}

double BatchReport::runs_per_min() const {
  return wall_sec > 0 ? 60.0 * static_cast<double>(cases.size()) / wall_sec
                      : 0.0;
}

std::string BatchReport::render_table() const {
  // Aggregate per (topology, campaign) cell, in first-appearance (grid)
  // order.
  struct Key {
    std::string topology, campaign, storage;
    bool operator==(const Key&) const = default;
  };
  struct Cell {
    std::size_t runs{0};
    std::uint64_t events{0};
    double wall_sec{0.0};
    std::uint64_t clcs{0}, faults{0}, rollbacks{0}, replayed{0};
    std::uint64_t ckpt_bytes{0}, ckpt_stall_us{0};
    std::size_t failed{0};
  };
  // The storage column (and the per-cell split by storage point) appears
  // only when some case actually ran on the storage axis — sweeps without
  // it render byte-identically to the pre-axis format.
  bool any_storage = false;
  for (const CaseResult& c : cases) any_storage |= !c.storage.empty();
  std::vector<std::pair<Key, Cell>> cells;
  for (const CaseResult& c : cases) {
    const Key key{c.topology, c.campaign, c.storage};
    Cell* cell = nullptr;
    for (auto& [k, v] : cells) {
      if (k == key) {
        cell = &v;
        break;
      }
    }
    if (!cell) {
      cells.emplace_back(key, Cell{});
      cell = &cells.back().second;
    }
    ++cell->runs;
    cell->events += c.events;
    cell->wall_sec += c.wall_sec;
    cell->clcs += c.clcs;
    cell->faults += c.faults;
    cell->rollbacks += c.rollbacks;
    cell->replayed += c.replayed;
    cell->ckpt_bytes += c.ckpt_bytes;
    cell->ckpt_stall_us += c.ckpt_stall_us;
    if (!c.ok) ++cell->failed;
  }

  std::string out;
  if (any_storage) {
    appendf(&out, "%-16s %-10s %-12s %5s %12s %11s %7s %7s %7s %7s %12s "
                  "%9s %6s\n",
            "topology", "campaign", "storage", "runs", "events", "ev/s",
            "clcs", "faults", "rb", "replay", "ckpt bytes", "stall s",
            "fail");
  } else {
    appendf(&out, "%-16s %-10s %5s %12s %11s %7s %7s %7s %7s %6s\n",
            "topology", "campaign", "runs", "events", "ev/s", "clcs",
            "faults", "rb", "replay", "fail");
  }
  for (const auto& [key, cell] : cells) {
    if (any_storage) {
      appendf(&out,
              "%-16s %-10s %-12s %5zu %12llu %11.0f %7llu %7llu %7llu %7llu "
              "%12llu %9.2f %6zu\n",
              key.topology.c_str(), key.campaign.c_str(),
              key.storage.empty() ? "off" : key.storage.c_str(), cell.runs,
              static_cast<unsigned long long>(cell.events),
              cell.wall_sec > 0
                  ? static_cast<double>(cell.events) / cell.wall_sec
                  : 0.0,
              static_cast<unsigned long long>(cell.clcs),
              static_cast<unsigned long long>(cell.faults),
              static_cast<unsigned long long>(cell.rollbacks),
              static_cast<unsigned long long>(cell.replayed),
              static_cast<unsigned long long>(cell.ckpt_bytes),
              static_cast<double>(cell.ckpt_stall_us) * 1e-6, cell.failed);
    } else {
      appendf(&out, "%-16s %-10s %5zu %12llu %11.0f %7llu %7llu %7llu %7llu "
                    "%6zu\n",
              key.topology.c_str(), key.campaign.c_str(), cell.runs,
              static_cast<unsigned long long>(cell.events),
              cell.wall_sec > 0
                  ? static_cast<double>(cell.events) / cell.wall_sec
                  : 0.0,
              static_cast<unsigned long long>(cell.clcs),
              static_cast<unsigned long long>(cell.faults),
              static_cast<unsigned long long>(cell.rollbacks),
              static_cast<unsigned long long>(cell.replayed), cell.failed);
    }
  }
  std::uint64_t reused = 0, fresh = 0;
  for (const WorkerStats& w : workers) {
    reused += w.pool_reused;
    fresh += w.pool_fresh;
  }
  const double reuse_pct =
      reused + fresh > 0
          ? 100.0 * static_cast<double>(reused) /
                static_cast<double>(reused + fresh)
          : 0.0;
  appendf(&out,
          "\n%zu runs on %zu thread%s in %.2f s — %.1f runs/min, %llu "
          "events, pool reuse %.1f%%\n",
          cases.size(), threads, threads == 1 ? "" : "s", wall_sec,
          runs_per_min(), static_cast<unsigned long long>(total_events()),
          reuse_pct);
  const std::size_t failed = failures();
  if (failed > 0) {
    appendf(&out, "%zu FAILED case%s:\n", failed, failed == 1 ? "" : "s");
    for (const CaseResult& c : cases) {
      if (c.ok) continue;
      const std::string label =
          c.topology + "/" + c.campaign +
          (c.storage.empty() ? "" : "/" + c.storage);
      appendf(&out, "  %s s=%llu: %s\n", label.c_str(),
              static_cast<unsigned long long>(c.seed),
              c.error.empty()
                  ? (std::to_string(c.violations) + " consistency violations")
                        .c_str()
                  : c.error.c_str());
    }
  }
  return out;
}

std::string BatchReport::to_json() const {
  std::string out = "{\n";
  appendf(&out,
          "  \"threads\": %zu,\n  \"runs\": %zu,\n  \"failures\": %zu,\n"
          "  \"wall_sec\": %.6f,\n  \"runs_per_min\": %.2f,\n"
          "  \"total_events\": %llu,\n",
          threads, cases.size(), failures(), wall_sec, runs_per_min(),
          static_cast<unsigned long long>(total_events()));
  out += "  \"workers\": [\n";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerStats& w = workers[i];
    appendf(&out,
            "    {\"runs\": %zu, \"wall_sec\": %.6f, \"pool_reused\": %llu, "
            "\"pool_fresh\": %llu}%s\n",
            w.runs, w.wall_sec, static_cast<unsigned long long>(w.pool_reused),
            static_cast<unsigned long long>(w.pool_fresh),
            i + 1 < workers.size() ? "," : "");
  }
  out += "  ],\n  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    // Storage fields only for cases on the storage axis, so sweeps without
    // it emit the pre-axis JSON byte-for-byte.
    std::string storage_fields;
    if (!c.storage.empty()) {
      appendf(&storage_fields,
              "\"storage\": \"%s\", \"ckpt_bytes\": %llu, "
              "\"ckpt_saved\": %llu, \"ckpt_stall_us\": %llu, "
              "\"recovery_read_us\": %llu, \"lost_work_s\": %.3f, ",
              json_escape(c.storage).c_str(),
              static_cast<unsigned long long>(c.ckpt_bytes),
              static_cast<unsigned long long>(c.ckpt_saved),
              static_cast<unsigned long long>(c.ckpt_stall_us),
              static_cast<unsigned long long>(c.recovery_read_us),
              c.lost_work_s);
    }
    appendf(&out,
            "    {\"topology\": \"%s\", \"campaign\": \"%s\", %s\"seed\": "
            "%llu, "
            "\"ok\": %s, \"events\": %llu, \"violations\": %llu, "
            "\"clcs\": %llu, \"faults\": %llu, \"rollbacks\": %llu, "
            "\"replayed\": %llu, \"wall_sec\": %.6f%s%s%s}%s\n",
            json_escape(c.topology).c_str(), json_escape(c.campaign).c_str(),
            storage_fields.c_str(),
            static_cast<unsigned long long>(c.seed), c.ok ? "true" : "false",
            static_cast<unsigned long long>(c.events),
            static_cast<unsigned long long>(c.violations),
            static_cast<unsigned long long>(c.clcs),
            static_cast<unsigned long long>(c.faults),
            static_cast<unsigned long long>(c.rollbacks),
            static_cast<unsigned long long>(c.replayed), c.wall_sec,
            c.error.empty() ? "" : ", \"error\": \"",
            c.error.empty() ? "" : json_escape(c.error).c_str(),
            c.error.empty() ? "" : "\"", i + 1 < cases.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace hc3i::batch
