#include "batch/runner.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <utility>

#include "driver/run.hpp"
#include "driver/sim_context.hpp"
#include "obs/export.hpp"
#include "util/walltime.hpp"

namespace hc3i::batch {

namespace {

using util::now_sec;

/// Execute one grid cell inside the worker's context.
CaseResult run_case(const RunCase& rc, driver::SimContext& ctx,
                    const RunnerOptions& ropts) {
  CaseResult cr;
  cr.index = rc.index;
  cr.topology = rc.topology;
  cr.campaign = rc.campaign;
  cr.storage = rc.storage;
  cr.seed = rc.seed;
  const double t0 = now_sec();
  try {
    driver::RunOptions opts = rc.options();
    // Violations become a failed CaseResult, not an exception: one sick
    // grid cell must not abort its worker's remaining runs.
    opts.validate = false;
    if (!ropts.obs_dir.empty()) {
      opts.trace = true;
      opts.metrics_interval = ropts.obs_metrics_interval;
    }
    const driver::RunResult result = driver::run_simulation(opts, ctx);
    if (!ropts.obs_dir.empty() && result.obs != nullptr) {
      // Disjoint per case (keyed by grid index), so workers never race on a
      // path no matter how the cursor interleaves.
      const std::string base =
          ropts.obs_dir + "/case" + std::to_string(rc.index);
      if (!obs::write_text_file(base + ".trace.json",
                                obs::trace_json(*result.obs))) {
        cr.error = "cannot write " + base + ".trace.json";
      }
      if (ropts.obs_metrics_interval != SimTime::zero() &&
          !obs::write_text_file(base + ".metrics.tsv",
                                obs::metrics_tsv(*result.obs))) {
        cr.error = "cannot write " + base + ".metrics.tsv";
      }
    }
    cr.events = result.events_executed;
    cr.violations = result.violations.size();
    for (std::size_t c = 0; c < rc.spec->topology.cluster_count(); ++c) {
      cr.clcs += result.clc_total(ClusterId{static_cast<std::uint32_t>(c)});
    }
    cr.faults = result.counter("fault.injected");
    cr.rollbacks = result.counter("rollback.count");
    cr.replayed = result.counter("log.resent_msgs");
    cr.ckpt_bytes = result.counter("ckpt.bytes_written");
    cr.ckpt_saved = result.counter("ckpt.bytes_delta_saved");
    cr.ckpt_stall_us = result.counter("ckpt.stall_us");
    cr.recovery_read_us = result.counter("recovery.read_us");
    cr.lost_work_s = result.registry.summary("rollback.lost_work_s").sum();
    if (ropts.keep_dumps) cr.dump = result.registry.dump();
    cr.ok = cr.violations == 0 && cr.error.empty();
  } catch (const std::exception& e) {
    cr.ok = false;
    cr.error = e.what();
  }
  cr.wall_sec = now_sec() - t0;
  return cr;
}

}  // namespace

BatchReport Runner::run(const SweepSpec& sweep) const {
  return run(expand(sweep));
}

BatchReport Runner::run(const std::vector<RunCase>& cases) const {
  std::size_t threads = opts_.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads > cases.size() && !cases.empty()) threads = cases.size();
  if (threads == 0) threads = 1;

  BatchReport report;
  report.threads = threads;
  report.cases.resize(cases.size());
  report.workers.resize(threads);

  // Work distribution: a shared claim cursor, whole runs at a time.  Runs
  // vary in cost by orders of magnitude across topologies, so dynamic
  // claiming beats static striping; grid order still governs the report
  // because results land in their case's slot, not in completion order.
  std::atomic<std::size_t> next{0};
  const RunnerOptions& ropts = opts_;
  const double t0 = now_sec();

  const auto worker = [&](std::size_t widx) {
    // The whole point of the PR: this context — pools and all — is this
    // worker's alone, reused across every run it claims.
    driver::SimContext ctx;
    WorkerStats ws;
    const double w0 = now_sec();
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= cases.size()) break;
      report.cases[i] = run_case(cases[i], ctx, ropts);
      ++ws.runs;
    }
    ws.wall_sec = now_sec() - w0;
    ws.pool_reused = ctx.arena().reused_blocks();
    ws.pool_fresh = ctx.arena().fresh_blocks();
    report.workers[widx] = ws;
  };

  if (threads == 1) {
    // Degenerate shard count: run on the calling thread (same code path,
    // no scheduler in the loop — the solo-comparison baseline).
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) {
      pool.emplace_back(worker, w);
    }
    for (std::thread& t : pool) t.join();
  }
  report.wall_sec = now_sec() - t0;
  return report;
}

}  // namespace hc3i::batch
