#pragma once

// Parameter sweeps as data: a topology x campaign x seed grid.
//
// The paper evaluates HC3I at a handful of hand-picked configurations; its
// real claims (checkpoint-interval economics, recovery cost vs cluster
// count) only become visible over grids of runs at identical seeds — the
// CIC retrospective's methodology (PAPERS.md).  A SweepSpec is the
// declarative form of such a grid: named topology points (full RunSpecs,
// shared read-only across shards), named campaign points (a fault-plan
// *kind*, materialised per topology since the reference campaigns scale
// with the federation), and a seed list.  expand() produces the cross
// product as RunCases that batch::Runner shards across worker threads.
//
// Everything in a RunCase that two shards could touch concurrently is
// immutable and held behind shared_ptr<const>: the specs and the
// materialised campaigns.  Mutable state (registries, pools, RNG streams,
// COW refcounts) is created per run inside the worker that executes it —
// see driver/sim_context.hpp for the ownership rule.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "config/spec.hpp"
#include "driver/run.hpp"
#include "fault/campaign.hpp"
#include "util/time.hpp"

namespace hc3i::batch {

/// One topology-axis point: a named, immutable RunSpec shared read-only by
/// every shard that runs it.
struct TopologyPoint {
  std::string name;
  std::shared_ptr<const config::RunSpec> spec;
};

/// One campaign-axis point.  Reference kinds are materialised per topology
/// at expand() time (their shape scales with cluster count and horizon);
/// kExplicit carries a user-supplied plan validated against each topology.
struct CampaignPoint {
  enum class Kind : std::uint8_t {
    kNone,       ///< failure-free
    kReference,  ///< fault::reference_scale_campaign, legacy serialized mode
    kOverlap,    ///< fault::reference_overlap_campaign (needs >= 4 clusters)
    kExplicit,   ///< `plan` as given
  };
  std::string name;
  Kind kind{Kind::kNone};
  std::shared_ptr<const fault::Campaign> plan;  ///< kExplicit only
};

/// One storage-axis point: a checkpoint-storage cost model plus optional
/// overrides of the two knobs the optimal-interval question couples it to —
/// the CLC period (checkpoint interval) and the process state size
/// (checkpoint size).  Zero overrides keep the topology point's values.
/// An inactive point (the default) is the implicit "storage off" cell:
/// RunCase labels and reports stay exactly as before the axis existed.
struct StoragePoint {
  std::string name;                      ///< "" only for the implicit off point
  config::StorageSpec storage;           ///< kNone = costs stay unmodelled
  SimTime clc_period{SimTime::zero()};   ///< 0 = keep the topology's timers
  std::uint64_t state_bytes{0};          ///< 0 = keep the spec's state size

  bool active() const {
    return storage.enabled() || clc_period.ns > 0 || state_bytes > 0;
  }
};

/// The declarative grid.
struct SweepSpec {
  std::vector<TopologyPoint> topologies;
  std::vector<CampaignPoint> campaigns;
  /// Storage axis; empty means a single implicit storage-off point.
  std::vector<StoragePoint> storage;
  std::vector<std::uint64_t> seeds;
  driver::ProtocolKind protocol{driver::ProtocolKind::kHc3i};

  /// Grid cardinality (runs the sweep will execute).
  std::size_t runs() const {
    return topologies.size() * campaigns.size() *
           (storage.empty() ? 1 : storage.size()) * seeds.size();
  }

  /// Structural validation: non-empty axes, named points, specs present and
  /// self-consistent, explicit campaigns valid against every topology.
  /// Throws CheckFailure on the first problem.
  void validate() const;
};

/// One expanded grid cell, ready to execute on any shard.
struct RunCase {
  std::size_t index{0};  ///< dense grid index (aggregation order)
  std::string topology;
  std::string campaign;
  std::string storage;  ///< storage-point name; "" = storage off
  std::uint64_t seed{1};
  driver::ProtocolKind protocol{driver::ProtocolKind::kHc3i};
  std::shared_ptr<const config::RunSpec> spec;
  std::shared_ptr<const fault::Campaign> plan;  ///< null = failure-free

  /// "topology/campaign s=seed" — row label in reports; an active storage
  /// point appends "/storage" after the campaign.
  std::string name() const;

  /// Materialise driver options (copies the spec into the per-run options,
  /// exactly like a solo run would; the shared original stays untouched).
  driver::RunOptions options() const;
};

/// Cross-product expansion in grid order: topology-major, then campaign,
/// then seed.  Validates the sweep first.
std::vector<RunCase> expand(const SweepSpec& sweep);

// --- axis-point builders ----------------------------------------------------

/// Scale-out ring topology point (config::scale_federation_spec).
TopologyPoint scale_topology(std::size_t clusters, std::uint32_t nodes,
                             SimTime total);

/// Small chatty test topology point (config::small_test_spec).
TopologyPoint small_topology(std::size_t clusters, std::uint32_t nodes);

/// Named campaign-kind points.
CampaignPoint no_campaign();
CampaignPoint reference_campaign();
CampaignPoint overlap_campaign();
/// Explicit plan under `name`.
CampaignPoint explicit_campaign(std::string name, fault::Campaign plan);

/// Storage-axis point: cost model plus optional interval / state-size
/// overrides (zero keeps the topology point's values).
StoragePoint storage_point(std::string name, config::StorageSpec storage,
                           SimTime clc_period = SimTime::zero(),
                           std::uint64_t state_bytes = 0);

// --- the sweep config kind --------------------------------------------------

/// Parse a sweep file (the fourth config kind next to topology /
/// application / timers / campaign; same INI dialect via
/// config::parse_sections).  Throws config::ParseError with file/line
/// context on any problem.
///
///   [sweep]               protocol = hc3i     seeds = 1..5
///   [topology small2]     preset = small      clusters = 2   nodes = 4
///   [topology ring]       preset = scale      clusters = 10  nodes = 100
///                         minutes = 30
///   [campaign none]       kind = none
///   [campaign faulty]     kind = reference
///   [campaign overlap]    kind = overlap
///   [storage striped]     kind = striped-remote   write_bandwidth = 200MB/s
///                         interval = 5m           state_size = 8MiB
///
/// `seeds` accepts an inclusive range "lo..hi" or a comma list "1,3,9".
/// [storage] keys: kind (local-disk | striped-remote), latency,
/// write_bandwidth, read_bandwidth, stripe_width, incremental (0/1),
/// interval (CLC-period override), state_size (per-process state override).
SweepSpec parse_sweep(std::string_view text,
                      const std::string& origin = "<sweep>");

/// The seed-list syntax on its own ("lo..hi" or "a,b,c"), shared by the
/// sweep file's `seeds` key and the CLI's --seeds flag.  Throws
/// config::ParseError on malformed input.
std::vector<std::uint64_t> parse_seed_list(const std::string& text,
                                           const std::string& origin =
                                               "<seeds>");

}  // namespace hc3i::batch
