#pragma once

// Aggregated results of a sharded sweep.
//
// Workers stream one CaseResult per run into the report's grid-ordered slot
// vector; rendering happens after the join, so the table and the JSON are
// independent of which worker ran which case and in what order — the same
// schedule-independence contract the per-run counter dumps obey.

#include <cstdint>
#include <string>
#include <vector>

namespace hc3i::batch {

/// Outcome of one grid cell's run.
struct CaseResult {
  std::size_t index{0};
  std::string topology;
  std::string campaign;
  std::string storage;  ///< storage-point label; "" = storage off
  std::uint64_t seed{1};
  bool ok{false};
  std::string error;  ///< CheckFailure text when the run threw

  std::uint64_t events{0};
  std::uint64_t violations{0};
  std::uint64_t clcs{0};       ///< committed CLCs across clusters
  std::uint64_t faults{0};     ///< injected failures
  std::uint64_t rollbacks{0};  ///< cluster rollbacks (cascades included)
  std::uint64_t replayed{0};   ///< logged messages re-sent
  std::uint64_t ckpt_bytes{0};        ///< checkpoint bytes written to storage
  std::uint64_t ckpt_saved{0};        ///< bytes incremental capture saved
  std::uint64_t ckpt_stall_us{0};     ///< node-us stalled on capture writes
  std::uint64_t recovery_read_us{0};  ///< us reading chains on recovery
  double lost_work_s{0.0};            ///< node-seconds recomputed
  double wall_sec{0.0};

  /// Full registry dump (RunnerOptions::keep_dumps only): byte-identical to
  /// the --dump-counters output of a solo run of the same (spec, seed).
  std::string dump;
};

/// Per-worker execution stats (shard telemetry, not simulation results).
struct WorkerStats {
  std::size_t runs{0};
  double wall_sec{0.0};
  std::uint64_t pool_reused{0};  ///< payload blocks served from the warm pool
  std::uint64_t pool_fresh{0};   ///< payload blocks that hit the heap
};

/// Everything one Runner::run() produced.
struct BatchReport {
  std::vector<CaseResult> cases;    ///< grid order (RunCase::index)
  std::vector<WorkerStats> workers; ///< worker 0..threads-1
  std::size_t threads{1};
  double wall_sec{0.0};

  std::uint64_t total_events() const;
  std::size_t failures() const;  ///< cases with violations or an error
  double runs_per_min() const;

  /// Human-readable aggregate: one row per (topology, campaign) cell plus a
  /// throughput footer.
  std::string render_table() const;

  /// Machine-readable form: aggregate header, per-worker stats, and one
  /// object per case (without the counter dumps).
  std::string to_json() const;
};

}  // namespace hc3i::batch
