#include "proto/msg_log.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hc3i::proto {

void MsgLog::add(const net::Envelope& env) {
  HC3I_CHECK(!env.intra_cluster(), "MsgLog: only inter-cluster messages are logged");
  entries_.push_back(LogEntry{env, false, 0, 0});
}

void MsgLog::record_ack(MsgId id, SeqNum ack_sn, Incarnation ack_inc) {
  for (auto& e : entries_) {
    if (e.env.id == id) {
      e.acked = true;
      e.ack_sn = ack_sn;
      e.ack_inc = ack_inc;
      return;
    }
  }
}

std::vector<net::Envelope> MsgLog::take_resends(ClusterId dst,
                                                SeqNum restored_sn,
                                                Incarnation new_inc) {
  std::vector<net::Envelope> out;
  auto needs_resend = [&](const LogEntry& e) {
    if (e.env.dst_cluster != dst) return false;
    if (!e.acked) return true;
    // An ack from the new (post-rollback) incarnation proves the delivery
    // happened into the restored execution — it survives.
    if (e.ack_inc >= new_inc) return false;
    // Pre-rollback ack: the delivery survives only if it happened in an
    // epoch strictly before the restored checkpoint.
    return e.ack_sn >= restored_sn;
  };
  for (const auto& e : entries_) {
    if (needs_resend(e)) out.push_back(e.env);
  }
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(), needs_resend),
                 entries_.end());
  return out;
}

std::size_t MsgLog::truncate_from(SeqNum restored_sn) {
  const auto undone = [&](const LogEntry& e) {
    return e.env.piggy.sn >= restored_sn;
  };
  const std::size_t before = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(), undone),
                 entries_.end());
  return before - entries_.size();
}

std::size_t MsgLog::prune(ClusterId dst, SeqNum min_sn) {
  const auto stable = [&](const LogEntry& e) {
    return e.env.dst_cluster == dst && e.acked && e.ack_sn < min_sn;
  };
  const std::size_t before = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(), stable),
                 entries_.end());
  return before - entries_.size();
}

std::size_t MsgLog::unacked_count() const {
  std::size_t n = 0;
  for (const auto& e : entries_) n += e.acked ? 0 : 1;
  return n;
}

std::uint64_t MsgLog::bytes() const {
  std::uint64_t total = 0;
  for (const auto& e : entries_) {
    total += e.env.wire_bytes() + sizeof(SeqNum) + sizeof(Incarnation);
  }
  return total;
}

}  // namespace hc3i::proto
