#include "proto/msg_log.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hc3i::proto {

void MsgLog::add(const net::Envelope& env) {
  HC3I_CHECK(!env.intra_cluster(), "MsgLog: only inter-cluster messages are logged");
  HC3I_CHECK(entries_.empty() || entries_.back().env.id.v < env.id.v,
             "MsgLog: sends must arrive in MsgId order");
  entries_.push_back(LogEntry{env, false, 0, 0});
  ++unacked_;
}

void MsgLog::record_ack(MsgId id, SeqNum ack_sn, Incarnation ack_inc) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const LogEntry& e, MsgId target) { return e.env.id.v < target.v; });
  if (it == entries_.end() || !(it->env.id == id)) return;
  if (!it->acked) --unacked_;
  it->acked = true;
  it->ack_sn = ack_sn;
  it->ack_inc = ack_inc;
}

std::vector<net::Envelope> MsgLog::take_resends(ClusterId dst,
                                                SeqNum restored_sn,
                                                Incarnation new_inc) {
  std::vector<net::Envelope> out;
  auto needs_resend = [&](const LogEntry& e) {
    if (e.env.dst_cluster != dst) return false;
    if (!e.acked) return true;
    // An ack from the new (post-rollback) incarnation proves the delivery
    // happened into the restored execution — it survives.
    if (e.ack_inc >= new_inc) return false;
    // Pre-rollback ack: the delivery survives only if it happened in an
    // epoch strictly before the restored checkpoint.
    return e.ack_sn >= restored_sn;
  };
  for (const auto& e : entries_) {
    if (needs_resend(e)) out.push_back(e.env);
  }
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(), needs_resend),
                 entries_.end());
  recount_unacked();
  return out;
}

std::size_t MsgLog::truncate_from(SeqNum restored_sn) {
  const auto undone = [&](const LogEntry& e) {
    return e.env.piggy.sn >= restored_sn;
  };
  const std::size_t before = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(), undone),
                 entries_.end());
  recount_unacked();
  return before - entries_.size();
}

std::size_t MsgLog::prune(ClusterId dst, SeqNum min_sn) {
  const auto stable = [&](const LogEntry& e) {
    return e.env.dst_cluster == dst && e.acked && e.ack_sn < min_sn;
  };
  const std::size_t before = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(), stable),
                 entries_.end());
  // Pruned entries were all acked, so unacked_ is unchanged.
  return before - entries_.size();
}

void MsgLog::recount_unacked() {
  unacked_ = 0;
  for (const auto& e : entries_) unacked_ += e.acked ? 0 : 1;
}

std::uint64_t MsgLog::bytes() const {
  std::uint64_t total = 0;
  for (const auto& e : entries_) {
    total += e.env.wire_bytes() + sizeof(SeqNum) + sizeof(Incarnation);
  }
  return total;
}

}  // namespace hc3i::proto
