#include "proto/msg_log.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hc3i::proto {

void MsgLog::detach() {
  // Null storage means "empty": a mutator about to write needs a buffer.
  // Otherwise use_count > 1 means a captured LogImage (or a log restored
  // from one) still references the buffer; clone before mutating so the
  // image stays frozen at its capture state.  Single-threaded use_count is
  // exact.
  if (!entries_) {
    entries_ = std::make_shared<std::vector<LogEntry>>();
  } else if (entries_.use_count() > 1) {
    entries_ = std::make_shared<std::vector<LogEntry>>(*entries_);
  }
}

void MsgLog::add(const net::Envelope& env) {
  HC3I_CHECK(!env.intra_cluster(), "MsgLog: only inter-cluster messages are logged");
  HC3I_CHECK(size() == 0 || entries_->back().env.id.v < env.id.v,
             "MsgLog: sends must arrive in MsgId order");
  detach();
  entries_->push_back(LogEntry{env, false, 0, 0});
  ++unacked_;
}

void MsgLog::record_ack(MsgId id, SeqNum ack_sn, Incarnation ack_inc) {
  // Locate first; an unknown id must not pay the copy-on-write barrier.
  if (!entries_) return;
  const auto it = std::lower_bound(
      entries_->begin(), entries_->end(), id,
      [](const LogEntry& e, MsgId target) { return e.env.id.v < target.v; });
  if (it == entries_->end() || !(it->env.id == id)) return;
  const std::size_t idx = static_cast<std::size_t>(it - entries_->begin());
  detach();
  LogEntry& e = (*entries_)[idx];
  if (!e.acked) --unacked_;
  e.acked = true;
  e.ack_sn = ack_sn;
  e.ack_inc = ack_inc;
}

std::vector<net::Envelope> MsgLog::take_resends(ClusterId dst,
                                                SeqNum restored_sn,
                                                Incarnation new_inc) {
  std::vector<net::Envelope> out;
  if (!entries_) return out;
  auto needs_resend = [&](const LogEntry& e) {
    if (e.env.dst_cluster != dst) return false;
    if (!e.acked) return true;
    // An ack from the new (post-rollback) incarnation proves the delivery
    // happened into the restored execution — it survives.
    if (e.ack_inc >= new_inc) return false;
    // Pre-rollback ack: the delivery survives only if it happened in an
    // epoch strictly before the restored checkpoint.
    return e.ack_sn >= restored_sn;
  };
  for (const auto& e : *entries_) {
    if (needs_resend(e)) out.push_back(e.env);
  }
  if (out.empty()) return out;
  detach();
  entries_->erase(
      std::remove_if(entries_->begin(), entries_->end(), needs_resend),
      entries_->end());
  recount_unacked();
  return out;
}

std::size_t MsgLog::truncate_from(SeqNum restored_sn) {
  if (!entries_) return 0;
  const auto undone = [&](const LogEntry& e) {
    return e.env.piggy.sn >= restored_sn;
  };
  const std::size_t before = entries_->size();
  if (std::none_of(entries_->begin(), entries_->end(), undone)) return 0;
  detach();
  entries_->erase(std::remove_if(entries_->begin(), entries_->end(), undone),
                  entries_->end());
  recount_unacked();
  return before - entries_->size();
}

std::size_t MsgLog::prune(ClusterId dst, SeqNum min_sn) {
  if (!entries_) return 0;
  const auto stable = [&](const LogEntry& e) {
    return e.env.dst_cluster == dst && e.acked && e.ack_sn < min_sn;
  };
  const std::size_t before = entries_->size();
  if (std::none_of(entries_->begin(), entries_->end(), stable)) return 0;
  detach();
  entries_->erase(std::remove_if(entries_->begin(), entries_->end(), stable),
                  entries_->end());
  // Pruned entries were all acked, so unacked_ is unchanged.
  return before - entries_->size();
}

void MsgLog::restore(const LogImage& image) {
  // Adopt the shared buffer (or the empty state); detach() protects the
  // image (and any other adopter) if this log mutates later.
  entries_ = std::const_pointer_cast<std::vector<LogEntry>>(image.data_);
  recount_unacked();
}

void MsgLog::recount_unacked() {
  unacked_ = 0;
  for (const auto& e : entries()) unacked_ += e.acked ? 0 : 1;
}

std::uint64_t MsgLog::bytes() const {
  std::uint64_t total = 0;
  for (const auto& e : entries()) {
    total += e.env.wire_bytes() + sizeof(SeqNum) + sizeof(Incarnation);
  }
  return total;
}

}  // namespace hc3i::proto
