#include "proto/recovery_line.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hc3i::proto {

namespace {

/// The effective record list of cluster c once it has rolled back to
/// `restored_sn`: records with larger SN are discarded.  Returns the DDV of
/// the most recent effective record — the cluster's current DDV.
const Ddv& current_ddv(const std::vector<ClcMeta>& metas, SeqNum restored_sn) {
  const ClcMeta* best = nullptr;
  for (const auto& m : metas) {
    if (m.sn <= restored_sn) best = &m;
  }
  HC3I_CHECK(best != nullptr, "recovery line: no effective checkpoint");
  return best->ddv;
}

}  // namespace

RecoveryLine compute_recovery_line(
    const std::vector<std::vector<ClcMeta>>& meta, ClusterId faulty) {
  const std::size_t n = meta.size();
  HC3I_CHECK(faulty.v < n, "recovery line: bad faulty cluster");
  for (std::size_t c = 0; c < n; ++c) {
    HC3I_CHECK(!meta[c].empty(),
               "recovery line: cluster " + std::to_string(c) +
                   " has no stored CLC (initial checkpoint missing?)");
    for (std::size_t k = 1; k < meta[c].size(); ++k) {
      HC3I_CHECK(meta[c][k].sn > meta[c][k - 1].sn,
                 "recovery line: metadata must be SN-ordered");
    }
  }

  RecoveryLine line;
  line.restored.resize(n);
  line.rolled_back.assign(n, false);
  for (std::size_t c = 0; c < n; ++c) line.restored[c] = meta[c].back().sn;

  // The faulty cluster restores its most recent stored CLC (paper §3.4).
  line.rolled_back[faulty.v] = true;

  // Alert propagation to fixpoint. Each iteration applies every pending
  // alert (i -> everyone); restored SNs are monotonically non-increasing
  // and bounded below by the first stored SN, so this terminates.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!line.rolled_back[i]) continue;
      const SeqNum r_i = line.restored[i];
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const Ddv& ddv_j = current_ddv(meta[j], line.restored[j]);
        if (ddv_j.at(ClusterId{static_cast<std::uint32_t>(i)}) < r_i) continue;
        // j depends on an undone epoch of i: roll back to the oldest
        // effective CLC whose entry for i is >= r_i.
        const ClcMeta* target = nullptr;
        for (const auto& m : meta[j]) {
          if (m.sn > line.restored[j]) break;
          if (m.ddv.at(ClusterId{static_cast<std::uint32_t>(i)}) >= r_i) {
            target = &m;
            break;
          }
        }
        HC3I_CHECK(target != nullptr,
                   "recovery line: no rollback target in cluster " +
                       std::to_string(j) + " for alert from " +
                       std::to_string(i));
        // Rolling back to the most recent CLC (target->sn == restored[j])
        // still counts: the post-commit execution holds the undone
        // delivery, and the rollback's own alert may cascade further.
        if (target->sn < line.restored[j] || !line.rolled_back[j]) {
          line.restored[j] = target->sn;
          line.rolled_back[j] = true;
          changed = true;
        }
      }
    }
  }
  return line;
}

std::vector<SeqNum> gc_min_restored_sns(
    const std::vector<std::vector<ClcMeta>>& meta) {
  const std::size_t n = meta.size();
  std::vector<SeqNum> min_sns(n);
  for (std::size_t c = 0; c < n; ++c) min_sns[c] = meta[c].back().sn;
  for (std::size_t f = 0; f < n; ++f) {
    const RecoveryLine line =
        compute_recovery_line(meta, ClusterId{static_cast<std::uint32_t>(f)});
    for (std::size_t c = 0; c < n; ++c) {
      min_sns[c] = std::min(min_sns[c], line.restored[c]);
    }
  }
  return min_sns;
}

}  // namespace hc3i::proto
