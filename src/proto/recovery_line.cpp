#include "proto/recovery_line.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hc3i::proto {

namespace {

/// Index of the most recent record with sn <= `restored_sn` — a binary
/// search over the SN-ordered list (ordering is validated once by
/// LineSolver before any search runs).
std::size_t effective_index(const std::vector<ClcMeta>& metas,
                            SeqNum restored_sn) {
  const auto it = std::partition_point(
      metas.begin(), metas.end(),
      [&](const ClcMeta& m) { return m.sn <= restored_sn; });
  HC3I_CHECK(it != metas.begin(), "recovery line: no effective checkpoint");
  return static_cast<std::size_t>(it - metas.begin()) - 1;
}

/// Shared fixpoint state over one checkpoint-metadata snapshot.
///
/// The GC initiator "simulates a failure in each cluster" (paper §3.5) —
/// O(C) fixpoints over the same snapshot — and the fixpoint's inner loop
/// needs each cluster's *effective* DDV (the DDV of its most recent record
/// with sn <= its current restored SN).  Rescanning the whole record list
/// for it on every inner-loop call made gc_min_restored_sns quadratic-plus
/// at scale, and re-validating the snapshot per fixpoint repaid the O(total
/// records) checks C times.  The solver validates once at construction and
/// maintains the per-cluster effective index incrementally: it starts at
/// the newest record (binary-searched) and only ever moves down, exactly
/// when the fixpoint lowers that cluster's restored SN — so the effective
/// DDV is an O(1) lookup.
class LineSolver {
 public:
  explicit LineSolver(const std::vector<std::vector<ClcMeta>>& meta)
      : meta_(meta), eff_(meta.size()) {
    for (std::size_t c = 0; c < meta_.size(); ++c) {
      HC3I_CHECK(!meta_[c].empty(),
                 "recovery line: cluster " + std::to_string(c) +
                     " has no stored CLC (initial checkpoint missing?)");
      for (std::size_t k = 1; k < meta_[c].size(); ++k) {
        HC3I_CHECK(meta_[c][k].sn > meta_[c][k - 1].sn,
                   "recovery line: metadata must be SN-ordered");
      }
    }
  }

  RecoveryLine solve(ClusterId faulty) {
    const std::size_t n = meta_.size();
    HC3I_CHECK(faulty.v < n, "recovery line: bad faulty cluster");

    RecoveryLine line;
    line.restored.resize(n);
    line.rolled_back.assign(n, false);
    for (std::size_t c = 0; c < n; ++c) {
      line.restored[c] = meta_[c].back().sn;
      eff_[c] = effective_index(meta_[c], line.restored[c]);
    }

    // The faulty cluster restores its most recent stored CLC (paper §3.4).
    line.rolled_back[faulty.v] = true;

    // Alert propagation to fixpoint. Each iteration applies every pending
    // alert (i -> everyone); restored SNs are monotonically non-increasing
    // and bounded below by the first stored SN, so this terminates.
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (!line.rolled_back[i]) continue;
        const SeqNum r_i = line.restored[i];
        const ClusterId ci{static_cast<std::uint32_t>(i)};
        for (std::size_t j = 0; j < n; ++j) {
          if (j == i) continue;
          // j's current DDV is the DDV of its effective record — an O(1)
          // read off the incrementally maintained index.
          if (meta_[j][eff_[j]].ddv.at(ci) < r_i) continue;
          // j depends on an undone epoch of i: roll back to the oldest
          // effective CLC whose entry for i is >= r_i.
          std::size_t target = eff_[j] + 1;
          for (std::size_t k = 0; k <= eff_[j]; ++k) {
            if (meta_[j][k].ddv.at(ci) >= r_i) {
              target = k;
              break;
            }
          }
          HC3I_CHECK(target <= eff_[j],
                     "recovery line: no rollback target in cluster " +
                         std::to_string(j) + " for alert from " +
                         std::to_string(i));
          // Rolling back to the most recent CLC (target == eff_[j]) still
          // counts: the post-commit execution holds the undone delivery,
          // and the rollback's own alert may cascade further.
          if (meta_[j][target].sn < line.restored[j] ||
              !line.rolled_back[j]) {
            line.restored[j] = meta_[j][target].sn;
            eff_[j] = target;
            line.rolled_back[j] = true;
            changed = true;
          }
        }
      }
    }
    return line;
  }

 private:
  const std::vector<std::vector<ClcMeta>>& meta_;
  std::vector<std::size_t> eff_;  ///< per-cluster effective-record index
};

}  // namespace

RecoveryLine compute_recovery_line(
    const std::vector<std::vector<ClcMeta>>& meta, ClusterId faulty) {
  return LineSolver(meta).solve(faulty);
}

std::vector<SeqNum> gc_min_restored_sns(
    const std::vector<std::vector<ClcMeta>>& meta) {
  const std::size_t n = meta.size();
  // One solver for all C simulated failures: the snapshot is validated
  // once (before any list is dereferenced) and the fixpoints share its
  // scratch state (ROADMAP's "shared fixpoint" item).
  LineSolver solver(meta);
  std::vector<SeqNum> min_sns(n);
  for (std::size_t c = 0; c < n; ++c) min_sns[c] = meta[c].back().sn;
  for (std::size_t f = 0; f < n; ++f) {
    const RecoveryLine line =
        solver.solve(ClusterId{static_cast<std::uint32_t>(f)});
    for (std::size_t c = 0; c < n; ++c) {
      min_sns[c] = std::min(min_sns[c], line.restored[c]);
    }
  }
  return min_sns;
}

}  // namespace hc3i::proto
