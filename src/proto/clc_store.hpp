#pragma once

// Cluster-Level-Checkpoint store.
//
// Logically, each node stores its part of every retained CLC twice: locally
// and in the memory of a neighbour node (paper §3.1 stable storage; "each
// node in the federation stores 126 local states" for 63 retained CLCs).
// The simulator keeps one authoritative record per CLC per cluster and
// models the replication in the storage accounting and in the fault rule
// (replication degree r tolerates r simultaneous faults per cluster —
// r = 1 in the paper, configurable per §7 future work).

#include <cstdint>
#include <optional>
#include <vector>

#include "net/message.hpp"
#include "proto/ddv.hpp"
#include "proto/dedup_set.hpp"
#include "proto/msg_log.hpp"
#include "proto/snapshot.hpp"
#include "util/time.hpp"

namespace hc3i::proto {

/// Per-node content of a CLC.
struct NodePart {
  AppSnapshot app;                        ///< process state
  DedupImage dedup;                       ///< delivered inter-cluster app_seqs
                                          ///< (shared copy-on-write snapshot)
  LogImage log;                           ///< sender log at capture (shared
                                          ///< copy-on-write snapshot)
};

/// One committed cluster-level checkpoint.
struct ClcRecord {
  SeqNum sn{0};                 ///< cluster SN after this commit
  Ddv ddv;                      ///< the DDV timestamp (paper Fig. 5 boxes)
  SimTime commit_time{};        ///< simulated commit instant
  std::uint64_t ledger_mark{0}; ///< consistency-ledger cut at commit
  bool forced{false};           ///< forced (communication-induced) vs timer
  std::vector<NodePart> parts;  ///< indexed by cluster-local node index
  std::vector<net::Envelope> channel;  ///< in-flight intra msgs at commit
};

/// The retained CLCs of one cluster, ordered by SN (strictly increasing).
class ClcStore {
 public:
  /// `replication` is the number of extra copies of each node part kept on
  /// neighbour nodes (1 in the paper).
  ClcStore(ClusterId cluster, std::uint32_t nodes, std::uint32_t replication = 1);

  /// Append a committed CLC. SN must exceed the last stored SN.
  void commit(ClcRecord rec);

  /// Most recent CLC; REQUIRES !empty().
  const ClcRecord& last() const;

  /// The oldest stored CLC whose DDV entry for `f` is >= `sn`
  /// (the rollback target rule of paper §3.4), or nullptr if none.
  const ClcRecord* oldest_with_dep_at_least(ClusterId f, SeqNum sn) const;

  /// The record with exactly this SN, or nullptr.
  const ClcRecord* find(SeqNum sn) const;

  /// Drop every CLC with SN > `sn` (a rollback invalidates the checkpoints
  /// of the undone future). Returns the number removed.
  std::size_t truncate_after(SeqNum sn);

  /// Garbage collection: drop every CLC with SN < `min_sn` (paper §3.5 —
  /// "removes the CLCs which have their cluster DDV entry smaller than the
  /// smallest SN"; the own-cluster DDV entry equals the SN). Returns the
  /// number removed.
  std::size_t prune_before(SeqNum min_sn);

  /// Number of retained CLCs.
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const std::vector<ClcRecord>& records() const { return records_; }
  ClusterId cluster() const { return cluster_; }

  /// Stored local states per node: retained CLCs x (1 + replication) —
  /// the paper's "126 local states" metric.
  std::uint64_t local_states_per_node() const {
    return records_.size() * (1 + replication_);
  }

  /// Total modelled storage bytes across the cluster (states + channel
  /// captures + checkpointed logs, including replicas).  Incremental
  /// captures count their delta, not the full state image.
  std::uint64_t storage_bytes() const;

  /// Bytes node `node_idx` must read back to restore from the CLC with
  /// SN `sn`: its part of that record plus every older delta back to (and
  /// including) the nearest full image.  When garbage collection pruned the
  /// original base, the oldest retained record acts as a rebased full image
  /// and is charged at state_bytes.  REQUIRES `sn` retained.
  std::uint64_t chain_read_bytes(SeqNum sn, std::uint32_t node_idx) const;

  /// Simultaneous in-cluster faults tolerated by the replication scheme.
  std::uint32_t replication() const { return replication_; }

 private:
  ClusterId cluster_;
  std::uint32_t nodes_;
  std::uint32_t replication_;
  std::vector<ClcRecord> records_;
};

}  // namespace hc3i::proto
