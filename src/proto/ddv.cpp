#include "proto/ddv.hpp"

#include <algorithm>

namespace hc3i::proto {

Ddv::Ddv(std::size_t clusters, ClusterId self, SeqNum own_sn) : inline_{} {
  HC3I_CHECK(self.v < clusters, "Ddv: owner out of range");
  size_ = static_cast<std::uint32_t>(clusters);
  if (clusters <= kInlineEntries) {
    inline_[self.v] = own_sn;  // the rest stays zero from the initialiser
    return;
  }
  Spill* block = alloc_spill(clusters);
  std::memset(block->data(), 0, clusters * sizeof(SeqNum));
  block->data()[self.v] = own_sn;
  spill_ = block;
}

void Ddv::merge_max(const Ddv& other) {
  HC3I_CHECK(other.size() == size(), "Ddv::merge_max: size mismatch");
  // Find the first entry that will actually rise before touching the COW
  // barrier: under HC3I every node of a cluster acks the same DDV, so the
  // common case is "nothing to merge" and must stay write-free.
  const SeqNum* theirs = other.data();
  const SeqNum* ours = data();
  std::size_t i = 0;
  while (i < size_ && theirs[i] <= ours[i]) ++i;
  if (i == size_) return;
  // `theirs` stays valid across the detach: if the blocks were shared, the
  // early scan above would have found nothing to raise.
  SeqNum* w = mutable_data();
  for (; i < size_; ++i) w[i] = std::max(w[i], theirs[i]);
}

std::string Ddv::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < size_; ++i) {
    if (i) out += ", ";
    out += std::to_string(data()[i]);
  }
  out += ")";
  return out;
}

}  // namespace hc3i::proto
