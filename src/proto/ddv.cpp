#include "proto/ddv.hpp"

#include <algorithm>

namespace hc3i::proto {

Ddv::Ddv(std::size_t clusters, ClusterId self, SeqNum own_sn)
    : v_(clusters, 0) {
  HC3I_CHECK(self.v < clusters, "Ddv: owner out of range");
  v_[self.v] = own_sn;
}

SeqNum Ddv::at(ClusterId i) const {
  HC3I_CHECK(i.v < v_.size(), "Ddv::at: cluster out of range");
  return v_[i.v];
}

bool Ddv::raise(ClusterId i, SeqNum sn) {
  HC3I_CHECK(i.v < v_.size(), "Ddv::raise: cluster out of range");
  if (sn > v_[i.v]) {
    v_[i.v] = sn;
    return true;
  }
  return false;
}

void Ddv::set(ClusterId i, SeqNum sn) {
  HC3I_CHECK(i.v < v_.size(), "Ddv::set: cluster out of range");
  v_[i.v] = sn;
}

void Ddv::merge_max(const Ddv& other) {
  HC3I_CHECK(other.size() == size(), "Ddv::merge_max: size mismatch");
  for (std::size_t i = 0; i < v_.size(); ++i) {
    v_[i] = std::max(v_[i], other.v_[i]);
  }
}

std::string Ddv::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(v_[i]);
  }
  out += ")";
  return out;
}

}  // namespace hc3i::proto
