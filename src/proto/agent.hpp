#pragma once

// Protocol-agent interface — the "system-level module" of the paper's system
// model (Fig. 2): it intercepts every application send, receives from the
// network, and talks to peer agents for protocol needs.  One agent instance
// runs per node; the concrete subclass decides the checkpointing strategy
// (HC3I, the baselines, or a null protocol for calibration runs).

#include <cstdint>
#include <functional>
#include <memory>

#include "net/message.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "obs/trace.hpp"
#include "proto/ledger.hpp"
#include "proto/snapshot.hpp"
#include "sim/simulation.hpp"
#include "stats/registry.hpp"

namespace hc3i::proto {

/// Everything an agent needs from its environment, wired by the federation.
struct AgentContext {
  sim::Simulation* sim{nullptr};
  net::Network* network{nullptr};
  const net::Topology* topology{nullptr};
  stats::Registry* registry{nullptr};
  ConsistencyLedger* ledger{nullptr};
  NodeId self{};
  ClusterId cluster{};
  AppHandle* app{nullptr};  ///< the local process (owned by the workload)
  /// Structured trace recorder; null when observability is off (the common
  /// case — every emission site is then a single pointer test, HC3I_OBS).
  obs::Recorder* obs{nullptr};
  /// Signals the failure injector that the recovery triggered by the last
  /// detected failure has completed cluster-locally (used to honour the
  /// paper's one-fault-at-a-time assumption).
  std::function<void(ClusterId)> recovery_done;
};

/// Abstract checkpointing agent.
class ProtocolAgent {
 public:
  explicit ProtocolAgent(AgentContext ctx) : ctx_(std::move(ctx)) {}
  virtual ~ProtocolAgent() = default;

  ProtocolAgent(const ProtocolAgent&) = delete;
  ProtocolAgent& operator=(const ProtocolAgent&) = delete;

  /// Called once at simulation start: arm timers, take the initial
  /// checkpoint (the paper's execution starts with a CLC on every cluster).
  virtual void start() = 0;

  /// Application send interception: the local process wants `bytes` sent to
  /// `dst` as logical message `app_seq`.  The agent may queue it (during a
  /// 2PC round), piggy-back protocol data, and log it.
  virtual void app_send(NodeId dst, std::uint64_t bytes,
                        std::uint64_t app_seq) = 0;

  /// Network upcall: an envelope addressed to this node arrived.
  virtual void on_message(const net::Envelope& env) = 0;

  /// Failure-detector upcall, delivered to the coordinator (first alive
  /// node) of the failed node's cluster, detection latency already applied.
  virtual void on_failure_detected(NodeId failed) = 0;

  /// Identity helpers.
  NodeId self() const { return ctx_.self; }
  ClusterId cluster() const { return ctx_.cluster; }

 protected:
  AgentContext ctx_;
};

/// Factory: builds the agent for one node. The protocol module supplies it
/// to the federation builder.
using AgentFactory =
    std::function<std::unique_ptr<ProtocolAgent>(const AgentContext&)>;

}  // namespace hc3i::proto
