#include "proto/agent_base.hpp"

namespace hc3i::proto {

net::Envelope AgentBase::send_app(NodeId dst, std::uint64_t bytes,
                                  std::uint64_t app_seq,
                                  const net::Piggyback& piggy) {
  net::Envelope env;
  env.src = self();
  env.dst = dst;
  env.src_cluster = cluster();
  env.dst_cluster = ctx_.topology->cluster_of(dst);
  env.cls = net::MsgClass::kApp;
  env.payload_bytes = bytes;
  env.piggy = piggy;
  env.app_seq = app_seq;
  env.sent_at = now();
  ctx_.ledger->record_send(app_seq, self(), cluster(), now());
  env.id = ctx_.network->send(env);
  return env;
}

net::Envelope AgentBase::resend_app(const net::Envelope& original) {
  net::Envelope env = original;
  ctx_.ledger->record_send(env.app_seq, self(), cluster(), now());
  ctx_.registry->inc("log.resent_msgs");
  // Replay cost in bytes (recovery telemetry reports it per incident).
  ctx_.registry->inc("log.resent_bytes", env.payload_bytes);
  env.sent_at = now();
  env.id = ctx_.network->send(env);
  return env;
}

void AgentBase::deliver_app(const net::Envelope& env) {
  ctx_.ledger->record_delivery(env.app_seq, self(), cluster(), now());
  ctx_.app->deliver(env);
}

MsgId AgentBase::send_control(
    NodeId dst, std::uint64_t bytes,
    std::shared_ptr<const net::ControlPayload> payload) {
  net::Envelope env;
  env.src = self();
  env.dst = dst;
  env.cls = net::MsgClass::kControl;
  env.payload_bytes = bytes;
  env.control = std::move(payload);
  return ctx_.network->send(std::move(env));
}

net::Envelope AgentBase::make_local_control(
    std::uint64_t bytes,
    std::shared_ptr<const net::ControlPayload> payload) const {
  net::Envelope env;
  env.id = MsgId{0};
  env.src = self();
  env.dst = self();
  env.src_cluster = cluster();
  env.dst_cluster = cluster();
  env.cls = net::MsgClass::kControl;
  env.payload_bytes = bytes;
  env.control = std::move(payload);
  env.sent_at = now();
  return env;
}

void AgentBase::deliver_control_locally(
    std::uint64_t bytes, std::shared_ptr<const net::ControlPayload> payload) {
  // The envelope is built inside the event rather than captured: the event
  // fires at the same instant it is scheduled (zero delay), so sent_at is
  // identical, and the capture stays small enough for the queue's inline
  // callable storage (payload pointer + size instead of a whole Envelope).
  ctx_.sim->schedule_after(
      SimTime::zero(), [this, bytes, payload = std::move(payload)]() mutable {
        on_message(make_local_control(bytes, std::move(payload)));
      });
}

void AgentBase::send_control_or_local(
    NodeId dst, std::uint64_t bytes,
    std::shared_ptr<const net::ControlPayload> payload) {
  if (dst == self()) {
    deliver_control_locally(bytes, std::move(payload));
    return;
  }
  send_control(dst, bytes, std::move(payload));
}

void AgentBase::broadcast_control(
    ClusterId cluster_id, std::uint64_t bytes,
    std::shared_ptr<const net::ControlPayload> payload, bool include_self) {
  // Iterate the dense node range directly — a broadcast runs for every CLC
  // round and GC/alert relay, and building a nodes_of() vector per call was
  // a needless per-broadcast allocation.
  const NodeId base = ctx_.topology->first_node(cluster_id);
  const std::uint32_t size = ctx_.topology->cluster_size(cluster_id);
  for (std::uint32_t i = 0; i < size; ++i) {
    const NodeId n{base.v + i};
    if (n == self()) {
      if (include_self) deliver_control_locally(bytes, payload);
      continue;
    }
    send_control(n, bytes, payload);
  }
}

}  // namespace hc3i::proto
