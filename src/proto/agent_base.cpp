#include "proto/agent_base.hpp"

namespace hc3i::proto {

net::Envelope AgentBase::send_app(NodeId dst, std::uint64_t bytes,
                                  std::uint64_t app_seq,
                                  const net::Piggyback& piggy) {
  net::Envelope env;
  env.src = self();
  env.dst = dst;
  env.src_cluster = cluster();
  env.dst_cluster = ctx_.topology->cluster_of(dst);
  env.cls = net::MsgClass::kApp;
  env.payload_bytes = bytes;
  env.piggy = piggy;
  env.app_seq = app_seq;
  env.sent_at = now();
  ctx_.ledger->record_send(app_seq, self(), cluster(), now());
  env.id = ctx_.network->send(env);
  return env;
}

net::Envelope AgentBase::resend_app(const net::Envelope& original) {
  net::Envelope env = original;
  ctx_.ledger->record_send(env.app_seq, self(), cluster(), now());
  ctx_.registry->inc("log.resent_msgs");
  env.sent_at = now();
  env.id = ctx_.network->send(env);
  return env;
}

void AgentBase::deliver_app(const net::Envelope& env) {
  ctx_.ledger->record_delivery(env.app_seq, self(), cluster(), now());
  ctx_.app->deliver(env);
}

MsgId AgentBase::send_control(
    NodeId dst, std::uint64_t bytes,
    std::shared_ptr<const net::ControlPayload> payload) {
  net::Envelope env;
  env.src = self();
  env.dst = dst;
  env.cls = net::MsgClass::kControl;
  env.payload_bytes = bytes;
  env.control = std::move(payload);
  return ctx_.network->send(std::move(env));
}

net::Envelope AgentBase::make_local_control(
    std::uint64_t bytes,
    std::shared_ptr<const net::ControlPayload> payload) const {
  net::Envelope env;
  env.id = MsgId{0};
  env.src = self();
  env.dst = self();
  env.src_cluster = cluster();
  env.dst_cluster = cluster();
  env.cls = net::MsgClass::kControl;
  env.payload_bytes = bytes;
  env.control = std::move(payload);
  env.sent_at = now();
  return env;
}

void AgentBase::send_control_or_local(
    NodeId dst, std::uint64_t bytes,
    std::shared_ptr<const net::ControlPayload> payload) {
  if (dst == self()) {
    const net::Envelope env = make_local_control(bytes, std::move(payload));
    ctx_.sim->schedule_after(SimTime::zero(), [this, env] { on_message(env); });
    return;
  }
  send_control(dst, bytes, std::move(payload));
}

void AgentBase::broadcast_control(
    ClusterId cluster_id, std::uint64_t bytes,
    std::shared_ptr<const net::ControlPayload> payload, bool include_self) {
  for (const NodeId n : ctx_.topology->nodes_of(cluster_id)) {
    if (n == self()) {
      if (include_self) {
        const net::Envelope env = make_local_control(bytes, payload);
        ctx_.sim->schedule_after(SimTime::zero(),
                                 [this, env] { on_message(env); });
      }
      continue;
    }
    send_control(n, bytes, payload);
  }
}

}  // namespace hc3i::proto
