#pragma once

// Receiver-side de-duplication set with copy-on-write capture.
//
// Each node remembers the app_seq of every delivered inter-cluster message
// (DESIGN.md §3: re-sent messages racing with their original copy must be
// dropped, not double-delivered).  The set is checked per inter-cluster
// arrival — so membership stays hashed — but it is also part of every
// checkpoint part, and the capture used to deep-copy and sort the whole set
// per node per CLC round.
//
// DedupSet applies the proto::LogImage pattern: capture() returns a shared,
// immutable, sorted DedupImage, built at most once per mutation epoch.  A
// node whose delivered-set did not change between two CLCs (every node that
// receives no inter-cluster traffic — most of a 1000-node federation) pays
// a refcount bump per checkpoint, and copying a part (phase-1 acks,
// committed records) never copies the underlying entries.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

namespace hc3i::proto {

/// An immutable, sorted, shared snapshot of a DedupSet.  The sort order is
/// part of the bit-reproducibility contract (checkpoint parts are protocol
/// state).
class DedupImage {
 public:
  DedupImage() = default;

  /// The captured app_seqs, ascending (empty for a default image).
  const std::vector<std::uint64_t>& entries() const {
    static const std::vector<std::uint64_t> kEmpty;
    return data_ ? *data_ : kEmpty;
  }
  std::size_t size() const { return data_ ? data_->size() : 0; }

  /// True when two images share one backing buffer (tests assert the
  /// capture-twice-without-mutation case stays shared).
  bool shares_storage_with(const DedupImage& o) const {
    return data_ != nullptr && data_ == o.data_;
  }

 private:
  friend class DedupSet;
  explicit DedupImage(std::shared_ptr<const std::vector<std::uint64_t>> d)
      : data_(std::move(d)) {}

  std::shared_ptr<const std::vector<std::uint64_t>> data_;
};

/// The live, hashed delivered-app_seq set of one node.
class DedupSet {
 public:
  bool contains(std::uint64_t app_seq) const {
    return set_.count(app_seq) > 0;
  }

  void insert(std::uint64_t app_seq) {
    if (set_.insert(app_seq).second) image_.reset();
  }

  std::size_t size() const { return set_.size(); }

  /// Capture as a shared sorted image — O(n log n) on the first capture
  /// after a mutation, O(1) (refcount bump) afterwards.  An empty set
  /// captures as the storage-free default image: most nodes of a large
  /// federation never receive inter-cluster traffic, and their checkpoint
  /// parts must not cost an allocation.
  DedupImage capture() const {
    if (set_.empty()) return DedupImage{};
    if (!image_) {
      auto sorted = std::make_shared<std::vector<std::uint64_t>>(set_.begin(),
                                                                 set_.end());
      std::sort(sorted->begin(), sorted->end());
      image_ = std::move(sorted);
    }
    return DedupImage{image_};
  }

  /// Replace the whole set from a captured image (cluster rollback restores
  /// the checkpointed delivered-set).  Adopts the image's buffer as the
  /// capture cache, so the post-rollback checkpoint also captures in O(1).
  void restore(const DedupImage& image) {
    set_.clear();
    set_.insert(image.entries().begin(), image.entries().end());
    image_ = image.data_;
  }

 private:
  // lint: unordered-ok(membership queries only; every ordered consumer —
  // checkpoints, dumps — reads the sorted DedupImage, never this set)
  std::unordered_set<std::uint64_t> set_;
  /// Cached sorted image; null means stale (a mutation happened since the
  /// last capture).  Mutable: capture() is logically const.
  mutable std::shared_ptr<const std::vector<std::uint64_t>> image_;
};

}  // namespace hc3i::proto
