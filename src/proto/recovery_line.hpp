#pragma once

// Recovery-line computation (pure).
//
// Given the retained checkpoint metadata of every cluster, compute where
// each cluster lands after a failure of cluster `f` — the fixpoint of the
// paper's rollback-alert propagation (§3.4):
//
//   * the faulty cluster restores its most recent stored CLC;
//   * a cluster whose current DDV entry for an alerting cluster i is >= the
//     alerted SN rolls back to its *oldest* stored CLC whose DDV entry for
//     i is >= that SN, then alerts the others with its own new SN;
//   * a cluster's "current" DDV equals the DDV of its most recent effective
//     CLC, because DDV entries only change at forced-CLC commits.
//
// This function is used three ways: by the garbage collector ("it simulates
// a failure in each cluster", §3.5), by tests as the oracle the distributed
// alert cascade must agree with, and by the independent-checkpointing
// baseline to measure the domino effect.

#include <cstdint>
#include <vector>

#include "proto/ddv.hpp"
#include "util/ids.hpp"

namespace hc3i::proto {

/// Checkpoint metadata exchanged for recovery-line purposes: the paper's
/// "list of all the DDVs associated with the stored CLCs".
struct ClcMeta {
  SeqNum sn{0};
  Ddv ddv;
};

/// Outcome of one simulated failure.
struct RecoveryLine {
  /// restored[c] — the SN of the CLC cluster c lands on; equal to its most
  /// recent SN when the failure does not force it to roll back.
  std::vector<SeqNum> restored;
  /// rolled_back[c] — true when c had to roll back (including the faulty
  /// cluster itself).
  std::vector<bool> rolled_back;
};

/// Compute the recovery line after a failure in `faulty`.
/// `meta[c]` must be the retained CLCs of cluster c in increasing-SN order
/// and non-empty (every cluster stores the initial checkpoint).
/// Throws CheckFailure if the line cannot be constructed (which would mean
/// the garbage collector over-pruned — an invariant violation).
RecoveryLine compute_recovery_line(
    const std::vector<std::vector<ClcMeta>>& meta, ClusterId faulty);

/// The garbage-collection bound (paper §3.5): for each cluster, the
/// smallest SN it might roll back to across a simulated failure of every
/// cluster in turn.  CLCs below this SN (and logged messages acknowledged
/// below it) can never be needed again.
std::vector<SeqNum> gc_min_restored_sns(
    const std::vector<std::vector<ClcMeta>>& meta);

}  // namespace hc3i::proto
