#include "proto/ledger.hpp"

#include <algorithm>

namespace hc3i::proto {

std::uint64_t ConsistencyLedger::record_send(std::uint64_t app_seq, NodeId src,
                                             ClusterId src_cluster, SimTime t) {
  const std::uint64_t seq = ++next_seq_;
  events_.push_back(Event{seq, app_seq, Kind::kSend, src, src_cluster, t, false});
  return seq;
}

std::uint64_t ConsistencyLedger::record_delivery(std::uint64_t app_seq,
                                                 NodeId dst,
                                                 ClusterId dst_cluster,
                                                 SimTime t) {
  const std::uint64_t seq = ++next_seq_;
  events_.push_back(
      Event{seq, app_seq, Kind::kDelivery, dst, dst_cluster, t, false});
  return seq;
}

void ConsistencyLedger::undo_after(ClusterId c, std::uint64_t mark) {
  // Events are appended in seq order; walk backwards until seq <= mark.
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->seq <= mark) break;
    if (it->owner_cluster == c && !it->undone) {
      it->undone = true;
      ++undone_count_;
    }
  }
}

void ConsistencyLedger::undo_after_node(NodeId n, std::uint64_t mark) {
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->seq <= mark) break;
    if (it->owner_node == n && !it->undone) {
      it->undone = true;
      ++undone_count_;
    }
  }
}

std::vector<std::string> ConsistencyLedger::validate(
    bool allow_in_flight) const {
  // Flat tally: one packed (app_seq, kind) word per live event, sorted.
  // A hashed tally would allocate one node per distinct message — for a
  // failure-free run that is one allocation per message ever sent, which
  // dominated the allocation count of a whole simulation — while this
  // variant costs one buffer; sorting also yields the app_seq-ordered
  // violation report for free.  app_seq occupies the low 32 bits of a
  // (node << 32 | counter) pair in practice; the kind bit lives in bit 0
  // of the shifted key, so the packing is lossless for any app_seq below
  // 2^63 and the walk below decodes runs of one message.
  std::vector<std::uint64_t> keys;
  keys.reserve(events_.size() - undone_count_);
  for (const auto& e : events_) {
    if (e.undone) continue;
    keys.push_back((e.app_seq << 1) |
                   (e.kind == Kind::kDelivery ? 1u : 0u));
  }
  std::sort(keys.begin(), keys.end());
  std::vector<std::string> violations;
  std::size_t i = 0;
  while (i < keys.size()) {
    const std::uint64_t app_seq = keys[i] >> 1;
    int live_sends = 0;
    int live_deliveries = 0;
    for (; i < keys.size() && (keys[i] >> 1) == app_seq; ++i) {
      if ((keys[i] & 1u) != 0) {
        ++live_deliveries;
      } else {
        ++live_sends;
      }
    }
    if (live_deliveries > 1) {
      violations.push_back("message " + std::to_string(app_seq) +
                           " delivered " + std::to_string(live_deliveries) +
                           " times (duplicate)");
    }
    if (live_deliveries >= 1 && live_sends == 0) {
      violations.push_back("message " + std::to_string(app_seq) +
                           " delivered but its send was rolled back (ghost)");
    }
    if (live_sends >= 1 && live_deliveries == 0 && !allow_in_flight) {
      violations.push_back("message " + std::to_string(app_seq) +
                           " sent but never delivered (lost)");
    }
  }
  return violations;
}

}  // namespace hc3i::proto
