#include "proto/ledger.hpp"

#include <algorithm>
#include <unordered_map>

namespace hc3i::proto {

std::uint64_t ConsistencyLedger::record_send(std::uint64_t app_seq, NodeId src,
                                             ClusterId src_cluster, SimTime t) {
  const std::uint64_t seq = ++next_seq_;
  events_.push_back(Event{seq, app_seq, Kind::kSend, src, src_cluster, t, false});
  return seq;
}

std::uint64_t ConsistencyLedger::record_delivery(std::uint64_t app_seq,
                                                 NodeId dst,
                                                 ClusterId dst_cluster,
                                                 SimTime t) {
  const std::uint64_t seq = ++next_seq_;
  events_.push_back(
      Event{seq, app_seq, Kind::kDelivery, dst, dst_cluster, t, false});
  return seq;
}

void ConsistencyLedger::undo_after(ClusterId c, std::uint64_t mark) {
  // Events are appended in seq order; walk backwards until seq <= mark.
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->seq <= mark) break;
    if (it->owner_cluster == c && !it->undone) {
      it->undone = true;
      ++undone_count_;
    }
  }
}

void ConsistencyLedger::undo_after_node(NodeId n, std::uint64_t mark) {
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->seq <= mark) break;
    if (it->owner_node == n && !it->undone) {
      it->undone = true;
      ++undone_count_;
    }
  }
}

std::vector<std::string> ConsistencyLedger::validate(
    bool allow_in_flight) const {
  struct Tally {
    int live_sends{0};
    int live_deliveries{0};
  };
  // Hashed tally (one pass over millions of events), then a sorted walk so
  // violations always come out in app_seq order.
  std::unordered_map<std::uint64_t, Tally> by_msg;
  by_msg.reserve(events_.size());
  for (const auto& e : events_) {
    if (e.undone) continue;
    auto& t = by_msg[e.app_seq];
    if (e.kind == Kind::kSend) {
      ++t.live_sends;
    } else {
      ++t.live_deliveries;
    }
  }
  std::vector<std::uint64_t> order;
  order.reserve(by_msg.size());
  for (const auto& [app_seq, _] : by_msg) order.push_back(app_seq);
  std::sort(order.begin(), order.end());
  std::vector<std::string> violations;
  for (const std::uint64_t app_seq : order) {
    const Tally& t = by_msg.find(app_seq)->second;
    if (t.live_deliveries > 1) {
      violations.push_back("message " + std::to_string(app_seq) +
                           " delivered " + std::to_string(t.live_deliveries) +
                           " times (duplicate)");
    }
    if (t.live_deliveries >= 1 && t.live_sends == 0) {
      violations.push_back("message " + std::to_string(app_seq) +
                           " delivered but its send was rolled back (ghost)");
    }
    if (t.live_sends >= 1 && t.live_deliveries == 0 && !allow_in_flight) {
      violations.push_back("message " + std::to_string(app_seq) +
                           " sent but never delivered (lost)");
    }
  }
  return violations;
}

}  // namespace hc3i::proto
