#pragma once

// Application-state capture interface.
//
// The paper's process state is "all the data it needs to be restarted (the
// virtual memory, list of opened files, sockets, ...)".  The simulator
// abstracts that into AppSnapshot — an opaque progress marker plus a
// modelled size — and AppHandle, the hooks a checkpointing protocol uses to
// capture and restore one process.

#include <cstdint>

#include "net/message.hpp"
#include "storage/state_region.hpp"
#include "util/inline_vec.hpp"
#include "util/time.hpp"

namespace hc3i::proto {

/// A captured process state.
struct AppSnapshot {
  /// Monotone per-node progress counter at capture (completed work units).
  std::uint64_t progress{0};
  /// Virtual compute time accumulated at capture (lost-work accounting).
  SimTime virtual_work{};
  /// Modelled state size in bytes.
  std::uint64_t state_bytes{0};
  /// Bytes this capture actually writes to storage: state_bytes for a full
  /// image, the touched-range size for an incremental delta.  Protocols that
  /// never asked for delta capture leave it equal to state_bytes.
  std::uint64_t delta_bytes{0};
  /// True when this snapshot is a delta over the node's previous committed
  /// capture (restore must replay the chain back to the last full image).
  bool incremental{false};
  /// Opaque application words (e.g. RNG state under the PWD assumption the
  /// pessimistic-logging baseline needs; empty otherwise).  Inline storage:
  /// snapshots are taken per node per CLC round and copied into acks and
  /// committed records, and a heap vector here was one allocation per copy.
  InlineVec<std::uint64_t, 4> opaque;
};

/// Per-process hooks the protocol layer drives. Implemented by the workload
/// (src/app) and by test fixtures.
class AppHandle {
 public:
  virtual ~AppHandle() = default;

  /// Capture the process state (cheap: the workload is synthetic).  This
  /// const overload is a pure read — lost-work accounting and baselines use
  /// it — and never consumes dirty-range tracking.
  virtual AppSnapshot snapshot() const = 0;

  /// Capture for checkpoint storage: consumes the dirty-range watermark, so
  /// kIncremental yields a delta over the previous storage capture.  The
  /// default forwards to the read-only overload (full image, no tracking)
  /// for fixtures and apps without a modelled state region.
  virtual AppSnapshot snapshot(storage::CaptureMode mode) {
    (void)mode;
    return snapshot();
  }

  /// Stop all application activity immediately (cancel pending compute).
  /// Called at the instant a rollback is decided; restore() follows once
  /// the modelled state transfer completes.
  virtual void freeze() = 0;

  /// Restore the process to a previously captured state and resume
  /// execution from there (the protocol has already cleaned the network).
  virtual void restore(const AppSnapshot& snap) = 0;

  /// Deliver an application message to the process.
  virtual void deliver(const net::Envelope& env) = 0;
};

}  // namespace hc3i::proto
