#pragma once

// Direct Dependencies Vector (DDV), paper §3.2 (after Badrinath & Morin [2]).
//
// For cluster j, DDV[i] is the last sequence number received from cluster i
// (0 if none), and DDV[j] is cluster j's own SN.  "The size of the DDV is
// the number of clusters in the federation, not the number of nodes."
//
// This is the protocol's central type: it lives in agent state, travels in
// every phase-1 `ClcAck` and `ClcCommit`, is piggybacked on inter-cluster
// application messages (transitive extension, paper §7), timestamps every
// stored CLC, and is exchanged wholesale by the garbage collector.  A
// heap-backed std::vector here meant one allocation per ack, per commit
// fan-out copy, per piggyback and per GC metadata copy.
//
// Storage is therefore inline-small with a refcounted spill, unified from
// the former net::SmallDdv (which this type replaces): up to kInlineEntries
// entries live in-object; wider federations spill to one shared refcounted
// heap block.  Copies never allocate — an inline memcpy or a refcount bump.
// Unlike SmallDdv, a Ddv is mutable: `raise`/`set`/`merge_max` follow the
// copy-on-write discipline of proto::LogImage / proto::DedupImage — a
// mutator that will actually write detaches a shared spill block first, and
// a no-op mutator (raising to a lower value, setting the current value,
// merging an entry-wise-dominated vector) must not pay the copy.  That is
// what lets one representation flow from agent state into acks, committed
// records, piggybacks and GC metadata by plain assignment: in-flight
// snapshots stay frozen because the writer detaches, not the readers.
//
// The spill pointer shares storage with the inline buffer (a union keyed on
// size_), so Ddv is no larger than the std::vector it replaced, and the
// refcount is a plain integer — the simulator is single-threaded, and an
// atomic would put a lock prefix on every envelope copy for nothing.

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <new>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/ids.hpp"

namespace hc3i::proto {

/// A cluster's direct-dependency vector (inline-small, COW spill).
class Ddv {
 public:
  /// Inline capacity: covers the federations the paper evaluates (2-3
  /// clusters) with headroom; beyond this the entries live in a shared
  /// refcounted block.
  static constexpr std::size_t kInlineEntries = 4;

  Ddv() : inline_{} {}
  /// A zero vector for a federation of `clusters` clusters, owned by
  /// `self`: DDV[self] is set to `own_sn`, everything else to 0.
  Ddv(std::size_t clusters, ClusterId self, SeqNum own_sn);
  Ddv(std::initializer_list<SeqNum> init) : Ddv(init.begin(), init.size()) {}
  explicit Ddv(const std::vector<SeqNum>& v) : Ddv(v.data(), v.size()) {}
  Ddv(const SeqNum* data, std::size_t n) : inline_{} { init_members(data, n); }

  Ddv(const Ddv& o) : size_(o.size_) {
    if (spilled()) {
      spill_ = o.spill_;
      ++spill_->refs;
    } else {
      std::memcpy(inline_, o.inline_, sizeof(inline_));
    }
  }

  Ddv(Ddv&& o) noexcept : size_(o.size_) {
    if (spilled()) {
      spill_ = o.spill_;
      o.size_ = 0;
    } else {
      std::memcpy(inline_, o.inline_, sizeof(inline_));
    }
  }

  Ddv& operator=(const Ddv& o) {
    if (this != &o) {
      Ddv tmp(o);
      swap(tmp);
    }
    return *this;
  }

  Ddv& operator=(Ddv&& o) noexcept {
    if (this != &o) {
      release();
      size_ = o.size_;
      if (spilled()) {
        spill_ = o.spill_;
        o.size_ = 0;
      } else {
        std::memcpy(inline_, o.inline_, sizeof(inline_));
      }
    }
    return *this;
  }

  Ddv& operator=(std::initializer_list<SeqNum> init) {
    release();
    init_members(init.begin(), init.size());
    return *this;
  }

  ~Ddv() { release(); }

  /// Entry for cluster i.
  SeqNum at(ClusterId i) const {
    HC3I_CHECK(i.v < size_, "Ddv::at: cluster out of range");
    return data()[i.v];
  }

  /// Update entry for cluster i to max(current, sn); returns true if raised.
  bool raise(ClusterId i, SeqNum sn) {
    HC3I_CHECK(i.v < size_, "Ddv::raise: cluster out of range");
    if (sn <= data()[i.v]) return false;
    mutable_data()[i.v] = sn;
    return true;
  }

  /// Set the owner's entry (kept equal to the cluster SN).
  void set(ClusterId i, SeqNum sn) {
    HC3I_CHECK(i.v < size_, "Ddv::set: cluster out of range");
    if (data()[i.v] == sn) return;  // no-op writes must not detach
    mutable_data()[i.v] = sn;
  }

  /// Merge: entry-wise maximum with another vector of the same size.
  /// Used by the transitive-piggybacking extension (paper §7).
  void merge_max(const Ddv& other);

  /// Number of entries (== number of clusters).
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Raw entries (for serialisation / piggybacking).
  const SeqNum* data() const { return spilled() ? spill_->data() : inline_; }
  const SeqNum* begin() const { return data(); }
  const SeqNum* end() const { return data() + size_; }
  SeqNum operator[](std::size_t i) const { return data()[i]; }

  std::vector<SeqNum> to_vector() const {
    return std::vector<SeqNum>(begin(), end());
  }

  /// True when the entries live in the shared spill block (tests).
  bool spilled() const { return size_ > kInlineEntries; }

  /// True when two spilled instances share one block (tests; always false
  /// for inline instances, which have nothing to share).
  bool shares_storage_with(const Ddv& o) const {
    return spilled() && o.spilled() && spill_ == o.spill_;
  }

  friend bool operator==(const Ddv& a, const Ddv& b) {
    if (a.size_ != b.size_) return false;
    if (a.spilled() && a.spill_ == b.spill_) return true;
    return std::memcmp(a.data(), b.data(), a.size_ * sizeof(SeqNum)) == 0;
  }

  /// "(3, 0, 4)" — rendering used in traces, mirroring the paper's figures.
  std::string to_string() const;

 private:
  /// Header of a heap spill block; the entries follow it in the same
  /// allocation (4-byte aligned either side, so `this + 1` is the array).
  struct Spill {
    std::uint32_t refs;
    static_assert(alignof(SeqNum) <= alignof(std::uint32_t),
                  "spill layout places the entry array right after the "
                  "header; a wider SeqNum needs explicit padding here");
    SeqNum* data() { return reinterpret_cast<SeqNum*>(this + 1); }
    const SeqNum* data() const {
      return reinterpret_cast<const SeqNum*>(this + 1);
    }
  };

  static Spill* alloc_spill(std::size_t n) {
    auto* block = static_cast<Spill*>(
        ::operator new(sizeof(Spill) + n * sizeof(SeqNum)));
    block->refs = 1;
    return block;
  }

  /// Writable view of the entries; detaches (clones) a shared spill block
  /// first, so outstanding snapshots stay frozen (the COW barrier).  Call
  /// only when a write will actually happen.
  SeqNum* mutable_data() {
    if (!spilled()) return inline_;
    if (spill_->refs == 1) return spill_->data();
    Spill* fresh = alloc_spill(size_);
    std::memcpy(fresh->data(), spill_->data(), size_ * sizeof(SeqNum));
    --spill_->refs;
    spill_ = fresh;
    return fresh->data();
  }

  void init_members(const SeqNum* data, std::size_t n) {
    size_ = static_cast<std::uint32_t>(n);
    if (n <= kInlineEntries) {
      std::memset(inline_, 0, sizeof(inline_));
      if (n > 0) std::memcpy(inline_, data, n * sizeof(SeqNum));
      return;
    }
    Spill* block = alloc_spill(n);
    std::memcpy(block->data(), data, n * sizeof(SeqNum));
    spill_ = block;
  }

  // GCC's -Wuse-after-free (new in GCC 12) path-explores sequences of
  // inlined destructors of instances sharing one spill block and flags the
  // branch where an earlier destructor freed the block (refs hit 0) and a
  // later one reads `refs` — a branch the refcount makes unreachable (refs
  // reaches 0 in exactly one destructor).  Suppress just this diagnostic
  // here, only where the warning group exists (an unknown group would
  // itself be a -Werror failure on older GCC / Clang); ASan in CI checks
  // the property for real.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ >= 12
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuse-after-free"
#endif
  void release() {
    if (spilled() && --spill_->refs == 0) {
      ::operator delete(spill_);
    }
    size_ = 0;
  }
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ >= 12
#pragma GCC diagnostic pop
#endif

  void swap(Ddv& o) noexcept {
    // Byte-wise member swap: both representations are trivially movable
    // (the union holds either a POD array or a pointer).
    std::uint32_t ts = size_;
    size_ = o.size_;
    o.size_ = ts;
    unsigned char buf[sizeof(inline_)];
    std::memcpy(buf, inline_, sizeof(inline_));
    std::memcpy(inline_, o.inline_, sizeof(inline_));
    std::memcpy(o.inline_, buf, sizeof(inline_));
  }

  std::uint32_t size_{0};
  union {
    SeqNum inline_[kInlineEntries];  ///< active while size_ <= kInlineEntries
    Spill* spill_;                   ///< active while size_ >  kInlineEntries
  };
};

}  // namespace hc3i::proto
