#pragma once

// Direct Dependencies Vector (DDV), paper §3.2 (after Badrinath & Morin [2]).
//
// For cluster j, DDV[i] is the last sequence number received from cluster i
// (0 if none), and DDV[j] is cluster j's own SN.  "The size of the DDV is
// the number of clusters in the federation, not the number of nodes."

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/ids.hpp"

namespace hc3i::proto {

/// A cluster's direct-dependency vector.
class Ddv {
 public:
  Ddv() = default;
  /// A zero vector for a federation of `clusters` clusters, owned by
  /// `self`: DDV[self] is set to `own_sn`, everything else to 0.
  Ddv(std::size_t clusters, ClusterId self, SeqNum own_sn);

  /// Entry for cluster i.
  SeqNum at(ClusterId i) const;
  /// Update entry for cluster i to max(current, sn); returns true if raised.
  bool raise(ClusterId i, SeqNum sn);
  /// Set the owner's entry (kept equal to the cluster SN).
  void set(ClusterId i, SeqNum sn);
  /// Number of entries (== number of clusters).
  std::size_t size() const { return v_.size(); }
  /// Raw entries (for serialisation / piggybacking).
  const std::vector<SeqNum>& values() const { return v_; }
  /// Merge: entry-wise maximum with another vector of the same size.
  /// Used by the transitive-piggybacking extension (paper §7).
  void merge_max(const Ddv& other);

  bool operator==(const Ddv&) const = default;

  /// "(3, 0, 4)" — rendering used in traces, mirroring the paper's figures.
  std::string to_string() const;

 private:
  std::vector<SeqNum> v_;
};

}  // namespace hc3i::proto
