#include "proto/payload_pool.hpp"

#include <atomic>

namespace hc3i::proto {

namespace detail {

std::uint32_t next_pool_type_index() {
  // The single cross-thread touch point of the pool layer: a dense index per
  // payload type, assigned at first use.  Everything downstream (the lists
  // themselves) is arena-owned and single-threaded.
  // lint: static-ok(type-index registry: atomic, monotonic, id-assignment
  // only — never feeds simulated state or dump order)
  static std::atomic<std::uint32_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

void* heap_block(PayloadArena* owner, std::size_t bytes) {
#if HC3I_POOL_OWNER_TAG_ENABLED
  auto* base = static_cast<char*>(::operator new(kHeaderBytes + bytes));
  reinterpret_cast<BlockHeader*>(base)->owner = owner;
  return base + kHeaderBytes;
#else
  (void)owner;
  return ::operator new(bytes);
#endif
}

void heap_free(void* payload) {
#if HC3I_POOL_OWNER_TAG_ENABLED
  ::operator delete(static_cast<char*>(payload) - kHeaderBytes);
#else
  ::operator delete(payload);
#endif
}

}  // namespace detail

void PayloadArena::release_all() {
  for (auto& list : lists_) {
    for (void* base : list) ::operator delete(base);
    list.clear();
  }
}

void* PayloadArena::allocate(std::uint32_t type, std::size_t bytes) {
  if (type < lists_.size() && !lists_[type].empty()) {
    void* base = lists_[type].back();
    lists_[type].pop_back();
    ++reused_;
    return static_cast<char*>(base) + detail::kHeaderBytes;
  }
  ++fresh_;
  return detail::heap_block(this, bytes);
}

void PayloadArena::release(std::uint32_t type, void* p) {
#if HC3I_POOL_OWNER_TAG_ENABLED
  // Refuse blocks another arena allocated: recycling them here would hand
  // shard A's storage to shard B — the exact failure the pool-isolation
  // regression tests pin.  (Pointer compare only; the owner may be long
  // gone and must not be dereferenced.)
  if (detail::block_owner(p) != this) {
    ++foreign_;
    detail::heap_free(p);
    return;
  }
#endif
  void* base = static_cast<char*>(p) - detail::kHeaderBytes;
  if (lists_.size() <= type) lists_.resize(type + 1);
  auto& list = lists_[type];
  if (list.size() < detail::kMaxPooledPerType) {
    list.push_back(base);
    return;
  }
  ::operator delete(base);
}

}  // namespace hc3i::proto
