#include "proto/gc_wire.hpp"

#include <limits>

#include "util/check.hpp"

namespace hc3i::proto {

namespace {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(const std::vector<std::uint8_t>& in,
                         std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    HC3I_CHECK(pos < in.size(), "gc_wire: truncated varint");
    HC3I_CHECK(shift < 64, "gc_wire: varint overflow");
    const std::uint8_t b = in[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

/// Zigzag: small negative deltas stay small (DDV entries are expected to be
/// non-decreasing across a cluster's retained records, but the codec does
/// not bet correctness on it).
std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

}  // namespace

EncodedClcMetas encode_clc_metas(const std::vector<ClcMeta>& metas) {
  EncodedClcMetas enc;
  put_varint(enc.bytes, metas.size());
  if (metas.empty()) return enc;

  const std::size_t width = metas.front().ddv.size();
  put_varint(enc.bytes, width);

  // The previous record's view; the first record diffs against SN 0 and an
  // all-zero DDV, so "all non-zero entries" falls out of the same code path.
  SeqNum prev_sn = 0;
  std::vector<SeqNum> prev(width, 0);
  for (const ClcMeta& m : metas) {
    HC3I_CHECK(m.ddv.size() == width, "gc_wire: ragged DDV widths");
    HC3I_CHECK(m.sn >= prev_sn, "gc_wire: records must be SN-ordered");
    put_varint(enc.bytes, m.sn - prev_sn);
    prev_sn = m.sn;

    const SeqNum* cur = m.ddv.data();
    std::size_t changed = 0;
    for (std::size_t i = 0; i < width; ++i) changed += cur[i] != prev[i];
    put_varint(enc.bytes, changed);
    std::size_t prev_idx = 0;  // one past the previous changed index
    for (std::size_t i = 0; i < width; ++i) {
      if (cur[i] == prev[i]) continue;
      put_varint(enc.bytes, i - prev_idx);
      put_varint(enc.bytes, zigzag(static_cast<std::int64_t>(cur[i]) -
                                   static_cast<std::int64_t>(prev[i])));
      prev_idx = i + 1;
      prev[i] = cur[i];
    }
  }
  return enc;
}

std::vector<ClcMeta> decode_clc_metas(const EncodedClcMetas& enc) {
  std::size_t pos = 0;
  const std::uint64_t count = get_varint(enc.bytes, pos);
  std::vector<ClcMeta> metas;
  if (count == 0) {
    HC3I_CHECK(pos == enc.bytes.size(), "gc_wire: trailing bytes");
    return metas;
  }
  const std::uint64_t width = get_varint(enc.bytes, pos);
  HC3I_CHECK(width > 0, "gc_wire: zero DDV width");
  // Bound both counts by the stream length before reserving: every record
  // costs at least two bytes (sn delta + changed count) and every DDV entry
  // at least one, so a crafted header cannot drive a huge allocation.
  HC3I_CHECK(count <= enc.bytes.size() / 2, "gc_wire: implausible count");
  HC3I_CHECK(width <= enc.bytes.size(), "gc_wire: implausible width");

  metas.reserve(count);
  SeqNum prev_sn = 0;
  std::vector<SeqNum> prev(width, 0);
  for (std::uint64_t r = 0; r < count; ++r) {
    // SN deltas are encoded unsigned (the encoder requires SN-ordered
    // records), so the only way past the SeqNum range is an adversarial
    // varint — reject it instead of wrapping prev_sn silently.  Comparing
    // the delta against the remaining headroom also rules out the
    // prev_sn + delta sum itself wrapping std::uint64_t.
    const std::uint64_t sn_delta = get_varint(enc.bytes, pos);
    HC3I_CHECK(sn_delta <= std::numeric_limits<SeqNum>::max() - prev_sn,
               "gc_wire: SN delta out of range");
    prev_sn += static_cast<SeqNum>(sn_delta);
    const std::uint64_t changed = get_varint(enc.bytes, pos);
    HC3I_CHECK(changed <= width, "gc_wire: changed count exceeds width");
    std::size_t idx = 0;  // one past the previous changed index
    for (std::uint64_t k = 0; k < changed; ++k) {
      idx += static_cast<std::size_t>(get_varint(enc.bytes, pos));
      HC3I_CHECK(idx < width, "gc_wire: changed index out of range");
      // Unsigned arithmetic: wraparound is defined, and any adversarial
      // delta that under- or overflows the SeqNum range lands outside
      // [0, max(SeqNum)] and is rejected — no signed-overflow UB window.
      const std::uint64_t value =
          static_cast<std::uint64_t>(prev[idx]) +
          static_cast<std::uint64_t>(unzigzag(get_varint(enc.bytes, pos)));
      HC3I_CHECK(value <= std::numeric_limits<SeqNum>::max(),
                 "gc_wire: DDV entry out of range");
      prev[idx] = static_cast<SeqNum>(value);
      ++idx;
    }
    ClcMeta m;
    m.sn = prev_sn;
    m.ddv = Ddv(prev.data(), width);
    metas.push_back(std::move(m));
  }
  HC3I_CHECK(pos == enc.bytes.size(), "gc_wire: trailing bytes");
  return metas;
}

std::uint64_t uncompressed_clc_metas_bytes(std::size_t records,
                                           std::size_t ddv_width,
                                           std::uint64_t per_entry_bytes) {
  return static_cast<std::uint64_t>(records) * ddv_width * per_entry_bytes;
}

}  // namespace hc3i::proto
