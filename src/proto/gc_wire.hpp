#pragma once

// Compressed wire form of the garbage-collection metadata exchange.
//
// The GC response carries "the list of all the DDVs associated with the
// stored CLCs" (paper §3.5), and §5.4 calls that list out as the GC's main
// network cost: uncompressed it is records x clusters entries, which grows
// quadratically along a scale-out sweep (more clusters means both wider
// DDVs and — under forced-CLC coupling — more retained records).
//
// Successive records of one cluster differ little: SNs increase by small
// steps and most DDV entries are unchanged between consecutive CLCs (DDV
// entries only move at forced commits, and only the entries of clusters
// that actually communicated).  So the list is delta-encoded:
//
//   varint record_count, varint ddv_width,
//   then per record:
//     varint sn_delta          (vs the previous record; first is absolute)
//     varint changed_count     (DDV entries that differ from the previous
//                               record; the first record lists all non-zero
//                               entries, diffed against an all-zero vector)
//     per changed entry: varint index_gap (vs previous changed index + 1;
//                        first is absolute), zigzag-varint value delta.
//
// The encoding is an actual byte stream, not a modelled size: the round
// trip (encode -> decode == input) is unit-tested, and the envelope's
// payload_bytes is the real encoded length, so the simulated network cost
// of GC is exactly what a wire implementation would pay.

#include <cstdint>
#include <vector>

#include "proto/recovery_line.hpp"

namespace hc3i::proto {

/// A delta+varint encoded list of ClcMeta records.
struct EncodedClcMetas {
  std::vector<std::uint8_t> bytes;

  /// Encoded length — the modelled (and actual) wire size.
  std::uint64_t wire_bytes() const { return bytes.size(); }

  bool operator==(const EncodedClcMetas&) const = default;
};

/// Encode a cluster's retained-CLC metadata (ascending-SN order, uniform
/// DDV width — both HC3I invariants, checked).
EncodedClcMetas encode_clc_metas(const std::vector<ClcMeta>& metas);

/// Decode; throws CheckFailure on a malformed stream.  Inverse of
/// encode_clc_metas for any valid input.
std::vector<ClcMeta> decode_clc_metas(const EncodedClcMetas& enc);

/// The uncompressed size model the response used to be charged:
/// records x ddv_width x per-entry bytes.  Kept for the compression-ratio
/// statistic ("gc.resp_bytes_saved").
std::uint64_t uncompressed_clc_metas_bytes(std::size_t records,
                                           std::size_t ddv_width,
                                           std::uint64_t per_entry_bytes);

}  // namespace hc3i::proto
