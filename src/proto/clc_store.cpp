#include "proto/clc_store.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hc3i::proto {

ClcStore::ClcStore(ClusterId cluster, std::uint32_t nodes,
                   std::uint32_t replication)
    : cluster_(cluster), nodes_(nodes), replication_(replication) {
  HC3I_CHECK(nodes_ >= 1, "ClcStore: empty cluster");
  HC3I_CHECK(replication_ < nodes_,
             "ClcStore: replication degree must be below cluster size");
}

void ClcStore::commit(ClcRecord rec) {
  HC3I_CHECK(rec.parts.size() == nodes_,
             "ClcStore: record must carry one part per node");
  HC3I_CHECK(records_.empty() || rec.sn > records_.back().sn,
             "ClcStore: SNs must be strictly increasing");
  HC3I_CHECK(rec.ddv.at(cluster_) == rec.sn,
             "ClcStore: own DDV entry must equal the record SN");
  records_.push_back(std::move(rec));
}

const ClcRecord& ClcStore::last() const {
  HC3I_CHECK(!records_.empty(), "ClcStore: no committed CLC");
  return records_.back();
}

const ClcRecord* ClcStore::oldest_with_dep_at_least(ClusterId f,
                                                    SeqNum sn) const {
  for (const auto& r : records_) {
    if (r.ddv.at(f) >= sn) return &r;
  }
  return nullptr;
}

const ClcRecord* ClcStore::find(SeqNum sn) const {
  for (const auto& r : records_) {
    if (r.sn == sn) return &r;
  }
  return nullptr;
}

std::size_t ClcStore::truncate_after(SeqNum sn) {
  const std::size_t before = records_.size();
  records_.erase(
      std::remove_if(records_.begin(), records_.end(),
                     [&](const ClcRecord& r) { return r.sn > sn; }),
      records_.end());
  return before - records_.size();
}

std::size_t ClcStore::prune_before(SeqNum min_sn) {
  const std::size_t before = records_.size();
  records_.erase(
      std::remove_if(records_.begin(), records_.end(),
                     [&](const ClcRecord& r) { return r.sn < min_sn; }),
      records_.end());
  return before - records_.size();
}

std::uint64_t ClcStore::chain_read_bytes(SeqNum sn,
                                         std::uint32_t node_idx) const {
  HC3I_CHECK(node_idx < nodes_, "chain_read_bytes: bad node index");
  std::size_t at = records_.size();
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].sn == sn) {
      at = i;
      break;
    }
  }
  HC3I_CHECK(at < records_.size(), "chain_read_bytes: SN not retained");
  std::uint64_t total = 0;
  for (std::size_t i = at + 1; i-- > 0;) {
    const AppSnapshot& app = records_[i].parts[node_idx].app;
    if (!app.incremental) {
      total += app.state_bytes;  // the chain base: stop here
      return total;
    }
    if (i == 0) {
      // The true base was garbage-collected; the oldest retained record was
      // rebased to a full image when its predecessors were pruned.
      total += app.state_bytes;
      return total;
    }
    total += app.delta_bytes;
  }
  return total;
}

std::uint64_t ClcStore::storage_bytes() const {
  std::uint64_t total = 0;
  for (const auto& r : records_) {
    std::uint64_t rec_bytes = 0;
    for (const auto& p : r.parts) {
      // Incremental captures store the touched-range delta, full captures
      // the whole state image.
      rec_bytes += p.app.incremental ? p.app.delta_bytes : p.app.state_bytes;
      rec_bytes += p.dedup.size() * sizeof(std::uint64_t);
      for (const auto& e : p.log.entries()) rec_bytes += e.env.wire_bytes();
    }
    for (const auto& ch : r.channel) rec_bytes += ch.wire_bytes();
    total += rec_bytes * (1 + replication_);
  }
  return total;
}

}  // namespace hc3i::proto
