#pragma once

// Per-type pooling for control-message payloads.
//
// Every control message used to be a fresh std::make_shared<T>() — one heap
// allocation per message for payloads whose lifetime is a few simulated
// microseconds.  A CLC round allocates ~4 payloads per node per round, and
// at 10 clusters x 100 nodes that churn was the largest remaining term of
// the whole_sim allocations-per-event budget.
//
// make_pooled<T>() is a drop-in replacement for make_shared<T>(): it uses
// std::allocate_shared with an allocator whose free list is keyed by the
// concrete control-block type, so each payload type gets its own pool.  A
// block is recycled only after BOTH the payload object and its control
// block are released (shared_ptr semantics are untouched — a live reference
// anywhere, including the network's in-flight envelopes or a sender log,
// keeps the storage exclusively owned).  Steady-state control traffic
// therefore allocates nothing: a send is a free-list pop + placement
// construction.
//
// Single-threaded by design, like the rest of the simulator: the free
// lists are plain vectors.  Each pool is bounded (kMaxPooledPerType) so a
// burst (a GC round fanning out to every cluster, say) cannot pin
// unbounded memory; overflow falls back to the global heap.

#include <cstddef>
#include <memory>
#include <vector>

namespace hc3i::proto {

namespace detail {

/// Upper bound on idle blocks retained per payload type.
inline constexpr std::size_t kMaxPooledPerType = 4096;

/// One free list per allocated block type (allocate_shared's internal
/// control-block-plus-object type, so per payload type in practice).
/// Idle blocks parked in the list are raw storage (their objects are
/// already destroyed), so the holder releases them at static destruction —
/// otherwise the vector's own teardown would drop the only pointers to
/// them and the sanitized build (CI job `sanitize`) would report every
/// parked block as leaked.
template <typename Block>
struct PayloadFreeList {
  struct Holder {
    std::vector<void*> blocks;
    ~Holder() {
      for (void* p : blocks) ::operator delete(p);
    }
  };
  static std::vector<void*>& list() {
    static Holder h;
    return h.blocks;
  }
};

}  // namespace detail

/// Allocator backing make_pooled(): single-object allocations come from a
/// per-type free list; array allocations (never used by allocate_shared
/// here) pass through to the heap.
template <typename T>
struct PayloadPoolAllocator {
  using value_type = T;

  PayloadPoolAllocator() = default;
  template <typename U>
  PayloadPoolAllocator(const PayloadPoolAllocator<U>&) {}

  T* allocate(std::size_t n) {
    if (n == 1) {
      auto& fl = detail::PayloadFreeList<T>::list();
      if (!fl.empty()) {
        void* p = fl.back();
        fl.pop_back();
        return static_cast<T*>(p);
      }
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) {
    if (n == 1) {
      auto& fl = detail::PayloadFreeList<T>::list();
      if (fl.size() < detail::kMaxPooledPerType) {
        fl.push_back(p);
        return;
      }
    }
    ::operator delete(p);
  }

  template <typename U>
  bool operator==(const PayloadPoolAllocator<U>&) const {
    return true;
  }
};

/// Drop-in replacement for std::make_shared<T>() whose storage is recycled
/// through a per-type pool once the last reference drops.
template <typename T, typename... Args>
std::shared_ptr<T> make_pooled(Args&&... args) {
  return std::allocate_shared<T>(PayloadPoolAllocator<T>{},
                                 std::forward<Args>(args)...);
}

}  // namespace hc3i::proto
