#pragma once

// Per-type pooling for control-message payloads, owned by a PayloadArena.
//
// Every control message used to be a fresh std::make_shared<T>() — one heap
// allocation per message for payloads whose lifetime is a few simulated
// microseconds.  A CLC round allocates ~4 payloads per node per round, and
// at 10 clusters x 100 nodes that churn was the largest remaining term of
// the whole_sim allocations-per-event budget.
//
// make_pooled<T>() is a drop-in replacement for make_shared<T>(): it uses
// std::allocate_shared with an allocator whose free list is keyed by the
// concrete control-block type, so each payload type gets its own pool.  A
// block is recycled only after BOTH the payload object and its control
// block are released (shared_ptr semantics are untouched — a live reference
// anywhere, including the network's in-flight envelopes or a sender log,
// keeps the storage exclusively owned).  Steady-state control traffic
// therefore allocates nothing: a send is a free-list pop + placement
// construction.
//
// Ownership model (the sharded-batch refactor): the free lists are NOT
// process-global statics.  They live in a PayloadArena that a worker owns —
// one arena per shard of a parameter sweep, installed as the calling
// thread's current arena for the duration of a run (ScopedPayloadArena;
// driver::run_simulation does this from its SimContext).  Two consequences:
//
//   * Shard isolation: a block allocated by worker A is never recycled into
//     worker B's free list.  Arenas are deliberately NOT thread-safe and
//     the lists are plain vectors — each shard is a complete single-threaded
//     simulator, so sharing would only buy contention.  ThreadSanitizer
//     (CI job `tsan`, -DHC3I_TSAN=ON) checks the no-sharing claim for real;
//     debug builds additionally tag every block with its owning arena and
//     refuse (heap-free + count) a return to the wrong arena.
//
//   * Deterministic teardown: parked blocks are released by ~PayloadArena,
//     when the owning worker decides, not at static destruction.  With no
//     arena installed make_pooled() degrades to plain heap traffic — there
//     is no global list to park into, so nothing can leak past main().
//
// Each per-type list is bounded (kMaxPooledPerType) so a burst (a GC round
// fanning out to every cluster, say) cannot pin unbounded memory; overflow
// falls back to the global heap.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

// Owner-tag instrumentation (the cross-shard-recycle tripwire): every block
// carries a small header naming the arena that allocated it, and a release
// seen by a different arena heap-frees the block instead of adopting it,
// bumping PayloadArena::foreign_returns().  Debug builds always have it;
// the sanitizer builds (HC3I_SANITIZE / HC3I_TSAN) force it on via
// HC3I_POOL_OWNER_TAG so the pool-isolation regression tests stay armed
// under RelWithDebInfo's NDEBUG.
#if !defined(NDEBUG) || defined(HC3I_POOL_OWNER_TAG)
#define HC3I_POOL_OWNER_TAG_ENABLED 1
#else
#define HC3I_POOL_OWNER_TAG_ENABLED 0
#endif

namespace hc3i::proto {

class PayloadArena;

/// True when blocks carry owner tags (see above); the pool-isolation tests
/// skip their tag assertions when built without them.
inline constexpr bool kPoolOwnerTagEnabled = HC3I_POOL_OWNER_TAG_ENABLED != 0;

namespace detail {

/// Upper bound on idle blocks retained per payload type per arena.
inline constexpr std::size_t kMaxPooledPerType = 4096;

/// Dense per-process index for each allocated block type (allocate_shared's
/// internal control-block-plus-object type, so per payload type in
/// practice).  Assignment happens once per type at first use; the counter
/// behind it is the pool layer's only cross-thread state and is atomic.
std::uint32_t next_pool_type_index();

template <typename Block>
std::uint32_t pool_type_index() {
  static const std::uint32_t idx = next_pool_type_index();
  return idx;
}

/// The calling thread's current arena (null outside any installed scope).
// lint: static-ok(arena install point: thread_local by design — each batch
// worker installs its own arena, nothing crosses threads)
inline thread_local PayloadArena* t_current_arena = nullptr;

#if HC3I_POOL_OWNER_TAG_ENABLED
/// Block header under owner tagging; sized to max_align_t so the payload
/// that follows keeps fundamental alignment.
struct alignas(std::max_align_t) BlockHeader {
  PayloadArena* owner;
};
inline constexpr std::size_t kHeaderBytes = sizeof(BlockHeader);
#else
inline constexpr std::size_t kHeaderBytes = 0;
#endif

}  // namespace detail

/// A worker-owned set of per-type payload free lists.  Single-threaded by
/// design: exactly one thread may have an arena installed at a time, and
/// the batch runner gives each worker thread its own (via its SimContext).
/// Destroying the arena releases every parked block — teardown is owned by
/// the worker, not by static destruction order.
class PayloadArena {
 public:
  PayloadArena() = default;
  ~PayloadArena() { release_all(); }
  PayloadArena(const PayloadArena&) = delete;
  PayloadArena& operator=(const PayloadArena&) = delete;

  /// The calling thread's installed arena (null when none).
  static PayloadArena* current() { return detail::t_current_arena; }

  /// Idle blocks currently parked across all types.
  std::size_t parked_blocks() const {
    std::size_t n = 0;
    for (const auto& list : lists_) n += list.size();
    return n;
  }

  /// Allocations served from a free list (the pool-warmth number: a reused
  /// arena's second run pops these instead of paying fresh heap traffic).
  std::uint64_t reused_blocks() const { return reused_; }
  /// Allocations that had to touch the heap (cold pool or burst overflow).
  std::uint64_t fresh_blocks() const { return fresh_; }
  /// Returns of a block owned by a *different* arena: refused and
  /// heap-freed instead of recycled (only observable with owner tags; the
  /// shard-isolation contract says this stays 0 in correct usage).
  std::uint64_t foreign_returns() const { return foreign_; }

  /// Drop every parked block back to the heap (also done by ~PayloadArena).
  void release_all();

  // -- allocator plumbing (PayloadPoolAllocator only) ----------------------

  /// Pop a block of `bytes` for type `type`, or carve a fresh one.  The
  /// returned pointer is the payload area (past the owner-tag header).
  void* allocate(std::uint32_t type, std::size_t bytes);

  /// Park payload pointer `p` of type `type` if this arena owns it and the
  /// list has room; heap-free otherwise.
  void release(std::uint32_t type, void* p);

 private:
  friend class ScopedPayloadArena;

  std::vector<std::vector<void*>> lists_;  ///< base pointers, per type index
  std::uint64_t reused_{0};
  std::uint64_t fresh_{0};
  std::uint64_t foreign_{0};
};

/// RAII install of an arena as the calling thread's current arena.  Scopes
/// nest (the previous arena is restored), though in practice one scope per
/// run suffices.
class ScopedPayloadArena {
 public:
  explicit ScopedPayloadArena(PayloadArena& arena)
      : prev_(detail::t_current_arena) {
    detail::t_current_arena = &arena;
  }
  ~ScopedPayloadArena() { detail::t_current_arena = prev_; }
  ScopedPayloadArena(const ScopedPayloadArena&) = delete;
  ScopedPayloadArena& operator=(const ScopedPayloadArena&) = delete;

 private:
  PayloadArena* prev_;
};

namespace detail {

/// Heap path shared by the no-arena fallback and arena misses: allocates
/// header + payload, tags the owner, returns the payload area.
void* heap_block(PayloadArena* owner, std::size_t bytes);

/// Free a payload pointer produced by heap_block()/PayloadArena::allocate.
void heap_free(void* payload);

#if HC3I_POOL_OWNER_TAG_ENABLED
/// The tagged owner of payload pointer `p` (null for no-arena blocks).
inline PayloadArena* block_owner(void* p) {
  return reinterpret_cast<BlockHeader*>(static_cast<char*>(p) -
                                        kHeaderBytes)->owner;
}
#endif

}  // namespace detail

/// Allocator backing make_pooled(): single-object allocations come from the
/// thread-current arena's per-type free list (plain heap when no arena is
/// installed); array allocations (never used by allocate_shared here) pass
/// through to the heap.
template <typename T>
struct PayloadPoolAllocator {
  using value_type = T;

  PayloadPoolAllocator() = default;
  template <typename U>
  PayloadPoolAllocator(const PayloadPoolAllocator<U>&) {}

  T* allocate(std::size_t n) {
    if (n == 1) {
      if (PayloadArena* a = PayloadArena::current()) {
        return static_cast<T*>(
            a->allocate(detail::pool_type_index<T>(), sizeof(T)));
      }
      return static_cast<T*>(detail::heap_block(nullptr, sizeof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) {
    if (n == 1) {
      if (PayloadArena* a = PayloadArena::current()) {
        a->release(detail::pool_type_index<T>(), p);
      } else {
        detail::heap_free(p);
      }
      return;
    }
    ::operator delete(p);
  }

  template <typename U>
  bool operator==(const PayloadPoolAllocator<U>&) const {
    return true;
  }
};

/// Drop-in replacement for std::make_shared<T>() whose storage is recycled
/// through the thread-current arena's per-type pool once the last reference
/// drops.
template <typename T, typename... Args>
std::shared_ptr<T> make_pooled(Args&&... args) {
  return std::allocate_shared<T>(PayloadPoolAllocator<T>{},
                                 std::forward<Args>(args)...);
}

}  // namespace hc3i::proto
