#pragma once

// Consistency ledger — the ground-truth oracle for recovery correctness.
//
// The paper defines consistency (§2.2): a stored global state must contain
// "neither in-transit messages (sent but not received) nor ghost-messages
// (received but not sent)".  The ledger operationalises that for a whole
// execution with rollbacks: every application send and delivery is recorded
// with a global sequence number and its owner (node + cluster); a rollback
// *undoes* the owner's events newer than the restored checkpoint's cut —
// cluster-wide for cluster-granularity protocols (HC3I, the coordinated
// baselines), per-node for the pessimistic-logging baseline.
// At the end of a run (after a drain), for every logical message:
//
//   * at most one live delivery (no duplicates),
//   * a live delivery implies a live send (no ghost messages),
//   * a live send implies a live delivery (reliable network: nothing lost).
//
// Any checkpointing protocol wired through proto::AgentBase gets audited
// automatically; the property tests drive random failures through it.

#include <cstdint>
#include <string>
#include <vector>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace hc3i::proto {

/// Ledger of application-level send/delivery events.
class ConsistencyLedger {
 public:
  /// Record a send of logical message `app_seq` whose send-state belongs to
  /// node `src` in cluster `src_cluster`. Returns the event's sequence.
  std::uint64_t record_send(std::uint64_t app_seq, NodeId src,
                            ClusterId src_cluster, SimTime t);

  /// Record a delivery of `app_seq` into node `dst`'s state.
  std::uint64_t record_delivery(std::uint64_t app_seq, NodeId dst,
                                ClusterId dst_cluster, SimTime t);

  /// Current cut: events with sequence <= mark() are "in the state so far".
  /// Checkpoints store this; rollbacks undo past it.
  std::uint64_t mark() const { return next_seq_; }

  /// Undo every live event owned by any node of cluster `c` with sequence
  /// > `mark` (the whole cluster rolled back to that cut).
  void undo_after(ClusterId c, std::uint64_t mark);

  /// Undo every live event owned by node `n` with sequence > `mark`
  /// (per-node rollback, pessimistic-logging baseline).
  void undo_after_node(NodeId n, std::uint64_t mark);

  /// Validate the whole history.  When `allow_in_flight` is true, messages
  /// with a live send but no delivery are tolerated (simulation stopped at
  /// a hard horizon); ghosts and duplicates never are.
  /// Returns human-readable violations; empty means consistent.
  std::vector<std::string> validate(bool allow_in_flight) const;

  /// Count of undone events (both kinds) — a measure of rolled-back work.
  std::uint64_t undone_events() const { return undone_count_; }
  /// Total events recorded.
  std::uint64_t total_events() const { return events_.size(); }

 private:
  enum class Kind : std::uint8_t { kSend, kDelivery };
  struct Event {
    std::uint64_t seq;
    std::uint64_t app_seq;
    Kind kind;
    NodeId owner_node;     ///< whose state the event belongs to
    ClusterId owner_cluster;
    SimTime t;
    bool undone{false};
  };

  std::vector<Event> events_;
  std::uint64_t next_seq_{0};
  std::uint64_t undone_count_{0};
};

}  // namespace hc3i::proto
