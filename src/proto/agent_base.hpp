#pragma once

// Shared agent plumbing.
//
// AgentBase centralises the bookkeeping every protocol must get right so the
// consistency ledger audits all of them uniformly:
//
//   * send_app()     — build the envelope, record the send in the ledger at
//                      the moment it actually enters the network (queued
//                      sends are recorded at drain time, which is what makes
//                      checkpoint cuts exact — DESIGN.md §3),
//   * deliver_app()  — record the delivery and hand the message to the app,
//   * send_control() / broadcast helpers for protocol traffic.

#include "proto/agent.hpp"

namespace hc3i::proto {

/// Base class with ledger-audited send/deliver helpers.
class AgentBase : public ProtocolAgent {
 public:
  using ProtocolAgent::ProtocolAgent;

 protected:
  /// Transmit an application message now. Records the send in the ledger.
  /// Returns the envelope as sent (id assigned) for sender-side logging.
  net::Envelope send_app(NodeId dst, std::uint64_t bytes,
                         std::uint64_t app_seq, const net::Piggyback& piggy);

  /// Re-transmit a logged envelope (same app_seq and piggyback, new MsgId).
  /// The ledger sees resends as additional live sends of the same logical
  /// message. Returns the new envelope for re-logging.
  net::Envelope resend_app(const net::Envelope& original);

  /// Deliver an application message to the local process (ledger-recorded).
  void deliver_app(const net::Envelope& env);

  /// Transmit a control message carrying `payload`.
  MsgId send_control(NodeId dst, std::uint64_t bytes,
                     std::shared_ptr<const net::ControlPayload> payload);

  /// Like send_control, but a message to self is processed locally through
  /// on_message via an immediately scheduled event (uniform code path).
  void send_control_or_local(NodeId dst, std::uint64_t bytes,
                             std::shared_ptr<const net::ControlPayload> payload);

  /// Send a control message to every node of `cluster` except self;
  /// when `include_self` is set the payload is also processed locally.
  void broadcast_control(ClusterId cluster, std::uint64_t bytes,
                         std::shared_ptr<const net::ControlPayload> payload,
                         bool include_self);

  /// Simulation clock shorthand.
  SimTime now() const { return ctx_.sim->now(); }

  /// Lazily resolve a registry counter handle into `slot`: the name lookup
  /// happens once per agent, the counter still only exists once touched.
  stats::Counter& named_stat(stats::Counter*& slot, std::string_view name) {
    return stats::lazy_counter(*ctx_.registry, slot, [name] { return name; });
  }

  /// Lazily resolve a summary handle (see named_stat()).
  stats::Summary& named_summary(stats::Summary*& slot, std::string_view name) {
    return stats::lazy_summary(*ctx_.registry, slot, [name] { return name; });
  }

  /// First node of a cluster — the conventional coordinator.
  NodeId coordinator_of(ClusterId c) const {
    return ctx_.topology->first_node(c);
  }
  bool is_cluster_coordinator() const {
    return self() == coordinator_of(cluster());
  }

 private:
  net::Envelope make_local_control(
      std::uint64_t bytes,
      std::shared_ptr<const net::ControlPayload> payload) const;
  /// Schedule `payload` for immediate local processing through on_message.
  void deliver_control_locally(
      std::uint64_t bytes, std::shared_ptr<const net::ControlPayload> payload);
};

}  // namespace hc3i::proto
