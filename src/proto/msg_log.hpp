#pragma once

// Sender-side optimistic message log (paper §3.3).
//
// "When a message is sent outside a cluster, the sender logs it
// optimistically in its volatile memory (logged messages are used only if
// the sender does not rollback).  The message is acknowledged with the
// receiver's SN which is logged along with the message itself."
//
// Entries record the acknowledging incarnation too (DESIGN.md §3.4-3.5):
// after a rollback alert (f, restored_sn, new_inc) the sender re-sends the
// logged messages to f that are unacknowledged, or whose ack came from a
// pre-rollback incarnation with ack SN >= restored_sn.

#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "util/ids.hpp"

namespace hc3i::proto {

/// One logged inter-cluster message.
struct LogEntry {
  net::Envelope env;          ///< the original send (payload + piggyback)
  bool acked{false};
  SeqNum ack_sn{0};           ///< receiver cluster's SN at delivery
  Incarnation ack_inc{0};     ///< receiver cluster's incarnation at delivery
};

/// A node's volatile log of its own inter-cluster sends.
class MsgLog {
 public:
  /// Log a freshly sent message.
  void add(const net::Envelope& env);

  /// Record the receiver's acknowledgement for message `id`.
  /// Unknown ids are ignored (the entry may have been pruned by GC or
  /// truncated by a local rollback — both make the ack moot).
  void record_ack(MsgId id, SeqNum ack_sn, Incarnation ack_inc);

  /// Envelopes to re-send after rollback alert (dst, restored_sn, new_inc).
  /// Marks nothing; the caller re-sends and the new transmissions get
  /// logged as fresh entries, so the old entries are dropped here.
  std::vector<net::Envelope> take_resends(ClusterId dst, SeqNum restored_sn,
                                          Incarnation new_inc);

  /// Local rollback to SN `restored_sn`: drop entries whose send happened
  /// at or after the restored checkpoint (piggyback SN >= restored_sn) —
  /// those sends are undone and will be re-executed by the application.
  std::size_t truncate_from(SeqNum restored_sn);

  /// Garbage collection (paper §3.5): drop entries to cluster `dst` that
  /// are acknowledged with an SN strictly below `min_sn` — cluster `dst`
  /// can never roll back past min_sn, so those deliveries are stable.
  std::size_t prune(ClusterId dst, SeqNum min_sn);

  /// Number of live entries.
  std::size_t size() const { return entries_.size(); }
  /// Entries whose acknowledgement has not arrived yet (messages whose
  /// delivery is still unconfirmed — the paper's §5.4 "logged messages"
  /// high-water counts these).  Maintained incrementally: the high-water
  /// instrumentation reads this on every inter-cluster send.
  std::size_t unacked_count() const { return unacked_; }
  /// Modelled bytes held by the log.
  std::uint64_t bytes() const;
  /// Read-only view (tests, checkpoint capture).
  const std::vector<LogEntry>& entries() const { return entries_; }
  /// Replace the whole log (restoring a failed node from its checkpointed
  /// log copy — DESIGN.md §3 refinement).
  void restore(std::vector<LogEntry> entries) {
    entries_ = std::move(entries);
    recount_unacked();
  }

 private:
  void recount_unacked();

  // Entries are appended as messages are sent, and every (re-)send gets a
  // fresh, globally increasing MsgId from the network — so entries_ is
  // always sorted by env.id and record_ack() can binary-search instead of
  // scanning.
  std::vector<LogEntry> entries_;
  std::size_t unacked_{0};
};

}  // namespace hc3i::proto
