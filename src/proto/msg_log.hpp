#pragma once

// Sender-side optimistic message log (paper §3.3).
//
// "When a message is sent outside a cluster, the sender logs it
// optimistically in its volatile memory (logged messages are used only if
// the sender does not rollback).  The message is acknowledged with the
// receiver's SN which is logged along with the message itself."
//
// Entries record the acknowledging incarnation too (DESIGN.md §3.4-3.5):
// after a rollback alert (f, restored_sn, new_inc) the sender re-sends the
// logged messages to f that are unacknowledged, or whose ack came from a
// pre-rollback incarnation with ack SN >= restored_sn.

#include <cstdint>
#include <memory>
#include <vector>

#include "net/message.hpp"
#include "util/ids.hpp"

namespace hc3i::proto {

/// One logged inter-cluster message.
struct LogEntry {
  net::Envelope env;          ///< the original send (payload + piggyback)
  bool acked{false};
  SeqNum ack_sn{0};           ///< receiver cluster's SN at delivery
  Incarnation ack_inc{0};     ///< receiver cluster's incarnation at delivery
};

/// An immutable shared snapshot of a sender log, captured at CLC time.
///
/// Capturing is O(1): the image shares the log's backing storage, and the
/// live MsgLog copies that storage lazily before its next mutation
/// (copy-on-write).  A node whose log did not change between two CLCs —
/// the common case for the many nodes that never send inter-cluster —
/// therefore pays nothing per checkpoint, and copying an image (phase-1
/// acks carry one per node per round) is a refcount bump, not a deep copy.
class LogImage {
 public:
  LogImage() = default;

  /// The captured entries (empty for a default-constructed image).
  const std::vector<LogEntry>& entries() const {
    static const std::vector<LogEntry> kEmpty;
    return data_ ? *data_ : kEmpty;
  }
  std::size_t size() const { return data_ ? data_->size() : 0; }

  /// True when two images share one backing buffer (tests assert the
  /// capture-twice-without-mutation case stays shared).
  bool shares_storage_with(const LogImage& o) const {
    return data_ != nullptr && data_ == o.data_;
  }

 private:
  friend class MsgLog;
  explicit LogImage(std::shared_ptr<const std::vector<LogEntry>> d)
      : data_(std::move(d)) {}

  std::shared_ptr<const std::vector<LogEntry>> data_;
};

/// A node's volatile log of its own inter-cluster sends.
class MsgLog {
 public:
  /// Log a freshly sent message.
  void add(const net::Envelope& env);

  /// Record the receiver's acknowledgement for message `id`.
  /// Unknown ids are ignored (the entry may have been pruned by GC or
  /// truncated by a local rollback — both make the ack moot).
  void record_ack(MsgId id, SeqNum ack_sn, Incarnation ack_inc);

  /// Envelopes to re-send after rollback alert (dst, restored_sn, new_inc).
  /// Marks nothing; the caller re-sends and the new transmissions get
  /// logged as fresh entries, so the old entries are dropped here.
  std::vector<net::Envelope> take_resends(ClusterId dst, SeqNum restored_sn,
                                          Incarnation new_inc);

  /// Local rollback to SN `restored_sn`: drop entries whose send happened
  /// at or after the restored checkpoint (piggyback SN >= restored_sn) —
  /// those sends are undone and will be re-executed by the application.
  std::size_t truncate_from(SeqNum restored_sn);

  /// Garbage collection (paper §3.5): drop entries to cluster `dst` that
  /// are acknowledged with an SN strictly below `min_sn` — cluster `dst`
  /// can never roll back past min_sn, so those deliveries are stable.
  std::size_t prune(ClusterId dst, SeqNum min_sn);

  /// Number of live entries.
  std::size_t size() const { return entries_ ? entries_->size() : 0; }
  /// Entries whose acknowledgement has not arrived yet (messages whose
  /// delivery is still unconfirmed — the paper's §5.4 "logged messages"
  /// high-water counts these).  Maintained incrementally: the high-water
  /// instrumentation reads this on every inter-cluster send.
  std::size_t unacked_count() const { return unacked_; }
  /// Modelled bytes held by the log.
  std::uint64_t bytes() const;
  /// Read-only view (tests, checkpoint capture).
  const std::vector<LogEntry>& entries() const {
    static const std::vector<LogEntry> kEmpty;
    return entries_ ? *entries_ : kEmpty;
  }
  /// Capture the log as a shared immutable image — O(1); the live log
  /// detaches (copies) lazily before its next mutation.
  LogImage capture() const { return LogImage{entries_}; }
  /// Replace the whole log from a captured image (restoring a failed node
  /// from its checkpointed log copy — DESIGN.md §3 refinement).  Adopts the
  /// image's storage without copying; a later mutation detaches first.
  void restore(const LogImage& image);

 private:
  void recount_unacked();
  /// Copy-on-write barrier: clone the backing storage iff it is shared
  /// with a captured image (or another log restored from one).
  void detach();

  // Entries are appended as messages are sent, and every (re-)send gets a
  // fresh, globally increasing MsgId from the network — so entries_ is
  // always sorted by env.id and record_ack() can binary-search instead of
  // scanning.
  //
  // The vector lives behind a shared_ptr so capture() can freeze it by
  // sharing; every mutator calls detach() first, which clones only while a
  // capture is alive.  Null means "never logged anything" — most nodes of a
  // large federation never send inter-cluster, and their logs (and every
  // capture of them) must not cost an allocation.
  std::shared_ptr<std::vector<LogEntry>> entries_;
  std::size_t unacked_{0};
};

}  // namespace hc3i::proto
