#pragma once

// Synthetic code-coupling workload (paper §2.1 application model, §5.1
// application file).
//
// Each node runs the classic compute/communicate loop: draw an
// exponentially distributed computation time (the per-cluster mean comes
// from the application file), then send one message whose destination
// cluster is drawn from the cluster's traffic-weight row and whose
// destination node is uniform within that cluster.  "Processes inside the
// same group communicate a lot while communications between processes
// belonging to different groups are limited" — the weights encode that.
//
// Replay model: every decision (compute time, destination) of step i on
// node n is a pure function of (master seed, n, i, salt).  With salt fixed
// (kDeterministic) a restored node re-executes identically — the PWD
// assumption the pessimistic-logging baseline needs (paper §2.2).  With
// kDivergent the salt changes on every restore, so re-execution takes a
// different path — demonstrating that HC3I makes no determinism assumption
// ("Our protocol does not need any assumption upon the application
// determinism", paper §6).

#include <memory>
#include <optional>
#include <vector>

#include "config/spec.hpp"
#include "net/topology.hpp"
#include "proto/agent.hpp"
#include "proto/snapshot.hpp"
#include "sim/simulation.hpp"
#include "stats/registry.hpp"

namespace hc3i::app {

/// How a node behaves when re-executed after a rollback.
enum class ReplayMode {
  kDivergent,      ///< re-execution draws fresh randomness (no PWD)
  kDeterministic,  ///< re-execution repeats the original run (PWD)
};

class Workload;

/// One process of the code-coupling application.
class WorkloadNode final : public proto::AppHandle {
 public:
  WorkloadNode(Workload& owner, NodeId self, ClusterId cluster);

  /// Late-bound: the protocol agent this node sends through.
  void bind(proto::ProtocolAgent* agent) { agent_ = agent; }

  /// Begin the compute/communicate loop.
  void start();

  // AppHandle ---------------------------------------------------------------
  proto::AppSnapshot snapshot() const override;
  proto::AppSnapshot snapshot(storage::CaptureMode mode) override;
  void freeze() override;
  void restore(const proto::AppSnapshot& snap) override;
  void deliver(const net::Envelope& env) override;

  /// Completed work units.
  std::uint64_t progress() const { return progress_; }
  /// Messages delivered to this node (current state).
  std::uint64_t received() const { return received_; }
  NodeId id() const { return self_; }

 private:
  void schedule_step();
  void on_step_done(std::uint64_t epoch);

  Workload& owner_;
  NodeId self_;
  ClusterId cluster_;
  proto::ProtocolAgent* agent_{nullptr};
  /// Modelled mutable state area (accounting only, no bytes).  Each work
  /// step touches a stride that is a pure function of the progress counter
  /// — no RNG draws, so enabling delta capture perturbs no decision stream.
  storage::StateRegion region_;

  std::uint64_t progress_{0};        ///< completed steps (part of state)
  std::uint64_t received_{0};        ///< delivered messages (part of state)
  SimTime virtual_work_{};           ///< accumulated compute time (state)
  std::uint64_t salt_{0};            ///< replay salt (bumped when divergent)
  std::uint64_t epoch_{0};           ///< invalidates stale pending events
  std::optional<sim::EventId> pending_;
  SimTime step_started_{};
};

/// The whole application: builds one WorkloadNode per federation node.
class Workload {
 public:
  Workload(sim::Simulation& sim, const net::Topology& topo,
           const config::ApplicationSpec& app, stats::Registry& registry,
           ReplayMode mode = ReplayMode::kDivergent);

  /// AppHandle pointers in node order (for Federation::build_agents).
  std::vector<proto::AppHandle*> handles();

  /// Bind each node to its agent (after Federation::build_agents).
  void bind_agents(const std::function<proto::ProtocolAgent*(NodeId)>& get);

  /// Start every node's loop.
  void start();

  /// Aggregate progress across all nodes.
  std::uint64_t total_progress() const;
  /// Aggregate deliveries (current state, i.e. after any rollbacks).
  std::uint64_t total_received() const;

  WorkloadNode& node(NodeId n);

 private:
  friend class WorkloadNode;

  /// Lazily resolve a counter handle shared by every node (sends/deliveries
  /// are per-message paths; the name lookup must not be).
  stats::Counter& stat(stats::Counter*& slot, const char* name) {
    return stats::lazy_counter(registry_, slot, [name] { return name; });
  }

  sim::Simulation& sim_;
  const net::Topology& topo_;
  config::ApplicationSpec app_;
  stats::Registry& registry_;
  ReplayMode mode_;
  SimTime horizon_;
  /// Nodes by value: reserved once in the constructor and never resized, so
  /// the AppHandle pointers handed out by handles() stay stable and node
  /// construction is one buffer, not one heap object per federation node.
  std::vector<WorkloadNode> nodes_;
  stats::Counter* stat_sends_{nullptr};
  stats::Counter* stat_restores_{nullptr};
  stats::Counter* stat_delivered_{nullptr};
};

}  // namespace hc3i::app
