#include "app/workload.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace hc3i::app {

namespace {
/// Domain-separation constant for workload decision streams.
constexpr std::uint64_t kDecisionDomain = 0xC0DEC0DE1234ULL;
}  // namespace

// ---------------------------------------------------------------------------
// WorkloadNode
// ---------------------------------------------------------------------------

WorkloadNode::WorkloadNode(Workload& owner, NodeId self, ClusterId cluster)
    : owner_(owner), self_(self), cluster_(cluster),
      region_(owner.app_.state_bytes) {}

void WorkloadNode::start() {
  HC3I_CHECK(agent_ != nullptr, "WorkloadNode: agent not bound");
  schedule_step();
}

void WorkloadNode::schedule_step() {
  if (owner_.sim_.now() >= owner_.horizon_) return;  // application finished
  const auto& cspec = owner_.app_.clusters[cluster_.v];
  // Decision stream: pure function of (seed, node, step, salt) — see the
  // replay-model note in the header.
  RngStream decide(owner_.sim_.seed() ^ kDecisionDomain,
                   (static_cast<std::uint64_t>(self_.v) << 32) ^
                       (progress_ * 2654435761ULL) ^ (salt_ << 56));
  const SimTime compute = from_seconds_f(
      decide.exponential(cspec.mean_compute.seconds()));
  step_started_ = owner_.sim_.now();
  const std::uint64_t epoch = epoch_;
  pending_ = owner_.sim_.schedule_after(
      compute, [this, epoch] { on_step_done(epoch); });
}

void WorkloadNode::on_step_done(std::uint64_t epoch) {
  if (epoch != epoch_) return;  // cancelled by a rollback
  pending_.reset();
  virtual_work_ += owner_.sim_.now() - step_started_;

  // Pick the destination with the same decision stream (re-derived so that
  // restore() replays cleanly from the progress counter alone).
  const auto& cspec = owner_.app_.clusters[cluster_.v];
  RngStream decide(owner_.sim_.seed() ^ kDecisionDomain,
                   (static_cast<std::uint64_t>(self_.v) << 32) ^
                       (progress_ * 2654435761ULL) ^ (salt_ << 56) ^ 1);
  bool any_weight = false;
  for (const double w : cspec.traffic) any_weight = any_weight || w > 0.0;
  if (any_weight) {
    const auto dst_cluster = ClusterId{static_cast<std::uint32_t>(
        decide.weighted_index(cspec.traffic))};
    const std::uint32_t size = owner_.topo_.cluster_size(dst_cluster);
    const std::uint32_t base = owner_.topo_.first_node(dst_cluster).v;
    // Uniform destination node, excluding self.
    NodeId dst{base + static_cast<std::uint32_t>(decide.next_below(size))};
    if (dst == self_) dst = NodeId{base + (dst.v - base + 1) % size};
    if (dst != self_) {
      const std::uint64_t app_seq =
          (static_cast<std::uint64_t>(self_.v) << 32) | progress_;
      agent_->app_send(dst, cspec.message_bytes, app_seq);
      owner_.stat(owner_.stat_sends_, "app.sends").inc();
    }
  }
  // Each step mutates a stride of the modelled state.  The location is a
  // pure function of the progress counter (no RNG draw), so delta capture
  // replays exactly after a rollback and perturbs no decision stream.
  const std::uint64_t stride =
      std::max<std::uint64_t>(1, region_.size() / 1024);
  region_.touch((progress_ * stride) % region_.size(), stride);
  ++progress_;
  schedule_step();
}

proto::AppSnapshot WorkloadNode::snapshot() const {
  proto::AppSnapshot snap;
  snap.progress = progress_;
  snap.virtual_work = virtual_work_;
  snap.state_bytes = owner_.app_.state_bytes;
  snap.delta_bytes = snap.state_bytes;  // pure read: a full image
  snap.opaque = {received_};
  return snap;
}

proto::AppSnapshot WorkloadNode::snapshot(storage::CaptureMode mode) {
  proto::AppSnapshot snap = snapshot();
  const storage::CaptureRecord rec = region_.capture(mode);
  snap.delta_bytes = rec.length;
  snap.incremental = rec.incremental;
  return snap;
}

void WorkloadNode::freeze() {
  if (pending_) {
    owner_.sim_.cancel(*pending_);
    pending_.reset();
  }
  ++epoch_;  // invalidate any step event already popped from the queue
}

void WorkloadNode::restore(const proto::AppSnapshot& snap) {
  freeze();
  progress_ = snap.progress;
  virtual_work_ = snap.virtual_work;
  received_ = snap.opaque.empty() ? 0 : snap.opaque[0];
  // The restored image is the new baseline: the next storage capture must
  // be a full one regardless of the requested mode.
  region_.reset_base();
  if (owner_.mode_ == ReplayMode::kDivergent) ++salt_;
  owner_.stat(owner_.stat_restores_, "app.restores").inc();
  schedule_step();
}

void WorkloadNode::deliver(const net::Envelope& env) {
  (void)env;
  ++received_;
  owner_.stat(owner_.stat_delivered_, "app.delivered").inc();
}

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

Workload::Workload(sim::Simulation& sim, const net::Topology& topo,
                   const config::ApplicationSpec& app,
                   stats::Registry& registry, ReplayMode mode)
    : sim_(sim), topo_(topo), app_(app), registry_(registry), mode_(mode),
      horizon_(app.total_time) {
  app_.validate(topo.spec());
  nodes_.reserve(topo.node_count());
  for (std::uint32_t i = 0; i < topo.node_count(); ++i) {
    const NodeId n{i};
    nodes_.emplace_back(*this, n, topo.cluster_of(n));
  }
}

std::vector<proto::AppHandle*> Workload::handles() {
  std::vector<proto::AppHandle*> out;
  out.reserve(nodes_.size());
  for (auto& n : nodes_) out.push_back(&n);
  return out;
}

void Workload::bind_agents(
    const std::function<proto::ProtocolAgent*(NodeId)>& get) {
  for (auto& n : nodes_) n.bind(get(n.id()));
}

void Workload::start() {
  for (auto& n : nodes_) n.start();
}

std::uint64_t Workload::total_progress() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n.progress();
  return total;
}

std::uint64_t Workload::total_received() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n.received();
  return total;
}

WorkloadNode& Workload::node(NodeId n) {
  HC3I_CHECK(n.v < nodes_.size(), "Workload::node: bad id");
  return nodes_[n.v];
}

}  // namespace hc3i::app
