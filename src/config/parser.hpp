#pragma once

// Text format for the three configuration files.
//
// A small INI-style dialect:
//
//   # comment
//   [section possibly with args]
//   key = value
//
// Topology file:
//   [federation]          clusters = 2      mtbf = 100h
//   [cluster 0]           nodes = 100       latency = 10us   bandwidth = 80Mb/s
//   [link 0 1]            latency = 150us   bandwidth = 100Mb/s
//
// Application file:
//   [application]         total_time = 10h  state_size = 8MB
//   [cluster 0]           mean_compute = 2min   message_size = 10KB
//   [traffic 0]           0 = 0.95   1 = 0.05       # destination weights
//
// Timers file:
//   [timers]              gc_period = 2h    detection_delay = 100ms
//   [cluster 0]           clc_period = 30min
//
// Campaign file (optional fourth file: the declarative fault plan of
// src/fault/campaign.hpp; one section per injector, repeatable):
//   [kill]                at = 6min       node = 130
//   [stream]              mtbf = 8min     cluster = 0   start = 5min  stop = 25min
//   [burst]               cluster = 2     kills = 3     at = 12min    window = 2min
//   [repeat]              node = 7        times = 3     first = 10min gap = 6min
//   [phase_trigger]       cluster = 0     phase = phase1_acks   after_acks = 1
//                         occurrence = 2  node = 2      not_before = 1min
//
// parse_* functions throw ParseError with file/line context on any problem.

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "config/spec.hpp"
#include "fault/campaign.hpp"

namespace hc3i::config {

/// Thrown on malformed configuration text.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// One parsed [section]: its arguments and key/value pairs.
struct Section {
  std::string name;                ///< first token inside the brackets
  std::vector<std::string> args;   ///< remaining tokens inside the brackets
  std::map<std::string, std::string> values;
  int line{0};                     ///< line number of the [section] header
};

/// Parse the generic INI dialect. `origin` names the source in errors.
std::vector<Section> parse_sections(std::string_view text,
                                    const std::string& origin);

/// Parse a topology file (text form).
TopologySpec parse_topology(std::string_view text,
                            const std::string& origin = "<topology>");

/// Parse an application file; requires the topology for cross-validation.
ApplicationSpec parse_application(std::string_view text,
                                  const TopologySpec& topo,
                                  const std::string& origin = "<application>");

/// Parse a timers file; requires the topology for cross-validation.
TimersSpec parse_timers(std::string_view text, const TopologySpec& topo,
                        const std::string& origin = "<timers>");

/// Parse a fault-campaign file; requires the topology for cross-validation
/// (victim nodes and clusters must exist).  Injector sections may repeat;
/// order within each kind is preserved.
fault::Campaign parse_campaign(std::string_view text, const TopologySpec& topo,
                               const std::string& origin = "<campaign>");

/// Load all three files from disk and validate the combination.
RunSpec load_run_spec(const std::string& topology_path,
                      const std::string& application_path,
                      const std::string& timers_path);

/// Read a whole file; throws ParseError if unreadable.
std::string read_file(const std::string& path);

}  // namespace hc3i::config
