#pragma once

// Ready-made configurations reproducing the paper's evaluation scenarios.
//
// The reference workload (paper §5.2) is two clusters of 100 nodes with a
// Myrinet-like SAN (10 us latency, 80 Mb/s) inside each cluster and
// Ethernet-like links (150 us, 100 Mb/s) between them, running a 10-hour
// code-coupling application whose message census matches Table 1:
//
//     cluster 0 -> cluster 0 : 2920 messages
//     cluster 1 -> cluster 1 : 2497
//     cluster 0 -> cluster 1 :  145
//     cluster 1 -> cluster 0 :   11
//
// The per-node mean compute times and per-cluster traffic weights here are
// calibrated so the *expected* counts equal Table 1 (individual seeds
// fluctuate around them; the table bench averages over seeds).

#include "config/spec.hpp"

namespace hc3i::config {

/// Paper §5.2 topology: 2 clusters x 100 nodes, Myrinet-like SANs,
/// Ethernet-like interconnect, failures disabled.
TopologySpec paper_reference_topology();

/// Paper §5.2 application (Table 1 census over 10 h).
/// `messages_1_to_0` overrides the expected number of cluster-1 -> cluster-0
/// messages (Figure 9 sweeps it from ~10 to ~110; Table 1 has 11).
ApplicationSpec paper_reference_application(double messages_1_to_0 = 11.0);

/// Paper §5.2 timers: cluster-0 CLC period `timer0`, cluster-1 `timer1`
/// (the paper sweeps timer0 with timer1 = infinity, then fixes both).
/// GC is disabled unless `gc_period` is finite.
TimersSpec paper_reference_timers(SimTime timer0, SimTime timer1,
                                  SimTime gc_period = SimTime::infinity());

/// Table 3 topology: three clusters, cluster 2 a clone of cluster 1.
TopologySpec paper_three_cluster_topology();

/// Table 3 application: "approximately 200 messages that leave and arrive in
/// each cluster" over 10 h, intra-cluster traffic as in the reference.
ApplicationSpec paper_three_cluster_application();

/// Timers for the Table 3 run: both user timers 30 min, GC per `gc_period`.
TimersSpec paper_three_cluster_timers(SimTime gc_period);

/// A small, fast configuration for unit/integration tests: `clusters`
/// clusters x `nodes` nodes, minute-scale runtime, chatty traffic.
/// Deterministically exercises every protocol path in seconds.
RunSpec small_test_spec(std::size_t clusters = 2, std::uint32_t nodes = 4);

/// Scale-out federation (beyond the paper's 2-3 clusters): `clusters`
/// clusters x `nodes` nodes with Myrinet-like SANs and Ethernet-like
/// interconnect.  Traffic is ring-structured — mostly intra-cluster plus a
/// trickle to each ring neighbour — so active census pairs grow linearly
/// with the cluster count while the control plane (CLC 2PC rounds, GC
/// metadata exchange, DDV piggybacks) pays full federation-width costs.
/// CLC timers and GC are enabled; failures are off (MTBF infinite).
/// This is the 10x100 = 1000-node reference scenario of docs/scaling.md;
/// `clusters` is the sweep axis.
RunSpec scale_federation_spec(std::size_t clusters = 10,
                              std::uint32_t nodes = 100,
                              SimTime total = minutes(30));

}  // namespace hc3i::config
