#pragma once

// Typed configuration for a simulation run.
//
// The paper (§5.1): "The user has to provide three files: a topology file, an
// application file and a timer file."  These structs are the in-memory form;
// config/parser.* reads the text formats and config/writer.* emits them.
//
//  * TopologySpec    — number of clusters, nodes per cluster, bandwidth and
//                      latency inside each cluster and between clusters
//                      (triangular matrix), and the federation MTBF.
//  * ApplicationSpec — per-cluster mean computation time, communication
//                      pattern probabilities, message/state sizes and the
//                      application's total execution time.
//  * TimersSpec      — protocol timer delays per cluster (delay between two
//                      unforced CLCs, garbage-collection period, ...).

#include <cstdint>
#include <vector>

#include "util/check.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace hc3i::config {

/// Point-to-point link parameters.
struct LinkSpec {
  /// One-way propagation latency.
  SimTime latency{microseconds(10)};
  /// Serialisation rate in bytes per second (may be +inf for ideal links).
  double bytes_per_sec{10e6};
};

/// Checkpoint-storage cost model of one cluster.  kNone (the default) keeps
/// the seed behaviour: captures and recovery reads cost nothing on the
/// simulated clock, so every pre-existing golden stays byte-identical.
struct StorageSpec {
  enum class Kind : std::uint8_t {
    kNone,           ///< storage not modelled (free captures, free reads)
    kLocalDisk,      ///< per-node local disk: each node writes/reads alone
    kStripedRemote,  ///< stdchk-style striped store aggregated over the SAN
  };
  Kind kind{Kind::kNone};
  /// Per-request latency (seek / open round-trip).
  SimTime latency{milliseconds(5)};
  /// Write bandwidth in bytes per second: per node for kLocalDisk, per
  /// stripe for kStripedRemote (aggregate = stripe_width x this).
  double write_bytes_per_sec{100.0e6};
  /// Read bandwidth in bytes per second (same per-node/per-stripe rule).
  double read_bytes_per_sec{100.0e6};
  /// Donor nodes each write is striped across (kStripedRemote only).
  std::uint32_t stripe_width{4};
  /// Capture touched-range deltas between full images (base + Σ deltas
  /// chains); false forces a full image every CLC.
  bool incremental{true};

  bool enabled() const { return kind != Kind::kNone; }
};

/// One cluster: its size and its SAN characteristics.
struct ClusterSpec {
  /// Number of nodes in the cluster (>= 1).
  std::uint32_t nodes{1};
  /// Intra-cluster (SAN) link parameters, e.g. Myrinet-like 10us / 80Mb/s.
  LinkSpec san{};
  /// Checkpoint-storage cost model (off by default).
  StorageSpec storage{};
};

/// The federation: clusters plus the inter-cluster link matrix.
struct TopologySpec {
  std::vector<ClusterSpec> clusters;
  /// inter[i][j] (i != j) is the link between clusters i and j; symmetric.
  /// Sized clusters() x clusters(); the diagonal is unused.
  std::vector<std::vector<LinkSpec>> inter;
  /// Federation Mean Time Between Failures; SimTime::infinity() disables
  /// failure injection.
  SimTime mtbf{SimTime::infinity()};

  /// Number of clusters.
  std::size_t cluster_count() const { return clusters.size(); }
  /// Total nodes across the federation.
  std::uint32_t total_nodes() const;
  /// Link between two distinct clusters (symmetric lookup).
  const LinkSpec& inter_link(ClusterId a, ClusterId b) const;
  /// Structural validation; throws CheckFailure when inconsistent.
  void validate() const;
};

/// Application behaviour of the processes of one cluster (one module of a
/// code-coupling application, paper Fig. 1).
struct ClusterAppSpec {
  /// Mean computation time between communication events, per node
  /// (exponentially distributed).
  SimTime mean_compute{seconds(60)};
  /// Size of one application message.
  std::uint64_t message_bytes{10 * 1024};
  /// traffic[j] = probability weight that a message from this cluster goes
  /// to cluster j (the diagonal entry is the intra-cluster weight).
  /// Weights are unnormalised; all zero disables sending from this cluster.
  std::vector<double> traffic;
};

/// The synthetic code-coupling application.
struct ApplicationSpec {
  /// Total application execution time (paper runs 10 h).
  SimTime total_time{hours(10)};
  /// Size of one process state, used for checkpoint storage accounting.
  std::uint64_t state_bytes{8 * 1024 * 1024};
  /// One entry per cluster.
  std::vector<ClusterAppSpec> clusters;

  /// Validation against a topology; throws CheckFailure when inconsistent.
  void validate(const TopologySpec& topo) const;
};

/// Protocol timer configuration for one cluster.
struct ClusterTimerSpec {
  /// Delay between two unforced CLCs; SimTime::infinity() means the cluster
  /// never starts a CLC on its own (paper §5.2 runs cluster 1 this way).
  SimTime clc_period{minutes(30)};
};

/// Protocol timers (paper: "delays between two CLCs, garbage collection...").
struct TimersSpec {
  /// Per-cluster CLC timers.
  std::vector<ClusterTimerSpec> clusters;
  /// Garbage-collection period; infinity disables GC.
  SimTime gc_period{SimTime::infinity()};
  /// Failure-detection latency (the detector itself is abstracted,
  /// paper §3.4).
  SimTime detection_delay{milliseconds(100)};

  /// Validation against a topology; throws CheckFailure when inconsistent.
  void validate(const TopologySpec& topo) const;
};

/// Everything needed to run one simulation.
struct RunSpec {
  TopologySpec topology;
  ApplicationSpec application;
  TimersSpec timers;

  /// Validate all three parts together.
  void validate() const;
};

}  // namespace hc3i::config
