#include "config/presets.hpp"

namespace hc3i::config {

namespace {

/// Myrinet-like SAN (paper §5.2): 10 us latency, 80 Mb/s.
LinkSpec myrinet_like() {
  return LinkSpec{microseconds(10), 80e6 / 8.0};
}

/// Ethernet-like inter-cluster link (paper §5.2): 150 us, 100 Mb/s.
LinkSpec ethernet_like() {
  return LinkSpec{microseconds(150), 100e6 / 8.0};
}

/// Mean compute time so that `nodes` nodes emit `sends` messages in
/// `total`: each node alternates Exp(mean) compute and one send.
SimTime mean_compute_for(double sends, std::uint32_t nodes, SimTime total) {
  const double per_node = sends / static_cast<double>(nodes);
  return from_seconds_f(total.seconds() / per_node);
}

}  // namespace

TopologySpec paper_reference_topology() {
  TopologySpec topo;
  topo.clusters = {ClusterSpec{100, myrinet_like()},
                   ClusterSpec{100, myrinet_like()}};
  topo.inter.assign(2, std::vector<LinkSpec>(2));
  topo.inter[0][1] = topo.inter[1][0] = ethernet_like();
  topo.mtbf = SimTime::infinity();
  return topo;
}

ApplicationSpec paper_reference_application(double messages_1_to_0) {
  ApplicationSpec app;
  app.total_time = hours(10);
  app.state_bytes = 8ull * 1024 * 1024;
  app.clusters.resize(2);

  // Cluster 0 ("simulation"): 2920 intra + 145 -> cluster 1 (Table 1).
  auto& c0 = app.clusters[0];
  c0.mean_compute = mean_compute_for(2920.0 + 145.0, 100, app.total_time);
  c0.message_bytes = 10 * 1024;
  c0.traffic = {2920.0, 145.0};

  // Cluster 1 ("trace processor"): 2497 intra + `messages_1_to_0` -> 0.
  auto& c1 = app.clusters[1];
  c1.mean_compute =
      mean_compute_for(2497.0 + messages_1_to_0, 100, app.total_time);
  c1.message_bytes = 10 * 1024;
  c1.traffic = {messages_1_to_0, 2497.0};
  return app;
}

TimersSpec paper_reference_timers(SimTime timer0, SimTime timer1,
                                  SimTime gc_period) {
  TimersSpec timers;
  timers.clusters = {ClusterTimerSpec{timer0}, ClusterTimerSpec{timer1}};
  timers.gc_period = gc_period;
  timers.detection_delay = milliseconds(100);
  return timers;
}

TopologySpec paper_three_cluster_topology() {
  TopologySpec topo;
  topo.clusters = {ClusterSpec{100, myrinet_like()},
                   ClusterSpec{100, myrinet_like()},
                   ClusterSpec{100, myrinet_like()}};
  topo.inter.assign(3, std::vector<LinkSpec>(3));
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      topo.inter[i][j] = topo.inter[j][i] = ethernet_like();
    }
  }
  topo.mtbf = SimTime::infinity();
  return topo;
}

ApplicationSpec paper_three_cluster_application() {
  // Paper §5.4: clusters 0 and 1 keep the reference configuration, cluster 2
  // clones cluster 1, and "approximately 200 messages leave and arrive in
  // each cluster": each cluster sends ~100 to each of the other two.
  ApplicationSpec app;
  app.total_time = hours(10);
  app.state_bytes = 8ull * 1024 * 1024;
  app.clusters.resize(3);

  auto& c0 = app.clusters[0];
  c0.mean_compute = mean_compute_for(2920.0 + 200.0, 100, app.total_time);
  c0.message_bytes = 10 * 1024;
  c0.traffic = {2920.0, 100.0, 100.0};

  for (std::size_t i : {std::size_t{1}, std::size_t{2}}) {
    auto& c = app.clusters[i];
    c.mean_compute = mean_compute_for(2497.0 + 200.0, 100, app.total_time);
    c.message_bytes = 10 * 1024;
    c.traffic.assign(3, 100.0);
    c.traffic[i] = 2497.0;
  }
  return app;
}

TimersSpec paper_three_cluster_timers(SimTime gc_period) {
  TimersSpec timers;
  timers.clusters.assign(3, ClusterTimerSpec{minutes(30)});
  timers.gc_period = gc_period;
  timers.detection_delay = milliseconds(100);
  return timers;
}

RunSpec small_test_spec(std::size_t clusters, std::uint32_t nodes) {
  RunSpec spec;
  auto& topo = spec.topology;
  topo.clusters.assign(clusters, ClusterSpec{nodes, myrinet_like()});
  topo.inter.assign(clusters, std::vector<LinkSpec>(clusters));
  for (std::size_t i = 0; i < clusters; ++i) {
    for (std::size_t j = 0; j < clusters; ++j) {
      if (i != j) topo.inter[i][j] = ethernet_like();
    }
  }
  topo.mtbf = SimTime::infinity();

  auto& app = spec.application;
  app.total_time = minutes(30);
  app.state_bytes = 64 * 1024;
  app.clusters.resize(clusters);
  for (auto& c : app.clusters) {
    c.mean_compute = seconds(20);
    c.message_bytes = 4 * 1024;
    // Mostly intra-cluster traffic with a steady inter-cluster trickle.
    c.traffic.assign(clusters, clusters > 1 ? 0.1 : 0.0);
  }
  for (std::size_t i = 0; i < clusters; ++i) {
    app.clusters[i].traffic[i] = 0.9;
  }

  auto& timers = spec.timers;
  timers.clusters.assign(clusters, ClusterTimerSpec{minutes(5)});
  timers.gc_period = SimTime::infinity();
  timers.detection_delay = milliseconds(50);
  return spec;
}

RunSpec scale_federation_spec(std::size_t clusters, std::uint32_t nodes,
                              SimTime total) {
  RunSpec spec;
  auto& topo = spec.topology;
  topo.clusters.assign(clusters, ClusterSpec{nodes, myrinet_like()});
  topo.inter.assign(clusters, std::vector<LinkSpec>(clusters));
  for (std::size_t i = 0; i < clusters; ++i) {
    for (std::size_t j = 0; j < clusters; ++j) {
      if (i != j) topo.inter[i][j] = ethernet_like();
    }
  }
  topo.mtbf = SimTime::infinity();

  auto& app = spec.application;
  app.total_time = total;
  app.state_bytes = 64 * 1024;
  app.clusters.resize(clusters);
  for (std::size_t i = 0; i < clusters; ++i) {
    auto& c = app.clusters[i];
    c.mean_compute = seconds(20);
    c.message_bytes = 4 * 1024;
    // Ring communication: the active (src, dst) pair set is 3 per cluster,
    // not clusters — the shape real code couplings have at scale, and the
    // regime the sparse pair census is built for.
    c.traffic.assign(clusters, 0.0);
    c.traffic[i] = 0.9;
    if (clusters > 1) {
      c.traffic[(i + 1) % clusters] += 0.05;
      c.traffic[(i + clusters - 1) % clusters] += 0.05;
    }
  }

  auto& timers = spec.timers;
  timers.clusters.assign(clusters, ClusterTimerSpec{minutes(5)});
  timers.gc_period = minutes(10);
  timers.detection_delay = milliseconds(50);
  return spec;
}

}  // namespace hc3i::config
