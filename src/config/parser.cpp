#include "config/parser.hpp"

#include <fstream>
#include <sstream>

#include "util/quantity.hpp"

namespace hc3i::config {

namespace {

[[noreturn]] void fail(const std::string& origin, int line,
                       const std::string& msg) {
  throw ParseError(origin + ":" + std::to_string(line) + ": " + msg);
}

std::string trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return std::string(s);
}

std::vector<std::string> split_tokens(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

/// Look up a required key in a section.
const std::string& need(const Section& sec, const std::string& key,
                        const std::string& origin) {
  const auto it = sec.values.find(key);
  if (it == sec.values.end()) {
    fail(origin, sec.line, "section [" + sec.name + "] missing key '" + key + "'");
  }
  return it->second;
}

SimTime need_duration(const Section& sec, const std::string& key,
                      const std::string& origin) {
  const auto v = parse_duration(need(sec, key, origin));
  if (!v) fail(origin, sec.line, "bad duration for '" + key + "'");
  return *v;
}

double need_bandwidth(const Section& sec, const std::string& key,
                      const std::string& origin) {
  const auto v = parse_bandwidth(need(sec, key, origin));
  if (!v) fail(origin, sec.line, "bad bandwidth for '" + key + "'");
  return *v;
}

std::uint64_t need_uint(const Section& sec, const std::string& key,
                        const std::string& origin) {
  const auto v = parse_uint(need(sec, key, origin));
  if (!v) fail(origin, sec.line, "bad integer for '" + key + "'");
  return *v;
}

std::uint64_t need_bytes(const Section& sec, const std::string& key,
                         const std::string& origin) {
  const auto v = parse_bytes(need(sec, key, origin));
  if (!v) fail(origin, sec.line, "bad byte size for '" + key + "'");
  return *v;
}

std::size_t cluster_index_arg(const Section& sec, const TopologySpec& topo,
                              const std::string& origin) {
  if (sec.args.size() != 1) {
    fail(origin, sec.line, "[" + sec.name + "] needs one cluster index");
  }
  const auto idx = parse_uint(sec.args[0]);
  if (!idx || *idx >= topo.cluster_count()) {
    fail(origin, sec.line, "cluster index out of range: " + sec.args[0]);
  }
  return static_cast<std::size_t>(*idx);
}

}  // namespace

std::vector<Section> parse_sections(std::string_view text,
                                    const std::string& origin) {
  std::vector<Section> sections;
  int line_no = 0;
  std::istringstream is{std::string(text)};
  std::string raw;
  while (std::getline(is, raw)) {
    ++line_no;
    // Strip comments (# to end of line) and whitespace.
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') fail(origin, line_no, "unterminated [section]");
      auto tokens = split_tokens(line.substr(1, line.size() - 2));
      if (tokens.empty()) fail(origin, line_no, "empty section header");
      Section sec;
      sec.name = tokens.front();
      sec.args.assign(tokens.begin() + 1, tokens.end());
      sec.line = line_no;
      sections.push_back(std::move(sec));
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      fail(origin, line_no, "expected 'key = value': " + line);
    }
    if (sections.empty()) {
      fail(origin, line_no, "key/value outside any [section]");
    }
    const std::string key = trim(std::string_view(line).substr(0, eq));
    const std::string value = trim(std::string_view(line).substr(eq + 1));
    if (key.empty()) fail(origin, line_no, "empty key");
    auto [_, inserted] = sections.back().values.emplace(key, value);
    if (!inserted) {
      fail(origin, line_no,
           "duplicate key '" + key + "' in [" + sections.back().name + "]");
    }
  }
  return sections;
}

TopologySpec parse_topology(std::string_view text, const std::string& origin) {
  TopologySpec topo;
  const auto sections = parse_sections(text, origin);
  std::size_t n_clusters = 0;
  // Pass 1: the [federation] section fixes the cluster count.
  for (const auto& sec : sections) {
    if (sec.name == "federation") {
      n_clusters = static_cast<std::size_t>(need_uint(sec, "clusters", origin));
      if (n_clusters == 0) fail(origin, sec.line, "clusters must be >= 1");
      if (sec.values.count("mtbf")) {
        const auto v = parse_duration(sec.values.at("mtbf"));
        if (!v) fail(origin, sec.line, "bad duration for 'mtbf'");
        topo.mtbf = *v;
      }
    }
  }
  if (n_clusters == 0) {
    throw ParseError(origin + ": missing [federation] section");
  }
  topo.clusters.resize(n_clusters);
  topo.inter.assign(n_clusters, std::vector<LinkSpec>(n_clusters));
  std::vector<bool> seen_cluster(n_clusters, false);
  // Pass 2: clusters and links.
  for (const auto& sec : sections) {
    if (sec.name == "federation") continue;
    if (sec.name == "cluster") {
      const std::size_t i = cluster_index_arg(sec, topo, origin);
      seen_cluster[i] = true;
      auto& c = topo.clusters[i];
      c.nodes = static_cast<std::uint32_t>(need_uint(sec, "nodes", origin));
      c.san.latency = need_duration(sec, "latency", origin);
      c.san.bytes_per_sec = need_bandwidth(sec, "bandwidth", origin);
      // Optional checkpoint-storage model; absent keys keep the defaults.
      if (sec.values.count("storage")) {
        auto& st = c.storage;
        const std::string& kind = sec.values.at("storage");
        if (kind == "none") {
          st.kind = StorageSpec::Kind::kNone;
        } else if (kind == "local-disk") {
          st.kind = StorageSpec::Kind::kLocalDisk;
        } else if (kind == "striped-remote") {
          st.kind = StorageSpec::Kind::kStripedRemote;
        } else {
          fail(origin, sec.line, "unknown storage kind '" + kind + "'");
        }
        if (sec.values.count("storage_latency")) {
          st.latency = need_duration(sec, "storage_latency", origin);
        }
        if (sec.values.count("storage_write_bandwidth")) {
          st.write_bytes_per_sec =
              need_bandwidth(sec, "storage_write_bandwidth", origin);
        }
        if (sec.values.count("storage_read_bandwidth")) {
          st.read_bytes_per_sec =
              need_bandwidth(sec, "storage_read_bandwidth", origin);
        }
        if (sec.values.count("stripe_width")) {
          st.stripe_width =
              static_cast<std::uint32_t>(need_uint(sec, "stripe_width", origin));
        }
        if (sec.values.count("incremental")) {
          st.incremental = need_uint(sec, "incremental", origin) != 0;
        }
      }
    } else if (sec.name == "link") {
      if (sec.args.size() != 2) {
        fail(origin, sec.line, "[link] needs two cluster indices");
      }
      const auto a = parse_uint(sec.args[0]);
      const auto b = parse_uint(sec.args[1]);
      if (!a || !b || *a >= n_clusters || *b >= n_clusters || *a == *b) {
        fail(origin, sec.line, "bad [link] cluster indices");
      }
      LinkSpec link;
      link.latency = need_duration(sec, "latency", origin);
      link.bytes_per_sec = need_bandwidth(sec, "bandwidth", origin);
      topo.inter[*a][*b] = link;
      topo.inter[*b][*a] = link;
    } else {
      fail(origin, sec.line, "unknown section [" + sec.name + "] in topology");
    }
  }
  for (std::size_t i = 0; i < n_clusters; ++i) {
    if (!seen_cluster[i]) {
      throw ParseError(origin + ": missing [cluster " + std::to_string(i) + "]");
    }
  }
  topo.validate();
  return topo;
}

ApplicationSpec parse_application(std::string_view text,
                                  const TopologySpec& topo,
                                  const std::string& origin) {
  ApplicationSpec app;
  const std::size_t n = topo.cluster_count();
  app.clusters.resize(n);
  for (auto& c : app.clusters) c.traffic.assign(n, 0.0);
  const auto sections = parse_sections(text, origin);
  bool saw_app = false;
  for (const auto& sec : sections) {
    if (sec.name == "application") {
      saw_app = true;
      app.total_time = need_duration(sec, "total_time", origin);
      if (sec.values.count("state_size")) {
        app.state_bytes = need_bytes(sec, "state_size", origin);
      }
    } else if (sec.name == "cluster") {
      const std::size_t i = cluster_index_arg(sec, topo, origin);
      auto& c = app.clusters[i];
      c.mean_compute = need_duration(sec, "mean_compute", origin);
      if (sec.values.count("message_size")) {
        c.message_bytes = need_bytes(sec, "message_size", origin);
      }
    } else if (sec.name == "traffic") {
      const std::size_t i = cluster_index_arg(sec, topo, origin);
      for (const auto& [key, value] : sec.values) {
        const auto j = parse_uint(key);
        if (!j || *j >= n) fail(origin, sec.line, "bad traffic column: " + key);
        const auto w = parse_double(value);
        if (!w || *w < 0) fail(origin, sec.line, "bad traffic weight: " + value);
        app.clusters[i].traffic[static_cast<std::size_t>(*j)] = *w;
      }
    } else {
      fail(origin, sec.line, "unknown section [" + sec.name + "] in application");
    }
  }
  if (!saw_app) throw ParseError(origin + ": missing [application] section");
  app.validate(topo);
  return app;
}

fault::Campaign parse_campaign(std::string_view text, const TopologySpec& topo,
                               const std::string& origin) {
  fault::Campaign plan;
  const auto opt_duration = [&origin](const Section& sec, const std::string& key,
                                      SimTime def) {
    if (sec.values.count(key) == 0) return def;
    const auto v = parse_duration(sec.values.at(key));
    if (!v) fail(origin, sec.line, "bad duration for '" + key + "'");
    return *v;
  };
  const auto opt_uint = [&origin](const Section& sec, const std::string& key,
                                  std::uint64_t def) {
    if (sec.values.count(key) == 0) return def;
    const auto v = parse_uint(sec.values.at(key));
    if (!v) fail(origin, sec.line, "bad integer for '" + key + "'");
    return *v;
  };
  for (const auto& sec : parse_sections(text, origin)) {
    if (sec.name == "options") {
      if (sec.values.count("serialize_faults")) {
        const std::string& v = sec.values.at("serialize_faults");
        if (v == "true") {
          plan.serialize_faults = true;
        } else if (v == "false") {
          plan.serialize_faults = false;
        } else {
          fail(origin, sec.line,
               "bad boolean for 'serialize_faults' (want true/false)");
        }
      }
    } else if (sec.name == "kill") {
      fault::KillSpec k;
      k.at = need_duration(sec, "at", origin);
      k.victim = NodeId{static_cast<std::uint32_t>(need_uint(sec, "node", origin))};
      plan.kills.push_back(k);
    } else if (sec.name == "stream") {
      fault::StreamSpec s;
      s.mtbf = need_duration(sec, "mtbf", origin);
      if (sec.values.count("cluster")) {
        s.cluster = ClusterId{
            static_cast<std::uint32_t>(opt_uint(sec, "cluster", 0))};
      }
      s.start = opt_duration(sec, "start", SimTime::zero());
      s.stop = opt_duration(sec, "stop", SimTime::infinity());
      plan.streams.push_back(s);
    } else if (sec.name == "burst") {
      fault::BurstSpec b;
      b.cluster = ClusterId{
          static_cast<std::uint32_t>(need_uint(sec, "cluster", origin))};
      b.kills = static_cast<std::uint32_t>(need_uint(sec, "kills", origin));
      b.at = need_duration(sec, "at", origin);
      b.window = need_duration(sec, "window", origin);
      b.first_victim =
          static_cast<std::uint32_t>(opt_uint(sec, "first_victim", 0));
      plan.bursts.push_back(b);
    } else if (sec.name == "repeat") {
      fault::RepeatSpec r;
      r.victim = NodeId{static_cast<std::uint32_t>(need_uint(sec, "node", origin))};
      r.times = static_cast<std::uint32_t>(need_uint(sec, "times", origin));
      r.first = need_duration(sec, "first", origin);
      r.gap = opt_duration(sec, "gap", SimTime::zero());
      plan.repeats.push_back(r);
    } else if (sec.name == "phase_trigger") {
      fault::PhaseTriggerSpec t;
      t.cluster = ClusterId{
          static_cast<std::uint32_t>(need_uint(sec, "cluster", origin))};
      const auto phase = fault::parse_phase(need(sec, "phase", origin));
      if (!phase) {
        fail(origin, sec.line,
             "bad phase '" + sec.values.at("phase") +
                 "' (known: phase1_acks, commit)");
      }
      t.phase = *phase;
      t.victim = NodeId{static_cast<std::uint32_t>(need_uint(sec, "node", origin))};
      t.after_acks = static_cast<std::uint32_t>(opt_uint(sec, "after_acks", 1));
      t.occurrence = static_cast<std::uint32_t>(opt_uint(sec, "occurrence", 1));
      t.not_before = opt_duration(sec, "not_before", SimTime::zero());
      plan.phase_triggers.push_back(t);
    } else {
      fail(origin, sec.line, "unknown section [" + sec.name + "] in campaign");
    }
  }
  try {
    plan.validate(topo);
  } catch (const CheckFailure& e) {
    throw ParseError(origin + ": " + e.what());
  }
  return plan;
}

TimersSpec parse_timers(std::string_view text, const TopologySpec& topo,
                        const std::string& origin) {
  TimersSpec timers;
  timers.clusters.resize(topo.cluster_count());
  const auto sections = parse_sections(text, origin);
  for (const auto& sec : sections) {
    if (sec.name == "timers") {
      if (sec.values.count("gc_period")) {
        timers.gc_period = need_duration(sec, "gc_period", origin);
      }
      if (sec.values.count("detection_delay")) {
        timers.detection_delay = need_duration(sec, "detection_delay", origin);
      }
    } else if (sec.name == "cluster") {
      const std::size_t i = cluster_index_arg(sec, topo, origin);
      timers.clusters[i].clc_period = need_duration(sec, "clc_period", origin);
    } else {
      fail(origin, sec.line, "unknown section [" + sec.name + "] in timers");
    }
  }
  timers.validate(topo);
  return timers;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

RunSpec load_run_spec(const std::string& topology_path,
                      const std::string& application_path,
                      const std::string& timers_path) {
  RunSpec spec;
  spec.topology = parse_topology(read_file(topology_path), topology_path);
  spec.application = parse_application(read_file(application_path),
                                       spec.topology, application_path);
  spec.timers =
      parse_timers(read_file(timers_path), spec.topology, timers_path);
  spec.validate();
  return spec;
}

}  // namespace hc3i::config
