#include "config/writer.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace hc3i::config {

std::string duration_text(SimTime t) {
  if (t.is_infinite()) return "inf";
  const std::int64_t ns = t.ns;
  char buf[64];
  // Choose the largest unit that represents the value exactly.
  if (ns % 3'600'000'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldh",
                  static_cast<long long>(ns / 3'600'000'000'000));
  } else if (ns % 60'000'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldmin",
                  static_cast<long long>(ns / 60'000'000'000));
  } else if (ns % 1'000'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%llds",
                  static_cast<long long>(ns / 1'000'000'000));
  } else if (ns % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldms",
                  static_cast<long long>(ns / 1'000'000));
  } else if (ns % 1'000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(ns / 1'000));
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns));
  }
  return buf;
}

std::string bandwidth_text(double bytes_per_sec) {
  const double bits = bytes_per_sec * 8.0;
  char buf[64];
  if (bits >= 1e9 && std::fmod(bits, 1e9) == 0.0) {
    std::snprintf(buf, sizeof buf, "%.0fGb/s", bits / 1e9);
  } else if (bits >= 1e6 && std::fmod(bits, 1e6) == 0.0) {
    std::snprintf(buf, sizeof buf, "%.0fMb/s", bits / 1e6);
  } else if (bits >= 1e3 && std::fmod(bits, 1e3) == 0.0) {
    std::snprintf(buf, sizeof buf, "%.0fKb/s", bits / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fb/s", bits);
  }
  return buf;
}

std::string bytes_text(std::uint64_t bytes) {
  char buf[64];
  const std::uint64_t kb = 1024, mb = kb * 1024, gb = mb * 1024;
  if (bytes >= gb && bytes % gb == 0) {
    std::snprintf(buf, sizeof buf, "%lluGB",
                  static_cast<unsigned long long>(bytes / gb));
  } else if (bytes >= mb && bytes % mb == 0) {
    std::snprintf(buf, sizeof buf, "%lluMB",
                  static_cast<unsigned long long>(bytes / mb));
  } else if (bytes >= kb && bytes % kb == 0) {
    std::snprintf(buf, sizeof buf, "%lluKB",
                  static_cast<unsigned long long>(bytes / kb));
  } else {
    std::snprintf(buf, sizeof buf, "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string write_topology(const TopologySpec& topo) {
  std::ostringstream os;
  os << "# HC3I topology file\n";
  os << "[federation]\n";
  os << "clusters = " << topo.cluster_count() << "\n";
  os << "mtbf = " << duration_text(topo.mtbf) << "\n";
  for (std::size_t i = 0; i < topo.cluster_count(); ++i) {
    const auto& c = topo.clusters[i];
    os << "\n[cluster " << i << "]\n";
    os << "nodes = " << c.nodes << "\n";
    os << "latency = " << duration_text(c.san.latency) << "\n";
    os << "bandwidth = " << bandwidth_text(c.san.bytes_per_sec) << "\n";
    // Storage keys only when modelled, so pre-storage files round-trip
    // byte-identically.
    if (c.storage.enabled()) {
      const auto& st = c.storage;
      os << "storage = "
         << (st.kind == StorageSpec::Kind::kLocalDisk ? "local-disk"
                                                      : "striped-remote")
         << "\n";
      os << "storage_latency = " << duration_text(st.latency) << "\n";
      os << "storage_write_bandwidth = "
         << bandwidth_text(st.write_bytes_per_sec) << "\n";
      os << "storage_read_bandwidth = "
         << bandwidth_text(st.read_bytes_per_sec) << "\n";
      if (st.kind == StorageSpec::Kind::kStripedRemote) {
        os << "stripe_width = " << st.stripe_width << "\n";
      }
      os << "incremental = " << (st.incremental ? 1 : 0) << "\n";
    }
  }
  // Triangular matrix of inter-cluster links (paper §5.1).
  for (std::size_t i = 0; i < topo.cluster_count(); ++i) {
    for (std::size_t j = i + 1; j < topo.cluster_count(); ++j) {
      const auto& l = topo.inter[i][j];
      os << "\n[link " << i << " " << j << "]\n";
      os << "latency = " << duration_text(l.latency) << "\n";
      os << "bandwidth = " << bandwidth_text(l.bytes_per_sec) << "\n";
    }
  }
  return os.str();
}

std::string write_application(const ApplicationSpec& app) {
  std::ostringstream os;
  os << "# HC3I application file\n";
  os << "[application]\n";
  os << "total_time = " << duration_text(app.total_time) << "\n";
  os << "state_size = " << bytes_text(app.state_bytes) << "\n";
  for (std::size_t i = 0; i < app.clusters.size(); ++i) {
    const auto& c = app.clusters[i];
    os << "\n[cluster " << i << "]\n";
    os << "mean_compute = " << duration_text(c.mean_compute) << "\n";
    os << "message_size = " << bytes_text(c.message_bytes) << "\n";
    os << "\n[traffic " << i << "]\n";
    for (std::size_t j = 0; j < c.traffic.size(); ++j) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", c.traffic[j]);
      os << j << " = " << buf << "\n";
    }
  }
  return os.str();
}

std::string write_campaign(const fault::Campaign& plan) {
  std::ostringstream os;
  os << "# HC3I fault campaign file\n";
  if (plan.serialize_faults) {
    // Emitted only when set so pre-existing campaign files stay byte-
    // identical (concurrent per-cluster recoveries are the default).
    os << "\n[options]\n";
    os << "serialize_faults = true\n";
  }
  for (const auto& k : plan.kills) {
    os << "\n[kill]\n";
    os << "at = " << duration_text(k.at) << "\n";
    os << "node = " << k.victim.v << "\n";
  }
  for (const auto& s : plan.streams) {
    os << "\n[stream]\n";
    os << "mtbf = " << duration_text(s.mtbf) << "\n";
    if (s.cluster) os << "cluster = " << s.cluster->v << "\n";
    os << "start = " << duration_text(s.start) << "\n";
    os << "stop = " << duration_text(s.stop) << "\n";
  }
  for (const auto& b : plan.bursts) {
    os << "\n[burst]\n";
    os << "cluster = " << b.cluster.v << "\n";
    os << "kills = " << b.kills << "\n";
    os << "at = " << duration_text(b.at) << "\n";
    os << "window = " << duration_text(b.window) << "\n";
    os << "first_victim = " << b.first_victim << "\n";
  }
  for (const auto& r : plan.repeats) {
    os << "\n[repeat]\n";
    os << "node = " << r.victim.v << "\n";
    os << "times = " << r.times << "\n";
    os << "first = " << duration_text(r.first) << "\n";
    os << "gap = " << duration_text(r.gap) << "\n";
  }
  for (const auto& t : plan.phase_triggers) {
    os << "\n[phase_trigger]\n";
    os << "cluster = " << t.cluster.v << "\n";
    os << "phase = " << fault::to_string(t.phase) << "\n";
    os << "node = " << t.victim.v << "\n";
    os << "after_acks = " << t.after_acks << "\n";
    os << "occurrence = " << t.occurrence << "\n";
    os << "not_before = " << duration_text(t.not_before) << "\n";
  }
  return os.str();
}

std::string write_timers(const TimersSpec& timers) {
  std::ostringstream os;
  os << "# HC3I timers file\n";
  os << "[timers]\n";
  os << "gc_period = " << duration_text(timers.gc_period) << "\n";
  os << "detection_delay = " << duration_text(timers.detection_delay) << "\n";
  for (std::size_t i = 0; i < timers.clusters.size(); ++i) {
    os << "\n[cluster " << i << "]\n";
    os << "clc_period = " << duration_text(timers.clusters[i].clc_period)
       << "\n";
  }
  return os.str();
}

}  // namespace hc3i::config
