#pragma once

// Serialisation of configuration specs back to the text formats accepted by
// config/parser.hpp.  Round-tripping (write -> parse -> compare) is covered
// by tests; the example binaries use the writer to emit ready-to-edit
// configuration files for users.

#include <string>

#include "config/spec.hpp"
#include "fault/campaign.hpp"

namespace hc3i::config {

/// Render a topology file.
std::string write_topology(const TopologySpec& topo);

/// Render an application file.
std::string write_application(const ApplicationSpec& app);

/// Render a timers file.
std::string write_timers(const TimersSpec& timers);

/// Render a fault-campaign file (parse_campaign round-trips it).
std::string write_campaign(const fault::Campaign& plan);

/// Render a duration in the most compact exact unit ("30min", "150us",
/// "inf"). Output is re-parseable by parse_duration.
std::string duration_text(SimTime t);

/// Render a bandwidth ("80Mb/s"); re-parseable by parse_bandwidth.
std::string bandwidth_text(double bytes_per_sec);

/// Render a byte size ("8MB"); re-parseable by parse_bytes.
std::string bytes_text(std::uint64_t bytes);

}  // namespace hc3i::config
