#include "config/spec.hpp"

#include <cmath>

namespace hc3i::config {

std::uint32_t TopologySpec::total_nodes() const {
  std::uint32_t total = 0;
  for (const auto& c : clusters) total += c.nodes;
  return total;
}

const LinkSpec& TopologySpec::inter_link(ClusterId a, ClusterId b) const {
  HC3I_CHECK(a != b, "inter_link: same cluster on both ends");
  HC3I_CHECK(a.v < inter.size() && b.v < inter.size(),
             "inter_link: cluster id out of range");
  return inter[a.v][b.v];
}

void TopologySpec::validate() const {
  HC3I_CHECK(!clusters.empty(), "topology: at least one cluster required");
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    HC3I_CHECK(clusters[i].nodes >= 1,
               "topology: cluster " + std::to_string(i) + " has no nodes");
    HC3I_CHECK(clusters[i].san.latency.ns >= 0,
               "topology: negative SAN latency");
    HC3I_CHECK(clusters[i].san.bytes_per_sec > 0,
               "topology: SAN bandwidth must be positive");
    const StorageSpec& st = clusters[i].storage;
    if (st.enabled()) {
      HC3I_CHECK(st.latency.ns >= 0 && !st.latency.is_infinite(),
                 "topology: cluster " + std::to_string(i) +
                     " storage latency must be finite and >= 0");
      HC3I_CHECK(st.write_bytes_per_sec > 0 &&
                     std::isfinite(st.write_bytes_per_sec),
                 "topology: cluster " + std::to_string(i) +
                     " storage write bandwidth must be positive and finite");
      HC3I_CHECK(st.read_bytes_per_sec > 0 &&
                     std::isfinite(st.read_bytes_per_sec),
                 "topology: cluster " + std::to_string(i) +
                     " storage read bandwidth must be positive and finite");
      HC3I_CHECK(st.kind != StorageSpec::Kind::kStripedRemote ||
                     st.stripe_width >= 1,
                 "topology: cluster " + std::to_string(i) +
                     " stripe_width must be >= 1");
    }
  }
  HC3I_CHECK(inter.size() == clusters.size(),
             "topology: inter-link matrix has wrong row count");
  for (std::size_t i = 0; i < inter.size(); ++i) {
    HC3I_CHECK(inter[i].size() == clusters.size(),
               "topology: inter-link matrix has wrong column count");
    for (std::size_t j = 0; j < inter.size(); ++j) {
      if (i == j) continue;
      HC3I_CHECK(inter[i][j].latency == inter[j][i].latency &&
                     inter[i][j].bytes_per_sec == inter[j][i].bytes_per_sec,
                 "topology: inter-link matrix must be symmetric");
      HC3I_CHECK(inter[i][j].bytes_per_sec > 0,
                 "topology: inter-cluster bandwidth must be positive");
    }
  }
  HC3I_CHECK(mtbf.ns > 0, "topology: MTBF must be positive");
}

void ApplicationSpec::validate(const TopologySpec& topo) const {
  HC3I_CHECK(total_time.ns > 0, "application: total_time must be positive");
  HC3I_CHECK(!total_time.is_infinite(), "application: total_time must be finite");
  HC3I_CHECK(clusters.size() == topo.cluster_count(),
             "application: per-cluster spec count does not match topology");
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    const auto& c = clusters[i];
    HC3I_CHECK(c.mean_compute.ns > 0,
               "application: cluster " + std::to_string(i) +
                   " mean_compute must be positive");
    HC3I_CHECK(c.traffic.size() == topo.cluster_count(),
               "application: traffic row " + std::to_string(i) +
                   " has wrong length");
    for (double w : c.traffic) {
      HC3I_CHECK(w >= 0.0 && std::isfinite(w),
                 "application: traffic weights must be finite and >= 0");
    }
    HC3I_CHECK(c.message_bytes > 0, "application: message_bytes must be > 0");
  }
  HC3I_CHECK(state_bytes > 0, "application: state_bytes must be > 0");
}

void TimersSpec::validate(const TopologySpec& topo) const {
  HC3I_CHECK(clusters.size() == topo.cluster_count(),
             "timers: per-cluster spec count does not match topology");
  for (const auto& c : clusters) {
    HC3I_CHECK(c.clc_period.ns > 0, "timers: clc_period must be positive");
  }
  HC3I_CHECK(gc_period.ns > 0, "timers: gc_period must be positive");
  HC3I_CHECK(detection_delay.ns >= 0, "timers: negative detection delay");
}

void RunSpec::validate() const {
  topology.validate();
  application.validate(topology);
  timers.validate(topology);
}

}  // namespace hc3i::config
