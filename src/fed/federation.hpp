#pragma once

// Federation assembly: topology + network + ledger + one protocol agent per
// node, plus fail-stop failure injection.
//
// Construction is two-phase because the application layer and the protocol
// layer point at each other (the app sends through its agent; the agent
// snapshots/restores/delivers through its AppHandle):
//
//   Federation fed(sim, spec, registry);
//   <workload constructs one AppHandle per node>
//   fed.build_agents(factory, app_handles);
//   <workload learns its agents>
//   fed.start();
//
// Failure model: fail-stop, at most one fault in flight *per cluster* (the
// paper's §2.1 "one fault at a time" read cluster-locally — the hierarchy
// exists precisely so that independent cluster failures recover
// independently).  A victim node stops receiving; after the detection
// delay the coordinator (first up node) of its cluster gets
// on_failure_detected(); the victim is restored from its neighbour's
// stable-storage replica after a state transfer delay.  Injection policy
// lives outside: the fault-campaign engine (src/fault/engine.hpp) decides
// *when* and *whom* to kill, calls inject_failure(), and observes
// recovery_complete() — which reports *which* cluster finished — through
// the recovery listener to queue same-cluster kills (or, in legacy
// serialized mode, every kill) and to time recoveries.

#include <functional>
#include <memory>
#include <vector>

#include "config/spec.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "obs/trace.hpp"
#include "proto/agent.hpp"
#include "proto/ledger.hpp"
#include "sim/simulation.hpp"
#include "stats/registry.hpp"

namespace hc3i::fed {

/// The assembled cluster federation.
class Federation {
 public:
  Federation(sim::Simulation& sim, config::RunSpec spec,
             stats::Registry& registry);

  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  /// Build one agent per node. `apps[n]` is the AppHandle of node n and
  /// must outlive the federation.
  void build_agents(const proto::AgentFactory& factory,
                    const std::vector<proto::AppHandle*>& apps);

  /// Start every agent (arm timers, take initial checkpoints).
  void start();

  /// Inject one failure at the current simulated time (the campaign engine
  /// and scenario tests drive this directly).
  void inject_failure(NodeId victim);

  /// Protocol signal: the recovery for the last injected failure finished.
  void recovery_complete(ClusterId c);

  /// Install a callback invoked on every recovery_complete() (the campaign
  /// engine retries deferred injections and stamps telemetry from it).
  void set_recovery_listener(std::function<void(ClusterId)> listener) {
    recovery_listener_ = std::move(listener);
  }

  /// Install the structured-trace recorder (driver-owned; null = off).
  /// Must be called before build_agents so agents capture the pointer.
  void set_recorder(obs::Recorder* rec) { recorder_ = rec; }
  /// The installed recorder (null when observability is off); the campaign
  /// engine emits its injection-source records through this.
  obs::Recorder* recorder() const { return recorder_; }

  /// Accessors.
  proto::ProtocolAgent& agent(NodeId n);
  const net::Topology& topology() const { return topo_; }
  net::Network& network() { return network_; }
  proto::ConsistencyLedger& ledger() { return ledger_; }
  stats::Registry& registry() { return registry_; }
  const config::RunSpec& spec() const { return spec_; }
  sim::Simulation& simulation() { return sim_; }

  /// First up node of a cluster (the failure detector's notification
  /// target). Throws if the whole cluster is down.
  NodeId coordinator(ClusterId c) const;

  /// Failures injected so far.
  std::uint32_t failures_injected() const { return failures_; }
  /// True while any failure's recovery is pending (the legacy serialized
  /// engine's gate).
  bool recovery_pending() const { return recoveries_in_flight_ > 0; }
  /// True while cluster `c`'s own fault recovery is pending.
  bool recovery_pending(ClusterId c) const {
    return recovery_pending_[c.v] != 0;
  }
  /// Number of clusters currently recovering from an injected fault.
  std::uint32_t recoveries_in_flight() const { return recoveries_in_flight_; }

 private:
  SimTime state_restore_delay(ClusterId c) const;

  sim::Simulation& sim_;
  config::RunSpec spec_;
  stats::Registry& registry_;
  net::Topology topo_;
  net::Network network_;
  proto::ConsistencyLedger ledger_;
  std::vector<std::unique_ptr<proto::ProtocolAgent>> agents_;
  obs::Recorder* recorder_{nullptr};
  std::function<void(ClusterId)> recovery_listener_;
  std::vector<std::uint8_t> recovery_pending_;  ///< per cluster, 0/1
  std::uint32_t recoveries_in_flight_{0};
  std::uint32_t failures_{0};
};

}  // namespace hc3i::fed
