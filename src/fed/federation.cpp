#include "fed/federation.hpp"

#include <cmath>

#include "util/log.hpp"

namespace hc3i::fed {

Federation::Federation(sim::Simulation& sim, config::RunSpec spec,
                       stats::Registry& registry)
    : sim_(sim),
      spec_(std::move(spec)),
      registry_(registry),
      topo_((spec_.validate(), spec_.topology)),
      network_(sim, topo_, registry),
      recovery_pending_(topo_.cluster_count(), 0) {}

void Federation::build_agents(const proto::AgentFactory& factory,
                              const std::vector<proto::AppHandle*>& apps) {
  HC3I_CHECK(agents_.empty(), "build_agents called twice");
  HC3I_CHECK(apps.size() == topo_.node_count(),
             "build_agents: need one AppHandle per node");
  agents_.reserve(topo_.node_count());
  for (std::uint32_t i = 0; i < topo_.node_count(); ++i) {
    const NodeId n{i};
    proto::AgentContext ctx;
    ctx.sim = &sim_;
    ctx.network = &network_;
    ctx.topology = &topo_;
    ctx.registry = &registry_;
    ctx.ledger = &ledger_;
    ctx.self = n;
    ctx.cluster = topo_.cluster_of(n);
    ctx.app = apps[i];
    ctx.obs = recorder_;
    ctx.recovery_done = [this](ClusterId c) { recovery_complete(c); };
    agents_.push_back(factory(ctx));
    HC3I_CHECK(agents_.back() != nullptr, "agent factory returned null");
    proto::ProtocolAgent* agent = agents_.back().get();
    network_.attach(n, [agent](const net::Envelope& env) {
      agent->on_message(env);
    });
  }
}

void Federation::start() {
  HC3I_CHECK(!agents_.empty(), "start: build_agents first");
  for (auto& a : agents_) a->start();
}

proto::ProtocolAgent& Federation::agent(NodeId n) {
  HC3I_CHECK(n.v < agents_.size(), "agent: bad node id");
  return *agents_[n.v];
}

NodeId Federation::coordinator(ClusterId c) const {
  const NodeId base = topo_.first_node(c);
  for (std::uint32_t i = 0; i < topo_.cluster_size(c); ++i) {
    const NodeId n{base.v + i};
    if (network_.node_up(n)) return n;
  }
  HC3I_UNREACHABLE("coordinator: entire cluster " + std::to_string(c.v) +
                   " is down");
}

SimTime Federation::state_restore_delay(ClusterId c) const {
  // Restoring the failed node = pulling its state from the neighbour's
  // replica across the SAN (paper §3.1 stable storage).
  const auto& san = spec_.topology.clusters[c.v].san;
  SimTime delay = san.latency;
  if (std::isfinite(san.bytes_per_sec)) {
    delay += from_seconds_f(
        static_cast<double>(spec_.application.state_bytes) / san.bytes_per_sec);
  }
  return delay;
}

void Federation::inject_failure(NodeId victim) {
  HC3I_CHECK(victim.v < topo_.node_count(), "inject_failure: bad node");
  const ClusterId c = topo_.cluster_of(victim);
  HC3I_CHECK(!recovery_pending(c),
             "inject_failure: cluster " + std::to_string(c.v) +
                 "'s previous recovery is still pending (at most one fault "
                 "in flight per cluster)");
  HC3I_CHECK(network_.node_up(victim), "inject_failure: node already down");
  recovery_pending_[c.v] = 1;
  ++recoveries_in_flight_;
  ++failures_;
  registry_.inc("fault.injected");
  HC3I_TRACE(kProtocol, sim_.now(),
             "FAILURE node " << victim.v << " (cluster " << c.v << ")");
  HC3I_OBS(recorder_, obs::RecordKind::kFailure, sim_.now(), c.v, victim.v, 0);
  network_.set_node_down(victim);

  const SimTime detect = spec_.timers.detection_delay;
  sim_.schedule_after(detect, [this, victim, c] {
    // Notify the surviving coordinator.
    const NodeId coord = coordinator(c);
    agent(coord).on_failure_detected(victim);
  });
  // The victim restarts from its neighbour's replica after the transfer.
  sim_.schedule_after(detect + state_restore_delay(c), [this, victim, c] {
    network_.set_node_up(victim);
    registry_.inc("fault.node_restored");
    HC3I_OBS(recorder_, obs::RecordKind::kNodeRestored, sim_.now(), c.v,
             victim.v, 0);
  });
}

void Federation::recovery_complete(ClusterId c) {
  HC3I_TRACE(kProtocol, sim_.now(), "RECOVERY complete (cluster " << c.v << ")");
  HC3I_OBS(recorder_, obs::RecordKind::kRecoveryEnd, sim_.now(), c.v, 0, 0);
  registry_.inc("fault.recovery_complete");
  if (recovery_pending_[c.v]) {
    recovery_pending_[c.v] = 0;
    --recoveries_in_flight_;
  }
  if (recovery_listener_) recovery_listener_(c);
}

}  // namespace hc3i::fed
