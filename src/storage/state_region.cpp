#include "storage/state_region.hpp"

#include <algorithm>

namespace hc3i::storage {

namespace {

/// Deterministic content byte for (fill, position): splitmix64-style mixing
/// so overlapping touches with different fills produce order-dependent but
/// reproducible bytes.
std::uint8_t content_byte(std::uint64_t fill, std::uint64_t pos) {
  std::uint64_t z = fill + pos * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return static_cast<std::uint8_t>(z ^ (z >> 31));
}

}  // namespace

StateRegion::StateRegion(std::uint64_t size, Content content)
    : size_(size), content_(content) {
  HC3I_CHECK(size_ > 0, "StateRegion: zero-sized region");
  if (content_ == Content::kMaterialized) {
    data_.assign(static_cast<std::size_t>(size_), 0);
  }
}

void StateRegion::touch(std::uint64_t offset, std::uint64_t length,
                        std::uint64_t fill) {
  if (length == 0 || offset >= size_) return;
  const std::uint64_t end = std::min(offset + length, size_);
  dirty_lo_ = dirty() ? std::min(dirty_lo_, offset) : offset;
  dirty_hi_ = std::max(dirty_hi_, end);
  if (content_ == Content::kMaterialized) {
    for (std::uint64_t p = offset; p < end; ++p) {
      data_[static_cast<std::size_t>(p)] = content_byte(fill, p);
    }
  }
}

CaptureRecord StateRegion::capture(CaptureMode mode) {
  CaptureRecord rec;
  if (mode == CaptureMode::kIncremental && has_base_) {
    rec.incremental = true;
    rec.offset = dirty_lo_;
    rec.length = dirty_bytes();  // zero touches -> zero-length, a free delta
  } else {
    rec.incremental = false;
    rec.offset = 0;
    rec.length = size_;
    has_base_ = true;
  }
  if (content_ == Content::kMaterialized && rec.length > 0) {
    rec.bytes.assign(data_.data() + rec.offset,
                     static_cast<std::size_t>(rec.length));
  }
  dirty_lo_ = dirty_hi_ = 0;
  return rec;
}

void StateRegion::reset_base() {
  has_base_ = false;
  dirty_lo_ = dirty_hi_ = 0;
}

void StateRegion::apply(const CaptureRecord& rec) {
  HC3I_CHECK(content_ == Content::kMaterialized,
             "StateRegion::apply on a modelled region");
  HC3I_CHECK(rec.offset + rec.length <= size_,
             "StateRegion::apply: capture exceeds region");
  HC3I_CHECK(rec.bytes.size() == rec.length,
             "StateRegion::apply: capture content size mismatch");
  for (std::uint64_t i = 0; i < rec.length; ++i) {
    data_[static_cast<std::size_t>(rec.offset + i)] =
        rec.bytes[static_cast<std::size_t>(i)];
  }
}

const std::vector<std::uint8_t>& StateRegion::contents() const {
  HC3I_CHECK(content_ == Content::kMaterialized,
             "StateRegion::contents on a modelled region");
  return data_;
}

std::vector<std::uint8_t> StateRegion::rebuild(
    std::uint64_t size, const std::vector<CaptureRecord>& chain) {
  HC3I_CHECK(!chain.empty(), "StateRegion::rebuild: empty chain");
  HC3I_CHECK(!chain.front().incremental && chain.front().length == size,
             "StateRegion::rebuild: chain must start with a full capture");
  StateRegion out(size, Content::kMaterialized);
  for (const CaptureRecord& rec : chain) out.apply(rec);
  return out.contents();
}

}  // namespace hc3i::storage
