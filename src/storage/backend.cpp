#include "storage/backend.hpp"

#include <algorithm>

namespace hc3i::storage {

namespace {

/// latency + bytes / rate, saturating sanely for tiny rates.
SimTime transfer_time(SimTime latency, std::uint64_t bytes, double rate) {
  if (bytes == 0) return SimTime{0};
  return latency + from_seconds_f(static_cast<double>(bytes) / rate);
}

class LocalDiskBackend final : public Backend {
 public:
  explicit LocalDiskBackend(const config::StorageSpec& spec) : spec_(spec) {}

  const char* name() const override { return "local-disk"; }

  SimTime node_write_time(std::uint64_t bytes) const override {
    return transfer_time(spec_.latency, bytes, spec_.write_bytes_per_sec);
  }

  SimTime cluster_read_time(std::uint64_t /*total_bytes*/,
                            std::uint64_t max_node_bytes) const override {
    // Every node reads its own disk in parallel; the slowest chain gates.
    return transfer_time(spec_.latency, max_node_bytes,
                         spec_.read_bytes_per_sec);
  }

 private:
  config::StorageSpec spec_;
};

class StripedRemoteBackend final : public Backend {
 public:
  StripedRemoteBackend(const config::StorageSpec& spec,
                       std::uint32_t cluster_nodes)
      : spec_(spec),
        width_(std::max<std::uint32_t>(
            1, std::min(spec.stripe_width, cluster_nodes))) {}

  const char* name() const override { return "striped-remote"; }

  SimTime node_write_time(std::uint64_t bytes) const override {
    // Chunked across `width_` donors writing concurrently.
    return transfer_time(spec_.latency, bytes,
                         spec_.write_bytes_per_sec * width_);
  }

  SimTime cluster_read_time(std::uint64_t total_bytes,
                            std::uint64_t /*max_node_bytes*/) const override {
    // The store serves the whole cluster: aggregate bandwidth, but the
    // chains of every node share it, so the *total* bytes gate recovery.
    return transfer_time(spec_.latency, total_bytes,
                         spec_.read_bytes_per_sec * width_);
  }

 private:
  config::StorageSpec spec_;
  std::uint32_t width_;
};

}  // namespace

std::unique_ptr<Backend> make_backend(const config::StorageSpec& spec,
                                      std::uint32_t cluster_nodes) {
  switch (spec.kind) {
    case config::StorageSpec::Kind::kNone:
      return nullptr;
    case config::StorageSpec::Kind::kLocalDisk:
      return std::make_unique<LocalDiskBackend>(spec);
    case config::StorageSpec::Kind::kStripedRemote:
      return std::make_unique<StripedRemoteBackend>(spec, cluster_nodes);
  }
  HC3I_CHECK(false, "make_backend: unknown storage kind");
  return nullptr;
}

}  // namespace hc3i::storage
