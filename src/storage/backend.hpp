#pragma once

// Checkpoint-storage backends: where CLC captures go and what they cost.
//
// The simulator does not move real bytes; a backend is a cost model charged
// on the simulated clock.  Two are provided:
//
//  * LocalDiskBackend    — each node writes its capture to its own disk.
//                          Node writes proceed in parallel, so a cluster-wide
//                          capture stalls for the *largest* per-node write;
//                          a restore replays each node's chain from its own
//                          disk, again bounded by the largest chain.
//  * StripedRemoteBackend — an stdchk-style striped store (PAPERS.md): each
//                          write is chunked across `stripe_width` donor nodes,
//                          multiplying effective bandwidth; reads aggregate
//                          the same way, so restore cost follows the *total*
//                          bytes in the cluster's chains, not the maximum.
//
// A backend is immutable after construction and shared by every agent of a
// cluster; cost queries are pure, which keeps batch::Runner workers free to
// own one per simulation context without cross-shard state.

#include <cstdint>
#include <memory>

#include "config/spec.hpp"
#include "util/time.hpp"

namespace hc3i::storage {

/// Cost model for one cluster's checkpoint store.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Short identifier used in reports ("local-disk", "striped-remote").
  virtual const char* name() const = 0;

  /// Wall-clock cost of one node persisting `bytes` of capture.  This is the
  /// per-node stall charged while the tentative CLC part is written out.
  virtual SimTime node_write_time(std::uint64_t bytes) const = 0;

  /// Wall-clock cost of a cluster re-reading its checkpoint chains during
  /// recovery.  `total_bytes` sums every node's chain; `max_node_bytes` is
  /// the largest single chain.  Per-node media bound by the max, aggregated
  /// media by the total.
  virtual SimTime cluster_read_time(std::uint64_t total_bytes,
                                    std::uint64_t max_node_bytes) const = 0;
};

/// Build the backend for one cluster, or nullptr when storage is not
/// modelled (StorageSpec::Kind::kNone) — the caller keeps the free-capture
/// seed behaviour in that case.
std::unique_ptr<Backend> make_backend(const config::StorageSpec& spec,
                                      std::uint32_t cluster_nodes);

}  // namespace hc3i::storage
