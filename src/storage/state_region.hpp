#pragma once

// Mutable application state with dirty-range capture.
//
// The paper charges every checkpoint the full process-state size; real
// checkpointers do better.  The cpf shadow-range idiom (SNIPPETS.md) tracks
// the lo/hi watermark of the region touched since the last capture, so an
// incremental checkpoint writes bytes proportional to the state *touched*
// between two CLCs, not the heap size.  A StateRegion models one process's
// state area that way and produces CaptureRecords forming base + Σ deltas
// chains; restore applies the chain back in order.
//
// Two content modes share the tracking logic:
//   * kModelled     — accounting only (a few words per node).  What every
//                     simulated WorkloadNode owns: 1000 nodes x 8 MiB of
//                     state must never materialise.
//   * kMaterialized — a real byte buffer.  What the property suite uses to
//                     prove base + N deltas restores the exact bytes a full
//                     snapshot would have captured, at every chain prefix.

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace hc3i::storage {

/// How a capture treats the state since the previous one.
enum class CaptureMode : std::uint8_t {
  kFull,         ///< whole region: a new chain base
  kIncremental,  ///< touched range only: a delta over the previous capture
};

/// Byte payload of a materialized capture.  Most incremental captures of a
/// lightly-touched region are a handful of words; they live inline, larger
/// ones spill to the heap.  (Modelled captures carry no bytes at all.)
class CaptureBytes {
 public:
  /// Largest payload stored without a heap allocation.
  static constexpr std::size_t kInlineBytes = 32;

  CaptureBytes() = default;

  void assign(const std::uint8_t* data, std::size_t len) {
    if (len <= kInlineBytes) {
      spill_.clear();
      for (std::size_t i = 0; i < len; ++i) inline_[i] = data[i];
    } else {
      spill_.assign(data, data + len);
    }
    size_ = len;
  }

  std::size_t size() const { return size_; }
  bool spilled() const { return size_ > kInlineBytes; }
  const std::uint8_t* data() const {
    return spilled() ? spill_.data() : inline_;
  }
  std::uint8_t operator[](std::size_t i) const {
    HC3I_CHECK(i < size_, "CaptureBytes: index out of range");
    return data()[i];
  }

 private:
  std::uint8_t inline_[kInlineBytes] = {};
  std::vector<std::uint8_t> spill_;
  std::size_t size_{0};
};

/// One link of a checkpoint chain: a full image or one delta.
struct CaptureRecord {
  std::uint64_t offset{0};  ///< first byte covered
  std::uint64_t length{0};  ///< bytes covered (== region size when full)
  bool incremental{false};  ///< delta over the previous capture in the chain
  CaptureBytes bytes;       ///< content (materialized regions only)
};

/// One process's modelled state area with lo/hi dirty-range tracking.
class StateRegion {
 public:
  enum class Content : std::uint8_t { kModelled, kMaterialized };

  explicit StateRegion(std::uint64_t size,
                       Content content = Content::kModelled);

  std::uint64_t size() const { return size_; }

  /// Mark [offset, offset+length) dirty (clamped to the region).  In
  /// materialized mode also writes deterministic content derived from
  /// `fill`, so two regions receiving the same touch sequence hold the
  /// same bytes.
  void touch(std::uint64_t offset, std::uint64_t length,
             std::uint64_t fill = 0);

  /// Bytes an incremental capture would write right now (hi - lo watermark;
  /// zero when clean).
  std::uint64_t dirty_bytes() const {
    return dirty_hi_ > dirty_lo_ ? dirty_hi_ - dirty_lo_ : 0;
  }
  bool dirty() const { return dirty_bytes() > 0; }

  /// Capture and clear the dirty range.  kFull always covers the whole
  /// region and starts a new chain; kIncremental covers the dirty watermark
  /// only — zero-length when nothing was touched (a free capture) — and
  /// degrades to a full capture when no chain base exists yet (first
  /// capture, or first after restore()/reset_base()).
  CaptureRecord capture(CaptureMode mode);

  /// Forget the chain base: the next capture is full regardless of mode.
  /// Called when the process restores from a checkpoint — the restored
  /// image, not this region's history, is the new baseline.
  void reset_base();

  /// Apply one capture record's content (materialized regions only).
  void apply(const CaptureRecord& rec);

  /// Materialized content (REQUIRES kMaterialized).
  const std::vector<std::uint8_t>& contents() const;

  /// Rebuild a region of `size` bytes from a chain prefix: chain[0] must be
  /// a full capture, the rest deltas in capture order.
  static std::vector<std::uint8_t> rebuild(
      std::uint64_t size, const std::vector<CaptureRecord>& chain);

 private:
  std::uint64_t size_;
  Content content_;
  std::uint64_t dirty_lo_{0};
  std::uint64_t dirty_hi_{0};  ///< exclusive; lo == hi means clean
  bool has_base_{false};       ///< a chain base exists since last reset
  std::vector<std::uint8_t> data_;  ///< kMaterialized only
};

}  // namespace hc3i::storage
