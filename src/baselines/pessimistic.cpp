#include "baselines/pessimistic.hpp"

#include <cmath>

#include "proto/payload_pool.hpp"
#include "util/log.hpp"

namespace hc3i::baselines {

PessimisticRuntime::PessimisticRuntime(const config::RunSpec& spec)
    : spec_(spec) {
  spec_.validate();
}

proto::AgentFactory PessimisticRuntime::factory() {
  return [this](const proto::AgentContext& ctx) {
    auto agent = std::make_unique<PessimisticAgent>(ctx, *this);
    agents_.push_back(agent.get());
    return agent;
  };
}

proto::AgentFactory pessimistic_factory(PessimisticRuntime& rt) {
  return rt.factory();
}

PessimisticAgent::PessimisticAgent(const proto::AgentContext& ctx,
                                   PessimisticRuntime& rt)
    : AgentBase(ctx), rt_(rt) {}

void PessimisticAgent::start() {
  // Independent per-node checkpoints on the cluster's timer period; the
  // initial checkpoint is the start state.
  take_checkpoint();
  const SimTime period = rt_.spec().timers.clusters[cluster().v].clc_period;
  if (!period.is_infinite()) {
    timer_ = std::make_unique<sim::Timer>(*ctx_.sim, period, /*periodic=*/true,
                                          [this] { take_checkpoint(); });
    timer_->arm();
  }
}

void PessimisticAgent::take_checkpoint() {
  checkpoint_ = ctx_.app->snapshot();
  checkpoint_mark_ = ctx_.ledger->mark();
  receive_log_.clear();
  stats::lazy_counter(*ctx_.registry, stat_clc_total_, [this] {
    return "clc.total.c" + std::to_string(cluster().v);
  }).inc();
  named_stat(stat_node_ckpts_, "pess.node_checkpoints").inc();
  // Model the stable write of the state to the ring neighbour.
  if (ctx_.topology->cluster_size(cluster()) > 1) {
    send_control(ctx_.topology->ring_neighbour(self()),
                 rt_.spec().application.state_bytes,
                 proto::make_pooled<LogCopy>());
  }
}

void PessimisticAgent::app_send(NodeId dst, std::uint64_t bytes,
                                std::uint64_t app_seq) {
  if (rollback_pending_) return;
  net::Piggyback piggy;  // no checkpointing metadata needed
  send_app(dst, bytes, app_seq, piggy);
}

void PessimisticAgent::on_message(const net::Envelope& env) {
  if (env.cls == net::MsgClass::kControl) {
    // Channel-memory copies are sinks: modelled storage traffic only.
    return;
  }
  if (rollback_pending_) {
    post_rollback_stash_.push_back(env);
    return;
  }
  if (dedup_.count(env.app_seq) > 0) {
    // Duplicate from a re-executed sender (PWD re-sends); drop.
    named_stat(stat_dup_dropped_, "pess.dup_dropped").inc();
    return;
  }
  dedup_.insert(env.app_seq);
  receive_log_.push_back(env);
  deliver_app(env);
  // Pessimistic logging: the delivery is also persisted at the channel
  // memory before the application may causally affect others.  The copy
  // costs a full extra transfer (the MPICH-V overhead).
  if (ctx_.topology->cluster_size(cluster()) > 1) {
    send_control(ctx_.topology->ring_neighbour(self()), env.payload_bytes,
                 proto::make_pooled<LogCopy>());
    named_stat(stat_log_copies_, "pess.log_copies").inc();
  }
}

void PessimisticAgent::on_failure_detected(NodeId failed) {
  // Only the failed node rolls back — the defining property of the
  // message-logging family.
  ctx_.registry->inc("rollback.faults");
  ctx_.registry->inc("rollback.count");
  ctx_.registry->inc("rollback.nodes");  // node-scope rollback
  PessimisticAgent* victim = rt_.agents()[failed.v];
  victim->restore_failed_node();
}

void PessimisticAgent::restore_failed_node() {
  const proto::AppSnapshot current = ctx_.app->snapshot();
  const SimTime lost = current.virtual_work - checkpoint_.virtual_work;
  if (lost.ns > 0) {
    ctx_.registry->observe("rollback.lost_work_s", lost.seconds());
  }
  ctx_.ledger->undo_after_node(self(), checkpoint_mark_);
  // Deliveries since the checkpoint are undone and must be replayed from
  // the channel memory; forget them in the dedup set so the replay is not
  // suppressed (the log itself is the replay source).
  for (const net::Envelope& env : receive_log_) dedup_.erase(env.app_seq);
  rollback_pending_ = true;
  ctx_.app->freeze();
  ctx_.registry->observe("rollback.clusters_rolled", 0.0);  // node-scope only

  const auto& san = rt_.spec().topology.clusters[cluster().v].san;
  SimTime delay = san.latency;
  if (std::isfinite(san.bytes_per_sec)) {
    delay += from_seconds_f(
        static_cast<double>(rt_.spec().application.state_bytes) /
        san.bytes_per_sec);
  }
  ctx_.sim->schedule_after(delay, [this] {
    rollback_pending_ = false;
    ctx_.app->restore(checkpoint_);
    // Replay the logged deliveries in their original order (PWD).
    auto log = std::move(receive_log_);
    receive_log_.clear();
    for (const net::Envelope& env : log) {
      dedup_.insert(env.app_seq);
      receive_log_.push_back(env);
      deliver_app(env);
      named_stat(stat_replayed_, "pess.replayed").inc();
    }
    auto stash = std::move(post_rollback_stash_);
    post_rollback_stash_.clear();
    for (const net::Envelope& env : stash) on_message(env);
    ctx_.recovery_done(cluster());
  });
}

}  // namespace hc3i::baselines
