#include "baselines/independent.hpp"

namespace hc3i::baselines {

proto::AgentFactory independent_factory(core::Hc3iRuntime& rt) {
  return [&rt](const proto::AgentContext& ctx) {
    auto agent = std::make_unique<IndependentAgent>(ctx, rt);
    rt.register_agent(ctx.cluster, agent.get());
    return agent;
  };
}

}  // namespace hc3i::baselines
